package cudele_test

import (
	"fmt"
	"testing"

	"cudele"
)

// TestColocatedRuntimes exercises the paper's first future-work item
// (§VII): HPC workflows and cloud parallel runtimes co-existing in the
// same namespace. An HPC checkpoint job runs in a decoupled subtree, a
// Hadoop/Spark-style runtime commits work via the temp-file + rename +
// _SUCCESS pattern in an HDFS-like subtree, and a POSIX user works
// normally next to both.
func TestColocatedRuntimes(t *testing.T) {
	cl := cudele.NewCluster()
	cl.MDS().SetStream(true)
	hpc := cl.NewClient("hpc.rank0")
	spark := cl.NewClient("spark.executor0")
	user := cl.NewClient("alice")
	eng := cl.Runtime()

	cl.Run(func(p cudele.Proc) {
		// Subtrees: /ckpt decoupled (BatchFS cell), /hdfs weak-ish with
		// interference allowed (HDFS lets clients read files opened for
		// writing), /home POSIX.
		hpc.MkdirAll(p, "/ckpt", 0755)
		spark.MkdirAll(p, "/hdfs/job0/_temporary", 0755)
		user.MkdirAll(p, "/home/alice", 0755)

		if _, err := cl.Decouple(p, hpc, "/ckpt",
			"consistency: weak\ndurability: local\nallocated_inodes: 2000\ninterfere: block\n"); err != nil {
			t.Errorf("decouple /ckpt: %v", err)
			return
		}

		var hpcDone, sparkDone bool

		// HPC: N:1 checkpoint into the decoupled subtree.
		eng.Spawn("hpc", func(cp cudele.Proc) {
			root, _ := hpc.DecoupledRoot()
			for i := 0; i < 1000; i++ {
				if _, err := hpc.LocalCreate(cp, root, fmt.Sprintf("ckpt.%04d", i), 0644); err != nil {
					t.Errorf("hpc create: %v", err)
					return
				}
			}
			if err := hpc.LocalPersist(cp); err != nil {
				t.Errorf("hpc persist: %v", err)
				return
			}
			if _, err := hpc.VolatileApply(cp); err != nil {
				t.Errorf("hpc merge: %v", err)
				return
			}
			hpcDone = true
		})

		// Spark: write temp parts, rename them in, then drop _SUCCESS.
		eng.Spawn("spark", func(sp cudele.Proc) {
			tmp, _ := spark.Resolve(sp, "/hdfs/job0/_temporary")
			job, _ := spark.Resolve(sp, "/hdfs/job0")
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("part-%05d", i)
				if _, err := spark.Create(sp, tmp, name, 0644); err != nil {
					t.Errorf("spark create: %v", err)
					return
				}
				if err := spark.Rename(sp, tmp, name, job, name); err != nil {
					t.Errorf("spark rename: %v", err)
					return
				}
			}
			if _, err := spark.Create(sp, job, "_SUCCESS", 0644); err != nil {
				t.Errorf("spark success: %v", err)
				return
			}
			sparkDone = true
		})

		// Alice keeps using POSIX semantics next door, and polls the
		// Spark job's progress the way the browser interface does.
		eng.Spawn("alice", func(ap cudele.Proc) {
			home, _ := user.Resolve(ap, "/home/alice")
			job, _ := user.Resolve(ap, "/hdfs/job0")
			for i := 0; i < 30; i++ {
				user.Create(ap, home, fmt.Sprintf("note%d", i), 0644)
				if names, err := user.ReadDir(ap, job); err == nil {
					_ = names // % complete = len(names)/51
				}
			}
		})

		// Let everything finish.
		for !(hpcDone && sparkDone) {
			p.Sleep(1e7)
		}
	})

	// All three workloads landed in one namespace.
	store := cl.MDS().Store()
	if _, err := store.Resolve("/ckpt/ckpt.0999"); err != nil {
		t.Errorf("hpc result missing: %v", err)
	}
	if _, err := store.Resolve("/hdfs/job0/_SUCCESS"); err != nil {
		t.Errorf("spark commit missing: %v", err)
	}
	if _, err := store.Resolve("/hdfs/job0/part-00049"); err != nil {
		t.Errorf("spark part missing: %v", err)
	}
	if _, err := store.Resolve("/home/alice/note29"); err != nil {
		t.Errorf("posix file missing: %v", err)
	}

	// Second future-work item: after the job, tighten /hdfs into a POSIX
	// subtree without moving any data.
	cl2 := cl // same cluster, new registration
	c := spark
	cl.Run(func(p cudele.Proc) {
		if _, err := cl2.Decouple(p, c, "/hdfs",
			"consistency: strong\ndurability: global\n"); err != nil {
			t.Errorf("tighten /hdfs: %v", err)
		}
	})
}
