package cudele_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"cudele"
	"cudele/internal/client"
	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
)

// setupSpeculative decouples /job speculatively, journals five creates,
// and lets an interferer steal f2 through the strong RPC path so the
// client's prediction for it is guaranteed false at merge time.
func setupSpeculative(t *testing.T, p cudele.Proc, cl *cudele.Cluster,
	c, intr *cudele.Client, dur policy.Durability) {
	t.Helper()
	job, err := c.MkdirAll(p, "/job", 0755)
	if err != nil {
		t.Fatalf("mkdirall: %v", err)
	}
	if _, err := cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
		Consistency: cudele.ConsSpeculative, Durability: dur,
		AllocatedInodes: 100, Interfere: cudele.InterfereAllow,
	}); err != nil {
		t.Fatalf("decouple: %v", err)
	}
	root, _ := c.DecoupledRoot()
	for i := 0; i < 5; i++ {
		if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
			t.Fatalf("local create f%d: %v", i, err)
		}
	}
	if _, err := intr.Create(p, job, "f2", 0600); err != nil {
		t.Fatalf("interfering create: %v", err)
	}
}

// TestSpeculativeRollbackCrashRecovery crashes the client in the middle
// of a rollback — after the MDS applied the accepted ops but before the
// rejected one was undone locally — and asserts DurLocal recovery does
// not resurrect it: the recovered journal re-enters the ordinary
// validate-or-reject cycle and the stale op is rejected and rolled back
// again instead of leaking.
func TestSpeculativeRollbackCrashRecovery(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	intr := cl.NewClient("intr")
	cl.Run(func(p cudele.Proc) {
		setupSpeculative(t, p, cl, c, intr, cudele.DurLocal)
		if err := c.LocalPersist(p); err != nil {
			t.Fatalf("local persist: %v", err)
		}
		// Crash mid-rollback: the hook kills the rollback after one undo,
		// leaving the journal and undo log un-reset.
		c.FailRollbackAfter(0)
		if _, _, err := c.SpeculativeApply(p); err == nil {
			t.Fatal("mid-rollback crash hook did not surface an error")
		}
		c.Crash()
		if err := c.Restart(p); err != nil {
			t.Fatalf("restart: %v", err)
		}
		n, err := c.RecoverLocal(p)
		if err != nil || n != 5 {
			t.Fatalf("recover = %d, %v; want 5", n, err)
		}
		// The recovered journal re-merges: every op now conflicts (the
		// accepted four already exist on the MDS, f2 belongs to the
		// interferer) and all five are rolled back from the local image.
		_, conflicts, err := c.SpeculativeApply(p)
		if err != nil {
			t.Fatalf("re-merge after recovery: %v", err)
		}
		if len(conflicts) != 5 {
			t.Fatalf("re-merge rejected %v, want all 5 recovered ops", conflicts)
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < 5; i++ {
			if _, err := c.LocalLookup(root, fmt.Sprintf("f%d", i)); err == nil {
				t.Errorf("rolled-back f%d still visible in the client image", i)
			}
		}
	})
	// The global namespace holds the four accepted ops and the
	// interferer's f2 — never the client's rejected twin.
	for i := 0; i < 5; i++ {
		in, err := cl.MDS().Store().Resolve(fmt.Sprintf("/job/f%d", i))
		if err != nil {
			t.Fatalf("accepted op /job/f%d missing after recovery: %v", i, err)
		}
		if i == 2 && in.UID != 0 && in.Mode&0777 != 0600 {
			t.Errorf("/job/f2 is not the interferer's file")
		}
	}
}

// TestSpeculativeTornUndoPersist tears the global persist of the undo
// object. The persist must fail (the ack is the durability point), a
// retry on a healed store must succeed, and rescue recovery needs only
// the journal image: the undo log is derivable, so a torn copy is
// irrelevant.
func TestSpeculativeTornUndoPersist(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	intr := cl.NewClient("intr")
	rescuer := cl.NewClient("rescue")
	cl.Run(func(p cudele.Proc) {
		setupSpeculative(t, p, cl, c, intr, cudele.DurGlobal)
		inj := rados.NewFaultInjector(7)
		inj.MaxFaults = 1
		inj.TornWriteProb = 1
		inj.Match = func(oid rados.ObjectID) bool {
			// The striper appends a ".%010d" stripe index to the logical
			// object name.
			return oid.Pool == client.ClientJournalPool &&
				strings.Contains(oid.Name, client.UndoObjectSuffix+".")
		}
		cl.Objects().SetFaults(inj)
		if err := c.GlobalPersist(p); !errors.Is(err, rados.ErrIO) {
			t.Fatalf("persist with a torn undo write = %v; want an injected I/O error", err)
		}
		if err := c.GlobalPersist(p); err != nil {
			t.Fatalf("persist retry: %v", err)
		}
		c.Crash() // stays down forever
		events, err := rescuer.FetchGlobalJournal(p, "c0")
		if err != nil || len(events) != 5 {
			t.Fatalf("fetch = %d events, %v; want 5", len(events), err)
		}
		applied, conflicts, err := cl.MDS().SpeculativeApply(p, events,
			int64(len(events))*int64(cl.Config().JournalEventBytes))
		if err != nil {
			t.Fatalf("rescue merge: %v", err)
		}
		if applied != 4 || len(conflicts) != 1 {
			t.Fatalf("rescue merge applied %d with conflicts %v; want 4 applied, f2 rejected",
				applied, conflicts)
		}
	})
	for _, name := range []string{"f0", "f1", "f3", "f4"} {
		if _, err := cl.MDS().Store().Resolve("/job/" + name); err != nil {
			t.Errorf("/job/%s missing after rescue: %v", name, err)
		}
	}
}

// TestSpeculativeMergeDuringMigration migrates the decoupled subtree
// between the client's journal writes and its merge: the merge hits the
// old owner, bounces with a wrong-rank redirect, and the client's
// refresh-and-retry loop lands the validated merge on the new owner.
func TestSpeculativeMergeDuringMigration(t *testing.T) {
	cl := cudele.NewCluster(cudele.WithMDSRanks(2))
	c := cl.NewClient("c0")
	cl.Run(func(p cudele.Proc) {
		if _, err := c.MkdirAll(p, "/job", 0755); err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
		if _, err := cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
			Consistency: cudele.ConsSpeculative, Durability: cudele.DurNone,
			AllocatedInodes: 100,
		}); err != nil {
			t.Fatalf("decouple: %v", err)
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < 8; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
				t.Fatalf("local create: %v", err)
			}
		}
		// Freeze the client's routing view so the merge is guaranteed to
		// hit the old owner and bounce.
		cl.Monitor().Unsubscribe("c0")
		if err := cl.Migrate(p, "/job", 1); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		applied, conflicts, err := c.SpeculativeApply(p)
		if err != nil {
			t.Fatalf("speculative apply across migration: %v", err)
		}
		if applied != 8 || len(conflicts) != 0 {
			t.Fatalf("applied %d with conflicts %v; want 8 clean", applied, conflicts)
		}
	})
	if got := c.Stats().Redirects; got == 0 {
		t.Error("merge after migration never bounced: the redirect path was not exercised")
	}
	store := cl.Metadata().Rank(1).Store()
	for i := 0; i < 8; i++ {
		if _, err := store.Resolve(fmt.Sprintf("/job/f%d", i)); err != nil {
			t.Errorf("/job/f%d missing on the new owner: %v", i, err)
		}
	}
}

// TestStrongEventualMergeOrderPermutations records three journal batches
// — including an unlink of an earlier batch's file — and replays them
// through the MDS resolver in every permutation on fresh clusters. Every
// order must render a byte-identical image, equal to the one the live
// recording cluster converged to.
func TestStrongEventualMergeOrderPermutations(t *testing.T) {
	type batchOps func(p cudele.Proc, c *cudele.Client, root cudele.Ino) error
	batchdefs := []batchOps{
		func(p cudele.Proc, c *cudele.Client, root cudele.Ino) error {
			for _, n := range []string{"a0", "a1"} {
				if _, err := c.LocalCreate(p, root, n, 0644); err != nil {
					return err
				}
			}
			_, err := c.LocalMkdir(p, root, "da", 0755)
			return err
		},
		func(p cudele.Proc, c *cudele.Client, root cudele.Ino) error {
			if err := c.LocalUnlink(p, root, "a0"); err != nil {
				return err
			}
			_, err := c.LocalCreate(p, root, "b0", 0644)
			return err
		},
		func(p cudele.Proc, c *cudele.Client, root cudele.Ino) error {
			if _, err := c.LocalCreate(p, root, "c0", 0644); err != nil {
				return err
			}
			_, err := c.LocalMkdir(p, root, "dc", 0755)
			return err
		},
	}

	// Recording pass: one strong-eventual client builds and merges the
	// batches in program order, capturing each batch's events.
	record := cudele.NewCluster(cudele.WithSeed(11))
	rc := record.NewClient("c0")
	var batches [][]*journal.Event
	record.Run(func(p cudele.Proc) {
		if _, err := rc.MkdirAll(p, "/job", 0755); err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
		if _, err := record.DecouplePolicy(p, rc, "/job", &cudele.Policy{
			Consistency: cudele.ConsStrongEventual, Durability: cudele.DurNone,
			AllocatedInodes: 100,
		}); err != nil {
			t.Fatalf("decouple: %v", err)
		}
		root, _ := rc.DecoupledRoot()
		for i, ops := range batchdefs {
			if err := ops(p, rc, root); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
			evs, err := rc.JournalEvents()
			if err != nil {
				t.Fatalf("batch %d snapshot: %v", i, err)
			}
			batches = append(batches, evs)
			if _, err := rc.ConvergeApply(p); err != nil {
				t.Fatalf("batch %d merge: %v", i, err)
			}
		}
	})
	base := seImage(t, record, "/job")

	perms := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	for _, order := range perms {
		order := order
		t.Run(fmt.Sprintf("order%v", order), func(t *testing.T) {
			cl := cudele.NewCluster(cudele.WithSeed(11))
			c := cl.NewClient("c0")
			cl.Run(func(p cudele.Proc) {
				if _, err := c.MkdirAll(p, "/job", 0755); err != nil {
					t.Fatalf("mkdirall: %v", err)
				}
				if _, err := cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
					Consistency: cudele.ConsStrongEventual, Durability: cudele.DurNone,
					AllocatedInodes: 100,
				}); err != nil {
					t.Fatalf("decouple: %v", err)
				}
				for _, bi := range order {
					evs := batches[bi]
					applied, err := cl.MDS().ConvergeApply(p, evs,
						int64(len(evs))*int64(cl.Config().JournalEventBytes))
					if err != nil {
						t.Fatalf("merge batch %d: %v", bi, err)
					}
					if applied != len(evs) {
						t.Fatalf("batch %d applied %d of %d events", bi, applied, len(evs))
					}
				}
			})
			if img := seImage(t, cl, "/job"); img != base {
				t.Errorf("merge order %v renders a different image:\n%s\nwant:\n%s",
					order, img, base)
			}
		})
	}
}

// seImage renders the converged image of the subtree at path on the
// cluster's rank-0 store.
func seImage(t *testing.T, cl *cudele.Cluster, path string) string {
	t.Helper()
	in, err := cl.MDS().Store().Resolve(path)
	if err != nil {
		t.Fatalf("resolve %s: %v", path, err)
	}
	img, err := namespace.SEImageOf(cl.MDS().Store(), in.Ino)
	if err != nil {
		t.Fatalf("render %s: %v", path, err)
	}
	return img
}
