package mds

import (
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/runtime"
)

// mergeChunk bounds how many events are applied per CPU acquisition
// during Volatile Apply, so bulk merges do not starve RPC traffic forever
// while keeping simulation overhead low.
const mergeChunk = 256

// eventSource is where a merge pulls its events from: either a
// journal.Cursor (bounded-memory iteration over a live journal) or a
// flat slice that arrived in the message. Runs are exactly
// min(max, Remaining()) long either way, so the merge's chunked CPU
// schedule is independent of the source.
type eventSource interface {
	Remaining() int
	Next(max int) []*journal.Event
}

// sliceSource adapts a flat event slice to the eventSource contract.
type sliceSource struct {
	evs []*journal.Event
	off int
}

func (s *sliceSource) Remaining() int { return len(s.evs) - s.off }

func (s *sliceSource) Next(max int) []*journal.Event {
	if s.off >= len(s.evs) {
		return nil
	}
	end := s.off + max
	if end > len(s.evs) {
		end = len(s.evs)
	}
	out := s.evs[s.off:end]
	s.off = end
	return out
}

// VolatileApply is the merge mechanism (paper §III-A): the client's
// in-memory journal is shipped to the MDS (memory-to-memory over the
// network) and blindly replayed onto the in-memory metadata store. No
// consistency checks are performed; conflicting creates are resolved in
// favor of the decoupled namespace (interfere "allow" semantics). Nothing
// is durable until a separate durability mechanism runs.
//
// nominalBytes is the journal's transfer footprint (events x ~2.5 KB).
// The call blocks the client process until the merge completes and
// returns the number of events applied. It is a convenience wrapper that
// posts a MergeMsg to the rank's own endpoint.
func (s *Server) VolatileApply(p runtime.Task, events []*journal.Event, nominalBytes int64) (int, error) {
	r := s.ep.Post(p, &MergeMsg{Events: events, NominalBytes: nominalBytes}).(*MergeReply)
	return r.Applied, r.Err
}

// volatileApply is the MergeMsg handler body: the one-shot merge path.
// The whole journal crosses the fabric in a single transfer and the job
// stays active — inflating every concurrent merge's per-event cost —
// until its last event applies. This is the arrival model the paper's
// Fig 6a was calibrated against; the streamed path (scheduler.go) is the
// opt-in alternative.
func (s *Server) volatileApply(p runtime.Task, src eventSource, nominalBytes int64) (int, error) {
	if s.stopped {
		return 0, ErrShutdown
	}
	s.mergeQueue++
	defer func() { s.mergeQueue-- }()

	// Ship the journal to the MDS. The network hop is charged against
	// the shared fabric; concurrent merges queue on it.
	p.Sleep(s.cfg.NetLatency)
	if nominalBytes > 0 {
		s.obj.Net().Transfer(p, nominalBytes)
	}

	// Session/inode-range validation before replay.
	s.cpu.Use(p, s.cfg.MDSMergeSetup)
	s.metrics.MergeJobs++

	applied := 0
	for src.Remaining() > 0 {
		chunk := src.Next(mergeChunk)

		// Apply cost grows with the number of journals waiting to
		// merge: 20 journals landing at once congest the MDS
		// (paper Fig 6a).
		per := s.mergeApplyCost()

		s.cpu.Acquire(p)
		p.Sleep(per * runtime.Duration(len(chunk)))
		for _, ev := range chunk {
			if err := s.store.ApplyEvent(ev); err != nil {
				s.cpu.Release()
				return applied, fmt.Errorf("volatile apply: %w", err)
			}
			applied++
			s.metrics.Merged++
		}
		s.cpu.Release()
	}
	return applied, nil
}

// mergeApplyCost is the per-event Volatile Apply CPU cost at the current
// merge concurrency. One-shot and streamed merges share it — and share
// mergeQueue — so mixing arrival models keeps the congestion economics
// consistent.
func (s *Server) mergeApplyCost() runtime.Duration {
	return runtime.Duration(float64(s.cfg.MDSApplyTime) *
		(1 + float64(s.mergeQueue-1)*s.cfg.MDSMergeCongestion))
}

// MergeQueue reports the number of in-flight Volatile Apply jobs,
// one-shot and streamed combined.
func (s *Server) MergeQueue() int { return s.mergeQueue }
