package mds

import (
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/sim"
)

// mergeChunk bounds how many events are applied per CPU acquisition
// during Volatile Apply, so bulk merges do not starve RPC traffic forever
// while keeping simulation overhead low.
const mergeChunk = 256

// VolatileApply is the merge mechanism (paper §III-A): the client's
// in-memory journal is shipped to the MDS (memory-to-memory over the
// network) and blindly replayed onto the in-memory metadata store. No
// consistency checks are performed; conflicting creates are resolved in
// favor of the decoupled namespace (interfere "allow" semantics). Nothing
// is durable until a separate durability mechanism runs.
//
// nominalBytes is the journal's transfer footprint (events x ~2.5 KB).
// The call blocks the client process until the merge completes and
// returns the number of events applied. It is a convenience wrapper that
// posts a MergeMsg to the rank's own endpoint.
func (s *Server) VolatileApply(p *sim.Proc, events []*journal.Event, nominalBytes int64) (int, error) {
	r := s.ep.Post(p, &MergeMsg{Events: events, NominalBytes: nominalBytes}).(*MergeReply)
	return r.Applied, r.Err
}

// volatileApply is the MergeMsg handler body.
func (s *Server) volatileApply(p *sim.Proc, events []*journal.Event, nominalBytes int64) (int, error) {
	if s.stopped {
		return 0, ErrShutdown
	}
	s.mergeQueue++
	defer func() { s.mergeQueue-- }()

	// Ship the journal to the MDS. The network hop is charged against
	// the shared fabric; concurrent merges queue on it.
	p.Sleep(s.cfg.NetLatency)
	if nominalBytes > 0 {
		s.obj.Net().Transfer(p, nominalBytes)
	}

	// Session/inode-range validation before replay.
	s.cpu.Use(p, s.cfg.MDSMergeSetup)
	s.metrics.MergeJobs++

	applied := 0
	for off := 0; off < len(events); off += mergeChunk {
		end := off + mergeChunk
		if end > len(events) {
			end = len(events)
		}
		chunk := events[off:end]

		// Apply cost grows with the number of journals waiting to
		// merge: 20 journals landing at once congest the MDS
		// (paper Fig 6a).
		per := sim.Duration(float64(s.cfg.MDSApplyTime) *
			(1 + float64(s.mergeQueue-1)*s.cfg.MDSMergeCongestion))

		s.cpu.Acquire(p)
		p.Sleep(per * sim.Duration(len(chunk)))
		for _, ev := range chunk {
			if err := s.store.ApplyEvent(ev); err != nil {
				s.cpu.Release()
				return applied, fmt.Errorf("volatile apply: %w", err)
			}
			applied++
			s.metrics.Merged++
		}
		s.cpu.Release()
	}
	return applied, nil
}

// MergeQueue reports the number of in-flight Volatile Apply jobs.
func (s *Server) MergeQueue() int { return s.mergeQueue }
