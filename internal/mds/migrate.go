package mds

import (
	"errors"
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// This file implements the rank side of online subtree migration: the
// exporting rank freezes the subtree, durably saves its directory
// objects, and streams them to the importing rank over the same
// windowed/backpressured chunk machinery the merge scheduler uses; the
// export-commit record makes the handoff crash-adjudicable. The monitor
// orchestrates the protocol (monitor.Migrate) and owns the routing
// linearization point: ownership changes only when a new epoch is
// published, so any crash or abort before that leaves the source
// authoritative and the destination holding a harmless stale copy.

// MigrationPool is the RADOS pool holding export-commit records.
const MigrationPool = "cudele_migration"

// ExportRecordName names the commit record of one migration sequence.
func ExportRecordName(seq uint64) string {
	return fmt.Sprintf("export.%08d", seq)
}

// ErrNotExporting is answered to export control messages for a subtree
// this rank has no export session for (e.g. after a crash wiped it).
var ErrNotExporting = errors.New("mds: no export session for subtree")

// ExportFreezeMsg freezes the subtree at Path on the owning rank:
// requests into it bounce with a Frozen redirect, its caps are revoked,
// and an export session (directory list, journal tail) is prepared.
type ExportFreezeMsg struct{ Path string }

// ExportManifest summarizes a frozen subtree for the importer.
type ExportManifest struct {
	Path    string
	Root    namespace.Ino
	Dirs    int // directory objects to stream
	Inodes  int // inodes under the subtree
	Caps    int // capabilities revoked at freeze
	Policy  *policy.Policy
	Owner   string // decoupling client, "" when not decoupled
	GrantLo namespace.Ino
	GrantN  uint64
	Tail    []*journal.Event // journal events touching the subtree
}

// ExportFreezeReply answers an ExportFreezeMsg.
type ExportFreezeReply struct {
	Manifest ExportManifest
	Err      error
}

// ExportReadMsg asks the exporting rank for the next chunk of encoded
// directory objects of its export session for Path.
type ExportReadMsg struct {
	Path  string
	Chunk int // chunk index, sequential from 0
}

// ExportReadReply carries one chunk of encoded directory objects.
type ExportReadReply struct {
	Objs [][]byte
	Last bool
	Err  error
}

// ExportSaveMsg makes the frozen subtree durable: every directory object
// under it is written to the metadata pool, so all updates acknowledged
// before the freeze survive any crash regardless of which rank dies
// next.
type ExportSaveMsg struct{ Path string }

// ExportSaveReply answers an ExportSaveMsg.
type ExportSaveReply struct {
	Saved int
	Err   error
}

// ExportCommitMsg finishes the source side: the rank writes the
// journaled export-commit record and, on success, prunes the subtree
// and thaws routing state. A failed (or torn) record write leaves the
// subtree frozen and intact; the monitor then aborts the migration.
type ExportCommitMsg struct {
	Path string
	Seq  uint64 // monitor-assigned migration sequence
	Dst  int    // destination rank, recorded for the audit trail
}

// ExportCommitReply answers an ExportCommitMsg.
type ExportCommitReply struct {
	Pruned int
	Err    error
}

// ExportAbortMsg unfreezes a subtree and discards the export session.
// Safe to send to a rank that crashed mid-export: the session is
// volatile, so an unknown path is acknowledged as already aborted.
type ExportAbortMsg struct{ Path string }

// ExportAbortReply answers an ExportAbortMsg.
type ExportAbortReply struct{ Err error }

// ImportOpenMsg opens an import session on the destination rank. The
// importer bounds concurrent admissions (MigrateAdmitMax) and buffers
// chunks in a flow-control window, exactly like the merge scheduler.
type ImportOpenMsg struct {
	Path      string
	TotalDirs int
}

// ImportOpenReply answers an ImportOpenMsg.
type ImportOpenReply struct {
	ID           uint64
	Window       int
	Backpressure bool
	Err          error
}

// Backpressured implements transport.Flow.
func (r *ImportOpenReply) Backpressured() bool { return r.Backpressure }

// ImportChunkMsg ships one chunk of encoded directory objects.
type ImportChunkMsg struct {
	transport.StreamInfo
	Path string
	Objs [][]byte
}

// ImportChunkReply answers an ImportChunkMsg.
type ImportChunkReply struct {
	Backpressure bool
	Window       int
	Err          error
}

// Backpressured implements transport.Flow.
func (r *ImportChunkReply) Backpressured() bool { return r.Backpressure }

// ImportCommitMsg completes an import: waits for buffered chunks to
// drain, installs the subtree's policy/owner/grant verbatim (so the
// grant a client already holds stays valid across the move), and
// appends the shipped journal tail to the importer's own journal.
type ImportCommitMsg struct {
	ID       uint64
	Manifest ExportManifest
}

// ImportCommitReply answers an ImportCommitMsg.
type ImportCommitReply struct {
	Installed int
	Err       error
}

// ImportAbortMsg abandons an import session; buffered and already
// installed state is left as a harmless unreachable copy (routing never
// pointed at the importer).
type ImportAbortMsg struct{ ID uint64 }

// ImportAbortReply answers an ImportAbortMsg.
type ImportAbortReply struct{ Err error }

// AttachMsg installs a subtree's policy, owner, and an exact inode
// grant on a rank without allocating a fresh range — the re-attach path
// after a migration or a rank restart, where the client must keep the
// grant it already holds. Attach is a control message: it bypasses the
// freeze/ownership bounce.
type AttachMsg struct {
	Path   string
	Policy *policy.Policy
	Client string
	Lo     namespace.Ino
	N      uint64
}

// AttachReply answers an AttachMsg.
type AttachReply struct{ Err error }

// --- exporting rank ---

// exportState is one live export session on the source rank.
type exportState struct {
	path     string
	root     namespace.Ino
	dirs     []namespace.Ino // breadth-first, parents before children
	manifest ExportManifest
}

// migrateChunkDirs returns the per-chunk directory-object count.
func (s *Server) migrateChunkDirs() int {
	if s.cfg.MigrateChunkDirs > 0 {
		return s.cfg.MigrateChunkDirs
	}
	return 16
}

// migrateDirCPU is the CPU cost to encode or install one directory
// object during migration.
func (s *Server) migrateDirCPU() runtime.Duration {
	if s.cfg.MigrateDirCPU > 0 {
		return s.cfg.MigrateDirCPU
	}
	return s.cfg.MDSApplyTime
}

// frozenCovers reports whether path is inside any frozen subtree.
func (s *Server) frozenCovers(path string) bool {
	if len(s.frozen) == 0 || path == "" {
		return false
	}
	for f := range s.frozen {
		if f == path || (len(path) > len(f) &&
			(f == "/" || (path[:len(f)] == f && path[len(f)] == '/'))) {
			return true
		}
	}
	return false
}

// exportFreeze is the ExportFreezeMsg handler: quiesce and snapshot the
// subtree. Freezing refuses while any Volatile Apply is in flight — a
// merge applied mid-export would corrupt the streamed image — and the
// monitor simply aborts and retries the migration later.
func (s *Server) exportFreeze(p runtime.Task, m *ExportFreezeMsg) *ExportFreezeReply {
	if s.stopped {
		return &ExportFreezeReply{Err: ErrShutdown}
	}
	if s.mergeQueue != 0 {
		return &ExportFreezeReply{Err: fmt.Errorf("mds: %d merges in flight: %w",
			s.mergeQueue, namespace.ErrBusy)}
	}
	path := cleanSubtreePath(m.Path)
	if s.frozenCovers(path) {
		return &ExportFreezeReply{Err: fmt.Errorf("mds: export %s: %w", path, namespace.ErrBusy)}
	}
	s.cpu.Acquire(p)
	defer s.cpu.Release()
	p.Sleep(s.serviceTime(OpResolve))

	root, err := s.store.Resolve(path)
	if err != nil {
		return &ExportFreezeReply{Err: err}
	}
	if !root.IsDir() || root.Ino == namespace.RootIno {
		return &ExportFreezeReply{Err: fmt.Errorf("mds: export %s: %w", path, namespace.ErrInval)}
	}

	ex := &exportState{path: path, root: root.Ino}
	inos := make(map[namespace.Ino]bool)
	if err := s.store.Walk(root.Ino, func(_ string, in *namespace.Inode) error {
		inos[in.Ino] = true
		if in.IsDir() {
			ex.dirs = append(ex.dirs, in.Ino)
		}
		return nil
	}); err != nil {
		return &ExportFreezeReply{Err: err}
	}
	// The ancestor chain (namespace root first) leads the stream: the
	// importer may never have seen the subtree's ancestry, and InstallDir
	// requires each directory's parent to exist. Ancestors are not part
	// of the export itself — they stay owned by this rank and are
	// excluded from the inode set, cap revocation, and the prune.
	var chain []namespace.Ino
	for ino := root.Ino; ino != namespace.RootIno; {
		in, err := s.store.Get(ino)
		if err != nil {
			return &ExportFreezeReply{Err: err}
		}
		chain = append([]namespace.Ino{in.Parent}, chain...)
		ino = in.Parent
	}
	ex.dirs = append(chain, ex.dirs...)

	// Revoke every capability under the subtree: clients lose their
	// read-caching caps mid-freeze and re-acquire them from the new
	// owner after the handoff. Revocation is real MDS work.
	revoked := 0
	for ino, dc := range s.caps {
		if !inos[ino] || (dc.holder == "" && !dc.shared) {
			continue
		}
		p.Sleep(s.cfg.MDSCapRevokeTime)
		s.metrics.CapRevokes++
		revoked++
		delete(s.caps, ino)
	}

	// The journal tail: every untrimmed event of this rank's journal
	// that touches the subtree ships with the manifest, so the importer's
	// own journal series covers the subtree's recent history.
	var tail []*journal.Event
	if s.stream.enabled {
		for _, ev := range s.stream.jrnl.Events() {
			if inos[namespace.Ino(ev.Parent)] || inos[namespace.Ino(ev.Ino)] {
				tail = append(tail, ev)
			}
		}
	}

	ex.manifest = ExportManifest{
		Path:   path,
		Root:   root.Ino,
		Dirs:   len(ex.dirs),
		Inodes: len(inos),
		Caps:   revoked,
		Policy: root.Policy,
		Tail:   tail,
	}
	if owner, ok := s.owners[root.Ino]; ok {
		ex.manifest.Owner = owner
	}
	if s.frozen == nil {
		s.frozen = make(map[string]bool)
	}
	if s.exports == nil {
		s.exports = make(map[string]*exportState)
	}
	s.frozen[path] = true
	s.exports[path] = ex
	s.metrics.Exports++
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), s.ep.Name(), "mds", "export.freeze",
			fmt.Sprintf("%s dirs=%d caps=%d tail=%d", path, len(ex.dirs), revoked, len(tail)))
	}
	return &ExportFreezeReply{Manifest: ex.manifest}
}

// exportSave is the ExportSaveMsg handler: write the frozen subtree's
// directory objects durably to the metadata pool. After this, every
// update acknowledged before the freeze is crash-safe on both sides.
func (s *Server) exportSave(p runtime.Task, m *ExportSaveMsg) *ExportSaveReply {
	ex := s.exports[cleanSubtreePath(m.Path)]
	if ex == nil {
		return &ExportSaveReply{Err: ErrNotExporting}
	}
	saved := 0
	for _, ino := range ex.dirs {
		data, err := s.store.EncodeDir(ino)
		if err != nil {
			return &ExportSaveReply{Saved: saved, Err: err}
		}
		oid := rados.ObjectID{Pool: namespace.ObjectPool, Name: namespace.DirObjectName(ino)}
		if err := s.obj.Write(p, oid, data); err != nil {
			return &ExportSaveReply{Saved: saved, Err: fmt.Errorf("export save: %w", err)}
		}
		saved++
	}
	return &ExportSaveReply{Saved: saved}
}

// exportRead is the ExportReadMsg handler: encode the next chunk of
// directory objects, charging the source rank's CPU per directory.
func (s *Server) exportRead(p runtime.Task, m *ExportReadMsg) *ExportReadReply {
	if s.stopped {
		return &ExportReadReply{Err: ErrShutdown}
	}
	ex := s.exports[cleanSubtreePath(m.Path)]
	if ex == nil {
		return &ExportReadReply{Err: ErrNotExporting}
	}
	k := s.migrateChunkDirs()
	lo := m.Chunk * k
	if lo < 0 || lo >= len(ex.dirs) {
		// An empty subtree (one dir) streams a single chunk; past-the-end
		// reads answer an empty final chunk.
		return &ExportReadReply{Last: true}
	}
	hi := lo + k
	if hi > len(ex.dirs) {
		hi = len(ex.dirs)
	}
	s.cpu.Acquire(p)
	objs := make([][]byte, 0, hi-lo)
	for _, ino := range ex.dirs[lo:hi] {
		p.Sleep(s.migrateDirCPU())
		data, err := s.store.EncodeDir(ino)
		if err != nil {
			s.cpu.Release()
			return &ExportReadReply{Err: err}
		}
		objs = append(objs, data)
	}
	s.cpu.Release()
	return &ExportReadReply{Objs: objs, Last: hi == len(ex.dirs)}
}

// exportCommit is the ExportCommitMsg handler: write the journaled
// export-commit record, then prune the subtree and thaw. The record is
// a single CRC-protected journal event, so a torn write is detectable
// and adjudicates the migration as aborted.
func (s *Server) exportCommit(p runtime.Task, m *ExportCommitMsg) *ExportCommitReply {
	if s.stopped {
		return &ExportCommitReply{Err: ErrShutdown}
	}
	path := cleanSubtreePath(m.Path)
	ex := s.exports[path]
	if ex == nil {
		return &ExportCommitReply{Err: ErrNotExporting}
	}
	rec := &journal.Event{
		Type:      journal.EvExport,
		Seq:       m.Seq,
		Name:      path,
		Ino:       uint64(ex.root),
		Parent:    uint64(s.rank),
		NewParent: uint64(m.Dst),
	}
	var enc journal.Encoder
	data, err := enc.Encode([]*journal.Event{rec})
	if err != nil {
		return &ExportCommitReply{Err: err}
	}
	oid := rados.ObjectID{Pool: MigrationPool, Name: ExportRecordName(m.Seq)}
	if err := s.obj.Write(p, oid, data); err != nil {
		// The record is not durably down: leave the subtree frozen and
		// intact so the monitor's abort path restores service here.
		return &ExportCommitReply{Err: fmt.Errorf("export commit record: %w", err)}
	}
	pruned, err := s.store.PruneSubtree(path)
	if err != nil {
		return &ExportCommitReply{Err: err}
	}
	delete(s.owners, ex.root)
	delete(s.exports, path)
	// The freeze deliberately persists: routing points at this rank
	// until the monitor publishes the new epoch, and a request served
	// from the pruned store would see a spurious ErrNotExist. The
	// monitor thaws the subtree (ExportAbortMsg) right after publish;
	// from then on stale routes bounce with the new epoch instead.
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), s.ep.Name(), "mds", "export.commit",
			fmt.Sprintf("%s seq=%d pruned=%d -> rank %d", path, m.Seq, pruned, m.Dst))
	}
	return &ExportCommitReply{Pruned: pruned}
}

// exportAbort is the ExportAbortMsg handler: thaw and keep everything.
// Unknown sessions (wiped by a crash) acknowledge as already aborted.
func (s *Server) exportAbort(p runtime.Task, m *ExportAbortMsg) *ExportAbortReply {
	path := cleanSubtreePath(m.Path)
	delete(s.frozen, path)
	delete(s.exports, path)
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), s.ep.Name(), "mds", "export.abort", path)
	}
	return &ExportAbortReply{}
}

// --- importing rank ---

// importJob is one admitted import session on the destination rank.
type importJob struct {
	id        uint64
	path      string
	win       *transport.Window
	installed int
	err       error
	last      bool
	aborted   bool
	done      runtime.Signal
}

// importSched is one rank's import scheduler: bounded admission plus a
// window per job, drained by a single installer proc — the merge
// scheduler's shape applied to directory objects.
type importSched struct {
	s         *Server
	jobs      []*importJob
	nextID    uint64
	admitting int
	running   bool
	idle      runtime.Signal
	finished  map[uint64]*importJob
}

func newImportSched(s *Server) *importSched {
	return &importSched{s: s, finished: make(map[uint64]*importJob)}
}

func (is *importSched) find(id uint64) *importJob {
	for _, j := range is.jobs {
		if j.id == id {
			return j
		}
	}
	return nil
}

// importAdmitMax returns the concurrent-import bound.
func (s *Server) importAdmitMax() int {
	if s.cfg.MigrateAdmitMax > 0 {
		return s.cfg.MigrateAdmitMax
	}
	return 2
}

// importOpen is the ImportOpenMsg handler: admission control, mirroring
// mergeOpen (slot reserved before the first yield).
func (s *Server) importOpen(p runtime.Task, m *ImportOpenMsg) *ImportOpenReply {
	if s.stopped {
		return &ImportOpenReply{Err: ErrShutdown}
	}
	is := s.imports
	if len(is.jobs)+is.admitting >= s.importAdmitMax() {
		s.metrics.ImportBackpressure++
		return &ImportOpenReply{Backpressure: true}
	}
	is.admitting++
	p.Sleep(s.cfg.NetLatency)
	is.admitting--

	win := s.cfg.MigrateWindowChunks
	if win < 1 {
		win = 4
	}
	is.nextID++
	job := &importJob{
		id:   is.nextID,
		path: cleanSubtreePath(m.Path),
		win:  transport.NewWindow(win),
		done: s.eng.NewSignal(),
	}
	is.jobs = append(is.jobs, job)
	s.metrics.Imports++
	is.ensureRunning()
	return &ImportOpenReply{ID: job.id, Window: win}
}

// importChunk is the ImportChunkMsg handler: accept the chunk into the
// job's window or answer with backpressure.
func (s *Server) importChunk(p runtime.Task, m *ImportChunkMsg) *ImportChunkReply {
	if s.stopped {
		return &ImportChunkReply{Err: ErrShutdown}
	}
	job := s.imports.find(m.ID)
	if job == nil {
		return &ImportChunkReply{Err: fmt.Errorf("mds: import stream %d: %w", m.ID, namespace.ErrInval)}
	}
	if job.win.Len() >= job.win.Limit() {
		s.metrics.ImportBackpressure++
		return &ImportChunkReply{Backpressure: true, Window: job.win.Len()}
	}
	p.Sleep(s.cfg.NetLatency)
	var bytes int64
	for _, o := range m.Objs {
		bytes += int64(len(o))
	}
	if bytes > 0 {
		s.obj.Net().Transfer(p, bytes)
	}
	// Re-verify after the wire yield, like mergeChunk.
	if job.aborted {
		return &ImportChunkReply{Err: ErrNotExporting}
	}
	if !job.win.TryPush(p.Now(), m) {
		s.metrics.ImportBackpressure++
		return &ImportChunkReply{Backpressure: true, Window: job.win.Len()}
	}
	s.metrics.ImportChunks++
	s.imports.kick()
	return &ImportChunkReply{Window: job.win.Len()}
}

// importCommit is the ImportCommitMsg handler: wait for the install
// proc to drain the job, then adopt the subtree's policy, owner, grant,
// and journal tail.
func (s *Server) importCommit(p runtime.Task, m *ImportCommitMsg) *ImportCommitReply {
	is := s.imports
	job := is.find(m.ID)
	if job == nil {
		job = is.finished[m.ID]
	}
	if job == nil {
		return &ImportCommitReply{Err: fmt.Errorf("mds: import stream %d: %w", m.ID, namespace.ErrInval)}
	}
	job.done.Wait(p)
	delete(is.finished, m.ID)
	if job.err != nil {
		return &ImportCommitReply{Installed: job.installed, Err: job.err}
	}
	if s.stopped {
		return &ImportCommitReply{Installed: job.installed, Err: ErrShutdown}
	}

	man := m.Manifest
	root, err := s.store.Resolve(man.Path)
	if err != nil {
		return &ImportCommitReply{Installed: job.installed, Err: err}
	}
	if man.Policy != nil {
		if err := s.store.SetPolicy(root.Ino, man.Policy); err != nil {
			return &ImportCommitReply{Installed: job.installed, Err: err}
		}
	}
	if man.Owner != "" {
		s.owners[root.Ino] = man.Owner
		if man.GrantLo != 0 && man.GrantN > 0 {
			if err := s.store.ReserveRange(man.GrantLo, man.GrantN); err != nil {
				return &ImportCommitReply{Installed: job.installed, Err: err}
			}
		}
	}
	// Append the shipped journal tail to this rank's own journal series,
	// charging the usual per-event journaling CPU. Replay after a crash
	// tolerates these (the saved directory objects already contain the
	// same state).
	if s.stream.enabled && len(man.Tail) > 0 {
		s.cpu.Acquire(p)
		for _, ev := range man.Tail {
			p.Sleep(s.cfg.MDSJournalOpTime)
			if seg, err := s.stream.jrnl.Append(ev); err == nil {
				s.metrics.Journaled++
				if seg != nil {
					s.stream.queue = append(s.stream.queue, seg)
					s.stream.kick()
				}
			}
		}
		s.cpu.Release()
	}
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), s.ep.Name(), "mds", "import.commit",
			fmt.Sprintf("%s dirs=%d tail=%d", man.Path, job.installed, len(man.Tail)))
	}
	return &ImportCommitReply{Installed: job.installed}
}

// importAbort is the ImportAbortMsg handler.
func (s *Server) importAbort(p runtime.Task, m *ImportAbortMsg) *ImportAbortReply {
	is := s.imports
	if job := is.find(m.ID); job != nil {
		job.aborted = true
		is.ensureRunning()
		return &ImportAbortReply{}
	}
	delete(is.finished, m.ID)
	return &ImportAbortReply{}
}

func (is *importSched) ensureRunning() {
	if is.running {
		is.kick()
		return
	}
	is.running = true
	is.s.eng.Spawn(is.s.ep.Name()+".import", is.run)
}

func (is *importSched) kick() {
	if is.idle != nil {
		idle := is.idle
		is.idle = nil
		idle.Fire(nil)
	}
}

func (is *importSched) pick() *importJob {
	for _, j := range is.jobs {
		if j.win.Len() > 0 {
			return j
		}
	}
	return nil
}

// run is the installer proc: pop one chunk, install its directory
// objects into the live store at the per-directory CPU cost.
func (is *importSched) run(p runtime.Task) {
	s := is.s
	for {
		is.retireAborted(p)
		job := is.pick()
		if job == nil {
			if len(is.jobs) == 0 {
				is.running = false
				return
			}
			is.idle = s.eng.NewSignal()
			is.idle.Wait(p)
			continue
		}
		payload, _, _ := job.win.Pop(p.Now())
		chunk := payload.(*ImportChunkMsg)
		if chunk.Last {
			job.last = true
		}
		if job.err == nil && len(chunk.Objs) > 0 {
			s.cpu.Acquire(p)
			for _, data := range chunk.Objs {
				p.Sleep(s.migrateDirCPU())
				obj, err := namespace.DecodeDir(data)
				if err == nil {
					err = s.store.InstallDir(obj)
				}
				if err != nil {
					job.err = fmt.Errorf("import install: %w", err)
					break
				}
				job.installed++
			}
			s.cpu.Release()
		}
		if job.last && job.win.Len() == 0 {
			is.finish(job)
		}
	}
}

func (is *importSched) retireAborted(p runtime.Task) {
	for i := 0; i < len(is.jobs); {
		job := is.jobs[i]
		if !job.aborted {
			i++
			continue
		}
		for job.win.Len() > 0 {
			job.win.Pop(p.Now())
		}
		is.finish(job)
	}
}

func (is *importSched) finish(job *importJob) {
	for i, j := range is.jobs {
		if j == job {
			is.jobs = append(is.jobs[:i], is.jobs[i+1:]...)
			break
		}
	}
	job.done.Fire(nil)
	if !job.aborted {
		is.finished[job.id] = job
	}
}

// --- attach ---

// Attach installs a subtree policy/owner/grant verbatim on this rank
// (monitor re-attach path).
func (s *Server) Attach(p runtime.Task, path string, pol *policy.Policy, client string, lo namespace.Ino, n uint64) error {
	return s.ep.Post(p, &AttachMsg{Path: path, Policy: pol, Client: client, Lo: lo, N: n}).(*AttachReply).Err
}

// attach is the AttachMsg handler body.
func (s *Server) attach(p runtime.Task, m *AttachMsg) *AttachReply {
	if s.stopped {
		return &AttachReply{Err: ErrShutdown}
	}
	s.cpu.Acquire(p)
	defer s.cpu.Release()
	p.Sleep(s.serviceTime(OpResolve))
	in, err := s.store.Resolve(m.Path)
	if err != nil {
		return &AttachReply{Err: err}
	}
	if m.Policy != nil {
		if err := s.store.SetPolicy(in.Ino, m.Policy); err != nil {
			return &AttachReply{Err: err}
		}
	}
	if m.Client != "" {
		s.owners[in.Ino] = m.Client
	}
	if m.Lo != 0 && m.N > 0 {
		if err := s.store.ReserveRange(m.Lo, m.N); err != nil {
			return &AttachReply{Err: err}
		}
	}
	return &AttachReply{}
}

// Frozen reports whether any subtree covering path is frozen on this
// rank (exported mid-flight).
func (s *Server) Frozen(path string) bool { return s.frozenCovers(cleanSubtreePath(path)) }
