// Package mds implements the metadata server: the in-memory metadata
// store, the request pipeline, the inode cache and capability protocol,
// journal streaming with the segment/dispatch tunables, bulk merge of
// decoupled client journals (Volatile Apply), and recovery from the
// RADOS-resident metadata store (paper §II, §IV).
//
// The server is a simulation process: clients call Submit from their own
// sim processes; the request is queued, served on the MDS CPU resource
// (charging calibrated service times), and the reply carries capability
// state back to the client.
package mds

import (
	"errors"
	"fmt"

	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/sim"
)

// Op identifies a metadata RPC.
type Op uint8

// Metadata RPC operations.
const (
	OpLookup Op = iota
	OpCreate
	OpMkdir
	OpGetAttr
	OpSetAttr
	OpReadDir
	OpUnlink
	OpRmdir
	OpRename
	OpResolve
	opMax
)

var opNames = [...]string{
	OpLookup:  "lookup",
	OpCreate:  "create",
	OpMkdir:   "mkdir",
	OpGetAttr: "getattr",
	OpSetAttr: "setattr",
	OpReadDir: "readdir",
	OpUnlink:  "unlink",
	OpRmdir:   "rmdir",
	OpRename:  "rename",
	OpResolve: "resolve",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is one metadata RPC from a client.
type Request struct {
	Op     Op
	Client string

	Parent namespace.Ino
	Name   string
	Path   string // OpResolve only

	NewParent namespace.Ino // OpRename
	NewName   string        // OpRename

	Ino   namespace.Ino // OpGetAttr / OpSetAttr
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Mtime int64
}

// Reply is the MDS's answer.
type Reply struct {
	Err error

	Ino   namespace.Ino
	IsDir bool
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Mtime int64

	Names []string // OpReadDir

	// CapGranted tells the client it now holds the read-caching
	// capability on the request's parent directory: it may satisfy
	// lookups locally.
	CapGranted bool
	// CapLost tells the client the directory has become shared and its
	// capability (if any) is gone: subsequent creates need a lookup RPC
	// first (paper Fig 3c).
	CapLost bool
}

// ErrShutdown is returned for requests submitted to a stopped server.
var ErrShutdown = errors.New("mds: server shut down")

// Metrics collects cumulative server counters for the benchmarks.
type Metrics struct {
	Requests   uint64
	ByOp       [opMax]uint64
	CapRevokes uint64
	Rejected   uint64 // interfere-block -EBUSY replies
	Journaled  uint64 // events appended to the MDS journal
	Dispatches uint64 // journal segments pushed to the object store
	Merged     uint64 // events merged via Volatile Apply
	MergeJobs  uint64 // client journals merged
}

// Server is one simulated metadata server daemon.
type Server struct {
	eng   *sim.Engine
	cfg   model.Config
	store *namespace.Store
	obj   *rados.Cluster

	cpu *sim.Resource // single-threaded request pipeline, like CephFS

	sessions map[string]bool

	caps map[namespace.Ino]*dirCaps

	// owners maps a decoupled subtree's policy-root inode to the client
	// that decoupled it, for interfere-policy enforcement.
	owners map[namespace.Ino]string

	stream *streamState

	mergeQueue int // client journals queued for Volatile Apply

	metrics Metrics

	stopped bool
}

// New creates a metadata server over the given object store. The store
// starts with just the root directory; use Recover to load state from
// RADOS.
func New(eng *sim.Engine, cfg model.Config, obj *rados.Cluster) *Server {
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		store:    namespace.NewStore(),
		obj:      obj,
		cpu:      sim.NewResource(eng, "mds.cpu", 1),
		sessions: make(map[string]bool),
		caps:     make(map[namespace.Ino]*dirCaps),
		owners:   make(map[namespace.Ino]string),
	}
	s.stream = newStreamState(s)
	return s
}

// Store exposes the in-memory metadata store. Benchmarks and the monitor
// read it; clients must go through Submit.
func (s *Server) Store() *namespace.Store { return s.store }

// CPU exposes the MDS CPU resource for utilization reporting.
func (s *Server) CPU() *sim.Resource { return s.cpu }

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() Metrics { return s.metrics }

// Config returns the server's calibration config.
func (s *Server) Config() model.Config { return s.cfg }

// SetStream turns MDS journal streaming (the Stream mechanism) on or off.
func (s *Server) SetStream(on bool) { s.stream.enabled = on }

// StreamEnabled reports whether journal streaming is on.
func (s *Server) StreamEnabled() bool { return s.stream.enabled }

// Shutdown makes the server reject future requests.
func (s *Server) Shutdown() { s.stopped = true }

// OpenSession registers a client session. Additional active sessions add
// per-op bookkeeping overhead (lock contention, cap accounting), which is
// what limits scaling beyond pure CPU saturation (paper §II-A).
func (s *Server) OpenSession(client string) {
	s.sessions[client] = true
}

// CloseSession removes a client session and drops its capabilities.
func (s *Server) CloseSession(client string) {
	delete(s.sessions, client)
	for _, dc := range s.caps {
		if dc.holder == client {
			dc.holder = ""
		}
	}
}

// Sessions returns the number of active client sessions.
func (s *Server) Sessions() int { return len(s.sessions) }

// serviceTime is the MDS CPU cost of one request, with uniform noise of
// +-MDSOpJitter to model cache misses and allocator variance.
func (s *Server) serviceTime(op Op) sim.Duration {
	base := s.cfg.MDSOpTime
	switch op {
	case OpLookup, OpGetAttr, OpResolve, OpReadDir:
		base = s.cfg.MDSLookupTime
	}
	n := len(s.sessions)
	if n > 1 {
		base += sim.Duration(n-1) * s.cfg.MDSSessionOverhead
	}
	if j := s.cfg.MDSOpJitter; j > 0 {
		noise := 1 + j*(2*s.eng.Rand().Float64()-1)
		base = sim.Duration(float64(base) * noise)
	}
	return base
}

// Submit sends one RPC to the server from the calling client process: one
// network hop in, FIFO service on the MDS CPU, one network hop back
// (paper §II: the RPCs mechanism).
func (s *Server) Submit(p *sim.Proc, req *Request) *Reply {
	p.Sleep(s.cfg.NetLatency) // request on the wire
	if s.stopped {
		return &Reply{Err: ErrShutdown}
	}
	s.metrics.Requests++
	if int(req.Op) < len(s.metrics.ByOp) {
		s.metrics.ByOp[req.Op]++
	}

	s.cpu.Acquire(p)
	reply := s.process(p, req)
	s.cpu.Release()

	// Journal the update: encoding and segment bookkeeping steal MDS CPU
	// (MDSJournalOpTime), and the client additionally waits for the safe
	// ack (MDSJournalLatency, latency only).
	if reply.Err == nil && s.stream.enabled && mutates(req.Op) {
		s.cpu.Acquire(p)
		p.Sleep(s.cfg.MDSJournalOpTime)
		s.stream.record(p, req)
		s.cpu.Release()
		p.Sleep(s.cfg.MDSJournalLatency)
	}

	p.Sleep(s.cfg.NetLatency) // reply on the wire
	return reply
}

func mutates(op Op) bool {
	switch op {
	case OpCreate, OpMkdir, OpSetAttr, OpUnlink, OpRmdir, OpRename:
		return true
	}
	return false
}

// process runs the request body while the CPU is held.
func (s *Server) process(p *sim.Proc, req *Request) *Reply {
	p.Sleep(s.serviceTime(req.Op))

	// Interfere policy: a request into a decoupled subtree owned by a
	// different client may be rejected with -EBUSY (paper §III-C).
	if mutates(req.Op) {
		if rej := s.checkInterfere(p, req); rej != nil {
			return rej
		}
	}

	switch req.Op {
	case OpLookup:
		in, err := s.store.Lookup(req.Parent, req.Name)
		if err != nil {
			return &Reply{Err: err}
		}
		return inodeReply(in)
	case OpResolve:
		in, err := s.store.Resolve(req.Path)
		if err != nil {
			return &Reply{Err: err}
		}
		return inodeReply(in)
	case OpGetAttr:
		in, err := s.store.Get(req.Ino)
		if err != nil {
			return &Reply{Err: err}
		}
		return inodeReply(in)
	case OpReadDir:
		names, err := s.store.ReadDir(req.Parent)
		if err != nil {
			return &Reply{Err: err}
		}
		return &Reply{Names: names}
	case OpCreate, OpMkdir:
		attrs := namespace.CreateAttrs{
			Mode: req.Mode, UID: req.UID, GID: req.GID,
			Mtime: int64(p.Now()),
		}
		var in *namespace.Inode
		var err error
		if req.Op == OpMkdir {
			in, err = s.store.Mkdir(req.Parent, req.Name, attrs)
		} else {
			in, err = s.store.Create(req.Parent, req.Name, attrs)
		}
		if err != nil {
			return &Reply{Err: err}
		}
		reply := inodeReply(in)
		s.updateCaps(p, req.Parent, req.Client, reply)
		return reply
	case OpSetAttr:
		if err := s.store.SetAttr(req.Ino, req.Mode, req.UID, req.GID, req.Size, req.Mtime); err != nil {
			return &Reply{Err: err}
		}
		return &Reply{Ino: req.Ino}
	case OpUnlink:
		if err := s.store.Unlink(req.Parent, req.Name); err != nil {
			return &Reply{Err: err}
		}
		reply := &Reply{}
		s.updateCaps(p, req.Parent, req.Client, reply)
		return reply
	case OpRmdir:
		if err := s.store.Rmdir(req.Parent, req.Name); err != nil {
			return &Reply{Err: err}
		}
		return &Reply{}
	case OpRename:
		if err := s.store.Rename(req.Parent, req.Name, req.NewParent, req.NewName); err != nil {
			return &Reply{Err: err}
		}
		reply := &Reply{}
		s.updateCaps(p, req.Parent, req.Client, reply)
		return reply
	}
	return &Reply{Err: fmt.Errorf("mds: %v: %w", req.Op, namespace.ErrInval)}
}

func inodeReply(in *namespace.Inode) *Reply {
	return &Reply{
		Ino: in.Ino, IsDir: in.IsDir(),
		Mode: in.Mode, UID: in.UID, GID: in.GID,
		Size: in.Size, Mtime: in.Mtime,
	}
}

// checkInterfere rejects mutations into a blocked decoupled subtree.
func (s *Server) checkInterfere(p *sim.Proc, req *Request) *Reply {
	parent := req.Parent
	if parent == 0 {
		return nil
	}
	root, err := s.store.PolicyRoot(parent)
	if err != nil || root == namespace.RootIno {
		return nil
	}
	owner, ok := s.owners[root]
	if !ok || owner == req.Client {
		return nil
	}
	pol, err := s.store.EffectivePolicy(root)
	if err != nil || pol.Interfere != policy.InterfereBlock {
		return nil
	}
	// Rejecting still costs cycles; when the MDS is underloaded this
	// overhead is visible (paper §V-B2).
	p.Sleep(s.cfg.MDSRejectTime)
	s.metrics.Rejected++
	return &Reply{Err: fmt.Errorf("mds: subtree decoupled by %s: %w", owner, namespace.ErrBusy)}
}

// Decouple attaches pol to the subtree at path, records client as its
// owner, and reserves an inode range for it. It is invoked via the
// monitor. The returned lo is the first inode of the grant.
func (s *Server) Decouple(p *sim.Proc, path string, pol *policy.Policy, client string) (lo namespace.Ino, n uint64, err error) {
	s.cpu.Acquire(p)
	defer s.cpu.Release()
	p.Sleep(s.serviceTime(OpResolve))

	in, err := s.store.Resolve(path)
	if err != nil {
		return 0, 0, err
	}
	if err := s.store.SetPolicy(in.Ino, pol); err != nil {
		return 0, 0, err
	}
	grant := pol.AllocatedInodes
	if grant <= 0 {
		grant = s.cfg.AllocatedInodesDefault
	}
	// Grant a range far from server-assigned numbers, like CephFS
	// prealloc ranges.
	lo = namespace.Ino(uint64(1)<<40 + uint64(len(s.owners))<<24)
	if err := s.store.ReserveRange(lo, uint64(grant)); err != nil {
		return 0, 0, err
	}
	s.owners[in.Ino] = client
	return lo, uint64(grant), nil
}

// Recouple clears the subtree's policy and owner registration.
func (s *Server) Recouple(p *sim.Proc, path string) error {
	s.cpu.Acquire(p)
	defer s.cpu.Release()
	p.Sleep(s.serviceTime(OpResolve))
	in, err := s.store.Resolve(path)
	if err != nil {
		return err
	}
	delete(s.owners, in.Ino)
	return s.store.SetPolicy(in.Ino, nil)
}

// Owner returns the client that decoupled the subtree rooted at ino.
func (s *Server) Owner(ino namespace.Ino) (string, bool) {
	o, ok := s.owners[ino]
	return o, ok
}
