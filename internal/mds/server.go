// Package mds implements the metadata service: the in-memory metadata
// store, the request pipeline, the inode cache and capability protocol,
// journal streaming with the segment/dispatch tunables, bulk merge of
// decoupled client journals (Volatile Apply), and recovery from the
// RADOS-resident metadata store (paper §II, §IV).
//
// A Server is one metadata rank. It is a simulation process: clients
// send messages to its transport endpoint from their own sim processes;
// the request is queued, served on the rank's CPU resource (charging
// calibrated service times), and the reply carries capability state back
// to the client. Cross-cutting pipeline stages — admission, accounting,
// journaling, interference checks — are transport interceptors around
// the table-driven op handlers (ops.go). Cluster composes N ranks behind
// a routing table (cluster.go).
package mds

import (
	"errors"
	"fmt"

	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/obs"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// Op identifies a metadata RPC.
type Op uint8

// Metadata RPC operations.
const (
	OpLookup Op = iota
	OpCreate
	OpMkdir
	OpGetAttr
	OpSetAttr
	OpReadDir
	OpUnlink
	OpRmdir
	OpRename
	OpResolve
	opMax
)

// Request is one metadata RPC from a client.
type Request struct {
	Op     Op
	Client string

	// Route is the request's path hint for the routing layer: the
	// parent directory's path when the client knows it, empty otherwise
	// (empty routes to rank 0).
	Route string

	Parent namespace.Ino
	Name   string
	Path   string // OpResolve only

	NewParent namespace.Ino // OpRename
	NewName   string        // OpRename

	Ino   namespace.Ino // OpGetAttr / OpSetAttr
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Mtime int64
}

// Reply is the MDS's answer.
type Reply struct {
	Err error

	Ino   namespace.Ino
	IsDir bool
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Mtime int64

	Names []string // OpReadDir

	// CapGranted tells the client it now holds the read-caching
	// capability on the request's parent directory: it may satisfy
	// lookups locally.
	CapGranted bool
	// CapLost tells the client the directory has become shared and its
	// capability (if any) is gone: subsequent creates need a lookup RPC
	// first (paper Fig 3c).
	CapLost bool
}

// ErrShutdown is returned for requests submitted to a stopped server.
var ErrShutdown = errors.New("mds: server shut down")

// Metrics collects cumulative server counters for the benchmarks.
type Metrics struct {
	Requests     uint64
	ByOp         [opMax]uint64
	CapRevokes   uint64
	Rejected     uint64 // interfere-block -EBUSY replies
	Journaled    uint64 // events appended to the MDS journal
	Dispatches   uint64 // journal segments pushed to the object store
	JournalBytes uint64 // nominal journal bytes streamed to the object store
	Merged       uint64 // events merged via Volatile Apply
	MergeJobs    uint64 // client journals merged
	// MergeConflicts counts speculative predictions rejected at
	// validation time (newcells.go).
	MergeConflicts uint64
	// Streamed-merge pipeline counters (scheduler.go).
	MergeChunks       uint64 // chunks accepted into merge windows
	MergeBackpressure uint64 // opens/chunks answered with backpressure
	// Migration counters (migrate.go).
	Exports            uint64 // subtrees frozen for export on this rank
	Imports            uint64 // import sessions admitted on this rank
	ImportChunks       uint64 // directory-object chunks accepted
	ImportBackpressure uint64 // import opens/chunks answered with backpressure
	Bounced            uint64 // requests answered with a WrongRank redirect
}

// Server is one simulated metadata rank.
type Server struct {
	eng   runtime.Runtime
	cfg   model.Config
	store *namespace.Store
	obj   *rados.Cluster
	rank  int

	cpu runtime.Resource // single-threaded request pipeline, like CephFS

	sessions map[string]bool

	caps map[namespace.Ino]*dirCaps

	// owners maps a decoupled subtree's policy-root inode to the client
	// that decoupled it, for interfere-policy enforcement.
	owners map[namespace.Ino]string

	stream *streamState

	merge *mergeSched // streamed (chunked) Volatile Apply scheduler

	// se is the lazily created strong-eventual merge resolver over
	// store; nil until the first MergeConverge message, wiped with the
	// store on Crash.
	se *namespace.SEMerger

	mergeQueue int // client journals queued for Volatile Apply

	// frozen marks subtree paths mid-export: requests into them bounce
	// with a Frozen redirect until the migration commits or aborts.
	// exports holds the live export sessions; imports is the
	// destination-side scheduler. All volatile — a crash wipes them.
	frozen  map[string]bool
	exports map[string]*exportState
	imports *importSched

	// resolveOwner is the cluster-installed ownership oracle for the
	// stale-routing bounce: it returns the owning rank and table epoch
	// for a path, with ok=false while no migration or split has ever
	// happened (the check is then skipped entirely, keeping calibrated
	// runs byte-identical). nil on standalone servers.
	resolveOwner func(path string) (rank int, epoch uint64, ok bool)

	metrics Metrics

	// heat is the per-subtree load accountant; nil (the default) means
	// heat accounting is off and the record sites cost one nil check.
	// subtreeOf maps a request route to its placed subtree (the heat
	// cell key); nil folds everything into "/".
	heat      *obs.Heat
	subtreeOf func(string) string

	stopped bool

	// recoveredSegs is how many streamed journal segment objects the last
	// Recover replayed; Restart offsets the fresh journal's object names
	// past them so the rank's on-store series stays append-only.
	recoveredSegs int

	// rpc is the interceptor pipeline around the op handlers; ep is the
	// rank's wire endpoint (network latency on Call).
	rpc transport.Handler
	ep  *transport.Wire
}

// New creates a single metadata rank (rank 0) over the given object
// store. The store starts with just the root directory; use Recover to
// load state from RADOS.
func New(eng runtime.Runtime, cfg model.Config, obj *rados.Cluster) *Server {
	return NewRank(eng, cfg, obj, 0)
}

// NewRank creates the metadata server for one rank of a multi-rank
// deployment. Ranks other than 0 allocate server-assigned inode numbers
// from a disjoint band so partitions of one namespace never collide.
func NewRank(eng runtime.Runtime, cfg model.Config, obj *rados.Cluster, rank int) *Server {
	cpuName := "mds.cpu"
	if rank > 0 {
		cpuName = fmt.Sprintf("mds%d.cpu", rank)
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		store:    namespace.NewStore(),
		obj:      obj,
		rank:     rank,
		cpu:      eng.NewResource(cpuName, 1),
		sessions: make(map[string]bool),
		caps:     make(map[namespace.Ino]*dirCaps),
		owners:   make(map[namespace.Ino]string),
	}
	if rank > 0 {
		s.store.SetInoFloor(rankInoFloor(rank))
	}
	s.stream = newStreamState(s)
	s.merge = newMergeSched(s)
	s.imports = newImportSched(s)
	s.rpc = transport.Chain(s.dispatchOp,
		s.admission, s.accounting, s.journaling, s.execution, s.interference)
	// The tracing interceptor wraps the whole message dispatcher, so
	// every RPC and Post is spanned on the rank's track without any op
	// handler knowing about it; with tracing off it is one nil check.
	name := fmt.Sprintf("mds.%d", rank)
	s.ep = transport.NewWire(name, cfg.NetLatency,
		transport.Chain(s.handle, transport.Tracing(name, msgLabel)))
	return s
}

// msgLabel names the span for one endpoint message. Only called when
// tracing is enabled.
func msgLabel(msg any) string {
	switch m := msg.(type) {
	case *Request:
		return "rpc." + m.Op.String()
	case *MergeMsg:
		return "merge"
	case *MergeOpenMsg:
		return "merge.open"
	case *MergeChunkMsg:
		return "merge.chunk"
	case *MergeWaitMsg:
		return "merge.wait"
	case *MergeAbortMsg:
		return "merge.abort"
	case *DecoupleMsg:
		return "decouple"
	case *RecoupleMsg:
		return "recouple"
	case *ExportFreezeMsg:
		return "export.freeze"
	case *ExportSaveMsg:
		return "export.save"
	case *ExportReadMsg:
		return "export.read"
	case *ExportCommitMsg:
		return "export.commit"
	case *ExportAbortMsg:
		return "export.abort"
	case *ImportOpenMsg:
		return "import.open"
	case *ImportChunkMsg:
		return "import.chunk"
	case *ImportCommitMsg:
		return "import.commit"
	case *ImportAbortMsg:
		return "import.abort"
	case *AttachMsg:
		return "attach"
	}
	return fmt.Sprintf("msg.%T", msg)
}

// flightDetail is the flight-recorder detail string for one endpoint
// message. Only called when the flight recorder is enabled.
func flightDetail(msg any) string {
	if m, ok := msg.(*Request); ok {
		if m.Route != "" {
			return m.Client + " " + m.Route
		}
		return m.Client
	}
	return RouteOf(msg)
}

// SetHeat installs the heat accountant (nil disables accounting).
// subtreeOf maps a request route to the placed subtree that owns it —
// the heat cell key — so load aggregates per policy subtree; nil folds
// every route into "/".
func (s *Server) SetHeat(h *obs.Heat, subtreeOf func(string) string) {
	s.heat = h
	s.subtreeOf = subtreeOf
}

// heatSubtree resolves a route to its heat cell subtree.
func (s *Server) heatSubtree(route string) string {
	if s.subtreeOf == nil {
		return "/"
	}
	return s.subtreeOf(route)
}

// rankInoFloor is the base of rank r's server-assigned inode band. Bands
// are 2^32 inodes wide, far below the 2^40 client-grant space.
func rankInoFloor(r int) namespace.Ino {
	return namespace.Ino(uint64(r) << 32)
}

// Rank returns the server's rank number.
func (s *Server) Rank() int { return s.rank }

// Name implements transport.Endpoint.
func (s *Server) Name() string { return s.ep.Name() }

// Call implements transport.Endpoint: one network hop in, pipeline
// service, one network hop back.
func (s *Server) Call(p runtime.Task, msg any) any { return s.ep.Call(p, msg) }

// Post implements transport.Endpoint: the message handler charges its
// own calibrated costs (bulk merges, control traffic).
func (s *Server) Post(p runtime.Task, msg any) any { return s.ep.Post(p, msg) }

// Endpoint returns the rank's wire endpoint.
func (s *Server) Endpoint() transport.Endpoint { return s.ep }

// InjectFaults composes a fault interceptor around the rank's wire, so a
// chaos harness can drop, delay, or duplicate messages to this rank.
// Never called on calibrated runs — the wire is untouched by default.
func (s *Server) InjectFaults(ic transport.Interceptor) { s.ep.Wrap(ic) }

// handle is the rank's message dispatcher behind the wire.
func (s *Server) handle(p runtime.Task, msg any) any {
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), s.ep.Name(), "mds", msgLabel(msg), flightDetail(msg))
	}
	if bounced := s.bounce(msg); bounced != nil {
		return bounced
	}
	switch m := msg.(type) {
	case *Request:
		return s.rpc(p, m)
	case *MergeMsg:
		var src eventSource = &sliceSource{evs: m.Events}
		if m.Events == nil && m.Source != nil {
			src = m.Source
		}
		var applied int
		var conflicts []int
		var err error
		switch m.Mode {
		case MergeSpeculative:
			// Validation reports absolute journal indices, so the
			// events must be addressable as one flat slice.
			evs := m.Events
			if evs == nil && m.Source != nil {
				for {
					batch := m.Source.Next(mergeChunk)
					if batch == nil {
						break
					}
					evs = append(evs, batch...)
				}
			}
			applied, conflicts, err = s.speculativeApply(p, evs, m.NominalBytes)
		case MergeConverge:
			applied, err = s.convergeApply(p, src, m.NominalBytes)
		default:
			applied, err = s.volatileApply(p, src, m.NominalBytes)
		}
		if s.heat != nil && applied > 0 {
			s.heat.RecordMerge(int64(p.Now()), s.heatSubtree(m.Route), s.rank, applied, m.NominalBytes)
		}
		return &MergeReply{Applied: applied, Conflicts: conflicts, Err: err}
	case *MergeOpenMsg:
		return s.mergeOpen(p, m)
	case *MergeChunkMsg:
		return s.mergeChunk(p, m)
	case *MergeWaitMsg:
		return s.mergeWait(p, m)
	case *MergeAbortMsg:
		return s.mergeAbort(p, m)
	case *DecoupleMsg:
		lo, n, err := s.decouple(p, m.Path, m.Policy, m.Client)
		return &DecoupleReply{Lo: lo, N: n, Err: err}
	case *RecoupleMsg:
		return &RecoupleReply{Err: s.recouple(p, m.Path)}
	case *ExportFreezeMsg:
		return s.exportFreeze(p, m)
	case *ExportSaveMsg:
		return s.exportSave(p, m)
	case *ExportReadMsg:
		return s.exportRead(p, m)
	case *ExportCommitMsg:
		return s.exportCommit(p, m)
	case *ExportAbortMsg:
		return s.exportAbort(p, m)
	case *ImportOpenMsg:
		return s.importOpen(p, m)
	case *ImportChunkMsg:
		return s.importChunk(p, m)
	case *ImportCommitMsg:
		return s.importCommit(p, m)
	case *ImportAbortMsg:
		return s.importAbort(p, m)
	case *AttachMsg:
		return s.attach(p, m)
	}
	return &Reply{Err: fmt.Errorf("mds: unknown message %T: %w", msg, namespace.ErrInval)}
}

// bounce answers workload messages addressed to a subtree this rank has
// frozen for export — or, once any migration has happened, does not own
// at all (a stale client table) — with a typed WrongRank redirect
// instead of serving them. Control traffic (decouple, attach, export,
// import) passes through. The check costs no simulated time and, on a
// cluster that has never migrated, reduces to one map-length test, so
// calibrated runs are untouched.
func (s *Server) bounce(msg any) any {
	switch msg.(type) {
	case *Request, *MergeMsg, *MergeOpenMsg:
	default:
		return nil
	}
	checkOwner := false
	if s.resolveOwner != nil {
		_, _, checkOwner = s.resolveOwner("/")
	}
	if len(s.frozen) == 0 && !checkOwner {
		return nil
	}
	route := RouteOf(msg)
	if route == "" {
		// Requests routed by parent-inode hint only: recover the path
		// server-side so the ownership check still applies.
		if req, ok := msg.(*Request); ok && req.Parent != 0 {
			if p, err := s.store.PathOf(req.Parent); err == nil {
				route = p
			}
		}
		if route == "" {
			return nil
		}
	}
	var werr *transport.WrongRankError
	if s.frozenCovers(cleanSubtreePath(route)) {
		werr = &transport.WrongRankError{Path: route, Rank: s.rank, Frozen: true}
	} else if checkOwner {
		if rank, e, ok := s.resolveOwner(route); ok && rank != s.rank {
			werr = &transport.WrongRankError{Path: route, Rank: rank, Epoch: e}
		}
	}
	if werr == nil {
		return nil
	}
	if s.resolveOwner != nil {
		if _, e, ok := s.resolveOwner(route); ok {
			werr.Epoch = e
		}
	}
	s.metrics.Bounced++
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(s.eng.Now()), s.ep.Name(), "mds", "bounce", werr.Error())
	}
	switch msg.(type) {
	case *Request:
		return &Reply{Err: werr}
	case *MergeMsg:
		return &MergeReply{Err: werr}
	case *MergeOpenMsg:
		return &MergeOpenReply{Err: werr}
	}
	return nil
}

// SetOwnership installs the cluster's ownership oracle for the
// stale-routing bounce.
func (s *Server) SetOwnership(resolve func(path string) (rank int, epoch uint64, ok bool)) {
	s.resolveOwner = resolve
}

// Store exposes the in-memory metadata store. Benchmarks and the monitor
// read it; clients must go through the endpoint.
func (s *Server) Store() *namespace.Store { return s.store }

// CPU exposes the MDS CPU resource for utilization reporting.
func (s *Server) CPU() runtime.Resource { return s.cpu }

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() Metrics { return s.metrics }

// Config returns the server's calibration config.
func (s *Server) Config() model.Config { return s.cfg }

// SetStream turns MDS journal streaming (the Stream mechanism) on or off.
func (s *Server) SetStream(on bool) { s.stream.enabled = on }

// Refresh implements the client Service interface: a single server has
// no routing replica to re-sync.
func (s *Server) Refresh() {}

// StreamEnabled reports whether journal streaming is on.
func (s *Server) StreamEnabled() bool { return s.stream.enabled }

// Shutdown makes the server reject future requests.
func (s *Server) Shutdown() { s.stopped = true }

// Crash models the rank dying: every piece of volatile state — sessions,
// capabilities, the owner map, the unflushed journal tail, buffered merge
// chunks — is lost, while objects already in RADOS survive. The server
// rejects requests until Restart. Streamed merges in flight are flagged
// aborted so the scheduler retires them, freeing their admission slots
// and unblocking any client parked in MergeWait with an error.
func (s *Server) Crash() {
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(s.eng.Now()), s.ep.Name(), "mds", "crash", "")
	}
	s.stopped = true
	s.sessions = make(map[string]bool)
	s.caps = make(map[namespace.Ino]*dirCaps)
	s.owners = make(map[namespace.Ino]string)
	s.store = namespace.NewStore()
	s.se = nil // the CRDT summaries rendered into the lost store die with it
	if s.rank > 0 {
		s.store.SetInoFloor(rankInoFloor(s.rank))
	}

	// Replace the stream state outright: a dispatch batch already in
	// flight keeps writing through the old state (those writes hit the
	// wire before the crash), but its bookkeeping can no longer leak into
	// the fresh journal.
	enabled := s.stream.enabled
	s.stream = newStreamState(s)
	s.stream.enabled = enabled

	// Retire in-flight streamed merges on the old scheduler, then start
	// fresh. finish() still decrements this server's mergeQueue, so the
	// congestion share drains to zero.
	for _, job := range s.merge.jobs {
		job.aborted = true
		if job.err == nil {
			job.err = ErrShutdown
		}
	}
	s.merge.ensureRunning()
	s.merge = newMergeSched(s)

	// Migration state is volatile: export sessions and freezes die with
	// the rank (the monitor's orchestration sees ErrShutdown or a missing
	// session and aborts); in-flight imports are retired the same way
	// streamed merges are.
	s.frozen = nil
	s.exports = nil
	for _, job := range s.imports.jobs {
		job.aborted = true
		if job.err == nil {
			job.err = ErrShutdown
		}
	}
	s.imports.ensureRunning()
	s.imports = newImportSched(s)
}

// Restart brings a crashed rank back: the metadata store is rebuilt from
// RADOS (directory objects plus streamed journal replay) and the rank
// accepts requests again. The fresh journal's segment objects continue
// the rank's series after the recovered ones instead of overwriting them.
func (s *Server) Restart(p runtime.Task) error {
	if fl := s.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), s.ep.Name(), "mds", "restart", "")
	}
	if err := s.Recover(p); err != nil {
		return err
	}
	s.stream.segBase = s.recoveredSegs
	s.stopped = false
	return nil
}

// OpenSession registers a client session. Additional active sessions add
// per-op bookkeeping overhead (lock contention, cap accounting), which is
// what limits scaling beyond pure CPU saturation (paper §II-A).
func (s *Server) OpenSession(client string) {
	s.sessions[client] = true
}

// CloseSession removes a client session and drops its capabilities.
func (s *Server) CloseSession(client string) {
	delete(s.sessions, client)
	for _, dc := range s.caps {
		if dc.holder == client {
			dc.holder = ""
		}
	}
}

// Sessions returns the number of active client sessions.
func (s *Server) Sessions() int { return len(s.sessions) }

// serviceTime is the MDS CPU cost of one request, with uniform noise of
// +-MDSOpJitter to model cache misses and allocator variance.
func (s *Server) serviceTime(op Op) runtime.Duration {
	base := s.cfg.MDSOpTime
	if op < opMax && opTable[op].lookup {
		base = s.cfg.MDSLookupTime
	}
	n := len(s.sessions)
	if n > 1 {
		base += runtime.Duration(n-1) * s.cfg.MDSSessionOverhead
	}
	if j := s.cfg.MDSOpJitter; j > 0 {
		noise := 1 + j*(2*s.eng.Rand().Float64()-1)
		base = runtime.Duration(float64(base) * noise)
	}
	return base
}

// Submit sends one RPC to the server from the calling client process: one
// network hop in, FIFO service on the MDS CPU, one network hop back
// (paper §II: the RPCs mechanism). It is a convenience wrapper over the
// rank's endpoint.
func (s *Server) Submit(p runtime.Task, req *Request) *Reply {
	return s.ep.Call(p, req).(*Reply)
}

// --- pipeline interceptors, outermost first ---

// admission rejects requests once the server is shut down.
func (s *Server) admission(next transport.Handler) transport.Handler {
	return func(p runtime.Task, msg any) any {
		if s.stopped {
			return &Reply{Err: ErrShutdown}
		}
		return next(p, msg)
	}
}

// accounting counts requests by op.
func (s *Server) accounting(next transport.Handler) transport.Handler {
	return func(p runtime.Task, msg any) any {
		req := msg.(*Request)
		s.metrics.Requests++
		if int(req.Op) < len(s.metrics.ByOp) {
			s.metrics.ByOp[req.Op]++
		}
		return next(p, msg)
	}
}

// journaling appends successful mutations to the MDS journal after the
// op completes: encoding and segment bookkeeping steal MDS CPU
// (MDSJournalOpTime), and the client additionally waits for the safe ack
// (MDSJournalLatency, latency only).
func (s *Server) journaling(next transport.Handler) transport.Handler {
	return func(p runtime.Task, msg any) any {
		req := msg.(*Request)
		reply := next(p, msg).(*Reply)
		if reply.Err == nil && s.stream.enabled && req.Op.Mutates() {
			s.cpu.Acquire(p)
			p.Sleep(s.cfg.MDSJournalOpTime)
			s.stream.record(p, req)
			s.cpu.Release()
			p.Sleep(s.cfg.MDSJournalLatency)
		}
		return reply
	}
}

// execution holds the rank's CPU for the whole request body — service
// time, interference check, op handler — like CephFS's single-threaded
// pipeline.
func (s *Server) execution(next transport.Handler) transport.Handler {
	return func(p runtime.Task, msg any) any {
		req := msg.(*Request)
		arrive := p.Now()
		s.cpu.Acquire(p)
		if s.heat != nil {
			// Queue wait is the time spent behind other requests for the
			// rank's CPU — the saturation signal a balancer watches.
			s.heat.RecordOp(int64(p.Now()), s.heatSubtree(req.Route), s.rank,
				req.Op.Mutates(), runtime.Duration(p.Now()-arrive))
		}
		p.Sleep(s.serviceTime(req.Op))
		reply := next(p, msg)
		s.cpu.Release()
		return reply
	}
}

// interference applies the interfere policy: a mutation into a decoupled
// subtree owned by a different client may be rejected with -EBUSY (paper
// §III-C).
func (s *Server) interference(next transport.Handler) transport.Handler {
	return func(p runtime.Task, msg any) any {
		req := msg.(*Request)
		if req.Op.Mutates() {
			if rej := s.checkInterfere(p, req); rej != nil {
				return rej
			}
		}
		return next(p, msg)
	}
}

// dispatchOp is the pipeline's terminal stage: the table-driven handler.
func (s *Server) dispatchOp(p runtime.Task, msg any) any {
	req := msg.(*Request)
	if req.Op >= opMax || opTable[req.Op].handler == nil {
		return &Reply{Err: fmt.Errorf("mds: %v: %w", req.Op, namespace.ErrInval)}
	}
	return opTable[req.Op].handler(s, p, req)
}

func inodeReply(in *namespace.Inode) *Reply {
	return &Reply{
		Ino: in.Ino, IsDir: in.IsDir(),
		Mode: in.Mode, UID: in.UID, GID: in.GID,
		Size: in.Size, Mtime: in.Mtime,
	}
}

// checkInterfere rejects mutations into a blocked decoupled subtree.
func (s *Server) checkInterfere(p runtime.Task, req *Request) *Reply {
	parent := req.Parent
	if parent == 0 {
		return nil
	}
	root, err := s.store.PolicyRoot(parent)
	if err != nil || root == namespace.RootIno {
		return nil
	}
	owner, ok := s.owners[root]
	if !ok || owner == req.Client {
		return nil
	}
	pol, err := s.store.EffectivePolicy(root)
	if err != nil || pol.Interfere != policy.InterfereBlock {
		return nil
	}
	// Rejecting still costs cycles; when the MDS is underloaded this
	// overhead is visible (paper §V-B2).
	p.Sleep(s.cfg.MDSRejectTime)
	s.metrics.Rejected++
	return &Reply{Err: fmt.Errorf("mds: subtree decoupled by %s: %w", owner, namespace.ErrBusy)}
}

// Decouple attaches pol to the subtree at path, records client as its
// owner, and reserves an inode range for it. It is invoked via the
// monitor. The returned lo is the first inode of the grant.
func (s *Server) Decouple(p runtime.Task, path string, pol *policy.Policy, client string) (lo namespace.Ino, n uint64, err error) {
	r := s.ep.Post(p, &DecoupleMsg{Path: path, Policy: pol, Client: client}).(*DecoupleReply)
	return r.Lo, r.N, r.Err
}

// decouple is the DecoupleMsg handler body.
func (s *Server) decouple(p runtime.Task, path string, pol *policy.Policy, client string) (lo namespace.Ino, n uint64, err error) {
	s.cpu.Acquire(p)
	defer s.cpu.Release()
	p.Sleep(s.serviceTime(OpResolve))

	in, err := s.store.Resolve(path)
	if err != nil {
		return 0, 0, err
	}
	if err := s.store.SetPolicy(in.Ino, pol); err != nil {
		return 0, 0, err
	}
	grant := pol.AllocatedInodes
	if grant <= 0 {
		grant = s.cfg.AllocatedInodesDefault
	}
	// Grant a range far from server-assigned numbers, like CephFS
	// prealloc ranges. Each rank grants from its own band.
	lo = namespace.Ino(uint64(1)<<40 + uint64(s.rank)<<34 + uint64(len(s.owners))<<24)
	if err := s.store.ReserveRange(lo, uint64(grant)); err != nil {
		return 0, 0, err
	}
	s.owners[in.Ino] = client
	return lo, uint64(grant), nil
}

// Recouple clears the subtree's policy and owner registration.
func (s *Server) Recouple(p runtime.Task, path string) error {
	return s.ep.Post(p, &RecoupleMsg{Path: path}).(*RecoupleReply).Err
}

// recouple is the RecoupleMsg handler body.
func (s *Server) recouple(p runtime.Task, path string) error {
	s.cpu.Acquire(p)
	defer s.cpu.Release()
	p.Sleep(s.serviceTime(OpResolve))
	in, err := s.store.Resolve(path)
	if err != nil {
		return err
	}
	delete(s.owners, in.Ino)
	return s.store.SetPolicy(in.Ino, nil)
}

// Owner returns the client that decoupled the subtree rooted at ino.
func (s *Server) Owner(ino namespace.Ino) (string, bool) {
	o, ok := s.owners[ino]
	return o, ok
}
