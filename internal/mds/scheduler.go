package mds

import (
	"errors"
	"fmt"

	"cudele/internal/namespace"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// The merge scheduler is the streamed (chunked) Volatile Apply path.
// Where the one-shot handler (merge.go) lets every arriving journal
// start merging at once — so N simultaneous journals each pay the full
// N-way congestion premium for their entire length — the scheduler
// admits at most MergeAdmitMax jobs, buffers each job's chunks in a
// bounded flow-control window, and round-robins the MDS CPU across the
// admitted jobs one chunk at a time. Arrivals beyond the admission bound
// and chunks beyond a job's window get backpressure replies; the client
// retries after MergeRetryDelay. Everything runs on simulated time, so
// the schedule is deterministic.

// mergeJob is one admitted streamed merge.
type mergeJob struct {
	id      uint64
	client  string
	win     *transport.Window
	applied int
	err     error
	last    bool // final chunk has been received
	aborted bool // client abandoned the stream; discard and retire
	done    runtime.Signal
	maxWait runtime.Duration // longest any of this job's chunks sat buffered
}

// mergeSched is one rank's merge scheduler.
type mergeSched struct {
	s      *Server
	jobs   []*mergeJob // admitted, in admission order
	nextID uint64
	rr     int // round-robin position in jobs

	// admitting counts opens that passed admission but are still paying
	// the setup cost. The admission check charges no simulated time, so
	// it must reserve the slot before the handler first yields —
	// otherwise every open arriving within one setup window would see an
	// empty job list and the bound would admit all of them.
	admitting int

	running bool           // scheduler proc is alive
	idle    runtime.Signal // non-nil while the proc is parked awaiting chunks

	// finished holds completed jobs until their MergeWaitMsg arrives.
	finished map[uint64]*mergeJob

	// waits collects each completed job's max chunk wait — the fairness
	// record: round-robin interleaving keeps the spread between jobs
	// small even when their journals differ in size.
	waits    []runtime.Duration
	peakJobs int
}

func newMergeSched(s *Server) *mergeSched {
	return &mergeSched{s: s, finished: make(map[uint64]*mergeJob)}
}

// find returns the admitted job with the given stream id.
func (ms *mergeSched) find(id uint64) *mergeJob {
	for _, j := range ms.jobs {
		if j.id == id {
			return j
		}
	}
	return nil
}

// mergeOpen is the MergeOpenMsg handler: admission control. A rejected
// open costs the MDS nothing — the client pays the retry delay — so
// bounded admission caps the congestion multiplier every admitted job's
// events are priced at.
func (s *Server) mergeOpen(p runtime.Task, m *MergeOpenMsg) *MergeOpenReply {
	if s.stopped {
		return &MergeOpenReply{Err: ErrShutdown}
	}
	ms := s.merge
	if max := s.cfg.MergeAdmitMax; max > 0 && len(ms.jobs)+ms.admitting >= max {
		s.metrics.MergeBackpressure++
		return &MergeOpenReply{Backpressure: true, QueueDepth: len(ms.jobs) + ms.admitting}
	}
	ms.admitting++

	// The open request crosses the wire like the one-shot merge header
	// does; session/inode-range validation before any chunk applies.
	p.Sleep(s.cfg.NetLatency)
	s.cpu.Use(p, s.cfg.MDSMergeSetup)
	s.metrics.MergeJobs++
	ms.admitting--

	win := s.cfg.MergeWindowChunks
	if win < 1 {
		win = 4
	}
	ms.nextID++
	job := &mergeJob{
		id:     ms.nextID,
		client: m.Client,
		win:    transport.NewWindow(win),
		done:   s.eng.NewSignal(),
	}
	ms.jobs = append(ms.jobs, job)
	if len(ms.jobs) > ms.peakJobs {
		ms.peakJobs = len(ms.jobs)
	}
	s.mergeQueue++
	ms.ensureRunning()
	return &MergeOpenReply{ID: job.id, Window: win, QueueDepth: len(ms.jobs)}
}

// mergeChunk is the MergeChunkMsg handler: accept the chunk into the
// job's window — charging the per-chunk wire cost on the shared fabric —
// or answer with backpressure when the window is full.
func (s *Server) mergeChunk(p runtime.Task, m *MergeChunkMsg) *MergeChunkReply {
	if s.stopped {
		return &MergeChunkReply{Err: ErrShutdown}
	}
	job := s.merge.find(m.ID)
	if job == nil {
		return &MergeChunkReply{Err: fmt.Errorf("mds: merge stream %d: %w", m.ID, namespace.ErrInval)}
	}
	if job.win.Len() >= job.win.Limit() {
		s.metrics.MergeBackpressure++
		return &MergeChunkReply{Backpressure: true, Window: job.win.Len()}
	}
	// Per-chunk wire billing: latency plus this chunk's bytes on the
	// shared fabric, pipelining the network under the CPU of earlier
	// chunks.
	p.Sleep(s.cfg.NetLatency)
	if m.Bytes > 0 {
		s.obj.Net().Transfer(p, m.Bytes)
	}
	// The wire yield above may have let the stream abort or another
	// sender fill the window: re-verify rather than assume the pre-check
	// still holds. The chunk crossed the wire either way, so these
	// rejections are not free like the pre-check one.
	if job.aborted {
		return &MergeChunkReply{Err: ErrMergeAborted}
	}
	if !job.win.TryPush(p.Now(), m) {
		s.metrics.MergeBackpressure++
		return &MergeChunkReply{Backpressure: true, Window: job.win.Len()}
	}
	s.metrics.MergeChunks++
	s.merge.kick()
	return &MergeChunkReply{Window: job.win.Len()}
}

// mergeWait is the MergeWaitMsg handler: block the client until its
// streamed merge drains, then surface the result.
func (s *Server) mergeWait(p runtime.Task, m *MergeWaitMsg) *MergeReply {
	ms := s.merge
	job := ms.find(m.ID)
	if job == nil {
		job = ms.finished[m.ID]
	}
	if job == nil {
		return &MergeReply{Err: fmt.Errorf("mds: merge stream %d: %w", m.ID, namespace.ErrInval)}
	}
	job.done.Wait(p)
	delete(ms.finished, m.ID)
	return &MergeReply{Applied: job.applied, Err: job.err}
}

// ErrMergeAborted marks a streamed merge its client abandoned mid-stream.
var ErrMergeAborted = errors.New("mds: merge aborted by client")

// mergeAbort is the MergeAbortMsg handler: the client hit an error and is
// abandoning the stream. The job is flagged; the scheduler proc discards
// its buffered chunks and retires it, releasing the admission slot and
// the merge-queue congestion share. It works on a stopped server too —
// that is exactly when clients abort.
func (s *Server) mergeAbort(p runtime.Task, m *MergeAbortMsg) *MergeAbortReply {
	p.Sleep(s.cfg.NetLatency)
	ms := s.merge
	if job := ms.find(m.ID); job != nil {
		job.aborted = true
		if job.err == nil {
			job.err = ErrMergeAborted
		}
		ms.ensureRunning()
		return &MergeAbortReply{}
	}
	if _, ok := ms.finished[m.ID]; ok {
		// The merge drained before the abort arrived. The client is not
		// going to send a MergeWaitMsg, so drop the completion record.
		delete(ms.finished, m.ID)
		return &MergeAbortReply{}
	}
	return &MergeAbortReply{Err: fmt.Errorf("mds: merge stream %d: %w", m.ID, namespace.ErrInval)}
}

// ensureRunning spawns the scheduler proc if it is not alive, or wakes
// it if it is parked.
func (ms *mergeSched) ensureRunning() {
	if ms.running {
		ms.kick()
		return
	}
	ms.running = true
	ms.s.eng.Spawn(ms.s.ep.Name()+".mergesched", ms.run)
}

// kick wakes a parked scheduler proc.
func (ms *mergeSched) kick() {
	if ms.idle != nil {
		idle := ms.idle
		ms.idle = nil
		idle.Fire(nil)
	}
}

// pick returns the next job with a buffered chunk, round-robin from the
// last serviced position, or nil when every window is empty.
func (ms *mergeSched) pick() *mergeJob {
	n := len(ms.jobs)
	for i := 0; i < n; i++ {
		job := ms.jobs[(ms.rr+i)%n]
		if job.win.Len() > 0 {
			ms.rr = (ms.rr + i + 1) % n
			return job
		}
	}
	return nil
}

// run is the scheduler proc: one chunk from one job per iteration, at
// the congestion-priced per-event cost, until no admitted jobs remain.
// The proc exits when the rank has no streamed merges, so an idle rank
// leaks no goroutine (sim.Engine.LeakCheck stays clean).
func (ms *mergeSched) run(p runtime.Task) {
	s := ms.s
	for {
		ms.retireAborted(p)
		job := ms.pick()
		if job == nil {
			if len(ms.jobs) == 0 {
				ms.running = false
				return
			}
			// Admitted jobs exist but every window is empty: park until
			// the next chunk arrives.
			ms.idle = s.eng.NewSignal()
			ms.idle.Wait(p)
			continue
		}
		payload, waited, _ := job.win.Pop(p.Now())
		if waited > job.maxWait {
			job.maxWait = waited
		}
		chunk := payload.(*MergeChunkMsg)
		if chunk.Last {
			job.last = true
		}
		if job.err == nil && len(chunk.Events) > 0 {
			rec := s.eng.Tracer()
			span := rec.Begin(int64(p.Now()), s.ep.Name(), "mds", "merge.apply")
			per := s.mergeApplyCost()
			before := job.applied
			s.cpu.Acquire(p)
			p.Sleep(per * runtime.Duration(len(chunk.Events)))
			for _, ev := range chunk.Events {
				if err := s.store.ApplyEvent(ev); err != nil {
					job.err = fmt.Errorf("volatile apply: %w", err)
					break
				}
				job.applied++
				s.metrics.Merged++
			}
			s.cpu.Release()
			rec.End(span, int64(p.Now()))
			if s.heat != nil && job.applied > before {
				s.heat.RecordMerge(int64(p.Now()), s.heatSubtree(chunk.Route), s.rank,
					job.applied-before, chunk.Bytes)
			}
		}
		if job.last && job.win.Len() == 0 {
			ms.finish(job)
		}
	}
}

// retireAborted discards and finishes jobs whose client abandoned the
// stream, so their admission slots free up and the proc never parks on
// chunks that will not come.
func (ms *mergeSched) retireAborted(p runtime.Task) {
	for i := 0; i < len(ms.jobs); {
		job := ms.jobs[i]
		if !job.aborted {
			i++
			continue
		}
		for job.win.Len() > 0 {
			job.win.Pop(p.Now())
		}
		ms.finish(job) // removes jobs[i]; re-examine the same index
	}
}

// finish retires a drained job: release its admission slot, record its
// fairness sample, and release the waiting client. Aborted jobs are no
// fairness sample and get no completion record — their client is gone.
func (ms *mergeSched) finish(job *mergeJob) {
	for i, j := range ms.jobs {
		if j == job {
			ms.jobs = append(ms.jobs[:i], ms.jobs[i+1:]...)
			break
		}
	}
	ms.s.mergeQueue--
	job.done.Fire(nil)
	if job.aborted {
		return
	}
	ms.waits = append(ms.waits, job.maxWait)
	ms.finished[job.id] = job
}

// MergeFairness reports the spread between the largest and smallest
// per-job max chunk wait across completed streamed merges — the fairness
// metric the round-robin scheduler bounds — and how many streamed jobs
// completed. Zero jobs yields a zero spread.
func (s *Server) MergeFairness() (spread runtime.Duration, jobs int) {
	ws := s.merge.waits
	if len(ws) == 0 {
		return 0, 0
	}
	lo, hi := ws[0], ws[0]
	for _, w := range ws[1:] {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	return hi - lo, len(ws)
}

// MergePeakJobs reports the most streamed merges ever admitted at once.
func (s *Server) MergePeakJobs() int { return s.merge.peakJobs }
