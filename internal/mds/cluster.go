package mds

import (
	"fmt"

	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/obs"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// Cluster is a multi-rank metadata service: N Servers partitioning one
// global namespace by subtree, behind a shared routing table. The paper
// evaluates a single MDS and names subtree partitioning as the scaling
// path (§VI); Cluster is that path. With one rank it degenerates to
// exactly the single-server system — the routing table is empty, every
// message lands on rank 0, and no extra virtual time is charged.
type Cluster struct {
	eng runtime.Runtime
	cfg model.Config
	obj *rados.Cluster

	ranks []*Server

	// table is the rank-side authoritative placement map; client
	// portals hold replicas refreshed by the monitor. It is the routing
	// projection of the subtree ownership entities below.
	table  *transport.Table
	router *transport.Router

	// subtrees is the first-class ownership registry: one entity per
	// placed subtree, carrying its lifecycle state (subtree.go).
	subtrees map[string]*Subtree

	// migrations counts committed online migrations and splits. While it
	// is zero the ranks skip the stale-routing ownership check entirely,
	// keeping never-migrated (calibrated) runs byte-identical.
	migrations int
}

// NewCluster builds n metadata ranks over one object store. n < 1 is
// treated as 1.
func NewCluster(eng runtime.Runtime, cfg model.Config, obj *rados.Cluster, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{
		eng: eng, cfg: cfg, obj: obj,
		table:    transport.NewTable(),
		subtrees: make(map[string]*Subtree),
	}
	eps := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		s := NewRank(eng, cfg, obj, i)
		s.SetOwnership(func(path string) (int, uint64, bool) {
			if c.migrations == 0 {
				return 0, 0, false
			}
			return c.table.RankFor(path), c.table.Epoch(), true
		})
		c.ranks = append(c.ranks, s)
		eps[i] = s.Endpoint()
	}
	c.router = transport.NewRouter("mds", c.table, eps, RouteOf)
	return c
}

// Ranks returns the number of metadata ranks.
func (c *Cluster) Ranks() int { return len(c.ranks) }

// Config returns the cluster's calibrated cost model.
func (c *Cluster) Config() model.Config { return c.cfg }

// Rank returns the i'th metadata server.
func (c *Cluster) Rank(i int) *Server { return c.ranks[i] }

// Table returns the cluster's authoritative placement table.
func (c *Cluster) Table() *transport.Table { return c.table }

// Endpoint returns the cluster-side routed endpoint (used by the
// monitor, which always sees the authoritative table).
func (c *Cluster) Endpoint() transport.Endpoint { return c.router }

// SetStream toggles journal streaming on every rank.
func (c *Cluster) SetStream(on bool) {
	for _, s := range c.ranks {
		s.SetStream(on)
	}
}

// SetHeat installs one heat accountant on every rank, keyed by the
// cluster's authoritative placement table so cells aggregate per placed
// subtree. Pass nil to disable accounting.
func (c *Cluster) SetHeat(h *obs.Heat) {
	for _, s := range c.ranks {
		s.SetHeat(h, c.table.SubtreeFor)
	}
}

// OpenSession opens the client's session on every rank: a mounted client
// may touch any subtree, so each rank carries its bookkeeping overhead,
// keeping per-rank service times comparable to the single-MDS system.
func (c *Cluster) OpenSession(client string) {
	for _, s := range c.ranks {
		s.OpenSession(client)
	}
}

// CloseSession closes the client's session on every rank.
func (c *Cluster) CloseSession(client string) {
	for _, s := range c.ranks {
		s.CloseSession(client)
	}
}

// Place exports the subtree rooted at path to the given rank and
// records the placement in the authoritative table. The subtree's
// directory objects (plus the ancestor chain, so the path resolves) are
// copied through the same serialized form that recovery uses; the
// source rank keeps its copy, which becomes stale and unreachable once
// routing points at the new owner — exactly how CephFS subtree exports
// hand off authority.
func (c *Cluster) Place(p runtime.Task, path string, rank int) error {
	if rank < 0 || rank >= len(c.ranks) {
		return fmt.Errorf("mds: place %s: rank %d out of range [0,%d)", path, rank, len(c.ranks))
	}
	src := c.ranks[c.table.RankFor(path)]
	dst := c.ranks[rank]
	if src != dst {
		if err := exportSubtree(src.store, dst.store, path); err != nil {
			return fmt.Errorf("mds: place %s on rank %d: %w", path, rank, err)
		}
	}
	c.table.Place(path, rank)
	st := c.SubtreeFor(path)
	st.Rank, st.State, st.Epoch = rank, SubtreeOwned, c.table.Epoch()
	return nil
}

// CommitMigration finalizes a committed online migration in the
// authoritative state: the entity returns to owned on the new rank and
// the routing table repoints. The monitor calls this between the
// export-commit record landing and the epoch publish.
func (c *Cluster) CommitMigration(path string, rank int, epoch uint64) {
	c.table.Place(path, rank)
	st := c.SubtreeFor(path)
	st.Rank, st.State, st.Epoch = rank, SubtreeOwned, epoch
	st.Moves++
	c.migrations++
}

// SplitCommit registers a directory-fragment split in the authoritative
// table. Like CommitMigration it flips the migrations flag, enabling
// the stale-routing bounce.
func (c *Cluster) SplitCommit(dir string, ranks []int) {
	c.table.SplitDir(dir, ranks)
	c.migrations++
}

// ReplicateSubtree copies the subtree at path (with its ancestor chain)
// from its owning rank onto dst's store without changing placement —
// the setup step of a directory-fragment split, after which hash
// routing lets every fragment rank serve its share of the dentries.
func (c *Cluster) ReplicateSubtree(path string, dst int) error {
	if dst < 0 || dst >= len(c.ranks) {
		return fmt.Errorf("mds: replicate %s: rank %d out of range [0,%d)", path, dst, len(c.ranks))
	}
	src := c.ranks[c.table.RankFor(path)]
	if src == c.ranks[dst] {
		return nil
	}
	return exportSubtree(src.store, c.ranks[dst].store, path)
}

// exportSubtree copies the directory chain from the root to path, and
// every directory underneath path, from src to dst via the serialized
// directory-object form.
func exportSubtree(src, dst *namespace.Store, path string) error {
	rootIn, err := src.Resolve(path)
	if err != nil {
		return err
	}
	install := func(ino namespace.Ino) error {
		data, err := src.EncodeDir(ino)
		if err != nil {
			return err
		}
		obj, err := namespace.DecodeDir(data)
		if err != nil {
			return err
		}
		return dst.InstallDir(obj)
	}
	// Ancestor chain, root first.
	var chain []namespace.Ino
	for ino := rootIn.Ino; ; {
		chain = append([]namespace.Ino{ino}, chain...)
		if ino == namespace.RootIno {
			break
		}
		in, err := src.Get(ino)
		if err != nil {
			return err
		}
		ino = in.Parent
	}
	for _, ino := range chain {
		if err := install(ino); err != nil {
			return err
		}
	}
	// The subtree's own directories, parents before children.
	return src.Walk(rootIn.Ino, func(_ string, in *namespace.Inode) error {
		if !in.IsDir() || in.Ino == rootIn.Ino {
			return nil
		}
		return install(in.Ino)
	})
}

// Portal is one client's view of the metadata cluster: a routed endpoint
// over a placement-table replica, plus the session fan-out. It
// implements the client package's Service interface.
type Portal struct {
	cl     *Cluster
	table  *transport.Table
	router *transport.Router
}

// Portal builds a fresh client view seeded from the authoritative
// table. Subscribe the portal's Table to the monitor to keep it synced.
func (c *Cluster) Portal() *Portal {
	t := transport.NewTable()
	t.CopyFrom(c.table)
	eps := make([]transport.Endpoint, len(c.ranks))
	for i, s := range c.ranks {
		eps[i] = s.Endpoint()
	}
	return &Portal{cl: c, table: t, router: transport.NewRouter("mds", t, eps, RouteOf)}
}

// Table returns the portal's placement-table replica.
func (pt *Portal) Table() *transport.Table { return pt.table }

// Name implements transport.Endpoint.
func (pt *Portal) Name() string { return pt.router.Name() }

// Call implements transport.Endpoint.
func (pt *Portal) Call(p runtime.Task, msg any) any { return pt.router.Call(p, msg) }

// Post implements transport.Endpoint.
func (pt *Portal) Post(p runtime.Task, msg any) any { return pt.router.Post(p, msg) }

// OpenSession opens the client's session on every rank.
func (pt *Portal) OpenSession(client string) { pt.cl.OpenSession(client) }

// CloseSession closes the client's session on every rank.
func (pt *Portal) CloseSession(client string) { pt.cl.CloseSession(client) }

// SetStream toggles journal streaming cluster-wide (the Stream
// mechanism is a namespace-level durability setting).
func (pt *Portal) SetStream(on bool) { pt.cl.SetStream(on) }

// Refresh re-syncs the portal's routing replica from the authoritative
// table — the client's reaction to a redirect reply: by the time a rank
// bounces a request, the monitor has already published the newer map.
func (pt *Portal) Refresh() { pt.table.CopyFrom(pt.cl.table) }
