package mds

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cudele/internal/journal"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
	"cudele/internal/transport"
)

func newTestServerCfg(cfg model.Config) (runtime.Runtime, *Server) {
	eng := sim.NewEngine(17)
	obj := rados.New(eng, cfg)
	return eng, New(eng, cfg, obj)
}

// streamEvents builds n root-level creates with a distinct name prefix so
// several streams can merge into one namespace without collisions.
func streamEvents(prefix string, base uint64, n int) []*journal.Event {
	evs := make([]*journal.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, &journal.Event{Type: journal.EvCreate, Client: prefix,
			Parent: uint64(namespace.RootIno), Name: fmt.Sprintf("%s%d", prefix, i),
			Ino: base + uint64(i), Mode: 0644})
	}
	return evs
}

// chunkOf wraps a slice of events as one stream chunk.
func chunkOf(id uint64, seq int, evs []*journal.Event, last bool) *MergeChunkMsg {
	return &MergeChunkMsg{
		StreamInfo: transport.StreamInfo{ID: id, Seq: seq, Items: len(evs),
			Bytes: int64(len(evs)) * 2500, Last: last},
		Events: evs,
	}
}

func TestMergeStreamAdmissionBackpressure(t *testing.T) {
	cfg := model.Default()
	cfg.MergeAdmitMax = 1
	eng, s := newTestServerCfg(cfg)
	run(t, eng, func(p runtime.Task) {
		open1 := s.mergeOpen(p, &MergeOpenMsg{Client: "a", TotalEvents: 4})
		if open1.Err != nil || open1.Backpressure {
			t.Fatalf("first open = %+v", open1)
		}
		// The admission slot is taken: a second open is turned away for
		// free and must not consume an ID or window.
		open2 := s.mergeOpen(p, &MergeOpenMsg{Client: "b", TotalEvents: 4})
		if open2.Err != nil || !open2.Backpressure {
			t.Fatalf("second open = %+v, want backpressure", open2)
		}
		if open2.QueueDepth != 1 {
			t.Errorf("queue depth = %d, want 1", open2.QueueDepth)
		}

		// Drain the first job; the slot frees and the next open is
		// admitted.
		r := s.mergeChunk(p, chunkOf(open1.ID, 0, streamEvents("a", 1<<41, 4), true))
		if r.Err != nil || r.Backpressure {
			t.Fatalf("chunk = %+v", r)
		}
		w := s.mergeWait(p, &MergeWaitMsg{ID: open1.ID})
		if w.Err != nil || w.Applied != 4 {
			t.Fatalf("wait = %+v", w)
		}
		open3 := s.mergeOpen(p, &MergeOpenMsg{Client: "b", TotalEvents: 1})
		if open3.Err != nil || open3.Backpressure {
			t.Fatalf("open after drain = %+v", open3)
		}
		r = s.mergeChunk(p, chunkOf(open3.ID, 0, streamEvents("b", 1<<42, 1), true))
		if r.Err != nil {
			t.Fatalf("chunk: %v", r.Err)
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: open3.ID}); w.Err != nil || w.Applied != 1 {
			t.Fatalf("wait = %+v", w)
		}
	})
	if got := s.Metrics().MergeBackpressure; got != 1 {
		t.Errorf("backpressure count = %d, want 1", got)
	}
	if got := s.Metrics().MergeChunks; got != 2 {
		t.Errorf("chunk count = %d, want 2", got)
	}
	if _, err := s.Store().Resolve("/a3"); err != nil {
		t.Errorf("merged file missing: %v", err)
	}
}

func TestMergeStreamWindowBackpressure(t *testing.T) {
	cfg := model.Default()
	cfg.MergeWindowChunks = 1
	eng, s := newTestServerCfg(cfg)
	run(t, eng, func(p runtime.Task) {
		open := s.mergeOpen(p, &MergeOpenMsg{Client: "a"})
		if open.Err != nil || open.Window != 1 {
			t.Fatalf("open = %+v, want window 1", open)
		}
		// First chunk is accepted; it sits in the window because the
		// scheduler proc has not run yet at this instant.
		big := streamEvents("a", 1<<41, 256)
		if r := s.mergeChunk(p, chunkOf(open.ID, 0, big, false)); r.Err != nil || r.Backpressure {
			t.Fatalf("chunk 0 = %+v", r)
		}
		// The window (capacity 1) is full: the next chunk bounces, and
		// the rejection costs no simulated time.
		before := p.Now()
		r := s.mergeChunk(p, chunkOf(open.ID, 1, streamEvents("a", 1<<42, 1), true))
		if r.Err != nil || !r.Backpressure {
			t.Fatalf("chunk 1 = %+v, want backpressure", r)
		}
		if p.Now() != before {
			t.Errorf("backpressured chunk advanced time by %v", p.Now()-before)
		}
		// Give the scheduler a moment to pop chunk 0, then retry.
		p.Sleep(runtime.Duration(time.Millisecond))
		r = s.mergeChunk(p, chunkOf(open.ID, 1, streamEvents("a", 1<<42, 1), true))
		if r.Err != nil || r.Backpressure {
			t.Fatalf("retry = %+v", r)
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: open.ID}); w.Err != nil || w.Applied != 257 {
			t.Fatalf("wait = %+v", w)
		}
	})
	if got := s.Metrics().MergeBackpressure; got != 1 {
		t.Errorf("backpressure count = %d, want 1", got)
	}
}

func TestMergeStreamRoundRobinFairness(t *testing.T) {
	eng, s := newTestServerCfg(model.Default())
	run(t, eng, func(p runtime.Task) {
		openA := s.mergeOpen(p, &MergeOpenMsg{Client: "a"})
		openB := s.mergeOpen(p, &MergeOpenMsg{Client: "b"})
		if openA.Err != nil || openB.Err != nil {
			t.Fatalf("opens = %v, %v", openA.Err, openB.Err)
		}
		// Interleave two chunks per job; the scheduler services the
		// buffered windows round-robin, one chunk at a time.
		a := streamEvents("a", 1<<41, 512)
		b := streamEvents("b", 1<<42, 512)
		for seq := 0; seq < 2; seq++ {
			last := seq == 1
			if r := s.mergeChunk(p, chunkOf(openA.ID, seq, a[seq*256:(seq+1)*256], last)); r.Err != nil || r.Backpressure {
				t.Fatalf("a chunk %d = %+v", seq, r)
			}
			if r := s.mergeChunk(p, chunkOf(openB.ID, seq, b[seq*256:(seq+1)*256], last)); r.Err != nil || r.Backpressure {
				t.Fatalf("b chunk %d = %+v", seq, r)
			}
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: openA.ID}); w.Err != nil || w.Applied != 512 {
			t.Fatalf("wait a = %+v", w)
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: openB.ID}); w.Err != nil || w.Applied != 512 {
			t.Fatalf("wait b = %+v", w)
		}
	})
	for _, name := range []string{"/a511", "/b511"} {
		if _, err := s.Store().Resolve(name); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
	spread, jobs := s.MergeFairness()
	if jobs != 2 {
		t.Fatalf("fairness jobs = %d, want 2", jobs)
	}
	// Round-robin interleaving keeps the two equal-size jobs' buffering
	// within one chunk-apply of each other (~21 ms at the calibrated
	// 82 us/event), far under the ~84 ms a run-to-completion schedule
	// would charge the second job.
	if limit := runtime.Duration(30 * time.Millisecond); spread > limit {
		t.Errorf("chunk-wait spread = %v, want <= %v", spread, limit)
	}
	if got := s.MergePeakJobs(); got != 2 {
		t.Errorf("peak jobs = %d, want 2", got)
	}
	if s.MergeQueue() != 0 {
		t.Errorf("merge queue not drained: %d", s.MergeQueue())
	}
}

func TestMergeStreamWindowRaceBackpressure(t *testing.T) {
	// Two senders race chunks into a window of one. Both pass the free
	// pre-check while the window is empty, then yield on the wire; only
	// one buffer slot exists, so exactly one chunk may be accepted — the
	// loser must get a backpressure reply, not a silent drop that the
	// reply reports as acceptance.
	cfg := model.Default()
	cfg.MergeWindowChunks = 1
	eng, s := newTestServerCfg(cfg)
	run(t, eng, func(p runtime.Task) {
		open := s.mergeOpen(p, &MergeOpenMsg{Client: "a"})
		if open.Err != nil || open.Backpressure {
			t.Fatalf("open = %+v", open)
		}
		evs := streamEvents("a", 1<<41, 2)
		var msgs [2]*MergeChunkMsg
		var replies [2]*MergeChunkReply
		for i := range msgs {
			// Bytes 0 keeps both chunks off the shared fabric so they
			// finish their wire yield at the same instant.
			msgs[i] = &MergeChunkMsg{
				StreamInfo: transport.StreamInfo{ID: open.ID, Seq: i, Items: 1},
				Events:     evs[i : i+1],
			}
		}
		g := eng.NewGroup()
		for i := range msgs {
			i := i
			g.Go(fmt.Sprintf("send%d", i), func(sp runtime.Task) {
				replies[i] = s.mergeChunk(sp, msgs[i])
			})
		}
		g.Wait(p)
		bounced := -1
		for i, r := range replies {
			if r.Err != nil {
				t.Fatalf("chunk %d err = %v", i, r.Err)
			}
			if r.Backpressure {
				if bounced != -1 {
					t.Fatalf("both chunks backpressured")
				}
				bounced = i
			}
		}
		if bounced == -1 {
			t.Fatalf("no chunk backpressured; one was silently dropped")
		}
		// The loser retries until the window drains; nothing was lost.
		for {
			r := s.mergeChunk(p, msgs[bounced])
			if r.Err != nil {
				t.Fatalf("retry err = %v", r.Err)
			}
			if !r.Backpressure {
				break
			}
			p.Sleep(runtime.Duration(time.Millisecond))
		}
		last := chunkOf(open.ID, 2, streamEvents("a", 1<<42, 1), true)
		for {
			r := s.mergeChunk(p, last)
			if r.Err != nil {
				t.Fatalf("last chunk err = %v", r.Err)
			}
			if !r.Backpressure {
				break
			}
			p.Sleep(runtime.Duration(time.Millisecond))
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: open.ID}); w.Err != nil || w.Applied != 3 {
			t.Fatalf("wait = %+v, want 3 applied", w)
		}
	})
}

func TestMergeStreamAbortReleasesAdmission(t *testing.T) {
	// A client that aborts mid-stream must not park the scheduler or pin
	// its admission slot and merge-queue share for the rest of the run.
	cfg := model.Default()
	cfg.MergeAdmitMax = 1
	eng, s := newTestServerCfg(cfg)
	run(t, eng, func(p runtime.Task) {
		open := s.mergeOpen(p, &MergeOpenMsg{Client: "a"})
		if open.Err != nil || open.Backpressure {
			t.Fatalf("open = %+v", open)
		}
		// A buffered chunk that will never be followed by the last one.
		if r := s.mergeChunk(p, chunkOf(open.ID, 0, streamEvents("a", 1<<41, 4), false)); r.Err != nil || r.Backpressure {
			t.Fatalf("chunk = %+v", r)
		}
		if r := s.mergeAbort(p, &MergeAbortMsg{ID: open.ID}); r.Err != nil {
			t.Fatalf("abort = %v", r.Err)
		}
		p.Sleep(runtime.Duration(10 * time.Millisecond)) // let the scheduler retire the job
		if got := s.MergeQueue(); got != 0 {
			t.Errorf("merge queue after abort = %d, want 0", got)
		}
		// The admission slot is free again and the stream id is gone.
		open2 := s.mergeOpen(p, &MergeOpenMsg{Client: "b"})
		if open2.Err != nil || open2.Backpressure {
			t.Fatalf("open after abort = %+v", open2)
		}
		if r := s.mergeChunk(p, chunkOf(open2.ID, 0, streamEvents("b", 1<<42, 2), true)); r.Err != nil || r.Backpressure {
			t.Fatalf("chunk after abort = %+v", r)
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: open2.ID}); w.Err != nil || w.Applied != 2 {
			t.Fatalf("wait after abort = %+v", w)
		}
		if w := s.mergeWait(p, &MergeWaitMsg{ID: open.ID}); !errors.Is(w.Err, namespace.ErrInval) {
			t.Errorf("wait on aborted stream = %v, want ErrInval", w.Err)
		}
		if r := s.mergeAbort(p, &MergeAbortMsg{ID: open.ID}); !errors.Is(r.Err, namespace.ErrInval) {
			t.Errorf("double abort = %v, want ErrInval", r.Err)
		}
	})
	// The aborted job is not a fairness sample; only the completed merge is.
	if _, jobs := s.MergeFairness(); jobs != 1 {
		t.Errorf("fairness jobs = %d, want 1", jobs)
	}
}

func TestMergeStreamUnknownID(t *testing.T) {
	eng, s := newTestServerCfg(model.Default())
	run(t, eng, func(p runtime.Task) {
		r := s.mergeChunk(p, chunkOf(99, 0, streamEvents("x", 1<<41, 1), true))
		if !errors.Is(r.Err, namespace.ErrInval) {
			t.Errorf("chunk for unknown stream = %v, want ErrInval", r.Err)
		}
		w := s.mergeWait(p, &MergeWaitMsg{ID: 99})
		if !errors.Is(w.Err, namespace.ErrInval) {
			t.Errorf("wait for unknown stream = %v, want ErrInval", w.Err)
		}
	})
}
