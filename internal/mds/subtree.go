package mds

import (
	"fmt"
	"sort"
)

// SubtreeState is the ownership lifecycle state of a placed subtree.
// Ownership always cycles owned → exporting (on the migration source,
// mirrored as importing on the destination) → owned; aborts return the
// entity to owned on the source without an epoch change.
type SubtreeState uint8

const (
	// SubtreeOwned: exactly one rank serves the subtree.
	SubtreeOwned SubtreeState = iota
	// SubtreeExporting: the owner has frozen the subtree and is
	// streaming it to another rank; requests bounce with a Frozen
	// redirect until the handoff commits or aborts.
	SubtreeExporting
	// SubtreeImporting: the destination is installing streamed state;
	// it does not serve the subtree until the monitor publishes the new
	// epoch.
	SubtreeImporting
)

func (st SubtreeState) String() string {
	switch st {
	case SubtreeOwned:
		return "owned"
	case SubtreeExporting:
		return "exporting"
	case SubtreeImporting:
		return "importing"
	}
	return fmt.Sprintf("SubtreeState(%d)", uint8(st))
}

// Subtree is the first-class ownership record of one placed subtree: the
// unit of placement, migration, and balancing. The cluster keeps one per
// placed path; the routing table is the projection of these entities
// that ranks and clients route by.
type Subtree struct {
	Path  string
	Rank  int          // owning rank (last committed)
	State SubtreeState // lifecycle position
	Epoch uint64       // cluster-map epoch of the last ownership change
	Moves int          // completed migrations of this subtree
}

// SubtreeFor returns the ownership entity for path, creating an owned
// record from the routing table's current resolution if none exists yet
// (setup-time placements predate the entity registry).
func (c *Cluster) SubtreeFor(path string) *Subtree {
	path = cleanSubtreePath(path)
	if st, ok := c.subtrees[path]; ok {
		return st
	}
	st := &Subtree{Path: path, Rank: c.table.RankFor(path), State: SubtreeOwned}
	c.subtrees[path] = st
	return st
}

// Subtrees returns every registered ownership entity, sorted by path.
func (c *Cluster) Subtrees() []*Subtree {
	out := make([]*Subtree, 0, len(c.subtrees))
	for _, st := range c.subtrees {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Migrations reports the number of committed subtree migrations across
// the cluster's lifetime.
func (c *Cluster) Migrations() int { return c.migrations }

// cleanSubtreePath normalizes a subtree path the way the routing table
// does, so entity keys and table keys always agree.
func cleanSubtreePath(p string) string {
	if p == "" {
		return "/"
	}
	if p[0] != '/' {
		p = "/" + p
	}
	for len(p) > 1 && p[len(p)-1] == '/' {
		p = p[:len(p)-1]
	}
	return p
}
