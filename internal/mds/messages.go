package mds

import (
	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/transport"
)

// The metadata service speaks messages over a transport.Endpoint. RPCs
// (*Request) go through Endpoint.Call, which charges wire latency both
// ways; the control and bulk messages below go through Endpoint.Post and
// charge their own calibrated costs (a journal merge's network cost is
// its byte transfer, not an RPC round trip).

// MergeMode selects how a MergeMsg's events are applied. The zero value
// is the paper's blind Volatile Apply, so every pre-existing sender and
// committed baseline is untouched.
type MergeMode uint8

const (
	// MergeBlind is Table I's Volatile Apply: replay with no checks,
	// conflicts resolved in favor of the decoupled namespace.
	MergeBlind MergeMode = iota
	// MergeSpeculative validates each event against the current global
	// view; conflicting predictions are skipped and reported back by
	// index so the client can roll them back (ConsSpeculative).
	MergeSpeculative
	// MergeConverge merges through the strong-eventual CRDT resolver,
	// so concurrent merges commute (ConsStrongEventual).
	MergeConverge
)

// MergeMsg ships a decoupled client's journal for Volatile Apply in one
// message (the calibrated all-at-once arrival model). Exactly one of
// Events and Source carries the journal: Source lets the sender hand
// over a bounded-memory cursor instead of a flat event copy, since the
// handler runs synchronously in the sender's process.
type MergeMsg struct {
	Events       []*journal.Event
	Source       *journal.Cursor
	NominalBytes int64
	// Mode selects blind, speculative, or convergent apply.
	Mode MergeMode
	// Route is the decoupled subtree's path, used by the routing layer
	// to find the owning rank.
	Route string
}

// MergeReply answers a MergeMsg or a MergeWaitMsg.
type MergeReply struct {
	Applied int
	// Conflicts lists the journal indices a speculative merge rejected,
	// in ascending order; the client must undo exactly these ops.
	Conflicts []int
	Err       error
}

// MergeOpenMsg opens a streamed (chunked) merge: the scheduler admits
// the job — or answers with backpressure when MergeAdmitMax jobs are
// already merging — and assigns the stream id the chunks will carry.
type MergeOpenMsg struct {
	Client      string
	Route       string
	TotalEvents int
	TotalBytes  int64
}

// MergeOpenReply answers a MergeOpenMsg.
type MergeOpenReply struct {
	ID           uint64 // stream id for subsequent MergeChunkMsg
	Window       int    // chunks the MDS will buffer before backpressure
	Backpressure bool   // admission queue full; retry after a delay
	QueueDepth   int    // merge jobs admitted at reply time
	Err          error
}

// Backpressured implements transport.Flow.
func (r *MergeOpenReply) Backpressured() bool { return r.Backpressure }

// MergeChunkMsg ships one chunk of a streamed merge. It embeds
// transport.StreamInfo, so interceptors (tracing) see it as a generic
// stream chunk.
type MergeChunkMsg struct {
	transport.StreamInfo
	Route  string
	Events []*journal.Event
}

// MergeChunkReply answers a MergeChunkMsg.
type MergeChunkReply struct {
	Backpressure bool // window full; chunk not accepted, retry it
	Window       int  // buffered chunks after this one
	Err          error
}

// Backpressured implements transport.Flow.
func (r *MergeChunkReply) Backpressured() bool { return r.Backpressure }

// MergeWaitMsg blocks until a streamed merge has applied its final chunk
// and reports the merge result as a MergeReply.
type MergeWaitMsg struct {
	ID    uint64
	Route string
}

// MergeAbortMsg abandons a streamed merge after a client-side error, so
// the scheduler can retire the job and release its admission slot
// instead of parking on it forever.
type MergeAbortMsg struct {
	ID    uint64
	Route string
}

// MergeAbortReply answers a MergeAbortMsg.
type MergeAbortReply struct {
	Err error
}

// DecoupleMsg attaches a policy to a subtree and reserves its inode
// grant (sent by the monitor on a client's behalf).
type DecoupleMsg struct {
	Path   string
	Policy *policy.Policy
	Client string
}

// DecoupleReply answers a DecoupleMsg.
type DecoupleReply struct {
	Lo  namespace.Ino
	N   uint64
	Err error
}

// RecoupleMsg clears a subtree's policy and owner registration.
type RecoupleMsg struct {
	Path string
}

// RecoupleReply answers a RecoupleMsg.
type RecoupleReply struct {
	Err error
}

// RouteOf extracts the routing path from a metadata message; it is the
// key function a transport.Router uses to pick the owning rank. Messages
// without a route (empty string) belong to rank 0.
func RouteOf(msg any) string {
	switch m := msg.(type) {
	case *Request:
		return m.Route
	case *MergeMsg:
		return m.Route
	case *MergeOpenMsg:
		return m.Route
	case *MergeChunkMsg:
		return m.Route
	case *MergeWaitMsg:
		return m.Route
	case *MergeAbortMsg:
		return m.Route
	case *DecoupleMsg:
		return m.Path
	case *RecoupleMsg:
		return m.Path
	// Migration control messages are posted to explicit rank endpoints
	// by the monitor, never routed; the route here is for observability
	// (flight-recorder detail strings).
	case *ExportFreezeMsg:
		return m.Path
	case *ExportSaveMsg:
		return m.Path
	case *ExportReadMsg:
		return m.Path
	case *ExportCommitMsg:
		return m.Path
	case *ExportAbortMsg:
		return m.Path
	case *ImportOpenMsg:
		return m.Path
	case *ImportChunkMsg:
		return m.Path
	case *AttachMsg:
		return m.Path
	}
	return ""
}
