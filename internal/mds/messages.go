package mds

import (
	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/policy"
)

// The metadata service speaks messages over a transport.Endpoint. RPCs
// (*Request) go through Endpoint.Call, which charges wire latency both
// ways; the control and bulk messages below go through Endpoint.Post and
// charge their own calibrated costs (a journal merge's network cost is
// its byte transfer, not an RPC round trip).

// MergeMsg ships a decoupled client's journal for Volatile Apply.
type MergeMsg struct {
	Events       []*journal.Event
	NominalBytes int64
	// Route is the decoupled subtree's path, used by the routing layer
	// to find the owning rank.
	Route string
}

// MergeReply answers a MergeMsg.
type MergeReply struct {
	Applied int
	Err     error
}

// DecoupleMsg attaches a policy to a subtree and reserves its inode
// grant (sent by the monitor on a client's behalf).
type DecoupleMsg struct {
	Path   string
	Policy *policy.Policy
	Client string
}

// DecoupleReply answers a DecoupleMsg.
type DecoupleReply struct {
	Lo  namespace.Ino
	N   uint64
	Err error
}

// RecoupleMsg clears a subtree's policy and owner registration.
type RecoupleMsg struct {
	Path string
}

// RecoupleReply answers a RecoupleMsg.
type RecoupleReply struct {
	Err error
}

// RouteOf extracts the routing path from a metadata message; it is the
// key function a transport.Router uses to pick the owning rank. Messages
// without a route (empty string) belong to rank 0.
func RouteOf(msg any) string {
	switch m := msg.(type) {
	case *Request:
		return m.Route
	case *MergeMsg:
		return m.Route
	case *DecoupleMsg:
		return m.Path
	case *RecoupleMsg:
		return m.Path
	}
	return ""
}
