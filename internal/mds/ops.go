package mds

import (
	"fmt"

	"cudele/internal/namespace"
	"cudele/internal/runtime"
)

// opInfo is one row of the op registry: everything the pipeline needs to
// know about a metadata operation lives here — its wire name, whether it
// mutates the namespace (journaling, interference checks), whether it is
// billed at lookup cost, and its handler.
type opInfo struct {
	name    string
	mutates bool
	lookup  bool // billed at MDSLookupTime instead of MDSOpTime
	handler func(s *Server, p runtime.Task, req *Request) *Reply
}

// opTable is the single source of truth for op metadata. Every Op below
// opMax must have a name and a handler; TestOpTableComplete enforces it.
var opTable = [opMax]opInfo{
	OpLookup:  {name: "lookup", lookup: true, handler: handleLookup},
	OpCreate:  {name: "create", mutates: true, handler: handleCreate},
	OpMkdir:   {name: "mkdir", mutates: true, handler: handleCreate},
	OpGetAttr: {name: "getattr", lookup: true, handler: handleGetAttr},
	OpSetAttr: {name: "setattr", mutates: true, handler: handleSetAttr},
	OpReadDir: {name: "readdir", lookup: true, handler: handleReadDir},
	OpUnlink:  {name: "unlink", mutates: true, handler: handleUnlink},
	OpRmdir:   {name: "rmdir", mutates: true, handler: handleRmdir},
	OpRename:  {name: "rename", mutates: true, handler: handleRename},
	OpResolve: {name: "resolve", lookup: true, handler: handleResolve},
}

func (o Op) String() string {
	if o < opMax && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Mutates reports whether the op changes the namespace (and therefore
// journals, and is subject to the interfere policy).
func (o Op) Mutates() bool { return o < opMax && opTable[o].mutates }

func handleLookup(s *Server, p runtime.Task, req *Request) *Reply {
	in, err := s.store.Lookup(req.Parent, req.Name)
	if err != nil {
		return &Reply{Err: err}
	}
	return inodeReply(in)
}

func handleResolve(s *Server, p runtime.Task, req *Request) *Reply {
	in, err := s.store.Resolve(req.Path)
	if err != nil {
		return &Reply{Err: err}
	}
	return inodeReply(in)
}

func handleGetAttr(s *Server, p runtime.Task, req *Request) *Reply {
	in, err := s.store.Get(req.Ino)
	if err != nil {
		return &Reply{Err: err}
	}
	return inodeReply(in)
}

func handleReadDir(s *Server, p runtime.Task, req *Request) *Reply {
	names, err := s.store.ReadDir(req.Parent)
	if err != nil {
		return &Reply{Err: err}
	}
	return &Reply{Names: names}
}

// handleCreate serves both OpCreate and OpMkdir; the two differ only in
// the inode type inserted.
func handleCreate(s *Server, p runtime.Task, req *Request) *Reply {
	attrs := namespace.CreateAttrs{
		Mode: req.Mode, UID: req.UID, GID: req.GID,
		Mtime: int64(p.Now()),
	}
	var in *namespace.Inode
	var err error
	if req.Op == OpMkdir {
		in, err = s.store.Mkdir(req.Parent, req.Name, attrs)
	} else {
		in, err = s.store.Create(req.Parent, req.Name, attrs)
	}
	if err != nil {
		return &Reply{Err: err}
	}
	reply := inodeReply(in)
	s.updateCaps(p, req.Parent, req.Client, reply)
	return reply
}

func handleSetAttr(s *Server, p runtime.Task, req *Request) *Reply {
	if err := s.store.SetAttr(req.Ino, req.Mode, req.UID, req.GID, req.Size, req.Mtime); err != nil {
		return &Reply{Err: err}
	}
	return &Reply{Ino: req.Ino}
}

func handleUnlink(s *Server, p runtime.Task, req *Request) *Reply {
	if err := s.store.Unlink(req.Parent, req.Name); err != nil {
		return &Reply{Err: err}
	}
	reply := &Reply{}
	s.updateCaps(p, req.Parent, req.Client, reply)
	return reply
}

func handleRmdir(s *Server, p runtime.Task, req *Request) *Reply {
	if err := s.store.Rmdir(req.Parent, req.Name); err != nil {
		return &Reply{Err: err}
	}
	return &Reply{}
}

func handleRename(s *Server, p runtime.Task, req *Request) *Reply {
	if err := s.store.Rename(req.Parent, req.Name, req.NewParent, req.NewName); err != nil {
		return &Reply{Err: err}
	}
	reply := &Reply{}
	s.updateCaps(p, req.Parent, req.Client, reply)
	return reply
}
