package mds

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cudele/internal/journal"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

func newTestServer() (runtime.Runtime, *Server) {
	eng := sim.NewEngine(17)
	obj := rados.New(eng, model.Default())
	return eng, New(eng, model.Default(), obj)
}

func run(t *testing.T, eng runtime.Runtime, fn func(p runtime.Task)) {
	t.Helper()
	eng.Spawn("test", fn)
	eng.RunAll()
}

func TestSubmitCreateLookup(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("c0")
	run(t, eng, func(p runtime.Task) {
		r := s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: namespace.RootIno, Name: "f", Mode: 0644})
		if r.Err != nil {
			t.Errorf("create: %v", r.Err)
			return
		}
		if r.Ino == 0 || r.IsDir {
			t.Errorf("create reply = %+v", r)
		}
		if !r.CapGranted {
			t.Error("first writer did not get the dir cap")
		}
		lk := s.Submit(p, &Request{Op: OpLookup, Client: "c0", Parent: namespace.RootIno, Name: "f"})
		if lk.Err != nil || lk.Ino != r.Ino {
			t.Errorf("lookup = %+v", lk)
		}
		missing := s.Submit(p, &Request{Op: OpLookup, Client: "c0", Parent: namespace.RootIno, Name: "nope"})
		if !errors.Is(missing.Err, namespace.ErrNotExist) {
			t.Errorf("missing lookup err = %v", missing.Err)
		}
	})
}

func TestSubmitAllOps(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("c0")
	run(t, eng, func(p runtime.Task) {
		mk := s.Submit(p, &Request{Op: OpMkdir, Client: "c0", Parent: namespace.RootIno, Name: "d", Mode: 0755})
		if mk.Err != nil || !mk.IsDir {
			t.Fatalf("mkdir = %+v", mk)
		}
		cr := s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: mk.Ino, Name: "f", Mode: 0644})
		if cr.Err != nil {
			t.Fatalf("create: %v", cr.Err)
		}
		sa := s.Submit(p, &Request{Op: OpSetAttr, Client: "c0", Ino: cr.Ino, Mode: 0600, Size: 42})
		if sa.Err != nil {
			t.Fatalf("setattr: %v", sa.Err)
		}
		ga := s.Submit(p, &Request{Op: OpGetAttr, Client: "c0", Ino: cr.Ino})
		if ga.Err != nil || ga.Mode != 0600 || ga.Size != 42 {
			t.Fatalf("getattr = %+v", ga)
		}
		rd := s.Submit(p, &Request{Op: OpReadDir, Client: "c0", Parent: mk.Ino})
		if rd.Err != nil || len(rd.Names) != 1 || rd.Names[0] != "f" {
			t.Fatalf("readdir = %+v", rd)
		}
		rn := s.Submit(p, &Request{Op: OpRename, Client: "c0", Parent: mk.Ino, Name: "f", NewParent: namespace.RootIno, NewName: "g"})
		if rn.Err != nil {
			t.Fatalf("rename: %v", rn.Err)
		}
		rs := s.Submit(p, &Request{Op: OpResolve, Client: "c0", Path: "/g"})
		if rs.Err != nil || rs.Ino != cr.Ino {
			t.Fatalf("resolve = %+v", rs)
		}
		ul := s.Submit(p, &Request{Op: OpUnlink, Client: "c0", Parent: namespace.RootIno, Name: "g"})
		if ul.Err != nil {
			t.Fatalf("unlink: %v", ul.Err)
		}
		rm := s.Submit(p, &Request{Op: OpRmdir, Client: "c0", Parent: namespace.RootIno, Name: "d"})
		if rm.Err != nil {
			t.Fatalf("rmdir: %v", rm.Err)
		}
	})
	m := s.Metrics()
	if m.Requests != 9 {
		t.Fatalf("requests = %d, want 9", m.Requests)
	}
	if m.ByOp[OpCreate] != 1 || m.ByOp[OpRename] != 1 {
		t.Fatalf("by-op = %v", m.ByOp)
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	eng, s := newTestServer()
	s.Shutdown()
	run(t, eng, func(p runtime.Task) {
		r := s.Submit(p, &Request{Op: OpLookup, Parent: namespace.RootIno, Name: "x"})
		if !errors.Is(r.Err, ErrShutdown) {
			t.Errorf("err = %v, want ErrShutdown", r.Err)
		}
	})
}

func TestSingleClientRPCRate(t *testing.T) {
	// Paper §II-A: 1 client creating files over RPC with journaling off
	// runs at ~654 creates/s.
	eng, s := newTestServer()
	s.OpenSession("c0")
	const n = 2000
	var elapsed runtime.Time
	run(t, eng, func(p runtime.Task) {
		p.Sleep(s.cfg.ClientOpOverhead) // warm-up alignment, negligible
		start := p.Now()
		for i := 0; i < n; i++ {
			// Client-side overhead is charged by the client library;
			// emulate it here for the calibration check.
			p.Sleep(s.cfg.ClientOpOverhead)
			r := s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: namespace.RootIno, Name: fmt.Sprintf("f%d", i), Mode: 0644})
			if r.Err != nil {
				t.Errorf("create %d: %v", i, r.Err)
				return
			}
		}
		elapsed = p.Now() - start
	})
	rate := n / elapsed.Seconds()
	if rate < 600 || rate > 710 {
		t.Fatalf("single-client RPC rate = %.0f/s, want ~654", rate)
	}
}

func TestSingleClientJournalOnRate(t *testing.T) {
	// Paper §II-B: with journaling on the same workload runs at ~513/s.
	eng, s := newTestServer()
	s.OpenSession("c0")
	s.SetStream(true)
	const n = 2000
	var elapsed runtime.Time
	run(t, eng, func(p runtime.Task) {
		start := p.Now()
		for i := 0; i < n; i++ {
			p.Sleep(s.cfg.ClientOpOverhead)
			s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: namespace.RootIno, Name: fmt.Sprintf("f%d", i), Mode: 0644})
		}
		elapsed = p.Now() - start
	})
	rate := n / elapsed.Seconds()
	if rate < 470 || rate > 560 {
		t.Fatalf("journal-on RPC rate = %.0f/s, want ~513", rate)
	}
	if got := s.Metrics().Journaled; got != n {
		t.Fatalf("journaled = %d, want %d", got, n)
	}
}

func TestMDSSaturation(t *testing.T) {
	// Paper §II-A: peak single-MDS throughput is ~3000 op/s; 20 clients
	// saturate it.
	eng, s := newTestServer()
	const clients = 20
	const per = 1000
	g := eng.NewGroup()
	for c := 0; c < clients; c++ {
		name := fmt.Sprintf("c%d", c)
		s.OpenSession(name)
		g.Go(name, func(p runtime.Task) {
			dir := s.Submit(p, &Request{Op: OpMkdir, Client: name, Parent: namespace.RootIno, Name: name, Mode: 0755})
			for i := 0; i < per; i++ {
				p.Sleep(s.cfg.ClientOpOverhead)
				s.Submit(p, &Request{Op: OpCreate, Client: name, Parent: dir.Ino, Name: fmt.Sprintf("f%d", i), Mode: 0644})
			}
		})
	}
	var total runtime.Time
	eng.Spawn("wait", func(p runtime.Task) {
		g.Wait(p)
		total = p.Now()
	})
	eng.RunAll()
	agg := float64(clients*per) / total.Seconds()
	if agg < 1800 || agg > 3000 {
		t.Fatalf("saturated aggregate = %.0f op/s, want ~2200-2400 (3000 minus session overhead)", agg)
	}
}

func TestCapGrantRevokeFlow(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("a")
	s.OpenSession("b")
	run(t, eng, func(p runtime.Task) {
		d := s.Submit(p, &Request{Op: OpMkdir, Client: "a", Parent: namespace.RootIno, Name: "d", Mode: 0755})
		// a is the sole writer: cap granted.
		r1 := s.Submit(p, &Request{Op: OpCreate, Client: "a", Parent: d.Ino, Name: "f1"})
		if !r1.CapGranted || r1.CapLost {
			t.Fatalf("first create reply = %+v", r1)
		}
		if holder, ok := s.CapHolder(d.Ino); !ok || holder != "a" {
			t.Fatalf("cap holder = %q, %v", holder, ok)
		}
		// b interferes: revoke + shared.
		r2 := s.Submit(p, &Request{Op: OpCreate, Client: "b", Parent: d.Ino, Name: "f2"})
		if !r2.CapLost || r2.CapGranted {
			t.Fatalf("interfering create reply = %+v", r2)
		}
		if !s.DirShared(d.Ino) {
			t.Fatal("dir not marked shared after interference")
		}
		if _, ok := s.CapHolder(d.Ino); ok {
			t.Fatal("cap still held after revocation")
		}
		// a's next create sees CapLost.
		r3 := s.Submit(p, &Request{Op: OpCreate, Client: "a", Parent: d.Ino, Name: "f3"})
		if !r3.CapLost {
			t.Fatalf("post-revoke reply = %+v", r3)
		}
	})
	if s.Metrics().CapRevokes != 1 {
		t.Fatalf("revokes = %d, want 1", s.Metrics().CapRevokes)
	}
}

func TestCloseSessionDropsCaps(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("a")
	run(t, eng, func(p runtime.Task) {
		d := s.Submit(p, &Request{Op: OpMkdir, Client: "a", Parent: namespace.RootIno, Name: "d"})
		s.Submit(p, &Request{Op: OpCreate, Client: "a", Parent: d.Ino, Name: "f"})
		if _, ok := s.CapHolder(d.Ino); !ok {
			t.Fatal("no cap before close")
		}
		s.CloseSession("a")
		if _, ok := s.CapHolder(d.Ino); ok {
			t.Fatal("cap survived session close")
		}
	})
	if s.Sessions() != 0 {
		t.Fatalf("sessions = %d", s.Sessions())
	}
}

func TestStreamDispatchAndFlush(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("c0")
	s.SetStream(true)
	// Small segments so several dispatches happen.
	s.cfg.SegmentEvents = 100
	s.stream.jrnl = journal.New(100)
	const n = 950
	run(t, eng, func(p runtime.Task) {
		for i := 0; i < n; i++ {
			s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: namespace.RootIno, Name: fmt.Sprintf("f%d", i)})
		}
		s.FlushJournal(p)
	})
	m := s.Metrics()
	if m.Dispatches != 10 { // 9 sealed + 1 final partial
		t.Fatalf("dispatches = %d, want 10", m.Dispatches)
	}
	if s.JournalLen() != n {
		t.Fatalf("journal len = %d, want %d", s.JournalLen(), n)
	}
	s.TrimJournal()
	if s.JournalLen() != 0 {
		t.Fatalf("journal len after trim = %d", s.JournalLen())
	}
}

func TestSaveStoreRecover(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("c0")
	var before *namespace.Store
	run(t, eng, func(p runtime.Task) {
		d := s.Submit(p, &Request{Op: OpMkdir, Client: "c0", Parent: namespace.RootIno, Name: "proj", Mode: 0755})
		for i := 0; i < 20; i++ {
			s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: d.Ino, Name: fmt.Sprintf("f%d", i), Mode: 0644})
		}
		sub := s.Submit(p, &Request{Op: OpMkdir, Client: "c0", Parent: d.Ino, Name: "sub", Mode: 0755})
		s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: sub.Ino, Name: "deep", Mode: 0644})
		if err := s.SaveStore(p); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		before = s.Store()
		if err := s.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
	})
	if before == nil {
		t.Fatal("setup failed")
	}
	if s.Store() == before {
		t.Fatal("recover did not rebuild the store")
	}
	if !namespace.Equal(before, s.Store()) {
		t.Fatal("recovered store differs")
	}
}

func TestRecoverReplaysStreamedJournal(t *testing.T) {
	// Save the store early, keep creating (journaled), then recover: the
	// journal replay must reproduce the post-save creates.
	eng, s := newTestServer()
	s.OpenSession("c0")
	s.SetStream(true)
	run(t, eng, func(p runtime.Task) {
		d := s.Submit(p, &Request{Op: OpMkdir, Client: "c0", Parent: namespace.RootIno, Name: "d", Mode: 0755})
		s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: d.Ino, Name: "before", Mode: 0644})
		if err := s.SaveStore(p); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: d.Ino, Name: "after", Mode: 0644})
		s.FlushJournal(p)
		if err := s.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
	})
	for _, name := range []string{"/d/before", "/d/after"} {
		if _, err := s.Store().Resolve(name); err != nil {
			t.Errorf("%s missing after recovery: %v", name, err)
		}
	}
}

func TestVolatileApplyMatchesRPC(t *testing.T) {
	// The paper's core merge property: a decoupled journal merged via
	// Volatile Apply yields the same namespace as doing the ops via RPC.
	engA, sA := newTestServer()
	sA.OpenSession("c0")
	run(t, engA, func(p runtime.Task) {
		d := sA.Submit(p, &Request{Op: OpMkdir, Client: "c0", Parent: namespace.RootIno, Name: "job", Mode: 0755})
		for i := 0; i < 100; i++ {
			sA.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: d.Ino, Name: fmt.Sprintf("f%d", i), Mode: 0644})
		}
	})

	engB, sB := newTestServer()
	run(t, engB, func(p runtime.Task) {
		j := journal.New(1024)
		j.Append(&journal.Event{Type: journal.EvMkdir, Client: "c0",
			Parent: uint64(namespace.RootIno), Name: "job", Ino: 1 << 41, Mode: 0755})
		for i := 0; i < 100; i++ {
			j.Append(&journal.Event{Type: journal.EvCreate, Client: "c0",
				Parent: 1 << 41, Name: fmt.Sprintf("f%d", i), Ino: uint64(1<<41 + 1 + i), Mode: 0644})
		}
		n, err := sB.VolatileApply(p, j.Events(), int64(j.Len())*2500)
		if err != nil || n != 101 {
			t.Errorf("volatile apply = %d, %v", n, err)
		}
	})
	if !namespace.Equal(sA.Store(), sB.Store()) {
		t.Fatal("merged namespace differs from RPC namespace")
	}
	if sB.Metrics().MergeJobs != 1 || sB.Metrics().Merged != 101 {
		t.Fatalf("merge metrics = %+v", sB.Metrics())
	}
}

func TestVolatileApplyRate(t *testing.T) {
	// Paper §V-A: Volatile Apply is ~0.9x the append baseline, i.e.
	// ~12.2K events/s for a single journal.
	eng, s := newTestServer()
	const n = 20000
	events := make([]*journal.Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, &journal.Event{Type: journal.EvCreate, Client: "c0",
			Parent: uint64(namespace.RootIno), Name: fmt.Sprintf("f%d", i),
			Ino: uint64(1<<41 + i), Mode: 0644})
	}
	var elapsed runtime.Time
	run(t, eng, func(p runtime.Task) {
		start := p.Now()
		if _, err := s.VolatileApply(p, events, int64(n)*2500); err != nil {
			t.Errorf("apply: %v", err)
		}
		elapsed = p.Now() - start
	})
	rate := n / elapsed.Seconds()
	if rate < 9000 || rate > 13000 {
		t.Fatalf("volatile apply rate = %.0f/s, want ~12K", rate)
	}
}

func TestVolatileApplyErrorStops(t *testing.T) {
	eng, s := newTestServer()
	events := []*journal.Event{
		{Type: journal.EvCreate, Parent: uint64(namespace.RootIno), Name: "ok", Ino: 1 << 41, Mode: 0644},
		{Type: journal.EvUnlink, Parent: 999999, Name: "ghost"},
	}
	run(t, eng, func(p runtime.Task) {
		n, err := s.VolatileApply(p, events, 5000)
		if err == nil || n != 1 {
			t.Errorf("apply = %d, %v; want 1, error", n, err)
		}
	})
}

func TestDecoupleAndInterfereBlock(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("owner")
	s.OpenSession("intruder")
	run(t, eng, func(p runtime.Task) {
		d := s.Submit(p, &Request{Op: OpMkdir, Client: "owner", Parent: namespace.RootIno, Name: "mine", Mode: 0755})
		pol := &policy.Policy{
			Consistency: policy.ConsInvisible, Durability: policy.DurLocal,
			AllocatedInodes: 1000, Interfere: policy.InterfereBlock,
		}
		lo, n, err := s.Decouple(p, "/mine", pol, "owner")
		if err != nil || n != 1000 || lo == 0 {
			t.Errorf("decouple = %d,%d,%v", lo, n, err)
			return
		}
		if owner, ok := s.Owner(d.Ino); !ok || owner != "owner" {
			t.Errorf("owner = %q,%v", owner, ok)
		}
		// Intruder writes are rejected with EBUSY.
		r := s.Submit(p, &Request{Op: OpCreate, Client: "intruder", Parent: d.Ino, Name: "x"})
		if !errors.Is(r.Err, namespace.ErrBusy) {
			t.Errorf("intruder err = %v, want ErrBusy", r.Err)
		}
		// Reads are not blocked.
		rd := s.Submit(p, &Request{Op: OpReadDir, Client: "intruder", Parent: d.Ino})
		if rd.Err != nil {
			t.Errorf("intruder readdir err = %v", rd.Err)
		}
		// The owner can write.
		r = s.Submit(p, &Request{Op: OpCreate, Client: "owner", Parent: d.Ino, Name: "y"})
		if r.Err != nil {
			t.Errorf("owner create err = %v", r.Err)
		}
		// Recouple clears the block.
		if err := s.Recouple(p, "/mine"); err != nil {
			t.Errorf("recouple: %v", err)
		}
		r = s.Submit(p, &Request{Op: OpCreate, Client: "intruder", Parent: d.Ino, Name: "x"})
		if r.Err != nil {
			t.Errorf("post-recouple err = %v", r.Err)
		}
	})
	if s.Metrics().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Metrics().Rejected)
	}
}

func TestDecoupleAllowLetsWritesThrough(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("owner")
	s.OpenSession("other")
	run(t, eng, func(p runtime.Task) {
		s.Submit(p, &Request{Op: OpMkdir, Client: "owner", Parent: namespace.RootIno, Name: "mine", Mode: 0755})
		pol := &policy.Policy{
			Consistency: policy.ConsInvisible, Durability: policy.DurNone,
			AllocatedInodes: 100, Interfere: policy.InterfereAllow,
		}
		if _, _, err := s.Decouple(p, "/mine", pol, "owner"); err != nil {
			t.Errorf("decouple: %v", err)
			return
		}
		d, _ := s.Store().Resolve("/mine")
		r := s.Submit(p, &Request{Op: OpCreate, Client: "other", Parent: d.Ino, Name: "x"})
		if r.Err != nil {
			t.Errorf("allow-policy create err = %v", r.Err)
		}
	})
}

func TestDecoupleErrors(t *testing.T) {
	eng, s := newTestServer()
	run(t, eng, func(p runtime.Task) {
		pol := policy.Default()
		if _, _, err := s.Decouple(p, "/missing", pol, "c"); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("decouple missing path err = %v", err)
		}
		if err := s.Recouple(p, "/missing"); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("recouple missing path err = %v", err)
		}
	})
}

func TestSessionOverheadSlowsOps(t *testing.T) {
	timeFor := func(sessions int) runtime.Time {
		eng := sim.NewEngine(1)
		obj := rados.New(eng, model.Default())
		s := New(eng, model.Default(), obj)
		for i := 0; i < sessions; i++ {
			s.OpenSession(fmt.Sprintf("c%d", i))
		}
		var elapsed runtime.Time
		eng.Spawn("t", func(p runtime.Task) {
			start := p.Now()
			for i := 0; i < 100; i++ {
				s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: namespace.RootIno, Name: fmt.Sprintf("f%d", i)})
			}
			elapsed = p.Now() - start
		})
		eng.RunAll()
		return elapsed
	}
	if timeFor(20) <= timeFor(1) {
		t.Fatal("20 sessions not slower than 1 session per op")
	}
}

func TestServiceTimeOpClasses(t *testing.T) {
	_, s := newTestServer()
	s.OpenSession("c0")
	if s.serviceTime(OpLookup) >= s.serviceTime(OpCreate) {
		t.Fatal("lookup not cheaper than create")
	}
}

func TestMergeCongestion(t *testing.T) {
	// Twenty journals landing at once must merge slower per event than
	// one journal (paper Fig 6a).
	perEventRate := func(jobs int) float64 {
		eng := sim.NewEngine(1)
		obj := rados.New(eng, model.Default())
		s := New(eng, model.Default(), obj)
		const per = 5000
		g := eng.NewGroup()
		for c := 0; c < jobs; c++ {
			c := c
			g.Go("merge", func(p runtime.Task) {
				events := make([]*journal.Event, 0, per)
				base := uint64(1<<41) + uint64(c)<<24
				events = append(events, &journal.Event{Type: journal.EvMkdir,
					Parent: uint64(namespace.RootIno), Name: fmt.Sprintf("d%d", c), Ino: base, Mode: 0755})
				for i := 1; i < per; i++ {
					events = append(events, &journal.Event{Type: journal.EvCreate,
						Parent: base, Name: fmt.Sprintf("f%d", i), Ino: base + uint64(i), Mode: 0644})
				}
				if _, err := s.VolatileApply(p, events, int64(per)*2500); err != nil {
					t.Errorf("merge %d: %v", c, err)
				}
			})
		}
		var total runtime.Time
		eng.Spawn("wait", func(p runtime.Task) { g.Wait(p); total = p.Now() })
		eng.RunAll()
		return float64(jobs*per) / total.Seconds()
	}
	one := perEventRate(1)
	twenty := perEventRate(20)
	if twenty >= one {
		t.Fatalf("20-journal merge rate %.0f/s not below single rate %.0f/s", twenty, one)
	}
	if twenty < 0.4*one {
		t.Fatalf("20-journal merge rate %.0f/s collapsed too far below single %.0f/s", twenty, one)
	}
}

func TestOpString(t *testing.T) {
	if OpCreate.String() != "create" || Op(99).String() == "" {
		t.Fatal("op strings broken")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	eng, s := newTestServer()
	s.OpenSession("c0")
	run(t, eng, func(p runtime.Task) {
		s.Submit(p, &Request{Op: OpCreate, Client: "c0", Parent: namespace.RootIno, Name: "f"})
	})
	m := s.Metrics()
	m.Requests = 0 // mutate the copy
	if s.Metrics().Requests != 1 {
		t.Fatal("Metrics did not return a snapshot")
	}
	_ = time.Second
}
