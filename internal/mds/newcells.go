package mds

import (
	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/runtime"
)

// The merge paths for the two policy cells beyond the paper's Table I:
// speculative_apply (ConsSpeculative) validates each client prediction
// against the current global view and reports the losers back for
// rollback; converge_apply (ConsStrongEventual) merges through the
// namespace CRDT resolver so concurrent merges commute. Both share
// Volatile Apply's cost model — network transfer, merge-queue congestion,
// chunked CPU — so the new cells are comparable to the original nine in
// every bench table.

// SpeculativeApply posts a speculative merge of events to this rank and
// returns the applied count plus the indices of rejected predictions. A
// convenience wrapper mirroring VolatileApply.
func (s *Server) SpeculativeApply(p runtime.Task, events []*journal.Event, nominalBytes int64) (int, []int, error) {
	r := s.ep.Post(p, &MergeMsg{Events: events, NominalBytes: nominalBytes, Mode: MergeSpeculative}).(*MergeReply)
	return r.Applied, r.Conflicts, r.Err
}

// ConvergeApply posts a strong-eventual merge of events to this rank.
func (s *Server) ConvergeApply(p runtime.Task, events []*journal.Event, nominalBytes int64) (int, error) {
	r := s.ep.Post(p, &MergeMsg{Events: events, NominalBytes: nominalBytes, Mode: MergeConverge}).(*MergeReply)
	return r.Applied, r.Err
}

// speculativeValidate is the MDS-side prediction check: does this event
// still apply cleanly against the live global view? A missing parent is
// a conflict in itself, which naturally cascades — ops under a
// rolled-back mkdir are rejected without any dependency tracking.
func (s *Server) speculativeValidate(ev *journal.Event) bool {
	st := s.store
	switch ev.Type {
	case journal.EvCreate, journal.EvMkdir:
		dir, err := st.Get(namespace.Ino(ev.Parent))
		if err != nil || !dir.IsDir() {
			return false
		}
		_, err = st.Lookup(namespace.Ino(ev.Parent), ev.Name)
		return err != nil // an existing dentry falsifies the prediction
	case journal.EvUnlink, journal.EvRmdir:
		in, err := st.Lookup(namespace.Ino(ev.Parent), ev.Name)
		if err != nil {
			return false
		}
		if ev.Type == journal.EvUnlink {
			return !in.IsDir()
		}
		return in.IsDir() && in.NumChildren() == 0
	case journal.EvRename:
		if _, err := st.Lookup(namespace.Ino(ev.Parent), ev.Name); err != nil {
			return false
		}
		dir, err := st.Get(namespace.Ino(ev.NewParent))
		if err != nil || !dir.IsDir() {
			return false
		}
		_, err = st.Lookup(namespace.Ino(ev.NewParent), ev.NewName)
		return err != nil
	case journal.EvSetAttr:
		_, err := st.Get(namespace.Ino(ev.Ino))
		return err == nil
	}
	return true // alloc/export/undo records never conflict
}

// speculativeApply is the MergeMsg handler body for Mode=MergeSpeculative.
// Events are validated and applied serially under the same congestion
// model as volatileApply; rejected indices come back in ascending order.
func (s *Server) speculativeApply(p runtime.Task, evs []*journal.Event, nominalBytes int64) (int, []int, error) {
	if s.stopped {
		return 0, nil, ErrShutdown
	}
	s.mergeQueue++
	defer func() { s.mergeQueue-- }()

	p.Sleep(s.cfg.NetLatency)
	if nominalBytes > 0 {
		s.obj.Net().Transfer(p, nominalBytes)
	}
	s.cpu.Use(p, s.cfg.MDSMergeSetup)
	s.metrics.MergeJobs++

	applied := 0
	var conflicts []int
	for off := 0; off < len(evs); off += mergeChunk {
		end := off + mergeChunk
		if end > len(evs) {
			end = len(evs)
		}
		chunk := evs[off:end]
		per := s.mergeApplyCost()
		s.cpu.Acquire(p)
		p.Sleep(per * runtime.Duration(len(chunk)))
		for i, ev := range chunk {
			if !s.speculativeValidate(ev) {
				conflicts = append(conflicts, off+i)
				s.metrics.MergeConflicts++
				continue
			}
			if err := s.store.ApplyEvent(ev); err != nil {
				s.cpu.Release()
				return applied, conflicts, err
			}
			applied++
			s.metrics.Merged++
		}
		s.cpu.Release()
	}
	return applied, conflicts, nil
}

// seMerger lazily wraps the rank's store in the strong-eventual CRDT
// resolver. It is reset on Crash together with the store it renders.
func (s *Server) seMerger() *namespace.SEMerger {
	if s.se == nil {
		s.se = namespace.NewSEMerger(s.store)
	}
	return s.se
}

// convergeApply is the MergeMsg handler body for Mode=MergeConverge:
// volatileApply's cost model with the CRDT resolver as the target. Every
// event is "applied" — absorbing a tie-break loser IS the merge — so
// Applied == len(events) on success regardless of race outcomes.
func (s *Server) convergeApply(p runtime.Task, src eventSource, nominalBytes int64) (int, error) {
	if s.stopped {
		return 0, ErrShutdown
	}
	s.mergeQueue++
	defer func() { s.mergeQueue-- }()

	p.Sleep(s.cfg.NetLatency)
	if nominalBytes > 0 {
		s.obj.Net().Transfer(p, nominalBytes)
	}
	s.cpu.Use(p, s.cfg.MDSMergeSetup)
	s.metrics.MergeJobs++

	merger := s.seMerger()
	applied := 0
	for src.Remaining() > 0 {
		chunk := src.Next(mergeChunk)
		per := s.mergeApplyCost()
		s.cpu.Acquire(p)
		p.Sleep(per * runtime.Duration(len(chunk)))
		for _, ev := range chunk {
			if err := merger.ApplyEvent(ev); err != nil {
				s.cpu.Release()
				return applied, err
			}
			applied++
			s.metrics.Merged++
		}
		s.cpu.Release()
	}
	return applied, nil
}
