package mds

import (
	"cudele/internal/trace"
)

// FillMetrics copies the rank's cumulative counters, journal state, and
// CPU utilization accounting into a metric registry, labeled with the
// rank's endpoint name. It is a pull-time export: nothing on the request
// path changes, so collection cannot perturb a simulation.
func (s *Server) FillMetrics(reg *trace.Registry) {
	daemon := trace.KV{Key: "daemon", Val: s.ep.Name()}

	reg.Counter("cudele_mds_requests_total", "Metadata RPCs served.", float64(s.metrics.Requests), daemon)
	for op := Op(0); op < opMax; op++ {
		if s.metrics.ByOp[op] == 0 {
			continue
		}
		reg.Counter("cudele_mds_requests_by_op_total", "Metadata RPCs served, by operation.",
			float64(s.metrics.ByOp[op]), daemon, trace.KV{Key: "op", Val: op.String()})
	}
	reg.Counter("cudele_mds_cap_revokes_total", "Directory read-caching capabilities revoked.", float64(s.metrics.CapRevokes), daemon)
	reg.Counter("cudele_mds_rejected_total", "Mutations rejected by interfere-block policies (-EBUSY).", float64(s.metrics.Rejected), daemon)
	reg.Counter("cudele_mds_journaled_total", "Events appended to the MDS journal.", float64(s.metrics.Journaled), daemon)
	reg.Counter("cudele_mds_dispatches_total", "Journal segments pushed to the object store.", float64(s.metrics.Dispatches), daemon)
	reg.Counter("cudele_mds_merged_events_total", "Client journal events merged via Volatile Apply.", float64(s.metrics.Merged), daemon)
	reg.Counter("cudele_mds_merge_jobs_total", "Client journals merged via Volatile Apply.", float64(s.metrics.MergeJobs), daemon)
	reg.Counter("cudele_mds_journal_bytes_total", "Nominal journal bytes streamed to the object store.",
		float64(s.metrics.JournalBytes), daemon)

	reg.Counter("cudele_mds_merge_chunks_total", "Streamed merge chunks accepted into flow-control windows.", float64(s.metrics.MergeChunks), daemon)
	reg.Counter("cudele_mds_merge_backpressure_total", "Merge opens and chunks answered with backpressure.", float64(s.metrics.MergeBackpressure), daemon)

	reg.Gauge("cudele_mds_journal_events", "Untrimmed events in the MDS journal.", float64(s.stream.jrnl.Len()), daemon)
	reg.Gauge("cudele_mds_merge_queue_depth", "Client journals queued for Volatile Apply.", float64(s.mergeQueue), daemon)
	reg.Gauge("cudele_mds_merge_active_jobs", "Streamed merges admitted by the scheduler at collection time.", float64(len(s.merge.jobs)), daemon)
	reg.Gauge("cudele_mds_merge_peak_jobs", "Most streamed merges ever admitted at once.", float64(s.merge.peakJobs), daemon)
	if spread, jobs := s.MergeFairness(); jobs > 0 {
		reg.Gauge("cudele_mds_merge_chunk_wait_spread_seconds",
			"Spread of per-job max chunk waits across completed streamed merges.", spread.Seconds(), daemon)
	}
	reg.Gauge("cudele_mds_sessions", "Active client sessions.", float64(len(s.sessions)), daemon)

	cpu := s.cpu.Snapshot()
	reg.Gauge("cudele_mds_cpu_utilization", "Mean busy fraction of the rank's request-pipeline CPU.", cpu.Utilization, daemon)
	reg.Counter("cudele_mds_cpu_busy_seconds_total", "CPU busy time integral (unit-seconds).", cpu.BusyArea, daemon)
	reg.Counter("cudele_mds_cpu_acquires_total", "CPU grants requested.", float64(cpu.Acquires), daemon)
	reg.Counter("cudele_mds_cpu_wait_seconds_total", "Total queueing delay on the CPU.", cpu.WaitTotal.Seconds(), daemon)
	reg.Gauge("cudele_mds_cpu_queue_depth", "Requests waiting for the CPU at collection time.", float64(cpu.QueueLen), daemon)
}

// FillMetrics exports every rank's metrics.
func (c *Cluster) FillMetrics(reg *trace.Registry) {
	for _, s := range c.ranks {
		s.FillMetrics(reg)
	}
}
