package mds

import (
	"cudele/internal/namespace"
	"cudele/internal/runtime"
)

// Capability state per directory inode. CephFS keeps clients and MDS
// agreed on each inode's caps via the inode cache; here we track the piece
// that drives the paper's interference results (§II-B, Fig 3b/3c): the
// read-caching capability on a directory. While a single client writes a
// directory, it holds the cap and resolves lookups locally, so a create is
// one RPC. When a second client touches the directory, the MDS revokes the
// cap (doing extra work) and the directory becomes shared: every client
// must now send a lookup RPC before each create.
type dirCaps struct {
	holder string // client holding the read-caching cap, "" if none
	shared bool   // true once two clients have touched the directory
}

func (s *Server) dirCapsFor(ino namespace.Ino) *dirCaps {
	dc := s.caps[ino]
	if dc == nil {
		dc = &dirCaps{}
		s.caps[ino] = dc
	}
	return dc
}

// updateCaps runs after a successful mutation in directory dir by client,
// adjusting capability state and annotating the reply. Called with the
// CPU held.
func (s *Server) updateCaps(p runtime.Task, dir namespace.Ino, client string, reply *Reply) {
	if client == "" {
		return
	}
	dc := s.dirCapsFor(dir)
	switch {
	case dc.shared:
		reply.CapLost = true
	case dc.holder == "":
		dc.holder = client
		reply.CapGranted = true
	case dc.holder == client:
		reply.CapGranted = true
	default:
		// False sharing: revoke the holder's cap, mark the directory
		// shared. Revocation is real MDS work (paper Fig 3c).
		span := p.Runtime().Tracer().Begin(int64(p.Now()),
			s.ep.Name(), "caps", "cap.revoke")
		p.Sleep(s.cfg.MDSCapRevokeTime)
		p.Runtime().Tracer().End(span, int64(p.Now()))
		s.metrics.CapRevokes++
		dc.holder = ""
		dc.shared = true
		reply.CapLost = true
	}
}

// DirShared reports whether the directory has transitioned out of
// single-writer read caching.
func (s *Server) DirShared(ino namespace.Ino) bool {
	dc := s.caps[ino]
	return dc != nil && dc.shared
}

// CapHolder returns the client holding the directory's read-caching cap.
func (s *Server) CapHolder(ino namespace.Ino) (string, bool) {
	dc := s.caps[ino]
	if dc == nil || dc.holder == "" {
		return "", false
	}
	return dc.holder, true
}
