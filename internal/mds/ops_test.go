package mds

import (
	"strings"
	"testing"

	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
	"cudele/internal/transport"
)

// TestOpTableComplete is the registry's completeness check: every op below
// opMax must carry a wire name and a handler, and the derived metadata
// (String, Mutates, service-time class) must be self-consistent. Adding an
// Op without filling in its opTable row fails here, not at runtime.
func TestOpTableComplete(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < opMax; op++ {
		info := opTable[op]
		if info.name == "" {
			t.Errorf("op %d: no name in opTable", op)
			continue
		}
		if info.handler == nil {
			t.Errorf("op %s: no handler in opTable", info.name)
		}
		if prev, dup := seen[info.name]; dup {
			t.Errorf("ops %d and %d share the name %q", prev, op, info.name)
		}
		seen[info.name] = op
		if op.String() != info.name {
			t.Errorf("op %d String() = %q, want %q", op, op.String(), info.name)
		}
		if op.Mutates() != info.mutates {
			t.Errorf("op %s Mutates() = %v, table says %v", info.name, op.Mutates(), info.mutates)
		}
		if info.mutates && info.lookup {
			t.Errorf("op %s is both mutating and lookup-billed", info.name)
		}
		// Every mutating op must journal: requestEvent is the stream
		// mechanism's view of the table.
		ev := requestEvent(&Request{Op: op, Name: "x", NewName: "y"})
		if info.mutates && op != OpRmdir && ev == nil {
			t.Errorf("mutating op %s produces no journal event", info.name)
		}
		if !info.mutates && ev != nil {
			t.Errorf("read-only op %s produces a journal event", info.name)
		}
	}
	if got := Op(opMax).String(); !strings.HasPrefix(got, "Op(") {
		t.Errorf("out-of-range op String() = %q", got)
	}
	if Op(opMax).Mutates() {
		t.Error("out-of-range op reported as mutating")
	}
}

func newTestCluster(seed int64, ranks int) (runtime.Runtime, *Cluster) {
	eng := sim.NewEngine(seed)
	obj := rados.New(eng, model.Default())
	return eng, NewCluster(eng, model.Default(), obj, ranks)
}

// TestClusterRoutesPlacedSubtree pins /proj on rank 1 of a 3-rank cluster
// and checks that requests routed by path land only on the owning rank.
func TestClusterRoutesPlacedSubtree(t *testing.T) {
	eng, cl := newTestCluster(7, 3)
	cl.OpenSession("c0")
	run(t, eng, func(p runtime.Task) {
		if _, err := cl.Rank(0).Store().MkdirAll("/proj", namespace.CreateAttrs{Mode: 0755}); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := cl.Place(p, "/proj", 1); err != nil {
			t.Fatalf("place: %v", err)
		}
		before := make([]uint64, cl.Ranks())
		for i := 0; i < cl.Ranks(); i++ {
			before[i] = cl.Rank(i).Metrics().Requests
		}

		in, err := cl.Rank(1).Store().Resolve("/proj")
		if err != nil {
			t.Fatalf("subtree not exported to rank 1: %v", err)
		}
		r := cl.Endpoint().Call(p, &Request{
			Op: OpCreate, Client: "c0", Parent: in.Ino, Name: "f", Mode: 0644,
			Route: "/proj",
		}).(*Reply)
		if r.Err != nil {
			t.Fatalf("routed create: %v", r.Err)
		}

		if got := cl.Rank(1).Metrics().Requests - before[1]; got != 1 {
			t.Errorf("rank 1 served %d ops, want 1", got)
		}
		for _, i := range []int{0, 2} {
			if got := cl.Rank(i).Metrics().Requests - before[i]; got != 0 {
				t.Errorf("rank %d served %d ops, want 0", i, got)
			}
		}
		// The file exists on the owning rank only.
		if _, err := cl.Rank(1).Store().Lookup(in.Ino, "f"); err != nil {
			t.Errorf("file missing on owning rank: %v", err)
		}
		if _, err := cl.Rank(0).Store().Resolve("/proj/f"); err == nil {
			t.Error("file visible on rank 0, which no longer owns /proj")
		}
	})
}

// TestClusterRankInoBandsDisjoint checks that server-assigned inode
// numbers from different ranks can never collide: each rank allocates
// from its own band.
func TestClusterRankInoBandsDisjoint(t *testing.T) {
	eng, cl := newTestCluster(8, 2)
	cl.OpenSession("c0")
	run(t, eng, func(p runtime.Task) {
		if _, err := cl.Rank(0).Store().MkdirAll("/b", namespace.CreateAttrs{Mode: 0755}); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := cl.Place(p, "/b", 1); err != nil {
			t.Fatalf("place: %v", err)
		}
		r0 := cl.Endpoint().Call(p, &Request{Op: OpCreate, Client: "c0",
			Parent: namespace.RootIno, Name: "f0", Mode: 0644, Route: "/"}).(*Reply)
		bIno, _ := cl.Rank(1).Store().Resolve("/b")
		r1 := cl.Endpoint().Call(p, &Request{Op: OpCreate, Client: "c0",
			Parent: bIno.Ino, Name: "f1", Mode: 0644, Route: "/b"}).(*Reply)
		if r0.Err != nil || r1.Err != nil {
			t.Fatalf("creates: %v, %v", r0.Err, r1.Err)
		}
		if r0.Ino >= rankInoFloor(1) {
			t.Errorf("rank 0 ino %d inside rank 1's band", r0.Ino)
		}
		if r1.Ino < rankInoFloor(1) {
			t.Errorf("rank 1 ino %d below its band floor %d", r1.Ino, rankInoFloor(1))
		}
	})
}

// TestPortalReplicaRouting checks that a portal built before a placement
// keeps routing by its replica until the table is refreshed — and follows
// the move once CopyFrom lands, the monitor's publish path.
func TestPortalReplicaRouting(t *testing.T) {
	eng, cl := newTestCluster(9, 2)
	cl.OpenSession("c0")
	run(t, eng, func(p runtime.Task) {
		if _, err := cl.Rank(0).Store().MkdirAll("/d", namespace.CreateAttrs{Mode: 0755}); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		portal := cl.Portal()
		if err := cl.Place(p, "/d", 1); err != nil {
			t.Fatalf("place: %v", err)
		}
		if got := portal.Table().RankFor("/d"); got != 0 {
			t.Fatalf("stale replica already routes /d to rank %d", got)
		}
		portal.Table().CopyFrom(cl.Table())
		if got := portal.Table().RankFor("/d"); got != 1 {
			t.Fatalf("refreshed replica routes /d to rank %d, want 1", got)
		}
		in, _ := cl.Rank(1).Store().Resolve("/d")
		before := cl.Rank(1).Metrics().Requests
		r := portal.Call(p, &Request{Op: OpCreate, Client: "c0",
			Parent: in.Ino, Name: "f", Mode: 0644, Route: "/d"}).(*Reply)
		if r.Err != nil {
			t.Fatalf("portal create: %v", r.Err)
		}
		if cl.Rank(1).Metrics().Requests != before+1 {
			t.Error("portal request did not land on rank 1")
		}
	})
}

// TestClusterOneRankMatchesSingleServer replays the same scripted RPC
// sequence against mds.New and a 1-rank Cluster portal and requires
// identical virtual-time completion — the refactor's no-regression
// contract for the default deployment.
func TestClusterOneRankMatchesSingleServer(t *testing.T) {
	script := func(submit func(p runtime.Task, req *Request) *Reply) func(eng runtime.Runtime) runtime.Time {
		return func(eng runtime.Runtime) runtime.Time {
			var end runtime.Time
			eng.Spawn("script", func(p runtime.Task) {
				mk := submit(p, &Request{Op: OpMkdir, Client: "c0", Parent: namespace.RootIno, Name: "d", Mode: 0755, Route: "/"})
				if mk.Err != nil {
					t.Errorf("mkdir: %v", mk.Err)
					return
				}
				for i := 0; i < 20; i++ {
					r := submit(p, &Request{Op: OpCreate, Client: "c0", Parent: mk.Ino, Name: nameN(i), Mode: 0644, Route: "/d"})
					if r.Err != nil {
						t.Errorf("create %d: %v", i, r.Err)
						return
					}
				}
				submit(p, &Request{Op: OpReadDir, Client: "c0", Parent: mk.Ino, Route: "/d"})
				end = p.Now()
			})
			eng.RunAll()
			return end
		}
	}

	engA := sim.NewEngine(3)
	srv := New(engA, model.Default(), rados.New(engA, model.Default()))
	srv.OpenSession("c0")
	single := script(func(p runtime.Task, req *Request) *Reply { return srv.Submit(p, req) })(engA)

	engB, cl := newTestCluster(3, 1)
	cl.OpenSession("c0")
	portal := cl.Portal()
	viaPortal := script(func(p runtime.Task, req *Request) *Reply {
		return transport.Endpoint(portal).Call(p, req).(*Reply)
	})(engB)

	if single != viaPortal {
		t.Fatalf("1-rank portal time %v != single-server time %v", viaPortal, single)
	}
}

func nameN(i int) string {
	return "f" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}
