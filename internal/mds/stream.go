package mds

import (
	"errors"
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/trace"
)

// JournalPool is the RADOS pool holding the MDS's streamed journal
// segments.
const JournalPool = "cephfs_journal"

// journalObjectName names one streamed journal segment object. Each rank
// streams into its own object series; rank 0 uses the legacy names.
func journalObjectName(rank, index int) string {
	return fmt.Sprintf("mds%d_journal.%08d", rank, index)
}

// streamState implements the Stream mechanism: the MDS journals every
// metadata update and streams sealed segments into the object store. The
// two tunables from the paper (§II-A, Fig 3a) are the segment size
// (events per segment) and the dispatch size (segments pushed at once).
type streamState struct {
	s       *Server
	enabled bool

	jrnl  *journal.Journal
	queue []*journal.Segment // sealed, awaiting dispatch

	// enc amortizes the payload scratch buffer across every segment this
	// rank dispatches. Sharing it between segwrite processes is safe:
	// only one sim process runs at a time and Encode never yields.
	enc journal.Encoder

	dispatching bool
	flushedSeg  int // highest segment index safely in the object store

	// segBase offsets this journal's segment indices into the rank's
	// object-name series. It is zero for a rank's first life; a
	// crash-restart starts a fresh journal whose indices begin at zero
	// again, so Restart sets segBase past the recovered objects to keep
	// the on-store series append-only.
	segBase int
}

func newStreamState(s *Server) *streamState {
	return &streamState{
		s:          s,
		jrnl:       journal.New(s.cfg.SegmentEvents),
		flushedSeg: -1,
	}
}

// record converts a successful mutation into a journal event and appends
// it. Sealed segments are queued for dispatch. Runs in the requesting
// client's process, off the MDS CPU.
func (st *streamState) record(p runtime.Task, req *Request) {
	ev := requestEvent(req)
	if ev == nil {
		return
	}
	seg, err := st.jrnl.Append(ev)
	if err != nil {
		return // invalid events are not journaled
	}
	st.s.metrics.Journaled++
	if rec := p.Runtime().Tracer(); rec != nil {
		rec.Instant(int64(p.Now()), st.s.ep.Name(), "journal", "journal.append")
	}
	if seg != nil {
		st.queue = append(st.queue, seg)
		st.kick()
	}
}

// requestEvent maps an RPC to its journal event.
func requestEvent(req *Request) *journal.Event {
	switch req.Op {
	case OpCreate, OpMkdir:
		t := journal.EvCreate
		if req.Op == OpMkdir {
			t = journal.EvMkdir
		}
		return &journal.Event{
			Type: t, Client: req.Client,
			Parent: uint64(req.Parent), Name: req.Name,
			Mode: req.Mode, UID: req.UID, GID: req.GID,
		}
	case OpUnlink:
		return &journal.Event{Type: journal.EvUnlink, Client: req.Client,
			Parent: uint64(req.Parent), Name: req.Name}
	case OpRmdir:
		return &journal.Event{Type: journal.EvRmdir, Client: req.Client,
			Parent: uint64(req.Parent), Name: req.Name}
	case OpRename:
		return &journal.Event{Type: journal.EvRename, Client: req.Client,
			Parent: uint64(req.Parent), Name: req.Name,
			NewParent: uint64(req.NewParent), NewName: req.NewName}
	case OpSetAttr:
		return &journal.Event{Type: journal.EvSetAttr, Client: req.Client,
			Ino: uint64(req.Ino), Mode: req.Mode, UID: req.UID, GID: req.GID,
			Size: req.Size, Mtime: req.Mtime}
	}
	return nil
}

// kick starts the dispatcher process if it is not already running.
func (st *streamState) kick() {
	if st.dispatching {
		return
	}
	st.dispatching = true
	st.s.eng.Spawn("mds.dispatch", st.dispatchLoop)
}

// dispatchLoop drains the segment queue in batches of up to DispatchSize.
// Each dispatch scans the configured dispatch window, so the per-segment
// management cost grows with the DispatchSize tunable:
// SegmentDispatchCPU*(1+(DispatchSize-1)*congestion). Those cycles come
// off the request-processing CPU, which is why large dispatch sizes
// degrade performance under load (Fig 3a).
func (st *streamState) dispatchLoop(p runtime.Task) {
	for len(st.queue) > 0 {
		k := st.s.cfg.DispatchSize
		if k > len(st.queue) {
			k = len(st.queue)
		}
		batch := st.queue[:k]
		st.queue = st.queue[k:]

		perSeg := runtime.Duration(float64(st.s.cfg.MDSSegmentDispatchCPU) *
			(1 + float64(st.s.cfg.DispatchSize-1)*st.s.cfg.MDSDispatchCongestion))

		// Management cycles contend with request processing.
		for range batch {
			st.s.cpu.Use(p, perSeg)
		}

		// The writes themselves go out in parallel ("dispatched at
		// once") and do not hold the CPU.
		g := st.s.eng.NewGroup()
		striper := rados.NewStriper(st.s.obj)
		for _, seg := range batch {
			seg := seg
			g.Go("mds.segwrite", func(wp runtime.Task) {
				name := journalObjectName(st.s.rank, st.segBase+seg.Index)
				nominal := int64(len(seg.Events)) * int64(st.s.cfg.JournalEventBytes)
				data, err := st.enc.Encode(seg.Events)
				if err != nil {
					return
				}
				rec := wp.Runtime().Tracer()
				span := trace.SpanID(-1)
				if rec != nil {
					span = rec.Begin(int64(wp.Now()),
						st.s.ep.Name(), "journal", "journal.segwrite",
						trace.KV{Key: "object", Val: name})
				}
				// Charge the paper's 2.5 KB/event footprint; store
				// the real bytes.
				werr := striper.WriteBilled(wp, JournalPool, name, data, nominal)
				rec.End(span, int64(wp.Now()))
				if werr != nil {
					// The segment is not safely down: leave flushedSeg
					// alone so trimming never drops its events, and keep
					// the in-memory journal as the source of truth.
					return
				}
				st.s.metrics.Dispatches++
				st.s.metrics.JournalBytes += uint64(nominal)
				if seg.Index > st.flushedSeg {
					st.flushedSeg = seg.Index
				}
			})
		}
		g.Wait(p)
	}
	st.dispatching = false
}

// FlushJournal seals and dispatches any buffered segments, waiting until
// the journal is safe in the object store.
func (s *Server) FlushJournal(p runtime.Task) {
	if seg := s.stream.jrnl.Seal(); seg != nil {
		s.stream.queue = append(s.stream.queue, seg)
	}
	s.stream.kick()
	// Wait for the dispatcher to drain.
	for s.stream.dispatching {
		p.Sleep(runtime.Duration(1e6)) // 1 ms poll
	}
}

// JournalLen returns the number of events in the MDS journal that have
// not been trimmed.
func (s *Server) JournalLen() int { return s.stream.jrnl.Len() }

// TrimJournal expires segments that are safe in the object store and
// whose updates have been applied to the metadata store.
func (s *Server) TrimJournal() {
	s.stream.jrnl.Trim(s.stream.flushedSeg)
}

// SaveStore applies the in-memory metadata store to its RADOS
// representation: one object per directory, dentries in omap-style
// payloads (paper §IV-A). The journal can be trimmed afterwards.
func (s *Server) SaveStore(p runtime.Task) error {
	for _, ino := range s.store.Dirs() {
		data, err := s.store.EncodeDir(ino)
		if err != nil {
			return err
		}
		oid := rados.ObjectID{Pool: namespace.ObjectPool, Name: namespace.DirObjectName(ino)}
		if err := s.obj.Write(p, oid, data); err != nil {
			return fmt.Errorf("mds save: %w", err)
		}
	}
	s.TrimJournal()
	return nil
}

// Recover rebuilds the in-memory metadata store from RADOS, then replays
// any streamed journal segments on top — the restart path that
// Nonvolatile Apply relies on (paper §III-A): after a client pushes
// updates into the object store, the restarted MDS notices and replays
// them onto its in-memory store.
func (s *Server) Recover(p runtime.Task) error {
	fresh := namespace.NewStore()

	// Load directory objects; parents may appear after children in the
	// listing, so iterate until no progress.
	names := s.obj.List(p, namespace.ObjectPool)
	pending := make(map[string]*namespace.DirObject, len(names))
	for _, name := range names {
		data, err := s.obj.Read(p, rados.ObjectID{Pool: namespace.ObjectPool, Name: name})
		if err != nil {
			return err
		}
		obj, err := namespace.DecodeDir(data)
		if err != nil {
			return fmt.Errorf("mds recover: object %s: %w", name, err)
		}
		pending[name] = obj
	}
	for len(pending) > 0 {
		progress := false
		for name, obj := range pending {
			if err := fresh.InstallDir(obj); err == nil {
				delete(pending, name)
				progress = true
			}
		}
		if !progress {
			return fmt.Errorf("mds recover: %d orphan directory objects", len(pending))
		}
	}

	// Replay streamed journal segments from the object store.
	replay := p.Runtime().Tracer().Begin(int64(p.Now()),
		s.ep.Name(), "journal", "journal.replay")
	defer func(rec *trace.Recorder) {
		rec.End(replay, int64(p.Now()))
	}(p.Runtime().Tracer())
	striper := rados.NewStriper(s.obj)
	nseg := 0
	for idx := 0; ; idx++ {
		name := journalObjectName(s.rank, idx)
		data, err := striper.Read(p, JournalPool, name)
		if err != nil {
			break // no more segments
		}
		nseg = idx + 1
		events, err := journal.Decode(data)
		if err != nil {
			return fmt.Errorf("mds recover: journal segment %d: %w", idx, err)
		}
		for _, ev := range events {
			// Replay tolerates updates already present in the
			// flushed store (idempotent recovery).
			if err := fresh.ApplyEvent(ev); err != nil &&
				!isReplayBenign(err) {
				return fmt.Errorf("mds recover: replay: %w", err)
			}
		}
	}

	s.store = fresh
	s.caps = make(map[namespace.Ino]*dirCaps)
	s.recoveredSegs = nseg
	return nil
}

func isReplayBenign(err error) bool {
	// Deletions already applied, creates already materialized.
	return err != nil && (errors.Is(err, namespace.ErrNotExist) || errors.Is(err, namespace.ErrExist))
}
