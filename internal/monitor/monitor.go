// Package monitor implements the cluster monitor daemon (paper §III-C):
// users present a directory path and a policies configuration; the monitor
// parses it, versions it, distributes it to the metadata servers, and
// returns the subtree's inode grant.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cudele/internal/mds"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/sim"
)

// ErrUnknownSubtree is returned when unregistering a path that was never
// registered.
var ErrUnknownSubtree = errors.New("monitor: unknown subtree")

// commitLatency approximates the monitor quorum commit plus map
// distribution to the daemons.
const commitLatency = 2 * time.Millisecond

// Entry is one registered subtree in the monitor's map.
type Entry struct {
	Path    string
	Policy  *policy.Policy
	Owner   string
	Epoch   uint64
	GrantLo namespace.Ino
	GrantN  uint64
}

// Monitor manages cluster state changes.
type Monitor struct {
	eng      *sim.Engine
	srv      *mds.Server
	epoch    uint64
	subtrees map[string]*Entry
}

// New creates a monitor governing one metadata server.
func New(eng *sim.Engine, srv *mds.Server) *Monitor {
	return &Monitor{eng: eng, srv: srv, subtrees: make(map[string]*Entry)}
}

// Epoch returns the current cluster-map epoch, bumped on every change.
func (m *Monitor) Epoch() uint64 { return m.epoch }

// Register parses policiesText (the policies.yml of §III-C), stamps it
// with a new epoch, distributes it, and reserves the subtree's inode
// grant. Registering the same path again replaces its policy.
func (m *Monitor) Register(p *sim.Proc, path, policiesText, owner string) (*Entry, error) {
	pol, err := policy.ParseFile(policiesText)
	if err != nil {
		return nil, err
	}
	return m.RegisterPolicy(p, path, pol, owner)
}

// RegisterPolicy is Register with an already-parsed policy.
func (m *Monitor) RegisterPolicy(p *sim.Proc, path string, pol *policy.Policy, owner string) (*Entry, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	p.Sleep(commitLatency)
	m.epoch++
	pol.Version = m.epoch
	lo, n, err := m.srv.Decouple(p, path, pol, owner)
	if err != nil {
		return nil, err
	}
	e := &Entry{
		Path: path, Policy: pol, Owner: owner,
		Epoch: m.epoch, GrantLo: lo, GrantN: n,
	}
	m.subtrees[path] = e
	return e, nil
}

// Unregister removes the subtree's policy and returns it to the global
// namespace's semantics.
func (m *Monitor) Unregister(p *sim.Proc, path string) error {
	if _, ok := m.subtrees[path]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSubtree, path)
	}
	p.Sleep(commitLatency)
	m.epoch++
	if err := m.srv.Recouple(p, path); err != nil {
		return err
	}
	delete(m.subtrees, path)
	return nil
}

// Lookup returns the registered entry for path.
func (m *Monitor) Lookup(path string) (*Entry, bool) {
	e, ok := m.subtrees[path]
	return e, ok
}

// Subtrees lists registered entries sorted by path.
func (m *Monitor) Subtrees() []*Entry {
	out := make([]*Entry, 0, len(m.subtrees))
	for _, e := range m.subtrees {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Describe renders the cluster map for operators.
func (m *Monitor) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d, %d subtree(s)\n", m.epoch, len(m.subtrees))
	for _, e := range m.Subtrees() {
		comp, _ := e.Policy.Composition()
		fmt.Fprintf(&b, "  %-20s owner=%-10s epoch=%-3d inodes=[%d,+%d) %s\n",
			e.Path, e.Owner, e.Epoch, e.GrantLo, e.GrantN, comp)
	}
	return b.String()
}
