// Package monitor implements the cluster monitor daemon (paper §III-C):
// users present a directory path and a policies configuration; the monitor
// parses it, versions it, distributes it to the metadata servers, and
// returns the subtree's inode grant. In a multi-rank cluster the monitor
// also owns subtree placement: a policy's mds_rank pins the subtree to a
// metadata rank, and the monitor pushes the resulting routing table to
// every subscribed client portal.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cudele/internal/mds"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// ErrUnknownSubtree is returned when unregistering a path that was never
// registered.
var ErrUnknownSubtree = errors.New("monitor: unknown subtree")

// commitLatency approximates the monitor quorum commit plus map
// distribution to the daemons.
const commitLatency = 2 * time.Millisecond

// Entry is one registered subtree in the monitor's map.
type Entry struct {
	Path    string
	Policy  *policy.Policy
	Owner   string
	Epoch   uint64
	GrantLo namespace.Ino
	GrantN  uint64
	Rank    int
}

// Monitor manages cluster state changes.
type Monitor struct {
	eng      runtime.Runtime
	cl       *mds.Cluster
	epoch    uint64
	migSeq   uint64 // last assigned migration sequence (export records)
	subtrees map[string]*Entry
	subs     map[string]*transport.Table
}

// New creates a monitor governing a metadata cluster.
func New(eng runtime.Runtime, cl *mds.Cluster) *Monitor {
	return &Monitor{
		eng:      eng,
		cl:       cl,
		subtrees: make(map[string]*Entry),
		subs:     make(map[string]*transport.Table),
	}
}

// Epoch returns the current cluster-map epoch, bumped on every change.
func (m *Monitor) Epoch() uint64 { return m.epoch }

// Cluster returns the metadata cluster the monitor governs.
func (m *Monitor) Cluster() *mds.Cluster { return m.cl }

// Subscribe registers a routing-table replica (normally a client portal's)
// to be refreshed on every cluster-map change, and syncs it immediately.
func (m *Monitor) Subscribe(id string, t *transport.Table) {
	m.subs[id] = t
	t.CopyFrom(m.cl.Table())
}

// Unsubscribe drops a replica from the refresh list.
func (m *Monitor) Unsubscribe(id string) { delete(m.subs, id) }

// publish stamps the authoritative table with the current epoch and
// refreshes every subscribed replica.
func (m *Monitor) publish() {
	t := m.cl.Table()
	t.SetEpoch(m.epoch)
	for _, sub := range m.subs {
		sub.CopyFrom(t)
	}
}

// Register parses policiesText (the policies.yml of §III-C), stamps it
// with a new epoch, distributes it, and reserves the subtree's inode
// grant. Registering the same path again replaces its policy.
func (m *Monitor) Register(p runtime.Task, path, policiesText, owner string) (*Entry, error) {
	pol, err := policy.ParseFile(policiesText)
	if err != nil {
		return nil, err
	}
	return m.RegisterPolicy(p, path, pol, owner)
}

// RegisterPolicy is Register with an already-parsed policy. One
// registration is one cluster-map change: the epoch is bumped exactly
// once, covering the policy distribution and any subtree placement it
// implies, and the new map is pushed to every subscriber.
func (m *Monitor) RegisterPolicy(p runtime.Task, path string, pol *policy.Policy, owner string) (*Entry, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	target := m.cl.Table().RankFor(path)
	if pol.Rank != 0 {
		if pol.Rank >= m.cl.Ranks() {
			return nil, fmt.Errorf("monitor: mds_rank %d out of range: cluster has %d rank(s)",
				pol.Rank, m.cl.Ranks())
		}
		target = pol.Rank
	}
	p.Sleep(commitLatency)
	m.epoch++
	pol.Version = m.epoch

	oldRank := m.cl.Table().RankFor(path)
	if _, had := m.subtrees[path]; had && target != oldRank {
		// The subtree moves: clear its registration on the old owner
		// before the export, so a single rank never holds a policy for
		// a subtree it no longer serves.
		if err := m.cl.Rank(oldRank).Recouple(p, path); err != nil {
			return nil, err
		}
	}
	if target != oldRank {
		if err := m.cl.Place(p, path, target); err != nil {
			return nil, err
		}
	}
	r := m.cl.Endpoint().Post(p, &mds.DecoupleMsg{Path: path, Policy: pol, Client: owner}).(*mds.DecoupleReply)
	if r.Err != nil {
		return nil, r.Err
	}
	e := &Entry{
		Path: path, Policy: pol, Owner: owner,
		Epoch: m.epoch, GrantLo: r.Lo, GrantN: r.N, Rank: target,
	}
	m.subtrees[path] = e
	m.publish()
	return e, nil
}

// Unregister removes the subtree's policy and returns it to the global
// namespace's semantics. Placement is left alone: pinning a subtree to a
// rank is orthogonal to its consistency/durability policy.
func (m *Monitor) Unregister(p runtime.Task, path string) error {
	if _, ok := m.subtrees[path]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSubtree, path)
	}
	p.Sleep(commitLatency)
	m.epoch++
	if err := m.cl.Endpoint().Post(p, &mds.RecoupleMsg{Path: path}).(*mds.RecoupleReply).Err; err != nil {
		return err
	}
	delete(m.subtrees, path)
	m.publish()
	return nil
}

// Place pins the subtree at path to a metadata rank without touching its
// policy — the explicit placement knob (ceph.dir.pin in CephFS terms).
func (m *Monitor) Place(p runtime.Task, path string, rank int) error {
	p.Sleep(commitLatency)
	m.epoch++
	if err := m.cl.Place(p, path, rank); err != nil {
		return err
	}
	if e, ok := m.subtrees[path]; ok {
		e.Rank = rank
	}
	m.publish()
	return nil
}

// Lookup returns the registered entry for path.
func (m *Monitor) Lookup(path string) (*Entry, bool) {
	e, ok := m.subtrees[path]
	return e, ok
}

// Subtrees lists registered entries sorted by path.
func (m *Monitor) Subtrees() []*Entry {
	out := make([]*Entry, 0, len(m.subtrees))
	for _, e := range m.subtrees {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Describe renders the cluster map for operators.
func (m *Monitor) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d, %d rank(s), %d subtree(s)\n",
		m.epoch, m.cl.Ranks(), len(m.subtrees))
	for _, e := range m.Subtrees() {
		comp, _ := e.Policy.Composition()
		fmt.Fprintf(&b, "  %-20s owner=%-10s epoch=%-3d rank=%d inodes=[%d,+%d) %s\n",
			e.Path, e.Owner, e.Epoch, e.Rank, e.GrantLo, e.GrantN, comp)
	}
	for _, path := range m.cl.Table().Paths() {
		if _, ok := m.subtrees[path]; !ok {
			fmt.Fprintf(&b, "  %-20s pinned rank=%d\n", path, m.cl.Table().RankFor(path))
		}
	}
	return b.String()
}
