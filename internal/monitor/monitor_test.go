package monitor

import (
	"errors"
	"strings"
	"testing"

	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/sim"
)

func newTestMonitor() (*sim.Engine, *mds.Server, *Monitor) {
	eng := sim.NewEngine(5)
	obj := rados.New(eng, model.Default())
	srv := mds.New(eng, model.Default(), obj)
	return eng, srv, New(eng, srv)
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	eng.RunAll()
}

func mkdirs(t *testing.T, eng *sim.Engine, srv *mds.Server, path string) {
	t.Helper()
	run(t, eng, func(p *sim.Proc) {
		if _, err := srv.Store().MkdirAll(path, namespace.CreateAttrs{Mode: 0755}); err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
	})
}

func TestRegisterParsesAndGrants(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/msevilla/mydir")
	run(t, eng, func(p *sim.Proc) {
		e, err := m.Register(p, "/msevilla/mydir",
			"consistency: weak\ndurability: local\nallocated_inodes: 5000\ninterfere: block\n",
			"client.0")
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if e.GrantN != 5000 || e.GrantLo == 0 {
			t.Errorf("grant = [%d,+%d)", e.GrantLo, e.GrantN)
		}
		if e.Epoch != 1 || e.Policy.Version != 1 {
			t.Errorf("epoch = %d, version = %d", e.Epoch, e.Policy.Version)
		}
		if e.Policy.Interfere != policy.InterfereBlock {
			t.Errorf("interfere = %v", e.Policy.Interfere)
		}
	})
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d", m.Epoch())
	}
	// The MDS now enforces the policy.
	in, err := srv.Store().Resolve("/msevilla/mydir")
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := srv.Owner(in.Ino); !ok || owner != "client.0" {
		t.Fatalf("owner = %q, %v", owner, ok)
	}
}

func TestRegisterEmptyPoliciesFileIsCephFS(t *testing.T) {
	// Paper §III-C: decoupling with an empty policies file gives the
	// application 100 inodes but stock CephFS behaviour.
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p *sim.Proc) {
		e, err := m.Register(p, "/d", "", "c0")
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if e.GrantN != 100 {
			t.Errorf("default grant = %d, want 100", e.GrantN)
		}
		comp, _ := e.Policy.Composition()
		if comp.String() != "rpcs+stream" {
			t.Errorf("default composition = %q", comp)
		}
	})
}

func TestRegisterErrors(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p *sim.Proc) {
		if _, err := m.Register(p, "/d", "bogus line", "c0"); err == nil {
			t.Error("bad policies file accepted")
		}
		if _, err := m.Register(p, "/missing", "", "c0"); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("missing path err = %v", err)
		}
	})
}

func TestUnregister(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p *sim.Proc) {
		if _, err := m.Register(p, "/d", "interfere: block", "c0"); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if err := m.Unregister(p, "/d"); err != nil {
			t.Errorf("unregister: %v", err)
		}
		if err := m.Unregister(p, "/d"); !errors.Is(err, ErrUnknownSubtree) {
			t.Errorf("double unregister err = %v", err)
		}
	})
	if len(m.Subtrees()) != 0 {
		t.Fatalf("subtrees = %d", len(m.Subtrees()))
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", m.Epoch())
	}
}

func TestSubtreesSortedAndDescribe(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/b")
	mkdirs(t, eng, srv, "/a")
	run(t, eng, func(p *sim.Proc) {
		m.Register(p, "/b", "consistency: weak\ndurability: local", "c1")
		m.Register(p, "/a", "consistency: invisible\ndurability: none", "c0")
	})
	subs := m.Subtrees()
	if len(subs) != 2 || subs[0].Path != "/a" || subs[1].Path != "/b" {
		t.Fatalf("subtrees = %+v", subs)
	}
	desc := m.Describe()
	for _, want := range []string{"epoch 2", "/a", "/b", "append_client_journal"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestLookup(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p *sim.Proc) {
		m.Register(p, "/d", "", "c0")
	})
	if _, ok := m.Lookup("/d"); !ok {
		t.Fatal("registered subtree not found")
	}
	if _, ok := m.Lookup("/nope"); ok {
		t.Fatal("phantom subtree found")
	}
}

func TestReRegisterReplacesPolicy(t *testing.T) {
	// Dynamically changing a subtree's semantics (paper §VII): register
	// again with a different policy.
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p *sim.Proc) {
		m.Register(p, "/d", "consistency: invisible\ndurability: none", "c0")
		e, err := m.Register(p, "/d", "consistency: strong\ndurability: global", "c0")
		if err != nil {
			t.Errorf("re-register: %v", err)
			return
		}
		if e.Policy.Consistency != policy.ConsStrong {
			t.Errorf("policy = %v", e.Policy.Consistency)
		}
		if e.Epoch != 2 {
			t.Errorf("epoch = %d", e.Epoch)
		}
	})
}
