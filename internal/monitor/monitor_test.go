package monitor

import (
	"errors"
	"strings"
	"testing"

	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

func newTestMonitor() (runtime.Runtime, *mds.Server, *Monitor) {
	eng, cl, m := newTestCluster(1)
	return eng, cl.Rank(0), m
}

func newTestCluster(ranks int) (runtime.Runtime, *mds.Cluster, *Monitor) {
	eng := sim.NewEngine(5)
	obj := rados.New(eng, model.Default())
	cl := mds.NewCluster(eng, model.Default(), obj, ranks)
	return eng, cl, New(eng, cl)
}

func run(t *testing.T, eng runtime.Runtime, fn func(p runtime.Task)) {
	t.Helper()
	eng.Spawn("test", fn)
	eng.RunAll()
}

func mkdirs(t *testing.T, eng runtime.Runtime, srv *mds.Server, path string) {
	t.Helper()
	run(t, eng, func(p runtime.Task) {
		if _, err := srv.Store().MkdirAll(path, namespace.CreateAttrs{Mode: 0755}); err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
	})
}

func TestRegisterParsesAndGrants(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/msevilla/mydir")
	run(t, eng, func(p runtime.Task) {
		e, err := m.Register(p, "/msevilla/mydir",
			"consistency: weak\ndurability: local\nallocated_inodes: 5000\ninterfere: block\n",
			"client.0")
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if e.GrantN != 5000 || e.GrantLo == 0 {
			t.Errorf("grant = [%d,+%d)", e.GrantLo, e.GrantN)
		}
		if e.Epoch != 1 || e.Policy.Version != 1 {
			t.Errorf("epoch = %d, version = %d", e.Epoch, e.Policy.Version)
		}
		if e.Policy.Interfere != policy.InterfereBlock {
			t.Errorf("interfere = %v", e.Policy.Interfere)
		}
	})
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d", m.Epoch())
	}
	// The MDS now enforces the policy.
	in, err := srv.Store().Resolve("/msevilla/mydir")
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := srv.Owner(in.Ino); !ok || owner != "client.0" {
		t.Fatalf("owner = %q, %v", owner, ok)
	}
}

func TestRegisterEmptyPoliciesFileIsCephFS(t *testing.T) {
	// Paper §III-C: decoupling with an empty policies file gives the
	// application 100 inodes but stock CephFS behaviour.
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p runtime.Task) {
		e, err := m.Register(p, "/d", "", "c0")
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if e.GrantN != 100 {
			t.Errorf("default grant = %d, want 100", e.GrantN)
		}
		comp, _ := e.Policy.Composition()
		if comp.String() != "rpcs+stream" {
			t.Errorf("default composition = %q", comp)
		}
	})
}

func TestRegisterErrors(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p runtime.Task) {
		if _, err := m.Register(p, "/d", "bogus line", "c0"); err == nil {
			t.Error("bad policies file accepted")
		}
		if _, err := m.Register(p, "/missing", "", "c0"); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("missing path err = %v", err)
		}
	})
}

func TestUnregister(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p runtime.Task) {
		if _, err := m.Register(p, "/d", "interfere: block", "c0"); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if err := m.Unregister(p, "/d"); err != nil {
			t.Errorf("unregister: %v", err)
		}
		if err := m.Unregister(p, "/d"); !errors.Is(err, ErrUnknownSubtree) {
			t.Errorf("double unregister err = %v", err)
		}
	})
	if len(m.Subtrees()) != 0 {
		t.Fatalf("subtrees = %d", len(m.Subtrees()))
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", m.Epoch())
	}
}

func TestSubtreesSortedAndDescribe(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/b")
	mkdirs(t, eng, srv, "/a")
	run(t, eng, func(p runtime.Task) {
		m.Register(p, "/b", "consistency: weak\ndurability: local", "c1")
		m.Register(p, "/a", "consistency: invisible\ndurability: none", "c0")
	})
	subs := m.Subtrees()
	if len(subs) != 2 || subs[0].Path != "/a" || subs[1].Path != "/b" {
		t.Fatalf("subtrees = %+v", subs)
	}
	desc := m.Describe()
	for _, want := range []string{"epoch 2", "/a", "/b", "append_client_journal"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestLookup(t *testing.T) {
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p runtime.Task) {
		m.Register(p, "/d", "", "c0")
	})
	if _, ok := m.Lookup("/d"); !ok {
		t.Fatal("registered subtree not found")
	}
	if _, ok := m.Lookup("/nope"); ok {
		t.Fatal("phantom subtree found")
	}
}

func TestReRegisterMovesRankAndPropagates(t *testing.T) {
	// Satellite of the multi-rank refactor: re-registering the same path
	// with a new mds_rank is ONE cluster-map change — the epoch bumps
	// exactly once, and the new rank/placement map reaches subscribers
	// (client portals) and the metadata ranks.
	eng, cl, m := newTestCluster(2)
	mkdirs(t, eng, cl.Rank(0), "/d")
	portal := cl.Portal()
	m.Subscribe("client.0", portal.Table())
	run(t, eng, func(p runtime.Task) {
		if _, err := m.Register(p, "/d", "consistency: weak\ndurability: none", "c0"); err != nil {
			t.Fatalf("register: %v", err)
		}
		if m.Epoch() != 1 {
			t.Fatalf("epoch after first register = %d", m.Epoch())
		}
		e, err := m.Register(p, "/d", "consistency: weak\ndurability: none\nmds_rank: 1", "c0")
		if err != nil {
			t.Fatalf("re-register: %v", err)
		}
		if m.Epoch() != 2 || e.Epoch != 2 {
			t.Errorf("epoch after re-register = %d (entry %d), want exactly 2", m.Epoch(), e.Epoch)
		}
		if e.Rank != 1 {
			t.Errorf("entry rank = %d, want 1", e.Rank)
		}
		// The authoritative table and the subscribed replica both carry
		// the new placement at the new epoch.
		if got := cl.Table().RankFor("/d"); got != 1 {
			t.Errorf("cluster table routes /d to rank %d", got)
		}
		if got := portal.Table().RankFor("/d"); got != 1 {
			t.Errorf("subscribed portal routes /d to rank %d", got)
		}
		if portal.Table().Epoch() != 2 {
			t.Errorf("portal table epoch = %d, want 2", portal.Table().Epoch())
		}
		// The MDS ranks see the handoff: rank 1 owns the subtree's
		// policy, rank 0 no longer does.
		in1, err := cl.Rank(1).Store().Resolve("/d")
		if err != nil {
			t.Fatalf("subtree not exported to rank 1: %v", err)
		}
		if owner, ok := cl.Rank(1).Owner(in1.Ino); !ok || owner != "c0" {
			t.Errorf("rank 1 owner = %q, %v", owner, ok)
		}
		in0, err := cl.Rank(0).Store().Resolve("/d")
		if err != nil {
			t.Fatalf("rank 0 lost its (stale) copy: %v", err)
		}
		if _, ok := cl.Rank(0).Owner(in0.Ino); ok {
			t.Error("rank 0 still registered as the subtree's policy owner")
		}
	})
}

func TestRegisterRankOutOfRange(t *testing.T) {
	eng, cl, m := newTestCluster(1)
	mkdirs(t, eng, cl.Rank(0), "/d")
	run(t, eng, func(p runtime.Task) {
		if _, err := m.Register(p, "/d", "mds_rank: 3", "c0"); err == nil {
			t.Error("mds_rank 3 accepted by a 1-rank cluster")
		}
		if m.Epoch() != 0 {
			t.Errorf("failed register bumped epoch to %d", m.Epoch())
		}
	})
}

func TestReRegisterReplacesPolicy(t *testing.T) {
	// Dynamically changing a subtree's semantics (paper §VII): register
	// again with a different policy.
	eng, srv, m := newTestMonitor()
	mkdirs(t, eng, srv, "/d")
	run(t, eng, func(p runtime.Task) {
		m.Register(p, "/d", "consistency: invisible\ndurability: none", "c0")
		e, err := m.Register(p, "/d", "consistency: strong\ndurability: global", "c0")
		if err != nil {
			t.Errorf("re-register: %v", err)
			return
		}
		if e.Policy.Consistency != policy.ConsStrong {
			t.Errorf("policy = %v", e.Policy.Consistency)
		}
		if e.Epoch != 2 {
			t.Errorf("epoch = %d", e.Epoch)
		}
	})
}
