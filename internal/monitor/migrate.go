package monitor

import (
	"fmt"
	"time"

	"cudele/internal/mds"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// Online subtree migration, orchestrated by the monitor. The protocol
// (mds/migrate.go holds the rank side):
//
//	freeze (src)  → save (src, durable)  → open (dst, admission)
//	→ chunk loop: read (src) / chunk (dst, windowed)
//	→ import commit (dst)  → export commit (src, journaled record)
//	→ epoch++ / publish (monitor)
//
// Routing changes only at publish — that is the linearization point. A
// failure anywhere before the export-commit record lands aborts both
// sides: the source thaws and stays authoritative; the destination keeps
// whatever it installed as an unreachable stale copy, exactly like a
// pre-publish crash.

// migrateRetryDelay is the backoff for windowed sends during migration.
func (m *Monitor) migrateRetryDelay() runtime.Duration {
	if d := m.cl.Config().MigrateRetryDelay; d > 0 {
		return d
	}
	return 2 * time.Millisecond
}

// Migrate moves ownership of the subtree at path to rank dst online:
// clients keep operating (requests into the frozen subtree bounce with a
// redirect) and every update acknowledged before the freeze is durable
// on both sides before ownership flips. Migrating a subtree onto its
// current owner is a no-op. A refused freeze (merges in flight) or any
// mid-stream failure aborts the migration, leaving the source
// authoritative; the caller may retry later.
func (m *Monitor) Migrate(p runtime.Task, path string, dst int) error {
	if dst < 0 || dst >= m.cl.Ranks() {
		return fmt.Errorf("monitor: migrate %s: rank %d out of range [0,%d)",
			path, dst, m.cl.Ranks())
	}
	srcRank := m.cl.Table().RankFor(path)
	if srcRank == dst {
		return nil
	}
	src := m.cl.Rank(srcRank).Endpoint()
	dstEp := m.cl.Rank(dst).Endpoint()
	retry := m.migrateRetryDelay()
	st := m.cl.SubtreeFor(path)

	abort := func(importID uint64, cause error) error {
		if importID != 0 {
			dstEp.Post(p, &mds.ImportAbortMsg{ID: importID})
		}
		src.Post(p, &mds.ExportAbortMsg{Path: path})
		st.State = mds.SubtreeOwned
		if fl := m.eng.Flight(); fl != nil {
			fl.Record(int64(p.Now()), "monitor", "monitor", "migrate.abort",
				fmt.Sprintf("%s rank %d -> %d: %v", path, srcRank, dst, cause))
		}
		return fmt.Errorf("monitor: migrate %s to rank %d: %w", path, dst, cause)
	}

	// 1. Freeze the subtree on the owner and collect its manifest.
	st.State = mds.SubtreeExporting
	fr := src.Post(p, &mds.ExportFreezeMsg{Path: path}).(*mds.ExportFreezeReply)
	if fr.Err != nil {
		st.State = mds.SubtreeOwned
		return fmt.Errorf("monitor: migrate %s to rank %d: %w", path, dst, fr.Err)
	}

	// 2. Make the frozen image durable: after this, pre-freeze acks
	// survive a crash of either rank.
	if sv := src.Post(p, &mds.ExportSaveMsg{Path: path}).(*mds.ExportSaveReply); sv.Err != nil {
		return abort(0, sv.Err)
	}

	// 3. Open the import session (bounded admission on the destination).
	or := transport.SendWindowed(p, dstEp,
		&mds.ImportOpenMsg{Path: path, TotalDirs: fr.Manifest.Dirs}, retry).(*mds.ImportOpenReply)
	if or.Err != nil {
		return abort(0, or.Err)
	}

	// 4. Stream the directory objects, windowed. An empty subtree still
	// ships one (empty, final) chunk so the installer retires the job.
	for chunk := 0; ; chunk++ {
		rr := src.Post(p, &mds.ExportReadMsg{Path: path, Chunk: chunk}).(*mds.ExportReadReply)
		if rr.Err != nil {
			return abort(or.ID, rr.Err)
		}
		cm := &mds.ImportChunkMsg{Path: path, Objs: rr.Objs}
		cm.ID, cm.Seq, cm.Items, cm.Last = or.ID, chunk, len(rr.Objs), rr.Last
		for _, o := range rr.Objs {
			cm.Bytes += int64(len(o))
		}
		cr := transport.SendWindowed(p, dstEp, cm, retry).(*mds.ImportChunkReply)
		if cr.Err != nil {
			return abort(or.ID, cr.Err)
		}
		if rr.Last {
			break
		}
	}

	// 5. Destination adopts the subtree's policy, owner, grant, and
	// journal tail. Routing still points at the source.
	st.State = mds.SubtreeImporting
	ic := dstEp.Post(p, &mds.ImportCommitMsg{ID: or.ID, Manifest: fr.Manifest}).(*mds.ImportCommitReply)
	if ic.Err != nil {
		return abort(or.ID, ic.Err)
	}

	// 6. Source writes the journaled export-commit record and prunes. A
	// failed (or torn) record leaves the source frozen and intact; abort
	// restores service there and strands a harmless copy on dst.
	m.migSeq++
	ec := src.Post(p, &mds.ExportCommitMsg{Path: path, Seq: m.migSeq, Dst: dst}).(*mds.ExportCommitReply)
	if ec.Err != nil {
		return abort(or.ID, ec.Err)
	}

	// 7. Publish the new map: the routing linearization point.
	p.Sleep(commitLatency)
	m.epoch++
	m.cl.CommitMigration(path, dst, m.epoch)
	if e, ok := m.subtrees[path]; ok {
		e.Rank, e.Epoch = dst, m.epoch
	}
	m.publish()
	// Thaw the source last: its freeze outlived the prune so that
	// requests arriving before the publish bounced as Frozen instead of
	// being served ErrNotExist from the pruned store.
	src.Post(p, &mds.ExportAbortMsg{Path: path})
	if fl := m.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), "monitor", "monitor", "migrate.commit",
			fmt.Sprintf("%s rank %d -> %d seq=%d epoch=%d dirs=%d",
				path, srcRank, dst, m.migSeq, m.epoch, fr.Manifest.Dirs))
	}
	return nil
}

// Reattach re-installs a registered subtree's policy, owner, and exact
// inode grant on its current owning rank — the recovery path after that
// rank restarted and lost its volatile registrations. The grant the
// client already holds stays valid.
func (m *Monitor) Reattach(p runtime.Task, path string) error {
	e, ok := m.subtrees[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSubtree, path)
	}
	rank := m.cl.Table().RankFor(path)
	return m.cl.Rank(rank).Attach(p, path, e.Policy, e.Owner, e.GrantLo, e.GrantN)
}

// SplitDir fragments the directory at dir across the given ranks: each
// rank receives a full replica of the subtree, then dentry-hash routing
// spreads its children. One cluster-map change, like any placement.
func (m *Monitor) SplitDir(p runtime.Task, dir string, ranks []int) error {
	if len(ranks) < 2 {
		return fmt.Errorf("monitor: split %s: need at least 2 ranks, got %d", dir, len(ranks))
	}
	for _, r := range ranks {
		if r < 0 || r >= m.cl.Ranks() {
			return fmt.Errorf("monitor: split %s: rank %d out of range [0,%d)",
				dir, r, m.cl.Ranks())
		}
	}
	for _, r := range ranks {
		if err := m.cl.ReplicateSubtree(dir, r); err != nil {
			return fmt.Errorf("monitor: split %s: %w", dir, err)
		}
	}
	p.Sleep(commitLatency)
	m.epoch++
	m.cl.SplitCommit(dir, ranks)
	m.publish()
	if fl := m.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), "monitor", "monitor", "split.commit",
			fmt.Sprintf("%s across %v epoch=%d", dir, ranks, m.epoch))
	}
	return nil
}
