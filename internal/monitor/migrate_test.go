package monitor

import (
	"errors"
	"testing"

	"cudele/internal/mds"
	"cudele/internal/namespace"
	"cudele/internal/runtime"
)

// populate creates a directory tree with some files on rank 0's store.
func populate(t *testing.T, eng runtime.Runtime, srv *mds.Server, dir string, files int) {
	t.Helper()
	run(t, eng, func(p runtime.Task) {
		in, err := srv.Store().MkdirAll(dir, namespace.CreateAttrs{Mode: 0755})
		if err != nil {
			t.Fatalf("mkdirall %s: %v", dir, err)
		}
		for i := 0; i < files; i++ {
			name := []byte{'f', byte('0' + i%10), byte('0' + i/10)}
			if _, err := srv.Store().Create(in.Ino, string(name), namespace.CreateAttrs{Mode: 0644}); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
	})
}

// TestMigrateMovesOwnership is the tentpole's core contract: after an
// online migration the destination serves the subtree, the source has
// pruned it, and the ownership entity records the move under a new
// epoch.
func TestMigrateMovesOwnership(t *testing.T) {
	eng, cl, m := newTestCluster(2)
	populate(t, eng, cl.Rank(0), "/a/job", 7)
	epoch0 := m.Epoch()
	run(t, eng, func(p runtime.Task) {
		if err := m.Migrate(p, "/a/job", 1); err != nil {
			t.Fatalf("migrate: %v", err)
		}
	})
	if got := cl.Table().RankFor("/a/job/f00"); got != 1 {
		t.Errorf("RankFor after migrate = %d, want 1", got)
	}
	if m.Epoch() != epoch0+1 {
		t.Errorf("epoch = %d, want %d", m.Epoch(), epoch0+1)
	}
	if _, err := cl.Rank(1).Store().Resolve("/a/job/f00"); err != nil {
		t.Errorf("dst resolve: %v", err)
	}
	if _, err := cl.Rank(0).Store().Resolve("/a/job"); !errors.Is(err, namespace.ErrNotExist) {
		t.Errorf("src resolve after prune = %v, want ErrNotExist", err)
	}
	// The ancestor chain stays on the source (only the subtree moved).
	if _, err := cl.Rank(0).Store().Resolve("/a"); err != nil {
		t.Errorf("src parent resolve: %v", err)
	}
	st := cl.SubtreeFor("/a/job")
	if st.Rank != 1 || st.State != mds.SubtreeOwned || st.Moves != 1 {
		t.Errorf("entity = %+v, want rank 1, owned, 1 move", st)
	}
	if cl.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", cl.Migrations())
	}
	if got := cl.Rank(0).Metrics().Exports; got != 1 {
		t.Errorf("src exports = %d, want 1", got)
	}
	if got := cl.Rank(1).Metrics().Imports; got != 1 {
		t.Errorf("dst imports = %d, want 1", got)
	}
	// Neither side is left frozen.
	if cl.Rank(0).Frozen("/a/job") || cl.Rank(1).Frozen("/a/job") {
		t.Errorf("subtree still frozen after commit")
	}
}

// TestMigrateToOwnerIsNoop: exporting a subtree to its current owner
// must not burn an epoch, freeze anything, or touch the stores.
func TestMigrateToOwnerIsNoop(t *testing.T) {
	eng, cl, m := newTestCluster(2)
	populate(t, eng, cl.Rank(0), "/a/job", 2)
	epoch0 := m.Epoch()
	run(t, eng, func(p runtime.Task) {
		if err := m.Migrate(p, "/a/job", 0); err != nil {
			t.Fatalf("self-migrate: %v", err)
		}
	})
	if m.Epoch() != epoch0 {
		t.Errorf("epoch moved on a no-op: %d -> %d", epoch0, m.Epoch())
	}
	if cl.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0", cl.Migrations())
	}
	if got := cl.Rank(0).Metrics().Exports; got != 0 {
		t.Errorf("exports = %d, want 0", got)
	}
}

// TestMigrateEmptySubtree: a subtree with no children still completes
// the full protocol (one empty final chunk retires the import job).
func TestMigrateEmptySubtree(t *testing.T) {
	eng, cl, m := newTestCluster(2)
	populate(t, eng, cl.Rank(0), "/a/empty", 0)
	run(t, eng, func(p runtime.Task) {
		if err := m.Migrate(p, "/a/empty", 1); err != nil {
			t.Fatalf("migrate empty: %v", err)
		}
	})
	if got := cl.Table().RankFor("/a/empty"); got != 1 {
		t.Errorf("RankFor = %d, want 1", got)
	}
	if in, err := cl.Rank(1).Store().Resolve("/a/empty"); err != nil || !in.IsDir() {
		t.Errorf("dst resolve = %v, %v", in, err)
	}
}

// TestMigrateInvalidTargets: bad ranks and non-directories are rejected
// without leaving frozen state behind.
func TestMigrateInvalidTargets(t *testing.T) {
	eng, cl, m := newTestCluster(2)
	populate(t, eng, cl.Rank(0), "/a/job", 1)
	run(t, eng, func(p runtime.Task) {
		if err := m.Migrate(p, "/a/job", 5); err == nil {
			t.Errorf("out-of-range rank accepted")
		}
		if err := m.Migrate(p, "/a/job/f00", 1); err == nil {
			t.Errorf("file migration accepted")
		}
		if err := m.Migrate(p, "/", 1); err == nil {
			t.Errorf("root migration accepted")
		}
		if err := m.Migrate(p, "/a/nosuch", 1); err == nil {
			t.Errorf("missing subtree accepted")
		}
	})
	if cl.Rank(0).Frozen("/a/job") {
		t.Errorf("subtree left frozen after rejected migrations")
	}
	if cl.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0", cl.Migrations())
	}
}

// TestMigrateConcurrentSiblings: two sibling subtrees migrate in
// opposite directions at once; admission and windows keep both handoffs
// isolated and both commit.
func TestMigrateConcurrentSiblings(t *testing.T) {
	eng, cl, m := newTestCluster(3)
	populate(t, eng, cl.Rank(0), "/a/one", 20)
	populate(t, eng, cl.Rank(0), "/a/two", 20)
	var err1, err2 error
	eng.Spawn("mig1", func(p runtime.Task) { err1 = m.Migrate(p, "/a/one", 1) })
	eng.Spawn("mig2", func(p runtime.Task) { err2 = m.Migrate(p, "/a/two", 2) })
	eng.RunAll()
	if err1 != nil || err2 != nil {
		t.Fatalf("concurrent migrations: %v, %v", err1, err2)
	}
	if r1, r2 := cl.Table().RankFor("/a/one"), cl.Table().RankFor("/a/two"); r1 != 1 || r2 != 2 {
		t.Errorf("ranks = %d,%d, want 1,2", r1, r2)
	}
	if _, err := cl.Rank(1).Store().Resolve("/a/one/f00"); err != nil {
		t.Errorf("rank1 resolve: %v", err)
	}
	if _, err := cl.Rank(2).Store().Resolve("/a/two/f00"); err != nil {
		t.Errorf("rank2 resolve: %v", err)
	}
	if cl.Migrations() != 2 {
		t.Errorf("migrations = %d, want 2", cl.Migrations())
	}
}

// TestMigratePreservesRegistration: a decoupled subtree's policy, owner,
// and exact inode grant move with it, and Reattach re-installs them
// after the new owner restarts.
func TestMigratePreservesRegistration(t *testing.T) {
	eng, cl, m := newTestCluster(2)
	populate(t, eng, cl.Rank(0), "/a/dec", 3)
	var e *Entry
	run(t, eng, func(p runtime.Task) {
		var err error
		e, err = m.Register(p, "/a/dec",
			"consistency: weak\ndurability: none\nallocated_inodes: 500\n", "client.7")
		if err != nil {
			t.Fatalf("register: %v", err)
		}
		if err := m.Migrate(p, "/a/dec", 1); err != nil {
			t.Fatalf("migrate: %v", err)
		}
	})
	in, err := cl.Rank(1).Store().Resolve("/a/dec")
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := cl.Rank(1).Owner(in.Ino); !ok || owner != "client.7" {
		t.Errorf("dst owner = %q, %v, want client.7", owner, ok)
	}
	if in.Policy == nil {
		t.Errorf("dst lost the policy")
	}
	if got, _ := m.Lookup("/a/dec"); got.Rank != 1 || got.GrantLo != e.GrantLo {
		t.Errorf("entry = %+v, want rank 1 grant %d", got, e.GrantLo)
	}
	// Crash + restart the new owner; Reattach restores the registration.
	run(t, eng, func(p runtime.Task) {
		cl.Rank(1).Crash()
		if err := cl.Rank(1).Restart(p); err != nil {
			t.Fatalf("restart: %v", err)
		}
		if err := m.Reattach(p, "/a/dec"); err != nil {
			t.Fatalf("reattach: %v", err)
		}
	})
	in, err = cl.Rank(1).Store().Resolve("/a/dec")
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := cl.Rank(1).Owner(in.Ino); !ok || owner != "client.7" {
		t.Errorf("owner after reattach = %q, %v", owner, ok)
	}
}

// TestSplitDirReplicates: a monitor-driven dirfrag split replicates the
// directory to every fragment rank and installs hash routing in one
// epoch.
func TestSplitDirReplicates(t *testing.T) {
	eng, cl, m := newTestCluster(3)
	populate(t, eng, cl.Rank(0), "/a/hot", 10)
	epoch0 := m.Epoch()
	run(t, eng, func(p runtime.Task) {
		if err := m.SplitDir(p, "/a/hot", []int{0, 1, 2}); err != nil {
			t.Fatalf("split: %v", err)
		}
		if err := m.SplitDir(p, "/a/hot", []int{0}); err == nil {
			t.Errorf("single-rank split accepted")
		}
	})
	if m.Epoch() != epoch0+1 {
		t.Errorf("epoch = %d, want %d", m.Epoch(), epoch0+1)
	}
	for r := 1; r < 3; r++ {
		if _, err := cl.Rank(r).Store().Resolve("/a/hot/f00"); err != nil {
			t.Errorf("rank %d missing replica: %v", r, err)
		}
	}
	splits := cl.Table().FragSplits()
	if len(splits["/a/hot"]) != 3 {
		t.Errorf("splits = %v, want /a/hot across 3 ranks", splits)
	}
	if cl.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1 (split counts)", cl.Migrations())
	}
}
