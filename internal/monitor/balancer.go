package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cudele/internal/obs"
	"cudele/internal/runtime"
)

// The elastic balancer: a monitor proc that samples the decayed heat map
// every Interval and, when the rank-load imbalance factor crosses the
// threshold, exports subtree cells from the hottest rank to the coldest
// (CephFS's CPU-threshold balancer shape, driven by our decayed-counter
// load signal instead of instantaneous CPU). A single cell so hot that
// no migration can help is fragmented across the coldest ranks instead.
//
// The balancer is entirely opt-in: nothing constructs one unless
// StartBalancer is called, so calibrated baselines never see it.

// BalancerConfig tunes one balancer run. Zero values select defaults.
type BalancerConfig struct {
	// Interval between heat samples. Default 1s.
	Interval time.Duration
	// Rounds bounds the proc's lifetime so a simulated run drains; each
	// round is one sample plus at most MaxMoves actions. Default 8.
	Rounds int
	// Threshold is the imbalance factor (max rank load / mean rank load)
	// above which the balancer acts. Default 1.25.
	Threshold float64
	// MinGap is the minimum hot-cold load difference worth acting on;
	// below it migration overhead outweighs the spread. Default 1.
	MinGap float64
	// MaxMoves caps migrations per round. Default 1.
	MaxMoves int
	// SplitFactor: when the hottest rank's load is concentrated in one
	// cell beyond this fraction and no movable cell fits, the cell's
	// directory is fragmented instead. Default 0.8.
	SplitFactor float64
	// SplitWays is the fragment fan-out of such a split. Default 2.
	SplitWays int
}

func (c *BalancerConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Threshold <= 0 {
		c.Threshold = 1.25
	}
	if c.MinGap <= 0 {
		c.MinGap = 1
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 1
	}
	if c.SplitFactor <= 0 {
		c.SplitFactor = 0.8
	}
	if c.SplitWays < 2 {
		c.SplitWays = 2
	}
}

// BalanceSample is one periodic observation of the cluster's balance.
type BalanceSample struct {
	TimeMS    float64   `json:"time_ms"`
	Imbalance float64   `json:"imbalance"`
	Loads     []float64 `json:"loads"` // decayed load per rank, index = rank
}

// BalanceEvent is one action the balancer took.
type BalanceEvent struct {
	TimeMS    float64 `json:"time_ms"`
	Kind      string  `json:"kind"` // "migrate" or "split"
	Path      string  `json:"path"`
	From      int     `json:"from"`
	To        int     `json:"to"` // first target rank of a split
	Imbalance float64 `json:"imbalance"`
	Err       string  `json:"err,omitempty"`
}

// Balancer is a running (or finished) balancer proc.
type Balancer struct {
	mon     *Monitor
	heat    *obs.Heat
	cfg     BalancerConfig
	done    runtime.Signal
	samples []BalanceSample
	events  []BalanceEvent
	split   map[string]bool // dirs already fragmented this run
}

// StartBalancer spawns the balancer proc consuming the given heat
// accountant. It runs cfg.Rounds rounds and stops; Wait blocks until
// then. The heat accountant must be the one the cluster records into
// (cudele.EnableHeat installs it).
func (m *Monitor) StartBalancer(h *obs.Heat, cfg BalancerConfig) *Balancer {
	cfg.defaults()
	b := &Balancer{
		mon: m, heat: h, cfg: cfg,
		done:  m.eng.NewSignal(),
		split: make(map[string]bool),
	}
	m.eng.Spawn("monitor.balancer", b.run)
	return b
}

// Wait blocks until the balancer's rounds are exhausted.
func (b *Balancer) Wait(p runtime.Task) { b.done.Wait(p) }

// Samples returns the per-round balance observations, oldest first.
func (b *Balancer) Samples() []BalanceSample { return b.samples }

// Events returns the actions taken, oldest first.
func (b *Balancer) Events() []BalanceEvent { return b.events }

func (b *Balancer) run(p runtime.Task) {
	defer b.done.Fire(nil)
	for round := 0; round < b.cfg.Rounds; round++ {
		p.Sleep(b.cfg.Interval)
		cells := b.heat.Snapshot(int64(p.Now()))
		loads := make([]float64, b.mon.cl.Ranks())
		for _, c := range cells {
			if c.Rank >= 0 && c.Rank < len(loads) {
				loads[c.Rank] += c.Load
			}
		}
		rep := obs.NewReport(cells)
		imb := imbalanceOver(loads)
		b.samples = append(b.samples, BalanceSample{
			TimeMS: float64(p.Now()) / 1e6, Imbalance: imb,
			Loads: append([]float64(nil), loads...),
		})
		// NewReport's imbalance only sees ranks with cells; ours counts
		// every cluster rank (an idle rank is the best migration target,
		// not invisible). Use the wider of the two to decide.
		if rep.Imbalance > imb {
			imb = rep.Imbalance
		}
		if imb < b.cfg.Threshold {
			continue
		}
		b.balance(p, cells, loads, imb)
	}
}

// imbalanceOver is max/mean over a dense per-rank load vector, counting
// idle ranks (unlike obs.NewReport, which only sees ranks with cells).
func imbalanceOver(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	max, total := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return max / (total / float64(len(loads)))
}

// movable reports whether a heat cell names a subtree the balancer may
// export: a real placed subtree (not the root catch-all) and not a
// directory fragment (fragments are already spread by hash).
func movable(subtree string) bool {
	return subtree != "" && subtree != "/" && !strings.Contains(subtree, "#")
}

// balance performs up to MaxMoves exports from the hottest rank to the
// coldest; when one cell dominates the hot rank and cannot move without
// overshooting, its directory is fragmented across the coldest ranks.
func (b *Balancer) balance(p runtime.Task, cells []obs.HeatCell, loads []float64, imb float64) {
	for move := 0; move < b.cfg.MaxMoves; move++ {
		hot, cold := 0, 0
		for r, l := range loads {
			if l > loads[hot] {
				hot = r
			}
			if l < loads[cold] {
				cold = r
			}
		}
		gap := loads[hot] - loads[cold]
		if gap < b.cfg.MinGap {
			return
		}
		// The best export shrinks the gap without inverting it: the
		// largest movable cell on the hot rank with load ≤ gap/2.
		var pick *obs.HeatCell
		var dom *obs.HeatCell // hottest movable cell regardless of fit
		for i := range cells {
			c := &cells[i]
			if c.Rank != hot || !movable(c.Subtree) {
				continue
			}
			// A migrated-away subtree's old cell lingers while it
			// decays; only cells matching current ownership are
			// candidates.
			if b.mon.cl.Table().RankFor(c.Subtree) != c.Rank {
				continue
			}
			if dom == nil || c.Load > dom.Load {
				dom = c
			}
			if c.Load <= gap/2 && (pick == nil || c.Load > pick.Load) {
				pick = c
			}
		}
		if pick != nil && pick.Load > 0 {
			err := b.mon.Migrate(p, pick.Subtree, cold)
			ev := BalanceEvent{
				TimeMS: float64(p.Now()) / 1e6, Kind: "migrate",
				Path: pick.Subtree, From: hot, To: cold, Imbalance: imb,
			}
			if err != nil {
				ev.Err = err.Error()
			}
			b.events = append(b.events, ev)
			if err != nil {
				return // busy subtree; try again next round
			}
			loads[hot] -= pick.Load
			loads[cold] += pick.Load
			pick.Rank = cold
			continue
		}
		// Nothing fits: if one cell dominates the hot rank, fragment it.
		if dom == nil || loads[hot] == 0 || dom.Load/loads[hot] < b.cfg.SplitFactor ||
			b.split[dom.Subtree] {
			return
		}
		targets := coldestRanks(loads, b.cfg.SplitWays)
		err := b.mon.SplitDir(p, dom.Subtree, targets)
		ev := BalanceEvent{
			TimeMS: float64(p.Now()) / 1e6, Kind: "split",
			Path: dom.Subtree, From: hot, To: targets[0], Imbalance: imb,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		b.events = append(b.events, ev)
		if err == nil {
			b.split[dom.Subtree] = true
			share := dom.Load / float64(len(targets))
			loads[hot] -= dom.Load
			for _, t := range targets {
				loads[t] += share
			}
		}
		return
	}
}

// coldestRanks returns the n coldest rank indices, coldest first.
func coldestRanks(loads []float64, n int) []int {
	idx := make([]int, len(loads))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return loads[idx[i]] < loads[idx[j]] })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// String renders a convergence table for operators and bench output.
func (b *Balancer) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "balancer: %d sample(s), %d action(s)\n", len(b.samples), len(b.events))
	for _, s := range b.samples {
		fmt.Fprintf(&sb, "  t=%8.1fms imbalance=%.3f loads=%v\n", s.TimeMS, s.Imbalance, s.Loads)
	}
	for _, e := range b.events {
		fmt.Fprintf(&sb, "  t=%8.1fms %s %s rank %d -> %d (imb %.3f) %s\n",
			e.TimeMS, e.Kind, e.Path, e.From, e.To, e.Imbalance, e.Err)
	}
	return sb.String()
}
