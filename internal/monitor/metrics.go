package monitor

import (
	"cudele/internal/trace"
)

// FillMetrics copies the monitor's cluster-map state into a metric
// registry: the current epoch and the number of registered (decoupled)
// subtrees and table subscribers.
func (m *Monitor) FillMetrics(reg *trace.Registry) {
	reg.Counter("cudele_mon_epoch", "Cluster-map epoch, bumped on every change.", float64(m.epoch))
	reg.Gauge("cudele_mon_subtrees", "Registered decoupled subtrees.", float64(len(m.subtrees)))
	reg.Gauge("cudele_mon_subscribers", "Placement-table subscribers.", float64(len(m.subs)))
}
