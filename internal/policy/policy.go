// Package policy models Cudele's programmable consistency/durability
// policies (paper §III).
//
// A policy names a consistency level (invisible, weak, strong, and the
// post-paper speculative and strong-eventual extensions) and a
// durability level (none, local, global), or spells out an explicit
// composition of the low-level mechanisms using the paper's small DSL:
// "+" sequences mechanisms and "||" runs them in parallel. The Compile
// function is Table I: it maps each (consistency, durability) cell to its
// mechanism composition. Policies also carry the subtree's inode grant and
// its interfere policy (allow or block).
package policy

import (
	"errors"
	"fmt"
	"strings"
)

// Consistency is the visibility level of a subtree's metadata updates
// (paper §III-B).
type Consistency uint8

const (
	// ConsInvisible: the system does not merge updates into the global
	// namespace; middleware or the application manages consistency.
	ConsInvisible Consistency = iota
	// ConsWeak: updates merge at some future time (job end, threshold).
	ConsWeak
	// ConsStrong: updates are seen immediately by all clients.
	ConsStrong
	// ConsSpeculative: clients apply updates optimistically against a
	// predicted global view; the merge validates every prediction and
	// forces rollback of the ops that conflicted (plus their dependent
	// suffix, which the validator rejects through missing parents).
	ConsSpeculative
	// ConsStrongEventual: decoupled clients merge concurrently with
	// deterministic commutative conflict resolution — a (timestamp,
	// clientID) tie-break — so any merge order converges to the same
	// namespace.
	ConsStrongEventual
	consMax
)

// NumConsistencies is the number of consistency levels the compiler
// knows; exhaustiveness tests iterate [0, NumConsistencies).
const NumConsistencies = int(consMax)

var consNames = map[Consistency]string{
	ConsInvisible:      "invisible",
	ConsWeak:           "weak",
	ConsStrong:         "strong",
	ConsSpeculative:    "speculative",
	ConsStrongEventual: "strong-eventual",
}

// AllConsistencies returns every consistency level in enum order.
func AllConsistencies() []Consistency {
	out := make([]Consistency, 0, NumConsistencies)
	for c := Consistency(0); c < consMax; c++ {
		out = append(out, c)
	}
	return out
}

func (c Consistency) String() string {
	if s, ok := consNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Consistency(%d)", uint8(c))
}

// ParseConsistency recognizes the three consistency names.
func ParseConsistency(s string) (Consistency, error) {
	for c, name := range consNames {
		if name == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("%w: consistency %q", ErrParse, s)
}

// Durability is the failure-survival level of a subtree's updates.
type Durability uint8

const (
	// DurNone: updates are volatile and lost on any failure.
	DurNone Durability = iota
	// DurLocal: updates survive if the client node recovers.
	DurLocal
	// DurGlobal: updates are always recoverable (safe in the object
	// store).
	DurGlobal
	durMax
)

// NumDurabilities is the number of durability levels the compiler knows.
const NumDurabilities = int(durMax)

// AllDurabilities returns every durability level in enum order.
func AllDurabilities() []Durability {
	out := make([]Durability, 0, NumDurabilities)
	for d := Durability(0); d < durMax; d++ {
		out = append(out, d)
	}
	return out
}

var durNames = map[Durability]string{
	DurNone:   "none",
	DurLocal:  "local",
	DurGlobal: "global",
}

func (d Durability) String() string {
	if s, ok := durNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Durability(%d)", uint8(d))
}

// ParseDurability recognizes the three durability names.
func ParseDurability(s string) (Durability, error) {
	for d, name := range durNames {
		if name == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("%w: durability %q", ErrParse, s)
}

// Mechanism is one of the six building blocks of Figure 4.
type Mechanism uint8

const (
	MechInvalid Mechanism = iota
	// MechRPCs sends an RPC per metadata operation (strong consistency).
	MechRPCs
	// MechAppendClientJournal appends updates to the client's in-memory
	// journal without consistency checks.
	MechAppendClientJournal
	// MechVolatileApply replays the client journal directly onto the
	// MDS's in-memory metadata store.
	MechVolatileApply
	// MechNonvolatileApply replays the client journal onto the metadata
	// store in the object store (via read-modify-write of objects).
	MechNonvolatileApply
	// MechStream is the MDS journaling metadata updates into the object
	// store (the CephFS default for global durability).
	MechStream
	// MechLocalPersist writes the serialized client journal to local
	// disk.
	MechLocalPersist
	// MechGlobalPersist pushes the serialized client journal into the
	// object store.
	MechGlobalPersist
	// MechSpeculativeApply replays the client journal onto the MDS's
	// in-memory store with per-event validation: events whose prediction
	// fails (name taken, parent rolled back) are rejected and the client
	// rolls them back from its undo log.
	MechSpeculativeApply
	// MechConvergeApply replays the client journal through the MDS's
	// commutative (CRDT-style) merger: conflicting updates are resolved
	// by a deterministic (timestamp, clientID) tie-break, so concurrent
	// merges converge in any order.
	MechConvergeApply
	mechMax
)

var mechNames = map[Mechanism]string{
	MechRPCs:                "rpcs",
	MechAppendClientJournal: "append_client_journal",
	MechVolatileApply:       "volatile_apply",
	MechNonvolatileApply:    "nonvolatile_apply",
	MechStream:              "stream",
	MechLocalPersist:        "local_persist",
	MechGlobalPersist:       "global_persist",
	MechSpeculativeApply:    "speculative_apply",
	MechConvergeApply:       "converge_apply",
}

var mechAliases = map[string]Mechanism{
	"append":     MechAppendClientJournal,
	"rpc":        MechRPCs,
	"crdt_merge": MechConvergeApply,
}

func (m Mechanism) String() string {
	if s, ok := mechNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mechanism(%d)", uint8(m))
}

// Valid reports whether m is a known mechanism.
func (m Mechanism) Valid() bool { return m > MechInvalid && m < mechMax }

// ParseMechanism recognizes mechanism names and aliases.
func ParseMechanism(s string) (Mechanism, error) {
	for m, name := range mechNames {
		if name == s {
			return m, nil
		}
	}
	if m, ok := mechAliases[s]; ok {
		return m, nil
	}
	return MechInvalid, fmt.Errorf("%w: mechanism %q", ErrParse, s)
}

// Step is one serialized stage of a composition; the mechanisms inside a
// step run in parallel ("||").
type Step struct {
	Parallel []Mechanism
}

// Composition is an ordered list of steps, run one after another ("+").
type Composition []Step

// String renders the composition in DSL form.
func (c Composition) String() string {
	steps := make([]string, len(c))
	for i, st := range c {
		parts := make([]string, len(st.Parallel))
		for j, m := range st.Parallel {
			parts[j] = m.String()
		}
		steps[i] = strings.Join(parts, "||")
	}
	return strings.Join(steps, "+")
}

// Mechanisms returns every mechanism in the composition, in step order.
func (c Composition) Mechanisms() []Mechanism {
	var out []Mechanism
	for _, st := range c {
		out = append(out, st.Parallel...)
	}
	return out
}

// Contains reports whether m appears anywhere in the composition.
func (c Composition) Contains(m Mechanism) bool {
	for _, st := range c {
		for _, x := range st.Parallel {
			if x == m {
				return true
			}
		}
	}
	return false
}

// Errors reported by parsing and validation.
var (
	ErrParse     = errors.New("policy: parse error")
	ErrSenseless = errors.New("policy: senseless composition")
)

// ParseComposition parses the DSL: mechanisms joined by "+" (serial) and
// "||" (parallel), e.g. "append_client_journal+local_persist||volatile_apply".
func ParseComposition(s string) (Composition, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("%w: empty composition", ErrParse)
	}
	var comp Composition
	for _, stepStr := range strings.Split(s, "+") {
		stepStr = strings.TrimSpace(stepStr)
		if stepStr == "" {
			return nil, fmt.Errorf("%w: empty step in %q", ErrParse, s)
		}
		var step Step
		for _, mechStr := range strings.Split(stepStr, "||") {
			mechStr = strings.TrimSpace(mechStr)
			m, err := ParseMechanism(mechStr)
			if err != nil {
				return nil, err
			}
			step.Parallel = append(step.Parallel, m)
		}
		comp = append(comp, step)
	}
	return comp, nil
}

// seq builds a purely serial composition.
func seq(ms ...Mechanism) Composition {
	c := make(Composition, len(ms))
	for i, m := range ms {
		c[i] = Step{Parallel: []Mechanism{m}}
	}
	return c
}

// Compile is Table I: it returns the mechanism composition that implements
// consistency c with durability d.
func Compile(c Consistency, d Durability) (Composition, error) {
	switch {
	case c == ConsStrong && d == DurNone:
		return seq(MechRPCs), nil
	case c == ConsStrong && d == DurLocal:
		return seq(MechRPCs, MechLocalPersist), nil
	case c == ConsStrong && d == DurGlobal:
		return seq(MechRPCs, MechStream), nil
	case c == ConsInvisible && d == DurNone:
		return seq(MechAppendClientJournal), nil
	case c == ConsInvisible && d == DurLocal:
		return seq(MechAppendClientJournal, MechLocalPersist), nil
	case c == ConsInvisible && d == DurGlobal:
		return seq(MechAppendClientJournal, MechGlobalPersist), nil
	case c == ConsWeak && d == DurNone:
		return seq(MechAppendClientJournal, MechVolatileApply), nil
	case c == ConsWeak && d == DurLocal:
		return seq(MechAppendClientJournal, MechLocalPersist, MechVolatileApply), nil
	case c == ConsWeak && d == DurGlobal:
		return seq(MechAppendClientJournal, MechGlobalPersist, MechVolatileApply), nil
	case c == ConsSpeculative && d == DurNone:
		return seq(MechAppendClientJournal, MechSpeculativeApply), nil
	case c == ConsSpeculative && d == DurLocal:
		return seq(MechAppendClientJournal, MechLocalPersist, MechSpeculativeApply), nil
	case c == ConsSpeculative && d == DurGlobal:
		return seq(MechAppendClientJournal, MechGlobalPersist, MechSpeculativeApply), nil
	case c == ConsStrongEventual && d == DurNone:
		return seq(MechAppendClientJournal, MechConvergeApply), nil
	case c == ConsStrongEventual && d == DurLocal:
		return seq(MechAppendClientJournal, MechLocalPersist, MechConvergeApply), nil
	case c == ConsStrongEventual && d == DurGlobal:
		return seq(MechAppendClientJournal, MechGlobalPersist, MechConvergeApply), nil
	}
	return nil, fmt.Errorf("%w: (%v, %v)", ErrParse, c, d)
}

// ValidateComposition rejects compositions the paper calls out as making
// no sense: RPCs combined with the client journal (both record the same
// updates), and Stream combined with Local Persist (global durability
// subsumes local).
func ValidateComposition(c Composition) error {
	if len(c) == 0 {
		return fmt.Errorf("%w: empty", ErrSenseless)
	}
	for _, st := range c {
		if len(st.Parallel) == 0 {
			return fmt.Errorf("%w: empty step", ErrSenseless)
		}
		for _, m := range st.Parallel {
			if !m.Valid() {
				return fmt.Errorf("%w: invalid mechanism", ErrSenseless)
			}
		}
	}
	if c.Contains(MechRPCs) && c.Contains(MechAppendClientJournal) {
		return fmt.Errorf("%w: append_client_journal with rpcs records updates twice", ErrSenseless)
	}
	if c.Contains(MechStream) && c.Contains(MechLocalPersist) {
		return fmt.Errorf("%w: stream already provides stronger durability than local_persist", ErrSenseless)
	}
	applies := 0
	for _, m := range []Mechanism{MechVolatileApply, MechNonvolatileApply, MechSpeculativeApply, MechConvergeApply} {
		if c.Contains(m) {
			applies++
		}
	}
	if applies > 1 {
		return fmt.Errorf("%w: more than one apply mechanism replays the same updates twice", ErrSenseless)
	}
	if c.Contains(MechRPCs) && (c.Contains(MechSpeculativeApply) || c.Contains(MechConvergeApply)) {
		return fmt.Errorf("%w: rpcs leave no client journal for an apply mechanism to merge", ErrSenseless)
	}
	return nil
}
