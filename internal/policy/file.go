package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// Interfere says how the MDS handles a request from another client aimed
// at a decoupled subtree (paper §III-C).
type Interfere uint8

const (
	// InterfereAllow lets interfering writes through; the decoupled
	// namespace wins conflicts at merge time.
	InterfereAllow Interfere = iota
	// InterfereBlock rejects interfering requests with "device busy".
	InterfereBlock
)

func (i Interfere) String() string {
	if i == InterfereBlock {
		return "block"
	}
	return "allow"
}

// ParseInterfere recognizes "allow" and "block".
func ParseInterfere(s string) (Interfere, error) {
	switch s {
	case "allow":
		return InterfereAllow, nil
	case "block":
		return InterfereBlock, nil
	}
	return 0, fmt.Errorf("%w: interfere %q", ErrParse, s)
}

// DefaultAllocatedInodes is the default inode grant for a decoupled
// subtree (paper §III-C).
const DefaultAllocatedInodes = 100

// Policy is one subtree's consistency/durability configuration. The zero
// value plus Normalize is the paper's default policies file: RPCs
// consistency, Stream durability, 100 inodes, interfere allow — i.e. the
// subtree behaves like stock CephFS.
type Policy struct {
	// Consistency and Durability are the semantic levels. They are used
	// to compile compositions when the explicit fields below are empty,
	// and to position the subtree in Table I.
	Consistency Consistency
	Durability  Durability

	// ConsistencyComp and DurabilityComp, when non-nil, override the
	// compiled compositions (the policies-file values may be raw DSL).
	ConsistencyComp Composition
	DurabilityComp  Composition

	// AllocatedInodes is the subtree's inode grant.
	AllocatedInodes int

	// Interfere is the subtree's interference policy.
	Interfere Interfere

	// Rank pins the subtree to a metadata rank (multi-MDS clusters).
	// Zero keeps the subtree wherever it already lives, which for a
	// fresh cluster is rank 0 — the single-MDS behavior.
	Rank int

	// Version is stamped by the monitor when the policy is distributed.
	Version uint64
}

// Default returns the paper's default policy: strong consistency over
// RPCs, global durability over Stream, 100 inodes, interfere allow.
func Default() *Policy {
	return &Policy{
		Consistency:     ConsStrong,
		Durability:      DurGlobal,
		AllocatedInodes: DefaultAllocatedInodes,
		Interfere:       InterfereAllow,
	}
}

// Composition returns the full mechanism composition for the policy: the
// explicit compositions when set, otherwise the Table I compilation of the
// semantic levels.
func (p *Policy) Composition() (Composition, error) {
	if p.ConsistencyComp != nil || p.DurabilityComp != nil {
		comp := append(Composition{}, p.ConsistencyComp...)
		comp = append(comp, p.DurabilityComp...)
		if err := ValidateComposition(comp); err != nil {
			return nil, err
		}
		return comp, nil
	}
	comp, err := Compile(p.Consistency, p.Durability)
	if err != nil {
		return nil, err
	}
	return comp, nil
}

// Decoupled reports whether the subtree is decoupled from the global
// namespace (its composition writes a client journal instead of RPCs).
func (p *Policy) Decoupled() bool {
	comp, err := p.Composition()
	if err != nil {
		return false
	}
	return comp.Contains(MechAppendClientJournal)
}

// Validate checks the policy for consistency. A zero inode grant is
// allowed and means "inherit the parent subtree's grant" (or the default).
// The rank's upper bound depends on the cluster size, so the monitor
// checks it at registration time.
func (p *Policy) Validate() error {
	if p.AllocatedInodes < 0 {
		return fmt.Errorf("%w: allocated_inodes %d", ErrParse, p.AllocatedInodes)
	}
	if p.Rank < 0 {
		return fmt.Errorf("%w: mds_rank %d", ErrParse, p.Rank)
	}
	_, err := p.Composition()
	return err
}

// String renders the policy in policies-file form.
func (p *Policy) String() string {
	var b strings.Builder
	if p.ConsistencyComp != nil {
		fmt.Fprintf(&b, "consistency: %s\n", p.ConsistencyComp)
	} else {
		fmt.Fprintf(&b, "consistency: %s\n", p.Consistency)
	}
	if p.DurabilityComp != nil {
		fmt.Fprintf(&b, "durability: %s\n", p.DurabilityComp)
	} else {
		fmt.Fprintf(&b, "durability: %s\n", p.Durability)
	}
	fmt.Fprintf(&b, "allocated_inodes: %d\n", p.AllocatedInodes)
	fmt.Fprintf(&b, "interfere: %s\n", p.Interfere)
	if p.Rank != 0 {
		fmt.Fprintf(&b, "mds_rank: %d\n", p.Rank)
	}
	return b.String()
}

// ParseFile parses a policies file (the "policies.yml" of §III-C): one
// "key: value" pair per line, "#" comments, blank lines ignored. Keys:
//
//	consistency:      invisible | weak | strong | <mechanism DSL>
//	durability:       none | local | global | <mechanism DSL>
//	allocated_inodes: positive integer
//	interfere:        allow | block
//	mds_rank:         non-negative integer (subtree placement)
//
// Missing keys take the paper's defaults, so an empty file yields a
// subtree that behaves like the existing CephFS implementation.
func ParseFile(text string) (*Policy, error) {
	p := Default()
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: missing ':' in %q", ErrParse, lineNo+1, raw)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "consistency":
			if c, err := ParseConsistency(value); err == nil {
				p.Consistency = c
				break
			}
			comp, err := ParseComposition(value)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			p.ConsistencyComp = comp
		case "durability":
			if d, err := ParseDurability(value); err == nil {
				p.Durability = d
				break
			}
			comp, err := ParseComposition(value)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			p.DurabilityComp = comp
		case "allocated_inodes":
			n, err := strconv.Atoi(value)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%w: line %d: allocated_inodes %q", ErrParse, lineNo+1, value)
			}
			p.AllocatedInodes = n
		case "interfere":
			i, err := ParseInterfere(value)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			p.Interfere = i
		case "mds_rank":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: line %d: mds_rank %q", ErrParse, lineNo+1, value)
			}
			p.Rank = n
		default:
			return nil, fmt.Errorf("%w: line %d: unknown key %q", ErrParse, lineNo+1, key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Inherit returns the effective policy for a child subtree under the
// embeddable-policies extension (paper §VII future work): the child keeps
// its parent's guarantees except for fields the child explicitly sets.
// child may be nil, meaning "inherit everything".
func Inherit(parent, child *Policy) *Policy {
	if parent == nil {
		parent = Default()
	}
	if child == nil {
		cp := *parent
		return &cp
	}
	out := *child
	if out.AllocatedInodes == 0 {
		out.AllocatedInodes = parent.AllocatedInodes
	}
	return &out
}

// Presets for the real-world systems of Figure 1 / Figure 5.
var (
	// PresetPOSIX is stock CephFS/IndexFS: strong consistency, global
	// durability (RPCs + Stream).
	PresetPOSIX = &Policy{Consistency: ConsStrong, Durability: DurGlobal,
		AllocatedInodes: DefaultAllocatedInodes}
	// PresetBatchFS: weak consistency, local durability.
	PresetBatchFS = &Policy{Consistency: ConsWeak, Durability: DurLocal,
		AllocatedInodes: DefaultAllocatedInodes}
	// PresetDeltaFS: invisible consistency, local durability.
	PresetDeltaFS = &Policy{Consistency: ConsInvisible, Durability: DurLocal,
		AllocatedInodes: DefaultAllocatedInodes}
	// PresetRAMDisk: weak consistency, no durability (decoupled,
	// memory-only, merged on demand).
	PresetRAMDisk = &Policy{Consistency: ConsWeak, Durability: DurNone,
		AllocatedInodes: DefaultAllocatedInodes}
)
