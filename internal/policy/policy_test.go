package policy

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseConsistencyDurability(t *testing.T) {
	for _, name := range []string{"invisible", "weak", "strong", "speculative", "strong-eventual"} {
		c, err := ParseConsistency(name)
		if err != nil || c.String() != name {
			t.Errorf("consistency %q: %v, %v", name, c, err)
		}
	}
	for _, name := range []string{"none", "local", "global"} {
		d, err := ParseDurability(name)
		if err != nil || d.String() != name {
			t.Errorf("durability %q: %v, %v", name, d, err)
		}
	}
	if _, err := ParseConsistency("bogus"); !errors.Is(err, ErrParse) {
		t.Errorf("bogus consistency err = %v", err)
	}
	if _, err := ParseDurability("bogus"); !errors.Is(err, ErrParse) {
		t.Errorf("bogus durability err = %v", err)
	}
}

func TestParseMechanism(t *testing.T) {
	for m, name := range map[Mechanism]string{
		MechRPCs:                "rpcs",
		MechAppendClientJournal: "append_client_journal",
		MechVolatileApply:       "volatile_apply",
		MechNonvolatileApply:    "nonvolatile_apply",
		MechStream:              "stream",
		MechLocalPersist:        "local_persist",
		MechGlobalPersist:       "global_persist",
	} {
		got, err := ParseMechanism(name)
		if err != nil || got != m {
			t.Errorf("mechanism %q = %v, %v", name, got, err)
		}
	}
	// Aliases.
	if m, _ := ParseMechanism("append"); m != MechAppendClientJournal {
		t.Error("alias append failed")
	}
	if m, _ := ParseMechanism("rpc"); m != MechRPCs {
		t.Error("alias rpc failed")
	}
	if _, err := ParseMechanism("nope"); !errors.Is(err, ErrParse) {
		t.Errorf("bad mechanism err = %v", err)
	}
}

func TestParseComposition(t *testing.T) {
	comp, err := ParseComposition("append_client_journal+local_persist||volatile_apply")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(comp) != 2 {
		t.Fatalf("steps = %d, want 2", len(comp))
	}
	if len(comp[0].Parallel) != 1 || comp[0].Parallel[0] != MechAppendClientJournal {
		t.Fatalf("step 0 = %v", comp[0])
	}
	if len(comp[1].Parallel) != 2 ||
		comp[1].Parallel[0] != MechLocalPersist ||
		comp[1].Parallel[1] != MechVolatileApply {
		t.Fatalf("step 1 = %v", comp[1])
	}
	// Round trip through String.
	again, err := ParseComposition(comp.String())
	if err != nil || again.String() != comp.String() {
		t.Fatalf("string round trip: %q vs %q (%v)", again, comp, err)
	}
}

func TestParseCompositionErrors(t *testing.T) {
	for _, s := range []string{"", "+", "append+", "x||y", "append_client_journal++stream"} {
		if _, err := ParseComposition(s); err == nil {
			t.Errorf("ParseComposition(%q) accepted", s)
		}
	}
}

func TestCompileTableI(t *testing.T) {
	// Every cell of Table I.
	want := map[[2]int]string{
		{int(ConsInvisible), int(DurNone)}:   "append_client_journal",
		{int(ConsWeak), int(DurNone)}:        "append_client_journal+volatile_apply",
		{int(ConsStrong), int(DurNone)}:      "rpcs",
		{int(ConsInvisible), int(DurLocal)}:  "append_client_journal+local_persist",
		{int(ConsWeak), int(DurLocal)}:       "append_client_journal+local_persist+volatile_apply",
		{int(ConsStrong), int(DurLocal)}:     "rpcs+local_persist",
		{int(ConsInvisible), int(DurGlobal)}: "append_client_journal+global_persist",
		{int(ConsWeak), int(DurGlobal)}:      "append_client_journal+global_persist+volatile_apply",
		{int(ConsStrong), int(DurGlobal)}:    "rpcs+stream",
	}
	for key, dsl := range want {
		comp, err := Compile(Consistency(key[0]), Durability(key[1]))
		if err != nil {
			t.Errorf("compile (%d,%d): %v", key[0], key[1], err)
			continue
		}
		if comp.String() != dsl {
			t.Errorf("cell (%v,%v) = %q, want %q",
				Consistency(key[0]), Durability(key[1]), comp, dsl)
		}
		if err := ValidateComposition(comp); err != nil {
			t.Errorf("cell (%v,%v) invalid: %v",
				Consistency(key[0]), Durability(key[1]), err)
		}
	}
}

func TestValidateCompositionRejectsSenseless(t *testing.T) {
	bad := []string{
		"append_client_journal+rpcs",       // same updates twice (paper §III-B)
		"stream+local_persist",             // global subsumes local (paper §III-B)
		"volatile_apply+nonvolatile_apply", // double apply
		"rpcs||append_client_journal",      // parallel variant
	}
	for _, dsl := range bad {
		comp, err := ParseComposition(dsl)
		if err != nil {
			t.Fatalf("parse %q: %v", dsl, err)
		}
		if err := ValidateComposition(comp); !errors.Is(err, ErrSenseless) {
			t.Errorf("ValidateComposition(%q) = %v, want ErrSenseless", dsl, err)
		}
	}
	if err := ValidateComposition(nil); !errors.Is(err, ErrSenseless) {
		t.Errorf("empty composition err = %v", err)
	}
}

func TestPolicyDefault(t *testing.T) {
	p := Default()
	comp, err := p.Composition()
	if err != nil {
		t.Fatalf("composition: %v", err)
	}
	if comp.String() != "rpcs+stream" {
		t.Fatalf("default composition = %q, want rpcs+stream", comp)
	}
	if p.AllocatedInodes != 100 || p.Interfere != InterfereAllow {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Decoupled() {
		t.Fatal("default policy should not be decoupled")
	}
}

func TestPolicyDecoupled(t *testing.T) {
	p := &Policy{Consistency: ConsInvisible, Durability: DurLocal, AllocatedInodes: 10}
	if !p.Decoupled() {
		t.Fatal("invisible/local should be decoupled")
	}
}

func TestParseFileEmpty(t *testing.T) {
	p, err := ParseFile("")
	if err != nil {
		t.Fatalf("empty file: %v", err)
	}
	comp, _ := p.Composition()
	if comp.String() != "rpcs+stream" {
		t.Fatalf("empty policies file composition = %q", comp)
	}
	if p.AllocatedInodes != 100 {
		t.Fatalf("empty policies file inodes = %d", p.AllocatedInodes)
	}
}

func TestParseFileFull(t *testing.T) {
	text := `
# BatchFS-style subtree
consistency: weak
durability: local
allocated_inodes: 200000
interfere: block
`
	p, err := ParseFile(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p.Consistency != ConsWeak || p.Durability != DurLocal {
		t.Fatalf("levels = %v/%v", p.Consistency, p.Durability)
	}
	if p.AllocatedInodes != 200000 || p.Interfere != InterfereBlock {
		t.Fatalf("policy = %+v", p)
	}
	comp, _ := p.Composition()
	if comp.String() != "append_client_journal+local_persist+volatile_apply" {
		t.Fatalf("composition = %q", comp)
	}
}

func TestParseFileExplicitDSL(t *testing.T) {
	p, err := ParseFile("consistency: append_client_journal\ndurability: global_persist||local_persist\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	comp, err := p.Composition()
	if err != nil {
		t.Fatalf("composition: %v", err)
	}
	if comp.String() != "append_client_journal+global_persist||local_persist" {
		t.Fatalf("composition = %q", comp)
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := []string{
		"consistency weak",       // missing colon
		"consistency: sorta",     // unknown level and not DSL
		"allocated_inodes: -5",   // non-positive
		"allocated_inodes: many", // non-integer
		"interfere: maybe",       // unknown
		"favourite_colour: blue", // unknown key
		"consistency: rpcs\ndurability: local_persist||stream\n", // senseless combo
	}
	for _, text := range cases {
		if _, err := ParseFile(text); err == nil {
			t.Errorf("ParseFile(%q) accepted", text)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	p := &Policy{Consistency: ConsWeak, Durability: DurGlobal, AllocatedInodes: 5000, Interfere: InterfereBlock}
	p2, err := ParseFile(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.Consistency != p.Consistency || p2.Durability != p.Durability ||
		p2.AllocatedInodes != p.AllocatedInodes || p2.Interfere != p.Interfere {
		t.Fatalf("round trip: %+v vs %+v", p2, p)
	}
}

func TestPresets(t *testing.T) {
	cases := []struct {
		p    *Policy
		want string
	}{
		{PresetPOSIX, "rpcs+stream"},
		{PresetBatchFS, "append_client_journal+local_persist+volatile_apply"},
		{PresetDeltaFS, "append_client_journal+local_persist"},
		{PresetRAMDisk, "append_client_journal+volatile_apply"},
	}
	for _, c := range cases {
		comp, err := c.p.Composition()
		if err != nil {
			t.Errorf("preset %v: %v", c.p, err)
			continue
		}
		if comp.String() != c.want {
			t.Errorf("preset composition = %q, want %q", comp, c.want)
		}
	}
}

func TestInherit(t *testing.T) {
	parent := &Policy{Consistency: ConsStrong, Durability: DurGlobal, AllocatedInodes: 500}
	// nil child inherits everything.
	got := Inherit(parent, nil)
	if got.Consistency != ConsStrong || got.AllocatedInodes != 500 {
		t.Fatalf("nil child inherit = %+v", got)
	}
	if got == parent {
		t.Fatal("Inherit returned the parent pointer, want a copy")
	}
	// Child with explicit fields keeps them but inherits the grant.
	child := &Policy{Consistency: ConsStrong, Durability: DurNone}
	got = Inherit(parent, child)
	if got.Durability != DurNone {
		t.Fatalf("child durability overridden: %+v", got)
	}
	if got.AllocatedInodes != 500 {
		t.Fatalf("child did not inherit inode grant: %+v", got)
	}
	// nil parent falls back to defaults.
	got = Inherit(nil, nil)
	if got.AllocatedInodes != 100 {
		t.Fatalf("nil parent inherit = %+v", got)
	}
}

func TestValidate(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	p.AllocatedInodes = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative inode grant accepted")
	}
	p.AllocatedInodes = 0 // zero means "inherit"
	if err := p.Validate(); err != nil {
		t.Fatalf("zero inode grant rejected: %v", err)
	}
}

// TestCompileBeyondTableI pins the six new composition rows for the
// post-paper speculative and strong-eventual cells.
func TestCompileBeyondTableI(t *testing.T) {
	want := map[[2]int]string{
		{int(ConsSpeculative), int(DurNone)}:      "append_client_journal+speculative_apply",
		{int(ConsSpeculative), int(DurLocal)}:     "append_client_journal+local_persist+speculative_apply",
		{int(ConsSpeculative), int(DurGlobal)}:    "append_client_journal+global_persist+speculative_apply",
		{int(ConsStrongEventual), int(DurNone)}:   "append_client_journal+converge_apply",
		{int(ConsStrongEventual), int(DurLocal)}:  "append_client_journal+local_persist+converge_apply",
		{int(ConsStrongEventual), int(DurGlobal)}: "append_client_journal+global_persist+converge_apply",
	}
	for key, dsl := range want {
		comp, err := Compile(Consistency(key[0]), Durability(key[1]))
		if err != nil {
			t.Errorf("compile (%d,%d): %v", key[0], key[1], err)
			continue
		}
		if comp.String() != dsl {
			t.Errorf("cell (%v,%v) = %q, want %q",
				Consistency(key[0]), Durability(key[1]), comp, dsl)
		}
		if err := ValidateComposition(comp); err != nil {
			t.Errorf("cell (%v,%v) invalid: %v",
				Consistency(key[0]), Durability(key[1]), err)
		}
	}
}

// TestCellExhaustive is the go-vet-style exhaustiveness guard: adding a
// consistency or durability enum value automatically grows
// AllConsistencies/AllDurabilities (they iterate to the enum's max), so a
// new cell without a Compile row, a name, or a parse round-trip fails
// here rather than at runtime.
func TestCellExhaustive(t *testing.T) {
	cons := AllConsistencies()
	durs := AllDurabilities()
	if len(cons) != NumConsistencies || len(durs) != NumDurabilities {
		t.Fatalf("enum walk: %d consistencies, %d durabilities", len(cons), len(durs))
	}
	seen := make(map[string]bool)
	for _, c := range cons {
		// String must not fall through to the raw-number form, and must
		// parse back to the same value.
		if s := c.String(); strings.Contains(s, "Consistency(") {
			t.Errorf("consistency %d has no name", uint8(c))
		} else if back, err := ParseConsistency(s); err != nil || back != c {
			t.Errorf("consistency %v round trip: %v, %v", c, back, err)
		}
		for _, d := range durs {
			if s := d.String(); strings.Contains(s, "Durability(") {
				t.Errorf("durability %d has no name", uint8(d))
			} else if back, err := ParseDurability(s); err != nil || back != d {
				t.Errorf("durability %v round trip: %v, %v", d, back, err)
			}
			comp, err := Compile(c, d)
			if err != nil {
				t.Errorf("cell (%v,%v) has no composition row: %v", c, d, err)
				continue
			}
			if err := ValidateComposition(comp); err != nil {
				t.Errorf("cell (%v,%v) composition invalid: %v", c, d, err)
			}
			if seen[comp.String()] {
				t.Errorf("cell (%v,%v) composition %q duplicates another cell", c, d, comp)
			}
			seen[comp.String()] = true
			// The composition DSL itself must round-trip.
			again, err := ParseComposition(comp.String())
			if err != nil || again.String() != comp.String() {
				t.Errorf("cell (%v,%v) DSL round trip: %q, %v", c, d, again, err)
			}
		}
	}
	// Every mechanism any cell compiles to must be named and parseable.
	for m := MechInvalid + 1; m < mechMax; m++ {
		if s := m.String(); strings.Contains(s, "Mechanism(") {
			t.Errorf("mechanism %d has no name", uint8(m))
		} else if back, err := ParseMechanism(s); err != nil || back != m {
			t.Errorf("mechanism %v round trip: %v, %v", m, back, err)
		}
	}
}

// Property: Compile output always validates and is decoupled exactly when
// consistency != strong.
func TestCompileQuick(t *testing.T) {
	f := func(c, d uint8) bool {
		cons := Consistency(int(c) % NumConsistencies)
		dur := Durability(int(d) % NumDurabilities)
		comp, err := Compile(cons, dur)
		if err != nil {
			return false
		}
		if ValidateComposition(comp) != nil {
			return false
		}
		wantDecoupled := cons != ConsStrong
		return comp.Contains(MechAppendClientJournal) == wantDecoupled
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMechanismStringUnknown(t *testing.T) {
	if s := Mechanism(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown mechanism string = %q", s)
	}
	if Mechanism(99).Valid() {
		t.Fatal("mechanism 99 reported valid")
	}
}
