package namespace

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cudele/internal/journal"
)

func TestNewStoreHasRoot(t *testing.T) {
	s := NewStore()
	root := s.Root()
	if root == nil || root.Ino != RootIno || !root.IsDir() {
		t.Fatalf("root = %+v", root)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	if p, err := s.PathOf(RootIno); err != nil || p != "/" {
		t.Fatalf("path of root = %q, %v", p, err)
	}
}

func TestCreateLookup(t *testing.T) {
	s := NewStore()
	in, err := s.Create(RootIno, "file0", CreateAttrs{Mode: 0644, UID: 10, GID: 20})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if in.Ino == 0 || in.IsDir() {
		t.Fatalf("created inode = %+v", in)
	}
	got, err := s.Lookup(RootIno, "file0")
	if err != nil || got.Ino != in.Ino {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if got.Mode != 0644 || got.UID != 10 || got.GID != 20 {
		t.Fatalf("attrs = %+v", got)
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := NewStore()
	s.Create(RootIno, "f", CreateAttrs{})
	if _, err := s.Create(RootIno, "f", CreateAttrs{}); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create err = %v", err)
	}
}

func TestCreateBadNames(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"", "a/b"} {
		if _, err := s.Create(RootIno, name, CreateAttrs{}); !errors.Is(err, ErrInval) {
			t.Errorf("create %q err = %v, want ErrInval", name, err)
		}
	}
}

func TestCreateInFile(t *testing.T) {
	s := NewStore()
	f, _ := s.Create(RootIno, "f", CreateAttrs{})
	if _, err := s.Create(f.Ino, "child", CreateAttrs{}); !errors.Is(err, ErrNotDir) {
		t.Fatalf("create in file err = %v", err)
	}
	if _, err := s.Lookup(f.Ino, "x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("lookup in file err = %v", err)
	}
}

func TestCreateInMissingParent(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(999, "f", CreateAttrs{}); !errors.Is(err, ErrNotExist) {
		t.Fatalf("create in missing parent err = %v", err)
	}
}

func TestCreateWithExplicitIno(t *testing.T) {
	s := NewStore()
	in, err := s.Create(RootIno, "f", CreateAttrs{Ino: 5000})
	if err != nil || in.Ino != 5000 {
		t.Fatalf("explicit ino create = %+v, %v", in, err)
	}
	// Colliding explicit ino fails.
	if _, err := s.Create(RootIno, "g", CreateAttrs{Ino: 5000}); !errors.Is(err, ErrExist) {
		t.Fatalf("colliding ino err = %v", err)
	}
	// Server allocation skips the used number.
	for i := 0; i < 6000; i++ {
		if _, err := s.Create(RootIno, fmt.Sprintf("x%d", i), CreateAttrs{}); err != nil {
			t.Fatalf("bulk create %d: %v", i, err)
		}
	}
	if s.Len() != 6002 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestAllocSkipsReservedRanges(t *testing.T) {
	s := NewStore()
	if err := s.ReserveRange(2, 100); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	in, _ := s.Create(RootIno, "f", CreateAttrs{})
	if in.Ino >= 2 && in.Ino < 102 {
		t.Fatalf("allocated ino %d inside reserved range", in.Ino)
	}
	if err := s.ReserveRange(0, 10); !errors.Is(err, ErrInval) {
		t.Fatalf("reserve lo=0 err = %v", err)
	}
	if err := s.ReserveRange(5, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("reserve n=0 err = %v", err)
	}
	if s.ReservedRanges() != 1 {
		t.Fatalf("reserved ranges = %d", s.ReservedRanges())
	}
}

func TestMkdirAndResolve(t *testing.T) {
	s := NewStore()
	d1, err := s.Mkdir(RootIno, "a", CreateAttrs{Mode: 0755})
	if err != nil || !d1.IsDir() {
		t.Fatalf("mkdir: %+v, %v", d1, err)
	}
	d2, _ := s.Mkdir(d1.Ino, "b", CreateAttrs{Mode: 0755})
	f, _ := s.Create(d2.Ino, "c", CreateAttrs{})
	got, err := s.Resolve("/a/b/c")
	if err != nil || got.Ino != f.Ino {
		t.Fatalf("resolve = %+v, %v", got, err)
	}
	if p, _ := s.PathOf(f.Ino); p != "/a/b/c" {
		t.Fatalf("pathof = %q", p)
	}
	if _, err := s.Resolve("/a/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("resolve missing err = %v", err)
	}
}

func TestMkdirAll(t *testing.T) {
	s := NewStore()
	d, err := s.MkdirAll("/x/y/z", CreateAttrs{Mode: 0755})
	if err != nil {
		t.Fatalf("mkdirall: %v", err)
	}
	if p, _ := s.PathOf(d.Ino); p != "/x/y/z" {
		t.Fatalf("mkdirall path = %q", p)
	}
	// Idempotent.
	d2, err := s.MkdirAll("/x/y/z", CreateAttrs{})
	if err != nil || d2.Ino != d.Ino {
		t.Fatalf("second mkdirall = %+v, %v", d2, err)
	}
	// Fails through a file.
	s.Create(RootIno, "f", CreateAttrs{})
	if _, err := s.MkdirAll("/f/sub", CreateAttrs{}); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mkdirall through file err = %v", err)
	}
}

func TestSplitPath(t *testing.T) {
	cases := map[string][]string{
		"/":       nil,
		"":        nil,
		"/a":      {"a"},
		"a/b":     {"a", "b"},
		"/a//b/":  {"a", "b"},
		"/a/../b": {"b"},
		"/./a":    {"a"},
	}
	for in, want := range cases {
		got := SplitPath(in)
		if len(got) != len(want) {
			t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestUnlink(t *testing.T) {
	s := NewStore()
	s.Create(RootIno, "f", CreateAttrs{})
	if err := s.Unlink(RootIno, "f"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	if _, err := s.Lookup(RootIno, "f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("lookup after unlink err = %v", err)
	}
	if err := s.Unlink(RootIno, "f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double unlink err = %v", err)
	}
	d, _ := s.Mkdir(RootIno, "d", CreateAttrs{})
	_ = d
	if err := s.Unlink(RootIno, "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("unlink dir err = %v", err)
	}
}

func TestRmdir(t *testing.T) {
	s := NewStore()
	d, _ := s.Mkdir(RootIno, "d", CreateAttrs{})
	s.Create(d.Ino, "f", CreateAttrs{})
	if err := s.Rmdir(RootIno, "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	s.Unlink(d.Ino, "f")
	if err := s.Rmdir(RootIno, "d"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
	s.Create(RootIno, "f", CreateAttrs{})
	if err := s.Rmdir(RootIno, "f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("rmdir file err = %v", err)
	}
}

func TestRename(t *testing.T) {
	s := NewStore()
	d1, _ := s.Mkdir(RootIno, "d1", CreateAttrs{})
	d2, _ := s.Mkdir(RootIno, "d2", CreateAttrs{})
	f, _ := s.Create(d1.Ino, "f", CreateAttrs{})
	if err := s.Rename(d1.Ino, "f", d2.Ino, "g"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	got, err := s.Resolve("/d2/g")
	if err != nil || got.Ino != f.Ino {
		t.Fatalf("after rename: %+v, %v", got, err)
	}
	if _, err := s.Lookup(d1.Ino, "f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("source still present: %v", err)
	}
	if p, _ := s.PathOf(f.Ino); p != "/d2/g" {
		t.Fatalf("path after rename = %q", p)
	}
}

func TestRenameReplace(t *testing.T) {
	s := NewStore()
	s.Create(RootIno, "a", CreateAttrs{})
	s.Create(RootIno, "b", CreateAttrs{})
	if err := s.Rename(RootIno, "a", RootIno, "b"); err != nil {
		t.Fatalf("replace rename: %v", err)
	}
	names, _ := s.ReadDir(RootIno)
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("after replace: %v", names)
	}
}

func TestRenameEdgeCases(t *testing.T) {
	s := NewStore()
	d, _ := s.Mkdir(RootIno, "d", CreateAttrs{})
	sub, _ := s.Mkdir(d.Ino, "sub", CreateAttrs{})
	s.Create(RootIno, "f", CreateAttrs{})

	// Directory under its own descendant.
	if err := s.Rename(RootIno, "d", sub.Ino, "oops"); !errors.Is(err, ErrInval) {
		t.Fatalf("cycle rename err = %v", err)
	}
	// File over non-empty directory.
	if err := s.Rename(RootIno, "f", RootIno, "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("file-over-dir err = %v", err)
	}
	// Directory over file.
	if err := s.Rename(RootIno, "d", RootIno, "f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("dir-over-file err = %v", err)
	}
	// No-op rename.
	if err := s.Rename(RootIno, "f", RootIno, "f"); err != nil {
		t.Fatalf("noop rename err = %v", err)
	}
	// Missing source.
	if err := s.Rename(RootIno, "ghost", RootIno, "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing src err = %v", err)
	}
	// Bad destination name.
	if err := s.Rename(RootIno, "f", RootIno, "a/b"); !errors.Is(err, ErrInval) {
		t.Fatalf("bad dst err = %v", err)
	}
	// Empty directory over empty directory is allowed.
	s.Mkdir(RootIno, "e1", CreateAttrs{})
	s.Mkdir(RootIno, "e2", CreateAttrs{})
	if err := s.Rename(RootIno, "e1", RootIno, "e2"); err != nil {
		t.Fatalf("empty-dir-over-empty-dir: %v", err)
	}
}

func TestSetAttr(t *testing.T) {
	s := NewStore()
	f, _ := s.Create(RootIno, "f", CreateAttrs{Mode: 0644})
	if err := s.SetAttr(f.Ino, 0600, 1, 2, 4096, 99); err != nil {
		t.Fatalf("setattr: %v", err)
	}
	got, _ := s.Get(f.Ino)
	if got.Mode != 0600 || got.UID != 1 || got.GID != 2 || got.Size != 4096 || got.Mtime != 99 {
		t.Fatalf("after setattr: %+v", got)
	}
	if err := s.SetAttr(12345, 0, 0, 0, 0, 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("setattr missing err = %v", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	s := NewStore()
	for _, n := range []string{"c", "a", "b"} {
		s.Create(RootIno, n, CreateAttrs{})
	}
	names, err := s.ReadDir(RootIno)
	if err != nil || len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	f, _ := s.Lookup(RootIno, "a")
	if _, err := s.ReadDir(f.Ino); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir file err = %v", err)
	}
}

func TestWalk(t *testing.T) {
	s := NewStore()
	s.MkdirAll("/a/b", CreateAttrs{})
	s.Create(RootIno, "f", CreateAttrs{})
	ab, _ := s.Resolve("/a/b")
	s.Create(ab.Ino, "deep", CreateAttrs{})
	var paths []string
	err := s.Walk(RootIno, func(p string, in *Inode) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	want := []string{"/", "/a", "/a/b", "/a/b/deep", "/f"}
	if len(paths) != len(want) {
		t.Fatalf("walk = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk = %v, want %v", paths, want)
		}
	}
}

func TestApplyEventJournalRoundTrip(t *testing.T) {
	// Build a namespace via direct ops, record the same ops as journal
	// events, replay onto a fresh store, and require equality — the
	// core merge invariant of the paper.
	direct := NewStore()
	j := journal.New(1024)

	dir, _ := direct.Mkdir(RootIno, "job", CreateAttrs{Mode: 0755})
	j.Append(&journal.Event{Type: journal.EvMkdir, Client: "c0",
		Parent: uint64(RootIno), Name: "job", Ino: uint64(dir.Ino), Mode: 0755})
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("f%03d", i)
		f, _ := direct.Create(dir.Ino, name, CreateAttrs{Mode: 0644})
		j.Append(&journal.Event{Type: journal.EvCreate, Client: "c0",
			Parent: uint64(dir.Ino), Name: name, Ino: uint64(f.Ino), Mode: 0644})
	}
	direct.Unlink(dir.Ino, "f007")
	j.Append(&journal.Event{Type: journal.EvUnlink, Client: "c0",
		Parent: uint64(dir.Ino), Name: "f007"})

	replayed := NewStore()
	n, err := journal.Replay(j.Events(), replayed)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != 52 {
		t.Fatalf("replayed %d events", n)
	}
	if !Equal(direct, replayed) {
		t.Fatal("replayed namespace differs from directly-built namespace")
	}
}

func TestApplyEventInterfereOverwrite(t *testing.T) {
	// With interfere "allow", an interfering client's file is replaced
	// by the decoupled namespace's create at merge time (paper §III-C).
	s := NewStore()
	s.Create(RootIno, "result", CreateAttrs{Mode: 0400}) // interferer's file
	ev := &journal.Event{Type: journal.EvCreate, Client: "job",
		Parent: uint64(RootIno), Name: "result", Ino: 7777, Mode: 0644}
	if err := s.ApplyEvent(ev); err != nil {
		t.Fatalf("apply over interfering file: %v", err)
	}
	got, _ := s.Lookup(RootIno, "result")
	if got.Ino != 7777 || got.Mode != 0644 {
		t.Fatalf("merge did not take priority: %+v", got)
	}
}

func TestApplyEventMkdirIdempotent(t *testing.T) {
	s := NewStore()
	ev := &journal.Event{Type: journal.EvMkdir, Client: "c", Parent: uint64(RootIno), Name: "d", Ino: 500, Mode: 0755}
	if err := s.ApplyEvent(ev); err != nil {
		t.Fatalf("first mkdir: %v", err)
	}
	ev2 := &journal.Event{Type: journal.EvMkdir, Client: "c2", Parent: uint64(RootIno), Name: "d", Ino: 501, Mode: 0755}
	if err := s.ApplyEvent(ev2); err != nil {
		t.Fatalf("second mkdir not idempotent: %v", err)
	}
}

func TestApplyEventAllTypes(t *testing.T) {
	s := NewStore()
	events := []*journal.Event{
		{Type: journal.EvMkdir, Parent: uint64(RootIno), Name: "d", Ino: 100, Mode: 0755},
		{Type: journal.EvCreate, Parent: 100, Name: "f", Ino: 101, Mode: 0644},
		{Type: journal.EvSetAttr, Ino: 101, Mode: 0600, Size: 42},
		{Type: journal.EvRename, Parent: 100, Name: "f", NewParent: uint64(RootIno), NewName: "g"},
		{Type: journal.EvRmdir, Parent: uint64(RootIno), Name: "d"},
		{Type: journal.EvUnlink, Parent: uint64(RootIno), Name: "g"},
		{Type: journal.EvAllocRange, Ino: 5000, Size: 100, Client: "c"},
	}
	for i, ev := range events {
		if err := s.ApplyEvent(ev); err != nil {
			t.Fatalf("event %d (%v): %v", i, ev.Type, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("len after full lifecycle = %d, want 1 (root)", s.Len())
	}
	if s.ReservedRanges() != 1 {
		t.Fatalf("reserved = %d", s.ReservedRanges())
	}
	// Unknown event type errors.
	if err := s.ApplyEvent(&journal.Event{Type: journal.EventType(99)}); err == nil {
		t.Fatal("unknown event type applied")
	}
}

// Property: a random sequence of valid operations applied both directly
// and via journal replay yields identical namespaces.
func TestDirectVsReplayQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		direct := NewStore()
		j := journal.New(4096)

		dirs := []Ino{RootIno}
		var files []struct {
			parent Ino
			name   string
		}
		nextIno := uint64(1000)

		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0: // mkdir
				parent := dirs[rng.Intn(len(dirs))]
				name := fmt.Sprintf("d%d", op)
				nextIno++
				if _, err := direct.Mkdir(parent, name, CreateAttrs{Ino: Ino(nextIno), Mode: 0755}); err != nil {
					continue
				}
				j.Append(&journal.Event{Type: journal.EvMkdir, Parent: uint64(parent), Name: name, Ino: nextIno, Mode: 0755})
				dirs = append(dirs, Ino(nextIno))
			case 1, 2: // create
				parent := dirs[rng.Intn(len(dirs))]
				name := fmt.Sprintf("f%d", op)
				nextIno++
				if _, err := direct.Create(parent, name, CreateAttrs{Ino: Ino(nextIno), Mode: 0644}); err != nil {
					continue
				}
				j.Append(&journal.Event{Type: journal.EvCreate, Parent: uint64(parent), Name: name, Ino: nextIno, Mode: 0644})
				files = append(files, struct {
					parent Ino
					name   string
				}{parent, name})
			case 3: // unlink
				if len(files) == 0 {
					continue
				}
				i := rng.Intn(len(files))
				f := files[i]
				if err := direct.Unlink(f.parent, f.name); err != nil {
					continue
				}
				j.Append(&journal.Event{Type: journal.EvUnlink, Parent: uint64(f.parent), Name: f.name})
				files = append(files[:i], files[i+1:]...)
			}
		}
		replayed := NewStore()
		if _, err := journal.Replay(j.Events(), replayed); err != nil {
			return false
		}
		return Equal(direct, replayed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
