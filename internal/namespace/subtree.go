package namespace

import (
	"fmt"

	"cudele/internal/policy"
)

// This file implements recursive subtree policies: Cudele stores
// consistency/durability policies in "large inodes" and resolves the
// effective policy of any inode by walking toward the root (paper §IV-C).
// Subtrees without policies inherit the semantics of their parent.

// SetPolicy attaches pol to the directory inode ino, making it the root of
// a policy subtree. Passing nil clears the subtree's policy so it inherits
// again.
func (s *Store) SetPolicy(ino Ino, pol *policy.Policy) error {
	in, err := s.Get(ino)
	if err != nil {
		return err
	}
	if !in.IsDir() {
		return fmt.Errorf("set policy on inode %d: %w", ino, ErrNotDir)
	}
	if pol != nil {
		if err := pol.Validate(); err != nil {
			return err
		}
	}
	in.Policy = pol
	s.version++
	return nil
}

// SetPolicyPath attaches pol to the directory at absolute path p.
func (s *Store) SetPolicyPath(p string, pol *policy.Policy) error {
	in, err := s.Resolve(p)
	if err != nil {
		return err
	}
	return s.SetPolicy(in.Ino, pol)
}

// EffectivePolicy resolves the policy governing ino: the nearest ancestor
// (or self) with an attached policy. Inodes outside any policy subtree get
// the global default (stock CephFS semantics). With the embeddable-policy
// extension, nested policies are merged child-over-parent via
// policy.Inherit.
func (s *Store) EffectivePolicy(ino Ino) (*policy.Policy, error) {
	// Collect attached policies from ino up to the root.
	var chain []*policy.Policy
	cur, err := s.Get(ino)
	if err != nil {
		return nil, err
	}
	for {
		if cur.Policy != nil {
			chain = append(chain, cur.Policy)
		}
		if cur.Ino == RootIno {
			break
		}
		cur, err = s.Get(cur.Parent)
		if err != nil {
			return nil, err
		}
	}
	// Fold outermost-first so inner subtrees override outer ones.
	eff := policy.Default()
	for i := len(chain) - 1; i >= 0; i-- {
		eff = policy.Inherit(eff, chain[i])
	}
	return eff, nil
}

// PolicyRoot returns the inode that owns the policy governing ino: the
// nearest ancestor (or self) with an attached policy, or RootIno when no
// subtree policy applies.
func (s *Store) PolicyRoot(ino Ino) (Ino, error) {
	cur, err := s.Get(ino)
	if err != nil {
		return 0, err
	}
	for {
		if cur.Policy != nil {
			return cur.Ino, nil
		}
		if cur.Ino == RootIno {
			return RootIno, nil
		}
		cur, err = s.Get(cur.Parent)
		if err != nil {
			return 0, err
		}
	}
}

// PolicySubtrees lists the paths of all inodes with attached policies, in
// sorted order (the monitor uses this to render cluster state).
func (s *Store) PolicySubtrees() ([]string, error) {
	var out []string
	err := s.Walk(RootIno, func(p string, in *Inode) error {
		if in.Policy != nil {
			out = append(out, p)
		}
		return nil
	})
	return out, err
}
