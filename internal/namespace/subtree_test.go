package namespace

import (
	"errors"
	"testing"

	"cudele/internal/policy"
)

func TestSetPolicyAndEffective(t *testing.T) {
	s := NewStore()
	s.MkdirAll("/home/alice/job", CreateAttrs{Mode: 0755})
	batchfs := &policy.Policy{
		Consistency:     policy.ConsWeak,
		Durability:      policy.DurLocal,
		AllocatedInodes: 1000,
	}
	if err := s.SetPolicyPath("/home/alice", batchfs); err != nil {
		t.Fatalf("set policy: %v", err)
	}

	// The subtree root and everything under it resolve to the policy.
	for _, p := range []string{"/home/alice", "/home/alice/job"} {
		in, _ := s.Resolve(p)
		eff, err := s.EffectivePolicy(in.Ino)
		if err != nil {
			t.Fatalf("effective(%s): %v", p, err)
		}
		if eff.Consistency != policy.ConsWeak || eff.Durability != policy.DurLocal {
			t.Fatalf("effective(%s) = %v/%v", p, eff.Consistency, eff.Durability)
		}
	}
	// Outside the subtree, the default applies.
	home, _ := s.Resolve("/home")
	eff, _ := s.EffectivePolicy(home.Ino)
	if eff.Consistency != policy.ConsStrong || eff.Durability != policy.DurGlobal {
		t.Fatalf("outside policy = %v/%v", eff.Consistency, eff.Durability)
	}
}

func TestPolicyRoot(t *testing.T) {
	s := NewStore()
	s.MkdirAll("/a/b/c", CreateAttrs{})
	b, _ := s.Resolve("/a/b")
	c, _ := s.Resolve("/a/b/c")
	s.SetPolicy(b.Ino, &policy.Policy{Consistency: policy.ConsInvisible, AllocatedInodes: 10})

	root, err := s.PolicyRoot(c.Ino)
	if err != nil || root != b.Ino {
		t.Fatalf("policy root = %d, %v; want %d", root, err, b.Ino)
	}
	a, _ := s.Resolve("/a")
	root, _ = s.PolicyRoot(a.Ino)
	if root != RootIno {
		t.Fatalf("policy root outside subtree = %d", root)
	}
}

func TestNestedPoliciesInherit(t *testing.T) {
	// Embeddable-policies extension: a child subtree overrides only what
	// it sets; the inode grant is inherited when unset.
	s := NewStore()
	s.MkdirAll("/posix/ramdisk", CreateAttrs{})
	s.SetPolicyPath("/posix", &policy.Policy{
		Consistency: policy.ConsStrong, Durability: policy.DurGlobal,
		AllocatedInodes: 777,
	})
	s.SetPolicyPath("/posix/ramdisk", &policy.Policy{
		Consistency: policy.ConsStrong, Durability: policy.DurNone,
	})
	in, _ := s.Resolve("/posix/ramdisk")
	eff, err := s.EffectivePolicy(in.Ino)
	if err != nil {
		t.Fatalf("effective: %v", err)
	}
	if eff.Durability != policy.DurNone {
		t.Fatalf("child durability = %v, want none", eff.Durability)
	}
	if eff.AllocatedInodes != 777 {
		t.Fatalf("child inode grant = %d, want inherited 777", eff.AllocatedInodes)
	}
}

func TestSetPolicyErrors(t *testing.T) {
	s := NewStore()
	f, _ := s.Create(RootIno, "f", CreateAttrs{})
	if err := s.SetPolicy(f.Ino, policy.Default()); !errors.Is(err, ErrNotDir) {
		t.Fatalf("set policy on file err = %v", err)
	}
	if err := s.SetPolicy(9999, policy.Default()); !errors.Is(err, ErrNotExist) {
		t.Fatalf("set policy on missing err = %v", err)
	}
	bad := &policy.Policy{AllocatedInodes: -1}
	if err := s.SetPolicy(RootIno, bad); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if err := s.SetPolicyPath("/nowhere", policy.Default()); !errors.Is(err, ErrNotExist) {
		t.Fatalf("set policy on missing path err = %v", err)
	}
}

func TestClearPolicy(t *testing.T) {
	s := NewStore()
	d, _ := s.Mkdir(RootIno, "d", CreateAttrs{})
	s.SetPolicy(d.Ino, &policy.Policy{Consistency: policy.ConsInvisible, AllocatedInodes: 5})
	if err := s.SetPolicy(d.Ino, nil); err != nil {
		t.Fatalf("clear: %v", err)
	}
	eff, _ := s.EffectivePolicy(d.Ino)
	if eff.Consistency != policy.ConsStrong {
		t.Fatalf("after clear = %v", eff.Consistency)
	}
}

func TestPolicySubtrees(t *testing.T) {
	s := NewStore()
	s.MkdirAll("/x/y", CreateAttrs{})
	s.MkdirAll("/z", CreateAttrs{})
	s.SetPolicyPath("/x/y", &policy.Policy{Consistency: policy.ConsWeak, AllocatedInodes: 5})
	s.SetPolicyPath("/z", &policy.Policy{Consistency: policy.ConsInvisible, AllocatedInodes: 5})
	got, err := s.PolicySubtrees()
	if err != nil || len(got) != 2 || got[0] != "/x/y" || got[1] != "/z" {
		t.Fatalf("subtrees = %v, %v", got, err)
	}
}
