package namespace

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if _, err := s.MkdirAll("/proj/data", CreateAttrs{Mode: 0755}); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Resolve("/proj/data")
	for _, n := range []string{"a.dat", "b.dat"} {
		if _, err := s.Create(d.Ino, n, CreateAttrs{Mode: 0644, UID: 7, GID: 8}); err != nil {
			t.Fatal(err)
		}
	}
	proj, _ := s.Resolve("/proj")
	if _, err := s.Create(proj.Ino, "README", CreateAttrs{Mode: 0444}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDirObjectName(t *testing.T) {
	if got := DirObjectName(RootIno); got != "1.00000000" {
		t.Fatalf("root object name = %q", got)
	}
	if got := DirObjectName(255); !strings.HasPrefix(got, "ff.") {
		t.Fatalf("object name = %q", got)
	}
}

func TestEncodeDecodeDir(t *testing.T) {
	s := buildSample(t)
	d, _ := s.Resolve("/proj/data")
	data, err := s.EncodeDir(d.Ino)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	obj, err := DecodeDir(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if obj.Ino != d.Ino || obj.Name != "data" {
		t.Fatalf("decoded = %+v", obj)
	}
	if len(obj.Entries) != 2 || obj.Entries[0].Name != "a.dat" {
		t.Fatalf("entries = %+v", obj.Entries)
	}
	if obj.Entries[0].UID != 7 || obj.Entries[0].Mode != 0644 {
		t.Fatalf("entry attrs = %+v", obj.Entries[0])
	}
}

func TestEncodeDirErrors(t *testing.T) {
	s := buildSample(t)
	f, _ := s.Resolve("/proj/README")
	if _, err := s.EncodeDir(f.Ino); err == nil {
		t.Fatal("encoded a file as a directory")
	}
	if _, err := s.EncodeDir(99999); err == nil {
		t.Fatal("encoded a missing inode")
	}
}

func TestDecodeDirErrors(t *testing.T) {
	s := buildSample(t)
	d, _ := s.Resolve("/proj")
	data, _ := s.EncodeDir(d.Ino)

	if _, err := DecodeDir(nil); err == nil {
		t.Fatal("decoded nil")
	}
	if _, err := DecodeDir([]byte("WRONGMAGICxxxx")); err == nil {
		t.Fatal("decoded bad magic")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[10] ^= 0xff
	if _, err := DecodeDir(corrupt); err == nil {
		t.Fatal("decoded corrupt object")
	}
	if _, err := DecodeDir(data[:len(data)-6]); err == nil {
		t.Fatal("decoded truncated object")
	}
}

func TestInstallDirRecovery(t *testing.T) {
	// Flush every directory of a built store to objects, then recover
	// into a fresh store and compare.
	src := buildSample(t)
	images := make(map[Ino][]byte)
	for _, ino := range src.Dirs() {
		data, err := src.EncodeDir(ino)
		if err != nil {
			t.Fatalf("encode %d: %v", ino, err)
		}
		images[ino] = data
	}

	dst := NewStore()
	for _, ino := range src.Dirs() { // root-first order
		obj, err := DecodeDir(images[ino])
		if err != nil {
			t.Fatalf("decode %d: %v", ino, err)
		}
		if err := dst.InstallDir(obj); err != nil {
			t.Fatalf("install %d: %v", ino, err)
		}
	}
	if !Equal(src, dst) {
		t.Fatal("recovered namespace differs from source")
	}
}

func TestInstallDirReplacesStaleFiles(t *testing.T) {
	src := buildSample(t)
	d, _ := src.Resolve("/proj/data")
	image, _ := src.EncodeDir(d.Ino)

	// Mutate source: remove one file, add another, then install the old
	// image over it; the store must match the image for file dentries.
	src.Unlink(d.Ino, "a.dat")
	src.Create(d.Ino, "new.dat", CreateAttrs{})
	obj, _ := DecodeDir(image)
	if err := src.InstallDir(obj); err != nil {
		t.Fatalf("install: %v", err)
	}
	names, _ := src.ReadDir(d.Ino)
	if len(names) != 2 || names[0] != "a.dat" || names[1] != "b.dat" {
		t.Fatalf("after install: %v", names)
	}
}

func TestDirsOrder(t *testing.T) {
	s := buildSample(t)
	dirs := s.Dirs()
	if len(dirs) != 3 || dirs[0] != RootIno {
		t.Fatalf("dirs = %v", dirs)
	}
	// Parents come before children.
	seen := map[Ino]bool{}
	for _, ino := range dirs {
		in, _ := s.Get(ino)
		if ino != RootIno && !seen[in.Parent] {
			t.Fatalf("child %d before parent %d", ino, in.Parent)
		}
		seen[ino] = true
	}
}

func TestEqual(t *testing.T) {
	a := buildSample(t)
	b := buildSample(t)
	if !Equal(a, b) {
		t.Fatal("identical stores not equal")
	}
	d, _ := b.Resolve("/proj/data")
	b.Create(d.Ino, "extra", CreateAttrs{})
	if Equal(a, b) {
		t.Fatal("different stores reported equal")
	}
}
