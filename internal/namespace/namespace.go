// Package namespace implements the file-system namespace data structure:
// inodes, dentries, and directory fragments, plus recursive subtree policy
// attachment (paper §IV-A, §IV-C).
//
// A Store is the "metadata store" of CephFS: the tree the MDS keeps in
// memory and also flushes to the object store. It implements
// journal.Target, so journal replay — the shared recovery code path behind
// Volatile Apply, Nonvolatile Apply, and Stream recovery — is simply
// Store.ApplyEvent in a loop.
package namespace

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"

	"cudele/internal/journal"
	"cudele/internal/policy"
)

// Ino is an inode number. Inode 0 is never valid; the root is RootIno.
type Ino uint64

// RootIno is the root directory's inode number, like CephFS's inode 1.
const RootIno Ino = 1

// FileType distinguishes regular files from directories.
type FileType uint8

const (
	// TypeFile is a regular file.
	TypeFile FileType = iota
	// TypeDir is a directory.
	TypeDir
)

func (t FileType) String() string {
	if t == TypeDir {
		return "dir"
	}
	return "file"
}

// Errors returned by namespace operations. They mirror the POSIX errno
// values a file system client would see.
var (
	ErrExist    = errors.New("namespace: file exists")             // EEXIST
	ErrNotExist = errors.New("namespace: no such file or dir")     // ENOENT
	ErrNotDir   = errors.New("namespace: not a directory")         // ENOTDIR
	ErrIsDir    = errors.New("namespace: is a directory")          // EISDIR
	ErrNotEmpty = errors.New("namespace: directory not empty")     // ENOTEMPTY
	ErrInval    = errors.New("namespace: invalid argument")        // EINVAL
	ErrBusy     = errors.New("namespace: device or resource busy") // EBUSY
	ErrNoSpace  = errors.New("namespace: inode grant exhausted")   // ENOSPC
)

// Inode is one file or directory. Directory inodes carry their dentries
// (a single directory fragment; CephFS fragments large directories, and
// this Store keeps one fragment per directory). Following the paper's
// "large inodes" design (§IV-C), subtree policies live directly in the
// inode.
type Inode struct {
	Ino    Ino
	Parent Ino // parent directory; RootIno's parent is itself
	Name   string
	Type   FileType
	Mode   uint32
	UID    uint32
	GID    uint32
	Size   uint64
	Mtime  int64

	// children maps dentry name to child inode (directories only).
	children map[string]Ino

	// Policy is the Cudele subtree policy stored in the large inode,
	// nil when the subtree inherits from its parent.
	Policy *policy.Policy
}

// IsDir reports whether the inode is a directory.
func (in *Inode) IsDir() bool { return in.Type == TypeDir }

// NumChildren returns the number of dentries of a directory inode.
func (in *Inode) NumChildren() int { return len(in.children) }

// Store is the namespace metadata store.
type Store struct {
	inodes map[Ino]*Inode

	// nextIno is the store's own allocation pointer for server-assigned
	// inode numbers.
	nextIno Ino

	// reserved tracks inode ranges granted to decoupled clients so the
	// server-side allocator skips them (paper §IV-C).
	reserved []inoRange

	version uint64 // bumped on every mutation
}

type inoRange struct{ lo, hi Ino } // half-open [lo, hi)

// NewStore creates a store containing only the root directory.
func NewStore() *Store {
	s := &Store{
		inodes:  make(map[Ino]*Inode),
		nextIno: RootIno + 1,
	}
	s.inodes[RootIno] = &Inode{
		Ino:      RootIno,
		Parent:   RootIno,
		Name:     "/",
		Type:     TypeDir,
		Mode:     0755,
		children: make(map[string]Ino),
	}
	return s
}

// Version returns the store's mutation counter.
func (s *Store) Version() uint64 { return s.version }

// Len returns the number of inodes, including the root.
func (s *Store) Len() int { return len(s.inodes) }

// Get returns the inode numbered ino.
func (s *Store) Get(ino Ino) (*Inode, error) {
	in, ok := s.inodes[ino]
	if !ok {
		return nil, fmt.Errorf("inode %d: %w", ino, ErrNotExist)
	}
	return in, nil
}

// Root returns the root directory inode.
func (s *Store) Root() *Inode {
	in, _ := s.Get(RootIno)
	return in
}

// Lookup resolves one dentry: name within directory parent.
func (s *Store) Lookup(parent Ino, name string) (*Inode, error) {
	dir, err := s.Get(parent)
	if err != nil {
		return nil, err
	}
	if !dir.IsDir() {
		return nil, fmt.Errorf("lookup %q in inode %d: %w", name, parent, ErrNotDir)
	}
	ci, ok := dir.children[name]
	if !ok {
		return nil, fmt.Errorf("lookup %q in inode %d: %w", name, parent, ErrNotExist)
	}
	return s.Get(ci)
}

// SplitPath cleans p and splits it into components. The root is the empty
// list.
func SplitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// PathParts iterates the components of an absolute path without
// allocating: every component is a substring of the (cleaned) input.
// It replaces SplitPath on the resolution hot paths, where the
// per-lookup []string from strings.Split was a measurable share of the
// simulation's allocations.
type PathParts struct {
	rest string
}

// SplitIter returns an iterator over p's components. Paths already in
// clean form ("/a/b/c") — the common case, since clients build paths with
// path.Join — cost no allocation at all; unclean input falls back to one
// path.Clean. Component order and content match SplitPath exactly.
func SplitIter(p string) PathParts {
	if !isCleanPath(p) {
		p = path.Clean("/" + p)
	}
	if p == "/" {
		return PathParts{}
	}
	return PathParts{rest: p[1:]}
}

// Next returns the next component and whether one was present.
func (it *PathParts) Next() (string, bool) {
	if it.rest == "" {
		return "", false
	}
	if i := strings.IndexByte(it.rest, '/'); i >= 0 {
		comp := it.rest[:i]
		it.rest = it.rest[i+1:]
		return comp, true
	}
	comp := it.rest
	it.rest = ""
	return comp, true
}

// isCleanPath reports whether p is already in path.Clean("/"+p) form: it
// starts with "/", has no trailing slash, and no empty, "." or ".."
// components.
func isCleanPath(p string) bool {
	if p == "/" {
		return true
	}
	if len(p) < 2 || p[0] != '/' || p[len(p)-1] == '/' {
		return false
	}
	start := 1
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			switch p[start:i] {
			case "", ".", "..":
				return false
			}
			start = i + 1
		}
	}
	return true
}

// Resolve walks an absolute path to its inode.
func (s *Store) Resolve(p string) (*Inode, error) {
	cur := s.Root()
	for it := SplitIter(p); ; {
		comp, ok := it.Next()
		if !ok {
			return cur, nil
		}
		next, err := s.Lookup(cur.Ino, comp)
		if err != nil {
			return nil, fmt.Errorf("resolve %q: %w", p, err)
		}
		cur = next
	}
}

// PathOf reconstructs the absolute path of ino by walking parents.
func (s *Store) PathOf(ino Ino) (string, error) {
	if ino == RootIno {
		return "/", nil
	}
	var parts []string
	cur, err := s.Get(ino)
	if err != nil {
		return "", err
	}
	for cur.Ino != RootIno {
		parts = append(parts, cur.Name)
		cur, err = s.Get(cur.Parent)
		if err != nil {
			return "", err
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/"), nil
}

// AllocIno returns a fresh server-assigned inode number, skipping ranges
// reserved for decoupled clients and numbers already in use.
func (s *Store) AllocIno() Ino {
	for {
		ino := s.nextIno
		s.nextIno++
		if _, used := s.inodes[ino]; used {
			continue
		}
		if s.inReserved(ino) {
			continue
		}
		return ino
	}
}

// SetInoFloor raises the server-side allocation pointer to at least
// floor. Metadata ranks partitioning one namespace call this with
// disjoint bands so their server-assigned numbers never collide.
func (s *Store) SetInoFloor(floor Ino) {
	if s.nextIno < floor {
		s.nextIno = floor
	}
}

func (s *Store) inReserved(ino Ino) bool {
	for _, r := range s.reserved {
		if ino >= r.lo && ino < r.hi {
			return true
		}
	}
	return false
}

// ReserveRange records [lo, lo+n) as granted to a decoupled client so the
// server-side allocator skips it.
func (s *Store) ReserveRange(lo Ino, n uint64) error {
	if lo == 0 || n == 0 {
		return fmt.Errorf("reserve [%d,+%d): %w", lo, n, ErrInval)
	}
	s.reserved = append(s.reserved, inoRange{lo: lo, hi: lo + Ino(n)})
	return nil
}

// ReservedRanges returns the number of active grants.
func (s *Store) ReservedRanges() int { return len(s.reserved) }

func (s *Store) insertChild(dir *Inode, in *Inode) {
	if dir.children == nil {
		dir.children = make(map[string]Ino)
	}
	dir.children[in.Name] = in.Ino
	s.inodes[in.Ino] = in
	s.version++
}

// CreateAttrs carries optional attributes for Create/Mkdir.
type CreateAttrs struct {
	Mode  uint32
	UID   uint32
	GID   uint32
	Mtime int64
	// Ino, when non-zero, is the caller-supplied inode number (from a
	// decoupled client's grant). Zero means server-assigned.
	Ino Ino
}

func (s *Store) createCommon(parent Ino, name string, typ FileType, attrs CreateAttrs) (*Inode, error) {
	if name == "" || strings.Contains(name, "/") {
		return nil, fmt.Errorf("create %q: %w", name, ErrInval)
	}
	dir, err := s.Get(parent)
	if err != nil {
		return nil, err
	}
	if !dir.IsDir() {
		return nil, fmt.Errorf("create %q in inode %d: %w", name, parent, ErrNotDir)
	}
	if _, exists := dir.children[name]; exists {
		return nil, fmt.Errorf("create %q in inode %d: %w", name, parent, ErrExist)
	}
	ino := attrs.Ino
	if ino == 0 {
		ino = s.AllocIno()
	} else if _, used := s.inodes[ino]; used {
		return nil, fmt.Errorf("create %q: inode %d: %w", name, ino, ErrExist)
	}
	in := &Inode{
		Ino:    ino,
		Parent: parent,
		Name:   name,
		Type:   typ,
		Mode:   attrs.Mode,
		UID:    attrs.UID,
		GID:    attrs.GID,
		Mtime:  attrs.Mtime,
	}
	if typ == TypeDir {
		in.children = make(map[string]Ino)
	}
	s.insertChild(dir, in)
	return in, nil
}

// Create adds a regular file dentry to directory parent.
func (s *Store) Create(parent Ino, name string, attrs CreateAttrs) (*Inode, error) {
	return s.createCommon(parent, name, TypeFile, attrs)
}

// Mkdir adds a directory dentry to directory parent.
func (s *Store) Mkdir(parent Ino, name string, attrs CreateAttrs) (*Inode, error) {
	return s.createCommon(parent, name, TypeDir, attrs)
}

// MkdirAll creates every missing directory along absolute path p and
// returns the final directory.
func (s *Store) MkdirAll(p string, attrs CreateAttrs) (*Inode, error) {
	cur := s.Root()
	for it := SplitIter(p); ; {
		comp, ok := it.Next()
		if !ok {
			return cur, nil
		}
		next, err := s.Lookup(cur.Ino, comp)
		if errors.Is(err, ErrNotExist) {
			a := attrs
			a.Ino = 0
			next, err = s.Mkdir(cur.Ino, comp, a)
		}
		if err != nil {
			return nil, err
		}
		if !next.IsDir() {
			return nil, fmt.Errorf("mkdirall %q: %q: %w", p, comp, ErrNotDir)
		}
		cur = next
	}
}

// Unlink removes the file dentry name from parent.
func (s *Store) Unlink(parent Ino, name string) error {
	victim, err := s.Lookup(parent, name)
	if err != nil {
		return err
	}
	if victim.IsDir() {
		return fmt.Errorf("unlink %q: %w", name, ErrIsDir)
	}
	dir, _ := s.Get(parent)
	delete(dir.children, name)
	delete(s.inodes, victim.Ino)
	s.version++
	return nil
}

// Rmdir removes the empty directory dentry name from parent.
func (s *Store) Rmdir(parent Ino, name string) error {
	victim, err := s.Lookup(parent, name)
	if err != nil {
		return err
	}
	if !victim.IsDir() {
		return fmt.Errorf("rmdir %q: %w", name, ErrNotDir)
	}
	if len(victim.children) > 0 {
		return fmt.Errorf("rmdir %q: %w", name, ErrNotEmpty)
	}
	dir, _ := s.Get(parent)
	delete(dir.children, name)
	delete(s.inodes, victim.Ino)
	s.version++
	return nil
}

// Rename moves dentry (srcParent, srcName) to (dstParent, dstName). An
// existing destination file is replaced; an existing destination directory
// must be empty. Renaming a directory under its own descendant fails with
// ErrInval.
func (s *Store) Rename(srcParent Ino, srcName string, dstParent Ino, dstName string) error {
	if dstName == "" || strings.Contains(dstName, "/") {
		return fmt.Errorf("rename to %q: %w", dstName, ErrInval)
	}
	src, err := s.Lookup(srcParent, srcName)
	if err != nil {
		return err
	}
	dstDir, err := s.Get(dstParent)
	if err != nil {
		return err
	}
	if !dstDir.IsDir() {
		return fmt.Errorf("rename into inode %d: %w", dstParent, ErrNotDir)
	}
	// No-op rename.
	if srcParent == dstParent && srcName == dstName {
		return nil
	}
	// A directory must not be moved under itself.
	if src.IsDir() {
		for cur := dstDir; ; {
			if cur.Ino == src.Ino {
				return fmt.Errorf("rename %q under itself: %w", srcName, ErrInval)
			}
			if cur.Ino == RootIno {
				break
			}
			cur, err = s.Get(cur.Parent)
			if err != nil {
				return err
			}
		}
	}
	// Replace semantics for an existing destination.
	if exIno, exists := dstDir.children[dstName]; exists {
		ex, err := s.Get(exIno)
		if err != nil {
			return err
		}
		switch {
		case ex.IsDir() && !src.IsDir():
			return fmt.Errorf("rename %q over directory: %w", srcName, ErrIsDir)
		case !ex.IsDir() && src.IsDir():
			return fmt.Errorf("rename directory over %q: %w", dstName, ErrNotDir)
		case ex.IsDir() && len(ex.children) > 0:
			return fmt.Errorf("rename over %q: %w", dstName, ErrNotEmpty)
		}
		delete(s.inodes, ex.Ino)
	}
	srcDir, _ := s.Get(srcParent)
	delete(srcDir.children, srcName)
	src.Parent = dstParent
	src.Name = dstName
	if dstDir.children == nil {
		dstDir.children = make(map[string]Ino)
	}
	dstDir.children[dstName] = src.Ino
	s.version++
	return nil
}

// SetAttr updates attributes of ino. Zero-valued fields of attrs are still
// applied (this is a full setattr, like the journal event).
func (s *Store) SetAttr(ino Ino, mode, uid, gid uint32, size uint64, mtime int64) error {
	in, err := s.Get(ino)
	if err != nil {
		return err
	}
	in.Mode, in.UID, in.GID, in.Size, in.Mtime = mode, uid, gid, size, mtime
	s.version++
	return nil
}

// ReadDir returns the dentry names of directory ino in sorted order.
func (s *Store) ReadDir(ino Ino) ([]string, error) {
	dir, err := s.Get(ino)
	if err != nil {
		return nil, err
	}
	if !dir.IsDir() {
		return nil, fmt.Errorf("readdir inode %d: %w", ino, ErrNotDir)
	}
	names := make([]string, 0, len(dir.children))
	for name := range dir.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Walk visits every inode under root (inclusive) in depth-first, sorted
// order. The callback receives the inode's absolute path.
func (s *Store) Walk(root Ino, fn func(p string, in *Inode) error) error {
	base, err := s.PathOf(root)
	if err != nil {
		return err
	}
	return s.walk(base, root, fn)
}

func (s *Store) walk(p string, ino Ino, fn func(string, *Inode) error) error {
	in, err := s.Get(ino)
	if err != nil {
		return err
	}
	if err := fn(p, in); err != nil {
		return err
	}
	if !in.IsDir() {
		return nil
	}
	names, _ := s.ReadDir(ino)
	for _, name := range names {
		child := in.children[name]
		cp := p + "/" + name
		if p == "/" {
			cp = "/" + name
		}
		if err := s.walk(cp, child, fn); err != nil {
			return err
		}
	}
	return nil
}

// PruneSubtree detaches the directory at absolute path p from its parent
// and removes every inode under it. The exporting rank calls this after a
// migration commits: the subtree's inodes now live on the importer. The
// inode count removed is returned; pruning the root is refused.
func (s *Store) PruneSubtree(p string) (int, error) {
	root, err := s.Resolve(p)
	if err != nil {
		return 0, err
	}
	if root.Ino == RootIno {
		return 0, fmt.Errorf("prune %q: %w", p, ErrInval)
	}
	var victims []Ino
	if err := s.Walk(root.Ino, func(_ string, in *Inode) error {
		victims = append(victims, in.Ino)
		return nil
	}); err != nil {
		return 0, err
	}
	parent, err := s.Get(root.Parent)
	if err != nil {
		return 0, err
	}
	delete(parent.children, root.Name)
	for _, ino := range victims {
		delete(s.inodes, ino)
	}
	s.version++
	return len(victims), nil
}

// SubtreeInos returns the inode numbers of every inode at or under the
// directory rooted at absolute path p.
func (s *Store) SubtreeInos(p string) (map[Ino]bool, error) {
	root, err := s.Resolve(p)
	if err != nil {
		return nil, err
	}
	set := make(map[Ino]bool)
	err = s.Walk(root.Ino, func(_ string, in *Inode) error {
		set[in.Ino] = true
		return nil
	})
	return set, err
}

// ApplyEvent implements journal.Target: it replays one journal event onto
// the store. This is the recovery/merge code path shared by Stream replay,
// Volatile Apply, and Nonvolatile Apply (paper §IV-B).
func (s *Store) ApplyEvent(ev *journal.Event) error {
	switch ev.Type {
	case journal.EvCreate, journal.EvMkdir:
		attrs := CreateAttrs{
			Mode: ev.Mode, UID: ev.UID, GID: ev.GID,
			Mtime: ev.Mtime, Ino: Ino(ev.Ino),
		}
		var err error
		if ev.Type == journal.EvMkdir {
			_, err = s.Mkdir(Ino(ev.Parent), ev.Name, attrs)
		} else {
			_, err = s.Create(Ino(ev.Parent), ev.Name, attrs)
		}
		// Merge semantics: the decoupled namespace's updates take
		// priority, so a create over an existing interfering dentry
		// overwrites it (paper §III-C "interfere: allow").
		if errors.Is(err, ErrExist) {
			if ev.Type == journal.EvMkdir {
				return nil // directory already materialized
			}
			if rmErr := s.Unlink(Ino(ev.Parent), ev.Name); rmErr != nil {
				return err
			}
			_, err = s.Create(Ino(ev.Parent), ev.Name, attrs)
		}
		return err
	case journal.EvUnlink:
		return s.Unlink(Ino(ev.Parent), ev.Name)
	case journal.EvRmdir:
		return s.Rmdir(Ino(ev.Parent), ev.Name)
	case journal.EvRename:
		return s.Rename(Ino(ev.Parent), ev.Name, Ino(ev.NewParent), ev.NewName)
	case journal.EvSetAttr:
		return s.SetAttr(Ino(ev.Ino), ev.Mode, ev.UID, ev.GID, ev.Size, ev.Mtime)
	case journal.EvAllocRange:
		return s.ReserveRange(Ino(ev.Ino), ev.Size)
	case journal.EvExport:
		// Export-commit records mark an ownership handoff, not a
		// namespace mutation; replay skips them.
		return nil
	case journal.EvUndo:
		// Undo records are speculative-mode client bookkeeping; the
		// merged namespace never sees the rolled-back op, so replay
		// skips them too.
		return nil
	}
	return fmt.Errorf("apply %v: %w", ev.Type, ErrInval)
}

var _ journal.Target = (*Store)(nil)
