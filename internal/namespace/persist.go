package namespace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// This file serializes directories for the RADOS-resident metadata store:
// a directory and its file inodes are stored together in one object to
// make scans fast (paper §IV-A). Subdirectories are referenced by inode
// number and live in their own objects.

const (
	dirMagic = "CUDELED\x01"
	// ObjectPool is the pool holding the metadata store's directory
	// objects.
	ObjectPool = "cephfs_metadata"
)

var dirCRC = crc32.MakeTable(crc32.Castagnoli)

// DirObjectName returns the object name for directory ino, mirroring
// CephFS's "<ino in hex>.<frag>" naming.
func DirObjectName(ino Ino) string {
	return fmt.Sprintf("%x.00000000", uint64(ino))
}

// DirEntry is one serialized dentry of a directory object.
type DirEntry struct {
	Name  string
	Ino   Ino
	Type  FileType
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Mtime int64
}

// DirObject is the decoded form of a directory object: the directory's own
// inode attributes plus its dentries.
type DirObject struct {
	Ino     Ino
	Parent  Ino
	Name    string
	Mode    uint32
	Entries []DirEntry
}

func putUvar(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func putStr(b []byte, s string) []byte {
	b = putUvar(b, uint64(len(s)))
	return append(b, s...)
}

// EncodeDir serializes directory ino and its dentries from the store.
func (s *Store) EncodeDir(ino Ino) ([]byte, error) {
	dir, err := s.Get(ino)
	if err != nil {
		return nil, err
	}
	if !dir.IsDir() {
		return nil, fmt.Errorf("encode dir %d: %w", ino, ErrNotDir)
	}
	body := make([]byte, 0, 64+32*len(dir.children))
	body = putUvar(body, uint64(dir.Ino))
	body = putUvar(body, uint64(dir.Parent))
	body = putStr(body, dir.Name)
	body = putUvar(body, uint64(dir.Mode))
	names, _ := s.ReadDir(ino)
	body = putUvar(body, uint64(len(names)))
	for _, name := range names {
		child, err := s.Get(dir.children[name])
		if err != nil {
			return nil, err
		}
		body = putStr(body, name)
		body = putUvar(body, uint64(child.Ino))
		body = append(body, byte(child.Type))
		body = putUvar(body, uint64(child.Mode))
		body = putUvar(body, uint64(child.UID))
		body = putUvar(body, uint64(child.GID))
		body = putUvar(body, child.Size)
		body = putUvar(body, uint64(child.Mtime))
	}
	out := make([]byte, 0, len(dirMagic)+len(body)+4)
	out = append(out, dirMagic...)
	out = append(out, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, dirCRC))
	return append(out, crc[:]...), nil
}

type dirReader struct {
	buf []byte
	off int
}

func (r *dirReader) uvar() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("decode dir: %w", ErrInval)
	}
	r.off += n
	return v, nil
}

func (r *dirReader) str() (string, error) {
	n, err := r.uvar()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.buf) {
		return "", fmt.Errorf("decode dir: truncated string: %w", ErrInval)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// DecodeDir parses a directory object produced by EncodeDir.
func DecodeDir(data []byte) (*DirObject, error) {
	if len(data) < len(dirMagic)+4 {
		return nil, fmt.Errorf("decode dir: short object: %w", ErrInval)
	}
	if string(data[:len(dirMagic)]) != dirMagic {
		return nil, fmt.Errorf("decode dir: bad magic: %w", ErrInval)
	}
	body := data[len(dirMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, dirCRC) != want {
		return nil, fmt.Errorf("decode dir: checksum mismatch: %w", ErrInval)
	}
	r := &dirReader{buf: body}
	var d DirObject
	v, err := r.uvar()
	if err != nil {
		return nil, err
	}
	d.Ino = Ino(v)
	if v, err = r.uvar(); err != nil {
		return nil, err
	}
	d.Parent = Ino(v)
	if d.Name, err = r.str(); err != nil {
		return nil, err
	}
	if v, err = r.uvar(); err != nil {
		return nil, err
	}
	d.Mode = uint32(v)
	n, err := r.uvar()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var e DirEntry
		if e.Name, err = r.str(); err != nil {
			return nil, err
		}
		if v, err = r.uvar(); err != nil {
			return nil, err
		}
		e.Ino = Ino(v)
		if r.off >= len(r.buf) {
			return nil, fmt.Errorf("decode dir: truncated entry: %w", ErrInval)
		}
		e.Type = FileType(r.buf[r.off])
		r.off++
		if v, err = r.uvar(); err != nil {
			return nil, err
		}
		e.Mode = uint32(v)
		if v, err = r.uvar(); err != nil {
			return nil, err
		}
		e.UID = uint32(v)
		if v, err = r.uvar(); err != nil {
			return nil, err
		}
		e.GID = uint32(v)
		if e.Size, err = r.uvar(); err != nil {
			return nil, err
		}
		if v, err = r.uvar(); err != nil {
			return nil, err
		}
		e.Mtime = int64(v)
		d.Entries = append(d.Entries, e)
	}
	return &d, nil
}

// InstallDir materializes a decoded directory object into the store,
// replacing the directory's current dentries. Missing parent directories
// cause ErrNotExist; callers load objects root-first.
func (s *Store) InstallDir(d *DirObject) error {
	dir, err := s.Get(d.Ino)
	if err != nil {
		// The directory itself may need materializing (recovery from
		// an empty store).
		if d.Ino == RootIno {
			return err
		}
		parent, perr := s.Get(d.Parent)
		if perr != nil {
			return perr
		}
		if !parent.IsDir() {
			return fmt.Errorf("install dir %d: %w", d.Ino, ErrNotDir)
		}
		dir = &Inode{
			Ino: d.Ino, Parent: d.Parent, Name: d.Name,
			Type: TypeDir, Mode: d.Mode,
			children: make(map[string]Ino),
		}
		s.insertChild(parent, dir)
	}
	// Drop stale file dentries, keep subdirectory dentries that still
	// appear, then install the decoded entries.
	incoming := make(map[string]DirEntry, len(d.Entries))
	for _, e := range d.Entries {
		incoming[e.Name] = e
	}
	for name, ci := range dir.children {
		if _, ok := incoming[name]; !ok {
			child, _ := s.Get(ci)
			if child != nil && child.IsDir() {
				continue // directory contents live in their own object
			}
			delete(dir.children, name)
			delete(s.inodes, ci)
		}
	}
	for _, e := range d.Entries {
		if existing, ok := dir.children[e.Name]; ok {
			in, _ := s.Get(existing)
			if in != nil {
				in.Mode, in.UID, in.GID, in.Size, in.Mtime = e.Mode, e.UID, e.GID, e.Size, e.Mtime
			}
			continue
		}
		in := &Inode{
			Ino: e.Ino, Parent: d.Ino, Name: e.Name, Type: e.Type,
			Mode: e.Mode, UID: e.UID, GID: e.GID, Size: e.Size, Mtime: e.Mtime,
		}
		if e.Type == TypeDir {
			in.children = make(map[string]Ino)
		}
		s.insertChild(dir, in)
	}
	s.version++
	return nil
}

// Dirs returns the inode numbers of every directory, root first then
// breadth-first sorted, the order in which directory objects must be
// loaded during recovery.
func (s *Store) Dirs() []Ino {
	var out []Ino
	queue := []Ino{RootIno}
	for len(queue) > 0 {
		ino := queue[0]
		queue = queue[1:]
		out = append(out, ino)
		dir, err := s.Get(ino)
		if err != nil {
			continue
		}
		var subdirs []Ino
		for _, ci := range dir.children {
			if child, _ := s.Get(ci); child != nil && child.IsDir() {
				subdirs = append(subdirs, ci)
			}
		}
		sort.Slice(subdirs, func(i, j int) bool { return subdirs[i] < subdirs[j] })
		queue = append(queue, subdirs...)
	}
	return out
}

// Equal reports whether two stores describe the same namespace: the same
// paths with the same types and attributes (inode numbers may differ, as
// they do between an RPC namespace and a merged decoupled namespace).
func Equal(a, b *Store) bool {
	type node struct {
		typ  FileType
		mode uint32
		size uint64
	}
	collect := func(s *Store) (map[string]node, error) {
		m := make(map[string]node)
		err := s.Walk(RootIno, func(p string, in *Inode) error {
			m[p] = node{typ: in.Type, mode: in.Mode, size: in.Size}
			return nil
		})
		return m, err
	}
	ma, errA := collect(a)
	mb, errB := collect(b)
	if errA != nil || errB != nil || len(ma) != len(mb) {
		return false
	}
	for p, na := range ma {
		if nb, ok := mb[p]; !ok || na != nb {
			return false
		}
	}
	return true
}
