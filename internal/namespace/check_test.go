package namespace

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cudele/internal/journal"
)

func TestCheckHealthyStore(t *testing.T) {
	s := buildSample(t)
	if problems := s.Check(); len(problems) != 0 {
		t.Fatalf("healthy store reported %v", problems)
	}
	s.MustHealthy() // must not panic
}

func countKind(problems []Problem, kind string) int {
	n := 0
	for _, p := range problems {
		if p.Kind == kind {
			n++
		}
	}
	return n
}

func TestCheckOrphan(t *testing.T) {
	s := buildSample(t)
	// Inject an inode with no dentry.
	s.inodes[999] = &Inode{Ino: 999, Parent: RootIno, Name: "ghost", Type: TypeFile}
	problems := s.Check()
	if countKind(problems, "orphan-inode") != 1 {
		t.Fatalf("problems = %v", problems)
	}
	actions := s.Repair()
	if len(actions) != 1 || !strings.Contains(actions[0], "lost+found") {
		t.Fatalf("actions = %v", actions)
	}
	if _, err := s.Resolve("/lost+found/ino-999"); err != nil {
		t.Fatalf("orphan not rescued: %v", err)
	}
	s.MustHealthy()
}

func TestCheckDanglingDentry(t *testing.T) {
	s := buildSample(t)
	root := s.Root()
	root.children["phantom"] = 777 // no such inode
	problems := s.Check()
	if countKind(problems, "dangling-dentry") != 1 {
		t.Fatalf("problems = %v", problems)
	}
	s.Repair()
	s.MustHealthy()
	if _, ok := root.children["phantom"]; ok {
		t.Fatal("dangling dentry survived repair")
	}
}

func TestCheckBadParentAndName(t *testing.T) {
	s := buildSample(t)
	in, _ := s.Resolve("/proj/README")
	in.Parent = RootIno   // lies about its parent
	in.Name = "WRONGNAME" // lies about its name
	problems := s.Check()
	if countKind(problems, "bad-parent") != 1 || countKind(problems, "bad-name") != 1 {
		t.Fatalf("problems = %v", problems)
	}
	s.Repair()
	s.MustHealthy()
	proj, _ := s.Resolve("/proj")
	if in.Parent != proj.Ino || in.Name != "README" {
		t.Fatalf("repair wrote %d/%q", in.Parent, in.Name)
	}
}

func TestCheckFileWithChildren(t *testing.T) {
	s := buildSample(t)
	in, _ := s.Resolve("/proj/README")
	in.children = map[string]Ino{"impossible": 5}
	problems := s.Check()
	if countKind(problems, "file-children") != 1 {
		t.Fatalf("problems = %v", problems)
	}
	s.Repair()
	s.MustHealthy()
}

func TestCheckDupIno(t *testing.T) {
	s := buildSample(t)
	// Two dentries referencing the same inode.
	f, _ := s.Resolve("/proj/README")
	root := s.Root()
	root.children["hardlinkish"] = f.Ino
	problems := s.Check()
	if countKind(problems, "dup-ino") != 1 {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCheckReservedOverlap(t *testing.T) {
	s := NewStore()
	s.ReserveRange(100, 50)
	s.ReserveRange(120, 50) // overlaps
	s.ReserveRange(500, 10) // fine
	problems := s.Check()
	if countKind(problems, "reserved-overlap") != 1 {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCheckNoRoot(t *testing.T) {
	s := NewStore()
	delete(s.inodes, RootIno)
	problems := s.Check()
	if len(problems) != 1 || problems[0].Kind != "no-root" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestMustHealthyPanics(t *testing.T) {
	s := buildSample(t)
	s.inodes[999] = &Inode{Ino: 999, Name: "ghost", Type: TypeFile}
	defer func() {
		if recover() == nil {
			t.Fatal("MustHealthy did not panic on unhealthy store")
		}
	}()
	s.MustHealthy()
}

func TestProblemString(t *testing.T) {
	p := Problem{Kind: "orphan-inode", Ino: 7, Path: "/x", Info: "hi"}
	if !strings.Contains(p.String(), "orphan-inode") {
		t.Fatalf("string = %q", p.String())
	}
}

// Property: any namespace produced by replaying a random valid journal is
// healthy.
func TestReplayedStoresHealthyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		j := journal.New(4096)
		dirs := []Ino{RootIno}
		nextIno := uint64(5000)
		for op := 0; op < 150; op++ {
			parent := dirs[rng.Intn(len(dirs))]
			nextIno++
			switch rng.Intn(3) {
			case 0:
				j.Append(&journal.Event{Type: journal.EvMkdir,
					Parent: uint64(parent), Name: nameFor(op), Ino: nextIno, Mode: 0755})
				dirs = append(dirs, Ino(nextIno))
			default:
				j.Append(&journal.Event{Type: journal.EvCreate,
					Parent: uint64(parent), Name: nameFor(op), Ino: nextIno, Mode: 0644})
			}
		}
		if _, err := journal.Replay(j.Events(), s); err != nil {
			return false
		}
		return len(s.Check()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func nameFor(op int) string {
	return fmt.Sprintf("n%03d", op)
}
