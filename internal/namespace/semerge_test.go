package namespace

import (
	"fmt"
	"math/rand"
	"testing"

	"cudele/internal/journal"
)

// permutations returns every ordering of 0..n-1.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for at := 0; at <= len(sub); at++ {
			p := make([]int, 0, n)
			p = append(p, sub[:at]...)
			p = append(p, n-1)
			p = append(p, sub[at:]...)
			out = append(out, p)
		}
	}
	return out
}

// mergeAll replays the given client journals, in the given order, into a
// fresh store and returns the rendered image.
func mergeAll(t *testing.T, journals [][]*journal.Event, order []int) string {
	t.Helper()
	st := NewStore()
	m := NewSEMerger(st)
	for _, ci := range order {
		for _, ev := range journals[ci] {
			if err := m.ApplyEvent(ev); err != nil {
				t.Fatalf("order %v client %d apply %v: %v", order, ci, ev, err)
			}
		}
	}
	img, err := SEImageOf(st, RootIno)
	if err != nil {
		t.Fatalf("image: %v", err)
	}
	return img
}

// assertConverges merges the journals in every permutation and asserts
// all orders render the same image, which it returns.
func assertConverges(t *testing.T, journals [][]*journal.Event) string {
	t.Helper()
	perms := permutations(len(journals))
	want := mergeAll(t, journals, perms[0])
	for _, p := range perms[1:] {
		if got := mergeAll(t, journals, p); got != want {
			t.Fatalf("merge order %v diverges from %v:\n--- want ---\n%s--- got ---\n%s",
				p, perms[0], want, got)
		}
	}
	return want
}

func TestSEMergeFileRaceLatestWins(t *testing.T) {
	journals := [][]*journal.Event{
		{{Type: journal.EvCreate, Seq: 0, Client: "client.a", Parent: 1, Name: "x", Ino: 100, Mode: 0644, Mtime: 10}},
		{{Type: journal.EvCreate, Seq: 0, Client: "client.b", Parent: 1, Name: "x", Ino: 200, Mode: 0600, Mtime: 20}},
	}
	img := assertConverges(t, journals)
	want := "//\n/x ino=200 mode=600 uid=0 gid=0 mtime=20\n"
	if img != want {
		t.Fatalf("image = %q, want %q", img, want)
	}
}

func TestSEMergeTimestampTieBreaksByClient(t *testing.T) {
	journals := [][]*journal.Event{
		{{Type: journal.EvCreate, Seq: 0, Client: "client.a", Parent: 1, Name: "x", Ino: 100, Mtime: 10}},
		{{Type: journal.EvCreate, Seq: 0, Client: "client.b", Parent: 1, Name: "x", Ino: 200, Mtime: 10}},
	}
	img := assertConverges(t, journals)
	// Equal Mtime: lexicographically larger client id wins.
	if want := "//\n/x ino=200 mode=0 uid=0 gid=0 mtime=10\n"; img != want {
		t.Fatalf("image = %q, want %q", img, want)
	}
}

func TestSEMergeUnlinkCreateRace(t *testing.T) {
	// client.a creates x@10 then unlinks it @30; client.b re-creates x@20.
	// The unlink is latest, so x is absent in every order.
	journals := [][]*journal.Event{
		{
			{Type: journal.EvCreate, Seq: 0, Client: "client.a", Parent: 1, Name: "x", Ino: 100, Mtime: 10},
			{Type: journal.EvUnlink, Seq: 1, Client: "client.a", Parent: 1, Name: "x", Mtime: 30},
		},
		{{Type: journal.EvCreate, Seq: 0, Client: "client.b", Parent: 1, Name: "x", Ino: 200, Mtime: 20}},
	}
	if img := assertConverges(t, journals); img != "//\n" {
		t.Fatalf("image = %q, want bare root", img)
	}
	// Flip the timestamps: the create is latest and must survive the
	// tombstone in every order.
	journals[1][0].Mtime = 40
	img := assertConverges(t, journals)
	if want := "//\n/x ino=200 mode=0 uid=0 gid=0 mtime=40\n"; img != want {
		t.Fatalf("image = %q, want %q", img, want)
	}
}

func TestSEMergeDirsMergeStructurally(t *testing.T) {
	// Both clients mkdir /d and populate it; the directory merges and
	// holds the union of children regardless of order.
	journals := [][]*journal.Event{
		{
			{Type: journal.EvMkdir, Seq: 0, Client: "client.a", Parent: 1, Name: "d", Ino: 100, Mtime: 10},
			{Type: journal.EvCreate, Seq: 1, Client: "client.a", Parent: 100, Name: "fa", Ino: 101, Mtime: 11},
		},
		{
			{Type: journal.EvMkdir, Seq: 0, Client: "client.b", Parent: 1, Name: "d", Ino: 200, Mtime: 12},
			{Type: journal.EvCreate, Seq: 1, Client: "client.b", Parent: 200, Name: "fb", Ino: 201, Mtime: 13},
		},
	}
	img := assertConverges(t, journals)
	want := "//\n/d/\n/d/fa ino=101 mode=0 uid=0 gid=0 mtime=11\n/d/fb ino=201 mode=0 uid=0 gid=0 mtime=13\n"
	if img != want {
		t.Fatalf("image = %q, want %q", img, want)
	}
}

func TestSEMergeDirResurrectionKeepsChildren(t *testing.T) {
	// client.a builds /d/fa@10-11. client.b creates a FILE named d@20
	// (beats the dir), client.c re-mkdirs d@30 (beats the file). The
	// surviving state is the resurrected directory with client.a's child
	// — in every one of the 6 merge orders, including those where the
	// subtree is pruned and later revived.
	journals := [][]*journal.Event{
		{
			{Type: journal.EvMkdir, Seq: 0, Client: "client.a", Parent: 1, Name: "d", Ino: 100, Mtime: 10},
			{Type: journal.EvCreate, Seq: 1, Client: "client.a", Parent: 100, Name: "fa", Ino: 101, Mtime: 11},
		},
		{{Type: journal.EvCreate, Seq: 0, Client: "client.b", Parent: 1, Name: "d", Ino: 200, Mtime: 20}},
		{{Type: journal.EvMkdir, Seq: 0, Client: "client.c", Parent: 1, Name: "d", Ino: 300, Mtime: 30}},
	}
	img := assertConverges(t, journals)
	want := "//\n/d/\n/d/fa ino=101 mode=0 uid=0 gid=0 mtime=11\n"
	if img != want {
		t.Fatalf("image = %q, want %q", img, want)
	}
}

func TestSEMergeIdempotent(t *testing.T) {
	evs := []*journal.Event{
		{Type: journal.EvMkdir, Seq: 0, Client: "client.a", Parent: 1, Name: "d", Ino: 100, Mtime: 10},
		{Type: journal.EvCreate, Seq: 1, Client: "client.a", Parent: 100, Name: "f", Ino: 101, Mtime: 11},
		{Type: journal.EvUnlink, Seq: 2, Client: "client.a", Parent: 100, Name: "f", Mtime: 12},
	}
	st := NewStore()
	m := NewSEMerger(st)
	apply := func() {
		for _, ev := range evs {
			if err := m.ApplyEvent(ev); err != nil {
				t.Fatalf("apply %v: %v", ev, err)
			}
		}
	}
	apply()
	once, _ := SEImageOf(st, RootIno)
	apply() // re-merge of the same journal (e.g. recovery re-validation)
	twice, _ := SEImageOf(st, RootIno)
	if once != twice {
		t.Fatalf("re-merge changed the image:\n%s-- vs --\n%s", once, twice)
	}
}

func TestSEMergeRejectsRename(t *testing.T) {
	m := NewSEMerger(NewStore())
	err := m.ApplyEvent(&journal.Event{
		Type: journal.EvRename, Client: "client.a",
		Parent: 1, Name: "a", NewParent: 1, NewName: "b",
	})
	if err == nil {
		t.Fatal("rename accepted in strong-eventual mode")
	}
}

// TestSEMergeConvergesAllPermutations is the property test of the
// strong-eventual contract: up to 4 decoupled clients generate random op
// mixes (creates, flat mkdirs, unlinks, rmdirs, with deliberately
// colliding names), and merging the journals in EVERY permutation must
// render byte-identical images.
func TestSEMergeConvergesAllPermutations(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nClients := 2 + rng.Intn(3) // 2..4
			journals := make([][]*journal.Event, nClients)
			// A small shared name pool forces same-name races; each
			// client also has a private directory it populates.
			names := []string{"a", "b", "c"}
			for ci := 0; ci < nClients; ci++ {
				client := fmt.Sprintf("client.%d", ci)
				base := Ino(1000 * (ci + 1))
				dirIno := base // the client's own dir, mkdir'd first
				evs := []*journal.Event{{
					Type: journal.EvMkdir, Seq: 0, Client: client,
					Parent: 1, Name: names[rng.Intn(len(names))],
					Ino: uint64(dirIno), Mtime: int64(rng.Intn(100)),
				}}
				nOps := 3 + rng.Intn(6)
				for op := 1; op <= nOps; op++ {
					parent := Ino(1)
					if rng.Intn(2) == 0 {
						parent = dirIno
					}
					ev := &journal.Event{
						Seq: uint64(op), Client: client,
						Parent: uint64(parent),
						Name:   names[rng.Intn(len(names))],
						Mtime:  int64(rng.Intn(100)),
					}
					switch rng.Intn(5) {
					case 0, 1:
						ev.Type = journal.EvCreate
						ev.Ino = uint64(base) + uint64(op)
						ev.Mode = 0644
					case 2:
						ev.Type = journal.EvMkdir
						ev.Ino = uint64(base) + uint64(op)
						ev.Mode = 0755
					case 3:
						ev.Type = journal.EvUnlink
					case 4:
						ev.Type = journal.EvRmdir
					}
					evs = append(evs, ev)
				}
				journals[ci] = evs
			}
			assertConverges(t, journals)
		})
	}
}
