package namespace

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements namespace consistency checking — the forward scrub
// a production metadata server runs to validate its own structures
// (CephFS's "scrub" / cephfs-data-scan). The Cudele paper leans on
// CephFS's recovery tooling; a reproduction that merges journals from
// decoupled clients needs a way to prove the merged tree is still sound.

// Problem is one inconsistency found by Check.
type Problem struct {
	Kind string // short machine-readable class
	Ino  Ino
	Path string // best-effort path, may be empty for orphans
	Info string
}

func (p Problem) String() string {
	return fmt.Sprintf("%-18s ino=%-6d %-30s %s", p.Kind, p.Ino, p.Path, p.Info)
}

// Check scrubs the store and returns every structural inconsistency:
//
//	orphan-inode      an inode not reachable from the root
//	bad-parent        a child whose Parent field disagrees with the tree
//	bad-name          a child whose Name field disagrees with its dentry
//	dangling-dentry   a dentry pointing at a missing inode
//	dup-ino           an inode reachable through two dentries
//	file-children     a regular file carrying dentries
//	reserved-overlap  overlapping client inode-range grants
//
// A healthy store returns an empty slice.
func (s *Store) Check() []Problem {
	var problems []Problem

	// Walk the tree from the root, validating dentries.
	reachable := make(map[Ino]bool, len(s.inodes))
	var walk func(dir *Inode, path string)
	walk = func(dir *Inode, path string) {
		if reachable[dir.Ino] {
			problems = append(problems, Problem{
				Kind: "dup-ino", Ino: dir.Ino, Path: path,
				Info: "inode reachable through multiple dentries",
			})
			return
		}
		reachable[dir.Ino] = true
		if !dir.IsDir() {
			if len(dir.children) > 0 {
				problems = append(problems, Problem{
					Kind: "file-children", Ino: dir.Ino, Path: path,
					Info: fmt.Sprintf("regular file with %d dentries", len(dir.children)),
				})
			}
			return
		}
		names := make([]string, 0, len(dir.children))
		for name := range dir.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ci := dir.children[name]
			childPath := path + "/" + name
			if path == "/" {
				childPath = "/" + name
			}
			child, ok := s.inodes[ci]
			if !ok {
				problems = append(problems, Problem{
					Kind: "dangling-dentry", Ino: ci, Path: childPath,
					Info: "dentry references missing inode",
				})
				continue
			}
			if child.Parent != dir.Ino {
				problems = append(problems, Problem{
					Kind: "bad-parent", Ino: ci, Path: childPath,
					Info: fmt.Sprintf("inode says parent=%d, dentry in %d", child.Parent, dir.Ino),
				})
			}
			if child.Name != name {
				problems = append(problems, Problem{
					Kind: "bad-name", Ino: ci, Path: childPath,
					Info: fmt.Sprintf("inode says name=%q, dentry says %q", child.Name, name),
				})
			}
			walk(child, childPath)
		}
	}
	root, ok := s.inodes[RootIno]
	if !ok {
		return []Problem{{Kind: "no-root", Ino: RootIno, Info: "store has no root inode"}}
	}
	walk(root, "/")

	// Anything not reached is orphaned.
	var orphans []Ino
	for ino := range s.inodes {
		if !reachable[ino] {
			orphans = append(orphans, ino)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, ino := range orphans {
		problems = append(problems, Problem{
			Kind: "orphan-inode", Ino: ino,
			Info: fmt.Sprintf("name=%q parent=%d not reachable from root", s.inodes[ino].Name, s.inodes[ino].Parent),
		})
	}

	// Overlapping inode grants would let two decoupled clients mint the
	// same inode numbers.
	ranges := append([]inoRange(nil), s.reserved...)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	for i := 1; i < len(ranges); i++ {
		if ranges[i].lo < ranges[i-1].hi {
			problems = append(problems, Problem{
				Kind: "reserved-overlap", Ino: ranges[i].lo,
				Info: fmt.Sprintf("grant [%d,%d) overlaps [%d,%d)",
					ranges[i].lo, ranges[i].hi, ranges[i-1].lo, ranges[i-1].hi),
			})
		}
	}
	return problems
}

// MustHealthy panics if the store has inconsistencies; tests and
// assertions use it after merges.
func (s *Store) MustHealthy() {
	if problems := s.Check(); len(problems) > 0 {
		lines := make([]string, len(problems))
		for i, p := range problems {
			lines[i] = p.String()
		}
		panic("namespace: unhealthy store:\n" + strings.Join(lines, "\n"))
	}
}

// Repair fixes the problems Check can fix mechanically and returns what it
// did:
//
//   - orphan inodes are re-linked under /lost+found (created on demand)
//   - bad-parent and bad-name inodes are rewritten to match their dentry
//   - dangling dentries are removed
//   - file-children maps are cleared
//
// Overlapping grants are reported but not repaired (they need operator
// policy). Repair returns the actions taken, in order.
func (s *Store) Repair() []string {
	var actions []string
	problems := s.Check()

	// Fix direction: dentries are authoritative (they are what paths
	// resolve through).
	for _, p := range problems {
		switch p.Kind {
		case "bad-parent", "bad-name":
			in := s.inodes[p.Ino]
			if in == nil {
				continue
			}
			// Find the dentry that references it along the reported
			// path.
			parts := SplitPath(p.Path)
			if len(parts) == 0 {
				continue
			}
			parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
			parent, err := s.Resolve(parentPath)
			if err != nil {
				continue
			}
			in.Parent = parent.Ino
			in.Name = parts[len(parts)-1]
			actions = append(actions, fmt.Sprintf("relinked ino %d as %s", p.Ino, p.Path))
		case "dangling-dentry":
			parts := SplitPath(p.Path)
			if len(parts) == 0 {
				continue
			}
			parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
			parent, err := s.Resolve(parentPath)
			if err != nil {
				continue
			}
			delete(parent.children, parts[len(parts)-1])
			actions = append(actions, fmt.Sprintf("removed dangling dentry %s", p.Path))
		case "file-children":
			in := s.inodes[p.Ino]
			if in != nil {
				in.children = nil
				actions = append(actions, fmt.Sprintf("cleared dentries on file ino %d", p.Ino))
			}
		}
	}

	// Orphans last, so re-parenting above can rescue some first.
	for _, p := range s.Check() {
		if p.Kind != "orphan-inode" {
			continue
		}
		in := s.inodes[p.Ino]
		if in == nil {
			continue
		}
		lost, err := s.Resolve("/lost+found")
		if err != nil {
			lost, err = s.Mkdir(RootIno, "lost+found", CreateAttrs{Mode: 0700})
			if err != nil {
				continue
			}
		}
		name := fmt.Sprintf("ino-%d", p.Ino)
		if _, exists := lost.children[name]; exists {
			continue
		}
		in.Parent = lost.Ino
		in.Name = name
		if lost.children == nil {
			lost.children = make(map[string]Ino)
		}
		lost.children[name] = in.Ino
		actions = append(actions, fmt.Sprintf("moved orphan ino %d to /lost+found/%s", p.Ino, name))
	}
	s.version++
	return actions
}
