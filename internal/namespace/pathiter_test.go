package namespace

import (
	"fmt"
	"testing"
)

// collect drains an iterator into a slice for comparison with SplitPath.
func collect(p string) []string {
	var out []string
	for it := SplitIter(p); ; {
		comp, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, comp)
	}
}

// TestSplitIterMatchesSplitPath: the iterator must agree with SplitPath
// on every input shape, clean or not.
func TestSplitIterMatchesSplitPath(t *testing.T) {
	cases := []string{
		"/", "", "/a", "/a/b/c", "a/b", "/a/", "//a//b", "/a/./b",
		"/a/../b", "/..", "/.", "a", "/home/alice/job0", "/a//",
		"/very/deep/path/with/many/components/inside",
	}
	for _, p := range cases {
		want := SplitPath(p)
		got := collect(p)
		if len(got) != len(want) {
			t.Errorf("SplitIter(%q) = %v, SplitPath = %v", p, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitIter(%q)[%d] = %q, want %q", p, i, got[i], want[i])
			}
		}
	}
}

func TestIsCleanPath(t *testing.T) {
	clean := []string{"/", "/a", "/a/b", "/a.b/c..d", "/...", "/a/...b"}
	unclean := []string{"", "a", "/a/", "//", "/a//b", "/./a", "/a/..", "/..", "/."}
	for _, p := range clean {
		if !isCleanPath(p) {
			t.Errorf("isCleanPath(%q) = false, want true", p)
		}
	}
	for _, p := range unclean {
		if isCleanPath(p) {
			t.Errorf("isCleanPath(%q) = true, want false", p)
		}
	}
}

// TestResolveAllocFree pins the hot-path property: resolving an existing
// clean path must not allocate (the seed paid a strings.Split per call).
func TestResolveAllocFree(t *testing.T) {
	s := NewStore()
	if _, err := s.MkdirAll("/home/alice/job0", CreateAttrs{Mode: 0755}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := s.Resolve("/home/alice/job0"); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Resolve of a clean path allocates %.1f times, want 0", avg)
	}
}

// BenchmarkResolve measures the path-resolution hot path used by every
// routed request.
func BenchmarkResolve(b *testing.B) {
	s := NewStore()
	for i := 0; i < 16; i++ {
		if _, err := s.MkdirAll(fmt.Sprintf("/home/client%d/job", i), CreateAttrs{Mode: 0755}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Resolve("/home/client7/job"); err != nil {
			b.Fatal(err)
		}
	}
}
