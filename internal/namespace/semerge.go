// Strong-eventual namespace merging (the ConsStrongEventual cell, beyond
// the paper's Table I).
//
// An SEMerger turns Store into a state-based CRDT: every merged journal
// event max-merges into a per-dentry summary (latest file create, latest
// directory create, latest tombstone — each a join-semilattice under the
// SETag order), and the store is re-rendered from the summaries after each
// update. Because the summaries only grow by commutative, associative,
// idempotent joins, merging client journals in ANY order converges to the
// same rendered namespace — the obligation of Verifying Strong Eventual
// Consistency (arXiv 1707.01747), asserted end-to-end by the chaos
// harness's merge-order permutation schedules.
//
// Conflict resolution rules:
//
//   - Same-name races resolve by SETag: (Mtime, Client, Seq), latest
//     wins; ties on Mtime break by lexicographically larger client id,
//     then by per-client sequence number.
//   - Directory identity is structural: two mkdirs of the same path merge
//     into one directory holding the union of both children. A rendered
//     directory's inode number is therefore not part of the converged
//     image (SEImageOf renders directories path-only); file inodes are
//     client-assigned from disjoint grants and do converge.
//   - A file create beats a directory create only with a strictly later
//     tag (equal tags prefer the directory); a tombstone removes the
//     winning entry unless the entry's tag is strictly later.
//   - A removed directory's children stay in the summaries, so a later
//     (higher-tag) re-mkdir resurrects the surviving children in every
//     merge order.
//
// Renames and setattrs are not supported in strong-eventual mode: a
// rename is not commutative as a single event, so clients must decompose
// it into unlink+create halves, which then resolve by the ordinary
// tie-break.
package namespace

import (
	"fmt"
	"sort"
	"strings"

	"cudele/internal/journal"
)

// SETag totally orders strong-eventual updates. Later Mtime wins; ties
// break by Client then Seq so the order is total and deterministic.
type SETag struct {
	Mtime  int64
	Client string
	Seq    uint64
}

// After reports whether t is strictly later than o in the tie-break order.
func (t SETag) After(o SETag) bool {
	if t.Mtime != o.Mtime {
		return t.Mtime > o.Mtime
	}
	if t.Client != o.Client {
		return t.Client > o.Client
	}
	return t.Seq > o.Seq
}

// seFile is the payload of the winning file create for a dentry.
type seFile struct {
	ino   Ino
	mode  uint32
	uid   uint32
	gid   uint32
	mtime int64
}

// seEntry is the CRDT summary for one dentry path. Each component only
// ever max-merges, so applying the same events in any order or any number
// of times yields the same summary.
type seEntry struct {
	hasFile bool
	fileTag SETag
	file    seFile

	hasDir bool
	dirTag SETag

	hasTomb bool
	tombTag SETag
}

type seKind uint8

const (
	seAbsent seKind = iota
	seIsFile
	seIsDir
)

// decide resolves the summary to the rendered state of the dentry.
func (e *seEntry) decide() seKind {
	best := SETag{}
	kind := seAbsent
	if e.hasDir {
		best, kind = e.dirTag, seIsDir
	}
	if e.hasFile && (kind == seAbsent || e.fileTag.After(best)) {
		best, kind = e.fileTag, seIsFile
	}
	if kind == seAbsent {
		return seAbsent
	}
	if e.hasTomb && !best.After(e.tombTag) {
		return seAbsent
	}
	return kind
}

// SEMerger merges decoupled client journals into a Store with
// strong-eventual (commutative, convergent) semantics.
type SEMerger struct {
	store *Store

	// entries maps a dentry's absolute path to its CRDT summary. Paths
	// are stable identities here because renames are unsupported.
	entries map[string]*seEntry

	// children maps a directory path to the set of child names ever
	// summarized under it, so a resurrected directory can re-render its
	// surviving children.
	children map[string]map[string]bool

	// paths maps every inode seen (store directories at construction,
	// plus each merged mkdir's inode, winner or loser) to its logical
	// dentry path, so later events can name it as a parent.
	paths map[Ino]string
}

// NewSEMerger wraps st for strong-eventual merging. Directories already
// in the store are registered so merged events can reference them as
// parents.
func NewSEMerger(st *Store) *SEMerger {
	m := &SEMerger{
		store:    st,
		entries:  make(map[string]*seEntry),
		children: make(map[string]map[string]bool),
		paths:    make(map[Ino]string),
	}
	st.Walk(RootIno, func(p string, in *Inode) error {
		if in.IsDir() {
			m.paths[in.Ino] = p
		}
		return nil
	})
	return m
}

func seJoin(parent, name string) string {
	if parent == "/" {
		return "/" + name
	}
	return parent + "/" + name
}

func seSplit(key string) (parent, name string) {
	i := strings.LastIndexByte(key, '/')
	parent, name = key[:i], key[i+1:]
	if parent == "" {
		parent = "/"
	}
	return parent, name
}

// parentPath resolves an event's parent inode to its logical path,
// falling back to the store for directories that appeared after the
// merger was built (e.g. a subtree root decoupled later).
func (m *SEMerger) parentPath(ino Ino) (string, bool) {
	if p, ok := m.paths[ino]; ok {
		return p, true
	}
	in, err := m.store.Get(ino)
	if err != nil || !in.IsDir() {
		return "", false
	}
	p, err := m.store.PathOf(ino)
	if err != nil {
		return "", false
	}
	m.paths[ino] = p
	return p, true
}

func (m *SEMerger) entry(key string) *seEntry {
	e := m.entries[key]
	if e == nil {
		e = &seEntry{}
		m.entries[key] = e
	}
	return e
}

func (m *SEMerger) link(parent, name string) {
	set := m.children[parent]
	if set == nil {
		set = make(map[string]bool)
		m.children[parent] = set
	}
	set[name] = true
}

// ApplyEvent merges one journal event. It implements journal.Target, so the
// MDS's converge_apply mechanism reuses the ordinary replay loop. Events
// that lose their tie-break are absorbed silently (that IS the merge);
// only structurally impossible events (unknown parent inode, renames,
// setattrs) error.
func (m *SEMerger) ApplyEvent(ev *journal.Event) error {
	switch ev.Type {
	case journal.EvCreate, journal.EvMkdir:
		pp, ok := m.parentPath(Ino(ev.Parent))
		if !ok {
			return fmt.Errorf("converge %s %q: parent inode %d never seen: %w",
				ev.Type, ev.Name, ev.Parent, ErrNotExist)
		}
		key := seJoin(pp, ev.Name)
		tag := SETag{Mtime: ev.Mtime, Client: ev.Client, Seq: ev.Seq}
		e := m.entry(key)
		if ev.Type == journal.EvMkdir {
			if ev.Ino != 0 {
				m.paths[Ino(ev.Ino)] = key
			}
			if !e.hasDir || tag.After(e.dirTag) {
				e.hasDir, e.dirTag = true, tag
			}
		} else {
			if ev.Ino == 0 {
				return fmt.Errorf("converge create %q: %w: strong-eventual creates need a client-assigned inode",
					ev.Name, ErrInval)
			}
			if !e.hasFile || tag.After(e.fileTag) {
				e.hasFile, e.fileTag = true, tag
				e.file = seFile{ino: Ino(ev.Ino), mode: ev.Mode, uid: ev.UID, gid: ev.GID, mtime: ev.Mtime}
			}
		}
		m.link(pp, ev.Name)
		return m.materialize(key)
	case journal.EvUnlink, journal.EvRmdir:
		pp, ok := m.parentPath(Ino(ev.Parent))
		if !ok {
			return fmt.Errorf("converge %s %q: parent inode %d never seen: %w",
				ev.Type, ev.Name, ev.Parent, ErrNotExist)
		}
		key := seJoin(pp, ev.Name)
		tag := SETag{Mtime: ev.Mtime, Client: ev.Client, Seq: ev.Seq}
		e := m.entry(key)
		if !e.hasTomb || tag.After(e.tombTag) {
			e.hasTomb, e.tombTag = true, tag
		}
		m.link(pp, ev.Name)
		return m.materialize(key)
	case journal.EvAllocRange:
		return m.store.ReserveRange(Ino(ev.Ino), ev.Size)
	case journal.EvExport, journal.EvUndo:
		return nil
	}
	return fmt.Errorf("converge %v: %w: unsupported in strong-eventual mode (decompose into unlink+create)",
		ev.Type, ErrInval)
}

var _ journal.Target = (*SEMerger)(nil)

// materialize reconciles the store with the summary at key. If the
// parent directory is not currently rendered, nothing happens now; the
// parent's own materialization recurses into its children when it
// (re)appears.
func (m *SEMerger) materialize(key string) error {
	e := m.entries[key]
	if e == nil {
		return nil
	}
	pp, name := seSplit(key)
	pin, err := m.store.Resolve(pp)
	if err != nil || !pin.IsDir() {
		return nil
	}
	cur, _ := m.store.Lookup(pin.Ino, name)
	switch e.decide() {
	case seAbsent:
		if cur == nil {
			return nil
		}
		return m.removeRendered(key, cur, pin.Ino, name)
	case seIsFile:
		if cur != nil {
			if !cur.IsDir() && cur.Ino == e.file.ino {
				return nil // already the winning create
			}
			if err := m.removeRendered(key, cur, pin.Ino, name); err != nil {
				return err
			}
		}
		_, err := m.store.Create(pin.Ino, name, CreateAttrs{
			Ino: e.file.ino, Mode: e.file.mode, UID: e.file.uid,
			GID: e.file.gid, Mtime: e.file.mtime,
		})
		return err
	case seIsDir:
		if cur != nil && cur.IsDir() {
			return nil // structural merge: keep the rendered directory
		}
		if cur != nil {
			if err := m.removeRendered(key, cur, pin.Ino, name); err != nil {
				return err
			}
		}
		// Directory inodes are rendered with server-assigned numbers:
		// the directory's identity is its path, not its inode.
		if _, err := m.store.Mkdir(pin.Ino, name, CreateAttrs{Mode: 0755}); err != nil {
			return err
		}
		// Resurrect surviving children, in sorted order so the store's
		// mutation sequence stays deterministic.
		names := make([]string, 0, len(m.children[key]))
		for cn := range m.children[key] {
			names = append(names, cn)
		}
		sort.Strings(names)
		for _, cn := range names {
			if err := m.materialize(seJoin(key, cn)); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// removeRendered drops the currently rendered entry at key from the
// store. Summaries are never dropped, so a pruned subtree can be
// resurrected by a later winning mkdir in any merge order.
func (m *SEMerger) removeRendered(key string, cur *Inode, parent Ino, name string) error {
	if !cur.IsDir() {
		return m.store.Unlink(parent, name)
	}
	_, err := m.store.PruneSubtree(key)
	return err
}

// SEImageOf renders the subtree at root as a canonical text image for
// convergence checks: one line per inode in depth-first sorted order,
// directories path-only (their inode numbers are not part of the
// converged state), files with their client-assigned inode and
// attributes. Two stores merged from any permutations of the same client
// journals must render byte-identical images.
func SEImageOf(st *Store, root Ino) (string, error) {
	var b strings.Builder
	err := st.Walk(root, func(p string, in *Inode) error {
		if in.IsDir() {
			fmt.Fprintf(&b, "%s/\n", p)
		} else {
			fmt.Fprintf(&b, "%s ino=%d mode=%o uid=%d gid=%d mtime=%d\n",
				p, in.Ino, in.Mode, in.UID, in.GID, in.Mtime)
		}
		return nil
	})
	return b.String(), err
}
