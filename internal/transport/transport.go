// Package transport is the metadata RPC fabric: a message-based endpoint
// abstraction over the simulated network, a composable interceptor chain
// for cross-cutting server concerns (admission, accounting, journaling,
// interference checks), and a routing layer that maps namespace paths to
// metadata ranks.
//
// Clients never hold a concrete server; they talk to an Endpoint. A
// single-rank deployment wires the client straight to one server's Wire;
// a multi-rank deployment interposes a Router that picks the owning rank
// from a replicated placement Table.
package transport

import (
	"sync/atomic"

	"cudele/internal/runtime"
)

// Handler processes one message inside the caller's simulation process
// and returns the reply. Handlers and interceptors charge their own
// virtual time (CPU, disk, queueing); the wire charges network time.
type Handler func(p runtime.Task, msg any) any

// Interceptor wraps a Handler with a cross-cutting concern. The
// interceptor decides whether to invoke next and may rewrite the reply.
type Interceptor func(next Handler) Handler

// Chain composes interceptors around a terminal handler. The first
// interceptor is outermost: Chain(h, a, b) runs a(b(h)).
func Chain(h Handler, interceptors ...Interceptor) Handler {
	for i := len(interceptors) - 1; i >= 0; i-- {
		h = interceptors[i](h)
	}
	return h
}

// Tracing returns an interceptor that records one span per message on
// the engine's trace recorder, on the track named proc (the endpoint,
// e.g. "mds.0"). label names the span from the message and is only
// invoked when tracing is enabled, so the disabled path costs one nil
// check and allocates nothing. Placed outermost around an endpoint's
// dispatcher it spans every RPC and Post without touching op handlers.
func Tracing(proc string, label func(msg any) string) Interceptor {
	return func(next Handler) Handler {
		return func(p runtime.Task, msg any) any {
			rec := p.Runtime().Tracer()
			if rec == nil {
				return next(p, msg)
			}
			id := rec.Begin(int64(p.Now()), proc, "transport", label(msg))
			reply := next(p, msg)
			rec.End(id, int64(p.Now()))
			return reply
		}
	}
}

// Endpoint is where clients send metadata messages.
type Endpoint interface {
	// Name identifies the endpoint ("mds.0", "mds").
	Name() string
	// Call sends a request and waits for the reply, charging one network
	// hop each way around the handler (the RPCs mechanism).
	Call(p runtime.Task, msg any) any
	// Post hands a message to the endpoint without charging wire
	// latency; the handler manages all timing itself. Bulk transfers
	// (journal merges, decouple control traffic) use Post so their
	// calibrated cost model stays intact.
	Post(p runtime.Task, msg any) any
}

// Wire is the concrete endpoint for one server: a request/reply link
// with symmetric latency. On the simulated backend, Call charges lat of
// virtual time each way and runs the handler inline in the caller's
// process — exactly the pre-seam behavior, so simulated schedules are
// unchanged. On the real backend, Call is an in-process message
// round trip: the handler runs in its own spawned task and the reply
// comes back over a runtime signal (with an optional loopback-TCP
// round trip when the engine has one enabled), so a handler that parks
// mid-request — MergeWait does — never wedges the endpoint.
type Wire struct {
	name string
	lat  runtime.Duration

	// h is the interceptor-wrapped handler. It is an atomic pointer so
	// Wrap — a mutation after construction — is safe against Calls
	// already in flight on the real backend: a concurrent Call sees
	// either the old or the new chain, never a torn one. Install
	// interceptors before serving whenever possible; Wrap itself is not
	// safe to call concurrently with another Wrap.
	h atomic.Pointer[Handler]
}

// NewWire builds an endpoint that charges lat on each direction of a
// Call and runs h in the calling process.
func NewWire(name string, lat runtime.Duration, h Handler) *Wire {
	w := &Wire{name: name, lat: lat}
	w.h.Store(&h)
	return w
}

// Name implements Endpoint.
func (w *Wire) Name() string { return w.name }

// Wrap composes an interceptor around the wire's handler, outermost.
// Chaos harnesses use it to slide a fault interceptor under an already
// constructed endpoint; with no interceptor installed the wire is
// untouched. Prefer installing interceptors before the endpoint starts
// serving; when that is impossible (mid-run fault injection), the swap
// is atomic with respect to concurrent Calls, but concurrent Wrap calls
// must be externally serialized.
func (w *Wire) Wrap(ic Interceptor) {
	h := ic(*w.h.Load())
	w.h.Store(&h)
}

// handler returns the current interceptor chain.
func (w *Wire) handler() Handler { return *w.h.Load() }

// Call implements Endpoint: request on the wire, handler, reply on the
// wire.
func (w *Wire) Call(p runtime.Task, msg any) any {
	rt := p.Runtime()
	if rt.Kind() == runtime.RealKind {
		return w.realCall(p, msg)
	}
	p.Sleep(w.lat)
	reply := w.handler()(p, msg)
	p.Sleep(w.lat)
	return reply
}

// netRoundTripper is implemented by real engines that can put a kernel
// socket round trip on the wire (realrt's loopback-TCP option).
type netRoundTripper interface {
	NetRoundTrip() (bool, error)
}

// realCall is the real backend's Call: deliver the message to a
// handler task, park until the reply signal fires. When the engine has
// loopback TCP enabled, each direction additionally performs one real
// socket round trip (outside the run lock); protocol messages carry
// live pointers and are not serialized — the frame buys real network
// stack latency, not transport of the payload.
func (w *Wire) realCall(p runtime.Task, msg any) any {
	rt := p.Runtime()
	nrt, _ := rt.(netRoundTripper)
	if nrt != nil {
		rt.Blocking(func() { nrt.NetRoundTrip() })
	}
	h := w.handler()
	reply := rt.NewSignal()
	rt.Spawn(w.name+".handle", func(t runtime.Task) {
		reply.Fire(h(t, msg))
	})
	out := reply.Wait(p)
	if nrt != nil {
		rt.Blocking(func() { nrt.NetRoundTrip() })
	}
	return out
}

// Post implements Endpoint: the handler self-charges all costs. It runs
// the handler inline on both backends — on the real one, a handler that
// parks simply parks the posting task, and the run lock is released at
// every park and sleep, so other tasks keep the endpoint moving.
func (w *Wire) Post(p runtime.Task, msg any) any {
	return w.handler()(p, msg)
}
