// Package transport is the metadata RPC fabric: a message-based endpoint
// abstraction over the simulated network, a composable interceptor chain
// for cross-cutting server concerns (admission, accounting, journaling,
// interference checks), and a routing layer that maps namespace paths to
// metadata ranks.
//
// Clients never hold a concrete server; they talk to an Endpoint. A
// single-rank deployment wires the client straight to one server's Wire;
// a multi-rank deployment interposes a Router that picks the owning rank
// from a replicated placement Table.
package transport

import (
	"cudele/internal/sim"
)

// Handler processes one message inside the caller's simulation process
// and returns the reply. Handlers and interceptors charge their own
// virtual time (CPU, disk, queueing); the wire charges network time.
type Handler func(p *sim.Proc, msg any) any

// Interceptor wraps a Handler with a cross-cutting concern. The
// interceptor decides whether to invoke next and may rewrite the reply.
type Interceptor func(next Handler) Handler

// Chain composes interceptors around a terminal handler. The first
// interceptor is outermost: Chain(h, a, b) runs a(b(h)).
func Chain(h Handler, interceptors ...Interceptor) Handler {
	for i := len(interceptors) - 1; i >= 0; i-- {
		h = interceptors[i](h)
	}
	return h
}

// Tracing returns an interceptor that records one span per message on
// the engine's trace recorder, on the track named proc (the endpoint,
// e.g. "mds.0"). label names the span from the message and is only
// invoked when tracing is enabled, so the disabled path costs one nil
// check and allocates nothing. Placed outermost around an endpoint's
// dispatcher it spans every RPC and Post without touching op handlers.
func Tracing(proc string, label func(msg any) string) Interceptor {
	return func(next Handler) Handler {
		return func(p *sim.Proc, msg any) any {
			rec := p.Engine().Tracer()
			if rec == nil {
				return next(p, msg)
			}
			id := rec.Begin(int64(p.Now()), proc, "transport", label(msg))
			reply := next(p, msg)
			rec.End(id, int64(p.Now()))
			return reply
		}
	}
}

// Endpoint is where clients send metadata messages.
type Endpoint interface {
	// Name identifies the endpoint ("mds.0", "mds").
	Name() string
	// Call sends a request and waits for the reply, charging one network
	// hop each way around the handler (the RPCs mechanism).
	Call(p *sim.Proc, msg any) any
	// Post hands a message to the endpoint without charging wire
	// latency; the handler manages all timing itself. Bulk transfers
	// (journal merges, decouple control traffic) use Post so their
	// calibrated cost model stays intact.
	Post(p *sim.Proc, msg any) any
}

// Wire is the concrete endpoint for one server: a simulated
// request/reply link with symmetric latency.
type Wire struct {
	name string
	lat  sim.Duration
	h    Handler
}

// NewWire builds an endpoint that charges lat on each direction of a
// Call and runs h in the calling process.
func NewWire(name string, lat sim.Duration, h Handler) *Wire {
	return &Wire{name: name, lat: lat, h: h}
}

// Name implements Endpoint.
func (w *Wire) Name() string { return w.name }

// Wrap composes an interceptor around the wire's handler, outermost.
// Chaos harnesses use it to slide a fault interceptor under an already
// constructed endpoint; with no interceptor installed the wire is
// untouched.
func (w *Wire) Wrap(ic Interceptor) { w.h = ic(w.h) }

// Call implements Endpoint: request on the wire, handler, reply on the
// wire.
func (w *Wire) Call(p *sim.Proc, msg any) any {
	p.Sleep(w.lat)
	reply := w.h(p, msg)
	p.Sleep(w.lat)
	return reply
}

// Post implements Endpoint: the handler self-charges all costs.
func (w *Wire) Post(p *sim.Proc, msg any) any {
	return w.h(p, msg)
}
