package transport

import (
	"fmt"
	"math/rand"

	"cudele/internal/runtime"
)

// FaultConfig tunes the message-fault interceptor. All probabilities
// default to zero — an interceptor built from the zero config delivers
// every message untouched, so wiring it in costs nothing until a chaos
// harness arms it.
type FaultConfig struct {
	// DropProb is the chance one transmission of a message is lost. Loss
	// is modeled as bounded retransmission: the sender pays
	// RetransmitDelay per lost copy, and after MaxRetransmits the message
	// goes through regardless. Delivery stays exactly-once — the fault is
	// in the timing, never in the protocol's visible semantics — so runs
	// always terminate.
	DropProb        float64
	MaxRetransmits  int              // per message; <=0 means 3
	RetransmitDelay runtime.Duration // per lost copy; <=0 means 2ms

	// DelayProb is the chance a message is delayed by a uniform extra
	// latency in (0, MaxExtraDelay].
	DelayProb     float64
	MaxExtraDelay runtime.Duration

	// DuplicateProb is the chance a message is delivered twice (the
	// retransmission arriving after the original). Only messages
	// DuplicateOK approves are duplicated; with a nil predicate nothing
	// is — double delivery is only safe for idempotent handlers.
	DuplicateProb float64
	DuplicateOK   func(msg any) bool
}

// NewFaultInterceptor builds a message-fault interceptor seeded with its
// own rand.Source — it never draws from an engine's stream, so arming it
// cannot perturb the calibrated model's jitter. Compose it into a wire's
// handler chain with Chain.
func NewFaultInterceptor(seed int64, cfg FaultConfig) Interceptor {
	rng := rand.New(rand.NewSource(seed))
	return func(next Handler) Handler {
		return func(p runtime.Task, msg any) any {
			fl := p.Runtime().Flight()
			if cfg.DropProb > 0 {
				max := cfg.MaxRetransmits
				if max <= 0 {
					max = 3
				}
				delay := cfg.RetransmitDelay
				if delay <= 0 {
					delay = runtime.Duration(2e6)
				}
				for i := 0; i < max && rng.Float64() < cfg.DropProb; i++ {
					if fl != nil {
						fl.Record(int64(p.Now()), p.Name(), "net", "drop", fmt.Sprintf("%T", msg))
					}
					p.Sleep(delay)
				}
			}
			if cfg.DelayProb > 0 && cfg.MaxExtraDelay > 0 && rng.Float64() < cfg.DelayProb {
				if fl != nil {
					fl.Record(int64(p.Now()), p.Name(), "net", "delay", fmt.Sprintf("%T", msg))
				}
				p.Sleep(runtime.Duration(rng.Int63n(int64(cfg.MaxExtraDelay)) + 1))
			}
			if cfg.DuplicateProb > 0 && cfg.DuplicateOK != nil &&
				cfg.DuplicateOK(msg) && rng.Float64() < cfg.DuplicateProb {
				if fl != nil {
					fl.Record(int64(p.Now()), p.Name(), "net", "duplicate", fmt.Sprintf("%T", msg))
				}
				// First delivery; its reply is the one the network lost.
				next(p, msg)
			}
			return next(p, msg)
		}
	}
}
