package transport

import (
	"testing"
	"time"

	"cudele/internal/runtime"
	"cudele/internal/sim"
)

func TestWindowBoundsAndWaitAccounting(t *testing.T) {
	w := NewWindow(2)
	if !w.TryPush(runtime.Time(100), "a") || !w.TryPush(runtime.Time(200), "b") {
		t.Fatal("pushes within the limit must succeed")
	}
	if w.TryPush(runtime.Time(300), "c") {
		t.Fatal("push beyond the limit must fail")
	}
	if w.Len() != 2 || w.Peak() != 2 || w.Limit() != 2 {
		t.Fatalf("len=%d peak=%d limit=%d", w.Len(), w.Peak(), w.Limit())
	}
	payload, waited, ok := w.Pop(runtime.Time(350))
	if !ok || payload != "a" || waited != runtime.Duration(250) {
		t.Fatalf("pop = %v %v %v", payload, waited, ok)
	}
	// Space freed: the rejected chunk now fits.
	if !w.TryPush(runtime.Time(400), "c") {
		t.Fatal("push after pop must succeed")
	}
	if payload, _, _ := w.Pop(runtime.Time(400)); payload != "b" {
		t.Fatalf("window is not FIFO: got %v", payload)
	}
	if _, _, ok := w.Pop(runtime.Time(400)); !ok {
		t.Fatal("third pop must succeed")
	}
	if _, _, ok := w.Pop(runtime.Time(400)); ok {
		t.Fatal("empty pop must fail")
	}
	if NewWindow(0).Limit() != 1 {
		t.Fatal("a window must admit at least one chunk")
	}
}

type flowReply struct{ busy bool }

func (r *flowReply) Backpressured() bool { return r.busy }

// TestSendWindowedRetries pins the sender side of flow control: a
// backpressured reply costs one retry delay and the message is re-posted
// until accepted; non-Flow replies are returned as-is.
func TestSendWindowedRetries(t *testing.T) {
	eng := sim.NewEngine(1)
	retry := runtime.Duration(2 * time.Millisecond)
	attempts := 0
	w := NewWire("mds.0", 0, func(p runtime.Task, msg any) any {
		attempts++
		if attempts <= 3 {
			return &flowReply{busy: true}
		}
		return &flowReply{busy: false}
	})
	var reply any
	var elapsed runtime.Duration
	eng.Spawn("sender", func(p runtime.Task) {
		start := p.Now()
		reply = SendWindowed(p, w, "chunk", retry)
		elapsed = runtime.Duration(p.Now() - start)
	})
	eng.RunAll()
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if r, ok := reply.(*flowReply); !ok || r.busy {
		t.Fatalf("reply = %v", reply)
	}
	if elapsed != 3*retry {
		t.Fatalf("elapsed = %v, want %v", elapsed, 3*retry)
	}

	plain := NewWire("mds.1", 0, func(p runtime.Task, msg any) any { return "done" })
	eng.Spawn("sender2", func(p runtime.Task) {
		if got := SendWindowed(p, plain, "chunk", retry); got != "done" {
			t.Errorf("non-Flow reply = %v", got)
		}
	})
	eng.RunAll()
}

type testChunk struct {
	StreamInfo
	body string
}

// TestChunksAreInterceptorVisible pins the tracing-for-free property:
// chunk messages travel through Post like any other message, so an
// interceptor chain around the handler sees every chunk and can
// introspect it through the StreamChunk interface.
func TestChunksAreInterceptorVisible(t *testing.T) {
	var seen []StreamInfo
	h := Handler(func(p runtime.Task, msg any) any { return nil })
	observe := Interceptor(func(next Handler) Handler {
		return func(p runtime.Task, msg any) any {
			if c, ok := msg.(StreamChunk); ok {
				seen = append(seen, c.Stream())
			}
			return next(p, msg)
		}
	})
	w := NewWire("mds.0", 0, Chain(h, observe))
	eng := sim.NewEngine(1)
	eng.Spawn("sender", func(p runtime.Task) {
		for i := 0; i < 3; i++ {
			w.Post(p, &testChunk{
				StreamInfo: StreamInfo{ID: 7, Seq: i, Items: 10, Bytes: 25000, Last: i == 2},
				body:       "payload",
			})
		}
	})
	eng.RunAll()
	if len(seen) != 3 {
		t.Fatalf("interceptor saw %d chunks, want 3", len(seen))
	}
	for i, info := range seen {
		if info.ID != 7 || info.Seq != i || info.Items != 10 {
			t.Fatalf("chunk %d info = %+v", i, info)
		}
	}
	if !seen[2].Last {
		t.Fatal("final chunk not marked Last")
	}
}
