package transport

import (
	"errors"
	"fmt"
	"testing"
)

// TestFragIndexDeterministic pins the dentry-fragment hash: every table
// replica must route a dentry to the same fragment, and single-way
// splits collapse to fragment 0.
func TestFragIndexDeterministic(t *testing.T) {
	if FragIndex("anything", 1) != 0 || FragIndex("anything", 0) != 0 {
		t.Errorf("ways<=1 must map to fragment 0")
	}
	for _, name := range []string{"", "a", "file.0001", "ckpt"} {
		for ways := 2; ways <= 8; ways++ {
			i, j := FragIndex(name, ways), FragIndex(name, ways)
			if i != j {
				t.Errorf("FragIndex(%q,%d) unstable: %d vs %d", name, ways, i, j)
			}
			if i < 0 || i >= ways {
				t.Errorf("FragIndex(%q,%d) = %d out of range", name, ways, i)
			}
		}
	}
	// Distinct names should spread at least a little: not all on one frag.
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		seen[FragIndex(fmt.Sprintf("file.%04d", i), 4)] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 names hashed onto %d fragment(s), want spread", len(seen))
	}
}

// TestSplitDirRouting pins dirfrag routing semantics: paths strictly
// under a split directory route by dentry hash, the directory itself and
// unrelated paths still route by subtree placement, and fragment cells
// get their own heat key.
func TestSplitDirRouting(t *testing.T) {
	tb := NewTable()
	tb.Place("/hot", 1)
	tb.SplitDir("/hot", []int{1, 2, 3})

	if got := tb.RankFor("/hot"); got != 1 {
		t.Errorf("RankFor(/hot) = %d, want placed rank 1", got)
	}
	if got := tb.RankFor("/cold/x"); got != 0 {
		t.Errorf("RankFor(/cold/x) = %d, want 0", got)
	}
	want := []int{1, 2, 3}[FragIndex("child", 3)]
	if got := tb.RankFor("/hot/child"); got != want {
		t.Errorf("RankFor(/hot/child) = %d, want frag rank %d", got, want)
	}
	// Deeper paths hash by the first component below the split dir.
	if got := tb.RankFor("/hot/child/deep/er"); got != want {
		t.Errorf("RankFor(/hot/child/deep/er) = %d, want frag rank %d", got, want)
	}
	if got := tb.RankForEntry("/hot", "child"); got != want {
		t.Errorf("RankForEntry(/hot, child) = %d, want %d", got, want)
	}
	wantCell := fmt.Sprintf("/hot#%d", FragIndex("child", 3))
	if got := tb.SubtreeFor("/hot/child"); got != wantCell {
		t.Errorf("SubtreeFor(/hot/child) = %q, want %q", got, wantCell)
	}

	// CopyFrom replicates splits; removing the split restores placement.
	rep := NewTable()
	rep.CopyFrom(tb)
	if got := rep.RankFor("/hot/child"); got != want {
		t.Errorf("replica RankFor(/hot/child) = %d, want %d", got, want)
	}
	tb.SplitDir("/hot", nil)
	if got := tb.RankFor("/hot/child"); got != 1 {
		t.Errorf("after unsplit RankFor(/hot/child) = %d, want 1", got)
	}
	if rep.FragSplits() == nil {
		t.Errorf("replica lost its split copy")
	}
}

// TestPlacementDeeperThanSplitWins: a placed subtree below the split
// directory overrides the hash (the placement is the finer statement of
// ownership).
func TestPlacementDeeperThanSplitWins(t *testing.T) {
	tb := NewTable()
	tb.SplitDir("/hot", []int{0, 1})
	tb.Place("/hot/pinned", 3)
	if got := tb.RankFor("/hot/pinned/file"); got != 3 {
		t.Errorf("RankFor(/hot/pinned/file) = %d, want pinned rank 3", got)
	}
	if got := tb.SubtreeFor("/hot/pinned/file"); got != "/hot/pinned" {
		t.Errorf("SubtreeFor = %q, want /hot/pinned", got)
	}
}

// TestWrongRankError pins the redirect error type clients retry on.
func TestWrongRankError(t *testing.T) {
	frozen := &WrongRankError{Path: "/job", Epoch: 7, Frozen: true}
	moved := &WrongRankError{Path: "/job", Rank: 2, Epoch: 9}
	for _, err := range []error{frozen, moved} {
		wrapped := fmt.Errorf("rpc: %w", err)
		got, ok := IsRedirect(wrapped)
		if !ok || got != err {
			t.Errorf("IsRedirect(%v) = %v, %v", wrapped, got, ok)
		}
	}
	if _, ok := IsRedirect(errors.New("plain")); ok {
		t.Errorf("plain error classified as redirect")
	}
	if _, ok := IsRedirect(nil); ok {
		t.Errorf("nil classified as redirect")
	}
	if frozen.Error() == moved.Error() {
		t.Errorf("frozen and moved redirects should render differently")
	}
}
