package transport

import (
	"errors"
	"fmt"
)

// WrongRankError is the typed redirect a metadata rank answers when a
// request routed with a stale table lands on a rank that does not own the
// path — or owns it but has it frozen for an in-flight migration. It
// carries everything the client needs to recover without a generic
// failure: the rank that owns the subtree now and the cluster-map epoch
// that placement was published at, so the client can refresh its replica
// table and retry.
type WrongRankError struct {
	// Path is the routed subtree the request addressed.
	Path string
	// Rank is the rank that owns Path at Epoch. When Frozen is set the
	// ownership is mid-handoff and Rank is the last committed owner.
	Rank int
	// Epoch is the cluster-map epoch of the answering rank's table. A
	// client whose replica is older should refresh before retrying.
	Epoch uint64
	// Frozen marks a subtree locked by an in-flight export: the request
	// is neither served nor permanently rejected — retry after the
	// migration commits or aborts and a new epoch is published.
	Frozen bool
}

func (e *WrongRankError) Error() string {
	if e.Frozen {
		return fmt.Sprintf("transport: subtree %s frozen for migration (epoch %d)", e.Path, e.Epoch)
	}
	return fmt.Sprintf("transport: wrong rank for %s: owner is rank %d (epoch %d)", e.Path, e.Rank, e.Epoch)
}

// IsRedirect reports whether err is (or wraps) a WrongRankError and
// returns it.
func IsRedirect(err error) (*WrongRankError, bool) {
	var wr *WrongRankError
	if errors.As(err, &wr) {
		return wr, true
	}
	return nil, false
}
