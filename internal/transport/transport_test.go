package transport

import (
	"testing"
	"time"

	"cudele/internal/runtime"
	"cudele/internal/sim"
)

func TestChainOrderAndRewrite(t *testing.T) {
	var order []string
	h := Handler(func(p runtime.Task, msg any) any {
		order = append(order, "handler")
		return msg.(int) + 1
	})
	outer := Interceptor(func(next Handler) Handler {
		return func(p runtime.Task, msg any) any {
			order = append(order, "outer")
			return next(p, msg)
		}
	})
	inner := Interceptor(func(next Handler) Handler {
		return func(p runtime.Task, msg any) any {
			order = append(order, "inner")
			return next(p, msg).(int) * 10
		}
	})
	chained := Chain(h, outer, inner)
	out := chained(nil, 1)
	if out != 20 {
		t.Fatalf("chained reply = %v, want 20", out)
	}
	if len(order) != 3 || order[0] != "outer" || order[1] != "inner" || order[2] != "handler" {
		t.Fatalf("order = %v", order)
	}
}

func TestChainShortCircuit(t *testing.T) {
	h := Handler(func(p runtime.Task, msg any) any {
		t.Fatal("handler must not run")
		return nil
	})
	deny := Interceptor(func(next Handler) Handler {
		return func(p runtime.Task, msg any) any { return "denied" }
	})
	if out := Chain(h, deny)(nil, 1); out != "denied" {
		t.Fatalf("reply = %v", out)
	}
}

func TestWireTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	lat := runtime.Duration(50 * time.Microsecond)
	work := runtime.Duration(300 * time.Microsecond)
	w := NewWire("mds.0", lat, func(p runtime.Task, msg any) any {
		p.Sleep(work)
		return msg
	})
	if w.Name() != "mds.0" {
		t.Fatalf("name = %q", w.Name())
	}
	var callTook, postTook runtime.Duration
	eng.Spawn("t", func(p runtime.Task) {
		start := p.Now()
		if out := w.Call(p, "m"); out != "m" {
			t.Errorf("call reply = %v", out)
		}
		callTook = runtime.Duration(p.Now() - start)
		start = p.Now()
		w.Post(p, "m")
		postTook = runtime.Duration(p.Now() - start)
	})
	eng.RunAll()
	if want := 2*lat + work; callTook != want {
		t.Errorf("Call took %v, want %v (wire both ways + handler)", callTook, want)
	}
	if postTook != work {
		t.Errorf("Post took %v, want %v (handler only, no wire charge)", postTook, work)
	}
}

func TestTableLongestPrefix(t *testing.T) {
	tb := NewTable()
	if got := tb.RankFor("/anything"); got != 0 {
		t.Fatalf("empty table routes to %d", got)
	}
	tb.Place("/job", 1)
	tb.Place("/job/deep", 2)
	cases := []struct {
		path string
		want int
	}{
		{"/", 0},
		{"/other", 0},
		{"/job", 1},
		{"/job/", 1},
		{"/job/x", 1},
		{"/job/deep", 2},
		{"/job/deep/a/b", 2},
		{"/jobs", 0}, // component boundary: "/job" does not own "/jobs"
		{"", 0},
	}
	for _, c := range cases {
		if got := tb.RankFor(c.path); got != c.want {
			t.Errorf("RankFor(%q) = %d, want %d", c.path, got, c.want)
		}
	}
	tb.Remove("/job/deep")
	if got := tb.RankFor("/job/deep/a"); got != 1 {
		t.Errorf("after remove, RankFor = %d, want 1 (parent placement)", got)
	}
}

func TestTableCopyFrom(t *testing.T) {
	master := NewTable()
	master.Place("/a", 1)
	master.SetEpoch(7)
	replica := NewTable()
	replica.CopyFrom(master)
	if replica.Epoch() != 7 || replica.RankFor("/a/x") != 1 {
		t.Fatalf("replica epoch=%d rank=%d", replica.Epoch(), replica.RankFor("/a/x"))
	}
	// Replicas are snapshots: later master edits do not leak through.
	master.Place("/b", 1)
	if replica.RankFor("/b") != 0 {
		t.Fatal("replica aliased the master's map")
	}
	if len(master.Paths()) != 2 || master.Paths()[0] != "/a" {
		t.Fatalf("paths = %v", master.Paths())
	}
}

func TestRouterPicksOwningRank(t *testing.T) {
	type msg struct{ route string }
	var hits [2][]string
	mk := func(rank int) Endpoint {
		return NewWire("mds."+string(rune('0'+rank)), 0, func(p runtime.Task, m any) any {
			hits[rank] = append(hits[rank], m.(*msg).route)
			return rank
		})
	}
	tb := NewTable()
	tb.Place("/b", 1)
	r := NewRouter("mds", tb, []Endpoint{mk(0), mk(1)}, func(m any) string { return m.(*msg).route })
	eng := sim.NewEngine(1)
	eng.Spawn("t", func(p runtime.Task) {
		if out := r.Call(p, &msg{route: "/a/f"}); out != 0 {
			t.Errorf("/a/f went to rank %v", out)
		}
		if out := r.Call(p, &msg{route: "/b/f"}); out != 1 {
			t.Errorf("/b/f went to rank %v", out)
		}
		if out := r.Post(p, &msg{route: ""}); out != 0 {
			t.Errorf("unrouted post went to rank %v", out)
		}
	})
	eng.RunAll()
	if len(hits[0]) != 2 || len(hits[1]) != 1 {
		t.Fatalf("hits = %v / %v", hits[0], hits[1])
	}
}
