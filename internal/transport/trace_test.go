package transport

import (
	"testing"
	"time"

	"cudele/internal/runtime"
	"cudele/internal/sim"
	"cudele/internal/trace"
)

// TestChainEmpty pins the degenerate compositions: no interceptors
// returns the handler itself, and a nil interceptor slice behaves the
// same (Chain is variadic, so both arise in practice when a server's
// interceptor pipeline is configuration-dependent).
func TestChainEmpty(t *testing.T) {
	h := Handler(func(p runtime.Task, msg any) any { return msg.(int) * 2 })
	if out := Chain(h)(nil, 21); out != 42 {
		t.Fatalf("empty chain reply = %v, want 42", out)
	}
	var none []Interceptor
	if out := Chain(h, none...)(nil, 21); out != 42 {
		t.Fatalf("nil-slice chain reply = %v, want 42", out)
	}
}

// TestTracingDisabledPassthrough checks the Tracing interceptor with no
// recorder on the engine: the handler runs normally, the label function
// is never invoked, and nothing is recorded.
func TestTracingDisabledPassthrough(t *testing.T) {
	eng := sim.NewEngine(1)
	labeled := false
	h := Chain(
		func(p runtime.Task, msg any) any { return "ok" },
		Tracing("mds.0", func(msg any) string { labeled = true; return "x" }),
	)
	var out any
	eng.Spawn("caller", func(p runtime.Task) { out = h(p, 7) })
	eng.RunAll()
	if out != "ok" {
		t.Fatalf("reply = %v", out)
	}
	if labeled {
		t.Fatal("label function invoked with tracing disabled")
	}
	if eng.Tracer().Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", eng.Tracer().Len())
	}
	eng.Shutdown()
}

// TestTracingRecordsSpan checks the enabled path: one span per message
// on the named track, in the transport category, covering exactly the
// handler's virtual-time window.
func TestTracingRecordsSpan(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := trace.New()
	eng.SetTracer(rec)
	work := runtime.Duration(250 * time.Microsecond)
	h := Chain(
		func(p runtime.Task, msg any) any { p.Sleep(work); return msg },
		Tracing("mds.3", func(msg any) string { return "rpc.create" }),
	)
	eng.Spawn("caller", func(p runtime.Task) {
		p.Sleep(time.Millisecond)
		h(p, 1)
		h(p, 2)
	})
	eng.RunAll()
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	s := spans[0]
	if s.Proc != "mds.3" || s.Cat != "transport" || s.Name != "rpc.create" {
		t.Fatalf("span identity = %+v", s)
	}
	if s.Begin != int64(time.Millisecond) || s.End != s.Begin+int64(work) {
		t.Fatalf("span window = [%d, %d], want [%d, %d]",
			s.Begin, s.End, int64(time.Millisecond), int64(time.Millisecond)+int64(work))
	}
	if spans[1].Begin != s.End {
		t.Fatalf("second span begins at %d, want %d", spans[1].Begin, s.End)
	}
	eng.Shutdown()
}
