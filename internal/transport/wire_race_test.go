package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"cudele/internal/realrt"
	"cudele/internal/runtime"
)

// TestWireConcurrentCalls drives many concurrent Calls through one Wire
// on the real backend while Wrap slides interceptors under them — the
// mid-run fault-injection shape. Run with -race it proves the atomic
// handler swap: every Call sees a complete chain, old or new, never a
// torn one.
func TestWireConcurrentCalls(t *testing.T) {
	eng := realrt.New(1)
	var handled atomic.Int64
	w := NewWire("srv", time.Microsecond, func(p runtime.Task, msg any) any {
		handled.Add(1)
		return msg
	})

	const callers = 8
	const perCaller = 200
	for c := 0; c < callers; c++ {
		eng.Spawn("caller", func(p runtime.Task) {
			for i := 0; i < perCaller; i++ {
				if got := w.Call(p, i); got != i {
					t.Errorf("call returned %v, want %v", got, i)
					return
				}
			}
		})
	}
	// One wrapper task swaps interceptor chains while calls are in
	// flight. Each interceptor preserves the reply, so correctness is
	// observable no matter which chain a given Call sees.
	var wrapped atomic.Int64
	eng.Spawn("wrapper", func(p runtime.Task) {
		for i := 0; i < 50; i++ {
			w.Wrap(func(next Handler) Handler {
				return func(p runtime.Task, msg any) any {
					wrapped.Add(1)
					return next(p, msg)
				}
			})
			p.Sleep(10 * time.Microsecond)
		}
	})
	eng.RunAll()
	if n := eng.Shutdown(); n != 0 {
		t.Fatalf("shutdown reaped %d tasks", n)
	}
	if got, want := handled.Load(), int64(callers*perCaller); got != want {
		t.Fatalf("handled %d calls, want %d", got, want)
	}
}

// TestWireConcurrentPosts exercises Post from concurrent tasks with a
// handler that parks (sleeps) mid-message, the MergeWait shape.
func TestWireConcurrentPosts(t *testing.T) {
	eng := realrt.New(1)
	var handled atomic.Int64
	w := NewWire("srv", 0, func(p runtime.Task, msg any) any {
		p.Sleep(time.Microsecond)
		handled.Add(1)
		return msg
	})
	for c := 0; c < 8; c++ {
		eng.Spawn("poster", func(p runtime.Task) {
			for i := 0; i < 100; i++ {
				w.Post(p, i)
			}
		})
	}
	eng.RunAll()
	eng.Shutdown()
	if got, want := handled.Load(), int64(800); got != want {
		t.Fatalf("handled %d posts, want %d", got, want)
	}
}
