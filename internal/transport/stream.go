// Chunked streams: the flow-control primitive under bulk transfers.
//
// A logical payload (a client journal) is split into chunk messages that
// travel through the ordinary Endpoint.Post path, so every chunk passes
// the receiver's interceptor chain — tracing spans each chunk without
// the stream code knowing about it — and the receiver's handler charges
// the per-chunk wire cost (latency plus bytes on the shared fabric).
//
// Flow control is credit-free and deterministic: the receiver keeps a
// bounded Window of buffered chunks per stream; a chunk that arrives
// with the window full is answered with a backpressure reply (no state
// kept, no time charged) and the sender retries after a fixed delay.
// SendWindowed is that retry loop.
package transport

import "cudele/internal/runtime"

// StreamInfo identifies one chunk's position in a chunked stream.
// Concrete chunk messages embed it so interceptors and schedulers can
// handle chunks generically.
type StreamInfo struct {
	ID    uint64 // stream id, assigned by the receiver at open
	Seq   int    // chunk index within the stream, from 0
	Items int    // payload items (journal events) in this chunk
	Bytes int64  // nominal wire bytes of this chunk
	Last  bool   // set on the stream's final chunk
}

// StreamChunk is implemented by chunk messages.
type StreamChunk interface{ Stream() StreamInfo }

// Stream implements StreamChunk; embedding StreamInfo is enough.
func (i StreamInfo) Stream() StreamInfo { return i }

// Flow is implemented by replies that carry flow-control state. A
// backpressured reply means the receiver kept nothing: the sender owns
// the message and must retry it.
type Flow interface{ Backpressured() bool }

// SendWindowed posts msg until the receiver accepts it, sleeping
// retryDelay between backpressured attempts, and returns the accepting
// reply. Replies that do not implement Flow are accepted as-is.
func SendWindowed(p runtime.Task, ep Endpoint, msg any, retryDelay runtime.Duration) any {
	for {
		reply := ep.Post(p, msg)
		if f, ok := reply.(Flow); !ok || !f.Backpressured() {
			return reply
		}
		p.Sleep(retryDelay)
	}
}

// windowEntry is one buffered chunk plus its arrival time, kept so the
// scheduler can account how long chunks waited to be serviced.
type windowEntry struct {
	payload any
	at      runtime.Time
}

// Window is the receiver side of one chunked stream: a bounded FIFO of
// chunks that have been accepted off the wire but not yet serviced.
// Its size is the stream's flow-control window.
type Window struct {
	limit int
	q     []windowEntry
	peak  int
}

// NewWindow returns a window that buffers at most limit chunks; limit
// < 1 is treated as 1 (a window must admit progress).
func NewWindow(limit int) *Window {
	if limit < 1 {
		limit = 1
	}
	return &Window{limit: limit}
}

// TryPush buffers a chunk, stamping its arrival time. It returns false
// when the window is full — the caller should answer with backpressure.
func (w *Window) TryPush(now runtime.Time, payload any) bool {
	if len(w.q) >= w.limit {
		return false
	}
	w.q = append(w.q, windowEntry{payload: payload, at: now})
	if len(w.q) > w.peak {
		w.peak = len(w.q)
	}
	return true
}

// Pop removes the oldest buffered chunk and reports how long it waited.
func (w *Window) Pop(now runtime.Time) (payload any, waited runtime.Duration, ok bool) {
	if len(w.q) == 0 {
		return nil, 0, false
	}
	e := w.q[0]
	// Shift rather than reslice so buffered chunk payloads are released
	// for collection as soon as they are serviced.
	copy(w.q, w.q[1:])
	w.q[len(w.q)-1] = windowEntry{}
	w.q = w.q[:len(w.q)-1]
	return e.payload, runtime.Duration(now - e.at), true
}

// Len returns the number of buffered chunks.
func (w *Window) Len() int { return len(w.q) }

// Limit returns the window size.
func (w *Window) Limit() int { return w.limit }

// Peak returns the maximum buffered depth ever reached.
func (w *Window) Peak() int { return w.peak }
