package transport

import (
	"fmt"
	"sort"
	"strings"

	"cudele/internal/runtime"
)

// Table maps namespace subtrees to metadata ranks. The monitor owns the
// authoritative copy; ranks and clients hold replicas that the monitor
// refreshes on every cluster-map change, stamped with the map epoch.
// Paths with no placement fall through to rank 0, which is why a
// single-rank deployment behaves exactly like the unrouted system.
type Table struct {
	epoch  uint64
	places map[string]int

	// frags maps a split directory to the ranks its dentry fragments
	// hash onto: dentry name → frags[dir][FragIndex(name, len(...))].
	// Splitting lets one hot directory span ranks (CephFS dirfrags).
	frags map[string][]int
}

// NewTable returns an empty table: everything routes to rank 0.
func NewTable() *Table {
	return &Table{places: make(map[string]int)}
}

// Epoch returns the cluster-map epoch the table was last synced at.
func (t *Table) Epoch() uint64 { return t.epoch }

// SetEpoch stamps the table with a cluster-map epoch.
func (t *Table) SetEpoch(e uint64) { t.epoch = e }

// Place assigns the subtree rooted at path to rank.
func (t *Table) Place(path string, rank int) {
	t.places[clean(path)] = rank
}

// Remove drops the subtree's placement; it routes to rank 0 again (or to
// its nearest placed ancestor).
func (t *Table) Remove(path string) {
	delete(t.places, clean(path))
}

// RankFor returns the rank owning path: the longest placed prefix wins,
// with component-boundary matching ("/job1" does not own "/job10").
// Unplaced paths belong to rank 0. Paths strictly under a split
// directory that is at least as deep as the best placed prefix route by
// dentry-fragment hash instead.
func (t *Table) RankFor(path string) int {
	path = clean(path)
	best, bestLen := 0, -1
	for prefix, rank := range t.places {
		if len(prefix) > bestLen && hasPathPrefix(path, prefix) {
			best, bestLen = rank, len(prefix)
		}
	}
	if dir, comp := t.fragFor(path, bestLen); dir != "" {
		ranks := t.frags[dir]
		return ranks[FragIndex(comp, len(ranks))]
	}
	return best
}

// SubtreeFor returns the placed subtree that owns path — the longest
// placed prefix, mirroring RankFor's resolution — or "/" when no
// placement covers it. Heat accounting keys cells by this, so load
// aggregates per policy subtree instead of per leaf path. Paths under a
// split directory report "<dir>#<frag>" so each fragment's heat is its
// own cell.
func (t *Table) SubtreeFor(path string) string {
	path = clean(path)
	best, bestLen := "/", -1
	for prefix := range t.places {
		if len(prefix) > bestLen && hasPathPrefix(path, prefix) {
			best, bestLen = prefix, len(prefix)
		}
	}
	if dir, comp := t.fragFor(path, bestLen); dir != "" {
		return fmt.Sprintf("%s#%d", dir, FragIndex(comp, len(t.frags[dir])))
	}
	return best
}

// fragFor returns the deepest split directory that path lives strictly
// under — provided that split is at least as deep as the best placed
// prefix (placedLen) — plus the first path component below it, which is
// the dentry whose hash picks the fragment. ("", "") when no split
// applies.
func (t *Table) fragFor(path string, placedLen int) (dir, comp string) {
	bestLen := -1
	for d := range t.frags {
		if len(d) >= placedLen && len(d) > bestLen &&
			hasPathPrefix(path, d) && len(path) > len(d) {
			dir, bestLen = d, len(d)
		}
	}
	if dir == "" {
		return "", ""
	}
	rest := path[len(dir):]
	if dir == "/" {
		rest = path
	}
	rest = strings.TrimPrefix(rest, "/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return dir, rest
}

// FragIndex hashes a dentry name onto one of ways fragments (FNV-1a).
// Deterministic across every replica of the table, so any holder routes
// a dentry to the same fragment.
func FragIndex(name string, ways int) int {
	if ways <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(ways))
}

// SplitDir registers a directory as fragment-split across ranks: dentry
// name n of dir routes to ranks[FragIndex(n, len(ranks))]. An empty or
// single-element ranks removes the split.
func (t *Table) SplitDir(dir string, ranks []int) {
	dir = clean(dir)
	if len(ranks) < 2 {
		delete(t.frags, dir)
		return
	}
	if t.frags == nil {
		t.frags = make(map[string][]int)
	}
	t.frags[dir] = append([]int(nil), ranks...)
}

// FragSplits returns a copy of the split-directory map.
func (t *Table) FragSplits() map[string][]int {
	if len(t.frags) == 0 {
		return nil
	}
	out := make(map[string][]int, len(t.frags))
	for d, ranks := range t.frags {
		out[d] = append([]int(nil), ranks...)
	}
	return out
}

// RankForEntry returns the rank owning dentry name of directory dir,
// honoring a registered split before falling back to subtree placement.
func (t *Table) RankForEntry(dir, name string) int {
	dir = clean(dir)
	if ranks, ok := t.frags[dir]; ok {
		return ranks[FragIndex(name, len(ranks))]
	}
	if dir == "/" {
		return t.RankFor("/" + name)
	}
	return t.RankFor(dir + "/" + name)
}

// Placements returns a copy of the path→rank map, sorted iteration being
// the caller's concern.
func (t *Table) Placements() map[string]int {
	out := make(map[string]int, len(t.places))
	for p, r := range t.places {
		out[p] = r
	}
	return out
}

// Paths returns the placed paths in sorted order, for display.
func (t *Table) Paths() []string {
	out := make([]string, 0, len(t.places))
	for p := range t.places {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CopyFrom replaces the table's contents with src's placements, splits,
// and epoch — the monitor's publish step.
func (t *Table) CopyFrom(src *Table) {
	t.places = src.Placements()
	t.frags = src.FragSplits()
	t.epoch = src.epoch
}

func clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	if len(p) > 1 {
		p = strings.TrimRight(p, "/")
	}
	return p
}

// hasPathPrefix reports whether path is prefix or lives under it.
func hasPathPrefix(path, prefix string) bool {
	if prefix == "/" {
		return true
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// Router is an Endpoint that forwards each message to the rank owning
// its route key.
type Router struct {
	name  string
	table *Table
	ranks []Endpoint
	key   func(msg any) string
}

// NewRouter builds a router over the given rank endpoints. key extracts
// the routing path from a message; messages with an empty route go to
// rank 0.
func NewRouter(name string, table *Table, ranks []Endpoint, key func(msg any) string) *Router {
	return &Router{name: name, table: table, ranks: ranks, key: key}
}

// Name implements Endpoint.
func (r *Router) Name() string { return r.name }

// Table returns the router's placement table (a replica to subscribe to
// cluster-map updates).
func (r *Router) Table() *Table { return r.table }

// pick resolves the owning rank's endpoint for a message.
func (r *Router) pick(msg any) Endpoint {
	rank := r.table.RankFor(r.key(msg))
	if rank < 0 || rank >= len(r.ranks) {
		rank = 0
	}
	return r.ranks[rank]
}

// Call implements Endpoint.
func (r *Router) Call(p runtime.Task, msg any) any { return r.pick(msg).Call(p, msg) }

// Post implements Endpoint.
func (r *Router) Post(p runtime.Task, msg any) any { return r.pick(msg).Post(p, msg) }
