package stats

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; run with -race it proves the atomic paths, and the final
// totals prove no increment was lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	wantMax := time.Duration(workers*perWorker-1) * time.Microsecond
	if h.Max() != wantMax {
		t.Fatalf("max = %v, want %v", h.Max(), wantMax)
	}
	var wantSum time.Duration
	for i := 0; i < workers*perWorker; i++ {
		wantSum += time.Duration(i) * time.Microsecond
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramConcurrentReaders observes from one goroutine while
// others read every accessor; -race verifies no torn reads.
func TestHistogramConcurrentReaders(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
		close(done)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = h.Count()
				_ = h.Mean()
				_ = h.Quantile(0.99)
				_ = h.String()
			}
		}()
	}
	wg.Wait()
}

// TestHistogramConcurrentMerge merges shards into a sink concurrently
// and checks nothing is lost.
func TestHistogramConcurrentMerge(t *testing.T) {
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = new(Histogram)
		for j := 0; j < 100; j++ {
			shards[i].Observe(time.Duration(j) * time.Millisecond)
		}
	}
	var sink Histogram
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *Histogram) {
			defer wg.Done()
			sink.Merge(sh)
		}(sh)
	}
	wg.Wait()
	if got, want := sink.Count(), uint64(400); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	if got, want := sink.Max(), 99*time.Millisecond; got != want {
		t.Fatalf("merged max = %v, want %v", got, want)
	}
}
