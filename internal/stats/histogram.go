package stats

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a log-scale latency histogram with quarter-octave buckets:
// bucket i counts samples in [2^(i/4), 2^((i+1)/4)) microseconds, giving
// ~19% relative resolution. It is cheap enough to sit on every client's
// RPC path and supports approximate quantiles (upper bucket bounds),
// which is what the tail-latency reporting in the benchmarks uses.
//
// All methods are safe for concurrent use: the real execution backend
// runs clients as goroutines that observe latencies in parallel, so
// every field is manipulated with sync/atomic operations. Plain uint64
// fields with atomic functions (rather than atomic.Uint64 values) keep
// the struct trivially copyable by value when quiesced, which is how the
// bench harness embeds and snapshots it. Readers that combine several
// fields (Mean, Quantile, String, Merge) are individually race-free but
// see a possibly-inconsistent snapshot if samples arrive mid-read; call
// them after the run quiesces for exact numbers.
type Histogram struct {
	counts [160]uint64 // 2^40 us ~= 12.7 days, plenty
	total  uint64
	sum    int64 // nanoseconds
	max    int64 // nanoseconds
}

// subBuckets is the number of buckets per power of two.
const subBuckets = 4

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log2(float64(us)) * subBuckets)
	if b < 0 {
		b = 0
	}
	if b >= len(Histogram{}.counts) {
		b = len(Histogram{}.counts) - 1
	}
	return b
}

// bucketUpper returns the upper bound of bucket i in microseconds.
func bucketUpper(i int) time.Duration {
	us := math.Exp2(float64(i+1) / subBuckets)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	atomic.AddUint64(&h.counts[bucketOf(d)], 1)
	atomic.AddUint64(&h.total, 1)
	atomic.AddInt64(&h.sum, int64(d))
	for {
		cur := atomic.LoadInt64(&h.max)
		if int64(d) <= cur || atomic.CompareAndSwapInt64(&h.max, cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.total) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(atomic.LoadInt64(&h.sum)) }

// Mean returns the mean sample.
func (h *Histogram) Mean() time.Duration {
	total := atomic.LoadUint64(&h.total)
	if total == 0 {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&h.sum)) / time.Duration(total)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(atomic.LoadInt64(&h.max)) }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// upper edge of the bucket containing it.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := atomic.LoadUint64(&h.total)
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	max := time.Duration(atomic.LoadInt64(&h.max))
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += atomic.LoadUint64(&h.counts[i])
		if seen >= target {
			if i == len(h.counts)-1 {
				// The top bucket absorbs samples clamped from beyond its
				// nominal edge, so that edge is not an upper bound; the
				// true max is the only honest answer.
				return max
			}
			upper := bucketUpper(i)
			if upper > max && max > 0 {
				return max
			}
			return upper
		}
	}
	return max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.counts {
		if c := atomic.LoadUint64(&other.counts[i]); c != 0 {
			atomic.AddUint64(&h.counts[i], c)
		}
	}
	atomic.AddUint64(&h.total, atomic.LoadUint64(&other.total))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&other.sum))
	om := atomic.LoadInt64(&other.max)
	for {
		cur := atomic.LoadInt64(&h.max)
		if om <= cur || atomic.CompareAndSwapInt64(&h.max, cur, om) {
			break
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		atomic.StoreUint64(&h.counts[i], 0)
	}
	atomic.StoreUint64(&h.total, 0)
	atomic.StoreInt64(&h.sum, 0)
	atomic.StoreInt64(&h.max, 0)
}

// String summarizes count/mean/p50/p99/max.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
	return b.String()
}
