package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-scale latency histogram with quarter-octave buckets:
// bucket i counts samples in [2^(i/4), 2^((i+1)/4)) microseconds, giving
// ~19% relative resolution. It is cheap enough to sit on every client's
// RPC path and supports approximate quantiles (upper bucket bounds),
// which is what the tail-latency reporting in the benchmarks uses.
type Histogram struct {
	counts [160]uint64 // 2^40 us ~= 12.7 days, plenty
	total  uint64
	sum    time.Duration
	max    time.Duration
}

// subBuckets is the number of buckets per power of two.
const subBuckets = 4

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log2(float64(us)) * subBuckets)
	if b < 0 {
		b = 0
	}
	if b >= len(Histogram{}.counts) {
		b = len(Histogram{}.counts) - 1
	}
	return b
}

// bucketUpper returns the upper bound of bucket i in microseconds.
func bucketUpper(i int) time.Duration {
	us := math.Exp2(float64(i+1) / subBuckets)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the mean sample.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// upper edge of the bucket containing it.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			if i == len(h.counts)-1 {
				// The top bucket absorbs samples clamped from beyond its
				// nominal edge, so that edge is not an upper bound; the
				// true max is the only honest answer.
				return h.max
			}
			upper := bucketUpper(i)
			if upper > h.max && h.max > 0 {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes count/mean/p50/p99/max.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
	return b.String()
}
