package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("stddev of singleton != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, 2) {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	vals := []float64{3, -1, 7, 2}
	if Min(vals) != -1 || Max(vals) != 7 {
		t.Fatalf("min/max = %v/%v", Min(vals), Max(vals))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 8}, 2)
	want := []float64{1, 2, 4}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("normalize = %v", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize by zero did not panic")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestSlowdown(t *testing.T) {
	if !almost(Slowdown(30, 10), 3) {
		t.Fatal("slowdown wrong")
	}
}

func TestSeriesRates(t *testing.T) {
	s := &Series{}
	s.Add(0, 0)
	s.Add(1, 100)
	s.Add(3, 500)
	r := s.Rates()
	if r.Len() != 2 {
		t.Fatalf("rates len = %d", r.Len())
	}
	if !almost(r.V[0], 100) || !almost(r.V[1], 200) {
		t.Fatalf("rates = %v", r.V)
	}
	// Degenerate: equal timestamps skipped.
	s.Add(3, 600)
	if s.Rates().Len() != 2 {
		t.Fatal("zero-dt interval not skipped")
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

// Property: StdDev is translation-invariant and non-negative.
func TestStdDevQuick(t *testing.T) {
	f := func(vals []float64, shift float64) bool {
		if len(vals) < 2 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e12 {
			return true
		}
		a := StdDev(vals)
		shifted := make([]float64, len(vals))
		for i, v := range vals {
			shifted[i] = v + shift
		}
		b := StdDev(shifted)
		return a >= 0 && math.Abs(a-b) < 1e-3*(1+a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
