package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: %s", h.String())
	}
}

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond) // one outlier
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < time.Millisecond || p50 > 3*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1-2ms", p50)
	}
	p995 := h.Quantile(0.995)
	if p995 < 50*time.Millisecond {
		t.Fatalf("p99.5 = %v, want to catch the outlier", p995)
	}
	if mean := h.Mean(); mean < time.Millisecond || mean > 3*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample: %s", h.String())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if h.Quantile(-1) == 0 || h.Quantile(2) == 0 {
		t.Fatal("out-of-range quantiles returned zero")
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(10 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 10*time.Millisecond {
		t.Fatalf("merged: %s", a.String())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	s := h.String()
	if s == "" || h.Count() != 1 {
		t.Fatalf("string = %q", s)
	}
}

// Property: quantiles are monotone in q, and p100 >= every sample's
// bucket floor while p0+ <= max.
func TestHistogramQuantileMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 200; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1.0) >= h.Max()/2 // bucket granularity bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
