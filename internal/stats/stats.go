// Package stats provides the small numeric helpers the benchmark harness
// uses: means, standard deviations, normalization, and time series built
// from sampled counters.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of vals, or 0 for an empty slice.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// StdDev returns the population standard deviation of vals.
func StdDev(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	m := Mean(vals)
	var ss float64
	for _, v := range vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)))
}

// Min returns the smallest value; it panics on an empty slice.
func Min(vals []float64) float64 {
	if len(vals) == 0 {
		panic("stats: Min of empty slice")
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value; it panics on an empty slice.
func Max(vals []float64) float64 {
	if len(vals) == 0 {
		panic("stats: Max of empty slice")
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Normalize divides every value by base, the way the paper normalizes its
// figures to a 1-client baseline. It panics if base is zero.
func Normalize(vals []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: normalize by zero")
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// Series is a sampled time series.
type Series struct {
	T []float64 // seconds
	V []float64
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Rates converts a cumulative-counter series into per-interval rates
// (events/second between consecutive samples). The result has Len()-1
// points stamped at the end of each interval.
func (s *Series) Rates() *Series {
	out := &Series{}
	for i := 1; i < s.Len(); i++ {
		dt := s.T[i] - s.T[i-1]
		if dt <= 0 {
			continue
		}
		out.Add(s.T[i], (s.V[i]-s.V[i-1])/dt)
	}
	return out
}

// String renders the series compactly for debugging.
func (s *Series) String() string {
	return fmt.Sprintf("series(%d samples)", s.Len())
}

// Slowdown converts a duration into a slowdown factor relative to base,
// the paper's usual y-axis.
func Slowdown(elapsed, base float64) float64 {
	if base == 0 {
		panic("stats: slowdown with zero base")
	}
	return elapsed / base
}
