package stats

import (
	"testing"
	"time"
)

// TestHistogramZeroSamples pins every accessor on a fresh histogram:
// all must return zero values without dividing by the zero count.
func TestHistogramZeroSamples(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("zero-sample accessors: count=%d sum=%v mean=%v max=%v",
			h.Count(), h.Sum(), h.Mean(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v on empty histogram", q, got)
		}
	}
}

// TestHistogramSubMicrosecond checks durations below the histogram's
// 1 µs resolution: they land in bucket 0, count toward the total, and
// keep the exact sum (the sum is tracked outside the buckets).
func TestHistogramSubMicrosecond(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Nanosecond)
	h.Observe(999 * time.Nanosecond)
	h.Observe(0)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1000*time.Nanosecond {
		t.Fatalf("sum = %v, want exactly 1µs", h.Sum())
	}
	// All three sit in the first bucket, so the p100 upper bound is the
	// first bucket edge clamped to the observed max.
	if got := h.Quantile(1); got != 999*time.Nanosecond {
		t.Fatalf("Quantile(1) = %v, want max 999ns", got)
	}
}

// TestHistogramTopBucketSaturation checks a sample beyond the last
// bucket's range (~12.7 days): it must clamp into the top bucket rather
// than index out of bounds, and quantiles must report the true max
// rather than the (smaller) bucket edge.
func TestHistogramTopBucketSaturation(t *testing.T) {
	var h Histogram
	huge := 365 * 24 * time.Hour
	h.Observe(huge)
	h.Observe(huge * 2)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != huge*2 {
		t.Fatalf("max = %v", h.Max())
	}
	if got := h.Quantile(0.99); got != huge*2 {
		t.Fatalf("Quantile(0.99) = %v, want clamped max %v", got, huge*2)
	}
}

// TestHistogramQuantileExtremes pins the boundary quantiles on a
// populated histogram: Quantile(0) behaves like the smallest recorded
// bucket's upper edge (never zero when samples exist) and Quantile(1)
// never exceeds the true max. Out-of-range q values clamp instead of
// panicking.
func TestHistogramQuantileExtremes(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	q0 := h.Quantile(0)
	if q0 <= 0 {
		t.Fatalf("Quantile(0) = %v, want positive first-bucket bound", q0)
	}
	if q0 > 100*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want within the smallest sample's bucket", q0)
	}
	if got := h.Quantile(1); got > h.Max() {
		t.Fatalf("Quantile(1) = %v exceeds max %v", got, h.Max())
	}
	if got := h.Quantile(-3); got != q0 {
		t.Fatalf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, q0)
	}
	if got := h.Quantile(7); got != h.Quantile(1) {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, h.Quantile(1))
	}
}
