package bench

import "testing"

// TestMergeScaleChunkedBeatsAllAtOnce pins the experiment's headline: at
// four or more concurrent mergers, the streamed pipeline's bounded
// admission finishes the slowest merger sooner than the all-at-once
// arrival model, with per-client transfer memory bounded by one chunk
// (256 events) instead of the whole journal.
func TestMergeScaleChunkedBeatsAllAtOnce(t *testing.T) {
	const perClient = 500
	const evBytes = 2500
	for _, n := range []int{4, 8, 16} {
		oneshot, err := mergeScaleRun(nil, 1, n, perClient, "all-at-once")
		if err != nil {
			t.Fatalf("all-at-once n=%d: %v", n, err)
		}
		chunked, err := mergeScaleRun(nil, 1, n, perClient, "chunked-fair")
		if err != nil {
			t.Fatalf("chunked-fair n=%d: %v", n, err)
		}
		if chunked.slowest >= oneshot.slowest {
			t.Errorf("n=%d: chunked slowest %.3fs not below all-at-once %.3fs",
				n, chunked.slowest, oneshot.slowest)
		}
		if want := uint64(perClient * evBytes); oneshot.peakBytes != want {
			t.Errorf("n=%d: one-shot peak transfer = %d, want whole journal %d",
				n, oneshot.peakBytes, want)
		}
		if limit := uint64(256 * evBytes); chunked.peakBytes > limit {
			t.Errorf("n=%d: chunked peak transfer = %d, want <= one chunk %d",
				n, chunked.peakBytes, limit)
		}
		if chunked.waitJobs != n {
			t.Errorf("n=%d: fairness covers %d jobs", n, chunked.waitJobs)
		}
		if n > 2 && chunked.backpressure == 0 {
			t.Errorf("n=%d: bounded admission produced no backpressure", n)
		}
	}
}
