package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"cudele"
	"cudele/internal/obs"
	"cudele/internal/workload"
)

func init() {
	register("heatskew", "per-rank heat imbalance under a skewed create storm", HeatSkew)
}

// heatSkewPlacement pins each client's private subtree to a rank: rank 0
// owns five of the eight subtrees, the other three ranks one each — the
// deliberately skewed placement whose imbalance the heat map must expose.
var heatSkewPlacement = []int{0, 0, 0, 0, 0, 1, 2, 3}

// heatSkewRanks is the cluster size (max placement rank + 1).
const heatSkewRanks = 4

// heatSkewOut is one run's measurements: total seconds, per-rank request
// counts from the MDS metrics (the ground truth), and the decayed heat
// report (the live signal the balancer would consume).
type heatSkewOut struct {
	total    float64
	requests []uint64
	report   obs.HeatReport
}

// heatSkewRun drives len(heatSkewPlacement) clients, each create-storming
// its private subtree pinned per heatSkewPlacement, with heat accounting
// on. The half-life is set long relative to the run so decay barely
// discounts early operations and the heat shares line up with the raw
// request shares — the cross-check the table reports.
func heatSkewRun(sink *Sink, run string, seed int64, perClient int,
	backend cudele.Backend, admin *obs.Admin, dataDir string) (heatSkewOut, error) {
	copts := []cudele.Option{cudele.WithSeed(seed), cudele.WithMDSRanks(heatSkewRanks)}
	if backend == cudele.BackendReal {
		copts = append(copts, cudele.WithBackend(cudele.BackendReal))
		if dataDir != "" {
			copts = append(copts, cudele.WithDataDir(dataDir))
		}
	}
	cl := cudele.NewCluster(copts...)
	sink.start(run, cl)
	cl.EnableHeat(10 * time.Minute)
	if admin != nil && backend == cudele.BackendReal {
		admin.SetSource(cl.AdminSource())
	}

	cs := make([]*cudele.Client, len(heatSkewPlacement))
	for i := range cs {
		cs[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	var jobErr error
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		for i, c := range cs {
			path := fmt.Sprintf("/job%d", i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				jobErr = err
				return
			}
			if err := cl.Monitor().Place(p, path, heatSkewPlacement[i]); err != nil {
				jobErr = err
				return
			}
		}
		for i, c := range cs {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				dir, err := c.Resolve(cp, fmt.Sprintf("/job%d", i))
				if err != nil {
					jobErr = err
					return
				}
				if _, _, err := workload.CreateMany(cp, c, dir, perClient, "f"); err != nil {
					jobErr = err
				}
			})
		}
	})
	out := heatSkewOut{total: cl.RunAll()}
	if jobErr != nil {
		return heatSkewOut{}, jobErr
	}
	out.report = cl.HeatReport()
	out.requests = make([]uint64, heatSkewRanks)
	for i := 0; i < heatSkewRanks; i++ {
		out.requests[i] = cl.Metadata().Rank(i).Metrics().Requests
	}
	sink.finish(run, cl)
	return out, reap(cl)
}

// subtreesOnRank counts how many placed subtrees heatSkewPlacement pins
// to rank r.
func subtreesOnRank(r int) int {
	n := 0
	for _, pr := range heatSkewPlacement {
		if pr == r {
			n++
		}
	}
	return n
}

// HeatSkew is the heat-accounting experiment: a create storm over a
// deliberately skewed subtree placement, with the per-rank heat shares
// read off the accountant next to the raw request shares they must
// track. The imbalance factor (max/mean rank load) is the number the
// ROADMAP's future dynamic balancer would act on; "vs even" shows each
// rank's load against a perfectly balanced placement.
func HeatSkew(opts Options) (*Result, error) {
	perClient := opts.scaled(20_000, 200)
	out, err := heatSkewRun(opts.Sink, "heatskew", opts.Seed, perClient,
		cudele.BackendSim, nil, "")
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID: "heatskew",
		Title: fmt.Sprintf("per-rank heat under a skewed create storm: %d clients x %d creates, subtrees placed %v",
			len(heatSkewPlacement), perClient, heatSkewPlacement),
		Columns: []string{"rank", "subtrees", "requests", "req share", "heat load", "heat share", "vs even"},
	}
	addHeatRows(r, out)
	r.Notef("heat imbalance (max/mean rank load): %s — the signal a dynamic subtree balancer would act on", f2x(out.report.Imbalance))
	r.Notef("runtime %.2fs; heat shares track raw request shares because the decay half-life dwarfs the run", out.total)
	return r, nil
}

// addHeatRows renders one run's per-rank table rows.
func addHeatRows(r *Result, out heatSkewOut) {
	var totalReq uint64
	for _, n := range out.requests {
		totalReq += n
	}
	loads := make([]float64, heatSkewRanks)
	shares := make([]float64, heatSkewRanks)
	for _, rl := range out.report.Ranks {
		if rl.Rank < heatSkewRanks {
			loads[rl.Rank] = rl.Load
			shares[rl.Rank] = rl.Share
		}
	}
	even := 1.0 / float64(heatSkewRanks)
	for rank := 0; rank < heatSkewRanks; rank++ {
		reqShare := 0.0
		if totalReq > 0 {
			reqShare = float64(out.requests[rank]) / float64(totalReq)
		}
		r.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%d", subtreesOnRank(rank)),
			fmt.Sprintf("%d", out.requests[rank]), pct(reqShare),
			f0(loads[rank]), pct(shares[rank]), f2x(shares[rank]/even))
	}
}

// heatSkewReal runs the skewed create storm on both backends: the sim
// run is the prediction, the real run the measurement — and, when an
// admin endpoint is armed, the live /heat source while it executes.
func heatSkewReal(opts Options) (*Result, error) {
	perClient := opts.scaled(20_000, 200)
	sim, err := heatSkewRun(opts.Sink, "heatskew-real/sim", opts.Seed, perClient,
		cudele.BackendSim, nil, "")
	if err != nil {
		return nil, err
	}
	dataDir := ""
	if opts.DataDir != "" {
		dataDir = filepath.Join(opts.DataDir, "heatskew")
	}
	real, err := heatSkewRun(opts.Sink, "heatskew-real/real", opts.Seed, perClient,
		cudele.BackendReal, opts.Admin, dataDir)
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID: "heatskew-real",
		Title: fmt.Sprintf("heatskew on the real backend: %d clients x %d creates, subtrees placed %v",
			len(heatSkewPlacement), perClient, heatSkewPlacement),
		Columns: []string{"rank", "subtrees", "sim req share", "sim heat share", "real req share", "real heat share"},
	}
	simShares := rankShares(sim.report)
	realShares := rankShares(real.report)
	var simTot, realTot uint64
	for i := 0; i < heatSkewRanks; i++ {
		simTot += sim.requests[i]
		realTot += real.requests[i]
	}
	for rank := 0; rank < heatSkewRanks; rank++ {
		r.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%d", subtreesOnRank(rank)),
			pct(share(sim.requests[rank], simTot)), pct(simShares[rank]),
			pct(share(real.requests[rank], realTot)), pct(realShares[rank]))
	}
	r.Notef("heat imbalance: sim %s, real %s (max/mean rank load)", f2x(sim.report.Imbalance), f2x(real.report.Imbalance))
	r.Notef("sim %.2fs virtual, real %.2fs wall; with -admin, /heat served the real run's live heat map while it executed", sim.total, real.total)
	return r, nil
}

// rankShares indexes a report's per-rank shares by rank number.
func rankShares(rep obs.HeatReport) []float64 {
	out := make([]float64, heatSkewRanks)
	for _, rl := range rep.Ranks {
		if rl.Rank < heatSkewRanks {
			out[rl.Rank] = rl.Share
		}
	}
	return out
}

// share is n/total, 0 when total is 0.
func share(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}
