package bench

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"cudele"
	"cudele/internal/obs"
	"cudele/internal/workload"
)

func init() {
	register("heatskew", "per-rank heat imbalance under a skewed create storm", HeatSkew)
}

// heatSkewPlacement pins each client's private subtree to a rank: rank 0
// owns five of the eight subtrees, the other three ranks one each — the
// deliberately skewed placement whose imbalance the heat map must expose.
var heatSkewPlacement = []int{0, 0, 0, 0, 0, 1, 2, 3}

// heatSkewRanks is the cluster size (max placement rank + 1).
const heatSkewRanks = 4

// heatSkewOut is one run's measurements: total seconds, per-rank request
// counts from the MDS metrics (the ground truth), the decayed heat
// report (the live signal the balancer would consume), and — when
// sampling is on — the imbalance factor's trajectory over the run.
type heatSkewOut struct {
	total    float64
	requests []uint64
	report   obs.HeatReport
	samples  []heatSample
}

// heatSample is one periodic observation of the rank-load imbalance.
type heatSample struct {
	sec float64 // virtual time of the observation
	imb float64 // max/mean rank load at that instant
}

// heatSkewRun drives len(heatSkewPlacement) clients, each create-storming
// its private subtree pinned per heatSkewPlacement, with heat accounting
// on. The half-life is set long relative to the run so decay barely
// discounts early operations and the heat shares line up with the raw
// request shares — the cross-check the table reports.
//
// A positive sampleEvery additionally runs a sampler proc recording the
// imbalance factor at that period, so the table can show the skew
// building as the hot rank's backlog outlives the cold ranks'. The
// sampler mutates shared state without locks, so it is sim-only; real
// runs pass 0.
func heatSkewRun(sink *Sink, run string, seed int64, perClient int, sampleEvery time.Duration,
	backend cudele.Backend, admin *obs.Admin, dataDir string) (heatSkewOut, error) {
	copts := []cudele.Option{cudele.WithSeed(seed), cudele.WithMDSRanks(heatSkewRanks)}
	if backend == cudele.BackendReal {
		copts = append(copts, cudele.WithBackend(cudele.BackendReal))
		if dataDir != "" {
			copts = append(copts, cudele.WithDataDir(dataDir))
		}
	}
	cl := cudele.NewCluster(copts...)
	sink.start(run, cl)
	cl.EnableHeat(10 * time.Minute)
	if admin != nil && backend == cudele.BackendReal {
		admin.SetSource(cl.AdminSource())
	}

	cs := make([]*cudele.Client, len(heatSkewPlacement))
	for i := range cs {
		cs[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	var jobErr error
	var finished int
	var samples []heatSample
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		for i, c := range cs {
			path := fmt.Sprintf("/job%d", i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				jobErr = err
				return
			}
			if err := cl.Monitor().Place(p, path, heatSkewPlacement[i]); err != nil {
				jobErr = err
				return
			}
		}
		for i, c := range cs {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				if sampleEvery > 0 {
					defer func() { finished++ }()
				}
				dir, err := c.Resolve(cp, fmt.Sprintf("/job%d", i))
				if err != nil {
					jobErr = err
					return
				}
				if _, _, err := workload.CreateMany(cp, c, dir, perClient, "f"); err != nil {
					jobErr = err
				}
			})
		}
		if sampleEvery > 0 {
			eng.Spawn("heat.sampler", func(sp cudele.Proc) {
				for {
					sp.Sleep(sampleEvery)
					loads := make([]float64, heatSkewRanks)
					for _, cell := range cl.Heat().Snapshot(int64(sp.Now())) {
						if cell.Rank >= 0 && cell.Rank < heatSkewRanks {
							loads[cell.Rank] += cell.Load
						}
					}
					samples = append(samples, heatSample{
						sec: sp.Now().Seconds(), imb: imbalanceOf(loads),
					})
					if finished >= len(cs) {
						return
					}
				}
			})
		}
	})
	out := heatSkewOut{total: cl.RunAll()}
	out.samples = samples
	if jobErr != nil {
		return heatSkewOut{}, jobErr
	}
	out.report = cl.HeatReport()
	out.requests = make([]uint64, heatSkewRanks)
	for i := 0; i < heatSkewRanks; i++ {
		out.requests[i] = cl.Metadata().Rank(i).Metrics().Requests
	}
	sink.finish(run, cl)
	return out, reap(cl)
}

// subtreesOnRank counts how many placed subtrees heatSkewPlacement pins
// to rank r.
func subtreesOnRank(r int) int {
	n := 0
	for _, pr := range heatSkewPlacement {
		if pr == r {
			n++
		}
	}
	return n
}

// HeatSkew is the heat-accounting experiment: a create storm over a
// deliberately skewed subtree placement, with the per-rank heat shares
// read off the accountant next to the raw request shares they must
// track. The imbalance factor (max/mean rank load) is the number the
// ROADMAP's future dynamic balancer would act on; "vs even" shows each
// rank's load against a perfectly balanced placement.
func HeatSkew(opts Options) (*Result, error) {
	perClient := opts.scaled(20_000, 200)
	// The run length scales with perClient (rank 0's serial backlog
	// dominates), so a per-create sampling period keeps the trajectory at
	// roughly ten points at any scale.
	sampleEvery := time.Duration(perClient) * 200 * time.Microsecond
	out, err := heatSkewRun(opts.Sink, "heatskew", opts.Seed, perClient, sampleEvery,
		cudele.BackendSim, nil, "")
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID: "heatskew",
		Title: fmt.Sprintf("per-rank heat under a skewed create storm: %d clients x %d creates, subtrees placed %v",
			len(heatSkewPlacement), perClient, heatSkewPlacement),
		Columns: []string{"rank", "subtrees", "requests", "req share", "heat load", "heat share", "vs even"},
	}
	addHeatRows(r, out)
	r.Notef("heat imbalance (max/mean rank load): %s — the signal the heat-driven balancer acts on (see the rebalance experiment)", f2x(out.report.Imbalance))
	if len(out.samples) > 0 {
		points := make([]string, len(out.samples))
		for i, s := range out.samples {
			points[i] = fmt.Sprintf("%.2fs %s", s.sec, f2x(s.imb))
		}
		r.Notef("imbalance over time: %s — rank 0 serves five concurrent client streams from the start, so the skew is visible by the first sample and holds for the whole storm",
			strings.Join(points, ", "))
	}
	r.Notef("runtime %.2fs; heat shares track raw request shares because the decay half-life dwarfs the run", out.total)
	return r, nil
}

// imbalanceOf is max/mean over a dense per-rank load vector, counting
// idle ranks (the balancer's view of the same signal).
func imbalanceOf(loads []float64) float64 {
	max, total := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return max / (total / float64(len(loads)))
}

// addHeatRows renders one run's per-rank table rows.
func addHeatRows(r *Result, out heatSkewOut) {
	var totalReq uint64
	for _, n := range out.requests {
		totalReq += n
	}
	loads := make([]float64, heatSkewRanks)
	shares := make([]float64, heatSkewRanks)
	for _, rl := range out.report.Ranks {
		if rl.Rank < heatSkewRanks {
			loads[rl.Rank] = rl.Load
			shares[rl.Rank] = rl.Share
		}
	}
	even := 1.0 / float64(heatSkewRanks)
	for rank := 0; rank < heatSkewRanks; rank++ {
		reqShare := 0.0
		if totalReq > 0 {
			reqShare = float64(out.requests[rank]) / float64(totalReq)
		}
		r.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%d", subtreesOnRank(rank)),
			fmt.Sprintf("%d", out.requests[rank]), pct(reqShare),
			f0(loads[rank]), pct(shares[rank]), f2x(shares[rank]/even))
	}
}

// heatSkewReal runs the skewed create storm on both backends: the sim
// run is the prediction, the real run the measurement — and, when an
// admin endpoint is armed, the live /heat source while it executes.
func heatSkewReal(opts Options) (*Result, error) {
	perClient := opts.scaled(20_000, 200)
	sim, err := heatSkewRun(opts.Sink, "heatskew-real/sim", opts.Seed, perClient, 0,
		cudele.BackendSim, nil, "")
	if err != nil {
		return nil, err
	}
	dataDir := ""
	if opts.DataDir != "" {
		dataDir = filepath.Join(opts.DataDir, "heatskew")
	}
	real, err := heatSkewRun(opts.Sink, "heatskew-real/real", opts.Seed, perClient, 0,
		cudele.BackendReal, opts.Admin, dataDir)
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID: "heatskew-real",
		Title: fmt.Sprintf("heatskew on the real backend: %d clients x %d creates, subtrees placed %v",
			len(heatSkewPlacement), perClient, heatSkewPlacement),
		Columns: []string{"rank", "subtrees", "sim req share", "sim heat share", "real req share", "real heat share"},
	}
	simShares := rankShares(sim.report)
	realShares := rankShares(real.report)
	var simTot, realTot uint64
	for i := 0; i < heatSkewRanks; i++ {
		simTot += sim.requests[i]
		realTot += real.requests[i]
	}
	for rank := 0; rank < heatSkewRanks; rank++ {
		r.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%d", subtreesOnRank(rank)),
			pct(share(sim.requests[rank], simTot)), pct(simShares[rank]),
			pct(share(real.requests[rank], realTot)), pct(realShares[rank]))
	}
	r.Notef("heat imbalance: sim %s, real %s (max/mean rank load)", f2x(sim.report.Imbalance), f2x(real.report.Imbalance))
	r.Notef("sim %.2fs virtual, real %.2fs wall; with -admin, /heat served the real run's live heat map while it executed", sim.total, real.total)
	return r, nil
}

// rankShares indexes a report's per-rank shares by rank number.
func rankShares(rep obs.HeatReport) []float64 {
	out := make([]float64, heatSkewRanks)
	for _, rl := range rep.Ranks {
		if rl.Rank < heatSkewRanks {
			out[rl.Rank] = rl.Share
		}
	}
	return out
}

// share is n/total, 0 when total is 0.
func share(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}
