package bench

import (
	"sync"
	"testing"
)

// Calibration guard: the headline ratios below were captured from this
// repository's seed tree at Scale 0.05, Seed 1. The simulation is
// deterministic, so any drift here means a change altered the calibrated
// behavior of the default single-rank cluster — exactly what refactors of
// the transport/MDS path must not do. The guard shares one run per figure
// with the shape tests via sync.Once.
const (
	seedFig5RPCs        = 16.84  // rpcs consistency, normalized to append
	seedFig5Nonvolatile = 78.38  // nonvolatile_apply, normalized to append
	seedFig5Volatile    = 1.15   // volatile_apply, normalized to append
	seedFig5Stream      = 10.42  // stream (journal on - off), normalized
	seedFig6aMergeRPC   = 7.64   // create+merge speedup over RPCs, 20 clients
	seedFig6aCreateRPC  = 188.77 // decoupled-create speedup over RPCs, 20 clients

	guardTolerance = 0.03 // relative
)

var (
	fig5Once sync.Once
	fig5Res  *Result
	fig5Err  error

	fig6aOnce sync.Once
	fig6aRes  *Result
	fig6aErr  error
)

func fig5At05() (*Result, error) {
	fig5Once.Do(func() { fig5Res, fig5Err = Run("fig5", Options{Scale: 0.05, Seed: 1}) })
	return fig5Res, fig5Err
}

func fig6aAt05() (*Result, error) {
	fig6aOnce.Do(func() { fig6aRes, fig6aErr = Run("fig6a", Options{Scale: 0.05, Seed: 1}) })
	return fig6aRes, fig6aErr
}

func within(t *testing.T, name string, got, want float64) {
	t.Helper()
	lo, hi := want*(1-guardTolerance), want*(1+guardTolerance)
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want %.2f +/- %.0f%% (seed calibration drifted)",
			name, got, want, guardTolerance*100)
	}
}

func TestCalibrationGuardFig5(t *testing.T) {
	r, err := fig5At05()
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	for _, row := range r.Rows {
		norm[row[1]] = cell(t, row[3])
	}
	within(t, "fig5 rpcs", norm["rpcs"], seedFig5RPCs)
	within(t, "fig5 nonvolatile_apply", norm["nonvolatile_apply"], seedFig5Nonvolatile)
	within(t, "fig5 volatile_apply", norm["volatile_apply"], seedFig5Volatile)
	within(t, "fig5 stream", norm["stream (journal on - off)"], seedFig5Stream)
}

func TestCalibrationGuardFig6a(t *testing.T) {
	r, err := fig6aAt05()
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	rpc, merge, create := cell(t, last[1]), cell(t, last[2]), cell(t, last[3])
	within(t, "fig6a merge/rpc", merge/rpc, seedFig6aMergeRPC)
	within(t, "fig6a create/rpc", create/rpc, seedFig6aCreateRPC)
}
