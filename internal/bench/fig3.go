package bench

import (
	"fmt"
	"time"

	"cudele"
	"cudele/internal/mds"
	"cudele/internal/stats"
	"cudele/internal/workload"
)

func init() {
	register("fig3a", "Journal dispatch-size slowdown vs. clients (Fig 3a)", Fig3a)
	register("fig3b", "Interference slowdown and variability vs. clients (Fig 3b)", Fig3b)
	register("fig3c", "Interference turns local lookups into lookup RPCs (Fig 3c)", Fig3c)
}

// clientCounts is the paper's x-axis for the scaling figures.
var clientCounts = []int{1, 2, 5, 10, 15, 20}

// Fig3a scales parallel creates under four journal configurations:
// journaling off and dispatch sizes 1, 10, and 30 segments (plus the
// paper's "realistic" 40). The y-value is the slowest client's slowdown,
// normalized to 1 client with journaling off (~654 creates/s). The grid —
// the baseline plus clientCounts x configs in row-major order — runs on
// the worker pool.
func Fig3a(opts Options) (*Result, error) {
	perClient := opts.scaled(100_000, 200)
	segEvents := opts.scaled(1024, 64)

	type config struct {
		label    string
		journal  bool
		dispatch int
	}
	configs := []config{
		{"no journal", false, 0},
		{"1 segment", true, 1},
		{"10 segments", true, 10},
		{"30 segments", true, 30},
		{"40 segments", true, 40},
	}

	type spec struct {
		clients int
		cfg     config
	}
	specs := []spec{{clients: 1}} // index 0: 1-client journal-off baseline
	for _, n := range clientCounts {
		for _, cfg := range configs {
			specs = append(specs, spec{clients: n, cfg: cfg})
		}
	}
	times, err := runGrid(opts, len(specs), func(i int) (float64, error) {
		sp := specs[i]
		jc := jobConfig{seed: opts.Seed, clients: sp.clients, perClient: perClient,
			sink: opts.Sink, heat: opts.Heat, run: fmt.Sprintf("fig3a/run%03d", i)}
		if i > 0 {
			jc.journal = sp.cfg.journal
			jc.dispatch = sp.cfg.dispatch
			jc.segEvents = segEvents
		}
		res, err := runCreateJob(jc)
		if err != nil {
			return 0, err
		}
		return res.slowest(), nil
	})
	if err != nil {
		return nil, err
	}
	baseline := times[0]

	r := &Result{
		ID:    "fig3a",
		Title: fmt.Sprintf("slowdown of slowest client, %d creates/client, normalized to 1 client journal-off (%.0f creates/s)", perClient, float64(perClient)/baseline),
		Columns: []string{"clients", "no journal", "1 segment", "10 segments",
			"30 segments", "40 segments"},
	}
	slow := make(map[string][]float64)
	for ni, n := range clientCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for ci, cfg := range configs {
			s := stats.Slowdown(times[1+ni*len(configs)+ci], baseline)
			slow[cfg.label] = append(slow[cfg.label], s)
			row = append(row, f2x(s))
		}
		r.AddRow(row...)
	}
	last := len(clientCounts) - 1
	r.Notef("paper: larger dispatch sizes degrade performance most under load; the no-journal slowdown grows ~0.3x per concurrent client (single-MDS peak ~3000 op/s)")
	r.Notef("measured at 20 clients: no-journal %.1fx, 1 segment %.1fx, 30 segments %.1fx",
		slow["no journal"][last], slow["1 segment"][last], slow["30 segments"][last])
	perClientSlope := (slow["no journal"][last] - 1) / float64(clientCounts[last]-1)
	r.Notef("measured no-journal slowdown per concurrent client: %.2fx (paper ~0.3x)", perClientSlope)
	return r, nil
}

// fig3bConfig is the paper's Fig 3b setup: journal on (dispatch 40),
// strong consistency, an interferer creating files in every private
// directory at t=interfereAt. The grid is the baseline plus
// clientCounts x 3 trials x {no-interference, interference} in row-major
// order.
func fig3bRuns(opts Options, blockPolicy bool) (noInterf, interf map[int][]float64, baseline float64, err error) {
	perClient := opts.scaled(100_000, 200)
	perDir := opts.scaled(1000, 10)
	segEvents := opts.scaled(1024, 64)
	interfereAt := 0.15 * float64(perClient) / 549.0

	type spec struct {
		clients   int
		trial     int
		interfere bool
	}
	specs := []spec{{clients: 1}} // index 0: isolated 1-client baseline
	for _, n := range clientCounts {
		for trial := 0; trial < 3; trial++ {
			specs = append(specs, spec{clients: n, trial: trial, interfere: false})
			specs = append(specs, spec{clients: n, trial: trial, interfere: true})
		}
	}
	id := "fig3b"
	if blockPolicy {
		id = "fig6b"
	}
	times, err := runGrid(opts, len(specs), func(i int) (float64, error) {
		sp := specs[i]
		jc := jobConfig{
			seed: opts.Seed + int64(sp.trial)*101, clients: sp.clients, perClient: perClient,
			journal: true, dispatch: 40, segEvents: segEvents,
			sink: opts.Sink, heat: opts.Heat, run: fmt.Sprintf("%s/run%03d", id, i),
		}
		if i > 0 {
			jc.jitter = time.Second
		}
		if sp.interfere {
			jc.interfereAt = interfereAt
			jc.interferePerDir = perDir
			jc.blockPolicy = blockPolicy
		}
		res, err := runCreateJob(jc)
		if err != nil {
			return 0, err
		}
		return res.slowest(), nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	baseline = times[0]

	noInterf = make(map[int][]float64)
	interf = make(map[int][]float64)
	i := 1
	for _, n := range clientCounts {
		for trial := 0; trial < 3; trial++ {
			noInterf[n] = append(noInterf[n], stats.Slowdown(times[i], baseline))
			interf[n] = append(interf[n], stats.Slowdown(times[i+1], baseline))
			i += 2
		}
	}
	return noInterf, interf, baseline, nil
}

// Fig3b reports the slowdown of the slowest client with and without an
// interfering client, over three trials, normalized to 1 client in
// isolation (~513-549 creates/s with journaling on).
func Fig3b(opts Options) (*Result, error) {
	noInterf, interf, baseline, err := fig3bRuns(opts, false)
	if err != nil {
		return nil, err
	}
	perClient := opts.scaled(100_000, 200)
	r := &Result{
		ID:      "fig3b",
		Title:   fmt.Sprintf("slowdown of slowest client (3 trials), normalized to 1 isolated client (%.0f creates/s)", float64(perClient)/baseline),
		Columns: []string{"clients", "no interference", "sd", "interference", "sd"},
	}
	var slopeNo, slopeIn, sdNo, sdIn []float64
	for _, n := range clientCounts {
		a, b := noInterf[n], interf[n]
		r.AddRow(fmt.Sprintf("%d", n),
			f2x(stats.Mean(a)), f2(stats.StdDev(a)),
			f2x(stats.Mean(b)), f2(stats.StdDev(b)))
		slopeNo = append(slopeNo, stats.Mean(a)/float64(n))
		slopeIn = append(slopeIn, stats.Mean(b)/float64(n))
		sdNo = append(sdNo, stats.StdDev(a))
		sdIn = append(sdIn, stats.StdDev(b))
	}
	r.Notef("paper: interference raises the per-client slowdown (1.67x vs 1.42x) and variability (sd 0.44 vs 0.06); the MDS handles at most ~18 clients of this workload")
	r.Notef("measured: per-client slowdown %.2fx (no interference) vs %.2fx (interference); mean sd %.2f vs %.2f",
		stats.Mean(slopeNo), stats.Mean(slopeIn), stats.Mean(sdNo), stats.Mean(sdIn))
	return r, nil
}

// fig3cSampled is one traced run's time series.
type fig3cSampled struct {
	requests *stats.Series
	lookups  *stats.Series
}

// Fig3c traces the cause of the interference slowdown: once a second
// client touches the directories, capabilities are revoked and clients
// must send lookup() RPCs to the MDS before every create. The rows are a
// time series of MDS request and lookup-RPC rates for an interference run
// and a no-interference run (a 2-run grid).
func Fig3c(opts Options) (*Result, error) {
	perClient := opts.scaled(100_000, 500)
	perDir := opts.scaled(1000, 10)
	nClients := 4
	interfereAt := 0.15 * float64(perClient) / 549.0
	sampleEvery := interfereAt / 4.0

	runTraced := func(run int, interfere bool) (*fig3cSampled, error) {
		jc := jobConfig{
			seed: opts.Seed, clients: nClients, perClient: perClient,
			journal: true, dispatch: 40,
		}
		if interfere {
			jc.interfereAt = interfereAt
			jc.interferePerDir = perDir
		}
		cfg := cudele.DefaultConfig()
		cfg.DispatchSize = jc.dispatch
		cfg.SegmentEvents = opts.scaled(1024, 64)
		cl := cudele.NewCluster(cudele.WithSeed(jc.seed), cudele.WithConfig(cfg))
		runName := fmt.Sprintf("fig3c/run%03d", run)
		opts.Sink.start(runName, cl)
		cl.MDS().SetStream(true)

		out := &fig3cSampled{requests: &stats.Series{}, lookups: &stats.Series{}}
		done := false
		eng := cl.Runtime()

		clients := make([]*cudele.Client, nClients)
		for i := range clients {
			clients[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
		}
		intr := cl.NewClient("intruder")

		cl.Go("main", func(p cudele.Proc) {
			dirs := make([]cudele.Ino, nClients)
			for i, c := range clients {
				d, err := c.Mkdir(p, cudele.RootIno, fmt.Sprintf("dir%d", i), 0755)
				if err != nil {
					return
				}
				dirs[i] = d
			}
			// Sampler.
			eng.Spawn("sampler", func(sp cudele.Proc) {
				for !done {
					m := cl.MDS().Metrics()
					out.requests.Add(sp.Now().Seconds(), float64(m.Requests))
					out.lookups.Add(sp.Now().Seconds(), float64(m.ByOp[mds.OpLookup]))
					sp.Sleep(time.Duration(sampleEvery * 1e9))
				}
			})
			if interfere {
				eng.Spawn("intruder", func(ip cudele.Proc) {
					ip.Sleep(time.Duration(interfereAt * 1e9))
					workload.Interfere(ip, intr, dirs, perDir)
				})
			}
			grp := eng.NewGroup()
			for i, c := range clients {
				i, c := i, c
				grp.Go(c.Name(), func(cp cudele.Proc) {
					workload.CreateMany(cp, c, dirs[i], perClient, "f")
				})
			}
			grp.Wait(p)
			done = true
		})
		cl.RunAll()
		opts.Sink.finish(runName, cl)
		if err := reap(cl); err != nil {
			return nil, err
		}
		return out, nil
	}

	traces, err := runGrid(opts, 2, func(i int) (*fig3cSampled, error) {
		return runTraced(i, i == 1)
	})
	if err != nil {
		return nil, err
	}
	plain, noisy := traces[0], traces[1]

	r := &Result{
		ID:    "fig3c",
		Title: fmt.Sprintf("MDS load over time, %d clients x %d creates; interferer at t=%.0fs", nClients, perClient, interfereAt),
		Columns: []string{"t (s)", "reqs/s (no interf)", "lookups/s (no interf)",
			"reqs/s (interf)", "lookups/s (interf)"},
	}
	pr, pl := plain.requests.Rates(), plain.lookups.Rates()
	nr, nl := noisy.requests.Rates(), noisy.lookups.Rates()
	rows := pr.Len()
	if nr.Len() < rows {
		rows = nr.Len()
	}
	for i := 0; i < rows; i++ {
		r.AddRow(f1(pr.T[i]), f0(pr.V[i]), f0(pl.V[i]), f0(nr.V[i]), f0(nl.V[i]))
	}
	// Summaries before/after the interferer arrives.
	afterLookups := func(s *stats.Series) float64 {
		var after []float64
		for i := range s.T {
			if s.T[i] > interfereAt+sampleEvery {
				after = append(after, s.V[i])
			}
		}
		if len(after) == 0 {
			return 0
		}
		return stats.Mean(after)
	}
	r.Notef("paper: after interference, the directory inode leaves read-caching and clients send lookup()s to the MDS; extra requests raise MDS throughput while client performance suffers")
	r.Notef("measured lookup RPCs/s after interferer: %.0f (interference) vs %.0f (no interference)",
		afterLookups(nl), afterLookups(pl))
	return r, nil
}
