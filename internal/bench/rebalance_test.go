package bench

import (
	"strings"
	"testing"
)

// TestRebalanceConverges is the acceptance gate for the elastic
// balancer: starting from every subtree on rank 0, the final sampled
// imbalance must land under 1.5x of even, actual migrations must have
// committed, and the frozen control must still show the full skew.
func TestRebalanceConverges(t *testing.T) {
	r, err := Run("rebalance", Options{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no balancer samples")
	}
	last := r.Rows[len(r.Rows)-1]
	if imb := cell(t, last[2]); imb >= 1.5 {
		t.Errorf("final imbalance = %.3f, want < 1.5\n%s", imb, r.Render())
	}
	if moves := cell(t, last[4]); moves == 0 {
		t.Errorf("no subtree migrations committed\n%s", r.Render())
	}
	// The frozen control keeps the full 4.00x skew (all load on one of
	// four ranks); the note carries it.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "frozen control") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing frozen-control note:\n%s", r.Render())
	}
}

// TestRebalanceDeterministic asserts the experiment — whose table
// embeds the balancer's own sampled loads — renders byte-identically
// across runs and worker counts.
func TestRebalanceDeterministic(t *testing.T) {
	a, err := Run("rebalance", Options{Scale: 0.01, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("rebalance", Options{Scale: 0.01, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("rebalance not deterministic:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			a.Render(), b.Render())
	}
}
