package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"cudele"
)

// This file is the real-backend bench path: the same create-heavy
// workload as Fig 3a executed twice per grid point — once on the
// simulator (the prediction) and once on real goroutines and wall
// clocks (the measurement) — rendered side by side. The comparison is
// honest about what the two numbers mean: the protocol work (RPCs,
// journal events, capability churn) is identical; the simulator charges
// calibrated device costs in virtual time while the real backend pays
// actual sleeps, goroutine scheduling, and — with a data dir — real
// fsyncs. Real runs execute strictly sequentially so one run's load
// never distorts another's wall clock, and the grid is reduced (three
// client counts, three journal configs) because real time is paid for
// real.

// realClientCounts is the reduced x-axis for real-backend runs.
var realClientCounts = []int{1, 2, 5}

// RealIDs lists the experiments RunReal supports.
func RealIDs() []string { return []string{"fig3a", "heatskew"} }

// RunReal executes an experiment on the real backend, side by side with
// its simulated prediction. fig3a is the paper's central scaling figure
// and the one whose workload shape (create storms under journal
// configurations) exercises every runtime seam — transport, journal
// streaming, object store, client caps. heatskew is the observability
// workload: a skewed create storm whose live /heat map (with -admin)
// must match the post-run tables.
func RunReal(id string, opts Options) (*Result, error) {
	switch id {
	case "fig3a":
		return fig3aReal(opts)
	case "heatskew":
		return heatSkewReal(opts)
	}
	return nil, fmt.Errorf("bench: experiment %q has no real-backend mode (supported: %v)", id, RealIDs())
}

// fig3aReal runs the Fig 3a create workload on both backends and
// reports predicted vs measured seconds per grid point.
func fig3aReal(opts Options) (*Result, error) {
	perClient := opts.scaled(100_000, 200)
	segEvents := opts.scaled(1024, 64)

	type config struct {
		label    string
		journal  bool
		dispatch int
	}
	configs := []config{
		{"no journal", false, 0},
		{"1 segment", true, 1},
		{"30 segments", true, 30},
	}
	type spec struct {
		clients int
		cfg     config
	}
	var specs []spec
	for _, n := range realClientCounts {
		for _, cfg := range configs {
			specs = append(specs, spec{clients: n, cfg: cfg})
		}
	}

	job := func(i int, backend cudele.Backend) (float64, error) {
		sp := specs[i]
		jc := jobConfig{
			seed: opts.Seed, clients: sp.clients, perClient: perClient,
			journal: sp.cfg.journal, dispatch: sp.cfg.dispatch, segEvents: segEvents,
			backend: backend, heat: opts.Heat,
			sink: opts.Sink, run: fmt.Sprintf("fig3a-real/%s/run%02d", backend, i),
		}
		if backend == cudele.BackendReal {
			jc.admin = opts.Admin
			if opts.DataDir != "" {
				// Each run owns a fresh subdirectory: recovery would
				// otherwise reload the previous run's objects.
				jc.dataDir = filepath.Join(opts.DataDir, fmt.Sprintf("run%02d", i))
			}
		}
		res, err := runCreateJob(jc)
		if err != nil {
			return 0, err
		}
		return res.total, nil
	}

	// Predictions can use the worker pool (independent simulations);
	// real runs are strictly sequential.
	predicted, err := runGrid(opts, len(specs), func(i int) (float64, error) {
		return job(i, cudele.BackendSim)
	})
	if err != nil {
		return nil, err
	}
	measured := make([]float64, len(specs))
	wallStart := time.Now()
	for i := range specs {
		m, err := job(i, cudele.BackendReal)
		if err != nil {
			return nil, err
		}
		measured[i] = m
	}
	realWall := time.Since(wallStart)

	r := &Result{
		ID: "fig3a-real",
		Title: fmt.Sprintf("fig3a on the real backend: sim-predicted vs wall-clock-measured job time, %d creates/client",
			perClient),
		Columns: []string{"clients", "config", "sim predicted (s)", "real measured (s)", "real/sim"},
	}
	for i, sp := range specs {
		ratio := 0.0
		if predicted[i] > 0 {
			ratio = measured[i] / predicted[i]
		}
		r.AddRow(fmt.Sprintf("%d", sp.clients), sp.cfg.label,
			fmt.Sprintf("%.3f", predicted[i]), fmt.Sprintf("%.3f", measured[i]), f2x(ratio))
	}
	r.Notef("identical protocol work per cell; sim charges calibrated device costs in virtual time, real pays actual sleeps and goroutine scheduling%s",
		map[bool]string{true: " plus fsync (data dir set)", false: ""}[opts.DataDir != ""])
	r.Notef("real runs executed sequentially in %.1fs wall; real-backend timing varies run to run (the sim column is the reproducible one)", realWall.Seconds())
	return r, nil
}
