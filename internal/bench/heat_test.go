package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHeatDoesNotPerturb extends the observation contract to heat
// accounting: the same experiment, same seed, same scale must render a
// byte-identical table with -heat on — the accountant reads the virtual
// clock but never charges time or consumes randomness.
func TestHeatDoesNotPerturb(t *testing.T) {
	opts := Options{Scale: 0.002, Seed: 1, Workers: 2}
	plain, err := Run("fig3a", opts)
	if err != nil {
		t.Fatal(err)
	}
	heated := opts
	heated.Heat = true
	accounted, err := Run("fig3a", heated)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != accounted.Render() {
		t.Fatalf("heat accounting perturbed the table:\n--- without heat ---\n%s\n--- with heat ---\n%s",
			plain.Render(), accounted.Render())
	}
}

// TestHeatSkewDeterministic asserts the heatskew experiment — whose
// table includes the decayed heat values themselves — renders
// byte-identically across runs: heat on simulated time is a pure
// function of the schedule.
func TestHeatSkewDeterministic(t *testing.T) {
	opts := Options{Scale: 0.002, Seed: 1}
	a, err := Run("heatskew", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("heatskew", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("heatskew not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a.Render(), b.Render())
	}
}

// TestHeatSkewExposesImbalance asserts the skewed placement actually
// shows up in the heat report: rank 0 (five subtrees) must carry the
// largest share and the imbalance factor must exceed 2 (5 of 8 subtrees
// on one of four ranks ≈ 2.5x even).
func TestHeatSkewExposesImbalance(t *testing.T) {
	opts := Options{Scale: 0.002, Seed: 1}
	out, err := heatSkewRun(nil, "", opts.Seed, opts.scaled(20_000, 200), 0, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if out.report.Imbalance < 2.0 {
		t.Errorf("imbalance = %.2f, want > 2.0 for placement %v", out.report.Imbalance, heatSkewPlacement)
	}
	shares := rankShares(out.report)
	for r := 1; r < heatSkewRanks; r++ {
		if shares[0] <= shares[r] {
			t.Errorf("rank 0 share %.3f not above rank %d share %.3f", shares[0], r, shares[r])
		}
	}
	// Heat shares must track raw request shares (half-life dwarfs run).
	var total uint64
	for _, n := range out.requests {
		total += n
	}
	for r := 0; r < heatSkewRanks; r++ {
		reqShare := float64(out.requests[r]) / float64(total)
		if diff := shares[r] - reqShare; diff > 0.02 || diff < -0.02 {
			t.Errorf("rank %d: heat share %.3f vs request share %.3f (off by %.3f)", r, shares[r], reqShare, diff)
		}
	}
}

// TestRealBackendSinkParity is the -trace/-metrics-under-real parity
// test: RunReal with a sink must register both the simulated prediction
// runs and the real measurement runs, with run-labeled metrics and a
// parseable merged trace — observation is backend-agnostic.
func TestRealBackendSinkParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real-backend runs take wall-clock seconds")
	}
	opts := Options{Scale: 0.001, Seed: 1, DataDir: t.TempDir(), Sink: NewSink(), Heat: true}
	if _, err := RunReal("fig3a", opts); err != nil {
		t.Fatal(err)
	}
	if n := opts.Sink.Runs(); n < 2*len(realClientCounts)*3 {
		t.Fatalf("sink registered %d runs, want %d (sim + real per grid point)",
			n, 2*len(realClientCounts)*3)
	}
	var mb bytes.Buffer
	if err := opts.Sink.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	dump := mb.String()
	for _, want := range []string{
		`run="fig3a-real/sim/run00"`,
		`run="fig3a-real/real/run00"`,
		"cudele_mds_requests_total",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
	var tb bytes.Buffer
	if err := opts.Sink.WriteChrome(&tb); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(tb.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events from real-backend runs")
	}
}
