package bench

import (
	"fmt"
	"time"

	"cudele"
	"cudele/internal/sim"
	"cudele/internal/stats"
	"cudele/internal/workload"
)

func init() {
	register("fig6a", "Parallel creates: decoupled namespaces vs RPCs (Fig 6a)", Fig6a)
	register("fig6b", "Blocking interfering clients with the Cudele API (Fig 6b)", Fig6b)
	register("fig6c", "Namespace-sync interval vs overhead (Fig 6c)", Fig6c)
}

// decoupledJob runs n clients that each decouple a private subtree and
// create perClient files locally; with merge, each ships its journal to
// the MDS the moment it finishes (so journals land together, the paper's
// pessimistic arrival model). It returns the total job seconds.
func decoupledJob(seed int64, n, perClient int, merge bool, stagger time.Duration) (float64, error) {
	cl := cudele.NewCluster(cudele.WithSeed(seed))
	cl.MDS().SetStream(true)
	clients := make([]*cudele.Client, n)
	for i := range clients {
		clients[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	var jobErr error
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		for i, c := range clients {
			path := fmt.Sprintf("/job%d", i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				jobErr = err
				return
			}
			pol := &cudele.Policy{
				Consistency: cudele.ConsInvisible, Durability: cudele.DurNone,
				AllocatedInodes: perClient + 10,
			}
			if merge {
				pol.Consistency = cudele.ConsWeak
			}
			if _, err := cl.DecouplePolicy(p, c, path, pol); err != nil {
				jobErr = err
				return
			}
		}
		for i, c := range clients {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				if stagger > 0 {
					cp.Sleep(time.Duration(i) * stagger)
				}
				root, _ := c.DecoupledRoot()
				if _, err := workload.CreateManyLocal(cp, c, root, perClient, "f"); err != nil {
					jobErr = err
					return
				}
				if merge {
					if _, err := c.VolatileApply(cp); err != nil {
						jobErr = err
					}
				}
			})
		}
	})
	total := cl.RunAll()
	if jobErr != nil {
		return 0, jobErr
	}
	return total, reap(cl)
}

// Fig6a compares three subtree semantics for the parallel-create
// workload: strong/global over RPCs, decoupled create+merge
// (weak/local), and decoupled create only (invisible/local). The y-value
// is total-job throughput normalized to 1 client using RPCs.
func Fig6a(opts Options) (*Result, error) {
	perClient := opts.scaled(100_000, 200)
	segEvents := opts.scaled(1024, 64)

	// Grid: index 0 is the 1-client RPC baseline; then per client count the
	// three semantics (rpcs, create+merge, create) in row-major order.
	const perRow = 3
	runs, err := runGrid(opts, 1+perRow*len(clientCounts), func(i int) (float64, error) {
		if i == 0 {
			base, err := runCreateJob(jobConfig{seed: opts.Seed, clients: 1, perClient: perClient, journal: true, dispatch: 40, segEvents: segEvents})
			if err != nil {
				return 0, err
			}
			return base.slowest(), nil
		}
		n := clientCounts[(i-1)/perRow]
		switch (i - 1) % perRow {
		case 0:
			rpc, err := runCreateJob(jobConfig{seed: opts.Seed, clients: n, perClient: perClient, journal: true, dispatch: 40, segEvents: segEvents})
			if err != nil {
				return 0, err
			}
			return rpc.total, nil
		case 1:
			return decoupledJob(opts.Seed, n, perClient, true, 0)
		default:
			return decoupledJob(opts.Seed, n, perClient, false, 0)
		}
	})
	if err != nil {
		return nil, err
	}
	baseRate := float64(perClient) / runs[0]

	r := &Result{
		ID:      "fig6a",
		Title:   fmt.Sprintf("total-job throughput speedup over 1 RPC client (%.0f creates/s), %d creates/client", baseRate, perClient),
		Columns: []string{"clients", "rpcs", "decoupled: create+merge", "decoupled: create"},
	}
	var rpcsAt, mergeAt, createAt []float64
	for ni, n := range clientCounts {
		row := runs[1+ni*perRow : 1+(ni+1)*perRow]
		rpcSpeed := float64(n*perClient) / row[0] / baseRate
		mergeSpeed := float64(n*perClient) / row[1] / baseRate
		createSpeed := float64(n*perClient) / row[2] / baseRate

		rpcsAt = append(rpcsAt, rpcSpeed)
		mergeAt = append(mergeAt, mergeSpeed)
		createAt = append(createAt, createSpeed)
		r.AddRow(fmt.Sprintf("%d", n), f2x(rpcSpeed), f2x(mergeSpeed), f2x(createSpeed))
	}
	last := len(clientCounts) - 1
	r.Notef("paper at 20 clients: RPCs flattens ~4.5x, create+merge ~15x (3.37x over RPCs), create scales linearly (91.7x over RPCs)")
	r.Notef("measured at %d clients: RPCs %.1fx, create+merge %.1fx (%.2fx over RPCs), create %.1fx (%.1fx over RPCs)",
		clientCounts[last], rpcsAt[last], mergeAt[last], mergeAt[last]/rpcsAt[last],
		createAt[last], createAt[last]/rpcsAt[last])
	return r, nil
}

// Fig6b adds the interfere-block policy to the Fig 3b experiment: one
// subtree allows interference, the other returns -EBUSY, isolating the
// owners' performance.
func Fig6b(opts Options) (*Result, error) {
	noInterf, interf, baseline, err := fig3bRuns(opts, false)
	if err != nil {
		return nil, err
	}
	_, blocked, _, err := fig3bRuns(opts, true)
	if err != nil {
		return nil, err
	}
	perClient := opts.scaled(100_000, 200)
	r := &Result{
		ID:    "fig6b",
		Title: fmt.Sprintf("slowdown of slowest client (3 trials), normalized to 1 isolated client (%.0f creates/s)", float64(perClient)/baseline),
		Columns: []string{"clients", "no interference", "sd", "interference", "sd",
			"block interference", "sd"},
	}
	summary := func(m map[int][]float64) (slope, sd float64) {
		var slopes, sds []float64
		for _, n := range clientCounts {
			slopes = append(slopes, stats.Mean(m[n])/float64(n))
			sds = append(sds, stats.StdDev(m[n]))
		}
		return stats.Mean(slopes), stats.Mean(sds)
	}
	for _, n := range clientCounts {
		a, b, c := noInterf[n], interf[n], blocked[n]
		r.AddRow(fmt.Sprintf("%d", n),
			f2x(stats.Mean(a)), f2(stats.StdDev(a)),
			f2x(stats.Mean(b)), f2(stats.StdDev(b)),
			f2x(stats.Mean(c)), f2(stats.StdDev(c)))
	}
	sa, da := summary(noInterf)
	sb, db := summary(interf)
	sc, dc := summary(blocked)
	r.Notef("paper: no interference 1.42x/client sd 0.06; interference 1.67x/client sd 0.44; block 1.34x/client sd 0.09 (block ~ no interference, with visible reject overhead at small clusters)")
	r.Notef("measured per-client slowdown (sd): no interference %.2fx (%.2f); interference %.2fx (%.2f); block %.2fx (%.2f)",
		sa, da, sb, db, sc, dc)
	return r, nil
}

// Fig6c sweeps the namespace-sync interval for a single decoupled client
// writing updates: syncing too often pays the fork pause repeatedly;
// syncing too rarely writes huge journals whose final drain lands on the
// critical path. The paper's optimum is a 10-second interval at ~2%
// overhead.
func Fig6c(opts Options) (*Result, error) {
	n := opts.scaled(1_000_000, 5_000)
	intervals := []float64{1, 2, 5, 10, 15, 20, 25}

	cfgBase := cudele.DefaultConfig()
	tBase := float64(n) * cfgBase.ClientAppendTime.Seconds()

	r := &Result{
		ID:      "fig6c",
		Title:   fmt.Sprintf("overhead of namespace sync for %d updates (base runtime %.1f s)", n, tBase),
		Columns: []string{"sync interval (s)", "runtime (s)", "overhead", "pauses", "avg sync (MB)"},
	}
	type syncRun struct {
		total   float64
		pauses  int
		shipped int
	}
	syncRuns, err := runGrid(opts, len(intervals), func(gi int) (syncRun, error) {
		interval := intervals[gi]
		cl := cudele.NewCluster(cudele.WithSeed(opts.Seed))
		c := cl.NewClient("client.0")
		var runErr error
		var pauses int
		var shipped int
		var total float64
		cl.Run(func(p cudele.Proc) {
			if _, err := c.MkdirAll(p, "/exp", 0755); err != nil {
				runErr = err
				return
			}
			pol := &cudele.Policy{
				Consistency: cudele.ConsInvisible, Durability: cudele.DurLocal,
				AllocatedInodes: n + 10,
			}
			if _, err := cl.DecouplePolicy(p, c, "/exp", pol); err != nil {
				runErr = err
				return
			}
			root, _ := c.DecoupledRoot()
			lastSync := p.Now()
			step := time.Duration(interval * 1e9)
			for i := 0; i < n; i++ {
				if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%07d", i), 0644); err != nil {
					runErr = err
					return
				}
				if p.Now()-lastSync >= sim.Time(step) {
					if _, k, err := c.SyncNow(p); err != nil {
						runErr = err
						return
					} else {
						shipped += k
					}
					lastSync = p.Now()
				}
			}
			// Final sync and drain are on the critical path.
			if _, k, err := c.SyncNow(p); err != nil {
				runErr = err
				return
			} else {
				shipped += k
			}
			if err := c.WaitSyncDrain(p); err != nil {
				runErr = err
				return
			}
			// The job is done once the final drain lands; the MDS
			// keeps applying partial updates in the background.
			total = p.Now().Seconds()
			pauses, _ = c.SyncStats()
		})
		if runErr != nil {
			return syncRun{}, runErr
		}
		return syncRun{total: total, pauses: pauses, shipped: shipped}, reap(cl)
	})
	if err != nil {
		return nil, err
	}
	var overheads []float64
	for gi, interval := range intervals {
		sr := syncRuns[gi]
		overhead := (sr.total - tBase) / tBase
		overheads = append(overheads, overhead)
		avgMB := 0.0
		if sr.pauses > 0 {
			avgMB = float64(sr.shipped) * 2500 / float64(sr.pauses) / 1e6
		}
		r.AddRow(f0(interval), f2(sr.total), pct(overhead), fmt.Sprintf("%d", sr.pauses), f1(avgMB))
	}
	// Locate the measured optimum.
	best := 0
	for i := range overheads {
		if overheads[i] < overheads[best] {
			best = i
		}
	}
	r.Notef("paper: ~9%% overhead at 1 s, optimum 2%% at 10 s, rising again at 25 s (3-4 pauses of ~678 MB journals)")
	r.Notef("measured: optimum at %.0f s with %.1f%% overhead; 1 s costs %.1f%%; %.0f s costs %.1f%%",
		intervals[best], overheads[best]*100, overheads[0]*100,
		intervals[len(intervals)-1], overheads[len(overheads)-1]*100)
	return r, nil
}
