package bench

import (
	"strings"
	"testing"
)

// TestRunRealUnsupported checks the error contract for experiments with
// no real-backend mode.
func TestRunRealUnsupported(t *testing.T) {
	if _, err := RunReal("fig2", Options{Scale: 0.01, Seed: 1}); err == nil {
		t.Fatal("RunReal(fig2) = nil error, want unsupported")
	} else if !strings.Contains(err.Error(), "fig3a") {
		t.Fatalf("error %q does not name the supported set", err)
	}
}

// TestFig3aRealSmoke runs the side-by-side fig3a at the smallest
// meaningful scale — the CI real-backend smoke. It asserts shape and
// sanity (positive timings), not absolute latency: real measurements
// are machine-dependent by design.
func TestFig3aRealSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-backend smoke takes wall-clock seconds")
	}
	opts := Options{Scale: 0.001, Seed: 1, DataDir: t.TempDir()}
	res, err := RunReal("fig3a", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig3a-real" {
		t.Fatalf("result id = %q", res.ID)
	}
	wantRows := len(realClientCounts) * 3
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	if len(res.Columns) != 5 {
		t.Fatalf("got %d columns, want 5 (clients, config, sim, real, ratio)", len(res.Columns))
	}
	for _, row := range res.Rows {
		if row[2] == "0.000" || row[3] == "0.000" {
			t.Fatalf("zero timing in row %v", row)
		}
	}
	t.Logf("\n%s", res.Render())
}
