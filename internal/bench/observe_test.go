package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the Chrome trace-event JSON schema for parsing.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

// TestTracingDoesNotPerturb is the tentpole invariant: observation must
// not change the simulation. The same experiment, same seed, same scale
// must render a byte-identical table whether or not a sink is attached —
// tracing charges no virtual time and consumes no randomness. The traced
// run must also actually observe something: a parseable Chrome trace
// with spans from at least the transport, journal, and rados subsystems,
// and a metrics dump that includes MDS CPU utilization.
func TestTracingDoesNotPerturb(t *testing.T) {
	opts := Options{Scale: 0.002, Seed: 1, Workers: 2}
	plain, err := Run("fig3a", opts)
	if err != nil {
		t.Fatal(err)
	}

	traced := opts
	traced.Sink = NewSink()
	observed, err := Run("fig3a", traced)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Render() != observed.Render() {
		t.Fatalf("tracing perturbed the table:\n--- without sink ---\n%s\n--- with sink ---\n%s",
			plain.Render(), observed.Render())
	}

	if n := traced.Sink.Runs(); n == 0 {
		t.Fatal("sink registered no runs")
	}

	// The trace must be valid Chrome trace-event JSON with spans from at
	// least three subsystems.
	var buf bytes.Buffer
	if err := traced.Sink.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := traced.Sink.Merged().Cats()
	for _, want := range []string{"transport", "journal", "rados", "client"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans recorded (have %v)", want, cats)
		}
	}

	// The metrics dump must include the MDS CPU utilization gauge, per
	// run, in Prometheus text format.
	var mb bytes.Buffer
	if err := traced.Sink.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	dump := mb.String()
	for _, want := range []string{
		"# TYPE cudele_mds_cpu_utilization gauge",
		`cudele_mds_cpu_utilization{daemon="mds.0",run="fig3a/run000"}`,
		"cudele_mds_requests_total",
		"cudele_rados_writes_total",
		"cudele_client_rpc_latency_seconds",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestSinkDeterministicAcrossWorkers pins the export side of the
// determinism contract: the merged trace and metrics dump are
// byte-identical whether the grid ran sequentially or on a worker pool,
// because exports sort runs by name and each run is itself
// deterministic.
func TestSinkDeterministicAcrossWorkers(t *testing.T) {
	exportAt := func(workers int) (string, string) {
		opts := Options{Scale: 0.002, Seed: 1, Workers: workers, Sink: NewSink()}
		if _, err := Run("multimds", opts); err != nil {
			t.Fatal(err)
		}
		var tb, mb bytes.Buffer
		if err := opts.Sink.WriteChrome(&tb); err != nil {
			t.Fatal(err)
		}
		if err := opts.Sink.WriteMetrics(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), mb.String()
	}
	seqTrace, seqMetrics := exportAt(1)
	parTrace, parMetrics := exportAt(4)
	if seqTrace != parTrace {
		t.Error("trace JSON differs between sequential and parallel execution")
	}
	if seqMetrics != parMetrics {
		t.Error("metrics dump differs between sequential and parallel execution")
	}
}
