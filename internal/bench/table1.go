package bench

import (
	"cudele/internal/policy"
)

func init() {
	register("table1", "Consistency/durability spectrum from composed mechanisms (Table I)", Table1)
}

// Table1 regenerates Table I: for every (durability, consistency) cell,
// the mechanism composition the policy compiler emits.
func Table1(opts Options) (*Result, error) {
	r := &Result{
		ID:      "table1",
		Title:   "mechanism composition per (durability, consistency) cell",
		Columns: []string{"D \\ C", "invisible", "weak", "strong"},
	}
	for _, d := range []policy.Durability{policy.DurNone, policy.DurLocal, policy.DurGlobal} {
		row := []string{d.String()}
		for _, c := range []policy.Consistency{policy.ConsInvisible, policy.ConsWeak, policy.ConsStrong} {
			comp, err := policy.Compile(c, d)
			if err != nil {
				return nil, err
			}
			if err := policy.ValidateComposition(comp); err != nil {
				return nil, err
			}
			row = append(row, comp.String())
		}
		r.AddRow(row...)
	}
	r.Notef("presets: POSIX/CephFS/IndexFS=(strong,global), BatchFS=(weak,local), DeltaFS=(invisible,local), RAMDisk=(weak,none)")
	return r, nil
}
