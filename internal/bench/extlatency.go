package bench

import (
	"fmt"
	"time"

	"cudele"
	"cudele/internal/stats"
	"cudele/internal/workload"
)

func init() {
	register("ext-latency", "EXTENSION: per-op create latency under interference and blocking", ExtLatency)
}

// ExtLatency is not a paper figure: it extends Fig 6b with the per-RPC
// latency distribution the paper's throughput plots imply. Owners' create
// latency is measured (p50/p99/max) in three regimes: isolated,
// interfering client allowed, interfering client blocked with -EBUSY.
// Blocking should restore near-isolated tail latency.
func ExtLatency(opts Options) (*Result, error) {
	perClient := opts.scaled(20_000, 500)
	perDir := opts.scaled(1000, 20)
	nClients := 6

	run := func(interfere, block bool) (*stats.Histogram, error) {
		cfg := cudele.DefaultConfig()
		cl := cudele.NewCluster(cudele.WithSeed(opts.Seed), cudele.WithConfig(cfg))
		cl.MDS().SetStream(true)
		clients := make([]*cudele.Client, nClients)
		for i := range clients {
			clients[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
		}
		intr := cl.NewClient("intruder")
		eng := cl.Runtime()
		var setupErr error
		cl.Go("main", func(p cudele.Proc) {
			dirs := make([]cudele.Ino, nClients)
			for i, c := range clients {
				d, err := c.Mkdir(p, cudele.RootIno, fmt.Sprintf("dir%d", i), 0755)
				if err != nil {
					setupErr = err
					return
				}
				dirs[i] = d
				if block {
					pol := &cudele.Policy{
						Consistency: cudele.ConsStrong, Durability: cudele.DurGlobal,
						AllocatedInodes: 100, Interfere: cudele.InterfereBlock,
					}
					if _, err := cl.Monitor().RegisterPolicy(p, fmt.Sprintf("/dir%d", i), pol, c.Name()); err != nil {
						setupErr = err
						return
					}
				}
			}
			for i, c := range clients {
				i, c := i, c
				eng.Spawn(c.Name(), func(cp cudele.Proc) {
					workload.CreateMany(cp, c, dirs[i], perClient, "f")
				})
			}
			if interfere {
				eng.Spawn("intruder", func(ip cudele.Proc) {
					ip.Sleep(2 * time.Second)
					workload.Interfere(ip, intr, dirs, perDir)
				})
			}
		})
		cl.RunAll()
		if setupErr != nil {
			return nil, setupErr
		}
		merged := &stats.Histogram{}
		for _, c := range clients {
			merged.Merge(c.CreateLatency())
		}
		return merged, reap(cl)
	}

	regimes := []struct{ interfere, block bool }{
		{false, false}, {true, false}, {true, true},
	}
	hists, err := runGrid(opts, len(regimes), func(i int) (*stats.Histogram, error) {
		return run(regimes[i].interfere, regimes[i].block)
	})
	if err != nil {
		return nil, err
	}
	isolated, allowed, blocked := hists[0], hists[1], hists[2]

	r := &Result{
		ID:      "ext-latency",
		Title:   fmt.Sprintf("owner RPC latency, %d clients x %d creates (extension, not a paper figure)", nClients, perClient),
		Columns: []string{"regime", "creates", "mean", "p50", "p99", "max"},
	}
	row := func(name string, h *stats.Histogram) {
		r.AddRow(name, fmt.Sprintf("%d", h.Count()),
			h.Mean().Round(time.Microsecond).String(),
			h.Quantile(0.5).Round(time.Microsecond).String(),
			h.Quantile(0.99).Round(time.Microsecond).String(),
			h.Max().Round(time.Microsecond).String())
	}
	row("isolated", isolated)
	row("interference (allow)", allowed)
	row("interference (block)", blocked)
	r.Notef("extension of Fig 6b: blocking interferers should restore near-isolated owner latency; with allow, owners pay an extra lookup RPC per create after revocation")
	r.Notef("measured p99: isolated %v, allow %v, block %v",
		isolated.Quantile(0.99).Round(time.Microsecond),
		allowed.Quantile(0.99).Round(time.Microsecond),
		blocked.Quantile(0.99).Round(time.Microsecond))
	return r, nil
}
