package bench

import (
	"testing"

	"cudele"
)

// TestNewCellsBeatEveryOriginal pins the experiment's acceptance
// criterion: each cell beyond Table I beats every one of the nine
// original compositions on at least one workload — speculation on the
// validated create burst, strong-eventual on the lossy merge storm.
func TestNewCellsBeatEveryOriginal(t *testing.T) {
	const burstN, batches, perBatch = 2_000, 8, 250
	type cellOut struct {
		cell string
		out  newCellsOut
	}
	var originals, specs, ses []cellOut
	for _, cons := range newCellsCons {
		for _, dur := range newCellsDur {
			b, err := newCellsBurst(1, cons, dur, burstN)
			if err != nil {
				t.Fatalf("burst %v/%v: %v", cons, dur, err)
			}
			s, err := newCellsStorm(1, cons, dur, batches, perBatch)
			if err != nil {
				t.Fatalf("storm %v/%v: %v", cons, dur, err)
			}
			co := cellOut{cons.String() + "/" + dur.String(),
				newCellsOut{burstSec: b.burstSec, stormSec: s.stormSec}}
			switch cons {
			case cudele.ConsSpeculative:
				specs = append(specs, co)
			case cudele.ConsStrongEventual:
				ses = append(ses, co)
			default:
				originals = append(originals, co)
			}
		}
	}
	if len(originals) != 9 || len(specs) != 3 || len(ses) != 3 {
		t.Fatalf("cell partition = %d/%d/%d, want 9/3/3", len(originals), len(specs), len(ses))
	}
	for _, sp := range specs {
		for _, o := range originals {
			if sp.out.burstSec >= o.out.burstSec {
				t.Errorf("%s burst %.3fs does not beat %s's %.3fs",
					sp.cell, sp.out.burstSec, o.cell, o.out.burstSec)
			}
		}
	}
	for _, se := range ses {
		for _, o := range originals {
			if se.out.stormSec >= o.out.stormSec {
				t.Errorf("%s storm %.3fs does not beat %s's %.3fs",
					se.cell, se.out.stormSec, o.cell, o.out.stormSec)
			}
		}
	}
}
