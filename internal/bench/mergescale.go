package bench

import (
	"fmt"
	"time"

	"cudele"
	"cudele/internal/workload"
)

func init() {
	register("mergescale", "Concurrent journal merges: all-at-once vs staggered vs chunked-fair", MergeScale)
}

// mergeScaleClients are the concurrent-merger counts the experiment
// sweeps.
var mergeScaleClients = []int{2, 4, 8, 16}

// mergeScaleModes are the three arrival/scheduling disciplines compared.
// all-at-once is the paper's pessimistic model (every journal lands the
// moment its creates finish and merges as one job, Fig 6a); staggered is
// the hand-tuned alternative (an oracle delays each client by exactly one
// merge's service time, so jobs never overlap); chunked-fair is the
// streamed pipeline (bounded admission, windowed chunks, round-robin
// scheduler) that needs no tuning.
var mergeScaleModes = []string{"all-at-once", "staggered", "chunked-fair"}

// mergeScaleOut is one run's measurements across its clients.
type mergeScaleOut struct {
	slowest      float64 // latest merge completion (job seconds)
	meanMerge    float64 // mean per-client VolatileApply latency (s)
	doneSpread   float64 // latest minus earliest completion (s)
	peakBytes    uint64  // largest client-side transfer buffer
	backpressure uint64  // MDS backpressure replies (opens + chunks)
	waitSpread   float64 // scheduler chunk-wait fairness spread (s)
	waitJobs     int     // streamed jobs the spread covers
}

func mergeScaleRun(sink *Sink, seed int64, n, perClient int, mode string) (mergeScaleOut, error) {
	cfg := cudele.DefaultConfig()
	if mode == "chunked-fair" {
		cfg.MergeChunkEvents = 256
		cfg.MergeAdmitMax = 2
	}
	var stagger time.Duration
	if mode == "staggered" {
		// The oracle interval: one merge's setup plus its uncongested
		// apply time, so each journal lands as the previous one drains.
		stagger = cfg.MDSMergeSetup + time.Duration(perClient)*cfg.MDSApplyTime
	}

	cl := cudele.NewCluster(cudele.WithSeed(seed), cudele.WithConfig(cfg))
	run := fmt.Sprintf("mergescale/n%d/%s", n, mode)
	sink.start(run, cl)
	clients := make([]*cudele.Client, n)
	for i := range clients {
		clients[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	var jobErr error
	done := make([]float64, n)
	latency := make([]float64, n)
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		for i, c := range clients {
			path := fmt.Sprintf("/job%d", i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				jobErr = err
				return
			}
			pol := &cudele.Policy{
				Consistency: cudele.ConsWeak, Durability: cudele.DurNone,
				AllocatedInodes: perClient + 10,
			}
			if _, err := cl.DecouplePolicy(p, c, path, pol); err != nil {
				jobErr = err
				return
			}
		}
		for i, c := range clients {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				root, _ := c.DecoupledRoot()
				if _, err := workload.CreateManyLocal(cp, c, root, perClient, "f"); err != nil {
					jobErr = err
					return
				}
				if stagger > 0 {
					cp.Sleep(time.Duration(i) * stagger)
				}
				start := cp.Now()
				if _, err := c.VolatileApply(cp); err != nil {
					jobErr = err
					return
				}
				done[i] = cp.Now().Seconds()
				latency[i] = (cp.Now() - start).Seconds()
			})
		}
	})
	cl.RunAll()
	if jobErr != nil {
		return mergeScaleOut{}, jobErr
	}

	out := mergeScaleOut{slowest: done[0]}
	earliest := done[0]
	for i := 0; i < n; i++ {
		if done[i] > out.slowest {
			out.slowest = done[i]
		}
		if done[i] < earliest {
			earliest = done[i]
		}
		out.meanMerge += latency[i] / float64(n)
		if pb := clients[i].Stats().PeakTransferBytes; pb > out.peakBytes {
			out.peakBytes = pb
		}
	}
	out.doneSpread = out.slowest - earliest
	out.backpressure = cl.MDS().Metrics().MergeBackpressure
	spread, jobs := cl.MDS().MergeFairness()
	out.waitSpread = time.Duration(spread).Seconds()
	out.waitJobs = jobs
	sink.finish(run, cl)
	return out, reap(cl)
}

// MergeScale measures what the merge scheduler buys when N decoupled
// clients Volatile Apply against one rank at once. All-at-once pays the
// full N-way congestion premium (paper Fig 6a's arrival model) on every
// event; staggering avoids it only with an oracle interval; the chunked
// pipeline caps the premium through bounded admission and keeps
// per-client transfer memory at one chunk, with round-robin keeping the
// mergers' progress even.
func MergeScale(opts Options) (*Result, error) {
	perClient := opts.scaled(10_000, 500)

	perRow := len(mergeScaleModes)
	outs, err := runGrid(opts, perRow*len(mergeScaleClients), func(i int) (mergeScaleOut, error) {
		n := mergeScaleClients[i/perRow]
		return mergeScaleRun(opts.Sink, opts.Seed, n, perClient, mergeScaleModes[i%perRow])
	})
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:    "mergescale",
		Title: fmt.Sprintf("N concurrent mergers x %d events each, one rank: slowest-merger completion by discipline", perClient),
		Columns: []string{"clients", "mode", "slowest done (s)", "mean merge (s)",
			"done spread (s)", "peak buf (KB)", "backpressure", "wait spread (ms)"},
	}
	type pair struct{ oneshot, chunked float64 }
	byN := map[int]pair{}
	for ni, n := range mergeScaleClients {
		for mi, mode := range mergeScaleModes {
			o := outs[ni*perRow+mi]
			ws := "-"
			if o.waitJobs > 0 {
				ws = f2(o.waitSpread * 1e3)
			}
			r.AddRow(fmt.Sprintf("%d", n), mode, f2(o.slowest), f2(o.meanMerge),
				f2(o.doneSpread), f1(float64(o.peakBytes)/1e3),
				fmt.Sprintf("%d", o.backpressure), ws)
			switch mode {
			case "all-at-once":
				byN[n] = pair{oneshot: o.slowest, chunked: byN[n].chunked}
			case "chunked-fair":
				byN[n] = pair{oneshot: byN[n].oneshot, chunked: o.slowest}
			}
		}
	}
	last := mergeScaleClients[len(mergeScaleClients)-1]
	r.Notef("all-at-once prices every event at the N-way congestion premium; bounded admission (2 jobs) caps it, so chunked-fair finishes its slowest merger %.1f%% sooner at %d clients (%.2f s vs %.2f s) without the oracle interval staggering needs",
		(1-byN[last].chunked/byN[last].oneshot)*100, last, byN[last].chunked, byN[last].oneshot)
	r.Notef("peak client transfer memory: whole journal (%.1f KB) one-shot vs one chunk (%.1f KB) streamed",
		float64(perClient)*2.5, 256*2.5)
	return r, nil
}
