package bench

import (
	"fmt"

	"cudele"
	"cudele/internal/journal"
	"cudele/internal/policy"
)

func init() {
	register("newcells", "Beyond Table I: speculative and strong-eventual cells vs the nine originals", NewCells)
}

// newCellsCons are the consistency levels the experiment sweeps: the
// paper's three columns plus the two cells beyond Table I.
var newCellsCons = []policy.Consistency{
	cudele.ConsInvisible, cudele.ConsWeak, cudele.ConsStrong,
	cudele.ConsSpeculative, cudele.ConsStrongEventual,
}

var newCellsDur = []policy.Durability{cudele.DurNone, cudele.DurLocal, cudele.DurGlobal}

// newCellsOut is one cell's measurements on both workloads.
type newCellsOut struct {
	burstSec float64 // validated-burst completion (s)
	burstRPC int     // per-op round trips the burst strategy paid
	stormSec float64 // lossy-merge-storm completion (s)
	stormRPC int     // per-op round trips the storm strategy paid
}

// newCellsSetup builds a cluster with /job decoupled under the cell's
// policy and an interferer client. Strong cells decouple too: that is
// what arms the MDS journal stream for their durability levels.
func newCellsSetup(seed int64, cons policy.Consistency, dur policy.Durability,
	inodes int) (*cudele.Cluster, *cudele.Client, *cudele.Client, cudele.Ino, error) {
	cl := cudele.NewCluster(cudele.WithSeed(seed))
	c := cl.NewClient("c0")
	intr := cl.NewClient("intr")
	var job cudele.Ino
	var err error
	cl.Run(func(p cudele.Proc) {
		if job, err = c.MkdirAll(p, "/job", 0755); err != nil {
			return
		}
		cl.MDS().SaveStore(p) // seed the object store for nonvolatile paths
		_, err = cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
			Consistency: cons, Durability: dur,
			AllocatedInodes: inodes, Interfere: cudele.InterfereAllow,
		})
	})
	if err != nil {
		reap(cl)
		return nil, nil, nil, 0, err
	}
	return cl, c, intr, job, nil
}

// newCellsPersist runs the cell's client-journal durability mechanism —
// the step a journal cell pays before every merge. Strong cells persist
// through the MDS journal stream instead, priced into their RPCs.
func newCellsPersist(p cudele.Proc, c *cudele.Client, cons policy.Consistency,
	dur policy.Durability) error {
	if cons == cudele.ConsStrong {
		return nil
	}
	switch dur {
	case cudele.DurLocal:
		return c.LocalPersist(p)
	case cudele.DurGlobal:
		return c.GlobalPersist(p)
	}
	return nil
}

// newCellsBurst is the validated create burst: N creates into a
// directory where an interferer already owns every 10th name, and the
// client must finish knowing each op's outcome with the interferer's
// entries intact.
//
// Strong pays one round trip per create (rejections are synchronous).
// The blind-merge cells cannot learn outcomes from a merge — and a blind
// merge would clobber the interferer — so they pre-validate every name
// with a lookup round trip, then merge what is free. Speculative applies
// all N optimistically and ships one validated merge: the MDS rejects
// exactly the stolen names in the reply and the client rolls them back,
// with no per-op round trip and no quiescent-interferer assumption.
func newCellsBurst(seed int64, cons policy.Consistency, dur policy.Durability,
	n int) (newCellsOut, error) {
	cl, c, intr, job, err := newCellsSetup(seed, cons, dur, n+16)
	if err != nil {
		return newCellsOut{}, err
	}
	name := func(i int) string { return fmt.Sprintf("f%05d", i) }
	var out newCellsOut
	cl.Run(func(p cudele.Proc) {
		for i := 0; i < n; i += 10 {
			if _, err = intr.Create(p, job, name(i), 0600); err != nil {
				return
			}
		}
		start := p.Now()
		switch cons {
		case cudele.ConsStrong:
			for i := 0; i < n; i++ {
				out.burstRPC++ // a rejection is a round trip too
				if _, cerr := c.Create(p, job, name(i), 0644); cerr != nil && i%10 != 0 {
					err = fmt.Errorf("burst: rpc create %s: %w", name(i), cerr)
					return
				}
			}
		case cudele.ConsSpeculative:
			root, _ := c.DecoupledRoot()
			for i := 0; i < n; i++ {
				if _, err = c.LocalCreate(p, root, name(i), 0644); err != nil {
					return
				}
			}
			if err = newCellsPersist(p, c, cons, dur); err != nil {
				return
			}
			var conflicts []int
			if _, conflicts, err = c.SpeculativeApply(p); err != nil {
				return
			}
			if len(conflicts) != (n+9)/10 {
				err = fmt.Errorf("burst: %d conflicts, want %d", len(conflicts), (n+9)/10)
				return
			}
		default: // blind-merge cells pre-validate each name
			root, _ := c.DecoupledRoot()
			for i := 0; i < n; i++ {
				out.burstRPC++
				if _, lerr := c.Lookup(p, job, name(i)); lerr == nil {
					continue // taken by the interferer
				}
				if _, err = c.LocalCreate(p, root, name(i), 0644); err != nil {
					return
				}
			}
			if err = newCellsPersist(p, c, cons, dur); err != nil {
				return
			}
			if cons == cudele.ConsStrongEventual {
				_, err = c.ConvergeApply(p)
			} else {
				_, err = c.VolatileApply(p)
			}
			if err != nil {
				return
			}
		}
		out.burstSec = (p.Now() - start).Seconds()
	})
	if err != nil {
		reap(cl)
		return newCellsOut{}, err
	}
	return out, reap(cl)
}

// newCellsStorm is the lossy merge storm: batches of creates whose merge
// acknowledgements are presumed lost, so before moving on the client
// must guarantee the batch landed exactly once.
//
// Strong retransmits every op (the retry's ErrExist is the idempotence
// check) — two round trips per op. The blind cells cannot re-send a
// batch (a second blind merge would double-apply), so they verify each
// op with a lookup round trip; speculative merges are validated but the
// verdict was in the lost reply, so they sweep too. Strong-eventual just
// retransmits the whole batch: converging merges are idempotent, so the
// re-send costs one more merge and zero per-op round trips.
func newCellsStorm(seed int64, cons policy.Consistency, dur policy.Durability,
	batches, perBatch int) (newCellsOut, error) {
	cl, c, _, job, err := newCellsSetup(seed, cons, dur, batches*perBatch+16)
	if err != nil {
		return newCellsOut{}, err
	}
	evBytes := int64(cl.Config().JournalEventBytes)
	name := func(b, i int) string { return fmt.Sprintf("s%03d_%04d", b, i) }
	var out newCellsOut
	cl.Run(func(p cudele.Proc) {
		start := p.Now()
		for b := 0; b < batches; b++ {
			if cons == cudele.ConsStrong {
				for i := 0; i < perBatch; i++ {
					if _, err = c.Create(p, job, name(b, i), 0644); err != nil {
						return
					}
					out.stormRPC++
					if _, rerr := c.Create(p, job, name(b, i), 0644); rerr == nil {
						err = fmt.Errorf("storm: retransmitted create did not reject")
						return
					}
					out.stormRPC++
				}
				continue
			}
			root, _ := c.DecoupledRoot()
			for i := 0; i < perBatch; i++ {
				if _, err = c.LocalCreate(p, root, name(b, i), 0644); err != nil {
					return
				}
			}
			if err = newCellsPersist(p, c, cons, dur); err != nil {
				return
			}
			switch cons {
			case cudele.ConsStrongEventual:
				var evs []*journal.Event
				if evs, err = c.JournalEvents(); err != nil {
					return
				}
				if _, err = c.ConvergeApply(p); err != nil {
					return
				}
				// The retransmit: replaying the same batch through the
				// resolver is a no-op on the image.
				if _, err = cl.MDS().ConvergeApply(p, evs, int64(len(evs))*evBytes); err != nil {
					return
				}
			case cudele.ConsSpeculative:
				if _, _, err = c.SpeculativeApply(p); err != nil {
					return
				}
				for i := 0; i < perBatch; i++ {
					out.stormRPC++
					if _, err = c.Lookup(p, job, name(b, i)); err != nil {
						return
					}
				}
			default:
				if _, err = c.VolatileApply(p); err != nil {
					return
				}
				for i := 0; i < perBatch; i++ {
					out.stormRPC++
					if _, err = c.Lookup(p, job, name(b, i)); err != nil {
						return
					}
				}
			}
		}
		out.stormSec = (p.Now() - start).Seconds()
	})
	if err != nil {
		reap(cl)
		return newCellsOut{}, err
	}
	return out, reap(cl)
}

// NewCells prices the two cells beyond Table I against all nine original
// compositions on the two workloads each was built for: the validated
// create burst (speculation removes the per-op round trip every original
// cell needs to learn op outcomes under interference) and the lossy
// merge storm (strong-eventual retransmits blindly where every original
// cell pays a per-op verification or retransmission round trip).
func NewCells(opts Options) (*Result, error) {
	// The floors pin the workloads at full size: the contract the
	// baseline carries — each new cell beats every original on one
	// workload — needs enough ops to amortize a merge's fixed cost
	// (at a few dozen ops per batch the strong-eventual retransmit
	// merge costs more than the lookups it avoids). The full sweep
	// still completes in well under a second of wall clock.
	burstN := opts.scaled(2_000, 2_000)
	batches := 8
	perBatch := opts.scaled(250, 250)

	perRow := len(newCellsDur)
	outs, err := runGrid(opts, len(newCellsCons)*perRow, func(i int) (newCellsOut, error) {
		cons, dur := newCellsCons[i/perRow], newCellsDur[i%perRow]
		b, err := newCellsBurst(opts.Seed, cons, dur, burstN)
		if err != nil {
			return newCellsOut{}, err
		}
		s, err := newCellsStorm(opts.Seed, cons, dur, batches, perBatch)
		if err != nil {
			return newCellsOut{}, err
		}
		b.stormSec, b.stormRPC = s.stormSec, s.stormRPC
		return b, nil
	})
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID: "newcells",
		Title: fmt.Sprintf("Beyond Table I: %d-create validated burst (1/10 contended) and %dx%d lossy merge storm",
			burstN, batches, perBatch),
		Columns: []string{"cell", "burst (s)", "burst rpc", "storm (s)", "storm rpc"},
	}
	cell := func(i int) string {
		return newCellsCons[i/perRow].String() + "/" + newCellsDur[i%perRow].String()
	}
	bestBurst, bestStorm := -1, -1
	for i := range outs {
		r.AddRow(cell(i), f2(outs[i].burstSec), fmt.Sprintf("%d", outs[i].burstRPC),
			f2(outs[i].stormSec), fmt.Sprintf("%d", outs[i].stormRPC))
		switch newCellsCons[i/perRow] {
		case cudele.ConsInvisible, cudele.ConsWeak, cudele.ConsStrong:
			if bestBurst < 0 || outs[i].burstSec < outs[bestBurst].burstSec {
				bestBurst = i
			}
			if bestStorm < 0 || outs[i].stormSec < outs[bestStorm].stormSec {
				bestStorm = i
			}
		}
	}
	for i := range outs {
		cons, dur := newCellsCons[i/perRow], newCellsDur[i%perRow]
		if cons == cudele.ConsSpeculative {
			r.Notef("%v/%v finishes the validated burst %.1fx faster than the best Table I cell (%.2f s vs %s's %.2f s): one validated merge replaces %d per-op round trips",
				cons, dur, outs[bestBurst].burstSec/outs[i].burstSec,
				outs[i].burstSec, cell(bestBurst), outs[bestBurst].burstSec, outs[bestBurst].burstRPC)
		}
		if cons == cudele.ConsStrongEventual {
			r.Notef("%v/%v finishes the lossy storm %.1fx faster than the best Table I cell (%.2f s vs %s's %.2f s): idempotent re-merge replaces %d per-op round trips",
				cons, dur, outs[bestStorm].stormSec/outs[i].stormSec,
				outs[i].stormSec, cell(bestStorm), outs[bestStorm].stormSec, outs[bestStorm].stormRPC)
		}
	}
	return r, nil
}
