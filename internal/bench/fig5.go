package bench

import (
	"fmt"

	"cudele"
	"cudele/internal/workload"
)

func init() {
	register("fig5", "Per-mechanism overhead for 100K creates (Fig 5)", Fig5)
}

// mechCluster builds a cluster with one decoupled client that has already
// appended n creates to its journal (untimed unless timed is captured by
// the caller inside fn).
func withDecoupledJournal(seed int64, n int, fn func(cl *cudele.Cluster, c *cudele.Client, p cudele.Proc, appendSecs float64) error) error {
	cl := cudele.NewCluster(cudele.WithSeed(seed))
	c := cl.NewClient("client.0")
	var err error
	cl.Run(func(p cudele.Proc) {
		if _, err = c.MkdirAll(p, "/job", 0755); err != nil {
			return
		}
		// Seed the object store so Nonvolatile Apply has directory
		// objects to read.
		if err = cl.MDS().SaveStore(p); err != nil {
			return
		}
		pol := &cudele.Policy{
			Consistency: cudele.ConsInvisible, Durability: cudele.DurNone,
			AllocatedInodes: n + 10,
		}
		if _, err = cl.DecouplePolicy(p, c, "/job", pol); err != nil {
			return
		}
		root, _ := c.DecoupledRoot()
		start := p.Now()
		if _, err = workload.CreateManyLocal(p, c, root, n, "f"); err != nil {
			return
		}
		appendSecs := (p.Now() - start).Seconds()
		err = fn(cl, c, p, appendSecs)
	})
	if err != nil {
		return err
	}
	return reap(cl)
}

// rpcCreateTime runs n RPC creates on a fresh cluster and returns the
// elapsed seconds.
func rpcCreateTime(seed int64, n, segEvents int, journal bool) (float64, error) {
	res, err := runCreateJob(jobConfig{seed: seed, clients: 1, perClient: n, journal: journal, dispatch: 40, segEvents: segEvents})
	if err != nil {
		return 0, err
	}
	return res.slowest(), nil
}

// fig5Times holds the timings one grid run produces; unset fields stay 0.
type fig5Times struct {
	append_, volatile, local, global, nonvol, rpc, rpcJournal float64
}

// Fig5 measures the time each mechanism needs to process n create events,
// normalized to Append Client Journal (~11K creates/s), and the
// real-world compositions on the right of the paper's figure. The four
// independent simulations (decoupled persists, destructive apply, RPC
// creates with and without journaling) run as a grid.
func Fig5(opts Options) (*Result, error) {
	n := opts.scaled(100_000, 500)
	segEvents := opts.scaled(1024, 64)

	parts, err := runGrid(opts, 4, func(i int) (fig5Times, error) {
		var t fig5Times
		switch i {
		case 0: // non-destructive persists, then volatile apply
			err := withDecoupledJournal(opts.Seed, n, func(cl *cudele.Cluster, c *cudele.Client, p cudele.Proc, appendSecs float64) error {
				t.append_ = appendSecs
				start := p.Now()
				if err := c.LocalPersist(p); err != nil {
					return err
				}
				t.local = (p.Now() - start).Seconds()
				start = p.Now()
				if err := c.GlobalPersist(p); err != nil {
					return err
				}
				t.global = (p.Now() - start).Seconds()
				start = p.Now()
				if _, err := c.VolatileApply(p); err != nil {
					return err
				}
				t.volatile = (p.Now() - start).Seconds()
				return nil
			})
			return t, err
		case 1: // destructive nonvolatile apply on its own journal
			err := withDecoupledJournal(opts.Seed, n, func(cl *cudele.Cluster, c *cudele.Client, p cudele.Proc, _ float64) error {
				start := p.Now()
				if _, err := c.NonvolatileApply(p); err != nil {
					return err
				}
				t.nonvol = (p.Now() - start).Seconds()
				return nil
			})
			return t, err
		case 2:
			var err error
			t.rpc, err = rpcCreateTime(opts.Seed, n, segEvents, false)
			return t, err
		default:
			var err error
			t.rpcJournal, err = rpcCreateTime(opts.Seed, n, segEvents, true)
			return t, err
		}
	})
	if err != nil {
		return nil, err
	}
	tAppend, tLocal, tGlobal, tVolatile := parts[0].append_, parts[0].local, parts[0].global, parts[0].volatile
	tNonvol := parts[1].nonvol
	tRPC := parts[2].rpc
	tRPCJournal := parts[3].rpcJournal
	tStream := tRPCJournal - tRPC

	r := &Result{
		ID:      "fig5",
		Title:   fmt.Sprintf("time to process %d create events per mechanism, normalized to append client journal (%.0f creates/s)", n, float64(n)/tAppend),
		Columns: []string{"group", "mechanism", "time (s)", "normalized"},
	}
	norm := func(t float64) string { return f2x(t / tAppend) }
	r.AddRow("consistency", "rpcs", f2(tRPC), norm(tRPC))
	r.AddRow("consistency", "volatile_apply", f2(tVolatile), norm(tVolatile))
	r.AddRow("consistency", "nonvolatile_apply", f2(tNonvol), norm(tNonvol))
	r.AddRow("durability", "stream (journal on - off)", f2(tStream), norm(tStream))
	r.AddRow("durability", "local_persist", f2(tLocal), norm(tLocal))
	r.AddRow("durability", "global_persist", f2(tGlobal), norm(tGlobal))

	// Real-world compositions (the right-hand graph): times compose by
	// running the mechanisms back to back.
	compose := map[string][]float64{
		"POSIX (rpcs+stream)":                         {tRPCJournal},
		"BatchFS (append+local+volatile)":             {tAppend, tLocal, tVolatile},
		"DeltaFS (append+local)":                      {tAppend, tLocal},
		"RAMDisk (append+volatile)":                   {tAppend, tVolatile},
		"Cudele weak/global (append+global+volatile)": {tAppend, tGlobal, tVolatile},
	}
	for _, name := range []string{
		"POSIX (rpcs+stream)", "BatchFS (append+local+volatile)",
		"DeltaFS (append+local)", "RAMDisk (append+volatile)",
		"Cudele weak/global (append+global+volatile)",
	} {
		total := 0.0
		for _, t := range compose[name] {
			total += t
		}
		r.AddRow("systems", name, f2(total), norm(total))
	}

	r.Notef("paper: RPCs 17.9x (19.9x slower than Volatile Apply), Nonvolatile Apply 78x, Stream 2.4x, Global Persist only 0.2x slower than Local Persist; ~2.5 KB storage per journal update")
	r.Notef("measured: rpcs %.1fx, rpcs/volatile ratio %.1fx, nonvolatile %.1fx, stream %.1fx, local %.2fx, global %.2fx",
		tRPC/tAppend, tRPC/tVolatile, tNonvol/tAppend, tStream/tAppend, tLocal/tAppend, tGlobal/tAppend)
	r.Notef("journal footprint: %d updates x 2500 B = %.2f MB (paper: 1M updates ~ 2.38 GB)",
		n, float64(n)*2500/1e6)
	return r, nil
}
