package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cudele"
	"cudele/internal/workload"
)

func init() {
	register("rebalance", "heat-driven balancer convergence from a fully skewed placement", Rebalance)
}

// rebalanceRanks is the cluster size; rebalanceSubtrees client subtrees
// all start on rank 0 — the worst-case placement the balancer must fix
// while the create storm keeps running.
const (
	rebalanceRanks    = 4
	rebalanceSubtrees = 8
)

// rebalanceOut is one run's measurements: total seconds, per-rank
// request counts, the final heat imbalance, and the balancer's own
// convergence record (empty for the frozen control run).
type rebalanceOut struct {
	total      float64
	requests   []uint64
	imbalance  float64
	perRank    []int // final subtree count per rank
	migrations int   // committed subtree migrations
	balancer   *cudele.Balancer
}

// rebalanceRun drives rebalanceSubtrees clients create-storming private
// subtrees that all start on rank 0 of a rebalanceRanks-rank cluster.
// With balance set, the heat-driven balancer runs concurrently and
// exports subtrees off the hot rank while the clients keep creating —
// in-flight requests bounce with a redirect and retry transparently.
// Without it, the run is the frozen control the convergence is judged
// against.
func rebalanceRun(sink *Sink, run string, seed int64, perClient int, balance bool) (rebalanceOut, error) {
	cl := cudele.NewCluster(cudele.WithSeed(seed), cudele.WithMDSRanks(rebalanceRanks))
	sink.start(run, cl)
	const interval = 40 * time.Millisecond
	cl.EnableHeat(3 * interval)

	cs := make([]*cudele.Client, rebalanceSubtrees)
	for i := range cs {
		cs[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	var jobErr error
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		for i, c := range cs {
			path := fmt.Sprintf("/job%d", i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				jobErr = err
				return
			}
			if err := cl.Monitor().Place(p, path, 0); err != nil {
				jobErr = err
				return
			}
		}
		for i, c := range cs {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				dir, err := c.Resolve(cp, fmt.Sprintf("/job%d", i))
				if err != nil {
					jobErr = err
					return
				}
				if _, _, err := workload.CreateMany(cp, c, dir, perClient, "f"); err != nil {
					jobErr = err
				}
			})
		}
	})
	out := rebalanceOut{}
	if balance {
		out.balancer = cl.StartBalancer(cudele.BalancerConfig{
			Interval:  interval,
			Rounds:    12,
			Threshold: 1.25,
			MaxMoves:  2,
		})
	}
	out.total = cl.RunAll()
	if jobErr != nil {
		return rebalanceOut{}, jobErr
	}
	// HeatReport's imbalance only counts ranks with cells; an idle rank
	// (the frozen control's 1-3) must count as imbalance, so aggregate
	// over the dense rank vector instead.
	loads := make([]float64, rebalanceRanks)
	for _, cell := range cl.Heat().Snapshot(int64(cl.Runtime().Now())) {
		if cell.Rank >= 0 && cell.Rank < rebalanceRanks {
			loads[cell.Rank] += cell.Load
		}
	}
	out.imbalance = imbalanceOf(loads)
	out.requests = make([]uint64, rebalanceRanks)
	for i := 0; i < rebalanceRanks; i++ {
		out.requests[i] = cl.Metadata().Rank(i).Metrics().Requests
	}
	out.perRank = make([]int, rebalanceRanks)
	for _, st := range cl.Subtrees() {
		if strings.HasPrefix(st.Path, "/job") && st.Rank >= 0 && st.Rank < rebalanceRanks {
			out.perRank[st.Rank]++
		}
	}
	out.migrations = cl.Metadata().Migrations()
	sink.finish(run, cl)
	return out, reap(cl)
}

// Rebalance is the elastic-metadata experiment: every subtree starts on
// rank 0 and the heat-driven balancer must spread them across the
// cluster while the create storm runs, converging the rank load within
// 1.5x of even. The table is the balancer's own convergence record (one
// row per sampling round); the frozen control run shows what the same
// storm looks like with the balancer off.
func Rebalance(opts Options) (*Result, error) {
	perClient := opts.scaled(20_000, 480)
	outs, err := runGrid(opts, 2, func(i int) (rebalanceOut, error) {
		if i == 0 {
			return rebalanceRun(opts.Sink, "rebalance/balanced", opts.Seed, perClient, true)
		}
		return rebalanceRun(opts.Sink, "rebalance/frozen", opts.Seed, perClient, false)
	})
	if err != nil {
		return nil, err
	}
	bal, frozen := outs[0], outs[1]

	r := &Result{
		ID: "rebalance",
		Title: fmt.Sprintf("heat-driven rebalancing: %d clients x %d creates, all subtrees placed on rank 0 of %d",
			rebalanceSubtrees, perClient, rebalanceRanks),
		Columns: []string{"round", "t (ms)", "imbalance", "rank loads", "moves", "splits"},
	}
	moves, splits := 0, 0
	samples := bal.balancer.Samples()
	events := bal.balancer.Events()
	evIdx := 0
	for i, s := range samples {
		// Actions run between a sample and the next; the moves/splits
		// columns are cumulative successful actions up to each row.
		next := math.Inf(1)
		if i+1 < len(samples) {
			next = samples[i+1].TimeMS
		}
		for evIdx < len(events) && events[evIdx].TimeMS < next {
			if events[evIdx].Err == "" {
				switch events[evIdx].Kind {
				case "migrate":
					moves++
				case "split":
					splits++
				}
			}
			evIdx++
		}
		loads := make([]string, len(s.Loads))
		for ri, l := range s.Loads {
			loads[ri] = f0(l)
		}
		r.AddRow(fmt.Sprintf("%d", i+1), f1(s.TimeMS), f2x(s.Imbalance),
			strings.Join(loads, "/"), fmt.Sprintf("%d", moves), fmt.Sprintf("%d", splits))
	}
	final := samples[len(samples)-1].Imbalance
	dist := make([]string, rebalanceRanks)
	for i, n := range bal.perRank {
		dist[i] = fmt.Sprintf("%d", n)
	}
	r.Notef("final imbalance %s (target < 1.50x of even); the frozen control ends at %s with every subtree still on rank 0",
		f2x(final), f2x(frozen.imbalance))
	r.Notef("%d subtree migrations committed; final subtrees per rank: %s (from 8/0/0/0)",
		bal.migrations, strings.Join(dist, "/"))
	r.Notef("balanced run %.2fs vs frozen %.2fs virtual: spreading the subtrees lets four ranks serve the storm the control funnels through one",
		bal.total, frozen.total)
	return r, nil
}
