package bench

import (
	"io"
	"sort"
	"sync"

	"cudele"
	"cudele/internal/trace"
)

// Sink collects observability output from an experiment's runs. Each run
// registers under a deterministic name ("fig3a/run007"); the sink
// attaches a trace recorder to the run's cluster and, when the run
// drains, pulls its metric registry. Runs execute concurrently on the
// grid worker pool, so registration is serialized under a mutex, and
// every export walks the runs in name order — output is byte-identical
// for any worker count, like the tables themselves.
//
// A nil *Sink is the disabled sink: both hooks are no-ops, so run
// helpers call them unconditionally. Observation never charges virtual
// time or consumes randomness, which is what keeps a sinked run's table
// byte-identical to an unsinked one (see TestTracingDoesNotPerturb).
type Sink struct {
	mu   sync.Mutex
	runs map[string]*runObs
}

type runObs struct {
	rec *trace.Recorder
	reg *trace.Registry
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{runs: make(map[string]*runObs)} }

// start enables tracing on a freshly built cluster, registering it under
// the run name. Call before the cluster runs; nil-safe.
func (s *Sink) start(name string, cl *cudele.Cluster) {
	if s == nil {
		return
	}
	rec := cl.EnableTracing()
	s.mu.Lock()
	s.runs[name] = &runObs{rec: rec}
	s.mu.Unlock()
}

// finish pulls the run's metrics after the simulation drains (and before
// the engine shuts down, so device snapshots still work); nil-safe.
func (s *Sink) finish(name string, cl *cudele.Cluster) {
	if s == nil {
		return
	}
	reg := cl.CollectMetrics()
	s.mu.Lock()
	if r := s.runs[name]; r != nil {
		r.reg = reg
	} else {
		s.runs[name] = &runObs{reg: reg}
	}
	s.mu.Unlock()
}

// names returns registered run names in sorted order.
func (s *Sink) names() []string {
	out := make([]string, 0, len(s.runs))
	for name := range s.runs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Runs reports how many runs registered with the sink.
func (s *Sink) Runs() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// WriteChrome merges every run's spans into one Chrome trace-event
// document, prefixing each track with its run name so Perfetto shows one
// process group per simulation.
func (s *Sink) WriteChrome(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	merged := trace.New()
	for _, name := range s.names() {
		merged.Merge(s.runs[name].rec, name+":")
	}
	return merged.WriteChrome(w)
}

// WriteMetrics writes every run's metrics as one Prometheus text dump,
// each series labeled with its run name.
func (s *Sink) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := trace.NewRegistry()
	for _, name := range s.names() {
		out.Append(s.runs[name].reg, trace.KV{Key: "run", Val: name})
	}
	return out.WritePrometheus(w)
}

// Merged returns one recorder holding every run's spans (run-name
// prefixed), for callers that want the data rather than the JSON.
func (s *Sink) Merged() *trace.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	merged := trace.New()
	for _, name := range s.names() {
		merged.Merge(s.runs[name].rec, name+":")
	}
	return merged
}
