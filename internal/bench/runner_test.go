package bench

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestRunGridOrder checks that results come back indexed by grid position
// regardless of worker count or completion order.
func TestRunGridOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 16} {
		opts := Options{Workers: workers}
		out, err := runGrid(opts, 20, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunGridFirstErrorWins checks that the reported error is the one at
// the lowest grid index, independent of scheduling, so error output is
// deterministic too.
func TestRunGridFirstErrorWins(t *testing.T) {
	errA := errors.New("err at 3")
	errB := errors.New("err at 7")
	for _, workers := range []int{1, 2, 8} {
		_, err := runGrid(Options{Workers: workers}, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errA)
		}
	}
}

// TestRunGridConcurrency checks the pool really runs up to `workers` runs
// at once (and no more).
func TestRunGridConcurrency(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	active, peak := 0, 0
	gate := make(chan struct{})
	var once sync.Once
	_, err := runGrid(Options{Workers: workers}, 8, func(i int) (int, error) {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		if active == workers {
			once.Do(func() { close(gate) })
		}
		mu.Unlock()
		<-gate // all workers must be in flight before any run finishes
		mu.Lock()
		active--
		mu.Unlock()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak != workers {
		t.Fatalf("peak concurrency = %d, want %d", peak, workers)
	}
}

// equivalenceIDs is the fast subset of experiments the parallel/sequential
// equivalence test renders. Together they cover every run helper:
// runCreateJob, decoupledJob, withDecoupledJournal, multiMDSRun, the
// fig3c/fig6c inline runs, and the ext-latency histogram runs.
var equivalenceIDs = []string{"fig3a", "fig3c", "fig5", "fig6a", "fig6c", "multimds", "ext-latency"}

// TestParallelEquivalence is the tentpole guarantee: rendered tables are
// byte-identical whether a grid runs sequentially (-parallel 1) or on any
// worker pool, because each run owns its engine and seeds are fixed by
// grid position.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	workerCounts := []int{1, 2, runtime.NumCPU() + 1}
	for _, id := range equivalenceIDs {
		var want string
		for _, w := range workerCounts {
			res, err := Run(id, Options{Scale: 0.01, Seed: 1, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, w, err)
			}
			got := res.Render()
			if w == workerCounts[0] {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: table differs between workers=%d and workers=%d:\n--- workers=%d ---\n%s\n--- workers=%d ---\n%s",
					id, workerCounts[0], w, workerCounts[0], want, w, got)
			}
		}
	}
}

// TestWorkerCount pins the Options.Workers resolution rules.
func TestWorkerCount(t *testing.T) {
	if got := (Options{Workers: 3}).workerCount(); got != 3 {
		t.Fatalf("Workers=3 resolved to %d", got)
	}
	if got := (Options{}).workerCount(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers=0 resolved to %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
}

// BenchmarkGridSequential / BenchmarkGridParallel measure the wall-clock
// effect of the worker pool on a representative grid (fig6a at small
// scale). On a multi-core machine the parallel variant should approach
// sequential/NumCPU; on a single core they tie.
func benchGrid(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run("fig6a", Options{Scale: 0.01, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridSequential(b *testing.B) { benchGrid(b, 1) }
func BenchmarkGridParallel(b *testing.B)   { benchGrid(b, runtime.NumCPU()) }

// BenchmarkExperiments times each registered experiment end to end at a
// small scale — the wall-clock figures the -json flag reports.
func BenchmarkExperiments(b *testing.B) {
	for _, id := range IDs() {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(id, Options{Scale: 0.01, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
