package bench

import (
	"fmt"

	"cudele"
	"cudele/internal/workload"
)

func init() {
	register("multimds", "RPC create throughput vs metadata ranks (subtree partitioning)", MultiMDS)
	markUtilization("multimds")
}

// multiMDSRanks are the cluster sizes the experiment sweeps.
var multiMDSRanks = []int{1, 2, 4}

// multiMDSOut is one run's measurements: total job seconds plus the mean
// busy fraction of the metadata ranks' CPUs over the whole run.
type multiMDSOut struct {
	total   float64
	mdsUtil float64
}

// multiMDSRun drives `clients` RPC clients, each creating perClient files
// in a private subtree pinned round-robin across `ranks` metadata ranks,
// and returns the total job seconds and mean MDS CPU utilization.
func multiMDSRun(sink *Sink, seed int64, ranks, clients, perClient int) (multiMDSOut, error) {
	cl := cudele.NewCluster(cudele.WithSeed(seed), cudele.WithMDSRanks(ranks))
	run := fmt.Sprintf("multimds/r%d", ranks)
	sink.start(run, cl)
	cs := make([]*cudele.Client, clients)
	for i := range cs {
		cs[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	var jobErr error
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		for i, c := range cs {
			path := fmt.Sprintf("/job%d", i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				jobErr = err
				return
			}
			if err := cl.Monitor().Place(p, path, i%ranks); err != nil {
				jobErr = err
				return
			}
		}
		for i, c := range cs {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				dir, err := c.Resolve(cp, fmt.Sprintf("/job%d", i))
				if err != nil {
					jobErr = err
					return
				}
				if _, _, err := workload.CreateMany(cp, c, dir, perClient, "f"); err != nil {
					jobErr = err
				}
			})
		}
	})
	total := cl.RunAll()
	if jobErr != nil {
		return multiMDSOut{}, jobErr
	}
	// Mean CPU busy fraction across ranks: with round-robin subtree
	// placement every rank carries ~1/R of the load, so this column shows
	// the single rank saturated and the load spreading as ranks are added.
	util := 0.0
	for i := 0; i < ranks; i++ {
		util += cl.Metadata().Rank(i).CPU().Snapshot().Utilization
	}
	util /= float64(ranks)
	sink.finish(run, cl)
	return multiMDSOut{total: total, mdsUtil: util}, reap(cl)
}

// MultiMDS shows the scaling path the paper names in §VI: a single MDS
// saturates under parallel RPC creates (Fig 3c), so the namespace is
// partitioned by subtree across metadata ranks. Each client works in a
// private subtree pinned round-robin, so with R ranks the per-rank load
// drops ~R-fold and aggregate create throughput rises until client count,
// not MDS CPU, is the limit.
func MultiMDS(opts Options) (*Result, error) {
	clients := 16
	perClient := opts.scaled(20_000, 200)

	r := &Result{
		ID:      "multimds",
		Title:   fmt.Sprintf("aggregate RPC create throughput, %d clients x %d creates, subtrees pinned round-robin", clients, perClient),
		Columns: []string{"mds ranks", "runtime (s)", "creates/s", "speedup", "mean MDS CPU"},
	}
	outs, err := runGrid(opts, len(multiMDSRanks), func(i int) (multiMDSOut, error) {
		return multiMDSRun(opts.Sink, opts.Seed, multiMDSRanks[i], clients, perClient)
	})
	if err != nil {
		return nil, err
	}
	var base float64
	var rates []float64
	for ri, ranks := range multiMDSRanks {
		rate := float64(clients*perClient) / outs[ri].total
		if base == 0 {
			base = rate
		}
		rates = append(rates, rate)
		r.AddRow(fmt.Sprintf("%d", ranks), f2(outs[ri].total), f0(rate), f2x(rate/base),
			pct(outs[ri].mdsUtil))
	}
	last := len(multiMDSRanks) - 1
	r.Notef("single-MDS CephFS saturates (paper Fig 3c); subtree partitioning is the stated scaling path (paper §VI)")
	r.Notef("measured: %d ranks serve %.2fx the creates/s of 1 rank", multiMDSRanks[last], rates[last]/rates[0])
	return r, nil
}
