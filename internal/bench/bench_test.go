package bench

import (
	"strconv"
	"strings"
	"testing"
)

// tiny is small but large enough that normalized shapes survive.
var tiny = Options{Scale: 0.01, Seed: 1}

// cell parses a numeric table cell, tolerating "x" and "%" suffixes.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"ext-latency", "fig2", "fig3a", "fig3b", "fig3c", "fig5", "fig6a", "fig6b", "fig6c", "heatskew", "mergescale", "multimds", "newcells", "rebalance", "table1"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("lookup fig5 failed")
	}
	if _, err := Run("nope", tiny); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderAndCSV(t *testing.T) {
	r := &Result{
		ID: "x", Title: "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "hello, world"}},
	}
	r.Notef("n=%d", 5)
	out := r.Render()
	for _, want := range []string{"== x: t ==", "a", "hello, world", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, `"hello, world"`) {
		t.Errorf("csv quoting broken: %s", csv)
	}
}

func TestTable1(t *testing.T) {
	r, err := Run("table1", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Spot-check the corners of Table I.
	if r.Rows[0][1] != "append_client_journal" {
		t.Errorf("none/invisible = %q", r.Rows[0][1])
	}
	if r.Rows[2][3] != "rpcs+stream" {
		t.Errorf("global/strong = %q", r.Rows[2][3])
	}
}

func TestFig2UntarDominates(t *testing.T) {
	r, err := Run("fig2", Options{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	combined := map[string]float64{}
	for _, row := range r.Rows {
		combined[row[0]] = cell(t, row[len(row)-1])
	}
	for phase, v := range combined {
		if phase != "untar" && v >= combined["untar"] {
			t.Errorf("phase %s combined %.1f >= untar %.1f", phase, v, combined["untar"])
		}
	}
}

func TestFig3aShape(t *testing.T) {
	r, err := Run("fig3a", Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(clientCounts) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Slowdowns grow with client count for every config.
	for col := 1; col <= 5; col++ {
		first := cell(t, r.Rows[0][col])
		last := cell(t, r.Rows[len(r.Rows)-1][col])
		if last <= first {
			t.Errorf("config %s: slowdown %0.2f at 20 clients not above %0.2f at 1",
				r.Columns[col], last, first)
		}
	}
	// Journaling always costs something: every journal config is slower
	// than no-journal at max scale.
	last := r.Rows[len(r.Rows)-1]
	noJournal := cell(t, last[1])
	for col := 2; col <= 5; col++ {
		if cell(t, last[col]) <= noJournal {
			t.Errorf("journal config %s (%.2f) not slower than no-journal (%.2f)",
				r.Columns[col], cell(t, last[col]), noJournal)
		}
	}
	// The paper's ordering: dispatch 30 degrades more than dispatch 1.
	if cell(t, last[4]) <= cell(t, last[2]) {
		t.Errorf("dispatch 30 (%.2f) not slower than dispatch 1 (%.2f)",
			cell(t, last[4]), cell(t, last[2]))
	}
}

func TestFig3bInterferenceHurts(t *testing.T) {
	r, err := Run("fig3b", tiny)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	noInterf, interf := cell(t, last[1]), cell(t, last[3])
	if interf <= noInterf {
		t.Errorf("interference slowdown %.2f not above no-interference %.2f", interf, noInterf)
	}
}

func TestFig3cLookupsAppear(t *testing.T) {
	r, err := Run("fig3c", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no samples")
	}
	// In the interference run, lookup RPCs appear by the end; in the
	// no-interference run they stay near zero.
	lastRow := r.Rows[len(r.Rows)-1]
	if cell(t, lastRow[4]) <= cell(t, lastRow[2]) {
		t.Errorf("interference lookups %s not above no-interference %s", lastRow[4], lastRow[2])
	}
}

func TestFig5Ordering(t *testing.T) {
	r, err := fig5At05()
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	for _, row := range r.Rows {
		norm[row[1]] = cell(t, row[3])
	}
	// The paper's ordering relations.
	if norm["nonvolatile_apply"] <= norm["rpcs"] {
		t.Errorf("nonvolatile (%.1f) not above rpcs (%.1f)", norm["nonvolatile_apply"], norm["rpcs"])
	}
	if norm["rpcs"] <= norm["volatile_apply"] {
		t.Errorf("rpcs (%.1f) not above volatile (%.1f)", norm["rpcs"], norm["volatile_apply"])
	}
	if norm["rpcs"] < 10 {
		t.Errorf("rpcs %.1fx, want >10x", norm["rpcs"])
	}
	if norm["local_persist"] >= 1 {
		t.Errorf("local persist %.2fx, want <1x", norm["local_persist"])
	}
	if norm["global_persist"] <= norm["local_persist"] {
		t.Errorf("global (%.2f) not above local (%.2f)", norm["global_persist"], norm["local_persist"])
	}
	if norm["stream (journal on - off)"] <= norm["local_persist"] {
		t.Errorf("stream (%.2f) not the most expensive durability bar", norm["stream (journal on - off)"])
	}
}

func TestFig6aOrdering(t *testing.T) {
	r, err := fig6aAt05()
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	rpc, merge, create := cell(t, last[1]), cell(t, last[2]), cell(t, last[3])
	if !(create > merge && merge > rpc) {
		t.Errorf("ordering broken: create %.1f, merge %.1f, rpc %.1f", create, merge, rpc)
	}
	// Decoupled creates scale linearly: at 20 clients they beat RPCs by
	// a wide margin even at tiny scale.
	if create/rpc < 10 {
		t.Errorf("create/rpc ratio = %.1f, want >10", create/rpc)
	}
}

func TestFig6bBlockHelps(t *testing.T) {
	r, err := Run("fig6b", tiny)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	interf, block := cell(t, last[3]), cell(t, last[5])
	if block >= interf {
		t.Errorf("block slowdown %.2f not below interference %.2f", block, interf)
	}
}

func TestFig6cShape(t *testing.T) {
	r, err := Run("fig6c", Options{Scale: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	over1 := cell(t, r.Rows[0][2])
	over10 := cell(t, r.Rows[3][2])
	if over1 <= over10 {
		t.Errorf("1 s overhead %.1f%% not above 10 s overhead %.1f%%", over1, over10)
	}
	for i, row := range r.Rows {
		if cell(t, row[2]) < 0 {
			t.Errorf("row %d negative overhead", i)
		}
	}
}

func TestMultiMDSThroughputScales(t *testing.T) {
	r, err := Run("multimds", Options{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(multiMDSRanks) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Aggregate create throughput must rise with every added rank while
	// the MDS CPU is the bottleneck.
	prev := 0.0
	for _, row := range r.Rows {
		rate := cell(t, row[2])
		if rate <= prev {
			t.Errorf("ranks=%s: %.0f creates/s not above %.0f at previous rank count", row[0], rate, prev)
		}
		prev = rate
	}
	// 4 ranks should come well clear of the single-MDS saturation point.
	first, last := cell(t, r.Rows[0][2]), cell(t, r.Rows[len(r.Rows)-1][2])
	if last/first < 2 {
		t.Errorf("4-rank speedup = %.2fx, want >2x", last/first)
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.001}
	if got := o.scaled(100000, 200); got != 200 {
		t.Fatalf("floor not applied: %d", got)
	}
	o = Options{Scale: 0}
	if got := o.scaled(100, 1); got != 100 {
		t.Fatalf("zero scale: %d", got)
	}
}
