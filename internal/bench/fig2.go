package bench

import (
	"fmt"

	"cudele"
	"cudele/internal/sim"
	"cudele/internal/workload"
)

func init() {
	register("fig2", "MDS resource utilization while compiling in a CephFS mount (Fig 2)", Fig2)
	markUtilization("fig2")
}

type fig2PhaseRow struct {
	name           string
	ops            int
	secs           float64
	cpu, net, disk float64
}

// Fig2 replays the compile-trace phase mix against one client with
// journaling on and reports, per phase, the metadata op rate and the
// utilization of the MDS CPU, the fabric, and the OSD disks. The paper's
// claim: the create-heavy untar phase has the highest combined resource
// usage because of consistency/durability demands. Its single simulation
// is a 1-run grid so it shares the runner's leak checking.
func Fig2(opts Options) (*Result, error) {
	grids, err := runGrid(opts, 1, func(int) ([]fig2PhaseRow, error) {
		return fig2Run(opts)
	})
	if err != nil {
		return nil, err
	}
	return fig2Render(grids[0])
}

func fig2Run(opts Options) ([]fig2PhaseRow, error) {
	cfg := cudele.DefaultConfig()
	// Scale the segment size with the workload so journal segments seal
	// (and stream to the object store) at a proportional rate.
	cfg.SegmentEvents = opts.scaled(1024, 64)
	cl := cudele.NewCluster(cudele.WithSeed(opts.Seed), cudele.WithConfig(cfg))
	opts.Sink.start("fig2/run000", cl)
	cl.MDS().SetStream(true)
	c := cl.NewClient("client.0")

	var rows []fig2PhaseRow
	var runErr error

	cl.Run(func(p cudele.Proc) {
		root, err := c.Mkdir(p, cudele.RootIno, "linux-build", 0755)
		if err != nil {
			runErr = err
			return
		}
		for _, ph := range workload.CompilePhases() {
			ph.Units = opts.scaled(ph.Units, 8)
			// Phase setup (working directory, draining the previous
			// phase's journal) stays outside the measurement window.
			phaseDir, err := c.Mkdir(p, root, ph.Name, 0755)
			if err != nil {
				runErr = err
				return
			}
			cl.MDS().FlushJournal(p)
			cpuMark := cl.MDS().CPU().UtilizationMark()
			netMark := cl.Objects().Net().UtilizationMark()
			diskMarks := make([]sim.ResourceMark, 0, len(cl.Objects().OSDs()))
			for _, osd := range cl.Objects().OSDs() {
				diskMarks = append(diskMarks, osd.Disk.UtilizationMark())
			}
			start := p.Now()

			ops, err := workload.RunPhase(p, c, phaseDir, ph)
			if err != nil {
				runErr = fmt.Errorf("phase %s: %w", ph.Name, err)
				return
			}

			secs := (p.Now() - start).Seconds()
			disk := 0.0
			for i, osd := range cl.Objects().OSDs() {
				disk += osd.Disk.UtilizationSince(diskMarks[i])
			}
			disk /= float64(len(cl.Objects().OSDs()))
			rows = append(rows, fig2PhaseRow{
				name: ph.Name, ops: ops, secs: secs,
				cpu:  cl.MDS().CPU().UtilizationSince(cpuMark),
				net:  cl.Objects().Net().UtilizationSince(netMark),
				disk: disk,
			})
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	opts.Sink.finish("fig2/run000", cl)
	return rows, reap(cl)
}

func fig2Render(rows []fig2PhaseRow) (*Result, error) {
	r := &Result{
		ID:      "fig2",
		Title:   "per-phase MDS load for a Linux-compile-like workload (journal on)",
		Columns: []string{"phase", "metadata ops", "duration s", "ops/s", "MDS CPU", "network", "OSD disk", "combined"},
	}
	var untarCombined, maxOther float64
	var untarName string
	for _, row := range rows {
		combined := row.cpu + row.net + row.disk
		r.AddRow(row.name, fmt.Sprintf("%d", row.ops), f2(row.secs),
			f0(float64(row.ops)/row.secs), pct(row.cpu), pct(row.net), pct(row.disk), pct(combined))
		if row.name == "untar" {
			untarCombined, untarName = combined, row.name
		} else if combined > maxOther {
			maxOther = combined
		}
	}
	r.Notef("paper: the create-heavy untar phase incurs the highest disk, network, and CPU utilization")
	r.Notef("measured: %s combined utilization %.2f vs max other phase %.2f (ratio %.1fx)",
		untarName, untarCombined, maxOther, untarCombined/maxOther)
	return r, nil
}
