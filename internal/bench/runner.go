package bench

import (
	"runtime"
	"sync"

	"cudele"
)

// This file is the parallel run scheduler. Every experiment is a grid of
// fully independent deterministic simulations (each run builds its own
// cluster and sim.Engine from an explicit seed), so cross-run parallelism
// cannot perturb any simulated result: runGrid executes the grid on a
// worker pool and reassembles results in grid order, making rendered
// tables byte-identical for every worker count. In-run parallelism would
// NOT be safe — a sim.Engine is single-threaded by construction — which
// is why the unit of scheduling is the whole run.

// workerCount resolves Options.Workers: 0 (the default) uses GOMAXPROCS,
// 1 forces sequential execution (-parallel 1), n > len(grid) is clamped
// by runGrid.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runGrid executes n independent runs across the options' worker pool and
// returns their results indexed by grid position. The first error in grid
// order wins, so error reporting is deterministic too.
func runGrid[T any](opts Options, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := opts.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = run(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// reap asserts that a drained cluster leaked no simulation processes and
// releases the engine's goroutines. Every run helper calls it so the
// worker pool cannot accumulate parked goroutines across the dozens of
// runs in a full `cudele-bench all` — and so a leak in any experiment
// fails loudly instead of hiding in a worker.
func reap(cl *cudele.Cluster) error {
	err := cl.Runtime().LeakCheck()
	cl.Runtime().Shutdown()
	return err
}
