// Package bench regenerates every table and figure in the paper's
// evaluation (Sevilla et al., IPDPS 2018): Figure 2 (compile-phase
// resource usage), Figures 3a-3c (POSIX overheads), Table I (the
// policy spectrum), Figure 5 (per-mechanism microbenchmarks), and
// Figures 6a-6c (use cases). Each experiment builds a fresh simulated
// cluster, runs the paper's workload, and reports rows shaped like the
// paper's plots, normalized the same way.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"cudele/internal/obs"
)

// Options scales experiments. Scale 1.0 is paper scale (100K creates per
// client, 1M updates for Fig 6c); tests use smaller scales, which
// preserve the normalized shapes.
type Options struct {
	Scale float64
	Seed  int64

	// Workers caps how many of an experiment's independent runs execute
	// concurrently (the -parallel flag). 0 means GOMAXPROCS; 1 forces
	// sequential execution. Every run owns its engine, so rendered
	// tables are byte-identical for any value.
	Workers int

	// Sink, when non-nil, collects a trace recorder and metric registry
	// from every simulation run (the -trace/-metrics flags). Observation
	// is passive: tables are byte-identical with or without a sink.
	Sink *Sink

	// Heat, when true, enables per-subtree heat accounting on every run
	// (the -heat flag). Like the sink, heat accounting is passive:
	// tables stay byte-identical with it on (TestHeatDoesNotPerturb).
	Heat bool

	// Admin, when non-nil, is the live admin endpoint (-admin): each
	// real-backend run installs itself as the endpoint's scrape source
	// while it executes, so /metrics and /heat serve that run live.
	Admin *obs.Admin

	// DataDir, when non-empty, roots the real backend's durability: each
	// real run gets its own subdirectory for fsynced object files and
	// client journals. Only RunReal reads it; the registered experiments
	// are all pure simulations.
	DataDir string
}

// DefaultOptions is paper scale.
func DefaultOptions() Options { return Options{Scale: 1.0, Seed: 1} }

// scaled returns n scaled down, with a floor to keep workloads
// meaningful.
func (o Options) scaled(n, floor int) int {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	m := int(float64(n) * s)
	if m < floor {
		m = floor
	}
	return m
}

// Result is one regenerated table or figure.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, converting values with %v for convenience.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render draws the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values (header + rows).
func (r *Result) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)

	// Utilization marks experiments whose tables include device
	// utilization columns (surfaced by cudele-bench -list).
	Utilization bool
}

var registry = map[string]*Experiment{}

func register(id, title string, run func(Options) (*Result, error)) {
	registry[id] = &Experiment{ID: id, Title: title, Run: run}
}

// markUtilization flags a registered experiment as emitting utilization
// columns.
func markUtilization(id string) { registry[id].Utilization = true }

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a registered experiment.
func Lookup(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes the experiment with the given options.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.Run(opts)
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f2x(v float64) string { return fmt.Sprintf("%.2fx", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
