package bench

import (
	"fmt"
	"time"

	"cudele"
	"cudele/internal/namespace"
	"cudele/internal/obs"
	"cudele/internal/policy"
	"cudele/internal/workload"
)

// jobConfig describes one multi-client create-heavy run: n clients each
// creating perClient files in private directories (the workload of §II
// and §V-B), optionally with journaling, an interfering client, and
// per-directory interfere-block policies.
type jobConfig struct {
	seed      int64
	clients   int
	perClient int

	journal  bool
	dispatch int
	// segEvents overrides the journal segment size so that scaled-down
	// workloads still seal segments at a proportional rate; 0 keeps the
	// default.
	segEvents int

	jitter time.Duration // max random client start stagger

	interfereAt     float64 // seconds; 0 disables the interferer
	interferePerDir int
	blockPolicy     bool // register each private dir with interfere: block

	// sink/run route this run's trace and metrics to the experiment's
	// observability sink; a nil sink means observation is off.
	sink *Sink

	// heat enables per-subtree heat accounting on the run's cluster;
	// admin, on the real backend, installs the run as the live admin
	// endpoint's scrape source for its duration.
	heat  bool
	admin *obs.Admin

	run string

	// backend selects the execution backend; the zero value is the
	// simulator, so every registered experiment is untouched. dataDir,
	// on the real backend, roots this run's fsynced object files.
	backend cudele.Backend
	dataDir string
}

// jobResult reports per-client completion times and the total job time.
type jobResult struct {
	perClient []float64 // seconds, excluding start jitter
	total     float64   // seconds until every client finished
}

// slowest returns the slowest client's time.
func (j *jobResult) slowest() float64 {
	worst := 0.0
	for _, v := range j.perClient {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// runCreateJob executes the workload and returns per-client timings.
func runCreateJob(jc jobConfig) (*jobResult, error) {
	cfg := cudele.DefaultConfig()
	if jc.dispatch > 0 {
		cfg.DispatchSize = jc.dispatch
	}
	if jc.segEvents > 0 {
		cfg.SegmentEvents = jc.segEvents
	}
	copts := []cudele.Option{cudele.WithSeed(jc.seed), cudele.WithConfig(cfg)}
	if jc.backend == cudele.BackendReal {
		copts = append(copts, cudele.WithBackend(cudele.BackendReal))
		if jc.dataDir != "" {
			copts = append(copts, cudele.WithDataDir(jc.dataDir))
		}
	}
	cl := cudele.NewCluster(copts...)
	jc.sink.start(jc.run, cl)
	if jc.heat {
		cl.EnableHeat(0)
	}
	if jc.admin != nil && jc.backend == cudele.BackendReal {
		jc.admin.SetSource(cl.AdminSource())
	}
	cl.MDS().SetStream(jc.journal)

	clients := make([]*cudele.Client, jc.clients)
	for i := range clients {
		clients[i] = cl.NewClient(fmt.Sprintf("client.%d", i))
	}
	intruder := cl.NewClient("intruder")

	res := &jobResult{perClient: make([]float64, jc.clients)}
	dirs := make([]namespace.Ino, jc.clients)
	var setupErr error

	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		// Each client makes its private directory; optionally register
		// it with an interfere-block policy owned by that client
		// (Fig 6b's Cudele setup).
		for i, c := range clients {
			dir, err := c.Mkdir(p, cudele.RootIno, fmt.Sprintf("dir%d", i), 0755)
			if err != nil {
				setupErr = err
				return
			}
			dirs[i] = dir
			if jc.blockPolicy {
				pol := &policy.Policy{
					Consistency: policy.ConsStrong, Durability: policy.DurGlobal,
					AllocatedInodes: 100, Interfere: policy.InterfereBlock,
				}
				if _, err := cl.Monitor().RegisterPolicy(p, fmt.Sprintf("/dir%d", i), pol, c.Name()); err != nil {
					setupErr = err
					return
				}
			}
		}

		// Spawn the per-client create loops.
		for i, c := range clients {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				if jc.jitter > 0 {
					cp.Sleep(time.Duration(eng.Rand().Int63n(int64(jc.jitter))))
				}
				start := cp.Now()
				if _, _, err := workload.CreateMany(cp, c, dirs[i], jc.perClient, "f"); err != nil {
					setupErr = err
					return
				}
				res.perClient[i] = (cp.Now() - start).Seconds()
			})
		}

		// The interfering client creates files in every private
		// directory partway through the job (Fig 3b). Its arrival time
		// varies by half either way across trials — run-to-run
		// variability in when capabilities get revoked is what makes
		// interference runs noisy (paper Fig 3b's error bars).
		if jc.interfereAt > 0 {
			eng.Spawn("intruder", func(ip cudele.Proc) {
				at := jc.interfereAt * (0.5 + eng.Rand().Float64())
				ip.Sleep(time.Duration(at * 1e9))
				workload.Interfere(ip, intruder, dirs, jc.interferePerDir)
			})
		}
	})
	res.total = cl.RunAll()
	if setupErr != nil {
		return nil, setupErr
	}
	jc.sink.finish(jc.run, cl)
	if err := reap(cl); err != nil {
		return nil, err
	}
	return res, nil
}
