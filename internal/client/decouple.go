package client

import (
	"errors"
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/mds"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// ClientJournalPool is the RADOS pool that Global Persist pushes client
// journals into.
const ClientJournalPool = "cudele_client_journals"

// Decouple detaches the subtree at path for exclusive local processing:
// the MDS attaches the policy, grants an inode range, and the client
// starts an in-memory journal (paper §III). Subsequent Local* operations
// run entirely client-side via Append Client Journal.
func (c *Client) Decouple(p runtime.Task, path string, pol *policy.Policy) error {
	r := c.svc.Post(p, &mds.DecoupleMsg{Path: path, Policy: pol, Client: c.name}).(*mds.DecoupleReply)
	if r.Err != nil {
		return r.Err
	}
	return c.AdoptGrant(p, path, r.Lo, r.N)
}

// AdoptGrant attaches a decoupled subtree whose policy and inode grant
// were registered externally — normally by the monitor on the client's
// behalf (paper §III-C).
func (c *Client) AdoptGrant(p runtime.Task, path string, lo namespace.Ino, n uint64) error {
	root, err := c.Resolve(p, path)
	if err != nil {
		return err
	}
	c.dec = &decoupled{
		path:    path,
		root:    root,
		jrnl:    journal.New(c.cfg.SegmentEvents),
		grantLo: uint64(lo),
		grantN:  n,
		store:   namespace.NewStore(),
	}
	c.sync = nil
	return nil
}

// Decoupled reports whether the client has a decoupled subtree.
func (c *Client) Decoupled() bool { return c.dec != nil }

// DecoupledRoot returns the global inode of the decoupled subtree's root.
func (c *Client) DecoupledRoot() (namespace.Ino, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	return c.dec.root, nil
}

// Journal returns the client's in-memory journal (Append Client Journal's
// backing store).
func (c *Client) Journal() (*journal.Journal, error) {
	if c.dec == nil {
		return nil, ErrNotDecoupled
	}
	return c.dec.jrnl, nil
}

// JournalNominalBytes returns the journal's transfer footprint at the
// paper's ~2.5 KB per update.
func (c *Client) JournalNominalBytes() int64 {
	if c.dec == nil {
		return 0
	}
	return int64(c.dec.jrnl.Len()) * int64(c.cfg.JournalEventBytes)
}

// JournalEvents returns a snapshot of the decoupled journal's events in
// append order. The chaos harness captures merge batches with it so it
// can replay merge-order permutations offline.
func (c *Client) JournalEvents() ([]*journal.Event, error) {
	if c.dec == nil {
		return nil, ErrNotDecoupled
	}
	return c.dec.jrnl.Events(), nil
}

// allocIno draws the next inode number from the subtree grant.
func (d *decoupled) allocIno() (uint64, error) {
	if d.next >= d.grantN {
		return 0, fmt.Errorf("%w: %d inodes used", ErrNoInodes, d.grantN)
	}
	ino := d.grantLo + d.next
	d.next++
	return ino, nil
}

// InodesLeft returns the unused portion of the inode grant.
func (c *Client) InodesLeft() uint64 {
	if c.dec == nil {
		return 0
	}
	return c.dec.grantN - c.dec.next
}

// localParent maps a decoupled-namespace inode to the client-local image:
// the subtree root maps to the local root; locally created directories
// map to themselves (they use granted global numbers in both).
func (d *decoupled) localParent(dir namespace.Ino) namespace.Ino {
	if dir == d.root {
		return namespace.RootIno
	}
	return dir
}

// globalParent maps a local-image inode back to the global namespace.
func (d *decoupled) globalParent(dir namespace.Ino) uint64 {
	if dir == namespace.RootIno {
		return uint64(d.root)
	}
	return uint64(dir)
}

// appendEvent charges the Append Client Journal cost and records the
// event. Events are not checked against the global namespace — the
// metadata server will blindly apply them at merge time (paper §III-A).
func (c *Client) appendEvent(p runtime.Task, ev *journal.Event) error {
	span := c.eng.Tracer().Begin(int64(p.Now()), c.name, "journal", "journal.append")
	p.Sleep(c.cfg.ClientAppendTime)
	c.eng.Tracer().End(span, int64(p.Now()))
	ev.Client = c.name
	if _, err := c.dec.jrnl.Append(ev); err != nil {
		return err
	}
	c.stats.Appends++
	return nil
}

// LocalCreate creates a file in the decoupled subtree: a local-image
// insert plus a journal append. dir is the subtree root or a directory
// previously created with LocalMkdir.
func (c *Client) LocalCreate(p runtime.Task, dir namespace.Ino, name string, mode uint32) (namespace.Ino, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	ino, err := c.dec.allocIno()
	if err != nil {
		return 0, err
	}
	if _, err := c.dec.store.Create(c.dec.localParent(dir), name,
		namespace.CreateAttrs{Ino: namespace.Ino(ino), Mode: mode}); err != nil {
		return 0, err
	}
	ev := &journal.Event{
		Type: journal.EvCreate, Ino: ino,
		Parent: c.dec.globalParent(dir), Name: name, Mode: mode,
		Mtime: int64(p.Now()),
	}
	if err := c.appendEvent(p, ev); err != nil {
		return 0, err
	}
	if err := c.recordUndo(journal.EvCreate, ino, c.dec.globalParent(dir), name, nil); err != nil {
		return 0, err
	}
	c.stats.Creates++
	return namespace.Ino(ino), nil
}

// LocalMkdir creates a directory in the decoupled subtree.
func (c *Client) LocalMkdir(p runtime.Task, dir namespace.Ino, name string, mode uint32) (namespace.Ino, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	ino, err := c.dec.allocIno()
	if err != nil {
		return 0, err
	}
	if _, err := c.dec.store.Mkdir(c.dec.localParent(dir), name,
		namespace.CreateAttrs{Ino: namespace.Ino(ino), Mode: mode}); err != nil {
		return 0, err
	}
	ev := &journal.Event{
		Type: journal.EvMkdir, Ino: ino,
		Parent: c.dec.globalParent(dir), Name: name, Mode: mode,
		Mtime: int64(p.Now()),
	}
	if err := c.appendEvent(p, ev); err != nil {
		return 0, err
	}
	if err := c.recordUndo(journal.EvMkdir, ino, c.dec.globalParent(dir), name, nil); err != nil {
		return 0, err
	}
	return namespace.Ino(ino), nil
}

// LocalUnlink removes a file from the decoupled subtree. The event is
// timestamped so unlink/create races resolve deterministically in the
// strong-eventual cell; the stamp changes no calibrated cost (transfers
// bill at nominal bytes, not encoded bytes).
func (c *Client) LocalUnlink(p runtime.Task, dir namespace.Ino, name string) error {
	if c.dec == nil {
		return ErrNotDecoupled
	}
	victim, err := c.dec.store.Lookup(c.dec.localParent(dir), name)
	if err != nil {
		return err
	}
	vcopy := *victim
	if err := c.dec.store.Unlink(c.dec.localParent(dir), name); err != nil {
		return err
	}
	if err := c.appendEvent(p, &journal.Event{
		Type: journal.EvUnlink, Parent: c.dec.globalParent(dir), Name: name,
		Mtime: int64(p.Now()),
	}); err != nil {
		return err
	}
	return c.recordUndo(journal.EvUnlink, uint64(vcopy.Ino), c.dec.globalParent(dir), name, &vcopy)
}

// LocalLookup resolves one dentry in the client-local image of the
// decoupled subtree — the view speculative rollback edits.
func (c *Client) LocalLookup(dir namespace.Ino, name string) (namespace.Ino, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	in, err := c.dec.store.Lookup(c.dec.localParent(dir), name)
	if err != nil {
		return 0, err
	}
	return in.Ino, nil
}

// LocalReadDir lists a decoupled directory from the client-local image —
// no RPC needed.
func (c *Client) LocalReadDir(dir namespace.Ino) ([]string, error) {
	if c.dec == nil {
		return nil, ErrNotDecoupled
	}
	return c.dec.store.ReadDir(c.dec.localParent(dir))
}

// --- Mechanisms (paper §III-A) ---

// VolatileApply ships the client journal to the MDS and replays it onto
// the in-memory metadata store. On success the journal is cleared (the
// updates now live in the global namespace).
//
// With MergeChunkEvents 0 (the calibrated default) the journal goes as
// one message and merges as one job — the paper's all-at-once arrival
// model. A positive chunk size streams it instead: chunks flow through
// the MDS merge scheduler under windowed flow control, and peak transfer
// memory is one chunk, not the journal.
func (c *Client) VolatileApply(p runtime.Task) (int, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	chunk := c.cfg.MergeChunkEvents
	if chunk > 0 && c.dec.jrnl.Len() > 0 {
		return c.volatileApplyChunked(p, chunk)
	}
	c.noteTransfer(c.JournalNominalBytes())
	merge := func() *mds.MergeReply {
		return c.svc.Post(p, &mds.MergeMsg{
			Source:       c.dec.jrnl.InlineCursor(),
			NominalBytes: c.JournalNominalBytes(),
			Route:        c.dec.path,
		}).(*mds.MergeReply)
	}
	r := merge()
	// A bounce means the subtree is frozen or has migrated; the handler
	// never ran, so the journal cursor is untouched — refresh and retry.
	for tries := 0; tries < redirectRetryMax; tries++ {
		if _, ok := transport.IsRedirect(r.Err); !ok {
			break
		}
		c.stats.Redirects++
		p.Sleep(c.redirectDelay())
		c.svc.Refresh()
		r = merge()
	}
	if r.Err != nil {
		return r.Applied, r.Err
	}
	c.dec.jrnl.Reset()
	return r.Applied, nil
}

// volatileApplyChunked is the streamed merge: open (with admission
// backpressure), send windowed chunks, wait for the drain.
func (c *Client) volatileApplyChunked(p runtime.Task, chunk int) (int, error) {
	evBytes := int64(c.cfg.JournalEventBytes)
	openMerge := func() *mds.MergeOpenReply {
		return transport.SendWindowed(p, c.svc, &mds.MergeOpenMsg{
			Client:      c.name,
			Route:       c.dec.path,
			TotalEvents: c.dec.jrnl.Len(),
			TotalBytes:  c.JournalNominalBytes(),
		}, c.cfg.MergeRetryDelay).(*mds.MergeOpenReply)
	}
	open := openMerge()
	// A bounced open retries against refreshed routing; once admitted the
	// stream cannot be bounced mid-flight (a merge in progress blocks the
	// subtree's freeze).
	for tries := 0; tries < redirectRetryMax; tries++ {
		if _, ok := transport.IsRedirect(open.Err); !ok {
			break
		}
		c.stats.Redirects++
		p.Sleep(c.redirectDelay())
		c.svc.Refresh()
		open = openMerge()
	}
	if open.Err != nil {
		return 0, open.Err
	}
	cur := c.dec.jrnl.Cursor()
	for seq := 0; ; seq++ {
		evs := cur.Next(chunk)
		if evs == nil {
			break
		}
		bytes := int64(len(evs)) * evBytes
		c.noteTransfer(bytes)
		r := transport.SendWindowed(p, c.svc, &mds.MergeChunkMsg{
			StreamInfo: transport.StreamInfo{
				ID: open.ID, Seq: seq,
				Items: len(evs), Bytes: bytes,
				Last: cur.Remaining() == 0,
			},
			Route:  c.dec.path,
			Events: evs,
		}, c.cfg.MergeRetryDelay).(*mds.MergeChunkReply)
		if r.Err != nil {
			// Abandoning the stream without telling the MDS would leave
			// the admitted job parked in the scheduler forever, holding
			// its admission slot and inflating the merge queue for the
			// rest of the run.
			c.svc.Post(p, &mds.MergeAbortMsg{ID: open.ID, Route: c.dec.path})
			return 0, r.Err
		}
	}
	w := c.svc.Post(p, &mds.MergeWaitMsg{ID: open.ID, Route: c.dec.path}).(*mds.MergeReply)
	if w.Err != nil {
		return w.Applied, w.Err
	}
	c.dec.jrnl.Reset()
	return w.Applied, nil
}

// LocalPersist serializes the journal to the client's local disk. The
// transfer cost is the disk's write bandwidth over the journal's nominal
// footprint (paper §III-A). With MergeChunkEvents > 0 the image is
// encoded and billed chunk by chunk through a journal cursor, so the
// write buffer held at any instant is one chunk.
func (c *Client) LocalPersist(p runtime.Task) error {
	if c.dec == nil {
		return ErrNotDecoupled
	}
	chunk := c.cfg.MergeChunkEvents
	if chunk <= 0 {
		data, err := c.dec.jrnl.Export()
		if err != nil {
			return err
		}
		c.noteTransfer(c.JournalNominalBytes())
		c.chargeLocalDisk(p, c.JournalNominalBytes())
		c.localFiles["journal"] = data
		if err := c.persistUndoLocal(p); err != nil {
			return err
		}
		return c.persistLocal(p, data)
	}
	// Encode into a fresh buffer and install it only once the whole encode
	// has succeeded: reusing the previous image's backing array would
	// corrupt the stored recovery image if an event fails mid-encode.
	evBytes := int64(c.cfg.JournalEventBytes)
	var enc journal.Encoder
	file := journal.AppendHeader(nil)
	cur := c.dec.jrnl.InlineCursor()
	for {
		evs := cur.Next(chunk)
		if evs == nil {
			break
		}
		mark := len(file)
		for _, ev := range evs {
			var err error
			if file, err = enc.AppendEvent(file, ev); err != nil {
				return err
			}
		}
		c.noteTransfer(int64(len(file) - mark))
		c.chargeLocalDisk(p, int64(len(evs))*evBytes)
	}
	c.localFiles["journal"] = file
	if err := c.persistUndoLocal(p); err != nil {
		return err
	}
	return c.persistLocal(p, file)
}

// LocalJournalFile returns the bytes written by LocalPersist, as a
// recovering client would read them back.
func (c *Client) LocalJournalFile() ([]byte, bool) {
	b, ok := c.localFiles["journal"]
	return b, ok
}

// RecoverLocal reloads a persisted journal from local disk into a fresh
// decoupled context, as a client restarting after a failure would
// (paper §II-A: local durability means updates survive if the node
// recovers).
func (c *Client) RecoverLocal(p runtime.Task) (int, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	// With a real local directory, recovery reads the committed file —
	// what actually survived — and falls back to memory otherwise.
	data, ok, err := c.loadLocal(p)
	if err != nil {
		return 0, err
	}
	if !ok {
		if data, ok = c.localFiles["journal"]; !ok {
			return 0, errors.New("client: no persisted journal")
		}
	}
	c.chargeLocalDisk(p, int64(len(data)))
	j, err := journal.Import(data, c.cfg.SegmentEvents)
	if err != nil {
		return 0, err
	}
	c.dec.jrnl = j
	// Speculative mode rebuilds the local image and undo log from the
	// recovered journal itself: the ops are the authoritative record, so
	// a torn or missing persisted undo image cannot corrupt recovery.
	if c.dec.mode == policy.ConsSpeculative {
		if err := c.rebuildSpeculative(); err != nil {
			return 0, err
		}
	}
	return j.Len(), nil
}

// GlobalPersist pushes the serialized journal into the object store,
// striped in parallel to exploit the cluster's collective bandwidth
// (paper §V-A). With MergeChunkEvents > 0 the journal is encoded and
// written as a sequence of chunk objects instead of one image, so the
// in-flight buffer is one chunk; FetchGlobalJournal reads either layout.
func (c *Client) GlobalPersist(p runtime.Task) error {
	if c.dec == nil {
		return ErrNotDecoupled
	}
	striper := rados.NewStriper(c.obj)
	chunk := c.cfg.MergeChunkEvents
	if chunk <= 0 {
		data, err := c.dec.jrnl.Export()
		if err != nil {
			return err
		}
		c.noteTransfer(c.JournalNominalBytes())
		if err := striper.WriteBilled(p, ClientJournalPool, c.name, data,
			c.JournalNominalBytes()); err != nil {
			return fmt.Errorf("global persist: %w", err)
		}
		return c.persistUndoGlobal(p, striper)
	}
	evBytes := int64(c.cfg.JournalEventBytes)
	var enc journal.Encoder
	cur := c.dec.jrnl.Cursor()
	last := 0
	for idx := 0; ; idx++ {
		evs := cur.Next(chunk)
		if evs == nil && idx > 0 {
			last = idx - 1
			break
		}
		var buf []byte
		if idx == 0 {
			// The first chunk carries the image header, so the
			// concatenated chunks decode as one journal file. A chunk is
			// written even for an empty journal, so the name exists.
			buf = journal.AppendHeader(nil)
		}
		for _, ev := range evs {
			var err error
			if buf, err = enc.AppendEvent(buf, ev); err != nil {
				return err
			}
		}
		c.noteTransfer(int64(len(buf)))
		if err := striper.WriteBilled(p, ClientJournalPool, journalChunkName(c.name, idx),
			buf, int64(len(evs))*evBytes); err != nil {
			return fmt.Errorf("global persist: %w", err)
		}
		if evs == nil {
			last = idx
			break
		}
	}
	if err := c.removeStalePersist(p, striper, last); err != nil {
		return err
	}
	return c.persistUndoGlobal(p, striper)
}

// removeStalePersist deletes what an earlier, larger Global Persist left
// behind beyond the chunks just written: FetchGlobalJournal reassembles
// chunk objects up to the first gap and prefers the single-image layout
// outright, so a stale chunk tail would be appended to the recovered
// image (decoding as phantom events) and a stale single image would
// shadow the fresh chunks entirely. Probing a name that does not exist
// is free, so a persist with nothing stale charges no extra time.
func (c *Client) removeStalePersist(p runtime.Task, striper *rados.Striper, last int) error {
	for idx := last + 1; ; idx++ {
		if err := striper.Remove(p, ClientJournalPool, journalChunkName(c.name, idx)); err != nil {
			if errors.Is(err, rados.ErrNotFound) {
				break // first gap: nothing stale beyond it
			}
			return err
		}
	}
	if err := striper.Remove(p, ClientJournalPool, c.name); err != nil && !errors.Is(err, rados.ErrNotFound) {
		return err
	}
	return nil
}

// journalChunkName is the logical object name of one chunk of a chunked
// Global Persist.
func journalChunkName(owner string, idx int) string {
	return fmt.Sprintf("%s/c%06d", owner, idx)
}

// FetchGlobalJournal reads back a journal persisted by GlobalPersist,
// whichever layout it used: the single striped image, or the chunk
// sequence a streaming persist wrote.
func (c *Client) FetchGlobalJournal(p runtime.Task, owner string) ([]*journal.Event, error) {
	striper := rados.NewStriper(c.obj)
	data, err := striper.Read(p, ClientJournalPool, owner)
	if err == nil {
		return journal.Decode(data)
	}
	if !errors.Is(err, rados.ErrNotFound) {
		return nil, err
	}
	// Chunked layout: concatenate chunk objects until the first gap.
	var image []byte
	for idx := 0; ; idx++ {
		part, rerr := striper.Read(p, ClientJournalPool, journalChunkName(owner, idx))
		if rerr != nil {
			if !errors.Is(rerr, rados.ErrNotFound) {
				return nil, rerr
			}
			if idx == 0 {
				return nil, err // neither layout exists
			}
			break
		}
		image = append(image, part...)
	}
	return journal.Decode(image)
}

// NonvolatileApply replays the client journal onto the metadata store in
// the object store. For every update it pulls the affected directory
// object and the root object, applies the update, and pushes both back —
// the repeated read-modify-write the paper measures at 78x (§V-A). Pulls
// and pushes are charged at omap granularity (the affected dentry), since
// the dominant cost is the four object-store round trips per update, not
// bandwidth. After the last update the materialized directory objects are
// written out so a restarted metadata server (Server.Recover) observes
// the merged namespace.
func (c *Client) NonvolatileApply(p runtime.Task) (int, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	shadow := namespace.NewStore()
	rootOID := rados.ObjectID{Pool: namespace.ObjectPool, Name: namespace.DirObjectName(namespace.RootIno)}

	// Seed the shadow store from the root object if present.
	if data, err := c.obj.Read(p, rootOID); err == nil {
		if obj, derr := namespace.DecodeDir(data); derr == nil {
			if err := c.loadChain(p, shadow, obj); err != nil {
				return 0, err
			}
		}
	}

	// Iterate the journal through a bounded-memory cursor: the batch size
	// only bounds the gather buffer — every per-event cost below is
	// charged identically regardless of where batches fall.
	batch := c.cfg.MergeChunkEvents
	if batch <= 0 {
		batch = 256
	}
	applied := 0
	touched := map[namespace.Ino]bool{namespace.RootIno: true}
	cur := c.dec.jrnl.InlineCursor()
	for evs := cur.Next(batch); evs != nil; evs = cur.Next(batch) {
		if err := c.nonvolatileBatch(p, shadow, evs, rootOID, touched, &applied); err != nil {
			return applied, err
		}
	}

	// Materialize the final directory objects for recovery.
	for ino := range touched {
		if _, err := shadow.Get(ino); err != nil {
			continue // directory was removed by the journal
		}
		data, err := shadow.EncodeDir(ino)
		if err != nil {
			continue // a touched inode may be a file's parent only
		}
		if err := c.obj.Write(p, rados.ObjectID{
			Pool: namespace.ObjectPool,
			Name: namespace.DirObjectName(ino),
		}, data); err != nil {
			return applied, fmt.Errorf("nonvolatile apply: %w", err)
		}
	}
	c.dec.jrnl.Reset()
	return applied, nil
}

// nonvolatileBatch replays one cursor run of journal events with the
// per-update pull/apply/push round trips of Nonvolatile Apply.
func (c *Client) nonvolatileBatch(p runtime.Task, shadow *namespace.Store, evs []*journal.Event,
	rootOID rados.ObjectID, touched map[namespace.Ino]bool, applied *int) error {
	for _, ev := range evs {
		dirIno := namespace.Ino(ev.Parent)
		dirOID := rados.ObjectID{Pool: namespace.ObjectPool, Name: namespace.DirObjectName(dirIno)}

		// Make sure the affected directory is materialized in the
		// shadow store (first touch loads the ancestor chain).
		if _, err := shadow.Get(dirIno); err != nil {
			if data, rerr := c.obj.Read(p, dirOID); rerr == nil {
				if obj, derr := namespace.DecodeDir(data); derr == nil {
					if cerr := c.loadChain(p, shadow, obj); cerr != nil {
						return cerr
					}
				}
			}
		}

		// Pull both objects that may be affected — every update, as
		// the journal tool does (paper §V-A): the experiment
		// directory and the root.
		c.obj.OmapGet(p, dirOID, ev.Name)
		c.obj.OmapGet(p, rootOID, "rstat")

		if err := shadow.ApplyEvent(ev); err != nil {
			return fmt.Errorf("nonvolatile apply: %w", err)
		}
		*applied++
		touched[dirIno] = true
		if ev.Type == journal.EvMkdir {
			touched[namespace.Ino(ev.Ino)] = true
		}

		// Push both back (the updated dentry and the root's recursive
		// stats).
		if err := c.obj.OmapSet(p, dirOID,
			map[string][]byte{ev.Name: encodeDentry(shadow, dirIno, ev.Name)}); err != nil {
			return fmt.Errorf("nonvolatile apply: %w", err)
		}
		if err := c.obj.OmapSet(p, rootOID,
			map[string][]byte{"rstat": rstat(shadow)}); err != nil {
			return fmt.Errorf("nonvolatile apply: %w", err)
		}
	}
	return nil
}

// encodeDentry renders one dentry's omap value for the push-back.
func encodeDentry(s *namespace.Store, dir namespace.Ino, name string) []byte {
	in, err := s.Lookup(dir, name)
	if err != nil {
		return []byte("tombstone")
	}
	return []byte(fmt.Sprintf("ino=%d type=%v mode=%o", in.Ino, in.Type, in.Mode))
}

// rstat renders the root's recursive statistics omap value.
func rstat(s *namespace.Store) []byte {
	return []byte(fmt.Sprintf("inodes=%d version=%d", s.Len(), s.Version()))
}

// maxChainDepth bounds the ancestor walk of loadChain. A real namespace
// never approaches it; corrupt directory objects whose Parent pointers
// form an absurdly long — or infinite — chain must not hang the client.
const maxChainDepth = 4096

// loadChain installs obj into the shadow store, first loading any missing
// ancestors from the object store. The walk is iterative: ancestors are
// collected leaf-to-root, then installed root-first, so chain depth costs
// no stack. Cycles in Parent pointers (corrupt objects) and chains past
// maxChainDepth are reported as errors rather than looping forever.
func (c *Client) loadChain(p runtime.Task, shadow *namespace.Store, obj *namespace.DirObject) error {
	chain := []*namespace.DirObject{obj}
	seen := map[namespace.Ino]bool{obj.Ino: true}
	for cur := obj; cur.Ino != namespace.RootIno; cur = chain[len(chain)-1] {
		if _, err := shadow.Get(cur.Parent); err == nil {
			break // ancestor already materialized
		}
		if seen[cur.Parent] {
			return fmt.Errorf("nonvolatile apply: ancestor cycle at %d: %w", cur.Parent, namespace.ErrInval)
		}
		if len(chain) >= maxChainDepth {
			return fmt.Errorf("nonvolatile apply: ancestor chain deeper than %d at %d: %w",
				maxChainDepth, cur.Ino, namespace.ErrInval)
		}
		parentOID := rados.ObjectID{Pool: namespace.ObjectPool, Name: namespace.DirObjectName(cur.Parent)}
		data, rerr := c.obj.Read(p, parentOID)
		if rerr != nil {
			return fmt.Errorf("nonvolatile apply: missing ancestor %d: %w", cur.Parent, rerr)
		}
		pobj, derr := namespace.DecodeDir(data)
		if derr != nil {
			return derr
		}
		seen[pobj.Ino] = true
		chain = append(chain, pobj)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if err := shadow.InstallDir(chain[i]); err != nil {
			return err
		}
	}
	return nil
}

// RunComposition executes a policy composition: steps in sequence,
// mechanisms within a step in parallel (paper §III-B). RPCs and Append
// Client Journal are workload-time mechanisms, not completion-time ones,
// so they are no-ops here; Stream is an MDS-side setting owned by the
// composition — set on iff the composition contains it, so a previous
// streaming composition cannot leak journaling into this one.
func (c *Client) RunComposition(p runtime.Task, comp policy.Composition) error {
	c.svc.SetStream(comp.Contains(policy.MechStream))
	for _, step := range comp {
		if len(step.Parallel) == 1 {
			if err := c.runMechanism(p, step.Parallel[0]); err != nil {
				return err
			}
			continue
		}
		g := c.eng.NewGroup()
		errs := make([]error, len(step.Parallel))
		for i, m := range step.Parallel {
			i, m := i, m
			g.Go("mech."+m.String(), func(sp runtime.Task) {
				errs[i] = c.runMechanism(sp, m)
			})
		}
		g.Wait(p)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Client) runMechanism(p runtime.Task, m policy.Mechanism) error {
	switch m {
	case policy.MechRPCs, policy.MechAppendClientJournal:
		// Workload-time mechanisms; nothing to do at completion time.
		return nil
	case policy.MechStream:
		// Stream state is set for the whole composition by
		// RunComposition before any step runs.
		return nil
	case policy.MechVolatileApply:
		_, err := c.VolatileApply(p)
		return err
	case policy.MechNonvolatileApply:
		_, err := c.NonvolatileApply(p)
		return err
	case policy.MechLocalPersist:
		return c.LocalPersist(p)
	case policy.MechGlobalPersist:
		return c.GlobalPersist(p)
	case policy.MechSpeculativeApply:
		_, _, err := c.SpeculativeApply(p)
		return err
	case policy.MechConvergeApply:
		_, err := c.ConvergeApply(p)
		return err
	}
	return fmt.Errorf("client: unknown mechanism %v", m)
}
