package client

import (
	"cudele/internal/trace"
)

// FillMetrics copies the client's cumulative counters, latency
// histograms, and local-disk utilization into a metric registry, labeled
// with the client's session name. Pull-time only: nothing on the
// operation path changes.
func (c *Client) FillMetrics(reg *trace.Registry) {
	who := trace.KV{Key: "client", Val: c.name}

	reg.Counter("cudele_client_creates_total", "Successful creates (any mechanism).", float64(c.stats.Creates), who)
	reg.Counter("cudele_client_local_lookups_total", "Lookups satisfied from the local dentry cache.", float64(c.stats.LocalLookups), who)
	reg.Counter("cudele_client_remote_lookups_total", "Lookup RPCs sent to the MDS.", float64(c.stats.RemoteLookups), who)
	reg.Counter("cudele_client_rpcs_total", "Metadata RPCs sent.", float64(c.stats.RPCs), who)
	reg.Counter("cudele_client_journal_appends_total", "Events appended to the client journal.", float64(c.stats.Appends), who)
	reg.Counter("cudele_client_rejected_total", "-EBUSY replies from blocked subtrees.", float64(c.stats.Rejected), who)
	reg.Gauge("cudele_client_peak_transfer_bytes", "Largest single journal transfer buffer (whole journal one-shot, one chunk streamed).", float64(c.stats.PeakTransferBytes), who)

	reg.Histogram("cudele_client_rpc_latency_seconds", "RPC round-trip latency.", &c.latency, who)
	reg.Histogram("cudele_client_create_latency_seconds", "Whole-Create latency (lookup + create RPCs).", &c.createLatency, who)

	disk := c.localDisk.Snapshot()
	reg.Gauge("cudele_client_disk_utilization", "Mean busy fraction of the client's local disk.", disk.Utilization, who)
}
