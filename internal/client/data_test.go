package client

import (
	"bytes"
	"errors"
	"testing"

	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
)

func TestWriteReadFile(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	payload := make([]byte, 6<<20) // 1.5 stripes
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		ino, _ := c.Create(p, dir, "blob", 0644)
		if err := c.WriteFile(p, ino, payload); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		st, _ := c.Stat(p, ino)
		if st.Size != uint64(len(payload)) {
			t.Errorf("size = %d, want %d", st.Size, len(payload))
		}
		got, err := c.ReadFile(p, ino)
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("read mismatch (%d bytes, %v)", len(got), err)
		}
	})
}

func TestReadEmptyFile(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		ino, _ := c.Create(p, namespace.RootIno, "empty", 0644)
		got, err := c.ReadFile(p, ino)
		if err != nil || len(got) != 0 {
			t.Errorf("empty read = %d bytes, %v", len(got), err)
		}
	})
}

func TestWriteFileErrors(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		if err := c.WriteFile(p, dir, []byte("x")); !errors.Is(err, namespace.ErrIsDir) {
			t.Errorf("write to dir err = %v", err)
		}
		if _, err := c.ReadFile(p, dir); !errors.Is(err, namespace.ErrIsDir) {
			t.Errorf("read dir err = %v", err)
		}
		if err := c.WriteFile(p, 99999, nil); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("write missing err = %v", err)
		}
	})
}

func TestLocalWriteFileMerges(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	payload := []byte("checkpoint bytes")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsWeak, policy.DurNone, 100))
		root, _ := c.DecoupledRoot()
		ino, _ := c.LocalCreate(p, root, "ckpt", 0644)
		if err := c.LocalWriteFile(p, ino, payload); err != nil {
			t.Errorf("local write: %v", err)
			return
		}
		if _, err := c.VolatileApply(p); err != nil {
			t.Errorf("merge: %v", err)
			return
		}
		// The merged global namespace knows the size, and the data is
		// readable through the normal path.
		in, err := cl.srv.Store().Resolve("/job/ckpt")
		if err != nil || in.Size != uint64(len(payload)) {
			t.Errorf("merged size = %d, %v", in.Size, err)
			return
		}
		got, err := c.ReadFile(p, in.Ino)
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("read after merge = %q, %v", got, err)
		}
	})
}

func TestLocalWriteFileErrors(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		if err := c.LocalWriteFile(p, 1, nil); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("not decoupled err = %v", err)
		}
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurNone, 100))
		root, _ := c.DecoupledRoot()
		sub, _ := c.LocalMkdir(p, root, "sub", 0755)
		if err := c.LocalWriteFile(p, sub, nil); !errors.Is(err, namespace.ErrIsDir) {
			t.Errorf("local write dir err = %v", err)
		}
		if err := c.LocalWriteFile(p, 424242, nil); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("local write missing err = %v", err)
		}
	})
}

func TestRemoveFileData(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		ino, _ := c.Create(p, namespace.RootIno, "f", 0644)
		c.WriteFile(p, ino, []byte("bytes"))
		if err := c.RemoveFileData(p, ino); err != nil {
			t.Errorf("remove data: %v", err)
		}
		if err := c.RemoveFileData(p, ino); !errors.Is(err, rados.ErrNotFound) {
			t.Errorf("double remove err = %v", err)
		}
	})
}
