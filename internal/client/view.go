package client

import (
	"fmt"
	"sort"

	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/runtime"
)

// DeltaFS-style read-time views (paper §II-B): with invisible consistency
// there is no ground truth in the global namespace — snapshots of the
// metadata stay with the clients, and "consistent namespaces are
// constructed and resolved at application read time or when a 3rd-party
// system needs a view of the metadata". BuildView is that 3rd-party
// construction: it folds one or more clients' persisted journals over the
// current global namespace without merging anything.

// Snapshot returns an immutable copy of the client's decoupled namespace
// image plus the journal events that produce it, without disturbing the
// live journal. Other processes can replay the events to reconstruct the
// subtree exactly as it was at snapshot time.
func (c *Client) Snapshot() (*namespace.Store, []*journal.Event, error) {
	if c.dec == nil {
		return nil, nil, ErrNotDecoupled
	}
	events := c.dec.jrnl.Events()
	// Deep-copy by replay: the journal is the authoritative history.
	snap := namespace.NewStore()
	globalEvents := make([]*journal.Event, len(events))
	for i, ev := range events {
		copied := *ev
		globalEvents[i] = &copied
	}
	// Replay onto a local image rooted at the subtree (parent = root).
	for _, ev := range events {
		local := *ev
		if namespace.Ino(local.Parent) == c.dec.root {
			local.Parent = uint64(namespace.RootIno)
		}
		if err := snap.ApplyEvent(&local); err != nil {
			return nil, nil, fmt.Errorf("snapshot replay: %w", err)
		}
	}
	return snap, globalEvents, nil
}

// ViewSource names a client whose persisted journal contributes to a
// read-time view.
type ViewSource struct {
	// Owner is the client name whose journal Global Persist wrote.
	Owner string
}

// BuildView constructs a consistent namespace at read time: it copies the
// global namespace's current tree and overlays the persisted journals of
// the given owners, in order. Nothing is written back — the global
// namespace remains untouched, exactly like DeltaFS resolving a view for
// a reader or middleware. Conflicting creates resolve in favor of the
// later journal (the decoupled results are authoritative, §III-C).
func (c *Client) BuildView(p runtime.Task, sources []ViewSource) (*namespace.Store, error) {
	// Start from a copy of the global namespace: walk it via RPCs the
	// way a reader would. To keep RPC load realistic but bounded, the
	// view copies the tree with one readdir per directory plus one
	// getattr per entry.
	view := namespace.NewStore()
	if err := c.copyTree(p, view, namespace.RootIno, namespace.RootIno); err != nil {
		return nil, err
	}
	// Overlay each owner's persisted journal.
	ordered := append([]ViewSource(nil), sources...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Owner < ordered[j].Owner })
	for _, src := range ordered {
		events, err := c.FetchGlobalJournal(p, src.Owner)
		if err != nil {
			return nil, fmt.Errorf("view source %s: %w", src.Owner, err)
		}
		for _, ev := range events {
			if err := view.ApplyEvent(ev); err != nil {
				return nil, fmt.Errorf("view overlay %s: %w", src.Owner, err)
			}
		}
	}
	return view, nil
}

// copyTree mirrors the directory subtree rooted at srcDir (a global
// inode) into dst under dstDir, issuing the RPCs a real reader would.
func (c *Client) copyTree(p runtime.Task, dst *namespace.Store, srcDir, dstDir namespace.Ino) error {
	names, err := c.ReadDir(p, srcDir)
	if err != nil {
		return err
	}
	for _, name := range names {
		ino, err := c.Lookup(p, srcDir, name)
		if err != nil {
			continue // raced with a concurrent unlink
		}
		st, err := c.Stat(p, ino)
		if err != nil {
			continue
		}
		attrs := namespace.CreateAttrs{
			Ino: ino, Mode: st.Mode, UID: st.UID, GID: st.GID, Mtime: st.Mtime,
		}
		if st.IsDir {
			nd, err := dst.Mkdir(dstDir, name, attrs)
			if err != nil {
				return err
			}
			if err := c.copyTree(p, dst, ino, nd.Ino); err != nil {
				return err
			}
		} else {
			in, err := dst.Create(dstDir, name, attrs)
			if err != nil {
				return err
			}
			in.Size = st.Size
		}
	}
	return nil
}
