package client

import (
	"os"
	"path/filepath"

	"cudele/internal/runtime"
)

// This file is the real backend's Local Persist target: when a local
// directory is configured (SetLocalDir), the client journal is written
// to a real file with the same write→fsync→rename protocol the object
// store's FileStore uses, instead of charging the simulated disk pipe.
// The in-memory copy (localFiles) stays authoritative for lookups;
// the file is what survives a process kill, which is exactly the
// paper's definition of local durability.

// SetLocalDir makes Local Persist durable: journal images are fsynced
// into dir. Pass "" to return to the simulated disk model.
func (c *Client) SetLocalDir(dir string) { c.localDir = dir }

// chargeLocalDisk charges the simulated local-disk cost, skipped when a
// real local directory is configured (the fsync is the cost there).
func (c *Client) chargeLocalDisk(p runtime.Task, n int64) {
	if c.localDir != "" {
		return
	}
	c.localDisk.Transfer(p, n)
}

// persistLocal durably writes the journal image to the local directory
// (write tmp → fsync → rename → fsync dir), outside the run lock.
func (c *Client) persistLocal(p runtime.Task, data []byte) error {
	if c.localDir == "" {
		return nil
	}
	var err error
	p.Runtime().Blocking(func() { err = writeDurable(c.localDir, "journal", data) })
	return err
}

// loadLocal reads a persisted journal image back from the local
// directory; ok is false when none was ever committed.
func (c *Client) loadLocal(p runtime.Task) (data []byte, ok bool, err error) {
	if c.localDir == "" {
		return nil, false, nil
	}
	p.Runtime().Blocking(func() {
		data, err = os.ReadFile(filepath.Join(c.localDir, "journal"))
	})
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	return data, err == nil, err
}

// writeDurable commits data to dir/name atomically and durably.
func writeDurable(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dir, name)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
