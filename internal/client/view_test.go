package client

import (
	"errors"
	"fmt"
	"testing"

	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/runtime"
)

func TestSnapshot(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurNone, 100))
		root, _ := c.DecoupledRoot()
		sub, _ := c.LocalMkdir(p, root, "sub", 0755)
		c.LocalCreate(p, root, "a", 0644)
		c.LocalCreate(p, sub, "deep", 0644)

		snap, events, err := c.Snapshot()
		if err != nil {
			t.Errorf("snapshot: %v", err)
			return
		}
		if len(events) != 3 {
			t.Errorf("events = %d", len(events))
		}
		if _, err := snap.Resolve("/sub/deep"); err != nil {
			t.Errorf("snapshot missing deep file: %v", err)
		}
		// The snapshot is isolated: more writes don't appear in it.
		c.LocalCreate(p, root, "later", 0644)
		if _, err := snap.Resolve("/later"); err == nil {
			t.Error("snapshot not isolated from later writes")
		}
		// Snapshot events carry global parent inos, so a reader can
		// replay them into a view of the global tree.
		if events[0].Parent != uint64(root) && events[0].Parent != uint64(namespace.RootIno) {
			t.Errorf("snapshot event parent = %d", events[0].Parent)
		}
	})
	if _, _, err := (&Client{}).Snapshot(); !errors.Is(err, ErrNotDecoupled) {
		t.Fatalf("snapshot undecoupled err = %v", err)
	}
}

func TestBuildViewOverlaysPersistedJournals(t *testing.T) {
	cl := newCluster()
	a := cl.client("a")
	b := cl.client("b")
	reader := cl.client("reader")
	cl.run(t, func(p runtime.Task) {
		// Global namespace has some POSIX content.
		home, _ := reader.MkdirAll(p, "/home", 0755)
		reader.Create(p, home, "shared.txt", 0644)

		// Two DeltaFS-style jobs write invisibly and persist globally.
		for i, c := range []*Client{a, b} {
			path := fmt.Sprintf("/job%d", i)
			c.MkdirAll(p, path, 0755)
			c.Decouple(p, path, decouplePolicy(policy.ConsInvisible, policy.DurGlobal, 100))
			root, _ := c.DecoupledRoot()
			for k := 0; k < 5; k++ {
				c.LocalCreate(p, root, fmt.Sprintf("out%d", k), 0644)
			}
			if err := c.GlobalPersist(p); err != nil {
				t.Errorf("persist %s: %v", c.Name(), err)
				return
			}
		}

		// The global namespace knows nothing of the job outputs.
		if _, err := cl.srv.Store().Resolve("/job0/out0"); err == nil {
			t.Error("invisible updates leaked")
		}

		// A reader builds a consistent view at read time.
		view, err := reader.BuildView(p, []ViewSource{{Owner: "a"}, {Owner: "b"}})
		if err != nil {
			t.Errorf("build view: %v", err)
			return
		}
		for _, path := range []string{"/home/shared.txt", "/job0/out4", "/job1/out0"} {
			if _, err := view.Resolve(path); err != nil {
				t.Errorf("view missing %s: %v", path, err)
			}
		}
		// The view is read-only scaffolding: the global namespace is
		// still untouched.
		if _, err := cl.srv.Store().Resolve("/job0/out0"); err == nil {
			t.Error("building a view mutated the global namespace")
		}
		view.MustHealthy()
	})
}

func TestBuildViewMissingSource(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		if _, err := c.BuildView(p, []ViewSource{{Owner: "ghost"}}); err == nil {
			t.Error("view from missing journal succeeded")
		}
	})
}

func TestBuildViewEmptySources(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.MkdirAll(p, "/x/y", 0755)
		c.Create(p, dir, "f", 0644)
		view, err := c.BuildView(p, nil)
		if err != nil {
			t.Errorf("view: %v", err)
			return
		}
		if _, err := view.Resolve("/x/y/f"); err != nil {
			t.Errorf("view missing global file: %v", err)
		}
		if !namespace.Equal(view, cl.srv.Store()) {
			t.Error("sourceless view differs from global namespace")
		}
	})
}
