package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

type cluster struct {
	eng runtime.Runtime
	obj *rados.Cluster
	srv *mds.Server
}

func newCluster() *cluster {
	eng := sim.NewEngine(23)
	cfg := model.Default()
	obj := rados.New(eng, cfg)
	srv := mds.New(eng, cfg, obj)
	return &cluster{eng: eng, obj: obj, srv: srv}
}

func (cl *cluster) client(name string) *Client {
	c := New(cl.eng, model.Default(), name, cl.srv, cl.obj)
	c.Mount()
	return c
}

func (cl *cluster) run(t *testing.T, fn func(p runtime.Task)) {
	t.Helper()
	cl.eng.Spawn("test", fn)
	cl.eng.RunAll()
}

func TestRPCCreateUsesCap(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, err := c.Mkdir(p, namespace.RootIno, "d", 0755)
		if err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			if _, err := c.Create(p, dir, fmt.Sprintf("f%d", i), 0644); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
	})
	st := c.Stats()
	// First create may need a remote lookup (no cap yet); the rest are
	// local.
	if st.RemoteLookups > 1 {
		t.Fatalf("remote lookups = %d, want <= 1", st.RemoteLookups)
	}
	if st.LocalLookups < 9 {
		t.Fatalf("local lookups = %d, want >= 9", st.LocalLookups)
	}
	if st.Creates != 10 {
		t.Fatalf("creates = %d", st.Creates)
	}
}

func TestInterferenceForcesRemoteLookups(t *testing.T) {
	cl := newCluster()
	a := cl.client("a")
	b := cl.client("b")
	cl.run(t, func(p runtime.Task) {
		dir, _ := a.Mkdir(p, namespace.RootIno, "d", 0755)
		a.Create(p, dir, "f0", 0644)
		if !a.HoldsCap(dir) {
			t.Error("a does not hold cap after first create")
		}
		// b interferes.
		b.Create(p, dir, "intruder", 0644)
		// a's next create discovers the revocation on its reply; after
		// that every create needs a remote lookup.
		a.Create(p, dir, "f1", 0644)
		before := a.Stats().RemoteLookups
		for i := 2; i < 7; i++ {
			a.Create(p, dir, fmt.Sprintf("f%d", i), 0644)
		}
		after := a.Stats().RemoteLookups
		if after-before != 5 {
			t.Errorf("remote lookups after sharing = %d, want 5", after-before)
		}
		if a.HoldsCap(dir) {
			t.Error("a still believes it holds the cap")
		}
	})
}

func TestCreateExistingFails(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		c.Create(p, dir, "f", 0644)
		if _, err := c.Create(p, dir, "f", 0644); !errors.Is(err, namespace.ErrExist) {
			t.Errorf("duplicate create err = %v", err)
		}
		// Also through the remote-lookup path.
		c.shared[dir] = true
		if _, err := c.Create(p, dir, "f", 0644); !errors.Is(err, namespace.ErrExist) {
			t.Errorf("duplicate create (shared) err = %v", err)
		}
	})
}

func TestMkdirAllResolveReadDir(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, err := c.MkdirAll(p, "/a/b/c", 0755)
		if err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		got, err := c.Resolve(p, "/a/b/c")
		if err != nil || got != dir {
			t.Errorf("resolve = %d, %v; want %d", got, err, dir)
		}
		c.Create(p, dir, "f", 0644)
		names, err := c.ReadDir(p, dir)
		if err != nil || len(names) != 1 || names[0] != "f" {
			t.Errorf("readdir = %v, %v", names, err)
		}
		// Idempotent mkdirall.
		again, err := c.MkdirAll(p, "/a/b/c", 0755)
		if err != nil || again != dir {
			t.Errorf("second mkdirall = %d, %v", again, err)
		}
	})
}

func TestUnlinkRenameSetAttrStat(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		ino, _ := c.Create(p, dir, "f", 0644)
		if err := c.SetAttr(p, ino, 0600, 1, 2, 99, 12345); err != nil {
			t.Errorf("setattr: %v", err)
		}
		st, err := c.Stat(p, ino)
		if err != nil || st.Mode != 0600 || st.Size != 99 {
			t.Errorf("stat = %+v, %v", st, err)
		}
		if err := c.Rename(p, dir, "f", namespace.RootIno, "g"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if err := c.Unlink(p, namespace.RootIno, "g"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if _, err := c.Stat(p, ino); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("stat after unlink err = %v", err)
		}
	})
}

func decouplePolicy(cons policy.Consistency, dur policy.Durability, inodes int) *policy.Policy {
	return &policy.Policy{Consistency: cons, Durability: dur, AllocatedInodes: inodes}
}

func TestDecoupleLocalCreate(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		err := c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurNone, 1000))
		if err != nil {
			t.Errorf("decouple: %v", err)
			return
		}
		if !c.Decoupled() {
			t.Error("not decoupled")
		}
		root, _ := c.DecoupledRoot()
		start := p.Now()
		for i := 0; i < 500; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
				t.Errorf("local create %d: %v", i, err)
				return
			}
		}
		rate := 500 / (p.Now() - start).Seconds()
		// Paper: ~11K creates/s for Append Client Journal.
		if rate < 10000 || rate > 12000 {
			t.Errorf("local create rate = %.0f/s, want ~11000", rate)
		}
		if c.InodesLeft() != 500 {
			t.Errorf("inodes left = %d", c.InodesLeft())
		}
		j, _ := c.Journal()
		if j.Len() != 500 {
			t.Errorf("journal len = %d", j.Len())
		}
		// Local reads need no RPC.
		names, err := c.LocalReadDir(root)
		if err != nil || len(names) != 500 {
			t.Errorf("local readdir = %d names, %v", len(names), err)
		}
	})
}

func TestGrantExhaustion(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurNone, 3))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 3; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
				t.Errorf("create %d: %v", i, err)
			}
		}
		if _, err := c.LocalCreate(p, root, "overflow", 0644); !errors.Is(err, ErrNoInodes) {
			t.Errorf("overflow err = %v, want ErrNoInodes", err)
		}
	})
}

func TestNotDecoupledErrors(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		if _, err := c.LocalCreate(p, namespace.RootIno, "f", 0644); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("local create err = %v", err)
		}
		if _, err := c.VolatileApply(p); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("volatile apply err = %v", err)
		}
		if err := c.LocalPersist(p); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("local persist err = %v", err)
		}
		if err := c.GlobalPersist(p); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("global persist err = %v", err)
		}
		if _, err := c.NonvolatileApply(p); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("nonvolatile apply err = %v", err)
		}
		if _, _, err := c.SyncNow(p); !errors.Is(err, ErrNotDecoupled) {
			t.Errorf("sync err = %v", err)
		}
	})
}

func TestVolatileApplyMergesIntoGlobal(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsWeak, policy.DurNone, 1000))
		root, _ := c.DecoupledRoot()
		sub, _ := c.LocalMkdir(p, root, "sub", 0755)
		for i := 0; i < 20; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		c.LocalCreate(p, sub, "deep", 0644)
		n, err := c.VolatileApply(p)
		if err != nil || n != 22 {
			t.Errorf("volatile apply = %d, %v", n, err)
			return
		}
		// Everything is now visible in the global namespace.
		if _, err := cl.srv.Store().Resolve("/job/sub/deep"); err != nil {
			t.Errorf("merged file missing: %v", err)
		}
		if _, err := cl.srv.Store().Resolve("/job/f19"); err != nil {
			t.Errorf("merged file missing: %v", err)
		}
		j, _ := c.Journal()
		if j.Len() != 0 {
			t.Errorf("journal not cleared after merge: %d", j.Len())
		}
	})
}

func TestLocalPersistRecover(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurLocal, 100))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		if err := c.LocalPersist(p); err != nil {
			t.Errorf("persist: %v", err)
			return
		}
		if _, ok := c.LocalJournalFile(); !ok {
			t.Error("no local journal file")
		}
		// Simulate a crash-and-recover: wipe the in-memory journal.
		j, _ := c.Journal()
		j.Reset()
		n, err := c.RecoverLocal(p)
		if err != nil || n != 10 {
			t.Errorf("recover = %d, %v", n, err)
			return
		}
		// The recovered journal can now be merged.
		if n, err := c.VolatileApply(p); err != nil || n != 10 {
			t.Errorf("post-recovery merge = %d, %v", n, err)
		}
	})
}

func TestGlobalPersistFetch(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	other := cl.client("c1")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurGlobal, 100))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 5; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		if err := c.GlobalPersist(p); err != nil {
			t.Errorf("global persist: %v", err)
			return
		}
		// Any client (e.g. a recovery tool) can fetch it back.
		events, err := other.FetchGlobalJournal(p, "c0")
		if err != nil || len(events) != 5 {
			t.Errorf("fetch = %d events, %v", len(events), err)
		}
	})
}

func TestNonvolatileApplyThenRecover(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		// Flush the namespace so the object store has the dir objects.
		if err := cl.srv.SaveStore(p); err != nil {
			t.Errorf("save store: %v", err)
			return
		}
		c.Decouple(p, "/job", decouplePolicy(policy.ConsWeak, policy.DurGlobal, 100))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		n, err := c.NonvolatileApply(p)
		if err != nil || n != 10 {
			t.Errorf("nonvolatile apply = %d, %v", n, err)
			return
		}
		// Restart the MDS: it notices the updates in the object store.
		if err := cl.srv.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			if _, err := cl.srv.Store().Resolve(fmt.Sprintf("/job/f%d", i)); err != nil {
				t.Errorf("file f%d missing after recovery: %v", i, err)
			}
		}
	})
}

func TestNonvolatileApplyCost(t *testing.T) {
	// Nonvolatile Apply must be roughly 78x slower than appending to the
	// client journal (paper §V-A): ~7 ms per update.
	cl := newCluster()
	c := cl.client("c0")
	var perUpdate time.Duration
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		cl.srv.SaveStore(p)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsWeak, policy.DurGlobal, 200))
		root, _ := c.DecoupledRoot()
		const n = 100
		for i := 0; i < n; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		start := p.Now()
		if _, err := c.NonvolatileApply(p); err != nil {
			t.Errorf("apply: %v", err)
			return
		}
		perUpdate = time.Duration((p.Now() - start)) / n
	})
	if perUpdate < 5*time.Millisecond || perUpdate > 9*time.Millisecond {
		t.Fatalf("nonvolatile apply = %v/update, want ~7ms", perUpdate)
	}
}

func TestRunCompositionBatchFS(t *testing.T) {
	// BatchFS semantics: append + local persist + volatile apply.
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/batch", 0755)
		pol := decouplePolicy(policy.ConsWeak, policy.DurLocal, 100)
		c.Decouple(p, "/batch", pol)
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		comp, _ := pol.Composition()
		// Strip the workload-time step (append) — RunComposition treats
		// it as a no-op anyway.
		if err := c.RunComposition(p, comp); err != nil {
			t.Errorf("composition: %v", err)
			return
		}
		if _, ok := c.LocalJournalFile(); !ok {
			t.Error("local persist did not run")
		}
		if _, err := cl.srv.Store().Resolve("/batch/f9"); err != nil {
			t.Errorf("volatile apply did not run: %v", err)
		}
	})
}

func TestRunCompositionParallelStep(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/j", 0755)
		c.Decouple(p, "/j", decouplePolicy(policy.ConsInvisible, policy.DurNone, 100))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		comp, err := policy.ParseComposition("local_persist||global_persist")
		if err != nil {
			t.Errorf("parse: %v", err)
			return
		}
		if err := c.RunComposition(p, comp); err != nil {
			t.Errorf("composition: %v", err)
			return
		}
		if _, ok := c.LocalJournalFile(); !ok {
			t.Error("local persist missing")
		}
		if _, err := c.FetchGlobalJournal(p, "c0"); err != nil {
			t.Errorf("global persist missing: %v", err)
		}
	})
}

func TestRunCompositionStreamToggle(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		comp, _ := policy.ParseComposition("rpcs+stream")
		if err := c.RunComposition(p, comp); err != nil {
			t.Errorf("composition: %v", err)
		}
	})
	if !cl.srv.StreamEnabled() {
		t.Fatal("stream not enabled by composition")
	}
}

func TestNamespaceSync(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/exp", 0755)
		c.Decouple(p, "/exp", decouplePolicy(policy.ConsInvisible, policy.DurLocal, 10000))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 1000; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		pause, n, err := c.SyncNow(p)
		if err != nil || n != 1000 {
			t.Errorf("sync = %v, %d, %v", pause, n, err)
			return
		}
		if pause <= 0 {
			t.Error("sync had no pause")
		}
		// Nothing new: sync is a no-op.
		if _, n, _ := c.SyncNow(p); n != 0 {
			t.Errorf("empty sync shipped %d events", n)
		}
		for i := 1000; i < 1500; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		if _, n, _ := c.SyncNow(p); n != 500 {
			t.Errorf("second sync shipped %d events, want 500", n)
		}
		if err := c.WaitSyncVisible(p); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		// Partial results are visible to end-users via the global
		// namespace.
		names, err := cl.srv.Store().ReadDir(root)
		if err != nil || len(names) != 1500 {
			t.Errorf("global dir has %d names, %v; want 1500", len(names), err)
		}
		pauses, paused := c.SyncStats()
		if pauses != 2 || paused <= 0 {
			t.Errorf("sync stats = %d, %v", pauses, paused)
		}
	})
}

func TestSyncDrainOrdering(t *testing.T) {
	// Two quick syncs: the second drain must wait for the first, and
	// both land.
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/exp", 0755)
		c.Decouple(p, "/exp", decouplePolicy(policy.ConsInvisible, policy.DurNone, 10000))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 100; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("a%d", i), 0644)
		}
		c.SyncNow(p)
		for i := 0; i < 100; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("b%d", i), 0644)
		}
		c.SyncNow(p)
		if err := c.WaitSyncVisible(p); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		names, _ := cl.srv.Store().ReadDir(root)
		if len(names) != 200 {
			t.Errorf("global names = %d, want 200", len(names))
		}
	})
}

func TestBlockedSubtreeRejection(t *testing.T) {
	cl := newCluster()
	owner := cl.client("owner")
	intruder := cl.client("intruder")
	cl.run(t, func(p runtime.Task) {
		owner.MkdirAll(p, "/mine", 0755)
		pol := decouplePolicy(policy.ConsInvisible, policy.DurLocal, 100)
		pol.Interfere = policy.InterfereBlock
		owner.Decouple(p, "/mine", pol)
		dir, _ := intruder.Resolve(p, "/mine")
		if _, err := intruder.Create(p, dir, "x", 0644); !errors.Is(err, namespace.ErrBusy) {
			t.Errorf("intruder create err = %v, want ErrBusy", err)
		}
	})
	if intruder.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d", intruder.Stats().Rejected)
	}
}

func TestUnmountDropsState(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		c.Create(p, dir, "f", 0644)
		if !c.HoldsCap(dir) {
			t.Error("no cap before unmount")
		}
		c.Unmount()
		if c.HoldsCap(dir) {
			t.Error("cap survived unmount")
		}
	})
	if cl.srv.Sessions() != 0 {
		t.Fatalf("sessions = %d", cl.srv.Sessions())
	}
}
