package client

import (
	"cudele/internal/mds"
	"cudele/internal/runtime"
)

// Namespace sync (paper §V-B3): a decoupled client periodically sends the
// updates it has accumulated back to the global namespace so end-users can
// check job progress with ls, while the job keeps its decoupled-namespace
// performance. The client pauses only to fork a background process — the
// pause is the address-space copy — and an idle core does the logging and
// network transfer.

type syncState struct {
	synced   int            // journal events already shipped
	inFlight runtime.Signal // disk+network drain of the most recent sync
	visible  runtime.Signal // MDS apply of the most recent sync
	pauses   int
	paused   runtime.Duration
}

// SyncNow forks a background drain of all journal events appended since
// the previous sync. It returns the pause inflicted on the client and the
// number of events shipped. The drain itself proceeds on an idle core and
// completes asynchronously; drains are serialized with each other.
func (c *Client) SyncNow(p runtime.Task) (pause runtime.Duration, synced int, err error) {
	if c.dec == nil {
		return 0, 0, ErrNotDecoupled
	}
	if c.sync == nil {
		c.sync = &syncState{}
	}
	events := c.dec.jrnl.Events()
	delta := events[c.sync.synced:]
	if len(delta) == 0 {
		return 0, 0, nil
	}
	bytes := int64(len(delta)) * int64(c.cfg.JournalEventBytes)

	// The fork pause: base cost plus copying the journal pages.
	pause = c.cfg.ForkBase + runtime.Duration(float64(bytes)/c.cfg.ForkCopyBandwidth*1e9)
	p.Sleep(pause)
	c.sync.synced = len(events)
	c.sync.pauses++
	c.sync.paused += pause

	prev := c.sync.inFlight
	prevVisible := c.sync.visible
	drained := c.eng.NewSignal()
	visible := c.eng.NewSignal()
	c.sync.inFlight = drained
	c.sync.visible = visible
	svc := c.svc
	route := c.dec.path
	c.eng.Spawn(c.name+".syncdrain", func(bp runtime.Task) {
		if prev != nil {
			prev.Wait(bp) // drains are ordered
		}
		// Log the updates and push them over disk+network from the
		// idle core. Once the bytes are at the metadata server the
		// drain is complete; the MDS applies them at its own pace.
		bp.Sleep(runtime.Duration(float64(bytes) / c.cfg.SyncDrainBandwidth * 1e9))
		drained.Fire(nil)
		if prevVisible != nil {
			prevVisible.Wait(bp) // applies are ordered too
		}
		// Partial updates become visible in the global namespace.
		// The transfer cost was charged above, so the apply ships
		// zero nominal bytes.
		r := svc.Post(bp, &mds.MergeMsg{Events: delta, NominalBytes: 0, Route: route}).(*mds.MergeReply)
		visible.Fire(r.Err)
	})
	return pause, len(delta), nil
}

// WaitSyncDrain blocks until the most recent sync's bytes have finished
// their disk+network transfer to the metadata server. The final drain at
// job end is on the critical path, which is why very large sync intervals
// cost more than the optimum (paper Fig 6c).
func (c *Client) WaitSyncDrain(p runtime.Task) error {
	if c.sync == nil || c.sync.inFlight == nil {
		return nil
	}
	v := c.sync.inFlight.Wait(p)
	if err, ok := v.(error); ok && err != nil {
		return err
	}
	return nil
}

// WaitSyncVisible blocks until the most recent sync's updates have been
// applied to the global namespace (end-users' ls sees them).
func (c *Client) WaitSyncVisible(p runtime.Task) error {
	if c.sync == nil || c.sync.visible == nil {
		return nil
	}
	v := c.sync.visible.Wait(p)
	if err, ok := v.(error); ok && err != nil {
		return err
	}
	return nil
}

// SyncStats reports the number of sync pauses and the total time the
// client spent paused.
func (c *Client) SyncStats() (pauses int, paused runtime.Duration) {
	if c.sync == nil {
		return 0, 0
	}
	return c.sync.pauses, c.sync.paused
}
