// Package client implements the Cudele client library (paper §III-A,
// §IV-B): the RPC path with capability-aware local lookups, and the
// decoupled-namespace mechanisms — Append Client Journal, Volatile Apply,
// Nonvolatile Apply, Local Persist, Global Persist — plus the namespace
// sync used for partial results (§V-B3).
//
// All operations run inside simulation processes and charge calibrated
// virtual time; the metadata itself (journals, namespaces, objects) is
// real data manipulated for real.
package client

import (
	"errors"
	"fmt"
	gopath "path"
	"time"

	"cudele/internal/journal"
	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/stats"
	"cudele/internal/trace"
	"cudele/internal/transport"
)

// Service is the client's contract with the metadata service: a message
// endpoint plus session, stream, and routing-refresh control. Both a
// single *mds.Server and a multi-rank *mds.Portal satisfy it; the client
// never holds a concrete server, so it works unchanged against any
// number of ranks.
type Service interface {
	transport.Endpoint
	OpenSession(client string)
	CloseSession(client string)
	SetStream(on bool)
	// Refresh re-syncs the service's routing view after a redirect reply
	// reported a newer cluster-map epoch. A single server no-ops.
	Refresh()
}

// redirectRetryMax bounds retries of a bounced request, guarding against
// a routing bug looping forever; a real migration resolves in a handful
// of retry delays.
const redirectRetryMax = 512

// ErrNoInodes is returned when a decoupled client exhausts its allocated
// inode grant (the "Allocated Inodes" contract of §III-C).
var ErrNoInodes = errors.New("client: allocated inode grant exhausted")

// ErrNotDecoupled is returned when a decoupled-namespace operation is
// attempted without a decoupled subtree.
var ErrNotDecoupled = errors.New("client: no decoupled subtree")

// Stats counts client-side activity; the interference benchmarks sample
// these over time (Fig 3c).
type Stats struct {
	Creates       uint64 // successful creates (any mechanism)
	LocalLookups  uint64 // lookups satisfied from the local dentry cache
	RemoteLookups uint64 // lookup RPCs sent to the MDS
	RPCs          uint64 // total RPCs sent
	Appends       uint64 // journal events appended locally
	Rejected      uint64 // -EBUSY replies from blocked subtrees
	Redirects     uint64 // bounced requests retried after a table refresh

	// PeakTransferBytes is the largest single buffer a durability
	// mechanism has put on the wire or disk at once: the whole journal's
	// nominal footprint on the one-shot paths, one chunk's on the
	// streamed paths. The merge pipeline's memory-boundedness claim is
	// read off this counter.
	PeakTransferBytes uint64
}

// Client is one storage client (application node).
type Client struct {
	eng  runtime.Runtime
	cfg  model.Config
	name string
	svc  Service
	obj  *rados.Cluster

	// localDisk models the node's own disk (Local Persist target).
	localDisk  runtime.Pipe
	localFiles map[string][]byte
	// localDir, when set, makes Local Persist write a real fsynced
	// file under it instead of charging localDisk (see localstore.go).
	localDir string

	// RPC-path state: which directories we hold the read-caching cap
	// on, which are known shared, and our local dentry cache.
	caps   map[namespace.Ino]bool
	shared map[namespace.Ino]bool
	dcache map[namespace.Ino]map[string]namespace.Ino

	// paths remembers the full path of inodes the client has resolved
	// or created, so requests carry a route hint for the rank-routing
	// layer. Unknown inodes route to rank 0.
	paths map[namespace.Ino]string

	// Decoupled-namespace state.
	dec *decoupled

	// crashed stashes the durable facts of the decoupled subtree across a
	// Crash, so Restart can re-attach to the same grant.
	crashed *grantStub

	// failRollback, when non-nil, makes the next speculative rollback
	// die after that many undos (test hook; see FailRollbackAfter).
	failRollback *int

	// Namespace-sync state (partial updates, §V-B3).
	sync *syncState

	stats Stats

	// latency records the round-trip time of every RPC the client
	// issues; createLatency records whole Create operations (including
	// any lookup RPC the capability state forces), for tail-latency
	// reporting.
	latency       stats.Histogram
	createLatency stats.Histogram
}

// decoupled holds the client's decoupled subtree context.
type decoupled struct {
	path    string
	root    namespace.Ino
	jrnl    *journal.Journal
	grantLo uint64
	grantN  uint64
	next    uint64
	// localDirs tracks directories created inside the decoupled
	// namespace (name resolution happens client-side).
	store *namespace.Store // client-local image of the subtree
	// mapping from the local image's inode numbers to granted inode
	// numbers is 1:1 — local creates draw from the grant directly.

	// mode is the subtree's consistency cell; it selects the merge path
	// (blind, speculative, or convergent). The zero value ConsInvisible
	// merges blind, so pre-existing flows are untouched.
	mode policy.Consistency
	// undo is the speculative-mode undo log: one EvUndo record per
	// journaled op, indexed 1:1 with the journal, consulted when the MDS
	// rejects predictions at merge time. nil outside ConsSpeculative.
	undo *journal.Journal
}

// New creates a client attached to a metadata service and object store.
// svc may be a single *mds.Server or a routed *mds.Portal.
func New(eng runtime.Runtime, cfg model.Config, name string, svc Service, obj *rados.Cluster) *Client {
	return &Client{
		eng:        eng,
		cfg:        cfg,
		name:       name,
		svc:        svc,
		obj:        obj,
		localDisk:  eng.NewPipe(name+".disk", cfg.LocalDiskBandwidth),
		localFiles: make(map[string][]byte),
		caps:       make(map[namespace.Ino]bool),
		shared:     make(map[namespace.Ino]bool),
		dcache:     make(map[namespace.Ino]map[string]namespace.Ino),
		paths:      map[namespace.Ino]string{namespace.RootIno: "/"},
	}
}

// Name returns the client's session name.
func (c *Client) Name() string { return c.name }

// redirectDelay is the pause before refreshing the routing table and
// retrying a bounced request.
func (c *Client) redirectDelay() runtime.Duration {
	if d := c.cfg.MigrateRetryDelay; d > 0 {
		return d
	}
	return 2 * time.Millisecond
}

// noteTransfer records one transfer buffer's size for the peak stat.
func (c *Client) noteTransfer(bytes int64) {
	if bytes > 0 && uint64(bytes) > c.stats.PeakTransferBytes {
		c.stats.PeakTransferBytes = uint64(bytes)
	}
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats { return c.stats }

// Latency returns the client's RPC round-trip histogram.
func (c *Client) Latency() *stats.Histogram { return &c.latency }

// CreateLatency returns the histogram of whole Create operations (lookup
// RPC, when one is needed, plus the create RPC).
func (c *Client) CreateLatency() *stats.Histogram { return &c.createLatency }

// LocalDisk exposes the client's disk pipe for utilization reporting.
func (c *Client) LocalDisk() runtime.Pipe { return c.localDisk }

// Mount opens the client's MDS session.
func (c *Client) Mount() { c.svc.OpenSession(c.name) }

// Unmount closes the session and drops cached state.
func (c *Client) Unmount() {
	c.svc.CloseSession(c.name)
	c.caps = make(map[namespace.Ino]bool)
	c.shared = make(map[namespace.Ino]bool)
	c.dcache = make(map[namespace.Ino]map[string]namespace.Ino)
	c.paths = map[namespace.Ino]string{namespace.RootIno: "/"}
}

// grantStub is what survives a client crash about its decoupled subtree:
// the registration (policy, inode grant) lives on the monitor and MDS,
// not in the client process, so a reborn client re-attaches to the same
// range. The allocation cursor is preserved too — inodes already drawn
// may be durable somewhere (a persisted journal, a merged namespace), so
// a restarted client must never hand them out a second time.
type grantStub struct {
	path    string
	grantLo uint64
	grantN  uint64
	next    uint64
	mode    policy.Consistency
}

// Crash models the client process dying: the session, RPC caches, and
// the decoupled in-memory journal and subtree image are all lost. The
// simulated local disk survives (that is what Local Persist buys), as do
// global objects. The MDS-side session is reaped as a real MDS would
// time it out.
func (c *Client) Crash() {
	if fl := c.eng.Flight(); fl != nil {
		fl.Record(int64(c.eng.Now()), c.name, "client", "crash", "")
	}
	c.svc.CloseSession(c.name)
	c.caps = make(map[namespace.Ino]bool)
	c.shared = make(map[namespace.Ino]bool)
	c.dcache = make(map[namespace.Ino]map[string]namespace.Ino)
	c.paths = map[namespace.Ino]string{namespace.RootIno: "/"}
	if c.dec != nil {
		c.crashed = &grantStub{
			path:    c.dec.path,
			grantLo: c.dec.grantLo,
			grantN:  c.dec.grantN,
			next:    c.dec.next,
			mode:    c.dec.mode,
		}
	}
	c.dec = nil
	c.sync = nil
}

// Restart brings a crashed client back: a fresh mount, and — when a
// decoupled registration survived the crash — a fresh decoupled context
// on the same grant, with the allocation cursor where the old life left
// it. The journal starts empty; RecoverLocal reloads a locally persisted
// image into it.
func (c *Client) Restart(p runtime.Task) error {
	if fl := c.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), c.name, "client", "restart", "")
	}
	c.Mount()
	stub := c.crashed
	c.crashed = nil
	if stub == nil {
		return nil
	}
	root, err := c.Resolve(p, stub.path)
	if err != nil {
		return err
	}
	c.dec = &decoupled{
		path:    stub.path,
		root:    root,
		jrnl:    journal.New(c.cfg.SegmentEvents),
		grantLo: stub.grantLo,
		grantN:  stub.grantN,
		next:    stub.next,
		store:   namespace.NewStore(),
		mode:    stub.mode,
	}
	if stub.mode == policy.ConsSpeculative {
		c.dec.undo = journal.New(c.cfg.SegmentEvents)
	}
	return nil
}

// notePath remembers an inode's path for route hints.
func (c *Client) notePath(ino namespace.Ino, path string) {
	if path != "" {
		c.paths[ino] = path
	}
}

// pathOf returns the known path of an inode, "" when unknown.
func (c *Client) pathOf(ino namespace.Ino) string { return c.paths[ino] }

// childPath joins a known directory path with a child name; unknown
// parents yield "" (route to rank 0).
func (c *Client) childPath(dir namespace.Ino, name string) string {
	base := c.paths[dir]
	if base == "" {
		return ""
	}
	return gopath.Join(base, name)
}

// submit sends one RPC, charging client-side overhead, and folds the
// reply's capability bits into local state.
func (c *Client) submit(p runtime.Task, req *mds.Request) *mds.Reply {
	start := p.Now()
	rec := c.eng.Tracer()
	span := trace.SpanID(-1)
	if rec != nil {
		span = rec.Begin(int64(start), c.name, "client", "rpc."+req.Op.String())
	}
	p.Sleep(c.cfg.ClientOpOverhead)
	req.Client = c.name
	c.stats.RPCs++
	reply := c.svc.Call(p, req).(*mds.Reply)
	// A bounced request — the subtree is frozen mid-migration, or our
	// routing table is stale — is retried after a short delay and a
	// table refresh, the paper's client-transparent handoff.
	for tries := 0; tries < redirectRetryMax; tries++ {
		if _, ok := transport.IsRedirect(reply.Err); !ok {
			break
		}
		c.stats.Redirects++
		p.Sleep(c.redirectDelay())
		c.svc.Refresh()
		c.stats.RPCs++
		reply = c.svc.Call(p, req).(*mds.Reply)
	}
	rec.End(span, int64(p.Now()))
	c.latency.Observe(runtime.Duration(p.Now() - start))
	if reply.CapGranted {
		c.caps[req.Parent] = true
	}
	if reply.CapLost {
		delete(c.caps, req.Parent)
		c.shared[req.Parent] = true
	}
	if errors.Is(reply.Err, namespace.ErrBusy) {
		c.stats.Rejected++
	}
	return reply
}

func (c *Client) cacheDentry(dir namespace.Ino, name string, ino namespace.Ino) {
	m := c.dcache[dir]
	if m == nil {
		m = make(map[string]namespace.Ino)
		c.dcache[dir] = m
	}
	m[name] = ino
}

// Create makes a regular file via the RPCs mechanism. Per the paper's
// §IV-C: if the client caches the directory inode (holds the read cap) it
// can check existence locally and send a single create RPC; otherwise it
// must send a lookup RPC first.
func (c *Client) Create(p runtime.Task, dir namespace.Ino, name string, mode uint32) (namespace.Ino, error) {
	start := p.Now()
	defer func() { c.createLatency.Observe(runtime.Duration(p.Now() - start)) }()
	if c.caps[dir] && !c.shared[dir] {
		// Local existence check against the cached dentries.
		c.stats.LocalLookups++
		if _, exists := c.dcache[dir][name]; exists {
			return 0, fmt.Errorf("create %q: %w", name, namespace.ErrExist)
		}
	} else {
		c.stats.RemoteLookups++
		lk := c.submit(p, &mds.Request{Op: mds.OpLookup, Parent: dir, Name: name, Route: c.pathOf(dir)})
		if lk.Err == nil {
			return 0, fmt.Errorf("create %q: %w", name, namespace.ErrExist)
		}
		if !errors.Is(lk.Err, namespace.ErrNotExist) {
			return 0, lk.Err
		}
	}
	r := c.submit(p, &mds.Request{Op: mds.OpCreate, Parent: dir, Name: name, Mode: mode, Route: c.pathOf(dir)})
	if r.Err != nil {
		return 0, r.Err
	}
	c.stats.Creates++
	c.cacheDentry(dir, name, r.Ino)
	c.notePath(r.Ino, c.childPath(dir, name))
	return r.Ino, nil
}

// Mkdir makes a directory via RPC.
func (c *Client) Mkdir(p runtime.Task, dir namespace.Ino, name string, mode uint32) (namespace.Ino, error) {
	r := c.submit(p, &mds.Request{Op: mds.OpMkdir, Parent: dir, Name: name, Mode: mode, Route: c.pathOf(dir)})
	if r.Err != nil {
		return 0, r.Err
	}
	c.cacheDentry(dir, name, r.Ino)
	c.notePath(r.Ino, c.childPath(dir, name))
	return r.Ino, nil
}

// MkdirAll resolves or creates each directory along path via RPC.
func (c *Client) MkdirAll(p runtime.Task, path string, mode uint32) (namespace.Ino, error) {
	cur := namespace.RootIno
	curPath := "/"
	for it := namespace.SplitIter(path); ; {
		comp, ok := it.Next()
		if !ok {
			break
		}
		lk := c.submit(p, &mds.Request{Op: mds.OpLookup, Parent: cur, Name: comp, Route: curPath})
		if lk.Err == nil {
			if !lk.IsDir {
				return 0, fmt.Errorf("mkdirall %q: %q: %w", path, comp, namespace.ErrNotDir)
			}
			cur = lk.Ino
			curPath = gopath.Join(curPath, comp)
			c.notePath(cur, curPath)
			continue
		}
		if !errors.Is(lk.Err, namespace.ErrNotExist) {
			return 0, lk.Err
		}
		mk := c.submit(p, &mds.Request{Op: mds.OpMkdir, Parent: cur, Name: comp, Mode: mode, Route: curPath})
		if mk.Err != nil {
			return 0, mk.Err
		}
		cur = mk.Ino
		curPath = gopath.Join(curPath, comp)
		c.notePath(cur, curPath)
	}
	return cur, nil
}

// Lookup resolves one dentry via RPC, bypassing the local cache (an
// explicit stat(2)-like existence check).
func (c *Client) Lookup(p runtime.Task, dir namespace.Ino, name string) (namespace.Ino, error) {
	c.stats.RemoteLookups++
	r := c.submit(p, &mds.Request{Op: mds.OpLookup, Parent: dir, Name: name, Route: c.pathOf(dir)})
	if r.Err != nil {
		return 0, r.Err
	}
	if r.IsDir {
		c.notePath(r.Ino, c.childPath(dir, name))
	}
	return r.Ino, nil
}

// Resolve walks a path on the server.
func (c *Client) Resolve(p runtime.Task, path string) (namespace.Ino, error) {
	r := c.submit(p, &mds.Request{Op: mds.OpResolve, Path: path, Route: path})
	if r.Err != nil {
		return 0, r.Err
	}
	if r.IsDir {
		c.notePath(r.Ino, path)
	}
	return r.Ino, nil
}

// ReadDir lists a directory via RPC (the heavy "ls" of §V-B3).
func (c *Client) ReadDir(p runtime.Task, dir namespace.Ino) ([]string, error) {
	r := c.submit(p, &mds.Request{Op: mds.OpReadDir, Parent: dir, Route: c.pathOf(dir)})
	return r.Names, r.Err
}

// Unlink removes a file via RPC.
func (c *Client) Unlink(p runtime.Task, dir namespace.Ino, name string) error {
	r := c.submit(p, &mds.Request{Op: mds.OpUnlink, Parent: dir, Name: name, Route: c.pathOf(dir)})
	if r.Err == nil {
		delete(c.dcache[dir], name)
	}
	return r.Err
}

// Rename moves a dentry via RPC. Cross-rank renames are not supported:
// the request routes by the source parent's subtree.
func (c *Client) Rename(p runtime.Task, dir namespace.Ino, name string, newDir namespace.Ino, newName string) error {
	r := c.submit(p, &mds.Request{Op: mds.OpRename, Parent: dir, Name: name, NewParent: newDir, NewName: newName, Route: c.pathOf(dir)})
	if r.Err == nil {
		delete(c.dcache[dir], name)
		c.cacheDentry(newDir, newName, 0)
	}
	return r.Err
}

// SetAttr updates attributes via RPC.
func (c *Client) SetAttr(p runtime.Task, ino namespace.Ino, mode, uid, gid uint32, size uint64, mtime int64) error {
	r := c.submit(p, &mds.Request{Op: mds.OpSetAttr, Ino: ino, Mode: mode, UID: uid, GID: gid, Size: size, Mtime: mtime, Route: c.pathOf(ino)})
	return r.Err
}

// Stat fetches attributes via RPC.
func (c *Client) Stat(p runtime.Task, ino namespace.Ino) (*mds.Reply, error) {
	r := c.submit(p, &mds.Request{Op: mds.OpGetAttr, Ino: ino, Route: c.pathOf(ino)})
	if r.Err != nil {
		return nil, r.Err
	}
	return r, nil
}

// HoldsCap reports whether the client believes it holds the read cap on
// dir (Fig 3c's "local lookups" regime).
func (c *Client) HoldsCap(dir namespace.Ino) bool { return c.caps[dir] && !c.shared[dir] }
