package client

import (
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/rados"
	"cudele/internal/runtime"
)

// DataPool is the RADOS pool holding file contents, striped into
// fixed-size objects like CephFS's data pool.
const DataPool = "cephfs_data"

// dataName is the logical striper name of a file's contents.
func dataName(ino namespace.Ino) string {
	return fmt.Sprintf("%x", uint64(ino))
}

// WriteFile replaces the contents of file ino with data: the bytes are
// striped into the data pool (leveraging the cluster's collective
// bandwidth) and the size/mtime are updated through the metadata path.
// The metadata update uses RPCs, so this is the POSIX-side data path;
// decoupled jobs use LocalWriteFile.
func (c *Client) WriteFile(p runtime.Task, ino namespace.Ino, data []byte) error {
	st, err := c.Stat(p, ino)
	if err != nil {
		return err
	}
	if st.IsDir {
		return fmt.Errorf("write file %d: %w", ino, namespace.ErrIsDir)
	}
	striper := rados.NewStriper(c.obj)
	if err := striper.Write(p, DataPool, dataName(ino), data); err != nil {
		return fmt.Errorf("write file %d: %w", ino, err)
	}
	return c.SetAttr(p, ino, st.Mode, st.UID, st.GID, uint64(len(data)), int64(p.Now()))
}

// ReadFile returns the contents of file ino from the data pool. A file
// that was created but never written reads back empty.
func (c *Client) ReadFile(p runtime.Task, ino namespace.Ino) ([]byte, error) {
	st, err := c.Stat(p, ino)
	if err != nil {
		return nil, err
	}
	if st.IsDir {
		return nil, fmt.Errorf("read file %d: %w", ino, namespace.ErrIsDir)
	}
	if st.Size == 0 {
		return nil, nil
	}
	striper := rados.NewStriper(c.obj)
	data, err := striper.Read(p, DataPool, dataName(ino))
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) > st.Size {
		data = data[:st.Size]
	}
	return data, nil
}

// LocalWriteFile writes file data from a decoupled job: the bytes still
// go straight to the object store (the data path is never decoupled —
// only metadata is), while the size update is appended to the client
// journal to merge later, exactly how BatchFS/DeltaFS-style systems
// treat data vs metadata.
func (c *Client) LocalWriteFile(p runtime.Task, ino namespace.Ino, data []byte) error {
	if c.dec == nil {
		return ErrNotDecoupled
	}
	in, err := c.dec.store.Get(namespace.Ino(ino))
	if err != nil {
		return err
	}
	if in.IsDir() {
		return fmt.Errorf("local write file %d: %w", ino, namespace.ErrIsDir)
	}
	striper := rados.NewStriper(c.obj)
	if err := striper.Write(p, DataPool, dataName(ino), data); err != nil {
		return fmt.Errorf("local write file %d: %w", ino, err)
	}
	// Track the size locally and journal the attribute update.
	if err := c.dec.store.SetAttr(in.Ino, in.Mode, in.UID, in.GID, uint64(len(data)), int64(p.Now())); err != nil {
		return err
	}
	return c.appendEvent(p, &journal.Event{
		Type: journal.EvSetAttr, Ino: uint64(ino),
		Mode: in.Mode, UID: in.UID, GID: in.GID,
		Size: uint64(len(data)), Mtime: int64(p.Now()),
	})
}

// RemoveFileData deletes a file's contents from the data pool; unlink
// paths call it to avoid leaking objects.
func (c *Client) RemoveFileData(p runtime.Task, ino namespace.Ino) error {
	striper := rados.NewStriper(c.obj)
	return striper.Remove(p, DataPool, dataName(ino))
}
