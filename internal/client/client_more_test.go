package client

import (
	"errors"
	"fmt"
	"testing"

	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
)

func TestNameAndLocalDisk(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	if c.Name() != "c0" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.LocalDisk() == nil {
		t.Fatal("no local disk pipe")
	}
}

func TestLookupRPC(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		ino, _ := c.Create(p, dir, "f", 0644)
		got, err := c.Lookup(p, dir, "f")
		if err != nil || got != ino {
			t.Errorf("lookup = %d, %v", got, err)
		}
		if _, err := c.Lookup(p, dir, "ghost"); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("missing lookup err = %v", err)
		}
	})
	if c.Stats().RemoteLookups < 2 {
		t.Fatalf("remote lookups = %d", c.Stats().RemoteLookups)
	}
}

func TestLocalUnlinkAndReadDir(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/j", 0755)
		c.Decouple(p, "/j", decouplePolicy(policy.ConsWeak, policy.DurNone, 100))
		root, _ := c.DecoupledRoot()
		c.LocalCreate(p, root, "a", 0644)
		c.LocalCreate(p, root, "b", 0644)
		if err := c.LocalUnlink(p, root, "a"); err != nil {
			t.Errorf("local unlink: %v", err)
		}
		if err := c.LocalUnlink(p, root, "ghost"); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("missing unlink err = %v", err)
		}
		names, err := c.LocalReadDir(root)
		if err != nil || len(names) != 1 || names[0] != "b" {
			t.Errorf("local readdir = %v, %v", names, err)
		}
		// The journal records create a, create b, unlink a; after merge
		// only b exists.
		if _, err := c.VolatileApply(p); err != nil {
			t.Errorf("merge: %v", err)
		}
		if _, err := cl.srv.Store().Resolve("/j/a"); err == nil {
			t.Error("unlinked file survived merge")
		}
		if _, err := cl.srv.Store().Resolve("/j/b"); err != nil {
			t.Errorf("file b missing after merge: %v", err)
		}
	})
	if err := (&Client{}).LocalUnlink(nil, 0, "x"); !errors.Is(err, ErrNotDecoupled) {
		t.Fatalf("undcoupled local unlink err = %v", err)
	}
}

func TestLocalMkdirDeepNesting(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/j", 0755)
		c.Decouple(p, "/j", decouplePolicy(policy.ConsWeak, policy.DurNone, 1000))
		root, _ := c.DecoupledRoot()
		cur := root
		// A deep chain of decoupled directories.
		for i := 0; i < 10; i++ {
			next, err := c.LocalMkdir(p, cur, fmt.Sprintf("lvl%d", i), 0755)
			if err != nil {
				t.Errorf("mkdir %d: %v", i, err)
				return
			}
			cur = next
		}
		c.LocalCreate(p, cur, "leaf", 0644)
		if _, err := c.VolatileApply(p); err != nil {
			t.Errorf("merge: %v", err)
			return
		}
		path := "/j"
		for i := 0; i < 10; i++ {
			path += fmt.Sprintf("/lvl%d", i)
		}
		if _, err := cl.srv.Store().Resolve(path + "/leaf"); err != nil {
			t.Errorf("deep leaf missing: %v", err)
		}
	})
}

func TestJournalNominalBytes(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	if c.JournalNominalBytes() != 0 {
		t.Fatal("nominal bytes before decoupling != 0")
	}
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/j", 0755)
		c.Decouple(p, "/j", decouplePolicy(policy.ConsInvisible, policy.DurNone, 100))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 4; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
	})
	if got := c.JournalNominalBytes(); got != 4*2500 {
		t.Fatalf("nominal bytes = %d, want 10000", got)
	}
}

func TestWaitSyncDrainNoSync(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		if err := c.WaitSyncDrain(p); err != nil {
			t.Errorf("drain with no sync: %v", err)
		}
		if err := c.WaitSyncVisible(p); err != nil {
			t.Errorf("visible with no sync: %v", err)
		}
	})
	if n, d := c.SyncStats(); n != 0 || d != 0 {
		t.Fatalf("sync stats = %d, %v", n, d)
	}
}

func TestWaitSyncDrainOnly(t *testing.T) {
	// WaitSyncDrain returns once bytes are shipped even though the MDS
	// apply (visibility) is still pending.
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/j", 0755)
		c.Decouple(p, "/j", decouplePolicy(policy.ConsInvisible, policy.DurNone, 60000))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 50000; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		c.SyncNow(p)
		if err := c.WaitSyncDrain(p); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		drainT := p.Now()
		if err := c.WaitSyncVisible(p); err != nil {
			t.Errorf("visible: %v", err)
			return
		}
		if p.Now() <= drainT {
			t.Error("visibility did not lag the drain")
		}
	})
}

func TestNonvolatileApplyDeepChain(t *testing.T) {
	// loadChain must pull ancestors when the journal touches a directory
	// whose parents are not yet in the shadow store.
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		deep, err := c.MkdirAll(p, "/a/b/c", 0755)
		if err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
		if err := cl.srv.SaveStore(p); err != nil {
			t.Fatalf("save: %v", err)
		}
		pol := decouplePolicy(policy.ConsWeak, policy.DurGlobal, 100)
		if err := c.Decouple(p, "/a/b/c", pol); err != nil {
			t.Fatalf("decouple: %v", err)
		}
		if _, err := c.LocalCreate(p, deep, "leaf", 0644); err != nil {
			t.Fatalf("local create: %v", err)
		}
		if _, err := c.NonvolatileApply(p); err != nil {
			t.Fatalf("nonvolatile apply: %v", err)
		}
		if err := cl.srv.Recover(p); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if _, err := cl.srv.Store().Resolve("/a/b/c/leaf"); err != nil {
			t.Errorf("deep leaf missing after recovery: %v", err)
		}
	})
}

func TestFetchGlobalJournalMissing(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		if _, err := c.FetchGlobalJournal(p, "nobody"); !errors.Is(err, rados.ErrNotFound) {
			t.Errorf("missing journal err = %v", err)
		}
	})
}

func TestRunCompositionUnknownMechanism(t *testing.T) {
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		comp := policy.Composition{{Parallel: []policy.Mechanism{policy.Mechanism(99)}}}
		if err := c.RunComposition(p, comp); err == nil {
			t.Error("unknown mechanism accepted")
		}
	})
}
