package client

import (
	"fmt"

	"cudele/internal/journal"
	"cudele/internal/mds"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/transport"
)

// The client halves of the two policy cells beyond the paper's Table I.
//
// ConsSpeculative: Local* ops apply optimistically against the client's
// predicted view and record a per-op undo entry; SpeculativeApply ships
// the journal, the MDS validates every prediction against the live global
// namespace, and the client rolls back exactly the rejected ops using the
// undo log. The undo log is derivable from the journal, so recovery
// rebuilds it rather than trusting a possibly-torn persisted copy.
//
// ConsStrongEventual: ConvergeApply ships the journal through the MDS's
// CRDT resolver, so concurrent clients can merge in any order and the
// global namespace converges.

// UndoObjectSuffix names the global-persist object carrying a
// speculative client's undo log, alongside its journal image.
const UndoObjectSuffix = "/undo"

// SetMergeMode selects the consistency cell for the decoupled subtree's
// merge path. ConsSpeculative starts the undo log; every other cell
// clears it. Called by the API layer right after Decouple/AdoptGrant.
func (c *Client) SetMergeMode(mode policy.Consistency) error {
	if c.dec == nil {
		return ErrNotDecoupled
	}
	c.dec.mode = mode
	if mode == policy.ConsSpeculative {
		if c.dec.undo == nil {
			c.dec.undo = journal.New(c.cfg.SegmentEvents)
		}
	} else {
		c.dec.undo = nil
	}
	return nil
}

// MergeMode reports the decoupled subtree's consistency cell.
func (c *Client) MergeMode() policy.Consistency {
	if c.dec == nil {
		return policy.ConsInvisible
	}
	return c.dec.mode
}

// recordUndo appends one undo entry mirroring the journal op just
// appended: Mode carries the undone op's type, Size its journal index,
// and for an unlink the victim's attributes ride along so rollback can
// re-create it. Undo appends are client-memory bookkeeping and charge no
// simulated time beyond the op's own append. No-op outside speculative
// mode, so every other cell's costs and bytes are untouched.
func (c *Client) recordUndo(op journal.EventType, ino, parent uint64, name string, victim *namespace.Inode) error {
	if c.dec.mode != policy.ConsSpeculative || c.dec.undo == nil {
		return nil
	}
	ev := &journal.Event{
		Type: journal.EvUndo, Client: c.name,
		Ino: ino, Parent: parent, Name: name,
		Mode: uint32(op), Size: uint64(c.dec.jrnl.Len() - 1),
	}
	if victim != nil {
		ev.UID, ev.GID, ev.Mtime = victim.UID, victim.GID, victim.Mtime
		ev.NewParent = uint64(victim.Mode)
	}
	_, err := c.dec.undo.Append(ev)
	return err
}

// UndoLog returns the client's undo journal (speculative mode only).
func (c *Client) UndoLog() (*journal.Journal, error) {
	if c.dec == nil {
		return nil, ErrNotDecoupled
	}
	if c.dec.undo == nil {
		return nil, fmt.Errorf("client: no undo log outside %v", policy.ConsSpeculative)
	}
	return c.dec.undo, nil
}

// FailRollbackAfter arms the mid-rollback crash hook: the next rollback
// errors out after n undos, leaving the journal and undo log un-reset,
// exactly as a process death there would. One-shot: the hook disarms
// when it fires.
func (c *Client) FailRollbackAfter(n int) {
	c.failRollback = &n
}

// SpeculativeApply ships the journal for validated merge. The MDS
// applies every op whose prediction still holds and reports the rejected
// indices; the client undoes exactly those ops against its local image,
// newest first, then clears the journal and undo log. The returned slice
// is the rejected indices (nil when every prediction held).
func (c *Client) SpeculativeApply(p runtime.Task) (int, []int, error) {
	if c.dec == nil {
		return 0, nil, ErrNotDecoupled
	}
	if c.dec.mode != policy.ConsSpeculative {
		return 0, nil, fmt.Errorf("client: speculative apply in %v mode", c.dec.mode)
	}
	evs := c.dec.jrnl.Events()
	bytes := c.JournalNominalBytes()
	c.noteTransfer(bytes)
	merge := func() *mds.MergeReply {
		return c.svc.Post(p, &mds.MergeMsg{
			Events:       evs,
			NominalBytes: bytes,
			Mode:         mds.MergeSpeculative,
			Route:        c.dec.path,
		}).(*mds.MergeReply)
	}
	r := merge()
	// A bounce (frozen subtree, stale routing mid-migration) means
	// validation never ran; refresh and retry with the same snapshot.
	for tries := 0; tries < redirectRetryMax; tries++ {
		if _, ok := transport.IsRedirect(r.Err); !ok {
			break
		}
		c.stats.Redirects++
		p.Sleep(c.redirectDelay())
		c.svc.Refresh()
		r = merge()
	}
	if r.Err != nil {
		return r.Applied, r.Conflicts, r.Err
	}
	if err := c.rollbackSpec(evs, r.Conflicts); err != nil {
		return r.Applied, r.Conflicts, err
	}
	c.dec.jrnl.Reset()
	c.dec.undo.Reset()
	return r.Applied, r.Conflicts, nil
}

// rollbackSpec undoes the journal ops at the given indices from the
// client-local image, newest first so a rejected mkdir's rejected
// children are gone before the directory itself is removed. The journal
// and undo log are left intact on error (the mid-rollback crash shape);
// SpeculativeApply resets them only after a complete rollback.
func (c *Client) rollbackSpec(ops []*journal.Event, conflicts []int) error {
	if len(conflicts) == 0 {
		return nil
	}
	undos := c.dec.undo.Events()
	budget := -1
	if c.failRollback != nil {
		budget = *c.failRollback
		c.failRollback = nil
	}
	done := 0
	for i := len(conflicts) - 1; i >= 0; i-- {
		idx := conflicts[i]
		if idx < 0 || idx >= len(ops) || idx >= len(undos) {
			return fmt.Errorf("client: rollback index %d out of range (%d ops, %d undos)",
				idx, len(ops), len(undos))
		}
		if budget >= 0 && done >= budget {
			return fmt.Errorf("client: crashed mid-rollback after %d undos", done)
		}
		u := undos[idx]
		if u.Size != uint64(idx) {
			return fmt.Errorf("client: undo record %d stamps op %d", idx, u.Size)
		}
		parent := c.dec.localParent(namespace.Ino(u.Parent))
		var err error
		switch journal.EventType(u.Mode) {
		case journal.EvCreate:
			err = c.dec.store.Unlink(parent, u.Name)
		case journal.EvMkdir:
			err = c.dec.store.Rmdir(parent, u.Name)
		case journal.EvUnlink:
			_, err = c.dec.store.Create(parent, u.Name, namespace.CreateAttrs{
				Ino: namespace.Ino(u.Ino), Mode: uint32(u.NewParent),
				UID: u.UID, GID: u.GID, Mtime: u.Mtime,
			})
		default:
			err = fmt.Errorf("client: undo of %v not supported", journal.EventType(u.Mode))
		}
		if err != nil {
			return fmt.Errorf("client: rollback op %d: %w", idx, err)
		}
		done++
	}
	return nil
}

// rebuildSpeculative reconstructs the local image and undo log from the
// recovered journal after a crash. The journal is the authoritative
// record — a torn persisted undo image is irrelevant — and the rebuilt
// state re-enters the ordinary merge/validate/rollback cycle, so ops the
// MDS rejects are rolled back again rather than resurrected.
func (c *Client) rebuildSpeculative() error {
	c.dec.store = namespace.NewStore()
	c.dec.undo = journal.New(c.cfg.SegmentEvents)
	for idx, ev := range c.dec.jrnl.Events() {
		parent := c.dec.localParent(namespace.Ino(ev.Parent))
		undo := &journal.Event{
			Type: journal.EvUndo, Client: c.name,
			Ino: ev.Ino, Parent: ev.Parent, Name: ev.Name,
			Mode: uint32(ev.Type), Size: uint64(idx),
		}
		switch ev.Type {
		case journal.EvCreate:
			if _, err := c.dec.store.Create(parent, ev.Name, namespace.CreateAttrs{
				Ino: namespace.Ino(ev.Ino), Mode: ev.Mode, UID: ev.UID, GID: ev.GID, Mtime: ev.Mtime,
			}); err != nil {
				return fmt.Errorf("client: rebuild op %d: %w", idx, err)
			}
		case journal.EvMkdir:
			if _, err := c.dec.store.Mkdir(parent, ev.Name, namespace.CreateAttrs{
				Ino: namespace.Ino(ev.Ino), Mode: ev.Mode, UID: ev.UID, GID: ev.GID, Mtime: ev.Mtime,
			}); err != nil {
				return fmt.Errorf("client: rebuild op %d: %w", idx, err)
			}
		case journal.EvUnlink:
			victim, err := c.dec.store.Lookup(parent, ev.Name)
			if err != nil {
				return fmt.Errorf("client: rebuild op %d: %w", idx, err)
			}
			undo.Ino = uint64(victim.Ino)
			undo.UID, undo.GID, undo.Mtime = victim.UID, victim.GID, victim.Mtime
			undo.NewParent = uint64(victim.Mode)
			if err := c.dec.store.Unlink(parent, ev.Name); err != nil {
				return fmt.Errorf("client: rebuild op %d: %w", idx, err)
			}
		default:
			return fmt.Errorf("client: rebuild: unexpected %v in speculative journal", ev.Type)
		}
		if _, err := c.dec.undo.Append(undo); err != nil {
			return err
		}
	}
	return nil
}

// persistUndoLocal writes the undo log beside the locally persisted
// journal. No-op outside speculative mode, keeping every other cell's
// persisted bytes and disk time identical.
func (c *Client) persistUndoLocal(p runtime.Task) error {
	if c.dec.mode != policy.ConsSpeculative || c.dec.undo == nil {
		return nil
	}
	data, err := c.dec.undo.Export()
	if err != nil {
		return err
	}
	bytes := int64(c.dec.undo.Len()) * int64(c.cfg.JournalEventBytes)
	c.noteTransfer(bytes)
	c.chargeLocalDisk(p, bytes)
	c.localFiles["undo"] = data
	return nil
}

// persistUndoGlobal pushes the undo log into the object store next to
// the journal image. The write shares the journal pool, so the fault
// injector can tear it like any other global persist — recovery is
// indifferent, since rebuildSpeculative never reads it back.
func (c *Client) persistUndoGlobal(p runtime.Task, striper *rados.Striper) error {
	if c.dec.mode != policy.ConsSpeculative || c.dec.undo == nil {
		return nil
	}
	data, err := c.dec.undo.Export()
	if err != nil {
		return err
	}
	bytes := int64(c.dec.undo.Len()) * int64(c.cfg.JournalEventBytes)
	c.noteTransfer(bytes)
	if err := striper.WriteBilled(p, ClientJournalPool, c.name+UndoObjectSuffix, data, bytes); err != nil {
		return fmt.Errorf("global persist undo: %w", err)
	}
	return nil
}

// ConvergeApply ships the journal through the MDS's strong-eventual CRDT
// resolver. Applied counts every event processed — absorbing a tie-break
// loser is a successful merge — so it equals the journal length on
// success. On success the journal is cleared.
func (c *Client) ConvergeApply(p runtime.Task) (int, error) {
	if c.dec == nil {
		return 0, ErrNotDecoupled
	}
	bytes := c.JournalNominalBytes()
	c.noteTransfer(bytes)
	merge := func() *mds.MergeReply {
		return c.svc.Post(p, &mds.MergeMsg{
			Source:       c.dec.jrnl.InlineCursor(),
			NominalBytes: bytes,
			Mode:         mds.MergeConverge,
			Route:        c.dec.path,
		}).(*mds.MergeReply)
	}
	r := merge()
	for tries := 0; tries < redirectRetryMax; tries++ {
		if _, ok := transport.IsRedirect(r.Err); !ok {
			break
		}
		c.stats.Redirects++
		p.Sleep(c.redirectDelay())
		c.svc.Refresh()
		r = merge()
	}
	if r.Err != nil {
		return r.Applied, r.Err
	}
	c.dec.jrnl.Reset()
	return r.Applied, nil
}
