package client

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"cudele/internal/journal"
	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

// newClusterCfg is newCluster with a caller-supplied cost model, for
// exercising the opt-in chunked merge pipeline (MergeChunkEvents > 0).
func newClusterCfg(cfg model.Config) *cluster {
	eng := sim.NewEngine(23)
	obj := rados.New(eng, cfg)
	srv := mds.New(eng, cfg, obj)
	return &cluster{eng: eng, obj: obj, srv: srv}
}

func (cl *cluster) clientCfg(name string, cfg model.Config) *Client {
	c := New(cl.eng, cfg, name, cl.srv, cl.obj)
	c.Mount()
	return c
}

// chunkedConfig is the default model with the streamed merge pipeline
// switched on at the given chunk size.
func chunkedConfig(chunk int) model.Config {
	cfg := model.Default()
	cfg.MergeChunkEvents = chunk
	return cfg
}

// decoupledWorkload builds the same decoupled journal on any client: a
// subdirectory plus files both at the subtree root and one level down.
func decoupledWorkload(t *testing.T, p runtime.Task, c *Client, files int) {
	t.Helper()
	c.MkdirAll(p, "/job", 0755)
	if err := c.Decouple(p, "/job", decouplePolicy(policy.ConsWeak, policy.DurNone, 10000)); err != nil {
		t.Fatalf("decouple: %v", err)
	}
	root, _ := c.DecoupledRoot()
	sub, err := c.LocalMkdir(p, root, "sub", 0755)
	if err != nil {
		t.Fatalf("local mkdir: %v", err)
	}
	for i := 0; i < files; i++ {
		if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
			t.Fatalf("local create %d: %v", i, err)
		}
	}
	if _, err := c.LocalCreate(p, sub, "deep", 0644); err != nil {
		t.Fatalf("local create deep: %v", err)
	}
}

func TestRunCompositionStreamReset(t *testing.T) {
	// Stream is owned by the composition: a streaming composition turns
	// it on, and the next composition without the mechanism must turn it
	// back off rather than inherit it.
	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		comp, _ := policy.ParseComposition("rpcs+stream")
		if err := c.RunComposition(p, comp); err != nil {
			t.Errorf("streaming composition: %v", err)
			return
		}
		if !cl.srv.StreamEnabled() {
			t.Error("stream not enabled by streaming composition")
		}
		comp, _ = policy.ParseComposition("rpcs")
		if err := c.RunComposition(p, comp); err != nil {
			t.Errorf("rpcs composition: %v", err)
			return
		}
		if cl.srv.StreamEnabled() {
			t.Error("stream leaked past its composition")
		}
	})
}

func TestVolatileApplyChunkedMatchesOneShot(t *testing.T) {
	// The streamed merge is a transport change, not a semantic one: the
	// chunked pipeline must produce the same namespace and applied count
	// as the one-shot path, while holding only one chunk in flight.
	const files = 120
	const chunk = 48

	oneshot := newCluster()
	a := oneshot.client("c0")
	var appliedA int
	oneshot.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, a, files)
		n, err := a.VolatileApply(p)
		if err != nil {
			t.Errorf("one-shot apply: %v", err)
		}
		appliedA = n
	})

	streamed := newClusterCfg(chunkedConfig(chunk))
	b := streamed.clientCfg("c0", chunkedConfig(chunk))
	var appliedB int
	streamed.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, b, files)
		n, err := b.VolatileApply(p)
		if err != nil {
			t.Errorf("chunked apply: %v", err)
		}
		appliedB = n
	})

	if appliedA != appliedB || appliedB != files+2 {
		t.Fatalf("applied: one-shot %d, chunked %d, want %d", appliedA, appliedB, files+2)
	}
	if !namespace.Equal(oneshot.srv.Store(), streamed.srv.Store()) {
		t.Fatal("chunked merge namespace differs from one-shot")
	}
	j, _ := b.Journal()
	if j.Len() != 0 {
		t.Fatalf("journal not cleared after chunked merge: %d", j.Len())
	}

	// Peak transfer memory: the whole journal one-shot, one chunk
	// streamed.
	evBytes := uint64(model.Default().JournalEventBytes)
	if want := uint64(files+2) * evBytes; a.Stats().PeakTransferBytes != want {
		t.Errorf("one-shot peak transfer = %d, want %d", a.Stats().PeakTransferBytes, want)
	}
	if want := uint64(chunk) * evBytes; b.Stats().PeakTransferBytes != want {
		t.Errorf("chunked peak transfer = %d, want %d", b.Stats().PeakTransferBytes, want)
	}
}

func TestLocalPersistChunkedMatchesOneShot(t *testing.T) {
	// Chunked Local Persist writes the identical journal image, one
	// chunk's encoding at a time.
	const files = 25
	const chunk = 10

	oneshot := newCluster()
	a := oneshot.client("c0")
	oneshot.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, a, files)
		if err := a.LocalPersist(p); err != nil {
			t.Errorf("one-shot persist: %v", err)
		}
	})

	streamed := newClusterCfg(chunkedConfig(chunk))
	b := streamed.clientCfg("c0", chunkedConfig(chunk))
	streamed.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, b, files)
		if err := b.LocalPersist(p); err != nil {
			t.Errorf("chunked persist: %v", err)
			return
		}
		// The chunked image is a valid journal file: a recovering client
		// reads the same events back.
		j, _ := b.Journal()
		j.Reset()
		if n, err := b.RecoverLocal(p); err != nil || n != files+2 {
			t.Errorf("recover from chunked image = %d, %v", n, err)
		}
	})

	fa, _ := a.LocalJournalFile()
	fb, _ := b.LocalJournalFile()
	if !bytes.Equal(fa, fb) {
		t.Fatalf("chunked journal image differs from one-shot: %d vs %d bytes", len(fb), len(fa))
	}
	evBytes := uint64(model.Default().JournalEventBytes)
	if got, limit := b.Stats().PeakTransferBytes, uint64(chunk)*evBytes; got > limit {
		t.Errorf("chunked persist peak transfer = %d, want <= %d", got, limit)
	}
}

func TestGlobalPersistChunkedFetch(t *testing.T) {
	// Chunked Global Persist writes a chunk-object sequence; any client
	// fetches it back as the same event stream.
	const files = 20
	const chunk = 7
	cfg := chunkedConfig(chunk)
	cl := newClusterCfg(cfg)
	c := cl.clientCfg("c0", cfg)
	other := cl.clientCfg("c1", cfg)
	cl.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, c, files)
		if err := c.GlobalPersist(p); err != nil {
			t.Errorf("global persist: %v", err)
			return
		}
		events, err := other.FetchGlobalJournal(p, "c0")
		if err != nil {
			t.Errorf("fetch: %v", err)
			return
		}
		j, _ := c.Journal()
		if !reflect.DeepEqual(events, j.Events()) {
			t.Errorf("fetched events differ: got %d, journal %d", len(events), j.Len())
		}
	})
	evBytes := uint64(cfg.JournalEventBytes)
	if got, limit := c.Stats().PeakTransferBytes, uint64(chunk)*evBytes; got > limit {
		t.Errorf("chunked persist peak transfer = %d, want <= %d", got, limit)
	}
}

func TestGlobalPersistChunkedEmptyJournal(t *testing.T) {
	cfg := chunkedConfig(8)
	cl := newClusterCfg(cfg)
	c := cl.clientCfg("c0", cfg)
	other := cl.clientCfg("c1", cfg)
	cl.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsInvisible, policy.DurGlobal, 100))
		if err := c.GlobalPersist(p); err != nil {
			t.Errorf("empty persist: %v", err)
			return
		}
		events, err := other.FetchGlobalJournal(p, "c0")
		if err != nil || len(events) != 0 {
			t.Errorf("empty fetch = %d events, %v", len(events), err)
		}
	})
}

func TestGlobalPersistChunkedShrinkNoStaleTail(t *testing.T) {
	// A chunked persist of a short journal after a longer one (the
	// global_persist -> apply -> new-work cycle) overwrites only the first
	// chunks; the stale tail of the earlier persist must be deleted, or
	// FetchGlobalJournal appends it to the image and decodes phantom
	// events.
	const chunk = 7
	cfg := chunkedConfig(chunk)
	cl := newClusterCfg(cfg)
	c := cl.clientCfg("c0", cfg)
	other := cl.clientCfg("c1", cfg)
	cl.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, c, 20) // 22 events: four chunk objects
		if err := c.GlobalPersist(p); err != nil {
			t.Errorf("first persist: %v", err)
			return
		}
		// The journal drains (as Volatile Apply would) and a little new
		// work arrives: the second persist writes one chunk object.
		j, _ := c.Journal()
		j.Reset()
		root, _ := c.DecoupledRoot()
		for i := 0; i < 3; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("late%d", i), 0644); err != nil {
				t.Fatalf("late create %d: %v", i, err)
			}
		}
		if err := c.GlobalPersist(p); err != nil {
			t.Errorf("second persist: %v", err)
			return
		}
		events, err := other.FetchGlobalJournal(p, "c0")
		if err != nil {
			t.Errorf("fetch: %v", err)
			return
		}
		if !reflect.DeepEqual(events, j.Events()) {
			t.Errorf("fetched %d events, want the %d from the second persist only", len(events), j.Len())
		}
	})
}

func TestGlobalPersistLayoutChangeNoStaleImage(t *testing.T) {
	// The same owner may persist under either layout over time (tunable
	// change across restarts). Whichever persist ran last must win the
	// fetch: a chunked persist deletes the stale single image it would
	// otherwise be shadowed by, and a one-shot persist overwrites the
	// image the fetch prefers.
	oneshotCfg := model.Default()
	chunked := chunkedConfig(5)

	for _, dir := range []struct {
		name          string
		first, second model.Config
	}{
		{"oneshot-then-chunked", oneshotCfg, chunked},
		{"chunked-then-oneshot", chunked, oneshotCfg},
	} {
		t.Run(dir.name, func(t *testing.T) {
			cl := newClusterCfg(chunked)
			a := cl.clientCfg("c0", dir.first)
			b := cl.clientCfg("c0", dir.second)
			reader := cl.clientCfg("c1", chunked)
			cl.run(t, func(p runtime.Task) {
				decoupledWorkload(t, p, a, 12)
				if err := a.GlobalPersist(p); err != nil {
					t.Errorf("first persist: %v", err)
					return
				}
				decoupledWorkload(t, p, b, 4)
				if err := b.GlobalPersist(p); err != nil {
					t.Errorf("second persist: %v", err)
					return
				}
				events, err := reader.FetchGlobalJournal(p, "c0")
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				j, _ := b.Journal()
				if !reflect.DeepEqual(events, j.Events()) {
					t.Errorf("fetched %d events, want the last persist's %d", len(events), j.Len())
				}
			})
		})
	}
}

func TestLocalPersistChunkedErrorKeepsOldImage(t *testing.T) {
	// A chunked Local Persist that fails mid-encode must leave the
	// previously stored recovery image untouched, not half-overwritten.
	cfg := chunkedConfig(4)
	cl := newClusterCfg(cfg)
	c := cl.clientCfg("c0", cfg)
	cl.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, c, 6) // 8 events
		if err := c.LocalPersist(p); err != nil {
			t.Fatalf("first persist: %v", err)
		}
		file, _ := c.LocalJournalFile()
		good := append([]byte(nil), file...)

		// Corrupt the newest journal event in place so the re-encode
		// fails partway through the image.
		j, _ := c.Journal()
		evs := j.Events()
		evs[len(evs)-1].Name = ""
		if err := c.LocalPersist(p); !errors.Is(err, journal.ErrBadEvent) {
			t.Fatalf("corrupt persist = %v, want ErrBadEvent", err)
		}

		file, ok := c.LocalJournalFile()
		if !ok || !bytes.Equal(file, good) {
			t.Fatalf("stored image changed on failed persist: %d bytes, want %d unchanged", len(file), len(good))
		}
		// The old image still recovers in full.
		j.Reset()
		if n, err := c.RecoverLocal(p); err != nil || n != 8 {
			t.Fatalf("recover from preserved image = %d, %v; want 8", n, err)
		}
	})
}

func TestVolatileApplyChunkedAbortOnShutdown(t *testing.T) {
	// An error mid-stream (here: MDS shutdown) must abort the admitted
	// merge job, not abandon it: an orphaned job would park the scheduler
	// forever and pin the merge queue's congestion pricing for the rest
	// of the run.
	cfg := chunkedConfig(8)
	cl := newClusterCfg(cfg)
	c := cl.clientCfg("c0", cfg)
	var applyErr error
	cl.run(t, func(p runtime.Task) {
		decoupledWorkload(t, p, c, 100) // 102 events: 13 chunks
		g := cl.eng.NewGroup()
		g.Go("apply", func(sp runtime.Task) {
			_, applyErr = c.VolatileApply(sp)
		})
		g.Go("kill", func(sp runtime.Task) {
			for cl.srv.Metrics().MergeChunks < 3 {
				sp.Sleep(runtime.Duration(100 * time.Microsecond))
			}
			cl.srv.Shutdown()
		})
		g.Wait(p)
	})
	if !errors.Is(applyErr, mds.ErrShutdown) {
		t.Fatalf("apply against dying MDS = %v, want ErrShutdown", applyErr)
	}
	if got := cl.srv.MergeQueue(); got != 0 {
		t.Errorf("merge queue after aborted merge = %d, want 0", got)
	}
}

func TestConcurrentVolatileApplyDeterministicAndFair(t *testing.T) {
	// Two decoupled clients merge into the same rank at the same time.
	// The streamed scheduler must interleave them into one correct
	// namespace, deterministically, and keep the max-chunk-wait spread
	// between the (unequal) jobs within a few chunk services — the
	// fairness the round-robin scheduler exists to provide.
	const chunk = 16
	const filesA, filesB = 64, 96

	seed := func(p runtime.Task, c *Client, path string, files int) error {
		if _, err := c.MkdirAll(p, path, 0755); err != nil {
			return err
		}
		if err := c.Decouple(p, path, decouplePolicy(policy.ConsWeak, policy.DurNone, 10000)); err != nil {
			return err
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < files; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
				return err
			}
		}
		return nil
	}

	runOnce := func(t *testing.T) *cluster {
		t.Helper()
		cfg := chunkedConfig(chunk)
		cl := newClusterCfg(cfg)
		a := cl.clientCfg("c0", cfg)
		b := cl.clientCfg("c1", cfg)
		var nA, nB int
		var errA, errB error
		cl.run(t, func(p runtime.Task) {
			if err := seed(p, a, "/jobA", filesA); err != nil {
				t.Errorf("seed a: %v", err)
				return
			}
			if err := seed(p, b, "/jobB", filesB); err != nil {
				t.Errorf("seed b: %v", err)
				return
			}
			g := cl.eng.NewGroup()
			g.Go("merge.a", func(sp runtime.Task) { nA, errA = a.VolatileApply(sp) })
			g.Go("merge.b", func(sp runtime.Task) { nB, errB = b.VolatileApply(sp) })
			g.Wait(p)
		})
		if errA != nil || nA != filesA {
			t.Fatalf("merge a = %d, %v; want %d", nA, errA, filesA)
		}
		if errB != nil || nB != filesB {
			t.Fatalf("merge b = %d, %v; want %d", nB, errB, filesB)
		}
		for _, name := range []string{fmt.Sprintf("/jobA/f%d", filesA-1), fmt.Sprintf("/jobB/f%d", filesB-1)} {
			if _, err := cl.srv.Store().Resolve(name); err != nil {
				t.Errorf("%s missing after concurrent merge: %v", name, err)
			}
		}
		return cl
	}

	one := runOnce(t)
	two := runOnce(t)
	if !namespace.Equal(one.srv.Store(), two.srv.Store()) {
		t.Error("concurrent merge namespace differs between identical runs")
	}

	spread, jobs := one.srv.MergeFairness()
	if jobs != 2 {
		t.Fatalf("fairness jobs = %d, want 2", jobs)
	}
	// The second open serializes behind the first on the rank's CPU, so
	// the earlier job's chunks can buffer for up to one MDSMergeSetup
	// before the scheduler gets the CPU back; past that, round-robin
	// interleaving must keep the unequal jobs within a couple of chunk
	// services of each other.
	limit := runtime.Duration(chunkedConfig(chunk).MDSMergeSetup) + runtime.Duration(30*time.Millisecond)
	if spread > limit {
		t.Errorf("max chunk-wait spread = %v, want <= %v", spread, limit)
	}
	if one.srv.MergeQueue() != 0 {
		t.Errorf("merge queue not drained: %d", one.srv.MergeQueue())
	}
}

func TestNonvolatileApplyDeepAncestorChain(t *testing.T) {
	// A subtree decoupled 32 directories down: the first journal event
	// forces loadChain to pull the whole ancestor chain from the object
	// store, iteratively, before the update applies.
	const depth = 32
	parts := make([]string, depth)
	for i := range parts {
		parts[i] = fmt.Sprintf("d%d", i)
	}
	deep := "/" + strings.Join(parts, "/")

	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		if _, err := c.MkdirAll(p, deep, 0755); err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		if err := cl.srv.SaveStore(p); err != nil {
			t.Errorf("save store: %v", err)
			return
		}
		c.Decouple(p, deep, decouplePolicy(policy.ConsWeak, policy.DurGlobal, 100))
		root, _ := c.DecoupledRoot()
		for i := 0; i < 3; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		if n, err := c.NonvolatileApply(p); err != nil || n != 3 {
			t.Errorf("nonvolatile apply = %d, %v", n, err)
			return
		}
		if err := cl.srv.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if _, err := cl.srv.Store().Resolve(deep + "/f2"); err != nil {
			t.Errorf("deep file missing after recovery: %v", err)
		}
	})
}

func TestNonvolatileApplyAncestorCycle(t *testing.T) {
	// Corrupt directory objects whose Parent pointers form a cycle must
	// fail the merge with an error, not hang the client. Two legitimate
	// stores forge the halves: in one, b is a's parent; in the other, a
	// is b's.
	const (
		aIno = namespace.Ino(1 << 50)
		bIno = namespace.Ino(1<<50 + 1)
	)
	forge := func(top, bottom namespace.Ino, topName, bottomName string) []byte {
		s := namespace.NewStore()
		if _, err := s.Mkdir(namespace.RootIno, topName, namespace.CreateAttrs{Ino: top, Mode: 0755}); err != nil {
			t.Fatalf("forge mkdir: %v", err)
		}
		if _, err := s.Mkdir(top, bottomName, namespace.CreateAttrs{Ino: bottom, Mode: 0755}); err != nil {
			t.Fatalf("forge mkdir: %v", err)
		}
		data, err := s.EncodeDir(bottom)
		if err != nil {
			t.Fatalf("forge encode: %v", err)
		}
		return data
	}
	aData := forge(bIno, aIno, "b", "a") // a's object says Parent == b
	bData := forge(aIno, bIno, "a", "b") // b's object says Parent == a

	cl := newCluster()
	c := cl.client("c0")
	cl.run(t, func(p runtime.Task) {
		cl.obj.Write(p, rados.ObjectID{Pool: namespace.ObjectPool,
			Name: namespace.DirObjectName(aIno)}, aData)
		cl.obj.Write(p, rados.ObjectID{Pool: namespace.ObjectPool,
			Name: namespace.DirObjectName(bIno)}, bData)

		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", decouplePolicy(policy.ConsWeak, policy.DurGlobal, 100))
		j, _ := c.Journal()
		j.Append(&journal.Event{Type: journal.EvCreate, Client: "c0",
			Parent: uint64(aIno), Name: "x", Ino: uint64(aIno) + 100, Mode: 0644})

		n, err := c.NonvolatileApply(p)
		if !errors.Is(err, namespace.ErrInval) {
			t.Errorf("apply over cycle = %d, %v; want ErrInval", n, err)
		}
	})
}
