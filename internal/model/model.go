// Package model holds the calibration constants for the simulated Cudele
// cluster in one place.
//
// Every constant is derived from an absolute number the paper reports
// (Sevilla et al., IPDPS 2018): single-client create rates for each
// mechanism, the metadata server's peak service rate, journal event size,
// and the CloudLab testbed's device characteristics. Benchmarks normalize
// exactly the way the paper's figures do, so the reproduced *shapes* are
// insensitive to modest drift in these absolutes.
package model

import "time"

// Config collects all device service times and protocol cost knobs for one
// simulated cluster. Use Default() and override fields per experiment.
type Config struct {
	// --- Client ---

	// ClientAppendTime is the client CPU time to append one metadata
	// update to its in-memory journal. Paper: ~11,000 creates/s for the
	// Append Client Journal mechanism (§V-A).
	ClientAppendTime time.Duration

	// ClientOpOverhead is per-operation client-side overhead on the RPC
	// path (syscall, serialization) beyond network and server time.
	ClientOpOverhead time.Duration

	// --- Network ---

	// NetLatency is the one-way message latency on the 10 GbE fabric.
	NetLatency time.Duration

	// NetBandwidth is the per-node NIC bandwidth in bytes/second.
	NetBandwidth float64

	// --- Metadata server ---

	// MDSOpTime is the MDS CPU time to fully process one metadata write
	// (create) with journaling off. Paper: single-MDS peak throughput is
	// about 3000 op/s (§II-A).
	MDSOpTime time.Duration

	// MDSLookupTime is the MDS CPU time for a read-only lookup; cheaper
	// than a create because no new dentry/inode is initialized.
	MDSLookupTime time.Duration

	// MDSJournalOpTime is the extra MDS CPU time per journaled update
	// (event encode + segment bookkeeping) when Stream is on.
	MDSJournalOpTime time.Duration

	// MDSJournalLatency is extra client-visible reply delay per journaled
	// update that does not consume MDS CPU (waiting for the update to be
	// queued safely). Together with MDSJournalOpTime it turns the 654
	// creates/s journal-off single-client rate into the paper's ~513/s
	// journal-on rate without also collapsing the saturated peak.
	MDSJournalLatency time.Duration

	// MDSDispatchCongestion scales per-segment dispatch CPU with the
	// number of segments dispatched at once: cost = MDSSegmentDispatchCPU
	// * (1 + (batch-1)*MDSDispatchCongestion). Larger dispatch sizes
	// steal more MDS cycles per segment (Fig 3a).
	MDSDispatchCongestion float64

	// MDSMergeCongestion scales per-event Volatile Apply cost with the
	// number of client journals waiting to merge, modeling the paper's
	// observation that 20 journals landing at once merge slower than one
	// (Fig 6a): cost = MDSApplyTime * (1 + queued*MDSMergeCongestion).
	MDSMergeCongestion float64

	// MDSSegmentDispatchCPU is the MDS CPU consumed to dispatch one
	// journal segment to the object store. Managing many concurrent
	// segments steals cycles from request processing; the per-dispatch
	// cost grows with the number of in-flight segments (Fig 3a).
	MDSSegmentDispatchCPU time.Duration

	// MDSApplyTime is the MDS CPU time to replay one journal event onto
	// the in-memory metadata store (Volatile Apply service rate). Paper:
	// Volatile Apply is 0.9x the client-journal baseline, ~12.2K
	// events/s (§V-A).
	MDSApplyTime time.Duration

	// MDSMergeSetup is the fixed MDS cost to begin merging one client
	// journal (session, inode-range validation). With 20 journals
	// arriving at once this congestion yields the paper's 15x ceiling
	// for create+merge (Fig 6a).
	MDSMergeSetup time.Duration

	// MDSCapRevokeTime is the MDS CPU time to revoke one client
	// capability when a directory becomes shared (Fig 3b/3c).
	MDSCapRevokeTime time.Duration

	// MDSRejectTime is the MDS CPU time to reject a request against a
	// subtree whose interfere policy is "block" (-EBUSY path, Fig 6b).
	MDSRejectTime time.Duration

	// MDSSessionOverhead is extra MDS CPU per op per additional active
	// client session beyond the first (lock contention, cap bookkeeping).
	// This reproduces the paper's observation that per-client slowdown
	// grows ~0.3x per concurrent client even with journaling off.
	MDSSessionOverhead time.Duration

	// MDSOpJitter is the relative, uniform service-time noise on each
	// MDS request (cache misses, allocator variance). Without it the
	// simulator is perfectly deterministic and cannot reproduce the
	// run-to-run variability the paper reports for interference
	// (Fig 3b / 6b: sd 0.44 vs 0.06).
	MDSOpJitter float64

	// --- Journal / object store ---

	// JournalEventBytes is the serialized size of one journal update.
	// Paper: ~2.5 KB/update, so 1M updates ~ 2.38 GB (§V-A).
	JournalEventBytes int

	// SegmentEvents is the number of journal events per segment.
	SegmentEvents int

	// DispatchSize is the number of journal segments the MDS may have in
	// flight to the object store at once (the Fig 3a tunable).
	DispatchSize int

	// OSDOpLatency is the fixed latency of one object-store operation
	// (read or write head, replication round). Calibrated so Nonvolatile
	// Apply's 4 object ops per update lands at the paper's 78x (§V-A).
	OSDOpLatency time.Duration

	// OSDDiskBandwidth is per-OSD disk bandwidth in bytes/second.
	OSDDiskBandwidth float64

	// LocalDiskBandwidth is the client-local disk bandwidth used by
	// Local Persist. Calibrated to the paper's 0.2x bar (§V-A).
	LocalDiskBandwidth float64

	// StripeUnit is the object size used when striping large logical
	// writes (journals) over the object store.
	StripeUnit int

	// Replicas is the replication factor for object writes.
	Replicas int

	// NumOSDs is the number of object storage daemons.
	NumOSDs int

	// --- Merge pipeline (streaming journal transfer) ---

	// MergeChunkEvents is the number of journal events per streamed merge
	// chunk. 0 disables chunking: the client ships the whole journal as
	// one message and the MDS merges it in a single job, which is the
	// calibrated behavior the paper's figures were fit against. Positive
	// values route VolatileApply (and the persist mechanisms' transfers)
	// through the chunked stream pipeline, bounding peak client transfer
	// memory at roughly MergeChunkEvents * JournalEventBytes.
	MergeChunkEvents int

	// MergeWindowChunks is the flow-control window of a streamed merge:
	// how many chunks the MDS will buffer per merge job before answering
	// with backpressure. 0 means the default window (4). Only meaningful
	// when MergeChunkEvents > 0.
	MergeWindowChunks int

	// MergeAdmitMax bounds how many merge jobs the scheduler admits
	// concurrently; arrivals beyond it get a backpressure reply and retry.
	// 0 means unbounded admission (the seed's all-at-once model, where
	// every queued journal inflates every other's per-event apply cost via
	// MDSMergeCongestion). Only meaningful when MergeChunkEvents > 0.
	MergeAdmitMax int

	// MergeRetryDelay is how long a client sleeps before re-sending a
	// merge open or chunk that was answered with backpressure.
	MergeRetryDelay time.Duration

	// --- Subtree migration (online export/import) ---
	//
	// Migration only runs when explicitly requested (Monitor.Migrate or
	// the balancer), so unlike the Merge* knobs the zero values select
	// built-in defaults rather than disabling the feature; no calibrated
	// baseline is affected either way.

	// MigrateChunkDirs is the number of encoded directory objects per
	// export chunk streamed from the exporting to the importing rank.
	// 0 means the default (16).
	MigrateChunkDirs int

	// MigrateWindowChunks is the importer's flow-control window: chunks
	// buffered per import before backpressure. 0 means the default (4).
	MigrateWindowChunks int

	// MigrateAdmitMax bounds concurrent imports a rank admits; opens
	// beyond it get a backpressure reply and retry. 0 means the default
	// (2).
	MigrateAdmitMax int

	// MigrateRetryDelay is how long a backpressured export sender (or a
	// client bounced off a frozen subtree) waits before retrying. 0
	// means the default (2ms).
	MigrateRetryDelay time.Duration

	// MigrateDirCPU is the exporting/importing rank's CPU time to encode
	// or install one directory object during migration. 0 means the
	// default (MDSApplyTime).
	MigrateDirCPU time.Duration

	// --- Namespace sync (Fig 6c) ---

	// ForkBase is the fixed pause to fork the client for a namespace
	// sync (process bookkeeping before copy-on-write setup).
	ForkBase time.Duration

	// ForkCopyBandwidth is the memory-to-memory copy rate (bytes/second)
	// charged against the client pause for the in-memory journal pages
	// touched at fork time.
	ForkCopyBandwidth float64

	// SyncDrainBandwidth is the effective disk+network rate at which a
	// namespace-sync journal drains to the metadata server. The final
	// drain at job end is on the critical path, which is why very large
	// sync intervals cost more than the 10 s optimum (Fig 6c).
	SyncDrainBandwidth float64

	// InodeBytes is the in-memory size of one inode. Paper: ~1400 bytes
	// in CephFS Jewel (§IV-C).
	InodeBytes int

	// AllocatedInodesDefault is the default inode grant for a decoupled
	// subtree (§III-C).
	AllocatedInodesDefault int
}

// Default returns the calibrated configuration for the paper's CloudLab
// testbed (34 nodes, 10 GbE, 2x2.4 GHz CPUs, 400 GB SSDs; 1 monitor, 3
// OSDs, 1 MDS, up to 20 clients).
func Default() Config {
	return Config{
		// 11,000 appends/s.
		ClientAppendTime: 90909 * time.Nanosecond,
		// RPC path: 1 client journal-off = 654 creates/s = 1.529 ms/op
		// total. Decomposed: client overhead + 2x net latency + MDS op.
		// 1.529ms = 1.096ms client + 0.100ms RTT + 0.333ms MDS
		ClientOpOverhead: 1096 * time.Microsecond,
		NetLatency:       50 * time.Microsecond,
		NetBandwidth:     1.15e9, // ~10 GbE payload rate

		// 3000 op/s peak journal-off.
		MDSOpTime:     333 * time.Microsecond,
		MDSLookupTime: 120 * time.Microsecond,
		// Journal-on single client = ~513-549 creates/s; extra MDS CPU
		// per journaled op pushes the saturated peak to ~2470 op/s.
		MDSJournalOpTime:      72 * time.Microsecond,
		MDSJournalLatency:     220 * time.Microsecond,
		MDSSegmentDispatchCPU: 20 * time.Millisecond,
		MDSDispatchCongestion: 0.03,
		MDSMergeCongestion:    0.024,
		// Volatile Apply at ~12.2K events/s.
		MDSApplyTime:       82 * time.Microsecond,
		MDSMergeSetup:      100 * time.Millisecond,
		MDSCapRevokeTime:   250 * time.Microsecond,
		MDSRejectTime:      300 * time.Microsecond,
		MDSSessionOverhead: 1500 * time.Nanosecond,
		MDSOpJitter:        0.08,

		JournalEventBytes: 2500,
		SegmentEvents:     1024,
		DispatchSize:      40,

		// Nonvolatile Apply: 4 object ops/update -> 78x * 9.09s / 100K
		// = 7.09 ms/update => ~1.75ms/object op (+~0.3ms payload).
		OSDOpLatency:     1780 * time.Microsecond,
		OSDDiskBandwidth: 80e6,
		// Local Persist 0.2x: 244 MB / 1.82 s = ~134 MB/s.
		LocalDiskBandwidth: 134e6,
		StripeUnit:         4 << 20,
		Replicas:           3,
		NumOSDs:            3,

		// Chunked merge streaming is opt-in: MergeChunkEvents 0 keeps the
		// calibrated one-shot path; the retry delay only applies once a
		// backpressure reply has been received.
		MergeChunkEvents:  0,
		MergeWindowChunks: 4,
		MergeAdmitMax:     0,
		MergeRetryDelay:   2 * time.Millisecond,

		ForkBase:           80 * time.Millisecond,
		ForkCopyBandwidth:  8e9,
		SyncDrainBandwidth: 300e6,
		InodeBytes:         1400,

		AllocatedInodesDefault: 100,
	}
}

// Validate reports configuration errors that would make a simulation
// meaningless (non-positive rates or sizes).
func (c Config) Validate() error {
	type check struct {
		ok   bool
		name string
	}
	checks := []check{
		{c.ClientAppendTime > 0, "ClientAppendTime"},
		{c.MDSOpTime > 0, "MDSOpTime"},
		{c.MDSLookupTime > 0, "MDSLookupTime"},
		{c.MDSApplyTime > 0, "MDSApplyTime"},
		{c.NetBandwidth > 0, "NetBandwidth"},
		{c.OSDDiskBandwidth > 0, "OSDDiskBandwidth"},
		{c.LocalDiskBandwidth > 0, "LocalDiskBandwidth"},
		{c.JournalEventBytes > 0, "JournalEventBytes"},
		{c.SegmentEvents > 0, "SegmentEvents"},
		{c.DispatchSize > 0, "DispatchSize"},
		{c.StripeUnit > 0, "StripeUnit"},
		{c.Replicas > 0, "Replicas"},
		{c.NumOSDs > 0, "NumOSDs"},
		{c.AllocatedInodesDefault > 0, "AllocatedInodesDefault"},
		{c.ForkCopyBandwidth > 0, "ForkCopyBandwidth"},
		{c.SyncDrainBandwidth > 0, "SyncDrainBandwidth"},
		// Zero disables chunking/admission bounding; negatives are nonsense.
		{c.MergeChunkEvents >= 0, "MergeChunkEvents"},
		{c.MergeWindowChunks >= 0, "MergeWindowChunks"},
		{c.MergeAdmitMax >= 0, "MergeAdmitMax"},
		{c.MergeRetryDelay >= 0, "MergeRetryDelay"},
		// Zero selects built-in migration defaults; negatives are nonsense.
		{c.MigrateChunkDirs >= 0, "MigrateChunkDirs"},
		{c.MigrateWindowChunks >= 0, "MigrateWindowChunks"},
		{c.MigrateAdmitMax >= 0, "MigrateAdmitMax"},
		{c.MigrateRetryDelay >= 0, "MigrateRetryDelay"},
		{c.MigrateDirCPU >= 0, "MigrateDirCPU"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &ConfigError{Field: ch.name}
		}
	}
	return nil
}

// ConfigError reports a non-positive configuration field.
type ConfigError struct{ Field string }

func (e *ConfigError) Error() string {
	return "model: config field " + e.Field + " must be positive"
}
