package model

import (
	"errors"
	"testing"
	"time"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultCalibration(t *testing.T) {
	c := Default()
	// Append Client Journal baseline: ~11,000 events/s (paper §V-A).
	rate := float64(time.Second) / float64(c.ClientAppendTime)
	if rate < 10500 || rate > 11500 {
		t.Fatalf("client append rate = %.0f/s, want ~11000", rate)
	}
	// MDS journal-off peak: ~3000 op/s (paper §II-A).
	peak := float64(time.Second) / float64(c.MDSOpTime)
	if peak < 2800 || peak > 3200 {
		t.Fatalf("MDS peak = %.0f op/s, want ~3000", peak)
	}
	// Journal storage footprint: 2.5 KB/update (paper §V-A).
	if c.JournalEventBytes != 2500 {
		t.Fatalf("journal event bytes = %d, want 2500", c.JournalEventBytes)
	}
	// 1M updates should be ~2.38 GB.
	gb := float64(c.JournalEventBytes) * 1e6 / (1 << 30)
	if gb < 2.2 || gb > 2.5 {
		t.Fatalf("1M-update journal = %.2f GiB, want ~2.33", gb)
	}
	// Single-client RPC create (journal off) ~654/s: overheads sum to
	// ~1.53 ms.
	perOp := c.ClientOpOverhead + 2*c.NetLatency + c.MDSOpTime
	rate = float64(time.Second) / float64(perOp)
	if rate < 600 || rate > 710 {
		t.Fatalf("single-client RPC rate = %.0f/s, want ~654", rate)
	}
	// Volatile Apply ~0.9x of the append baseline.
	ratio := float64(c.MDSApplyTime) / float64(c.ClientAppendTime)
	if ratio < 0.8 || ratio > 1.0 {
		t.Fatalf("volatile-apply/append ratio = %.2f, want ~0.9", ratio)
	}
}

func TestValidateCatchesZeroFields(t *testing.T) {
	fields := []func(*Config){
		func(c *Config) { c.ClientAppendTime = 0 },
		func(c *Config) { c.MDSOpTime = 0 },
		func(c *Config) { c.MDSLookupTime = 0 },
		func(c *Config) { c.MDSApplyTime = 0 },
		func(c *Config) { c.NetBandwidth = 0 },
		func(c *Config) { c.OSDDiskBandwidth = 0 },
		func(c *Config) { c.LocalDiskBandwidth = 0 },
		func(c *Config) { c.JournalEventBytes = 0 },
		func(c *Config) { c.SegmentEvents = 0 },
		func(c *Config) { c.DispatchSize = 0 },
		func(c *Config) { c.StripeUnit = 0 },
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.NumOSDs = 0 },
		func(c *Config) { c.AllocatedInodesDefault = 0 },
		func(c *Config) { c.ForkCopyBandwidth = 0 },
		func(c *Config) { c.SyncDrainBandwidth = 0 },
	}
	for i, mutate := range fields {
		c := Default()
		mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Fatalf("mutation %d: Validate accepted bad config", i)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("mutation %d: error type %T, want *ConfigError", i, err)
		}
		if ce.Error() == "" {
			t.Fatalf("mutation %d: empty error string", i)
		}
	}
}
