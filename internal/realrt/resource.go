package realrt

import (
	"fmt"

	"cudele/internal/runtime"
)

// task asserts a runtime.Task down to this engine's concrete task type.
func task(t runtime.Task) *Task {
	tt, ok := t.(*Task)
	if !ok {
		panic(fmt.Sprintf("realrt: task %T is not a real-backend task", t))
	}
	return tt
}

// Signal is the real backend's one-shot condition. All methods are
// called with the run lock held (from task context), so the fields need
// no extra locking; the park/unpark protocol is Task.block/Task.wake.
type Signal struct {
	eng     *Engine
	fired   bool
	val     any
	waiters []*Task
}

// Fire releases all current and future waiters, handing them val.
func (s *Signal) Fire(val any) {
	if s.fired {
		panic("realrt: Signal fired twice")
	}
	s.fired = true
	s.val = val
	for _, w := range s.waiters {
		w.wake()
	}
	s.waiters = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks t until the signal fires and returns the fired value.
func (s *Signal) Wait(t runtime.Task) any {
	if !s.fired {
		tt := task(t)
		s.waiters = append(s.waiters, tt)
		tt.block()
	}
	return s.val
}

// Group mirrors sim.Group on the real backend.
type Group struct {
	eng  *Engine
	n    int
	done *Signal
}

// Add registers delta more tasks the group will wait for.
func (g *Group) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("realrt: Group counter below zero")
	}
}

// Done marks one task finished, firing the completion signal at zero.
func (g *Group) Done() {
	g.Add(-1)
	if g.n == 0 && !g.done.Fired() {
		g.done.Fire(nil)
	}
}

// Go spawns fn as a task tracked by the group.
func (g *Group) Go(name string, fn func(t runtime.Task)) {
	g.Add(1)
	g.eng.Spawn(name, func(t runtime.Task) {
		defer g.Done()
		fn(t)
	})
}

// Wait blocks t until the group count reaches zero.
func (g *Group) Wait(t runtime.Task) {
	if g.n == 0 {
		return
	}
	g.done.Wait(t)
}

// Resource is the real backend's FIFO server. Same shape and accounting
// as sim.Resource, but the busy-time integral runs on wall time. All
// methods execute with the run lock held.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Task

	busyArea   float64 // integral of inUse over time, unit·seconds
	lastChange runtime.Time
	acquires   uint64
	waitTotal  runtime.Duration
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of tasks waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyArea += float64(r.inUse) * (now - r.lastChange).Seconds()
	r.lastChange = now
}

// Acquire takes one unit, blocking t in FIFO order until one is free.
func (r *Resource) Acquire(t runtime.Task) {
	tt := task(t)
	r.acquires++
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return
	}
	start := r.eng.Now()
	r.queue = append(r.queue, tt)
	tt.block()
	// Woken by Release with the unit already transferred to us.
	r.waitTotal += runtime.Duration(r.eng.Now() - start)
}

// TryAcquire takes one unit if immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit and hands it to the head waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("realrt: resource %q released below zero", r.name))
	}
	if len(r.queue) > 0 {
		// Transfer the unit directly: inUse stays constant.
		next := r.queue[0]
		r.queue = r.queue[1:]
		next.wake()
		return
	}
	r.account()
	r.inUse--
}

// Use acquires one unit, holds it for service duration d, then releases.
func (r *Resource) Use(t runtime.Task, d runtime.Duration) {
	r.Acquire(t)
	t.Sleep(d)
	r.Release()
}

// Utilization returns mean busy fraction since the engine started.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.eng.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	return r.busyArea / (elapsed * float64(r.capacity))
}

// UtilizationMark snapshots the accounting state at the current time.
func (r *Resource) UtilizationMark() runtime.ResourceMark {
	r.account()
	return runtime.ResourceMark{At: r.eng.Now(), BusyArea: r.busyArea}
}

// UtilizationSince returns the mean busy fraction between mark and now.
func (r *Resource) UtilizationSince(mark runtime.ResourceMark) float64 {
	r.account()
	dt := (r.eng.Now() - mark.At).Seconds()
	if dt <= 0 {
		return 0
	}
	return (r.busyArea - mark.BusyArea) / (dt * float64(r.capacity))
}

// Acquires returns the total number of grants requested.
func (r *Resource) Acquires() uint64 { return r.acquires }

// MeanWait returns the mean queueing delay across all acquires.
func (r *Resource) MeanWait() runtime.Duration {
	if r.acquires == 0 {
		return 0
	}
	return r.waitTotal / runtime.Duration(r.acquires)
}

// Snapshot returns a copy of the accounting state.
func (r *Resource) Snapshot() runtime.ResourceSnapshot {
	r.account()
	return runtime.ResourceSnapshot{
		Name:        r.name,
		Capacity:    r.capacity,
		InUse:       r.inUse,
		QueueLen:    len(r.queue),
		Acquires:    r.acquires,
		BusyArea:    r.busyArea,
		WaitTotal:   r.waitTotal,
		Utilization: r.Utilization(),
		At:          r.eng.Now(),
	}
}

// Pipe is the real backend's bandwidth pipe: transfers serialize FIFO
// and take n/rate seconds of wall time. When the object store persists
// to a real disk it bypasses pipe charges entirely (the fsync is the
// cost), so on the real backend pipes mostly model the network.
type Pipe struct {
	res  *Resource
	rate float64
	sent uint64
}

// Transfer moves n bytes through the pipe.
func (pp *Pipe) Transfer(t runtime.Task, n int64) {
	if n < 0 {
		panic("realrt: negative transfer size")
	}
	pp.sent += uint64(n)
	d := runtime.Duration(float64(n) / pp.rate * 1e9)
	pp.res.Use(t, d)
}

// Rate returns the configured bandwidth in bytes per second.
func (pp *Pipe) Rate() float64 { return pp.rate }

// Bytes returns the total bytes pushed through the pipe.
func (pp *Pipe) Bytes() uint64 { return pp.sent }

// Utilization returns the pipe's busy fraction since engine start.
func (pp *Pipe) Utilization() float64 { return pp.res.Utilization() }

// UtilizationMark snapshots pipe accounting for windowed measurement.
func (pp *Pipe) UtilizationMark() runtime.ResourceMark { return pp.res.UtilizationMark() }

// UtilizationSince returns busy fraction since mark.
func (pp *Pipe) UtilizationSince(m runtime.ResourceMark) float64 { return pp.res.UtilizationSince(m) }

// Snapshot returns the pipe's finalized utilization accounting.
func (pp *Pipe) Snapshot() runtime.ResourceSnapshot { return pp.res.Snapshot() }
