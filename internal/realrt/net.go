package realrt

import (
	"io"
	"net"
	"sync"
)

// frameSize is the fixed size of a loopback round-trip frame. Protocol
// messages carry live pointers (journal events, namespace inodes) and
// cannot be serialized, so the loopback option does not ship payloads;
// it puts a real kernel socket round trip on every Call so measured
// latency includes a real network stack instead of nothing.
const frameSize = 64

// loopback is a TCP echo endpoint on 127.0.0.1 plus a small pool of
// client connections.
type loopback struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

// EnableLoopback starts a loopback-TCP echo listener and routes every
// transport Call's round trip through it (see Wire). Call once, before
// spawning tasks; Shutdown closes the listener.
func (e *Engine) EnableLoopback() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lb := &loopback{ln: ln}
	go lb.serve()
	e.net = lb
	return nil
}

// NetRoundTrip sends one fixed-size frame to the loopback echo server
// and waits for it to come back. It reports whether the loopback option
// is enabled; callers must invoke it outside the run lock (inside
// Runtime.Blocking), since it performs real socket I/O.
func (e *Engine) NetRoundTrip() (bool, error) {
	lb := e.net
	if lb == nil {
		return false, nil
	}
	c, err := lb.get()
	if err != nil {
		return true, err
	}
	var frame [frameSize]byte
	if _, err := c.Write(frame[:]); err != nil {
		c.Close()
		return true, err
	}
	if _, err := io.ReadFull(c, frame[:]); err != nil {
		c.Close()
		return true, err
	}
	lb.put(c)
	return true, nil
}

func (lb *loopback) serve() {
	for {
		c, err := lb.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			defer c.Close()
			var frame [frameSize]byte
			for {
				if _, err := io.ReadFull(c, frame[:]); err != nil {
					return
				}
				if _, err := c.Write(frame[:]); err != nil {
					return
				}
			}
		}()
	}
}

func (lb *loopback) get() (net.Conn, error) {
	lb.mu.Lock()
	if n := len(lb.conns); n > 0 {
		c := lb.conns[n-1]
		lb.conns = lb.conns[:n-1]
		lb.mu.Unlock()
		return c, nil
	}
	lb.mu.Unlock()
	return net.Dial("tcp", lb.ln.Addr().String())
}

func (lb *loopback) put(c net.Conn) {
	lb.mu.Lock()
	lb.conns = append(lb.conns, c)
	lb.mu.Unlock()
}

func (lb *loopback) close() {
	lb.ln.Close()
	lb.mu.Lock()
	for _, c := range lb.conns {
		c.Close()
	}
	lb.conns = nil
	lb.mu.Unlock()
}
