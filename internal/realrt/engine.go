// Package realrt is the real execution backend: tasks are goroutines,
// the clock is wall time, and sleeps and bandwidth charges take actual
// wall-clock time. The protocol stack (client, mds, monitor, rados,
// transport) runs on it unchanged through the interfaces in
// internal/runtime.
//
// # Serialization discipline
//
// The protocol code was written for the simulator's cooperative model:
// exactly one task executes at a time and every shared structure
// (namespace stores, journals, session maps, merge scheduler state) is
// mutated without locks, relying on yield points for atomicity. The
// real backend preserves that contract with a run lock — a GIL — that
// a task holds while executing and releases whenever it sleeps, blocks
// on a signal or resource, or enters Runtime.Blocking for true I/O
// (fsync, socket round trips). Tasks therefore interleave only at the
// same points they could in the simulator, all protocol state stays
// race-free under `go test -race`, and real concurrency still happens
// where it matters: in the kernel, across sleeps and disk flushes.
//
// Sleeps are real: Duration values that the simulator charges as
// virtual time become wall-clock time.Sleep here. That is load-bearing
// beyond fidelity — protocol loops poll with short sleeps (journal
// flush waits, merge window retries), and a no-op sleep would spin
// forever while holding the run lock.
package realrt

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cudele/internal/obs"
	"cudele/internal/runtime"
	"cudele/internal/trace"
)

// errTaskKilled unwinds a task goroutine that Shutdown is reaping.
var errTaskKilled = new(int)

// Engine is the real backend's runtime: a wall clock, a run lock, and
// a registry of live tasks.
type Engine struct {
	// mu is the run lock (the GIL): held by the one task currently
	// executing protocol code. It guards no engine fields.
	mu sync.Mutex

	// state guards the task registry and the quiescence accounting, and
	// is what cond waits on. It is separate from the run lock so that
	// Spawn works from task context (realCall spawns a handler task
	// while holding the run lock) — Spawn only needs state. Lock order
	// is strictly mu → state; nothing takes mu while holding state.
	state sync.Mutex
	cond  *sync.Cond

	start  time.Time
	rng    *rand.Rand
	tracer *trace.Recorder
	flight *obs.Flight

	live     map[*Task]struct{}
	nlive    int // tasks spawned and not yet finished
	nblocked int // tasks parked on a signal/resource with no timer pending

	net *loopback // optional loopback-TCP round tripper, nil when off
}

// New returns an engine whose clock starts now and whose random source
// is seeded with seed. Real runs are not deterministic — goroutine
// wakeup order depends on the scheduler and wall time — but a seeded
// source keeps workload shapes (jitter draws, service-time draws)
// reproducible in distribution.
func New(seed int64) *Engine {
	e := &Engine{
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		live:  make(map[*Task]struct{}),
	}
	e.cond = sync.NewCond(&e.state)
	return e
}

// Kind implements runtime.Runtime.
func (e *Engine) Kind() runtime.Kind { return runtime.RealKind }

// Now returns wall-clock nanoseconds since the engine was created.
func (e *Engine) Now() runtime.Time { return runtime.Time(time.Since(e.start)) }

// Rand returns the engine's random source. Tasks run serialized under
// the run lock, so task-context use needs no extra locking.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Tracer returns the span recorder; nil means tracing is off.
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// SetTracer installs a span recorder. Install before spawning tasks;
// the recorder itself is safe for concurrent use.
func (e *Engine) SetTracer(r *trace.Recorder) { e.tracer = r }

// Flight returns the chaos flight recorder; nil means recording is off.
func (e *Engine) Flight() *obs.Flight { return e.flight }

// SetFlight installs a flight recorder. Install before spawning tasks;
// the recorder itself is safe for concurrent use.
func (e *Engine) SetFlight(f *obs.Flight) { e.flight = f }

// Exclusive implements runtime.Runtime: fn runs holding the run lock,
// so no task executes protocol code concurrently. For external callers
// (admin scrape goroutines), never from task context — a task already
// holds the run lock and would deadlock.
func (e *Engine) Exclusive(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

// Spawn implements runtime.Runtime: fn runs as a goroutine that obeys
// the run-lock discipline.
func (e *Engine) Spawn(name string, fn func(t runtime.Task)) {
	t := &Task{eng: e, name: name, resume: make(chan struct{}, 1)}
	e.state.Lock()
	e.nlive++
	e.live[t] = struct{}{}
	e.state.Unlock()
	go func() {
		e.mu.Lock()
		defer func() {
			r := recover()
			e.mu.Unlock()
			e.state.Lock()
			e.nlive--
			delete(e.live, t)
			e.cond.Broadcast()
			e.state.Unlock()
			if r != nil && r != errTaskKilled {
				panic(r)
			}
		}()
		if t.killed.Load() {
			return
		}
		fn(t)
	}()
}

// Blocking implements runtime.Runtime: fn runs with the run lock
// released, so real I/O overlaps other tasks' execution. fn must not
// touch protocol state.
func (e *Engine) Blocking(fn func()) {
	e.mu.Unlock()
	defer e.mu.Lock()
	fn()
}

// NewSignal implements runtime.Runtime.
func (e *Engine) NewSignal() runtime.Signal { return &Signal{eng: e} }

// NewGroup implements runtime.Runtime.
func (e *Engine) NewGroup() runtime.Group {
	return &Group{eng: e, done: &Signal{eng: e}}
}

// NewResource implements runtime.Runtime.
func (e *Engine) NewResource(name string, capacity int) runtime.Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("realrt: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// NewPipe implements runtime.Runtime.
func (e *Engine) NewPipe(name string, rate float64) runtime.Pipe {
	if rate <= 0 {
		panic(fmt.Sprintf("realrt: pipe %q rate %v <= 0", name, rate))
	}
	return &Pipe{res: &Resource{eng: e, name: name, capacity: 1}, rate: rate}
}

// RunAll blocks until every task has finished or the remaining tasks
// are all parked on signals/resources with nothing left to wake them
// (the real-backend analogue of the simulator draining its event queue
// with processes still blocked). Tasks that are sleeping or doing
// Blocking I/O count as runnable — they will make progress on their
// own. It returns the wall time since the engine started.
func (e *Engine) RunAll() runtime.Time {
	e.state.Lock()
	for e.nlive > 0 && e.nblocked < e.nlive {
		e.cond.Wait()
	}
	e.state.Unlock()
	return e.Now()
}

// LeakCheck returns nil when no tasks are live, and otherwise an error
// naming the leaked tasks.
func (e *Engine) LeakCheck() error {
	e.state.Lock()
	defer e.state.Unlock()
	if e.nlive == 0 {
		return nil
	}
	names := make([]string, 0, len(e.live))
	for t := range e.live {
		names = append(names, t.name)
	}
	sort.Strings(names)
	return fmt.Errorf("realrt: %d leaked task(s): %s", e.nlive, strings.Join(names, ", "))
}

// Shutdown reaps every live task: blocked and sleeping tasks are woken
// with a kill flag that unwinds their stacks, and the call blocks until
// all task goroutines have exited. It also closes the loopback-TCP
// endpoint if one was enabled. It returns the number of tasks that were
// live when reaping began; a fully drained run returns 0.
func (e *Engine) Shutdown() int {
	e.state.Lock()
	reaped := e.nlive
	for e.nlive > 0 {
		targets := make([]*Task, 0, len(e.live))
		for t := range e.live {
			targets = append(targets, t)
		}
		e.state.Unlock()
		for _, t := range targets {
			t.killed.Store(true)
			t.wake()
		}
		e.state.Lock()
		if e.nlive == 0 {
			break
		}
		e.cond.Wait()
	}
	e.state.Unlock()
	if e.net != nil {
		e.net.close()
		e.net = nil
	}
	return reaped
}

// Task is one goroutine obeying the engine's run-lock discipline. All
// methods must be called from the task's own goroutine, which holds the
// run lock except while parked.
type Task struct {
	eng  *Engine
	name string
	// resume carries wakeups (capacity 1: a parked task consumes at
	// most one token per park, and duplicate wakes are dropped).
	resume chan struct{}
	// parked is true while the task is blocked on a signal/resource.
	// Its waker clears it (and the engine's blocked count) under the
	// state lock at wake time, so quiescence accounting never counts a
	// task that already has a wakeup in flight.
	parked bool
	killed atomic.Bool
}

// Name returns the task name given to Spawn.
func (t *Task) Name() string { return t.name }

// Now returns wall-clock nanoseconds since the engine started.
func (t *Task) Now() runtime.Time { return t.eng.Now() }

// Runtime implements runtime.Task.
func (t *Task) Runtime() runtime.Runtime { return t.eng }

// Sleep suspends the task for wall duration d, releasing the run lock.
func (t *Task) Sleep(d runtime.Duration) {
	if t.killed.Load() {
		panic(errTaskKilled)
	}
	e := t.eng
	e.mu.Unlock()
	if d <= 0 {
		// Yield: hand the lock to whoever is waiting for it.
		e.mu.Lock()
		return
	}
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case <-t.resume: // Shutdown kill
	}
	timer.Stop()
	e.mu.Lock()
	if t.killed.Load() {
		panic(errTaskKilled)
	}
}

// Yield gives other runnable tasks a chance to take the run lock.
func (t *Task) Yield() { t.Sleep(0) }

// String implements fmt.Stringer.
func (t *Task) String() string { return fmt.Sprintf("task(%s)", t.name) }

// block parks the task until wake, releasing the run lock. The caller
// must have registered the task somewhere a future wake will find it;
// a task parked with no such registration only RunAll's quiescence
// accounting and Shutdown can reach.
func (t *Task) block() {
	if t.killed.Load() {
		panic(errTaskKilled)
	}
	e := t.eng
	e.state.Lock()
	t.parked = true
	e.nblocked++
	e.cond.Broadcast() // nblocked may now equal nlive: RunAll quiesces
	e.state.Unlock()
	e.mu.Unlock()
	<-t.resume
	e.mu.Lock()
	if t.killed.Load() {
		panic(errTaskKilled)
	}
}

// wake unparks a blocked task; duplicate wakes are dropped. Safe to
// call with or without the run lock (it takes only the state lock).
func (t *Task) wake() {
	e := t.eng
	e.state.Lock()
	if t.parked {
		t.parked = false
		e.nblocked--
	}
	e.state.Unlock()
	select {
	case t.resume <- struct{}{}:
	default:
	}
}
