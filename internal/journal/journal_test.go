package journal

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mkCreate(parent uint64, name string) *Event {
	return &Event{Type: EvCreate, Client: "c0", Parent: parent, Name: name, Mode: 0644}
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		ev *Event
		ok bool
	}{
		{&Event{Type: EvCreate, Name: "f"}, true},
		{&Event{Type: EvCreate}, false},
		{&Event{Type: EvMkdir, Name: "d"}, true},
		{&Event{Type: EvUnlink}, false},
		{&Event{Type: EvRename, Name: "a", NewName: "b"}, true},
		{&Event{Type: EvRename, Name: "a"}, false},
		{&Event{Type: EvSetAttr, Ino: 5}, true},
		{&Event{Type: EvSetAttr}, false},
		{&Event{Type: EvAllocRange, Ino: 100, Size: 10}, true},
		{&Event{Type: EvAllocRange, Ino: 100}, false},
		{&Event{Type: EvInvalid, Name: "x"}, false},
		{&Event{Type: evMax, Name: "x"}, false},
	}
	for i, c := range cases {
		err := c.ev.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d (%v): err = %v, ok = %v", i, c.ev.Type, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadEvent) {
			t.Errorf("case %d: error not ErrBadEvent: %v", i, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []*Event{
		{Type: EvCreate, Seq: 0, Client: "client.a", Parent: 1, Name: "file0", Ino: 100, Mode: 0644, UID: 1000, GID: 1000},
		{Type: EvMkdir, Seq: 1, Client: "client.a", Parent: 1, Name: "dir", Ino: 101, Mode: 0755},
		{Type: EvRename, Seq: 2, Client: "client.b", Parent: 1, Name: "file0", NewParent: 101, NewName: "moved"},
		{Type: EvSetAttr, Seq: 3, Client: "client.b", Ino: 100, Mode: 0600, Size: 4096, Mtime: -12345},
		{Type: EvUnlink, Seq: 4, Client: "client.a", Parent: 101, Name: "moved"},
		{Type: EvRmdir, Seq: 5, Client: "client.a", Parent: 1, Name: "dir"},
		{Type: EvAllocRange, Seq: 6, Client: "client.c", Ino: 1 << 40, Size: 100},
	}
	data, err := Encode(events)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode([]byte("NOTAJRNL")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("x")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short buf err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	data, _ := Encode([]*Event{mkCreate(1, "f")})
	for cut := MagicLen + 1; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	data, _ := Encode([]*Event{mkCreate(1, "somefilename")})
	// Flip one payload byte; the CRC must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[MagicLen+5] ^= 0xff
	_, err := Decode(corrupt)
	if err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 62, -(1 << 62)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

// Property: encode/decode is the identity on arbitrary valid events.
func TestCodecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func() *Event {
		types := []EventType{EvCreate, EvMkdir, EvUnlink, EvRmdir, EvRename, EvSetAttr, EvAllocRange}
		ev := &Event{
			Type:      types[rng.Intn(len(types))],
			Seq:       rng.Uint64(),
			Client:    "client." + string(rune('a'+rng.Intn(26))),
			Ino:       rng.Uint64(),
			Parent:    rng.Uint64(),
			Name:      randName(rng),
			NewParent: rng.Uint64(),
			NewName:   randName(rng),
			Mode:      rng.Uint32(),
			UID:       rng.Uint32(),
			GID:       rng.Uint32(),
			Size:      rng.Uint64(),
			Mtime:     rng.Int63() - (1 << 62),
		}
		// Satisfy per-type validity.
		if ev.Type == EvSetAttr && ev.Ino == 0 {
			ev.Ino = 1
		}
		if ev.Type == EvAllocRange && ev.Size == 0 {
			ev.Size = 1
		}
		return ev
	}
	f := func(n uint8) bool {
		events := make([]*Event, int(n)%50+1)
		for i := range events {
			events[i] = gen()
		}
		data, err := Encode(events)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if !reflect.DeepEqual(got[i], events[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randName(rng *rand.Rand) string {
	n := rng.Intn(20) + 1
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + rng.Intn(26)))
	}
	return b.String()
}

func TestJournalAppendSeals(t *testing.T) {
	j := New(3)
	var sealed []*Segment
	for i := 0; i < 7; i++ {
		s, err := j.Append(mkCreate(1, "f"))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if s != nil {
			sealed = append(sealed, s)
		}
	}
	if len(sealed) != 2 {
		t.Fatalf("sealed %d segments, want 2", len(sealed))
	}
	if sealed[0].Index != 0 || sealed[1].Index != 1 {
		t.Fatalf("segment indexes %d,%d", sealed[0].Index, sealed[1].Index)
	}
	if j.Len() != 7 {
		t.Fatalf("len = %d, want 7", j.Len())
	}
	if s := j.Seal(); s == nil || len(s.Events) != 1 {
		t.Fatalf("final seal = %+v", s)
	}
	if j.Seal() != nil {
		t.Fatal("sealing empty current segment returned non-nil")
	}
}

func TestJournalSequenceNumbers(t *testing.T) {
	j := New(10)
	for i := 0; i < 5; i++ {
		j.Append(mkCreate(1, "f"))
	}
	for i, ev := range j.Events() {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
	}
	if j.NextSeq() != 5 {
		t.Fatalf("next seq = %d", j.NextSeq())
	}
}

func TestJournalTrim(t *testing.T) {
	j := New(2)
	for i := 0; i < 6; i++ {
		j.Append(mkCreate(1, "f"))
	}
	if len(j.Segments()) != 3 {
		t.Fatalf("segments = %d", len(j.Segments()))
	}
	j.Trim(1) // expire segments 0 and 1
	if len(j.Segments()) != 1 || j.Segments()[0].Index != 2 {
		t.Fatalf("after trim: %d segments", len(j.Segments()))
	}
	if j.Trimmed() != 4 || j.Len() != 2 || j.Total() != 6 {
		t.Fatalf("trimmed=%d len=%d total=%d", j.Trimmed(), j.Len(), j.Total())
	}
}

func TestJournalReset(t *testing.T) {
	j := New(2)
	for i := 0; i < 5; i++ {
		j.Append(mkCreate(1, "f"))
	}
	j.Reset()
	if j.Len() != 0 || j.NextSeq() != 0 || j.Total() != 0 {
		t.Fatalf("reset journal: len=%d seq=%d", j.Len(), j.NextSeq())
	}
	s, _ := j.Append(mkCreate(1, "g"))
	_ = s
	if j.Events()[0].Seq != 0 {
		t.Fatal("seq did not restart after reset")
	}
}

func TestJournalExportImport(t *testing.T) {
	j := New(4)
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		j.Append(mkCreate(1, n))
	}
	data, err := j.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	j2, err := Import(data, 4)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if j2.Len() != len(names) {
		t.Fatalf("imported %d events", j2.Len())
	}
	for i, ev := range j2.Events() {
		if ev.Name != names[i] {
			t.Fatalf("event %d name = %q", i, ev.Name)
		}
	}
}

func TestInspect(t *testing.T) {
	j := New(10)
	j.Append(mkCreate(1, "a"))
	j.Append(mkCreate(1, "b"))
	j.Append(&Event{Type: EvMkdir, Client: "c1", Parent: 1, Name: "d"})
	data, _ := j.Export()
	s, err := Inspect(data)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if s.Events != 3 || s.ByType[EvCreate] != 2 || s.ByType[EvMkdir] != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Clients["c0"] != 2 || s.Clients["c1"] != 1 {
		t.Fatalf("clients = %+v", s.Clients)
	}
	if s.MinSeq != 0 || s.MaxSeq != 2 {
		t.Fatalf("seq range = %d..%d", s.MinSeq, s.MaxSeq)
	}
	out := s.String()
	for _, want := range []string{"events: 3", "create", "mkdir", "client c0"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestErase(t *testing.T) {
	j := New(10)
	for _, n := range []string{"a", "b", "c", "d"} {
		j.Append(mkCreate(1, n))
	}
	data, _ := j.Export()
	out, erased, err := Erase(data, 1, 2)
	if err != nil || erased != 2 {
		t.Fatalf("erase: %d,%v", erased, err)
	}
	events, _ := Decode(out)
	if len(events) != 2 || events[0].Name != "a" || events[1].Name != "d" {
		t.Fatalf("after erase: %v", events)
	}
}

type countTarget struct {
	applied []*Event
	failAt  int
}

func (c *countTarget) ApplyEvent(ev *Event) error {
	if c.failAt > 0 && len(c.applied) == c.failAt {
		return errors.New("boom")
	}
	c.applied = append(c.applied, ev)
	return nil
}

func TestReplayAndApply(t *testing.T) {
	j := New(10)
	for _, n := range []string{"a", "b", "c"} {
		j.Append(mkCreate(1, n))
	}
	tgt := &countTarget{}
	n, err := Replay(j.Events(), tgt)
	if err != nil || n != 3 {
		t.Fatalf("replay = %d,%v", n, err)
	}
	data, _ := j.Export()
	tgt2 := &countTarget{}
	n, err = Apply(data, tgt2)
	if err != nil || n != 3 {
		t.Fatalf("apply = %d,%v", n, err)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	j := New(10)
	for _, n := range []string{"a", "b", "c"} {
		j.Append(mkCreate(1, n))
	}
	tgt := &countTarget{failAt: 1}
	n, err := Replay(j.Events(), tgt)
	if err == nil || n != 1 {
		t.Fatalf("replay = %d,%v; want 1 applied and error", n, err)
	}
}

func TestDump(t *testing.T) {
	j := New(10)
	j.Append(mkCreate(1, "hello"))
	data, _ := j.Export()
	out, err := Dump(data)
	if err != nil || !strings.Contains(out, `"hello"`) {
		t.Fatalf("dump = %q, %v", out, err)
	}
}

func TestSegmentEncodedLen(t *testing.T) {
	j := New(2)
	j.Append(mkCreate(1, "a"))
	s, _ := j.Append(mkCreate(1, "b"))
	if s == nil {
		t.Fatal("no sealed segment")
	}
	n, err := s.EncodedLen()
	if err != nil || n <= MagicLen {
		t.Fatalf("encoded len = %d,%v", n, err)
	}
}

func TestAppendEventRejectsInvalid(t *testing.T) {
	_, err := AppendEvent(nil, &Event{Type: EvCreate})
	if err == nil {
		t.Fatal("invalid event encoded")
	}
	j := New(2)
	if _, err := j.Append(&Event{Type: EvCreate}); err == nil {
		t.Fatal("journal accepted invalid event")
	}
}
