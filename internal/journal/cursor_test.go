package journal

import (
	"bytes"
	"fmt"
	"testing"
)

// fillJournal appends n create events into a journal with the given
// segment size.
func fillJournal(t *testing.T, n, segSize int) *Journal {
	t.Helper()
	j := New(segSize)
	for i := 0; i < n; i++ {
		ev := &Event{Type: EvCreate, Ino: uint64(100 + i), Parent: 1, Name: fmt.Sprintf("f%d", i)}
		if _, err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

// TestCursorMatchesEvents pins the cursor contract: for any run size,
// concatenating the runs reproduces Events() exactly, and run lengths are
// min(max, remaining) regardless of where segments seal.
func TestCursorMatchesEvents(t *testing.T) {
	for _, tc := range []struct{ n, segSize, run int }{
		{0, 8, 3},
		{1, 8, 3},
		{10, 4, 3},   // runs cross segment boundaries
		{10, 3, 10},  // one run spans every segment
		{7, 8, 2},    // journal smaller than a segment
		{256, 10, 7}, // many boundary crossings
		{20, 5, 5},   // runs aligned with segments
	} {
		j := fillJournal(t, tc.n, tc.segSize)
		want := j.Events()
		cur := j.Cursor()
		if got := cur.Remaining(); got != tc.n {
			t.Errorf("n=%d seg=%d: Remaining = %d", tc.n, tc.segSize, got)
		}
		var got []*Event
		for {
			run := cur.Next(tc.run)
			if run == nil {
				break
			}
			wantLen := tc.run
			if left := tc.n - len(got); left < wantLen {
				wantLen = left
			}
			if len(run) != wantLen {
				t.Errorf("n=%d seg=%d run=%d: run length %d, want %d",
					tc.n, tc.segSize, tc.run, len(run), wantLen)
			}
			got = append(got, run...)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d seg=%d run=%d: got %d events, want %d",
				tc.n, tc.segSize, tc.run, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d seg=%d run=%d: event %d differs", tc.n, tc.segSize, tc.run, i)
			}
		}
		if cur.Remaining() != 0 {
			t.Errorf("exhausted cursor Remaining = %d", cur.Remaining())
		}
	}
}

// TestInlineCursorReusesBuffer checks that the inline cursor's gather
// buffer is recycled across boundary-crossing runs (the zero-alloc merge
// path) while still yielding the right events.
func TestInlineCursorReusesBuffer(t *testing.T) {
	j := fillJournal(t, 30, 4)
	want := j.Events()
	cur := j.InlineCursor()
	var got []*Event
	for {
		run := cur.Next(7)
		if run == nil {
			break
		}
		got = append(got, run...) // copy out before the buffer is reused
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestExportMatchesEncode pins that the cursor-based Export produces the
// byte-identical image of encoding the flat event slice, across segment
// shapes.
func TestExportMatchesEncode(t *testing.T) {
	for _, tc := range []struct{ n, segSize int }{{0, 8}, {5, 8}, {64, 10}, {300, 7}} {
		j := fillJournal(t, tc.n, tc.segSize)
		want, err := Encode(j.Events())
		if err != nil {
			t.Fatal(err)
		}
		got, err := j.Export()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("n=%d seg=%d: Export differs from Encode(Events())", tc.n, tc.segSize)
		}
	}
}
