package journal

import (
	"reflect"
	"testing"
)

// FuzzDecode guards the codec against truncation, CRC, and bounds
// regressions: Decode must never panic on arbitrary input, and any image
// it accepts must round-trip through Encode/Decode to the same events.
func FuzzDecode(f *testing.F) {
	// Seed corpus from the real encoder: an empty image, a typical
	// create-heavy stream, and every event type.
	empty, err := Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	full, err := Encode([]*Event{
		{Type: EvCreate, Seq: 0, Client: "client.0", Parent: 1, Name: "f0", Ino: 10, Mode: 0644},
		{Type: EvMkdir, Seq: 1, Client: "client.0", Parent: 1, Name: "d", Ino: 11, Mode: 0755},
		{Type: EvUnlink, Seq: 2, Client: "client.1", Parent: 1, Name: "f0"},
		{Type: EvRmdir, Seq: 3, Client: "client.1", Parent: 1, Name: "d"},
		{Type: EvRename, Seq: 4, Client: "client.0", Parent: 1, Name: "a", NewParent: 2, NewName: "b"},
		{Type: EvSetAttr, Seq: 5, Client: "client.0", Ino: 10, Mode: 0600, UID: 7, GID: 8, Size: 99, Mtime: -3},
		{Type: EvAllocRange, Seq: 6, Client: "client.2", Ino: 1 << 33, Size: 100000},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	// Mutated seeds: truncations, a flipped CRC byte, bad magic.
	f.Add(full[:len(full)-1])
	f.Add(full[:MagicLen+1])
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("CUDELEJ\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Decode(data)
		if err != nil {
			return // rejected input; only panics are bugs here
		}
		img, err := Encode(events)
		if err != nil {
			t.Fatalf("accepted events fail to re-encode: %v", err)
		}
		again, err := Decode(img)
		if err != nil {
			t.Fatalf("re-encoded image fails to decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], again[i]) {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
