package journal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode guards the codec against truncation, CRC, and bounds
// regressions: Decode must never panic on arbitrary input, and any image
// it accepts must round-trip through Encode/Decode to the same events.
func FuzzDecode(f *testing.F) {
	// Seed corpus from the real encoder: an empty image, a typical
	// create-heavy stream, and every event type.
	empty, err := Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	full, err := Encode([]*Event{
		{Type: EvCreate, Seq: 0, Client: "client.0", Parent: 1, Name: "f0", Ino: 10, Mode: 0644},
		{Type: EvMkdir, Seq: 1, Client: "client.0", Parent: 1, Name: "d", Ino: 11, Mode: 0755},
		{Type: EvUnlink, Seq: 2, Client: "client.1", Parent: 1, Name: "f0"},
		{Type: EvRmdir, Seq: 3, Client: "client.1", Parent: 1, Name: "d"},
		{Type: EvRename, Seq: 4, Client: "client.0", Parent: 1, Name: "a", NewParent: 2, NewName: "b"},
		{Type: EvSetAttr, Seq: 5, Client: "client.0", Ino: 10, Mode: 0600, UID: 7, GID: 8, Size: 99, Mtime: -3},
		{Type: EvAllocRange, Seq: 6, Client: "client.2", Ino: 1 << 33, Size: 100000},
		{Type: EvExport, Seq: 7, Name: "/spec", Ino: 12, Parent: 0, NewParent: 1},
		{Type: EvUndo, Seq: 8, Client: "client.0", Parent: 1, Name: "f0", Ino: 10, Mode: uint32(EvCreate), Size: 0},
		{Type: EvUndo, Seq: 9, Client: "client.1", Parent: 1, Name: "g", Ino: 13, Mode: uint32(EvUnlink), Size: 2, UID: 7, GID: 8, Mtime: 42},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	// Mutated seeds: truncations, a flipped CRC byte, bad magic.
	f.Add(full[:len(full)-1])
	f.Add(full[:MagicLen+1])
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("CUDELEJ\x02"))
	f.Add([]byte{})
	// Torn-write shapes, as the fault injector produces them: a strict
	// prefix cut at every byte of the first record, a half image, and a
	// good image with a partial extra record appended (a torn append).
	for cut := MagicLen; cut < len(empty)+8 && cut < len(full); cut++ {
		f.Add(full[:cut])
	}
	f.Add(full[:len(full)/2])
	torn := append(append([]byte(nil), full...), full[MagicLen:MagicLen+6]...)
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Decode(data)
		if err != nil {
			return // rejected input; only panics are bugs here
		}
		img, err := Encode(events)
		if err != nil {
			t.Fatalf("accepted events fail to re-encode: %v", err)
		}
		again, err := Decode(img)
		if err != nil {
			t.Fatalf("re-encoded image fails to decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], again[i]) {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}

// FuzzCursorExport guards the chunked Global Persist layout: re-encoding
// a journal through Cursor batches of any size must produce exactly the
// bytes of a one-shot Export, since FetchGlobalJournal decodes the chunk
// concatenation as one image.
func FuzzCursorExport(f *testing.F) {
	full, err := Encode([]*Event{
		{Type: EvCreate, Seq: 0, Client: "client.0", Parent: 1, Name: "f0", Ino: 10, Mode: 0644},
		{Type: EvMkdir, Seq: 1, Client: "client.0", Parent: 1, Name: "d", Ino: 11, Mode: 0755},
		{Type: EvRename, Seq: 2, Client: "client.0", Parent: 1, Name: "a", NewParent: 2, NewName: "b"},
		{Type: EvSetAttr, Seq: 3, Client: "client.0", Ino: 10, Mode: 0600, Size: 99, Mtime: -3},
	})
	if err != nil {
		f.Fatal(err)
	}
	empty, err := Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full, 1)
	f.Add(full, 3)
	f.Add(full, 100)
	f.Add(empty, 1)

	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		events, err := Decode(data)
		if err != nil {
			return
		}
		if chunk <= 0 {
			chunk = -chunk + 1
		}
		j := New(4)
		for _, ev := range events {
			if _, err := j.Append(ev); err != nil {
				t.Fatalf("decoded event rejected by Append: %v", err)
			}
		}
		want, err := j.Export()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		var enc Encoder
		got := AppendHeader(nil)
		cur := j.Cursor()
		for {
			evs := cur.Next(chunk)
			if evs == nil {
				break
			}
			for _, ev := range evs {
				if got, err = enc.AppendEvent(got, ev); err != nil {
					t.Fatalf("append event: %v", err)
				}
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cursor re-encode (chunk=%d) differs from Export: %d vs %d bytes",
				chunk, len(got), len(want))
		}
	})
}
