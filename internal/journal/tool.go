package journal

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the operations of the CephFS journal tool that
// Cudele's client library is based on (paper §IV-B): inspect, export,
// import, erase, and apply.

// Summary describes an encoded journal, as printed by "journal-tool
// inspect".
type Summary struct {
	Events  int
	ByType  map[EventType]int
	Clients map[string]int
	MinSeq  uint64
	MaxSeq  uint64
	Bytes   int
}

// Inspect decodes data and summarizes it.
func Inspect(data []byte) (*Summary, error) {
	events, err := Decode(data)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		ByType:  make(map[EventType]int),
		Clients: make(map[string]int),
		Bytes:   len(data),
	}
	for i, ev := range events {
		s.Events++
		s.ByType[ev.Type]++
		s.Clients[ev.Client]++
		if i == 0 || ev.Seq < s.MinSeq {
			s.MinSeq = ev.Seq
		}
		if ev.Seq > s.MaxSeq {
			s.MaxSeq = ev.Seq
		}
	}
	return s, nil
}

// String renders the summary in journal-tool style.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d (seq %d..%d), %d bytes\n", s.Events, s.MinSeq, s.MaxSeq, s.Bytes)
	types := make([]EventType, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		fmt.Fprintf(&b, "  %-8s %d\n", t, s.ByType[t])
	}
	clients := make([]string, 0, len(s.Clients))
	for c := range s.Clients {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		fmt.Fprintf(&b, "  client %-12s %d\n", c, s.Clients[c])
	}
	return b.String()
}

// Erase removes events with from <= Seq <= to from the encoded journal and
// returns the re-encoded image, like "journal-tool event splice".
func Erase(data []byte, from, to uint64) ([]byte, int, error) {
	events, err := Decode(data)
	if err != nil {
		return nil, 0, err
	}
	kept := events[:0]
	erased := 0
	for _, ev := range events {
		if ev.Seq >= from && ev.Seq <= to {
			erased++
			continue
		}
		kept = append(kept, ev)
	}
	out, err := Encode(kept)
	if err != nil {
		return nil, 0, err
	}
	return out, erased, nil
}

// Apply decodes data and replays it onto target, returning the number of
// events applied ("journal-tool event apply").
func Apply(data []byte, target Target) (int, error) {
	events, err := Decode(data)
	if err != nil {
		return 0, err
	}
	return Replay(events, target)
}

// Dump renders every event line by line ("journal-tool event get list").
func Dump(data []byte) (string, error) {
	events, err := Decode(data)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
