// Package journal implements the CephFS-style metadata journal that Cudele
// re-purposes for namespace decoupling (paper §IV-B).
//
// The journal is a log of typed metadata update events with a versioned,
// CRC-protected binary encoding. The same format is written by the MDS
// (Stream), by decoupled clients (Append Client Journal), to local disk
// (Local Persist), and into the object store (Global Persist); the MDS's
// recovery code replays it onto the metadata store (Volatile / Nonvolatile
// Apply). Because every producer writes the same format, the metadata
// server can merge any client's decoupled updates without protocol changes
// — the property the paper's "dirty-slate" implementation leans on.
package journal

import (
	"errors"
	"fmt"
)

// EventType discriminates journal event payloads.
type EventType uint8

// Event types. The zero value is invalid so that decoding catches
// uninitialized records.
const (
	EvInvalid    EventType = iota
	EvCreate               // create a regular file
	EvMkdir                // create a directory
	EvUnlink               // remove a file
	EvRmdir                // remove an empty directory
	EvRename               // move a dentry
	EvSetAttr              // update inode attributes
	EvAllocRange           // record an inode-number range grant
	EvExport               // subtree export-commit record (migration)
	EvUndo                 // speculative-mode per-op undo record
	evMax
)

var eventTypeNames = [...]string{
	EvInvalid:    "invalid",
	EvCreate:     "create",
	EvMkdir:      "mkdir",
	EvUnlink:     "unlink",
	EvRmdir:      "rmdir",
	EvRename:     "rename",
	EvSetAttr:    "setattr",
	EvAllocRange: "alloc",
	EvExport:     "export",
	EvUndo:       "undo",
}

func (t EventType) String() string {
	if int(t) < len(eventTypeNames) && t != EvInvalid {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// Valid reports whether t is a known event type.
func (t EventType) Valid() bool { return t > EvInvalid && t < evMax }

// Event is one journal record. Fields are interpreted per type:
//
//	Create/Mkdir: Parent+Name name the new dentry, Ino is the new inode
//	  (0 means "assign at apply time"), Mode/UID/GID are attributes.
//	Unlink/Rmdir: Parent+Name name the victim dentry.
//	Rename: Parent+Name is the source, NewParent+NewName the destination.
//	SetAttr: Ino is the target; Mode/UID/GID/Size/Mtime are new values.
//	AllocRange: Ino..Ino+Size is the granted inode range for Client.
//	Export: Name is the migrated subtree path, Ino its root inode,
//	  Parent the source rank, NewParent the destination rank, Seq the
//	  monitor-assigned migration sequence. Written as the export-commit
//	  record; a namespace store treats it as a no-op on replay.
//	Undo: speculative-mode rollback bookkeeping. Parent+Name name the
//	  dentry the undone op touched, Ino its inode, Mode the EventType of
//	  the op being undone, Size the op's index in the client journal.
//	  For an undone unlink, UID/GID/Mtime carry the victim's original
//	  attributes so rollback can re-create it. A namespace store treats
//	  it as a no-op on replay.
type Event struct {
	Type      EventType
	Seq       uint64 // per-producer sequence number
	Client    string // issuing client (session) id
	Ino       uint64
	Parent    uint64
	Name      string
	NewParent uint64
	NewName   string
	Mode      uint32
	UID       uint32
	GID       uint32
	Size      uint64
	Mtime     int64 // virtual nanoseconds
}

// Errors returned by event validation and decoding.
var (
	ErrBadEvent  = errors.New("journal: malformed event")
	ErrBadMagic  = errors.New("journal: bad magic")
	ErrBadVsn    = errors.New("journal: unsupported version")
	ErrChecksum  = errors.New("journal: checksum mismatch")
	ErrTruncated = errors.New("journal: truncated record")
)

// Validate reports whether the event is well-formed for its type.
func (e *Event) Validate() error {
	if !e.Type.Valid() {
		return fmt.Errorf("%w: type %d", ErrBadEvent, e.Type)
	}
	switch e.Type {
	case EvCreate, EvMkdir, EvUnlink, EvRmdir:
		if e.Name == "" {
			return fmt.Errorf("%w: %s with empty name", ErrBadEvent, e.Type)
		}
	case EvRename:
		if e.Name == "" || e.NewName == "" {
			return fmt.Errorf("%w: rename with empty name", ErrBadEvent)
		}
	case EvSetAttr:
		if e.Ino == 0 {
			return fmt.Errorf("%w: setattr on inode 0", ErrBadEvent)
		}
	case EvAllocRange:
		if e.Size == 0 {
			return fmt.Errorf("%w: empty alloc range", ErrBadEvent)
		}
	case EvExport:
		if e.Name == "" {
			return fmt.Errorf("%w: export with empty path", ErrBadEvent)
		}
	case EvUndo:
		if e.Name == "" {
			return fmt.Errorf("%w: undo with empty name", ErrBadEvent)
		}
	}
	return nil
}

// String renders a compact human-readable form, used by journal-tool.
func (e *Event) String() string {
	switch e.Type {
	case EvCreate, EvMkdir:
		return fmt.Sprintf("%-7s seq=%d client=%s parent=%d name=%q ino=%d mode=%o",
			e.Type, e.Seq, e.Client, e.Parent, e.Name, e.Ino, e.Mode)
	case EvUnlink, EvRmdir:
		return fmt.Sprintf("%-7s seq=%d client=%s parent=%d name=%q",
			e.Type, e.Seq, e.Client, e.Parent, e.Name)
	case EvRename:
		return fmt.Sprintf("%-7s seq=%d client=%s %d/%q -> %d/%q",
			e.Type, e.Seq, e.Client, e.Parent, e.Name, e.NewParent, e.NewName)
	case EvSetAttr:
		return fmt.Sprintf("%-7s seq=%d client=%s ino=%d mode=%o size=%d",
			e.Type, e.Seq, e.Client, e.Ino, e.Mode, e.Size)
	case EvAllocRange:
		return fmt.Sprintf("%-7s seq=%d client=%s range=[%d,%d)",
			e.Type, e.Seq, e.Client, e.Ino, e.Ino+e.Size)
	case EvExport:
		return fmt.Sprintf("%-7s seq=%d subtree=%q root=%d rank %d -> %d",
			e.Type, e.Seq, e.Name, e.Ino, e.Parent, e.NewParent)
	case EvUndo:
		return fmt.Sprintf("%-7s seq=%d client=%s undoes=%s[%d] parent=%d name=%q ino=%d",
			e.Type, e.Seq, e.Client, EventType(e.Mode), e.Size, e.Parent, e.Name, e.Ino)
	}
	return fmt.Sprintf("%-7s seq=%d", e.Type, e.Seq)
}

// Target consumes journal events in order; the namespace metadata store
// implements it so that replay ("apply") is the single code path shared by
// Stream recovery, Volatile Apply, and Nonvolatile Apply.
type Target interface {
	ApplyEvent(ev *Event) error
}
