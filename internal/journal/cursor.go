package journal

// Cursor iterates a journal's untrimmed events in append order without
// materializing the flat copy Events() builds. Consumers pull
// fixed-size runs with Next, so a journal of any length can be merged or
// exported with memory bounded by the run size — the streaming-pipeline
// contract the durability mechanisms rely on.
//
// A cursor is a read-only view: it walks the journal's live segments, so
// the journal must not be appended to, trimmed, or reset while the
// cursor is in use. That matches every call site — the mechanisms run a
// merge or persist to completion before touching the journal again.
type Cursor struct {
	j   *Journal
	seg int // index into j.segments; len(j.segments) means the open segment
	off int // event offset within the current segment

	// buf is the gather buffer reused across Next calls when reuse is
	// set. A run that crosses a segment boundary must be gathered into
	// one slice; reusing the buffer keeps the inline (synchronous) merge
	// path allocation-free, while the streamed path takes fresh slices
	// because the receiver buffers chunks beyond the call.
	buf   []*Event
	reuse bool
}

// Cursor returns a cursor positioned at the journal's first untrimmed
// event. Each Next call returns a freshly allocated slice, safe to hand
// to a receiver that retains it (a flow-control window).
func (j *Journal) Cursor() *Cursor { return &Cursor{j: j} }

// InlineCursor returns a cursor whose Next reuses one internal gather
// buffer across calls. The returned slices are only valid until the next
// Next call — for consumers that apply events synchronously and never
// retain the slice.
func (j *Journal) InlineCursor() *Cursor { return &Cursor{j: j, reuse: true} }

// segment returns the cursor's current segment events, nil when the
// cursor is exhausted.
func (c *Cursor) segment() []*Event {
	for {
		switch {
		case c.seg < len(c.j.segments):
			evs := c.j.segments[c.seg].Events
			if c.off < len(evs) {
				return evs
			}
		case c.seg == len(c.j.segments) && c.j.cur != nil:
			evs := c.j.cur.Events
			if c.off < len(evs) {
				return evs
			}
		default:
			return nil
		}
		c.seg++
		c.off = 0
	}
}

// Remaining returns the number of events not yet returned by Next.
func (c *Cursor) Remaining() int {
	n := 0
	for i := c.seg; i < len(c.j.segments); i++ {
		n += len(c.j.segments[i].Events)
	}
	if c.seg <= len(c.j.segments) && c.j.cur != nil {
		n += len(c.j.cur.Events)
	}
	return n - c.off
}

// Next returns the next run of up to max events in append order,
// gathering across segment boundaries so runs are exactly
// min(max, Remaining()) long — chunk lengths depend only on the journal
// length and max, never on where segments happen to seal. It returns nil
// once the cursor is exhausted.
func (c *Cursor) Next(max int) []*Event {
	if max < 1 {
		return nil
	}
	evs := c.segment()
	if evs == nil {
		return nil
	}
	// Fast path: the run fits inside the current segment — alias it.
	if n := len(evs) - c.off; n >= max {
		out := evs[c.off : c.off+max]
		c.off += max
		return out
	} else if c.Remaining() == n {
		// The tail of the journal lives in this segment.
		out := evs[c.off:]
		c.off += n
		return out
	}
	// Gather across segments.
	var out []*Event
	if c.reuse {
		out = c.buf[:0]
	} else {
		want := max
		if r := c.Remaining(); r < want {
			want = r
		}
		out = make([]*Event, 0, want)
	}
	for len(out) < max {
		evs := c.segment()
		if evs == nil {
			break
		}
		take := max - len(out)
		if n := len(evs) - c.off; n < take {
			take = n
		}
		out = append(out, evs[c.off:c.off+take]...)
		c.off += take
	}
	if c.reuse {
		c.buf = out
	}
	return out
}
