package journal

import (
	"fmt"
	"testing"
)

// benchEvents builds a representative event mix: the create-dominated
// stream the MDS journals during the paper's workloads.
func benchEvents(n int) []*Event {
	evs := make([]*Event, n)
	for i := range evs {
		switch i % 8 {
		case 6:
			evs[i] = &Event{Type: EvSetAttr, Client: "client.0", Ino: uint64(i),
				Mode: 0644, UID: 1000, GID: 1000, Size: 4096, Mtime: int64(i)}
		case 7:
			evs[i] = &Event{Type: EvRename, Client: "client.0", Parent: 1,
				Name: fmt.Sprintf("f%06d", i), NewParent: 2, NewName: fmt.Sprintf("g%06d", i)}
		default:
			evs[i] = &Event{Type: EvCreate, Client: "client.0", Parent: 1,
				Name: fmt.Sprintf("f%06d", i), Ino: uint64(i + 10), Mode: 0644}
		}
		evs[i].Seq = uint64(i)
	}
	return evs
}

// BenchmarkJournalEncode measures the encode hot path (the per-segment
// work of the MDS Stream dispatcher and every client Persist). With the
// exact-size preallocation and the reused payload scratch, a whole image
// costs ~2 allocations total — far under the 1 alloc/event budget the
// seed implementation paid.
func BenchmarkJournalEncode(b *testing.B) {
	evs := benchEvents(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(evs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppendEvent measures the steady-state per-event append
// with a long-lived Encoder, the shape of Journal.Append + dispatch.
func BenchmarkJournalAppendEvent(b *testing.B) {
	evs := benchEvents(256)
	var enc Encoder
	buf := make([]byte, 0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.AppendEvent(buf[:0], evs[i%len(evs)])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalDecode exercises the replay/recovery read path.
func BenchmarkJournalDecode(b *testing.B) {
	img, err := Encode(benchEvents(1024))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(img); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendEventSteadyStateAllocs pins the hot append path: once the
// image buffer and the encoder's scratch have warmed to capacity,
// appending events must not allocate at all. This is the path the MDS
// stream dispatcher and decoupled clients sit on for every update.
func TestAppendEventSteadyStateAllocs(t *testing.T) {
	evs := benchEvents(64)
	var enc Encoder
	// Warm the scratch and the image buffer to full capacity.
	buf := AppendHeader(nil)
	for _, ev := range evs {
		var err error
		if buf, err = enc.AppendEvent(buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		b := AppendHeader(buf[:0])
		for _, ev := range evs {
			var err error
			if b, err = enc.AppendEvent(b, ev); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("warmed AppendEvent of %d events allocates %.1f times, want 0", len(evs), avg)
	}
}

// TestEncodeAllocBudget pins the allocation regression: encoding must stay
// at or under one allocation per event (it should be ~2 per image).
func TestEncodeAllocBudget(t *testing.T) {
	evs := benchEvents(64)
	avg := testing.AllocsPerRun(50, func() {
		if _, err := Encode(evs); err != nil {
			t.Fatal(err)
		}
	})
	if avg > float64(len(evs)) {
		t.Fatalf("Encode of %d events allocates %.1f times, want <= 1 alloc/event", len(evs), avg)
	}
	// The design goal is much stricter than the headline budget: the
	// image buffer plus the encoder scratch.
	if avg > 4 {
		t.Errorf("Encode of %d events allocates %.1f times, want <= 4 total", len(evs), avg)
	}
}

// TestEncoderMatchesOneShot guards that the reusable Encoder emits byte-
// identical output to the one-shot helpers, event by event.
func TestEncoderMatchesOneShot(t *testing.T) {
	evs := benchEvents(32)
	var enc Encoder
	var reused, oneshot []byte
	var err error
	for _, ev := range evs {
		if reused, err = enc.AppendEvent(reused, ev); err != nil {
			t.Fatal(err)
		}
		if oneshot, err = AppendEvent(oneshot, ev); err != nil {
			t.Fatal(err)
		}
	}
	if string(reused) != string(oneshot) {
		t.Fatal("reusable Encoder output differs from one-shot AppendEvent")
	}
}

// TestRecordSizeExact verifies the preallocation math against the real
// encoder for a spread of field widths.
func TestRecordSizeExact(t *testing.T) {
	cases := []*Event{
		{Type: EvCreate, Parent: 1, Name: "a"},
		{Type: EvCreate, Client: "client.99", Parent: 1 << 40, Name: "file-with-a-long-name", Ino: 1 << 60, Mode: 0777, UID: 1 << 31, GID: 4, Size: 1 << 50, Mtime: -12345},
		{Type: EvRename, Parent: 127, Name: "x", NewParent: 128, NewName: "y"},
		{Type: EvSetAttr, Ino: 300, Mtime: 1 << 42},
		{Type: EvAllocRange, Ino: 1000, Size: 1 << 20},
	}
	for i, ev := range cases {
		b, err := AppendEvent(nil, ev)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got, want := recordSize(ev), len(b); got != want {
			t.Errorf("case %d: recordSize = %d, encoded %d bytes", i, got, want)
		}
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 35, 1<<64 - 1} {
		b := putUvarint(nil, v)
		if got := uvarintLen(v); got != len(b) {
			t.Errorf("uvarintLen(%d) = %d, want %d", v, got, len(b))
		}
	}
}
