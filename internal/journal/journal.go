package journal

import "fmt"

// Segment is a group of journal events that is dispatched to the object
// store as a unit. The MDS tunables "segment size" and "dispatch size"
// (paper §II-A, Fig 3a) operate on these.
type Segment struct {
	Index  int
	Events []*Event
	Sealed bool
}

// EncodedLen returns the real encoded byte length of the segment.
func (s *Segment) EncodedLen() (int, error) {
	b, err := Encode(s.Events)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// Journal is an in-memory, append-ordered metadata journal divided into
// segments. It is a "pile system": writes are cheap appends; readers must
// replay state (paper §IV-B). Both decoupled clients and the MDS keep one.
type Journal struct {
	segSize  int
	segments []*Segment // sealed, not yet trimmed
	cur      *Segment
	nextIdx  int
	nextSeq  uint64
	trimmed  uint64 // events discarded by Trim
	total    uint64 // events ever appended
}

// New creates a journal whose segments seal after segSize events.
func New(segSize int) *Journal {
	if segSize < 1 {
		panic(fmt.Sprintf("journal: segment size %d < 1", segSize))
	}
	return &Journal{segSize: segSize}
}

// NextSeq returns the sequence number the next appended event receives.
func (j *Journal) NextSeq() uint64 { return j.nextSeq }

// Append stamps ev with the next sequence number and appends it. If the
// append seals the current segment, the sealed segment is returned so the
// owner can queue it for dispatch; otherwise Append returns nil.
func (j *Journal) Append(ev *Event) (*Segment, error) {
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	ev.Seq = j.nextSeq
	j.nextSeq++
	j.total++
	if j.cur == nil {
		j.cur = &Segment{Index: j.nextIdx}
		j.nextIdx++
	}
	j.cur.Events = append(j.cur.Events, ev)
	if len(j.cur.Events) >= j.segSize {
		return j.seal(), nil
	}
	return nil, nil
}

func (j *Journal) seal() *Segment {
	s := j.cur
	s.Sealed = true
	j.segments = append(j.segments, s)
	j.cur = nil
	return s
}

// Seal closes the in-progress segment, if any, and returns it.
func (j *Journal) Seal() *Segment {
	if j.cur == nil || len(j.cur.Events) == 0 {
		return nil
	}
	return j.seal()
}

// Segments returns the sealed, untrimmed segments in order.
func (j *Journal) Segments() []*Segment { return j.segments }

// Events returns all untrimmed events (sealed segments plus the current
// one) in append order. The returned slice is freshly allocated.
func (j *Journal) Events() []*Event {
	var out []*Event
	for _, s := range j.segments {
		out = append(out, s.Events...)
	}
	if j.cur != nil {
		out = append(out, j.cur.Events...)
	}
	return out
}

// Len returns the number of untrimmed events.
func (j *Journal) Len() int {
	n := 0
	for _, s := range j.segments {
		n += len(s.Events)
	}
	if j.cur != nil {
		n += len(j.cur.Events)
	}
	return n
}

// Total returns the number of events ever appended, including trimmed.
func (j *Journal) Total() uint64 { return j.total }

// Trimmed returns the number of events discarded by Trim.
func (j *Journal) Trimmed() uint64 { return j.trimmed }

// Trim discards sealed segments with Index <= through, modeling the MDS
// expiring journal segments once their updates are applied to the metadata
// store.
func (j *Journal) Trim(through int) {
	keep := j.segments[:0]
	for _, s := range j.segments {
		if s.Index <= through {
			j.trimmed += uint64(len(s.Events))
			continue
		}
		keep = append(keep, s)
	}
	j.segments = keep
}

// Reset discards all events and restarts sequence numbering, modeling a
// client clearing its in-memory journal after a successful sync/merge.
func (j *Journal) Reset() {
	j.segments = nil
	j.cur = nil
	j.nextIdx = 0
	j.nextSeq = 0
	j.trimmed = 0
	j.total = 0
}

// Export encodes all untrimmed events as a complete journal image. The
// image is built segment by segment through a cursor — exactly sized up
// front, with no intermediate flat copy of the event slice.
func (j *Journal) Export() ([]byte, error) {
	size := MagicLen
	cnt := func(evs []*Event) {
		for _, ev := range evs {
			size += recordSize(ev)
		}
	}
	for _, s := range j.segments {
		cnt(s.Events)
	}
	if j.cur != nil {
		cnt(j.cur.Events)
	}
	out := make([]byte, 0, size)
	out = AppendHeader(out)
	var enc Encoder
	cur := j.InlineCursor()
	for {
		evs := cur.Next(exportRun)
		if evs == nil {
			return out, nil
		}
		for _, ev := range evs {
			var err error
			if out, err = enc.AppendEvent(out, ev); err != nil {
				return nil, err
			}
		}
	}
}

// exportRun is the cursor run length Export iterates with; it only
// bounds the gather buffer, not the output image.
const exportRun = 256

// Import creates a journal from an encoded image, preserving event order.
// Sequence numbers are re-stamped contiguously from zero.
func Import(data []byte, segSize int) (*Journal, error) {
	events, err := Decode(data)
	if err != nil {
		return nil, err
	}
	j := New(segSize)
	for _, ev := range events {
		if _, err := j.Append(ev); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// Replay applies events to target in order, stopping at the first error.
// It returns the number of events applied. This is the shared recovery
// code path used by Stream replay, Volatile Apply, and Nonvolatile Apply.
func Replay(events []*Event, target Target) (int, error) {
	for i, ev := range events {
		if err := target.ApplyEvent(ev); err != nil {
			return i, fmt.Errorf("replay event %d (%s): %w", i, ev, err)
		}
	}
	return len(events), nil
}
