package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// Binary layout.
//
// Journal file = header, then records back to back:
//
//	header:  magic "CUDELEJ\x01" (8 bytes)
//	record:  uvarint payloadLen | payload | crc32c(payload) (4 bytes LE)
//	payload: type (1) | uvarint fields in fixed order | strings as
//	         uvarint-len + bytes
//
// Integers use unsigned varints; Mtime is zig-zag encoded. The format is
// self-delimiting, so segments are just contiguous runs of records.
const (
	magic      = "CUDELEJ\x01"
	MagicLen   = len(magic)
	Version    = 1
	maxStrLen  = 1 << 16
	maxPayload = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// payloadSize returns the exact encoded payload length of ev.
func payloadSize(ev *Event) int {
	return 1 +
		uvarintLen(ev.Seq) +
		uvarintLen(uint64(len(ev.Client))) + len(ev.Client) +
		uvarintLen(ev.Ino) +
		uvarintLen(ev.Parent) +
		uvarintLen(uint64(len(ev.Name))) + len(ev.Name) +
		uvarintLen(ev.NewParent) +
		uvarintLen(uint64(len(ev.NewName))) + len(ev.NewName) +
		uvarintLen(uint64(ev.Mode)) +
		uvarintLen(uint64(ev.UID)) +
		uvarintLen(uint64(ev.GID)) +
		uvarintLen(ev.Size) +
		uvarintLen(zigzag(ev.Mtime))
}

// recordSize returns the exact encoded record length of ev (length
// prefix + payload + CRC).
func recordSize(ev *Event) int {
	n := payloadSize(ev)
	return uvarintLen(uint64(n)) + n + 4
}

// Encoder encodes journal records while amortizing the payload staging
// buffer across events. The zero value is ready to use. An Encoder is not
// safe for concurrent use; long-lived producers (the MDS stream
// dispatcher, a decoupled client's journal) keep one per owner so the hot
// append path stops allocating per event.
type Encoder struct {
	scratch []byte
}

// AppendEvent encodes ev as one record and appends it to b, staging the
// payload in the encoder's reusable scratch buffer.
func (e *Encoder) AppendEvent(b []byte, ev *Event) ([]byte, error) {
	if err := ev.Validate(); err != nil {
		return b, err
	}
	payload := e.scratch[:0]
	payload = append(payload, byte(ev.Type))
	payload = putUvarint(payload, ev.Seq)
	payload = putString(payload, ev.Client)
	payload = putUvarint(payload, ev.Ino)
	payload = putUvarint(payload, ev.Parent)
	payload = putString(payload, ev.Name)
	payload = putUvarint(payload, ev.NewParent)
	payload = putString(payload, ev.NewName)
	payload = putUvarint(payload, uint64(ev.Mode))
	payload = putUvarint(payload, uint64(ev.UID))
	payload = putUvarint(payload, uint64(ev.GID))
	payload = putUvarint(payload, ev.Size)
	payload = putUvarint(payload, zigzag(ev.Mtime))
	e.scratch = payload

	b = putUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	return append(b, crc[:]...), nil
}

// Encode serializes events with the file header, producing a complete
// journal image suitable for Local/Global Persist or journal-tool export.
// The output buffer is sized exactly up front, so the whole image costs
// one allocation regardless of event count.
func (e *Encoder) Encode(events []*Event) ([]byte, error) {
	size, maxPayloadLen := MagicLen, 0
	for _, ev := range events {
		n := payloadSize(ev)
		size += uvarintLen(uint64(n)) + n + 4
		if n > maxPayloadLen {
			maxPayloadLen = n
		}
	}
	if cap(e.scratch) < maxPayloadLen {
		e.scratch = make([]byte, 0, maxPayloadLen)
	}
	out := make([]byte, 0, size)
	out = append(out, magic...)
	var err error
	for i, ev := range events {
		out, err = e.AppendEvent(out, ev)
		if err != nil {
			return nil, fmt.Errorf("encode event %d: %w", i, err)
		}
	}
	return out, nil
}

// AppendEvent encodes ev as one record and appends it to b. One-shot
// convenience; hot paths hold an Encoder to reuse its scratch buffer.
func AppendEvent(b []byte, ev *Event) ([]byte, error) {
	var e Encoder
	return e.AppendEvent(b, ev)
}

// AppendHeader appends the journal file header to b. Chunked exporters
// use it to start an image they then grow record by record; the result
// decodes identically to a one-shot Encode of the same events.
func AppendHeader(b []byte) []byte { return append(b, magic...) }

// RecordSize returns the exact encoded record length of ev, for sizing
// chunk buffers without encoding twice.
func RecordSize(ev *Event) int { return recordSize(ev) }

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decoder iterates records in an encoded journal body (no file header).
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over an encoded record stream.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// More reports whether bytes remain.
func (d *Decoder) More() bool { return d.off < len(d.buf) }

// Offset returns the byte offset of the next record.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStrLen {
		return "", fmt.Errorf("%w: string length %d", ErrBadEvent, n)
	}
	if d.off+int(n) > len(d.buf) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Next decodes the next record. It verifies the CRC before interpreting
// any field.
func (d *Decoder) Next() (*Event, error) {
	plen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadEvent, plen)
	}
	if d.off+int(plen)+4 > len(d.buf) {
		return nil, ErrTruncated
	}
	payload := d.buf[d.off : d.off+int(plen)]
	d.off += int(plen)
	want := binary.LittleEndian.Uint32(d.buf[d.off : d.off+4])
	d.off += 4
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, ErrChecksum
	}

	if len(payload) < 1 {
		return nil, ErrTruncated
	}
	var pd Decoder
	pd.buf = payload
	pd.off = 1
	ev := &Event{Type: EventType(payload[0])}
	if ev.Seq, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.Client, err = pd.str(); err != nil {
		return nil, err
	}
	if ev.Ino, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.Parent, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.Name, err = pd.str(); err != nil {
		return nil, err
	}
	if ev.NewParent, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.NewName, err = pd.str(); err != nil {
		return nil, err
	}
	var v uint64
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.Mode = uint32(v)
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.UID = uint32(v)
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.GID = uint32(v)
	if ev.Size, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.Mtime = unzigzag(v)
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	return ev, nil
}

// countRecords pre-scans an encoded record stream, following length
// prefixes only (no CRC work), so Decode can size its output slice once.
// A malformed tail just ends the count early; the real decode loop
// produces the proper error.
func countRecords(buf []byte) int {
	n, off := 0, 0
	for off < len(buf) {
		plen, k := binary.Uvarint(buf[off:])
		if k <= 0 || plen > maxPayload {
			break
		}
		off += k + int(plen) + 4
		if off > len(buf) {
			break
		}
		n++
	}
	return n
}

// Encode serializes events with the file header using a one-shot Encoder.
func Encode(events []*Event) ([]byte, error) {
	var e Encoder
	return e.Encode(events)
}

// Decode parses a complete journal image produced by Encode.
func Decode(buf []byte) ([]*Event, error) {
	if len(buf) < MagicLen {
		return nil, ErrBadMagic
	}
	if string(buf[:MagicLen]) != magic {
		return nil, ErrBadMagic
	}
	body := buf[MagicLen:]
	if len(body) == 0 {
		return nil, nil
	}
	d := NewDecoder(body)
	out := make([]*Event, 0, countRecords(body))
	for d.More() {
		ev, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("record %d at offset %d: %w", len(out), d.Offset(), err)
		}
		out = append(out, ev)
	}
	return out, nil
}
