package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Binary layout.
//
// Journal file = header, then records back to back:
//
//	header:  magic "CUDELEJ\x01" (8 bytes)
//	record:  uvarint payloadLen | payload | crc32c(payload) (4 bytes LE)
//	payload: type (1) | uvarint fields in fixed order | strings as
//	         uvarint-len + bytes
//
// Integers use unsigned varints; Mtime is zig-zag encoded. The format is
// self-delimiting, so segments are just contiguous runs of records.
const (
	magic      = "CUDELEJ\x01"
	MagicLen   = len(magic)
	Version    = 1
	maxStrLen  = 1 << 16
	maxPayload = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendEvent encodes ev as one record and appends it to b.
func AppendEvent(b []byte, ev *Event) ([]byte, error) {
	if err := ev.Validate(); err != nil {
		return b, err
	}
	payload := make([]byte, 0, 64+len(ev.Name)+len(ev.NewName)+len(ev.Client))
	payload = append(payload, byte(ev.Type))
	payload = putUvarint(payload, ev.Seq)
	payload = putString(payload, ev.Client)
	payload = putUvarint(payload, ev.Ino)
	payload = putUvarint(payload, ev.Parent)
	payload = putString(payload, ev.Name)
	payload = putUvarint(payload, ev.NewParent)
	payload = putString(payload, ev.NewName)
	payload = putUvarint(payload, uint64(ev.Mode))
	payload = putUvarint(payload, uint64(ev.UID))
	payload = putUvarint(payload, uint64(ev.GID))
	payload = putUvarint(payload, ev.Size)
	payload = putUvarint(payload, zigzag(ev.Mtime))

	b = putUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	return append(b, crc[:]...), nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decoder iterates records in an encoded journal body (no file header).
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over an encoded record stream.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// More reports whether bytes remain.
func (d *Decoder) More() bool { return d.off < len(d.buf) }

// Offset returns the byte offset of the next record.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStrLen {
		return "", fmt.Errorf("%w: string length %d", ErrBadEvent, n)
	}
	if d.off+int(n) > len(d.buf) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Next decodes the next record. It verifies the CRC before interpreting
// any field.
func (d *Decoder) Next() (*Event, error) {
	plen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadEvent, plen)
	}
	if d.off+int(plen)+4 > len(d.buf) {
		return nil, ErrTruncated
	}
	payload := d.buf[d.off : d.off+int(plen)]
	d.off += int(plen)
	want := binary.LittleEndian.Uint32(d.buf[d.off : d.off+4])
	d.off += 4
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, ErrChecksum
	}

	pd := &Decoder{buf: payload}
	if len(payload) < 1 {
		return nil, ErrTruncated
	}
	ev := &Event{Type: EventType(payload[0])}
	pd.off = 1
	if ev.Seq, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.Client, err = pd.str(); err != nil {
		return nil, err
	}
	if ev.Ino, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.Parent, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.Name, err = pd.str(); err != nil {
		return nil, err
	}
	if ev.NewParent, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if ev.NewName, err = pd.str(); err != nil {
		return nil, err
	}
	var v uint64
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.Mode = uint32(v)
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.UID = uint32(v)
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.GID = uint32(v)
	if ev.Size, err = pd.uvarint(); err != nil {
		return nil, err
	}
	if v, err = pd.uvarint(); err != nil {
		return nil, err
	}
	ev.Mtime = unzigzag(v)
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	return ev, nil
}

// Encode serializes events with the file header, producing a complete
// journal image suitable for Local/Global Persist or journal-tool export.
func Encode(events []*Event) ([]byte, error) {
	out := make([]byte, 0, 32*len(events)+MagicLen)
	out = append(out, magic...)
	var err error
	for i, ev := range events {
		out, err = AppendEvent(out, ev)
		if err != nil {
			return nil, fmt.Errorf("encode event %d: %w", i, err)
		}
	}
	return out, nil
}

// Decode parses a complete journal image produced by Encode.
func Decode(buf []byte) ([]*Event, error) {
	if len(buf) < MagicLen {
		return nil, ErrBadMagic
	}
	if string(buf[:MagicLen]) != magic {
		return nil, ErrBadMagic
	}
	d := NewDecoder(buf[MagicLen:])
	var out []*Event
	for d.More() {
		ev, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("record %d at offset %d: %w", len(out), d.Offset(), err)
		}
		out = append(out, ev)
	}
	return out, nil
}
