package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cudele"
	"cudele/internal/client"
	"cudele/internal/journal"
	"cudele/internal/mds"
	"cudele/internal/namespace"
	"cudele/internal/obs"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
	"cudele/internal/transport"
)

// forceViolation is a test hook: when set, finalVerify records one
// synthetic violation so tests can exercise the failure path — flight
// dump capture and report rendering — without hunting for a genuinely
// broken seed.
var forceViolation bool

// Workload subtrees. Both are created and made durable (SaveStore)
// before any fault can fire, so recovery always has roots to attach to.
const (
	mainPath = "/chaos/main"
	bgPath   = "/chaos/bg"
)

// chaosGrant is the decoupled inode grant: large enough that no
// schedule exhausts it, explicit so the budget invariant is exact.
const chaosGrant = 4096

// parentRef is a directory the workload may create into.
type parentRef struct {
	ino  namespace.Ino
	path string
}

// registration remembers one subtree registration so an MDS
// crash+restart can re-attach it and assert the grant is identical
// (re-attach order determines the grant, so replaying registrations in
// original order must reproduce it exactly).
type registration struct {
	path  string
	pol   *policy.Policy
	owner string
	lo    namespace.Ino
	n     uint64
}

// maxParents caps how many directories the workload creates into, so
// candidate sets stay small and journals stay self-contained without
// deep nesting.
const maxParents = 6

// driver runs one chaos schedule: setup, the random-op workload with
// crash faults quantized to op boundaries, background merge load, and
// the final contract verification.
type driver struct {
	plan *Plan
	cl   *cudele.Cluster
	srv  *mds.Server
	c    *cudele.Client
	bg   *cudele.Client
	rng  *rand.Rand
	o    *oracle
	fl   *obs.Flight
	res  Result

	inj     *rados.FaultInjector
	regs    []registration
	cands   []parentRef // decoupled-journal parents: root + current-journal mkdirs
	scands  []parentRef // strong (RPC) parents: root + post-crash mkdirs
	nameSeq int
	bgSeq   int
	bgRoot  namespace.Ino
	bgSet   map[string]uint64 // background client's acked updates

	pending    []sim.Fault // faults waiting for the next op boundary
	bgDone     runtime.Signal
	migDone    runtime.Signal
	mdsCrashed bool

	// Speculative-cell state: names already taken by an interfering RPC.
	stolen map[string]bool

	// Strong-eventual-cell state: unlink candidates (names created since
	// the last merge), the captured merge batches for the permutation
	// replay, the root-chain skeleton the replay rebuilds, and whether a
	// partial dirty-image replay invalidated the live-image comparison.
	seLive      []string
	seSegs      [][]*journal.Event
	seChain     []seChainEnt
	seNoCompare bool

	// seenIno is every inode number ever acked, by path — the
	// no-duplicate-inodes invariant. A crash must never make a client or
	// MDS hand out an inode a second time: the first copy may be durable
	// in a persisted journal, so reissue silently aliases two files.
	seenIno map[uint64]string
}

func newDriver(plan *Plan) *driver {
	cfg := cudele.DefaultConfig()
	if plan.Chunked {
		cfg.MergeChunkEvents = 8
		cfg.MergeWindowChunks = 2
		cfg.MergeAdmitMax = 2
	}
	opts := []cudele.Option{cudele.WithSeed(plan.Seed), cudele.WithConfig(cfg)}
	if plan.Migrate {
		// Migration schedules need a second rank to export to. Non-migrate
		// plans keep the single-rank cluster so their schedules stay
		// byte-identical with earlier harness versions.
		opts = append(opts, cudele.WithMDSRanks(2))
	}
	cl := cudele.NewCluster(opts...)
	d := &driver{
		plan:    plan,
		cl:      cl,
		srv:     cl.MDS(),
		c:       cl.NewClient("chaos-main"),
		rng:     rand.New(rand.NewSource(plan.Seed ^ 0x6368616f73)), // decorrelated from plan generation
		o:       newOracle(),
		bgSet:   make(map[string]uint64),
		seenIno: make(map[uint64]string),
		res: Result{
			Seed:     plan.Seed,
			Cycle:    plan.Cycle,
			Cell:     plan.Cell(),
			Ops:      plan.Ops,
			PlanText: plan.String(),
		},
	}
	if plan.Background {
		d.bg = cl.NewClient("chaos-bg")
	}
	// The flight recorder rides along on every schedule: fixed-size rings
	// that never touch virtual time or the engine's rand stream, dumped
	// only when a contract breaks.
	d.fl = cl.EnableFlightRecorder(obs.DefaultFlightEvents)
	return d
}

func (d *driver) run() Result {
	d.cl.Go("chaos.main", d.main)
	d.res.VirtualSec = d.cl.RunAll()
	if d.inj != nil {
		d.res.WriteFaults = d.inj.Fired()
	}
	if err := d.cl.Engine().LeakCheck(); err != nil {
		d.violate("%v", err)
	}
	if !d.res.Passed() {
		d.res.FlightDump = d.fl.Dump()
	}
	d.cl.Engine().Shutdown()
	return d.res
}

func (d *driver) violate(format string, args ...any) {
	if len(d.res.Violations) >= maxViolations {
		return
	}
	msg := fmt.Sprintf(format, args...)
	d.res.Violations = append(d.res.Violations, msg)
	// Stamp the violation into the ring so the dump shows it in sequence
	// with the ops and faults that preceded it.
	d.fl.Record(int64(d.cl.Runtime().Now()), "chaos", "oracle", "violation", msg)
}

func (d *driver) strong() bool { return d.plan.Cons == policy.ConsStrong }

// mds returns the rank currently owning the main workload subtree — the
// server every oracle touchpoint (visibility checks, journal flushes,
// recovered-journal merges, namespace sweeps) must talk to. Ownership is
// fixed at rank 0 unless the plan schedules migrations.
func (d *driver) mds() *mds.Server {
	if !d.plan.Migrate {
		return d.srv
	}
	meta := d.cl.Metadata()
	return meta.Rank(meta.Table().RankFor(mainPath))
}

// midMigration reports whether the main subtree is mid-handoff — frozen,
// streaming, or in the prune-to-publish window. In that window no single
// store is authoritative (the source may already be pruned while routing
// still points at it), so store-reading checks defer to the next op
// boundary after the handoff commits or aborts.
func (d *driver) midMigration() bool {
	if !d.plan.Migrate {
		return false
	}
	return d.cl.Metadata().SubtreeFor(mainPath).State != mds.SubtreeOwned
}

func (d *driver) streamOn() bool {
	return d.strong() && d.plan.Dur == policy.DurGlobal
}

// main is the schedule's script process.
func (d *driver) main(p runtime.Task) {
	if !d.setup(p) {
		return
	}
	if d.plan.Background {
		d.startBG()
	}
	if d.plan.Migrate {
		d.startMigrator()
	}
	for i := 0; i < d.plan.Ops; i++ {
		d.drain(p)
		if len(d.res.Violations) >= maxViolations {
			break
		}
		d.step(p)
	}
	d.drain(p)
	// Run past every scheduled fault so late crashes still get their
	// recovery verified.
	if last := d.plan.Faults.Last(); last > 0 {
		if now := p.Now(); now <= last {
			p.Sleep(runtime.Duration(last-now) + runtime.Duration(1e6))
		}
	}
	d.drain(p)
	if d.bgDone != nil {
		d.bgDone.Wait(p)
	}
	if d.migDone != nil {
		d.migDone.Wait(p)
	}
	d.finalVerify(p)
}

// setup builds the workload subtrees, makes their roots durable,
// registers the decoupled policies, and only then arms the fault
// injectors — so setup itself always succeeds and the calibrated
// baseline of the protocol stack is what the faults strike.
func (d *driver) setup(p runtime.Task) bool {
	if _, err := d.c.MkdirAll(p, mainPath, 0o755); err != nil {
		d.violate("setup: mkdir %s: %v", mainPath, err)
		return false
	}
	if d.plan.Background {
		if _, err := d.c.MkdirAll(p, bgPath, 0o755); err != nil {
			d.violate("setup: mkdir %s: %v", bgPath, err)
			return false
		}
	}
	if err := d.srv.SaveStore(p); err != nil {
		d.violate("setup: save store: %v", err)
		return false
	}
	if d.streamOn() {
		d.srv.SetStream(true)
		// The subtree may migrate to any rank; journal streaming must be
		// armed wherever its RPC updates could land.
		for r := 1; r < d.cl.Metadata().Ranks(); r++ {
			d.cl.Metadata().Rank(r).SetStream(true)
		}
	}

	pol := &policy.Policy{
		Consistency:     d.plan.Cons,
		Durability:      d.plan.Dur,
		AllocatedInodes: chaosGrant,
		Interfere:       policy.InterfereAllow,
	}
	e, err := d.cl.DecouplePolicy(p, d.c, mainPath, pol)
	if err != nil {
		d.violate("setup: decouple %s: %v", mainPath, err)
		return false
	}
	d.regs = append(d.regs, registration{mainPath, pol, d.c.Name(), e.GrantLo, e.GrantN})
	root, err := d.c.DecoupledRoot()
	if err != nil {
		d.violate("setup: decoupled root: %v", err)
		return false
	}
	d.cands = []parentRef{{root, mainPath}}
	d.scands = []parentRef{{root, mainPath}}
	if d.se() && !d.seRecordChain() {
		return false
	}

	if d.plan.Background {
		bpol := &policy.Policy{
			Consistency:     policy.ConsWeak,
			Durability:      policy.DurNone,
			AllocatedInodes: chaosGrant,
			Interfere:       policy.InterfereAllow,
		}
		be, err := d.cl.DecouplePolicy(p, d.bg, bgPath, bpol)
		if err != nil {
			d.violate("setup: decouple %s: %v", bgPath, err)
			return false
		}
		d.regs = append(d.regs, registration{bgPath, bpol, d.bg.Name(), be.GrantLo, be.GrantN})
		if d.bgRoot, err = d.bg.DecoupledRoot(); err != nil {
			d.violate("setup: background root: %v", err)
			return false
		}
	}

	tornCommit := d.plan.Migrate && d.plan.TornCommit
	if d.plan.WriteErrProb > 0 || d.plan.TornProb > 0 || tornCommit {
		d.inj = rados.NewFaultInjector(d.plan.Seed ^ 0x5eed)
		d.inj.WriteErrorProb = d.plan.WriteErrProb
		d.inj.TornWriteProb = d.plan.TornProb
		d.inj.MaxFaults = d.plan.MaxWriteFaults
		if tornCommit && d.inj.TornWriteProb == 0 {
			// Cells that never persist globally still tear migration
			// records; give the injector a budget for that alone.
			d.inj.TornWriteProb = 0.5
			d.inj.MaxFaults = 1
		}
		// Only Global Persist targets — plus, for torn-commit schedules,
		// the export-commit record pool. MDS segment and store writes stay
		// fault-free so a FlushJournal ack (and an ExportSave ack) remains
		// a sound durability point for the oracle.
		d.inj.Match = func(oid rados.ObjectID) bool {
			if oid.Pool == client.ClientJournalPool {
				return true
			}
			return tornCommit && oid.Pool == mds.MigrationPool
		}
		d.cl.Objects().SetFaults(d.inj)
	}
	if d.plan.Transport {
		d.srv.InjectFaults(transport.NewFaultInterceptor(d.plan.Seed^0x77697265, transport.FaultConfig{
			DropProb:        0.2,
			MaxRetransmits:  3,
			RetransmitDelay: runtime.Duration(1e6),
			DelayProb:       0.2,
			MaxExtraDelay:   runtime.Duration(2e6),
			DuplicateProb:   0.2,
			DuplicateOK: func(msg any) bool {
				// Double delivery is only injected for read-only RPCs,
				// whose handlers are idempotent by construction.
				req, ok := msg.(*mds.Request)
				return ok && !req.Op.Mutates()
			},
		}))
	}
	d.plan.Faults.Arm(d.cl.Engine(), func(f sim.Fault) {
		d.pending = append(d.pending, f)
	})
	return true
}

// drain applies every fault that has fired since the last op boundary —
// crash plus immediate restart and recovery, one at a time — then
// re-checks the visibility contracts.
func (d *driver) drain(p runtime.Task) {
	for len(d.pending) > 0 {
		f := d.pending[0]
		d.pending = d.pending[1:]
		d.res.CrashFaults++
		d.fl.Record(int64(p.Now()), "chaos", "fault", f.Kind, f.Target)
		switch f.Kind {
		case FaultClientCrash:
			d.crashClient(p)
		case FaultMDSCrash:
			d.crashMDS(p)
		default:
			d.violate("unknown fault kind %q", f.Kind)
		}
	}
	d.checkVisible()
	d.checkInvisible()
}

// crashClient kills and restarts the main client. DurLocal's contract
// is exercised here: an acked Local Persist must restore exactly the
// persisted journal.
func (d *driver) crashClient(p runtime.Task) {
	d.c.Crash()
	d.o.clientCrash()
	d.cands = d.cands[:1]
	d.scands = d.scands[:1]
	// The crash wiped the client-local image: names recovered into the
	// journal are no longer unlinkable (the image no longer renders them).
	d.seLive = nil
	if err := d.c.Restart(p); err != nil {
		d.violate("client restart: %v", err)
		return
	}
	if !d.strong() && d.plan.Dur == policy.DurLocal && d.o.hasLocal {
		n, err := d.c.RecoverLocal(p)
		if err != nil {
			d.violate("recover local: %v", err)
			return
		}
		if n != len(d.o.localImage) {
			d.violate("recover local: %d events, want %d", n, len(d.o.localImage))
			return
		}
		d.o.recoverLocalOK()
	}
}

// crashMDS kills and restarts the rank owning the main subtree, replays
// that rank's registrations in their original order, and asserts each
// re-attach reproduces the original inode grant. On migration schedules
// the crash follows ownership — a crash mid-handoff strikes the source
// (routing has not flipped yet), one after commit strikes the importer.
func (d *driver) crashMDS(p runtime.Task) {
	d.mdsCrashed = true
	srv := d.mds()
	rank := 0
	if d.plan.Migrate {
		rank = d.cl.Metadata().Table().RankFor(mainPath)
	}
	srv.Crash()
	d.o.mdsCrash()
	if err := srv.Restart(p); err != nil {
		d.violate("mds restart: %v", err)
		return
	}
	for _, reg := range d.regs {
		if d.cl.Metadata().Table().RankFor(reg.path) != rank {
			continue // registration lives on a rank that did not crash
		}
		if d.plan.Migrate {
			// The grant may have been allocated by the other rank and
			// carried over by a migration; a fresh Decouple on this rank
			// could not reproduce it, so re-install it exactly — the same
			// recovery path the monitor's Reattach uses.
			if err := srv.Attach(p, reg.path, reg.pol, reg.owner, reg.lo, reg.n); err != nil {
				d.violate("re-attach %s: %v", reg.path, err)
			}
			continue
		}
		lo, n, err := srv.Decouple(p, reg.path, reg.pol, reg.owner)
		if err != nil {
			d.violate("re-decouple %s: %v", reg.path, err)
			continue
		}
		if lo != reg.lo || n != reg.n {
			d.violate("re-decouple %s: grant (%d,%d), want (%d,%d)",
				reg.path, uint64(lo), n, uint64(reg.lo), reg.n)
		}
	}
	// The client survived but its session and caps died with the MDS.
	d.c.Unmount()
	d.c.Mount()
	if d.plan.Migrate {
		// Remounting wiped the client's ino-to-path route hints; re-walk
		// the workload root so ino-addressed RPCs route by path again.
		// Without this they fall back to the default rank, which may have
		// exported the subtree away.
		if _, err := d.c.Resolve(p, mainPath); err != nil {
			d.violate("re-resolve %s after mds restart: %v", mainPath, err)
		}
	}
	d.scands = d.scands[:1]
}

// step runs one weighted random workload operation.
func (d *driver) step(p runtime.Task) {
	if d.strong() {
		d.stepStrong(p)
		return
	}
	if d.spec() {
		d.stepSpec(p)
		return
	}
	if d.se() {
		d.stepSE(p)
		return
	}
	roll := d.rng.Float64()
	switch {
	case roll < 0.55:
		d.opLocalCreate(p)
	case roll < 0.70:
		d.opLocalMkdir(p)
	case roll < 0.85:
		d.opPersist(p)
	default:
		// Invisible subtrees never merge mid-run — that is the contract
		// under test — so the merge weight falls through to create.
		if d.plan.Cons == policy.ConsWeak {
			d.opMerge(p)
		} else {
			d.opLocalCreate(p)
		}
	}
}

func (d *driver) stepStrong(p runtime.Task) {
	roll := d.rng.Float64()
	switch {
	case roll < 0.70:
		d.opRPCCreate(p)
	case roll < 0.80:
		d.opRPCMkdir(p)
	default:
		if d.streamOn() {
			d.mds().FlushJournal(p)
			d.o.flushOK()
		} else {
			d.opRPCCreate(p)
		}
	}
}

func (d *driver) nextName(prefix string) string {
	name := fmt.Sprintf("%s%06d", prefix, d.nameSeq)
	d.nameSeq++
	return name
}

// ackIno records an acked grant inode number and flags any reissue.
// Only decoupled-grant inos carry the strict invariant: their first ack
// may be durable in a client journal or persisted image the MDS cannot
// see, so a rewound allocation cursor silently aliases two files.
// Server-assigned (RPC) inos are exempt — the store allocator skips
// every inode that survives recovery, so it can only recycle numbers
// whose updates were wholly lost, exactly like a real inode table.
func (d *driver) ackIno(ino uint64, path string) {
	if prev, dup := d.seenIno[ino]; dup {
		d.violate("inode %d acked for %s was already acked for %s", ino, path, prev)
		return
	}
	d.seenIno[ino] = path
}

func (d *driver) opLocalCreate(p runtime.Task) {
	par := d.cands[d.rng.Intn(len(d.cands))]
	name := d.nextName("f")
	ino, err := d.c.LocalCreate(p, par.ino, name, 0o644)
	if err != nil {
		d.violate("local create %s/%s: %v", par.path, name, err)
		return
	}
	d.ackIno(uint64(ino), par.path+"/"+name)
	d.o.ackJournal(update{
		path: par.path + "/" + name, ino: uint64(ino),
		parent: uint64(par.ino), name: name, granted: true,
	})
}

func (d *driver) opLocalMkdir(p runtime.Task) {
	if len(d.cands) >= maxParents {
		d.opLocalCreate(p)
		return
	}
	par := d.cands[d.rng.Intn(len(d.cands))]
	name := d.nextName("d")
	ino, err := d.c.LocalMkdir(p, par.ino, name, 0o755)
	if err != nil {
		d.violate("local mkdir %s/%s: %v", par.path, name, err)
		return
	}
	path := par.path + "/" + name
	d.ackIno(uint64(ino), path)
	d.o.ackJournal(update{
		path: path, ino: uint64(ino),
		parent: uint64(par.ino), name: name, dir: true, granted: true,
	})
	// Only directories whose mkdir is in the current journal may parent
	// further updates: that keeps every journal (and every persisted
	// image) self-contained, so recovery can always replay it.
	d.cands = append(d.cands, parentRef{ino, path})
}

func (d *driver) opPersist(p runtime.Task) {
	switch d.plan.Dur {
	case policy.DurLocal:
		if err := d.c.LocalPersist(p); err != nil {
			d.violate("local persist: %v", err)
			return
		}
		d.o.localPersistOK()
	case policy.DurGlobal:
		d.opGlobalPersist(p)
	default: // DurNone has no persistence mechanism
		// Fall back to the cell's own create op: the speculative oracle
		// must not displace an interfering twin's pset entry, and the
		// strong-eventual workload must stay at the subtree root.
		switch {
		case d.spec():
			d.opSpecCreate(p)
		case d.se():
			d.opSECreate(p)
		default:
			d.opLocalCreate(p)
		}
	}
}

func (d *driver) opGlobalPersist(p runtime.Task) {
	if err := d.c.GlobalPersist(p); err != nil {
		if errors.Is(err, rados.ErrIO) {
			// Injected storage fault: the persist was not acked, so
			// nothing new is guaranteed — and the old image may be gone.
			d.o.globalPersistFail()
			return
		}
		d.violate("global persist: %v", err)
		return
	}
	d.o.globalPersistOK()
}

func (d *driver) opMerge(p runtime.Task) {
	want := len(d.o.journal)
	applied, err := d.c.VolatileApply(p)
	d.res.Merges++
	if err != nil {
		d.violate("volatile apply: %v", err)
		return
	}
	if applied != want {
		d.violate("volatile apply: applied %d events, journal had %d", applied, want)
	}
	d.o.mergeOK()
	d.cands = d.cands[:1]
	d.checkVisible()
}

func (d *driver) opRPCCreate(p runtime.Task) {
	par := d.scands[d.rng.Intn(len(d.scands))]
	name := d.nextName("f")
	ino, err := d.c.Create(p, par.ino, name, 0o644)
	if err != nil {
		d.violate("rpc create %s/%s: %v", par.path, name, err)
		return
	}
	d.o.ackRPC(update{
		path: par.path + "/" + name, ino: uint64(ino),
		parent: uint64(par.ino), name: name,
	}, d.streamOn())
}

func (d *driver) opRPCMkdir(p runtime.Task) {
	if len(d.scands) >= maxParents {
		d.opRPCCreate(p)
		return
	}
	par := d.scands[d.rng.Intn(len(d.scands))]
	name := d.nextName("d")
	ino, err := d.c.Mkdir(p, par.ino, name, 0o755)
	if err != nil {
		d.violate("rpc mkdir %s/%s: %v", par.path, name, err)
		return
	}
	path := par.path + "/" + name
	d.o.ackRPC(update{
		path: path, ino: uint64(ino),
		parent: uint64(par.ino), name: name, dir: true,
	}, d.streamOn())
	d.scands = append(d.scands, parentRef{ino, path})
}

// startBG spawns the background merger: a second decoupled client
// pushing rounds of creates through the merge scheduler, concurrent
// with the main workload, to exercise admission slots and fairness
// under chaos.
func (d *driver) startBG() {
	d.bgDone = d.cl.Runtime().NewSignal()
	d.cl.Go("chaos.bg", func(p runtime.Task) {
		defer d.bgDone.Fire(nil)
		d.runBG(p)
	})
}

func (d *driver) runBG(p runtime.Task) {
	for round := 0; round < 6; round++ {
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("b%06d", d.bgSeq)
			d.bgSeq++
			ino, err := d.bg.LocalCreate(p, d.bgRoot, name, 0o644)
			if err != nil {
				d.violate("background create %s: %v", name, err)
				return
			}
			d.ackIno(uint64(ino), bgPath+"/"+name)
			d.bgSet[bgPath+"/"+name] = uint64(ino)
		}
		if _, err := d.bg.VolatileApply(p); err != nil {
			d.violate("background merge: %v", err)
			return
		}
		d.res.Merges++
		p.Sleep(runtime.Duration(200e3))
	}
}

// startMigrator spawns the migration schedule: at each planned time the
// main subtree is exported to the other rank, concurrent with the
// workload, crash faults, and storage faults. Aborted handoffs (frozen
// merges in flight, a rank crashing mid-stream, a torn commit record)
// are tolerated — the contract under test is that every policy guarantee
// survives the handoff or its abort, not that every handoff commits.
func (d *driver) startMigrator() {
	d.migDone = d.cl.Runtime().NewSignal()
	d.cl.Go("chaos.migrate", func(p runtime.Task) {
		defer d.migDone.Fire(nil)
		meta := d.cl.Metadata()
		for _, at := range d.plan.MigrateAt {
			if now := p.Now(); now < at {
				p.Sleep(runtime.Duration(at - now))
			}
			src := meta.Table().RankFor(mainPath)
			dst := 1 - src
			if err := d.cl.Migrate(p, mainPath, dst); err != nil {
				d.fl.Record(int64(p.Now()), "chaos", "migrate", "abort", err.Error())
				continue
			}
			d.res.Migrations++
			d.fl.Record(int64(p.Now()), "chaos", "migrate", "commit",
				fmt.Sprintf("%s rank %d -> %d", mainPath, src, dst))
		}
	})
}

// checkVisible asserts every update the oracle says is merged/visible
// resolves in the owning rank's store with the acked inode (the
// ConsStrong and post-merge contract) — migrations must move the whole
// visible set with ownership. Pure in-memory reads: no simulated time.
func (d *driver) checkVisible() {
	if d.midMigration() {
		return
	}
	store := d.mds().Store()
	for _, path := range d.o.visiblePaths() {
		u := d.o.mdsMem[path]
		in, err := store.Resolve(path)
		if err != nil {
			d.violate("visible update %s missing: %v", path, err)
			continue
		}
		if d.se() && u.dir {
			// Strong-eventual directory identity is structural: the CRDT
			// resolver renders directories with server-assigned inodes,
			// so only presence is part of the contract.
			continue
		}
		if uint64(in.Ino) != u.ino {
			d.violate("visible update %s has ino %d, want %d", path, uint64(in.Ino), u.ino)
		}
	}
}

// checkInvisible asserts no unmerged update of an invisible subtree has
// leaked into the global namespace.
func (d *driver) checkInvisible() {
	if d.plan.Cons != policy.ConsInvisible || d.midMigration() {
		return
	}
	store := d.mds().Store()
	for _, path := range d.o.ackedPaths() {
		if _, merged := d.o.mdsMem[path]; merged {
			continue
		}
		if _, err := store.Resolve(path); err == nil {
			d.violate("invisible update %s leaked into the global namespace", path)
		}
	}
}

// finalVerify is the end-of-schedule contract check: recover everything
// each policy guarantees, then sweep the namespace for phantoms, grant
// violations, structural damage, and leaked merge slots.
func (d *driver) finalVerify(p runtime.Task) {
	if forceViolation {
		d.violate("forced violation (test hook) after op %06d", d.nameSeq-1)
	}
	d.checkInvisible()
	if !d.strong() {
		// Persist the tail so the global image covers the whole run,
		// then merge the live journal (journals are self-contained, so
		// this must succeed) through the cell's own merge path.
		if d.plan.Dur == policy.DurGlobal && len(d.o.journal) > 0 {
			d.opGlobalPersist(p)
		}
		if len(d.o.journal) > 0 {
			switch {
			case d.spec():
				d.opSpecMerge(p)
			case d.se():
				d.opSEMerge(p)
			default:
				d.opMerge(p)
			}
		}
	}
	if d.streamOn() {
		// DurGlobal probe for the streaming cell: flush, lose the owning
		// rank, and demand every flush-acked update come back from the
		// recovered journal segments (and, post-migration, the saved
		// subtree image).
		d.mds().FlushJournal(p)
		d.o.flushOK()
		d.crashMDS(p)
	}
	if !d.strong() && d.plan.Dur == policy.DurGlobal {
		switch {
		case d.spec():
			d.verifyGlobalSpec(p)
		case d.se():
			d.verifyGlobalSE(p)
		default:
			d.verifyGlobal(p)
		}
	}
	if d.se() && d.plan.Permute {
		d.verifyPermutations()
	}
	d.checkVisible()
	d.checkBG()
	d.checkNamespace()
	for r := 0; r < d.cl.Metadata().Ranks(); r++ {
		if q := d.cl.Metadata().Rank(r).MergeQueue(); q != 0 {
			d.violate("merge queue not drained: rank %d holds %d jobs still accounted", r, q)
		}
	}
}

// verifyGlobal fetches the client's journal image back from the object
// store and replays it, asserting DurGlobal's contract: an acked Global
// Persist must read back as exactly the acked update sequence and merge
// cleanly; after a failed persist the image may be torn or stale, but
// whatever recovers must stay inside the acked-update set (the phantom
// walk checks that half).
func (d *driver) verifyGlobal(p runtime.Task) {
	if d.o.global == globalNone {
		return
	}
	evBytes := int64(d.cl.Config().JournalEventBytes)
	evs, err := d.c.FetchGlobalJournal(p, d.c.Name())
	if d.o.global == globalDirty {
		if err != nil || len(evs) == 0 {
			return // unacked image may be unreadable — allowed
		}
		// Tolerate replay errors too: a stale image can reference
		// directories the crashed MDS no longer holds. Partial applies
		// are bounded by the phantom walk.
		_, _ = d.mds().VolatileApply(p, evs, int64(len(evs))*evBytes)
		return
	}
	if err != nil {
		d.violate("fetch global journal: %v", err)
		return
	}
	if msg := d.o.matchGlobal(evs); msg != "" {
		d.violate("recovered global journal: %s", msg)
		return
	}
	applied, merr := d.mds().VolatileApply(p, evs, int64(len(evs))*evBytes)
	if merr != nil {
		d.violate("merge recovered global journal: %v", merr)
		return
	}
	if applied != len(evs) {
		d.violate("recovered global journal: applied %d of %d events", applied, len(evs))
		return
	}
	d.o.adoptGlobal()
}

// checkBG asserts the background client's merged updates are all
// visible. Skipped if the MDS ever crashed: background updates are
// volatile merges (ConsWeak/DurNone) and may legitimately die with it.
func (d *driver) checkBG() {
	if !d.plan.Background || d.mdsCrashed {
		return
	}
	store := d.srv.Store()
	paths := make([]string, 0, len(d.bgSet))
	for path := range d.bgSet {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		in, err := store.Resolve(path)
		if err != nil {
			d.violate("background update %s missing: %v", path, err)
			continue
		}
		if uint64(in.Ino) != d.bgSet[path] {
			d.violate("background update %s has ino %d, want %d",
				path, uint64(in.Ino), d.bgSet[path])
		}
	}
}

// checkNamespace sweeps the final namespace: no phantom entries outside
// the acked-update set, every granted inode inside its registration's
// range, and a structurally clean store.
func (d *driver) checkNamespace() {
	d.walkSubtree(d.mds().Store(), mainPath, func(path string, ino uint64) (uint64, bool) {
		u, ok := d.o.pset[path]
		if d.se() && u.dir {
			return ino, ok // structural identity: presence only
		}
		return u.ino, ok
	})
	if d.plan.Background {
		// The background subtree is never migrated; it stays on rank 0.
		d.walkSubtree(d.srv.Store(), bgPath, func(path string, _ uint64) (uint64, bool) {
			ino, ok := d.bgSet[path]
			return ino, ok
		})
	}

	reg := d.regs[0]
	for _, path := range d.o.ackedPaths() {
		u := d.o.pset[path]
		if !u.granted {
			continue
		}
		if u.ino < uint64(reg.lo) || u.ino >= uint64(reg.lo)+reg.n {
			d.violate("update %s ino %d outside grant [%d,%d)",
				path, u.ino, uint64(reg.lo), uint64(reg.lo)+reg.n)
		}
	}
	if d.plan.Background {
		breg := d.regs[1]
		paths := make([]string, 0, len(d.bgSet))
		for path := range d.bgSet {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			ino := d.bgSet[path]
			if ino < uint64(breg.lo) || ino >= uint64(breg.lo)+breg.n {
				d.violate("background update %s ino %d outside grant [%d,%d)",
					path, ino, uint64(breg.lo), uint64(breg.lo)+breg.n)
			}
		}
	}

	for r := 0; r < d.cl.Metadata().Ranks(); r++ {
		problems := make([]string, 0)
		for _, prob := range d.cl.Metadata().Rank(r).Store().Check() {
			problems = append(problems, prob.String())
		}
		sort.Strings(problems)
		for _, prob := range problems {
			d.violate("store check (rank %d): %s", r, prob)
		}
	}
}

// walkSubtree walks one subtree of the real store and demands every
// entry below the root be an acked update with a matching inode. The
// lookup callback receives the rendered inode so cells with structural
// directory identity can accept it as-is.
func (d *driver) walkSubtree(store *namespace.Store, rootPath string,
	lookup func(path string, ino uint64) (uint64, bool)) {
	root, err := store.Resolve(rootPath)
	if err != nil {
		d.violate("subtree root %s missing: %v", rootPath, err)
		return
	}
	_ = store.Walk(root.Ino, func(path string, in *namespace.Inode) error {
		if path == rootPath {
			return nil
		}
		want, ok := lookup(path, uint64(in.Ino))
		if !ok {
			d.violate("phantom entry %s (ino %d)", path, uint64(in.Ino))
			return nil
		}
		if want != uint64(in.Ino) {
			d.violate("entry %s has ino %d, want %d", path, uint64(in.Ino), want)
		}
		return nil
	})
}
