package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmoke runs a batch of consecutive seeds — cycling through all nine
// policy cells — and fails with the full report (fault plans, violations,
// replay commands) if any schedule breaks its contract. CI runs a larger
// batch through cudele-bench; this keeps `go test` self-contained.
func TestSmoke(t *testing.T) {
	n := 90
	if testing.Short() {
		n = 18
	}
	results := RunMany(Seeds(1, n), 0)
	var buf bytes.Buffer
	if failed := Report(&buf, results); failed > 0 {
		t.Errorf("%d schedules failed:\n%s", failed, buf.String())
	}
}

// TestMigrationSchedules hunts down seeds whose plans migrate the main
// subtree mid-run — including ones that also crash the owning rank and
// ones that tear the export-commit record — and runs them all. This is
// the crash-matrix guarantee for online migration: whatever the handoff
// was doing when the fault struck, every Table-I contract still holds.
func TestMigrationSchedules(t *testing.T) {
	want := 24
	if testing.Short() {
		want = 8
	}
	var seeds []int64
	var withCrash, withTorn int
	for s := int64(1); len(seeds) < want && s < 10000; s++ {
		p := NewPlan(s)
		if !p.Migrate {
			continue
		}
		seeds = append(seeds, s)
		if p.TornCommit {
			withTorn++
		}
		for _, f := range p.Faults.Faults {
			if f.Kind == FaultMDSCrash {
				withCrash++
				break
			}
		}
	}
	if len(seeds) < want {
		t.Fatalf("found only %d migration plans in 10000 seeds", len(seeds))
	}
	if withCrash == 0 || withTorn == 0 {
		t.Fatalf("coverage hole: %d plans with an MDS crash, %d with a torn commit record",
			withCrash, withTorn)
	}
	results := RunMany(seeds, 0)
	var buf bytes.Buffer
	if failed := Report(&buf, results); failed > 0 {
		t.Errorf("%d migration schedules failed:\n%s", failed, buf.String())
	}
	// At least some handoffs must actually commit, or the schedules are
	// exercising nothing but aborts.
	committed := 0
	for _, r := range results {
		committed += r.Migrations
	}
	if committed == 0 {
		t.Errorf("no migration committed across %d schedules", len(seeds))
	}
}

// TestDeterministicAcrossWorkers asserts the harness's core reproduction
// promise: the same seeds yield a byte-identical report at any worker
// count, so a CI failure replays exactly on a laptop.
func TestDeterministicAcrossWorkers(t *testing.T) {
	seeds := Seeds(1, 27)
	var reports []string
	for _, w := range []int{1, 4, 16} {
		var buf bytes.Buffer
		Report(&buf, RunMany(seeds, w))
		reports = append(reports, buf.String())
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("report differs between 1 worker and %d workers", []int{1, 4, 16}[i])
		}
	}
}

// TestPlanDeterministic asserts a plan is a pure function of its seed —
// the property that makes -chaos-replay trustworthy.
func TestPlanDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 42, 1 << 40} {
		a, b := NewPlan(seed), NewPlan(seed)
		if a.String() != b.String() {
			t.Errorf("seed %d: plan not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestSeedsCoverMatrix asserts nine consecutive seeds hit all nine cells
// of the consistency x durability matrix.
func TestSeedsCoverMatrix(t *testing.T) {
	cells := make(map[string]bool)
	for _, seed := range Seeds(1, 9) {
		cells[NewPlan(seed).Cell()] = true
	}
	if len(cells) != 9 {
		t.Errorf("9 consecutive seeds cover %d cells, want 9: %v", len(cells), cells)
	}
}

// TestPlanCycleOneByteIdentical pins the compatibility contract for the
// versioned cell cycle: cycle 1 is the default, and its plans — including
// their printed form, which seeds the replay commands in CI history — are
// byte-identical to what NewPlan always produced.
func TestPlanCycleOneByteIdentical(t *testing.T) {
	for _, seed := range Seeds(0, 40) {
		a, b := NewPlan(seed), NewPlanCycle(seed, 1)
		if a.String() != b.String() {
			t.Fatalf("seed %d: cycle-1 plan differs from NewPlan:\n%s\nvs\n%s", seed, a, b)
		}
		if a.Cell() != b.Cell() {
			t.Fatalf("seed %d: cycle-1 cell %s != %s", seed, b.Cell(), a.Cell())
		}
	}
}

// TestPlanCycleTwoCoversAllCells asserts fifteen consecutive seeds under
// cycle 2 hit all fifteen cells — the nine Table-I cells plus speculative
// and strong-eventual crossed with every durability level.
func TestPlanCycleTwoCoversAllCells(t *testing.T) {
	cells := make(map[string]bool)
	for _, seed := range Seeds(1, 15) {
		cells[NewPlanCycle(seed, 2).Cell()] = true
	}
	if len(cells) != 15 {
		t.Errorf("15 consecutive seeds cover %d cells, want 15: %v", len(cells), cells)
	}
	for _, want := range []string{
		"speculative/none", "speculative/local", "speculative/global",
		"strong-eventual/none", "strong-eventual/local", "strong-eventual/global",
	} {
		if !cells[want] {
			t.Errorf("cycle 2 missing cell %s", want)
		}
	}
}

// TestCycleTwoSmoke runs consecutive seeds under the fifteen-cell cycle,
// exercising the speculative rollback and strong-eventual convergence
// contracts alongside the original nine cells.
func TestCycleTwoSmoke(t *testing.T) {
	n := 90
	if testing.Short() {
		n = 30
	}
	results := RunManyCycle(Seeds(1, n), 0, 2)
	var buf bytes.Buffer
	if failed := Report(&buf, results); failed > 0 {
		t.Errorf("%d cycle-2 schedules failed:\n%s", failed, buf.String())
	}
}

// TestReportFailureBlock asserts a failing result reprints its plan and
// the replay command, which is what turns a CI red into a local repro.
func TestReportFailureBlock(t *testing.T) {
	r := Result{
		Seed:       99,
		Cell:       "weak/global",
		Violations: []string{"example violation"},
		PlanText:   NewPlan(99).String(),
	}
	var buf bytes.Buffer
	if failed := Report(&buf, []Result{r}); failed != 1 {
		t.Fatalf("Report returned %d failures, want 1", failed)
	}
	out := buf.String()
	for _, want := range []string{
		"seed 99 FAILED",
		"violation: example violation",
		"reproduce: cudele-bench -chaos-replay 99",
		"fault plan:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestReportCycleTwoReplayCommand asserts a cycle-2 failure's replay
// command carries the -chaos-cycle flag — without it the seed would
// replay under the nine-cell mapping and exercise the wrong cell.
func TestReportCycleTwoReplayCommand(t *testing.T) {
	r := Result{
		Seed:       7,
		Cycle:      2,
		Cell:       NewPlanCycle(7, 2).Cell(),
		Violations: []string{"example violation"},
		PlanText:   NewPlanCycle(7, 2).String(),
	}
	var buf bytes.Buffer
	Report(&buf, []Result{r})
	if !strings.Contains(buf.String(), "reproduce: cudele-bench -chaos-cycle 2 -chaos-replay 7") {
		t.Errorf("cycle-2 report missing cycle-aware replay command:\n%s", buf.String())
	}
}

// TestFlightDumpOnFailure forces a violation and asserts the failed
// result carries a flight-recorder dump naming the daemons, recent ops,
// and the violation itself — the "last events before the breakage" block
// a -chaos-replay report shows.
func TestFlightDumpOnFailure(t *testing.T) {
	forceViolation = true
	defer func() { forceViolation = false }()
	res := Run(1)
	if res.Passed() {
		t.Fatal("forced violation did not fail the schedule")
	}
	if res.FlightDump == "" {
		t.Fatal("failed schedule has no flight dump")
	}
	for _, want := range []string{
		"[chaos]",   // the oracle's ring
		"[mds.0]",   // the MDS op ring
		"violation", // the violation event itself
		"forced violation (test hook) after op",
	} {
		if !strings.Contains(res.FlightDump, want) {
			t.Errorf("flight dump missing %q:\n%s", want, res.FlightDump)
		}
	}

	var buf bytes.Buffer
	Report(&buf, []Result{res})
	if !strings.Contains(buf.String(), "flight recorder (last events before the violation):") {
		t.Errorf("report missing flight-recorder block:\n%s", buf.String())
	}
}

// TestFlightDumpOnlyOnFailure asserts passing schedules carry no dump —
// the recorder is observation-only and its output appears exclusively in
// failure reports.
func TestFlightDumpOnlyOnFailure(t *testing.T) {
	res := Run(1)
	if !res.Passed() {
		t.Fatalf("seed 1 unexpectedly failed: %v", res.Violations)
	}
	if res.FlightDump != "" {
		t.Errorf("passing schedule has a flight dump:\n%s", res.FlightDump)
	}
}
