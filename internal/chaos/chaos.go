// Package chaos is the deterministic fault-injection and
// policy-contract checker for the simulated Cudele cluster.
//
// One chaos schedule is one seed: the seed picks a cell of the paper's
// consistency x durability matrix (Table I), generates a random-op
// workload, a crash fault plan, and a set of storage/network fault
// probabilities, then runs the REAL protocol stack — client journals,
// merge scheduler, journal streaming, RADOS objects — against a pure
// in-memory oracle that tracks exactly which updates each policy
// guarantees. After every fault and recovery the harness asserts the
// cell's contract:
//
//	DurNone    may lose everything on any failure
//	DurLocal   acked local persists survive a client crash+restart
//	DurGlobal  acked global persists / journal flushes survive any crash
//	ConsInvisible  updates never leak into the global namespace pre-merge
//	ConsStrong     acked updates are immediately visible
//
// Cycle 2 extends the matrix with the two cells beyond Table I:
//
//	ConsSpeculative    a merge applies exactly the ops whose predictions
//	                   held (the oracle mirrors the validation), and every
//	                   rolled-back op vanishes from the client image and
//	                   never reaches the global namespace
//	ConsStrongEventual merged batches replayed in any permutation render
//	                   a byte-identical namespace image
//
// plus global invariants: no phantom namespace entries, inode grants
// respected, merge-scheduler slots freed, no leaked simulation
// processes.
//
// Schedules are fully deterministic: the same seed produces a
// byte-identical plan, schedule, and verdict at any worker count, so a
// failing seed from CI reproduces exactly with
// `cudele-bench -chaos-replay <seed>`.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cudele/internal/policy"
	"cudele/internal/sim"
)

// Fault kinds a Plan can schedule. The driver quantizes both to
// operation boundaries: a crash lands between two workload ops (plus
// immediate restart and recovery), never mid-RPC. Mid-operation failure
// coverage comes from the RADOS write faults and transport faults,
// which strike inside operations.
const (
	FaultClientCrash = "client-crash"
	FaultMDSCrash    = "mds-crash"
)

// Plan is everything a chaos schedule needs, derived deterministically
// from its seed. Plans are data: printable for bug reports and
// re-derivable from the seed alone.
type Plan struct {
	Seed int64

	// Cycle versions the seed-to-cell mapping. Cycle 1 (the default) is
	// the original 3x3 matrix: cell = seed%9, and every schedule is
	// byte-identical with earlier harness versions. Cycle 2 widens the
	// wheel to 15 cells: seeds 0-8 (mod 15) keep the 3x3 mapping, seeds
	// 9-14 cover speculative and strong-eventual across all three
	// durability levels.
	Cycle int

	// Cell of the policy matrix under test. Consecutive seeds cycle
	// through every cell of the plan's cycle, so any Cycle-width run of
	// contiguous seeds gives full matrix coverage.
	Cons policy.Consistency
	Dur  policy.Durability

	// Interfere is the workload weight of interfering RPC operations on
	// speculative schedules: ops that mutate the decoupled subtree
	// through the strong path so client predictions get falsified and
	// the rollback machinery actually fires. Zero outside
	// ConsSpeculative. Draw-free: it never touches the plan's rng.
	Interfere float64

	// Permute arms the merge-order permutation check on strong-eventual
	// schedules: every merged batch is captured, and the final verify
	// replays the batches in several permutations, demanding a
	// byte-identical namespace image from each. Draw-free.
	Permute bool

	// Ops is the workload length in operations.
	Ops int

	// Chunked enables the streaming merge pipeline (chunked transfers
	// through the MDS merge scheduler) instead of one-shot merges.
	Chunked bool

	// Background runs a second decoupled client merging concurrently,
	// to exercise merge-scheduler admission and slot recycling. Only
	// set for chunked schedules with no MDS crash (so the driver's
	// recovery sequencing stays sequential).
	Background bool

	// Transport arms the message-fault interceptor (bounded drops,
	// delays, idempotent duplicates) on the MDS endpoint.
	Transport bool

	// WriteErrProb / TornProb / MaxWriteFaults arm the RADOS write-fault
	// injector over the client-journal pool (Global Persist targets).
	// Zero for cells that never persist globally.
	WriteErrProb   float64
	TornProb       float64
	MaxWriteFaults int

	// Faults is the crash schedule.
	Faults sim.FaultPlan

	// Migrate runs the schedule on a two-rank cluster with a migrator
	// proc exporting the main subtree back and forth at MigrateAt, so
	// crashes and storage faults strike mid-handoff. The ownership flip
	// must be invisible to every contract: the oracle is unchanged.
	Migrate bool
	// MigrateAt are the virtual times the migrator fires, drawn from the
	// same window as the crash schedule so the two overlap.
	MigrateAt []sim.Time
	// TornCommit additionally arms the RADOS write-fault injector over
	// the migration-record pool, so some export-commit records tear; a
	// torn record must abort the migration with the source authoritative.
	TornCommit bool
}

// NewPlan derives a cycle-1 schedule from a seed. The generator draws
// from its own rand source; the simulation's engine stream is untouched.
func NewPlan(seed int64) *Plan { return NewPlanCycle(seed, 1) }

// planCells is the width of each cycle's cell wheel.
func planCells(cycle int) int {
	if cycle >= 2 {
		return policy.NumConsistencies * policy.NumDurabilities
	}
	return 9
}

// NewPlanCycle derives a schedule from a seed under the given cycle's
// seed-to-cell mapping. Cycle 1 plans are byte-identical with NewPlan of
// every earlier harness version; cycle 2 adds the speculative and
// strong-eventual cells. Both cycles consume the seed's rand stream in
// exactly the same order — the new-cell knobs (Interfere, Permute) are
// derived without drawing — so a seed's ops/fault/transport schedule is
// the same in every cycle and only the cell under test changes.
func NewPlanCycle(seed int64, cycle int) *Plan {
	if cycle < 1 {
		cycle = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := int64(planCells(cycle))
	cell := int((seed%n + n) % n)
	p := &Plan{
		Seed:  seed,
		Cycle: cycle,
	}
	switch {
	case cell < 9:
		p.Cons = policy.Consistency(cell % 3)
		p.Dur = policy.Durability(cell / 3)
	case cell < 12:
		p.Cons = policy.ConsSpeculative
		p.Dur = policy.Durability(cell - 9)
	default:
		p.Cons = policy.ConsStrongEventual
		p.Dur = policy.Durability(cell - 12)
	}
	if p.Cons == policy.ConsSpeculative {
		p.Interfere = 0.3
	}
	if p.Cons == policy.ConsStrongEventual {
		p.Permute = true
	}
	p.Ops = 40 + rng.Intn(41)
	p.Chunked = rng.Float64() < 0.5
	p.Transport = rng.Float64() < 0.5
	if p.Dur == policy.DurGlobal {
		p.WriteErrProb = 0.5
		p.TornProb = 0.5
		p.MaxWriteFaults = 1 + rng.Intn(3)
	}
	mdsCrash := false
	for i, n := 0, rng.Intn(4); i < n; i++ {
		kind, target := FaultClientCrash, "client:main"
		if rng.Float64() < 0.4 {
			kind, target = FaultMDSCrash, "mds:0"
			mdsCrash = true
		}
		p.Faults.Faults = append(p.Faults.Faults, sim.Fault{
			At:     sim.Time(500e3 + rng.Int63n(8e6)),
			Kind:   kind,
			Target: target,
		})
	}
	sort.SliceStable(p.Faults.Faults, func(i, j int) bool {
		return p.Faults.Faults[i].At < p.Faults.Faults[j].At
	})
	p.Background = p.Chunked && !mdsCrash
	// Migration draws come strictly after every pre-existing draw, so the
	// non-migrate three quarters of the seed space keeps byte-identical
	// schedules (and verdicts) with earlier harness versions.
	p.Migrate = rng.Float64() < 0.25
	if p.Migrate {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			p.MigrateAt = append(p.MigrateAt, sim.Time(500e3+rng.Int63n(8e6)))
		}
		sort.SliceStable(p.MigrateAt, func(i, j int) bool {
			return p.MigrateAt[i] < p.MigrateAt[j]
		})
		p.TornCommit = rng.Float64() < 0.5
	}
	return p
}

// Cell names the plan's policy cell, e.g. "weak/global".
func (p *Plan) Cell() string { return p.Cons.String() + "/" + p.Dur.String() }

// String renders the plan for failure reports.
func (p *Plan) String() string {
	s := fmt.Sprintf(
		"seed=%d cell=%s ops=%d chunked=%v background=%v transport=%v "+
			"rados(err=%.2f torn=%.2f max=%d)\n%s",
		p.Seed, p.Cell(), p.Ops, p.Chunked, p.Background, p.Transport,
		p.WriteErrProb, p.TornProb, p.MaxWriteFaults, p.Faults.String())
	if p.Migrate {
		s += fmt.Sprintf("migrate: at=%v torn-commit=%v\n", p.MigrateAt, p.TornCommit)
	}
	// Cycle-1 plans keep their historical rendering byte-for-byte.
	if p.Cycle >= 2 {
		if !strings.HasSuffix(s, "\n") {
			s += "\n"
		}
		s += fmt.Sprintf("cycle=%d interfere=%.2f permute=%v\n", p.Cycle, p.Interfere, p.Permute)
	}
	return s
}

// Result is one schedule's verdict.
type Result struct {
	Seed        int64
	Cycle       int // cell cycle the schedule ran under (0/1 = the original nine)
	Cell        string
	Ops         int
	CrashFaults int
	WriteFaults int // RADOS write faults that actually fired
	Merges      int
	Migrations  int // subtree migrations that committed (aborts excluded)
	VirtualSec  float64
	Violations  []string
	PlanText    string

	// FlightDump is the flight recorder's rendering of the last events
	// before the first violation — per-daemon rings of ops, faults,
	// crashes, and merges — captured only for failed schedules so a
	// `-chaos-replay <seed>` report shows what led up to the breakage.
	FlightDump string
}

// Passed reports whether every contract and invariant held.
func (r Result) Passed() bool { return len(r.Violations) == 0 }

// maxViolations bounds how many violations one schedule records; a
// single root cause often cascades, and the first few entries carry the
// signal.
const maxViolations = 16

// Run executes one cycle-1 chaos schedule and returns its verdict.
// Everything — cluster, engine, rand sources, oracle — is built fresh
// from the seed, so concurrent Runs never share state.
func Run(seed int64) Result { return RunCycle(seed, 1) }

// RunCycle executes one chaos schedule under the given cell cycle.
func RunCycle(seed int64, cycle int) Result {
	plan := NewPlanCycle(seed, cycle)
	d := newDriver(plan)
	return d.run()
}

// RunMany executes cycle-1 schedules for every seed on a worker pool
// and returns results in seed order. Each schedule is an independent
// simulation, so the verdicts are byte-identical at any worker count.
func RunMany(seeds []int64, workers int) []Result {
	return RunManyCycle(seeds, workers, 1)
}

// RunManyCycle is RunMany under the given cell cycle.
func RunManyCycle(seeds []int64, workers, cycle int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	out := make([]Result, len(seeds))
	if workers <= 1 {
		for i, s := range seeds {
			out[i] = RunCycle(s, cycle)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunCycle(seeds[i], cycle)
			}
		}()
	}
	for i := range seeds {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Seeds returns n consecutive seeds starting at base — the harness
// default, cycling through all nine policy cells every nine seeds.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Report writes the per-seed verdict table, then a reproduction block
// (fault plan, violations, replay command) for every failure. It
// returns the number of failed schedules.
func Report(w io.Writer, results []Result) int {
	fmt.Fprintf(w, "%-8s %-18s %4s %6s %6s %6s %4s %9s  %s\n",
		"seed", "cell", "ops", "crash", "io", "merge", "mig", "virt(s)", "verdict")
	failed := 0
	for _, r := range results {
		verdict := "ok"
		if !r.Passed() {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
			failed++
		}
		fmt.Fprintf(w, "%-8d %-18s %4d %6d %6d %6d %4d %9.4f  %s\n",
			r.Seed, r.Cell, r.Ops, r.CrashFaults, r.WriteFaults, r.Merges,
			r.Migrations, r.VirtualSec, verdict)
	}
	for _, r := range results {
		if r.Passed() {
			continue
		}
		fmt.Fprintf(w, "\nseed %d FAILED — %s\n", r.Seed, r.PlanText)
		for _, v := range r.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		if r.FlightDump != "" {
			fmt.Fprintf(w, "  flight recorder (last events before the violation):\n")
			for _, line := range strings.Split(strings.TrimRight(r.FlightDump, "\n"), "\n") {
				fmt.Fprintf(w, "    %s\n", line)
			}
		}
		if r.Cycle >= 2 {
			fmt.Fprintf(w, "  reproduce: cudele-bench -chaos-cycle %d -chaos-replay %d\n", r.Cycle, r.Seed)
		} else {
			fmt.Fprintf(w, "  reproduce: cudele-bench -chaos-replay %d\n", r.Seed)
		}
	}
	if failed == 0 {
		fmt.Fprintf(w, "chaos: %d/%d schedules passed\n", len(results), len(results))
	} else {
		fmt.Fprintf(w, "chaos: %d/%d schedules FAILED\n", failed, len(results))
	}
	return failed
}
