package chaos

import (
	"fmt"
	"sort"

	"cudele/internal/journal"
)

// update is one acked metadata update as the oracle remembers it: the
// absolute namespace path it creates, the inode the ack promised, and
// enough of the journal event to byte-check a recovered image.
type update struct {
	path    string
	ino     uint64
	parent  uint64
	name    string
	dir     bool
	granted bool // inode drawn from a decoupled grant
	unlink  bool // removal of path, not creation (strong-eventual cells)
}

// globalState tracks what the oracle knows about the client's journal
// image in the object store.
type globalState int

const (
	// globalNone: no Global Persist has been attempted.
	globalNone globalState = iota
	// globalGood: the last Global Persist was acked — the image must
	// read back as exactly the acked update sequence.
	globalGood
	// globalDirty: a Global Persist failed after possibly writing a
	// torn prefix or destroying part of an older image. The store may
	// hold anything from nothing to a stale mix; recovery may fail, but
	// whatever it yields must stay inside the acked-update set.
	globalDirty
)

// oracle is the pure in-memory model of what each policy guarantees.
// It never touches the simulation — the driver feeds it acks and
// faults, and the checks compare it against the real MDS store.
//
// The model is a set of "homes" an update can live in:
//
//	journal    the client's in-memory journal (since the last reset)
//	localImage the journal snapshot an acked Local Persist wrote
//	globalImage the journal snapshot an acked Global Persist wrote
//	mdsMem     merged / RPC-acked updates — must be visible now
//	mdsTail    RPC updates in the MDS journal, not yet flush-acked
//	mdsDurable flush-acked MDS-journal updates — survive an MDS crash
//
// Faults move updates between homes exactly as the contracts allow: a
// client crash empties journal, an MDS crash resets mdsMem to
// mdsDurable, recovery paths restore from the images.
type oracle struct {
	// pset is every update ever acked, by path. The phantom bound: the
	// real namespace may never hold a subtree entry outside pset.
	pset map[string]update

	journal     []update
	localImage  []update
	hasLocal    bool
	globalImage []update
	global      globalState

	mdsMem     map[string]update
	mdsTail    []update
	mdsDurable map[string]update
}

func newOracle() *oracle {
	return &oracle{
		pset:       make(map[string]update),
		mdsMem:     make(map[string]update),
		mdsDurable: make(map[string]update),
	}
}

// ackJournal records a decoupled create/mkdir acked into the client
// journal.
func (o *oracle) ackJournal(u update) {
	o.pset[u.path] = u
	o.journal = append(o.journal, u)
}

// ackRPC records a strong (RPC) update: visible immediately; journaled
// additionally lands it in the MDS journal tail (stream enabled).
func (o *oracle) ackRPC(u update, journaled bool) {
	o.pset[u.path] = u
	o.mdsMem[u.path] = u
	if journaled {
		o.mdsTail = append(o.mdsTail, u)
	}
}

// mergeOK: the journal was acked into the MDS in-memory store. Updates
// land in journal order, so an unlink removes whatever the same batch
// created before it.
func (o *oracle) mergeOK() {
	for _, u := range o.journal {
		if u.unlink {
			delete(o.mdsMem, u.path)
			continue
		}
		o.mdsMem[u.path] = u
	}
	o.journal = nil
}

// localPersistOK snapshots the journal as the local-disk image.
func (o *oracle) localPersistOK() {
	o.localImage = append([]update(nil), o.journal...)
	o.hasLocal = true
}

// recoverLocalOK: a restarted client reloaded the local image into its
// journal.
func (o *oracle) recoverLocalOK() {
	o.journal = append([]update(nil), o.localImage...)
}

// globalPersistOK snapshots the journal as the acked global image.
func (o *oracle) globalPersistOK() {
	o.globalImage = append([]update(nil), o.journal...)
	o.global = globalGood
}

// globalPersistFail: the persist errored mid-write; whatever image the
// store holds is no longer trustworthy.
func (o *oracle) globalPersistFail() {
	if o.global == globalNone {
		o.global = globalDirty
		return
	}
	o.global = globalDirty
}

// flushOK: a FlushJournal ack moved the MDS journal tail to durable.
func (o *oracle) flushOK() {
	for _, u := range o.mdsTail {
		o.mdsDurable[u.path] = u
	}
	o.mdsTail = nil
}

// clientCrash loses the client's volatile state: the in-memory journal.
// Local and global images, and anything already on the MDS, survive.
func (o *oracle) clientCrash() {
	o.journal = nil
}

// mdsCrash loses the MDS's volatile state: in-memory merges and any
// unflushed journal tail. Recovery replays the durable set.
func (o *oracle) mdsCrash() {
	o.mdsMem = make(map[string]update, len(o.mdsDurable))
	for p, u := range o.mdsDurable {
		o.mdsMem[p] = u
	}
	o.mdsTail = nil
}

// adoptGlobal marks the acked global image merged into the MDS.
func (o *oracle) adoptGlobal() {
	for _, u := range o.globalImage {
		if u.unlink {
			delete(o.mdsMem, u.path)
			continue
		}
		o.mdsMem[u.path] = u
	}
}

// visiblePaths returns mdsMem's paths sorted, so violation output is
// deterministic.
func (o *oracle) visiblePaths() []string {
	paths := make([]string, 0, len(o.mdsMem))
	for p := range o.mdsMem {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// ackedPaths returns pset's paths sorted.
func (o *oracle) ackedPaths() []string {
	paths := make([]string, 0, len(o.pset))
	for p := range o.pset {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// matchGlobal checks a fetched journal image against the acked global
// snapshot: same length, same events in order.
func (o *oracle) matchGlobal(evs []*journal.Event) string {
	if len(evs) != len(o.globalImage) {
		return "global image length mismatch"
	}
	for i, ev := range evs {
		u := o.globalImage[i]
		wantType := journal.EvCreate
		switch {
		case u.dir:
			wantType = journal.EvMkdir
		case u.unlink:
			wantType = journal.EvUnlink
		}
		if ev.Type != wantType || ev.Ino != u.ino ||
			ev.Parent != u.parent || ev.Name != u.name {
			return fmt.Sprintf("global image event mismatch at index %d", i)
		}
	}
	return ""
}
