package chaos

import (
	"fmt"
	"strings"

	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/runtime"
)

// Cycle-2 schedules: the speculative and strong-eventual cells beyond
// the paper's Table I, with their own workload mixes and contract
// checks.
//
// Speculative contract: a merge applies exactly the ops whose
// predictions held against the live global view. The oracle mirrors the
// MDS's validation algorithm over its own model, so the rejected-index
// set is predicted before the merge runs — any divergence is a
// violation. After the merge, every rolled-back op must be gone from
// the client image and must never reach the global namespace (the
// phantom walk holds the global half of that contract).
//
// Strong-eventual contract: every merged batch is captured, and the
// final verify replays the batches — identity order, reversed, and two
// random permutations — through a fresh store and CRDT resolver. All
// four must render byte-identical namespace images, and (when no MDS
// crash destroyed merged state) the identity image must equal the live
// namespace.

func (d *driver) spec() bool { return d.plan.Cons == policy.ConsSpeculative }
func (d *driver) se() bool   { return d.plan.Cons == policy.ConsStrongEventual }

// seChainEnt is one directory on the path from the namespace root to
// the workload root, as the permutation replay rebuilds it.
type seChainEnt struct {
	name string
	ino  namespace.Ino
}

// peekName returns the next workload name without consuming it.
func (d *driver) peekName(prefix string) string {
	return fmt.Sprintf("%s%06d", prefix, d.nameSeq)
}

// ackJournalSpec records a speculative create/mkdir acked into the
// client journal. Unlike the blind-merge cells the update is only
// provisionally in pset: a rejected prediction is scrubbed again at
// merge time, restoring the phantom bound's full strength.
func (o *oracle) ackJournalSpec(u update) {
	if _, taken := o.pset[u.path]; !taken {
		o.pset[u.path] = u
	}
	o.journal = append(o.journal, u)
}

// ackJournalSE records a strong-eventual journal op. Creates and mkdirs
// enter the phantom bound; an unlink does not displace the create it
// removes (the entry may legitimately stay visible if the unlink is
// lost with the client before merging).
func (o *oracle) ackJournalSE(u update) {
	if !u.unlink {
		o.pset[u.path] = u
	}
	o.journal = append(o.journal, u)
}

// specMirror replays the MDS's speculative validation over the oracle's
// model of the global view (mdsMem plus the subtree root) and returns
// the indices the real merge must reject — conflict prediction, not
// conflict observation. Accepted ops extend the model as they land, so
// rejection cascades below a rejected mkdir exactly like the real
// validator's missing-parent rule.
func (o *oracle) specMirror(ops []update, root string) []int {
	kind := map[string]bool{root: true} // path -> is-directory
	for p, u := range o.mdsMem {
		kind[p] = u.dir
	}
	var rej []int
	for i, u := range ops {
		parent := u.path[:strings.LastIndexByte(u.path, '/')]
		isDir, ok := kind[parent]
		if !ok || !isDir {
			rej = append(rej, i)
			continue
		}
		if _, exists := kind[u.path]; exists {
			rej = append(rej, i)
			continue
		}
		kind[u.path] = u.dir
	}
	return rej
}

// mergeSpecOK commits a validated merge: accepted updates become
// visible, rejected ones are scrubbed from the provisional pset (their
// paths must never appear in the namespace — unless an interfering
// twin with a different inode owns the path).
func (o *oracle) mergeSpecOK(conflicts []int) {
	rej := make(map[int]bool, len(conflicts))
	for _, i := range conflicts {
		rej[i] = true
	}
	for i, u := range o.journal {
		if rej[i] {
			if cur, ok := o.pset[u.path]; ok && cur.ino == u.ino {
				delete(o.pset, u.path)
			}
			continue
		}
		o.pset[u.path] = u
		o.mdsMem[u.path] = u
	}
	o.journal = nil
}

// adoptSpec merges a re-validated global image: the accepted subset
// becomes visible, rejections (ops already applied, or re-cascaded)
// change nothing.
func (o *oracle) adoptSpec(conflicts []int) {
	rej := make(map[int]bool, len(conflicts))
	for _, i := range conflicts {
		rej[i] = true
	}
	for i, u := range o.globalImage {
		if rej[i] {
			continue
		}
		o.pset[u.path] = u
		o.mdsMem[u.path] = u
	}
}

// stepSpec runs one speculative workload op. The interfere weight comes
// from the plan: RPC ops that mutate the subtree through the strong
// path, falsifying client predictions so merges actually reject ops.
func (d *driver) stepSpec(p runtime.Task) {
	roll := d.rng.Float64()
	inter := d.plan.Interfere
	switch {
	case roll < 0.40:
		d.opSpecCreate(p)
	case roll < 0.50:
		d.opSpecMkdir(p)
	case roll < 0.50+inter:
		d.opInterfere(p)
	case roll < 0.60+inter:
		d.opPersist(p)
	default:
		d.opSpecMerge(p)
	}
}

func (d *driver) opSpecCreate(p runtime.Task) {
	par := d.cands[d.rng.Intn(len(d.cands))]
	name := d.nextName("f")
	ino, err := d.c.LocalCreate(p, par.ino, name, 0o644)
	if err != nil {
		d.violate("speculative create %s/%s: %v", par.path, name, err)
		return
	}
	d.ackIno(uint64(ino), par.path+"/"+name)
	d.o.ackJournalSpec(update{
		path: par.path + "/" + name, ino: uint64(ino),
		parent: uint64(par.ino), name: name, granted: true,
	})
}

func (d *driver) opSpecMkdir(p runtime.Task) {
	if len(d.cands) >= maxParents {
		d.opSpecCreate(p)
		return
	}
	par := d.cands[d.rng.Intn(len(d.cands))]
	name := d.nextName("d")
	ino, err := d.c.LocalMkdir(p, par.ino, name, 0o755)
	if err != nil {
		d.violate("speculative mkdir %s/%s: %v", par.path, name, err)
		return
	}
	path := par.path + "/" + name
	d.ackIno(uint64(ino), path)
	d.o.ackJournalSpec(update{
		path: path, ino: uint64(ino),
		parent: uint64(par.ino), name: name, dir: true, granted: true,
	})
	d.cands = append(d.cands, parentRef{ino, path})
}

// opInterfere creates a file through the strong RPC path at the subtree
// root, under a name the speculative client has journaled (or is about
// to journal) — the interference that falsifies a prediction and forces
// a rollback. The RPC ack is authoritative: the name now belongs to the
// interferer, and the client's twin must be rejected at merge.
func (d *driver) opInterfere(p runtime.Task) {
	if d.stolen == nil {
		d.stolen = make(map[string]bool)
	}
	root := d.cands[0]
	// Prefer poisoning a name already journaled at the root — a
	// guaranteed conflict. Fall back to the next name the local workload
	// will draw.
	name := ""
	for _, u := range d.o.journal {
		if !u.dir && u.parent == uint64(root.ino) && !d.stolen[u.name] {
			name = u.name
			break
		}
	}
	if name == "" {
		name = d.peekName("f")
		if d.stolen[name] {
			d.opSpecCreate(p)
			return
		}
	}
	d.stolen[name] = true
	ino, err := d.c.Create(p, root.ino, name, 0o600)
	if err != nil {
		d.violate("interfering create %s/%s: %v", root.path, name, err)
		return
	}
	d.o.ackRPC(update{
		path: root.path + "/" + name, ino: uint64(ino),
		parent: uint64(root.ino), name: name,
	}, false)
}

// opSpecMerge ships the journal for validated merge and holds the cell
// to its contract: the rejected set must equal the oracle's prediction,
// every rolled-back op must be gone from the client image, and every
// accepted op must still be there with its acked inode.
func (d *driver) opSpecMerge(p runtime.Task) {
	ups := append([]update(nil), d.o.journal...)
	expect := d.o.specMirror(ups, mainPath)
	applied, conflicts, err := d.c.SpeculativeApply(p)
	d.res.Merges++
	if err != nil {
		d.violate("speculative apply: %v", err)
		return
	}
	if !equalInts(conflicts, expect) {
		d.violate("speculative apply rejected %v, oracle predicted %v", conflicts, expect)
		return
	}
	if applied != len(ups)-len(conflicts) {
		d.violate("speculative apply: applied %d, want %d of %d ops",
			applied, len(ups)-len(conflicts), len(ups))
	}
	d.o.mergeSpecOK(conflicts)
	rej := make(map[int]bool, len(conflicts))
	for _, i := range conflicts {
		rej[i] = true
	}
	for i, u := range ups {
		ino, lerr := d.c.LocalLookup(namespace.Ino(u.parent), u.name)
		if rej[i] {
			if lerr == nil {
				d.violate("rolled-back op %s still visible in the client image", u.path)
			}
			continue
		}
		if lerr != nil {
			d.violate("accepted op %s missing from the client image: %v", u.path, lerr)
			continue
		}
		if uint64(ino) != u.ino {
			d.violate("accepted op %s has ino %d in the client image, want %d",
				u.path, uint64(ino), u.ino)
		}
	}
	d.cands = d.cands[:1]
	d.checkVisible()
}

// verifyGlobalSpec is verifyGlobal for the speculative cell: a
// recovered journal image re-enters the ordinary validate-or-reject
// cycle, and the oracle predicts the outcome — already-applied ops and
// previously rejected ops must re-reject, ops the cluster lost must be
// re-admitted.
func (d *driver) verifyGlobalSpec(p runtime.Task) {
	if d.o.global == globalNone {
		return
	}
	evBytes := int64(d.cl.Config().JournalEventBytes)
	evs, err := d.c.FetchGlobalJournal(p, d.c.Name())
	if d.o.global == globalDirty {
		if err != nil || len(evs) == 0 {
			return // unacked image may be unreadable — allowed
		}
		// A stale image re-merges through validation, which rejects
		// anything that no longer applies; the phantom walk bounds the
		// rest.
		_, _, _ = d.mds().SpeculativeApply(p, evs, int64(len(evs))*evBytes)
		return
	}
	if err != nil {
		d.violate("fetch global journal: %v", err)
		return
	}
	if msg := d.o.matchGlobal(evs); msg != "" {
		d.violate("recovered global journal: %s", msg)
		return
	}
	expect := d.o.specMirror(d.o.globalImage, mainPath)
	applied, conflicts, merr := d.mds().SpeculativeApply(p, evs, int64(len(evs))*evBytes)
	if merr != nil {
		d.violate("re-merge recovered global journal: %v", merr)
		return
	}
	if !equalInts(conflicts, expect) {
		d.violate("re-merged global journal rejected %v, oracle predicted %v", conflicts, expect)
		return
	}
	if applied != len(evs)-len(conflicts) {
		d.violate("re-merged global journal: applied %d, want %d of %d events",
			applied, len(evs)-len(conflicts), len(evs))
		return
	}
	d.o.adoptSpec(conflicts)
}

// stepSE runs one strong-eventual workload op. Everything stays at the
// subtree root and unlinks only target names created since the last
// merge, so every merged batch is self-contained and batches can replay
// in any permutation.
func (d *driver) stepSE(p runtime.Task) {
	roll := d.rng.Float64()
	switch {
	case roll < 0.45:
		d.opSECreate(p)
	case roll < 0.58:
		d.opSEMkdir(p)
	case roll < 0.73:
		d.opSEUnlink(p)
	case roll < 0.87:
		d.opPersist(p)
	default:
		d.opSEMerge(p)
	}
}

func (d *driver) opSECreate(p runtime.Task) {
	root := d.cands[0]
	name := d.nextName("s")
	ino, err := d.c.LocalCreate(p, root.ino, name, 0o644)
	if err != nil {
		d.violate("strong-eventual create %s/%s: %v", root.path, name, err)
		return
	}
	d.ackIno(uint64(ino), root.path+"/"+name)
	d.o.ackJournalSE(update{
		path: root.path + "/" + name, ino: uint64(ino),
		parent: uint64(root.ino), name: name, granted: true,
	})
	d.seLive = append(d.seLive, name)
}

func (d *driver) opSEMkdir(p runtime.Task) {
	root := d.cands[0]
	name := d.nextName("t")
	ino, err := d.c.LocalMkdir(p, root.ino, name, 0o755)
	if err != nil {
		d.violate("strong-eventual mkdir %s/%s: %v", root.path, name, err)
		return
	}
	d.ackIno(uint64(ino), root.path+"/"+name)
	d.o.ackJournalSE(update{
		path: root.path + "/" + name, ino: uint64(ino),
		parent: uint64(root.ino), name: name, dir: true, granted: true,
	})
}

func (d *driver) opSEUnlink(p runtime.Task) {
	if len(d.seLive) == 0 {
		d.opSECreate(p)
		return
	}
	root := d.cands[0]
	i := d.rng.Intn(len(d.seLive))
	name := d.seLive[i]
	if err := d.c.LocalUnlink(p, root.ino, name); err != nil {
		d.violate("strong-eventual unlink %s/%s: %v", root.path, name, err)
		return
	}
	d.seLive = append(d.seLive[:i], d.seLive[i+1:]...)
	d.o.ackJournalSE(update{
		path:   root.path + "/" + name,
		parent: uint64(root.ino), name: name, unlink: true,
	})
}

// opSEMerge ships the journal through the CRDT resolver and captures
// the batch for the permutation replay.
func (d *driver) opSEMerge(p runtime.Task) {
	evs, err := d.c.JournalEvents()
	if err != nil {
		d.violate("strong-eventual merge: snapshot journal: %v", err)
		return
	}
	want := len(d.o.journal)
	applied, err := d.c.ConvergeApply(p)
	d.res.Merges++
	if err != nil {
		d.violate("converge apply: %v", err)
		return
	}
	if applied != want {
		d.violate("converge apply: applied %d events, journal had %d", applied, want)
	}
	if len(evs) > 0 {
		d.seSegs = append(d.seSegs, evs)
	}
	d.o.mergeOK()
	d.seLive = nil
	d.checkVisible()
}

// verifyGlobalSE is verifyGlobal for the strong-eventual cell: a
// recovered journal image re-merges through the CRDT resolver, where
// replaying already-applied batches is idempotent by construction.
func (d *driver) verifyGlobalSE(p runtime.Task) {
	if d.o.global == globalNone {
		return
	}
	evBytes := int64(d.cl.Config().JournalEventBytes)
	evs, err := d.c.FetchGlobalJournal(p, d.c.Name())
	if d.o.global == globalDirty {
		if err != nil || len(evs) == 0 {
			return // unacked image may be unreadable — allowed
		}
		if applied, aerr := d.mds().ConvergeApply(p, evs, int64(len(evs))*evBytes); aerr == nil && applied == len(evs) {
			d.seSegs = append(d.seSegs, evs)
			if d.plan.Migrate {
				d.seNoCompare = true
			}
		} else {
			// A partial replay left state the captured batches don't
			// cover; the permutation check stays sound, the live-image
			// comparison does not.
			d.seNoCompare = true
		}
		return
	}
	if err != nil {
		d.violate("fetch global journal: %v", err)
		return
	}
	if msg := d.o.matchGlobal(evs); msg != "" {
		d.violate("recovered global journal: %s", msg)
		return
	}
	applied, merr := d.mds().ConvergeApply(p, evs, int64(len(evs))*evBytes)
	if merr != nil {
		d.violate("re-merge recovered global journal: %v", merr)
		return
	}
	if applied != len(evs) {
		d.violate("re-merged global journal: applied %d of %d events", applied, len(evs))
		return
	}
	if len(evs) > 0 {
		d.seSegs = append(d.seSegs, evs)
		// The resolver's tombstone summaries are rank-local: after a
		// migration a re-merged image can resurrect an entry whose
		// tombstone stayed behind, which the full-history replay keeps
		// dead. Convergence across permutations still holds; the live
		// comparison does not.
		if d.plan.Migrate {
			d.seNoCompare = true
		}
	}
	// No adoptGlobal here: unlike the blind-merge cells, re-merging an
	// acked image through the CRDT does not make its ops visible — any
	// op superseded by a later merged tombstone stays dead. The image
	// ops remain in pset, so the phantom walk still admits whatever the
	// re-merge legitimately revives.
}

// seRecordChain snapshots the path and inode of every directory from
// the namespace root down to the workload root, so the permutation
// replay can rebuild an identical skeleton in a fresh store.
func (d *driver) seRecordChain() bool {
	st := d.srv.Store()
	prefix := ""
	for _, comp := range strings.Split(strings.TrimPrefix(mainPath, "/"), "/") {
		prefix += "/" + comp
		in, err := st.Resolve(prefix)
		if err != nil {
			d.violate("setup: resolve %s: %v", prefix, err)
			return false
		}
		d.seChain = append(d.seChain, seChainEnt{comp, in.Ino})
	}
	return true
}

// seReplayImage replays the captured merge batches in the given order
// through a fresh store and CRDT resolver and renders the converged
// image. Batch-internal event order is preserved — the permutation is
// over merge batches, exactly the reordering concurrent clients and
// retries can produce.
func (d *driver) seReplayImage(order []int) (string, error) {
	st := namespace.NewStore()
	cur := namespace.RootIno
	for _, e := range d.seChain {
		in, err := st.Mkdir(cur, e.name, namespace.CreateAttrs{Ino: e.ino, Mode: 0o755})
		if err != nil {
			return "", err
		}
		cur = in.Ino
	}
	m := namespace.NewSEMerger(st)
	for _, si := range order {
		for _, ev := range d.seSegs[si] {
			if err := m.ApplyEvent(ev); err != nil {
				return "", err
			}
		}
	}
	return namespace.SEImageOf(st, cur)
}

// verifyPermutations is the strong-eventual convergence contract: the
// captured merge batches replayed in identity, reversed, and two random
// orders must all render byte-identical images, and the identity image
// must match the live namespace unless an MDS crash legitimately
// destroyed merged state.
func (d *driver) verifyPermutations() {
	if len(d.seSegs) == 0 {
		return
	}
	n := len(d.seSegs)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	base, err := d.seReplayImage(identity)
	if err != nil {
		d.violate("permutation replay (identity order): %v", err)
		return
	}
	orders := [][]int{make([]int, n)}
	for i := range orders[0] {
		orders[0][i] = n - 1 - i
	}
	for k := 0; k < 2; k++ {
		perm := append([]int(nil), identity...)
		d.rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		orders = append(orders, perm)
	}
	for _, order := range orders {
		img, err := d.seReplayImage(order)
		if err != nil {
			d.violate("permutation replay %v: %v", order, err)
			continue
		}
		if img != base {
			d.violate("merge order %v renders a different image than the identity order", order)
		}
	}
	if d.mdsCrashed || d.seNoCompare {
		return
	}
	root, err := d.mds().Store().Resolve(mainPath)
	if err != nil {
		d.violate("permutation check: resolve %s: %v", mainPath, err)
		return
	}
	real, err := namespace.SEImageOf(d.mds().Store(), root.Ino)
	if err != nil {
		d.violate("permutation check: render live image: %v", err)
		return
	}
	if real != base {
		d.violate("replayed merge batches render a different image than the live namespace")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
