package trace

import (
	"strings"
	"testing"
	"time"

	"cudele/internal/stats"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cudele_mds_requests_total", "Requests served.", 42, KV{"daemon", "mds.0"})
	reg.Counter("cudele_mds_requests_total", "Requests served.", 7, KV{"daemon", "mds.1"})
	reg.Gauge("cudele_mds_cpu_utilization", "Busy fraction.", 0.625, KV{"daemon", "mds.0"})

	out := reg.PrometheusString()
	for _, want := range []string{
		"# HELP cudele_mds_requests_total Requests served.",
		"# TYPE cudele_mds_requests_total counter",
		`cudele_mds_requests_total{daemon="mds.0"} 42`,
		`cudele_mds_requests_total{daemon="mds.1"} 7`,
		"# TYPE cudele_mds_cpu_utilization gauge",
		`cudele_mds_cpu_utilization{daemon="mds.0"} 0.625`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per series.
	if strings.Count(out, "# TYPE cudele_mds_requests_total") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
}

func TestRegistryHistogramSummary(t *testing.T) {
	h := &stats.Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	reg := NewRegistry()
	reg.Histogram("cudele_client_rpc_latency_seconds", "RPC round trips.", h, KV{"daemon", "client.0"})
	out := reg.PrometheusString()
	for _, want := range []string{
		"# TYPE cudele_client_rpc_latency_seconds summary",
		`cudele_client_rpc_latency_seconds{daemon="client.0",quantile="0.5"}`,
		`cudele_client_rpc_latency_seconds{daemon="client.0",quantile="1"}`,
		`cudele_client_rpc_latency_seconds_count{daemon="client.0"} 100`,
		`cudele_client_rpc_latency_seconds_sum{daemon="client.0"} 5.05`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryAppendAddsLabelsAndValueLookup(t *testing.T) {
	run := NewRegistry()
	run.Gauge("util", "u", 0.5, KV{"daemon", "mds.0"})
	all := NewRegistry()
	all.Append(run, KV{"run", "fig3a/003"})
	all.Append(nil)

	v, ok := all.Value("util", KV{"run", "fig3a/003"}, KV{"daemon", "mds.0"})
	if !ok || v != 0.5 {
		t.Fatalf("Value = %v,%v", v, ok)
	}
	// Label order in the query must not matter (signature is sorted).
	if _, ok := all.Value("util", KV{"daemon", "mds.0"}, KV{"run", "fig3a/003"}); !ok {
		t.Fatal("label order changed lookup result")
	}
	if !strings.Contains(all.PrometheusString(), `util{daemon="mds.0",run="fig3a/003"} 0.5`) {
		t.Fatalf("merged labels wrong:\n%s", all.PrometheusString())
	}
}

func TestRegistryDeterministicAcrossFillOrder(t *testing.T) {
	build := func(flip bool) string {
		reg := NewRegistry()
		add := []func(){
			func() { reg.Counter("b_total", "b", 1, KV{"d", "x"}) },
			func() { reg.Counter("a_total", "a", 2, KV{"d", "y"}) },
			func() { reg.Counter("a_total", "a", 3, KV{"d", "x"}) },
		}
		if flip {
			for i := len(add) - 1; i >= 0; i-- {
				add[i]()
			}
		} else {
			for _, f := range add {
				f()
			}
		}
		return reg.PrometheusString()
	}
	if a, b := build(false), build(true); a != b {
		t.Fatalf("fill order leaked into output:\n%s\n---\n%s", a, b)
	}
}
