package trace

import (
	"bytes"
	"sync"
	"testing"
)

// TestRecorderConcurrentRecording records spans and instants from many
// goroutines at once — the shape the real execution backend produces —
// and checks nothing is dropped. Run with -race to prove the locking.
func TestRecorderConcurrentRecording(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := r.Begin(Time(i), "proc", "cat", "op")
				r.End(id, Time(i+1))
				r.Instant(Time(i), "proc", "cat", "event")
			}
		}(w)
	}
	wg.Wait()
	if got, want := r.Len(), workers*perWorker; got != want {
		t.Fatalf("spans = %d, want %d", got, want)
	}
	if got, want := len(r.Instants()), workers*perWorker; got != want {
		t.Fatalf("instants = %d, want %d", got, want)
	}
	for _, s := range r.Spans() {
		if s.Open() {
			t.Fatalf("span left open: %+v", s)
		}
	}
}

// TestRecorderExportWhileRecording exports a Chrome trace while other
// goroutines are still appending; the export must be internally
// consistent (valid JSON from a stable snapshot) and race-free.
func TestRecorderExportWhileRecording(t *testing.T) {
	r := New()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			r.Add(Time(i), Time(i+1), "p", "c", "op")
		}
		close(done)
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WriteChrome(&buf); err != nil {
					t.Errorf("WriteChrome: %v", err)
					return
				}
				_ = r.Cats()
			}
		}()
	}
	wg.Wait()
}

// TestRecorderConcurrentMerge folds recorders into one sink from
// several goroutines at once.
func TestRecorderConcurrentMerge(t *testing.T) {
	sink := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		src := New()
		for i := 0; i < 100; i++ {
			src.Add(Time(i), Time(i+1), "p", "c", "op")
		}
		wg.Add(1)
		go func(src *Recorder) {
			defer wg.Done()
			sink.Merge(src, "run:")
		}(src)
	}
	wg.Wait()
	if got, want := sink.Len(), 400; got != want {
		t.Fatalf("merged spans = %d, want %d", got, want)
	}
}
