package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Recorder as Chrome trace-event JSON — the
// "JSON Array Format with metadata" that chrome://tracing and Perfetto
// load directly. Simulated nanoseconds map to trace microseconds (the
// format's native unit), so a span that took 120 simulated µs reads as
// 120 µs in the Perfetto timeline.
//
// The format wants integer pid/tid pairs. Each distinct track (Span.Proc)
// becomes a process, with pids assigned in sorted track order and a
// process_name metadata record naming it. Spans within one track can
// overlap without nesting — many simulation processes run "inside" one
// daemon at the same virtual time — so spans are packed onto numbered
// lanes (tids): a span shares a lane only when it nests inside, or starts
// after, the spans already there. The packing walks spans in a fixed
// deterministic order, so identical recorders always render identical
// bytes.

// chromeEvent is one trace-event record. Field order is fixed by the
// struct, and encoding/json sorts the Args map keys, so marshaling is
// deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeMeta is a metadata record ("M" phase): process/thread naming.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

func usec(t Time) float64 { return float64(t) / 1e3 }

func kvMap(kvs []KV) map[string]string {
	if len(kvs) == 0 {
		return nil
	}
	m := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Val
	}
	return m
}

// WriteChrome writes the recorder's contents as a Chrome trace-event
// JSON object. A nil recorder writes a valid, empty trace.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var spans []Span
	var instants []Instant
	if r != nil {
		spans, instants = r.Spans(), r.Instants()
	}

	// Collect tracks and assign pids in sorted order.
	procs := map[string]int{}
	for _, s := range spans {
		procs[s.Proc] = 0
	}
	for _, i := range instants {
		procs[i.Proc] = 0
	}
	names := make([]string, 0, len(procs))
	for name := range procs {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		procs[name] = i + 1 // pids start at 1
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := newEventWriter(w)
	for _, name := range names {
		enc.add(chromeMeta{
			Name: "process_name", Ph: "M", Pid: procs[name], Tid: 0,
			Args: map[string]string{"name": name},
		})
	}

	// Group span indices by track, preserving recording order within.
	byProc := make(map[string][]int, len(procs))
	for i, s := range spans {
		byProc[s.Proc] = append(byProc[s.Proc], i)
	}
	for _, name := range names {
		idx := byProc[name]
		// Sort by begin time, longest-first on ties, recording order
		// last, so lane packing is a pure function of the span set.
		sort.SliceStable(idx, func(a, b int) bool {
			sa, sb := &spans[idx[a]], &spans[idx[b]]
			if sa.Begin != sb.Begin {
				return sa.Begin < sb.Begin
			}
			return clampEnd(sa) > clampEnd(sb)
		})
		lanes := newLanePacker()
		for _, i := range idx {
			s := &spans[i]
			end := clampEnd(s)
			tid := lanes.place(s.Begin, end)
			enc.add(chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts: usec(s.Begin), Dur: usec(end - s.Begin),
				Pid: procs[s.Proc], Tid: tid, Args: kvMap(s.Args),
			})
		}
	}
	for _, in := range instants {
		enc.add(chromeEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i", Scope: "t",
			Ts: usec(in.At), Pid: procs[in.Proc], Tid: 0, Args: kvMap(in.Args),
		})
	}
	if enc.err != nil {
		return enc.err
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// clampEnd resolves a still-open span to a zero-duration span at its
// begin time so the export is always well-formed.
func clampEnd(s *Span) Time {
	if s.Open() || s.End < s.Begin {
		return s.Begin
	}
	return s.End
}

// eventWriter emits comma-separated JSON values, remembering the first
// marshal error.
type eventWriter struct {
	w     io.Writer
	first bool
	err   error
}

func newEventWriter(w io.Writer) *eventWriter { return &eventWriter{w: w, first: true} }

func (e *eventWriter) add(v any) {
	if e.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		e.err = err
		return
	}
	if !e.first {
		if _, err := io.WriteString(e.w, ","); err != nil {
			e.err = err
			return
		}
	}
	e.first = false
	if _, err := e.w.Write(data); err != nil {
		e.err = err
	}
}

// lanePacker assigns spans to the lowest lane (tid) where they either
// nest inside the lane's innermost open span or start at/after its end.
// Each lane keeps a stack of open span end-times.
type lanePacker struct {
	lanes [][]Time
}

func newLanePacker() *lanePacker { return &lanePacker{} }

func (lp *lanePacker) place(begin, end Time) int {
	for li := range lp.lanes {
		stack := lp.lanes[li]
		// Close spans that ended at or before this span begins.
		for len(stack) > 0 && stack[len(stack)-1] <= begin {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 || end <= stack[len(stack)-1] {
			lp.lanes[li] = append(stack, end)
			return li + 1 // tids start at 1; 0 is metadata/instants
		}
		lp.lanes[li] = stack
	}
	lp.lanes = append(lp.lanes, []Time{end})
	return len(lp.lanes)
}

// ChromeString renders the trace to a string, for tests and small dumps.
func (r *Recorder) ChromeString() string {
	var b strings.Builder
	if err := r.WriteChrome(&b); err != nil {
		return fmt.Sprintf("trace: %v", err)
	}
	return b.String()
}
