package trace

import (
	"testing"
)

func TestNilRecorderIsSafeAndSilent(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	id := r.Begin(10, "mds.0", "transport", "rpc.create")
	if id != -1 {
		t.Fatalf("nil Begin returned %d, want -1", id)
	}
	r.End(id, 20)
	r.Add(0, 5, "client.0", "journal", "append")
	r.Instant(3, "mon", "mds", "epoch")
	if r.Len() != 0 || len(r.Spans()) != 0 || len(r.Instants()) != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if got := len(r.Cats()); got != 0 {
		t.Fatalf("nil Cats len = %d", got)
	}
}

func TestNilRecorderPathIsZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		id := r.Begin(10, "mds.0", "transport", "rpc.create")
		r.End(id, 20)
		r.Instant(5, "mds.0", "mds", "x")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestBeginEndAndOpenSpans(t *testing.T) {
	r := New()
	a := r.Begin(100, "mds.0", "transport", "rpc.create")
	b := r.Begin(150, "mds.0", "journal", "append")
	r.End(b, 180)
	r.End(a, 200)
	c := r.Begin(300, "client.0", "transport", "rpc.lookup") // left open

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[a].Begin != 100 || spans[a].End != 200 {
		t.Fatalf("span a = [%d,%d], want [100,200]", spans[a].Begin, spans[a].End)
	}
	if spans[b].End != 180 {
		t.Fatalf("span b end = %d, want 180", spans[b].End)
	}
	if !spans[c].Open() {
		t.Fatal("span c should be open")
	}
	cats := r.Cats()
	if cats["transport"] != 2 || cats["journal"] != 1 {
		t.Fatalf("cats = %v", cats)
	}
}

func TestMergePrefixesTracks(t *testing.T) {
	a := New()
	a.Add(0, 10, "mds.0", "transport", "rpc.create")
	a.Instant(5, "mon", "mds", "epoch")
	merged := New()
	merged.Merge(a, "run1:")
	merged.Merge(nil, "run2:")
	if merged.Spans()[0].Proc != "run1:mds.0" {
		t.Fatalf("merged span proc = %q", merged.Spans()[0].Proc)
	}
	if merged.Instants()[0].Proc != "run1:mon" {
		t.Fatalf("merged instant proc = %q", merged.Instants()[0].Proc)
	}
	// The source recorder must be untouched.
	if a.Spans()[0].Proc != "mds.0" {
		t.Fatalf("source recorder mutated: %q", a.Spans()[0].Proc)
	}
}
