package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the trace-event JSON shape for parsing in tests.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func parseChrome(t *testing.T, s string) *chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, s)
	}
	return &doc
}

func TestWriteChromeEmpty(t *testing.T) {
	var r *Recorder
	doc := parseChrome(t, r.ChromeString())
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(doc.TraceEvents))
	}
}

func TestWriteChromeBasics(t *testing.T) {
	r := New()
	r.Add(1_000, 3_000, "mds.0", "transport", "rpc.create", KV{"client", "client.0"})
	r.Add(2_000, 2_500, "mds.0", "journal", "journal.append")
	r.Add(0, 4_000, "client.0", "transport", "rpc.create")
	r.Instant(1_500, "mds.0", "mds", "cap.revoke")

	out := r.ChromeString()
	doc := parseChrome(t, out)

	// 2 process_name metadata + 3 spans + 1 instant.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(doc.TraceEvents), out)
	}
	byName := map[string]int{}
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Ph]++
		if ev.Ph == "M" {
			pids[ev.Args["name"]] = ev.Pid
		}
	}
	if byName["M"] != 2 || byName["X"] != 3 || byName["i"] != 1 {
		t.Fatalf("phases = %v", byName)
	}
	// pids assigned in sorted track order: client.0 < mds.0.
	if pids["client.0"] != 1 || pids["mds.0"] != 2 {
		t.Fatalf("pids = %v", pids)
	}
	// Simulated ns render as trace µs.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "rpc.create" && ev.Pid == pids["mds.0"] {
			if ev.Ts != 1.0 || ev.Dur != 2.0 {
				t.Fatalf("mds rpc.create ts=%v dur=%v, want 1/2 µs", ev.Ts, ev.Dur)
			}
			if ev.Args["client"] != "client.0" {
				t.Fatalf("args = %v", ev.Args)
			}
		}
	}
}

// TestLanePackingNestsAndSeparates checks that nested spans share a lane
// while overlapping non-nested spans are pushed to separate lanes.
func TestLanePackingNestsAndSeparates(t *testing.T) {
	r := New()
	r.Add(0, 100, "mds.0", "transport", "outer")
	r.Add(10, 50, "mds.0", "journal", "nested")   // nests in outer -> same lane
	r.Add(60, 90, "mds.0", "journal", "nested2")  // nests in outer -> same lane
	r.Add(50, 150, "mds.0", "transport", "cross") // overlaps outer, no nest -> new lane
	r.Add(120, 130, "mds.0", "rados", "later")    // after outer ends -> lane 1 again

	doc := parseChrome(t, r.ChromeString())
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.Tid
		}
	}
	if tids["nested"] != tids["outer"] || tids["nested2"] != tids["outer"] {
		t.Fatalf("nested spans left the outer lane: %v", tids)
	}
	if tids["cross"] == tids["outer"] {
		t.Fatalf("overlapping non-nested span shares a lane: %v", tids)
	}
	if tids["later"] != tids["outer"] {
		t.Fatalf("disjoint span did not reuse lane 1: %v", tids)
	}
}

// TestChromeDeterministic checks that rendering is byte-stable.
func TestChromeDeterministic(t *testing.T) {
	build := func() string {
		r := New()
		r.Add(5, 9, "b", "x", "s1", KV{"k", "v"}, KV{"a", "b"})
		r.Add(1, 4, "a", "x", "s2")
		r.Instant(2, "c", "y", "i1")
		return r.ChromeString()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("non-deterministic chrome output:\n%s\n---\n%s", a, b)
	}
}

// TestChromeOpenSpanClamped checks open spans render with zero duration.
func TestChromeOpenSpanClamped(t *testing.T) {
	r := New()
	r.Begin(100, "mds.0", "transport", "hung")
	out := r.ChromeString()
	doc := parseChrome(t, out)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Dur != 0 {
			t.Fatalf("open span dur = %v, want 0", ev.Dur)
		}
	}
	if !strings.Contains(out, "hung") {
		t.Fatal("open span missing from output")
	}
}
