// Package trace is the deterministic observability substrate: spans and
// instant events recorded on *simulated* time, and metric registries with
// Prometheus-style text export. It sits below the simulation kernel in
// the import graph (it knows nothing about sim), so every layer — engine,
// transport, metadata service, object store, clients — can record into
// one Recorder without cycles.
//
// The load-bearing invariant is that observation never perturbs the
// simulation: recording charges no virtual time, consumes no randomness,
// and the disabled path (a nil *Recorder) is a single pointer comparison
// with zero allocations, so a traced run and an untraced run execute the
// exact same event schedule. The exporters (Chrome trace-event JSON for
// Perfetto, Prometheus text) sort everything they emit, so output bytes
// do not depend on map iteration or goroutine completion order.
package trace

import "sync"

// Time is a point in virtual time in nanoseconds since simulation start.
// It mirrors sim.Time (also an int64 nanosecond count); the two convert
// with a plain cast. trace keeps its own alias so the package has no
// dependency on the simulation kernel.
type Time = int64

// KV is one span or metric annotation.
type KV struct {
	Key, Val string
}

// Span is one timed operation on a daemon's track.
type Span struct {
	Proc  string // track: the daemon or client ("mds.0", "client.3", "rados")
	Cat   string // subsystem category ("transport", "journal", "rados", "mds")
	Name  string // operation ("rpc.create", "journal.segwrite")
	Begin Time
	End   Time // openEnd until SpanID.End is called
	Args  []KV
}

// openEnd marks a span that has begun but not ended. Exporters clamp it
// to the begin time so a crash mid-span still yields a loadable trace.
const openEnd Time = -1

// Open reports whether the span is still open (never ended).
func (s *Span) Open() bool { return s.End == openEnd }

// Instant is a point event with no duration.
type Instant struct {
	Proc string
	Cat  string
	Name string
	At   Time
	Args []KV
}

// SpanID refers to an in-flight span; -1 is the no-op id handed out by a
// disabled recorder.
type SpanID int

// Recorder accumulates spans and instants in append-only buffers. A nil
// *Recorder is the disabled recorder: every method is safe to call and
// does nothing, which is how call sites get a zero-overhead off switch —
// no flags, no indirection, one nil check.
//
// All methods are safe for concurrent use. The simulated engine runs one
// process at a time and never contends, but the real execution backend
// records from many goroutines (handler tasks spawned per message), so
// the buffers are guarded by a mutex. Readers (Spans, Instants) return
// stable copies; recording while exporting is race-free, though spans
// recorded after the snapshot are naturally absent from it.
type Recorder struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant
}

// New returns an enabled recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder records (nil receivers do not).
func (r *Recorder) Enabled() bool { return r != nil }

// Begin opens a span and returns its id. Disabled recorders return -1.
func (r *Recorder) Begin(at Time, proc, cat, name string, args ...KV) SpanID {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{Proc: proc, Cat: cat, Name: name, Begin: at, End: openEnd, Args: args})
	return SpanID(len(r.spans) - 1)
}

// End closes a span opened by Begin. Ending the -1 id is a no-op, so
// callers never need to branch on whether tracing was on at Begin time.
func (r *Recorder) End(id SpanID, at Time) {
	if r == nil || id < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) >= len(r.spans) {
		return
	}
	r.spans[id].End = at
}

// Add records a complete span in one call.
func (r *Recorder) Add(begin, end Time, proc, cat, name string, args ...KV) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{Proc: proc, Cat: cat, Name: name, Begin: begin, End: end, Args: args})
}

// Instant records a point event.
func (r *Recorder) Instant(at Time, proc, cat, name string, args ...KV) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.instants = append(r.instants, Instant{Proc: proc, Cat: cat, Name: name, At: at, Args: args})
}

// Spans returns a snapshot of the recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Instants returns a snapshot of the recorded instants in recording order.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Instant, len(r.instants))
	copy(out, r.instants)
	return out
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Merge appends other's spans and instants, prefixing every track name
// with prefix (e.g. "fig3a/run03:"). It is how the bench harness folds
// many per-run recorders into one Perfetto file: each run becomes its own
// process group. Merging a nil or empty recorder is a no-op.
func (r *Recorder) Merge(other *Recorder, prefix string) {
	if r == nil || other == nil {
		return
	}
	spans, instants := other.Spans(), other.Instants()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range spans {
		s.Proc = prefix + s.Proc
		r.spans = append(r.spans, s)
	}
	for _, i := range instants {
		i.Proc = prefix + i.Proc
		r.instants = append(r.instants, i)
	}
}

// Cats returns the distinct span categories recorded, for coverage
// assertions ("did this run produce transport, journal, and rados
// spans?").
func (r *Recorder) Cats() map[string]int {
	out := make(map[string]int)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.spans {
		out[s.Cat]++
	}
	for _, i := range r.instants {
		out[i.Cat]++
	}
	return out
}
