package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cudele/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRegistry builds a fixture registry covering every sample kind and
// the Append merge path. perm registers multi-label series with their
// labels permuted; the rendered text must not depend on it.
func goldenRegistry(perm bool) *Registry {
	kv := func(a, b KV) []KV {
		if perm {
			return []KV{b, a}
		}
		return []KV{a, b}
	}
	h := &stats.Histogram{}
	for i := 0; i < 50; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}

	run := NewRegistry()
	run.Counter("cudele_mds_requests_total", "Requests served.", 120,
		kv(KV{"daemon", "mds.0"}, KV{"op", "create"})...)
	run.Counter("cudele_mds_requests_total", "Requests served.", 30,
		kv(KV{"daemon", "mds.1"}, KV{"op", "mkdir"})...)
	run.Gauge("cudele_mds_cpu_utilization", "Busy fraction.", 0.75, KV{"daemon", "mds.0"})
	run.Histogram("cudele_client_rpc_latency_seconds", "RPC round trips.", h,
		kv(KV{"daemon", "client.0"}, KV{"op", "create"})...)

	all := NewRegistry()
	all.Append(run, KV{"run", "golden/run00"})
	all.Counter("cudele_bench_runs_total", "Runs merged.", 1)
	return all
}

// TestPrometheusGolden pins the exact Prometheus text exposition bytes,
// and asserts label-permuted registrations render identically — the
// determinism the live /metrics endpoint and CI artifact diffs rely on.
func TestPrometheusGolden(t *testing.T) {
	got := goldenRegistry(false).PrometheusString()
	if permuted := goldenRegistry(true).PrometheusString(); permuted != got {
		t.Fatalf("label permutation changed the rendered text:\n--- in order ---\n%s\n--- permuted ---\n%s", got, permuted)
	}

	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test -run TestPrometheusGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus text drifted from %s (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
