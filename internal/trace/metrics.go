package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cudele/internal/stats"
)

// Registry is a per-run metric registry: a flat list of counter, gauge,
// and summary samples that daemons contribute at collection time.
//
// Daemons in this codebase already maintain their own counters
// (mds.Metrics, client.Stats, rados.Stats, sim.Resource accounting), so
// the registry is deliberately a *pull-time snapshot surface*, not a set
// of live instruments: each daemon's FillMetrics method copies its
// counters into the registry after the simulation drains. That keeps the
// hot paths untouched (observation cannot perturb the run) and makes the
// dump a pure function of simulation state.
//
// Export sorts families by name and series by label signature, so the
// rendered text is deterministic no matter what order daemons filled it
// in — which is what lets the bench harness merge registries from
// concurrently executed runs into one byte-stable dump.
type Registry struct {
	samples []sample
}

// sample is one series: a value (or histogram snapshot) under a metric
// family name with labels. Labels are canonicalized (sorted by key) at
// registration and the rendered signature cached, so two registrations
// that permute the same label set are the same series everywhere —
// lookup, sort, and text exposition.
type sample struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "summary"
	labels []KV   // canonical (key-sorted) order
	sig    string // cached labelSignature(labels)
	value  float64

	// summary-only fields, captured from a stats.Histogram.
	quantiles []quantile
	sum       float64
	count     uint64
}

type quantile struct {
	q float64
	v float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter records a monotonically accumulated total.
func (reg *Registry) Counter(name, help string, value float64, labels ...KV) {
	l, sig := canonLabels(labels)
	reg.samples = append(reg.samples, sample{name: name, help: help, typ: "counter", labels: l, sig: sig, value: value})
}

// Gauge records an instantaneous value (utilization, queue depth).
func (reg *Registry) Gauge(name, help string, value float64, labels ...KV) {
	l, sig := canonLabels(labels)
	reg.samples = append(reg.samples, sample{name: name, help: help, typ: "gauge", labels: l, sig: sig, value: value})
}

// summaryQuantiles are the quantiles exported for every histogram.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 1.0}

// Histogram records a latency distribution as a Prometheus summary
// (quantiles, sum, count), reusing the quarter-octave stats.Histogram
// that already sits on the client RPC paths. Values export in seconds,
// the Prometheus base unit.
func (reg *Registry) Histogram(name, help string, h *stats.Histogram, labels ...KV) {
	l, sig := canonLabels(labels)
	s := sample{name: name, help: help, typ: "summary", labels: l, sig: sig,
		sum: h.Sum().Seconds(), count: h.Count()}
	for _, q := range summaryQuantiles {
		s.quantiles = append(s.quantiles, quantile{q: q, v: h.Quantile(q).Seconds()})
	}
	reg.samples = append(reg.samples, s)
}

// Append merges other's samples into reg, adding the given labels to
// every series (the bench harness tags each run's registry with a run
// label). Appending a nil registry is a no-op.
func (reg *Registry) Append(other *Registry, labels ...KV) {
	if other == nil {
		return
	}
	for _, s := range other.samples {
		if len(labels) > 0 {
			merged := make([]KV, 0, len(labels)+len(s.labels))
			merged = append(merged, labels...)
			merged = append(merged, s.labels...)
			s.labels, s.sig = canonLabels(merged)
		}
		reg.samples = append(reg.samples, s)
	}
}

// Len returns the number of recorded series.
func (reg *Registry) Len() int { return len(reg.samples) }

// Value returns the value of the first series matching name and labels,
// for tests and table cells. The bool reports whether it was found.
func (reg *Registry) Value(name string, labels ...KV) (float64, bool) {
	_, want := canonLabels(labels)
	for _, s := range reg.samples {
		if s.name == name && s.sig == want {
			return s.value, true
		}
	}
	return 0, false
}

// formatValue renders a float the same way every time: integers without
// a decimal point, everything else in compact 'g' form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonLabels copies labels into canonical (key, then value) order and
// returns them with their rendered signature. Every registration path
// funnels through here, so a label set's order at the call site can
// never reach the exported text.
func canonLabels(labels []KV) ([]KV, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	l := make([]KV, len(labels))
	copy(l, labels)
	sort.SliceStable(l, func(i, j int) bool {
		if l[i].Key != l[j].Key {
			return l[i].Key < l[j].Key
		}
		return l[i].Val < l[j].Val
	})
	return l, labelSignature(l)
}

// labelSignature renders canonically ordered labels; callers outside
// canonLabels must pass labels that are already canonical.
func labelSignature(labels []KV) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, kv := range labels {
		parts = append(parts, kv.Key+"="+strconv.Quote(kv.Val))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func labelsWith(labels []KV, extra ...KV) string {
	all := make([]KV, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	_, sig := canonLabels(all)
	return sig
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: one # HELP / # TYPE header per family, then its series sorted
// by label signature.
func (reg *Registry) WritePrometheus(w io.Writer) error {
	byName := map[string][]*sample{}
	names := []string{}
	for i := range reg.samples {
		s := &reg.samples[i]
		if _, seen := byName[s.name]; !seen {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		series := byName[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, series[0].help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, series[0].typ)
		sort.SliceStable(series, func(i, j int) bool {
			return series[i].sig < series[j].sig
		})
		for _, s := range series {
			if s.typ == "summary" {
				for _, q := range s.quantiles {
					fmt.Fprintf(&b, "%s%s %s\n", name,
						labelsWith(s.labels, KV{"quantile", strconv.FormatFloat(q.q, 'g', -1, 64)}),
						formatValue(q.v))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, s.sig, formatValue(s.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, s.sig, s.count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", name, s.sig, formatValue(s.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PrometheusString renders the registry to a string.
func (reg *Registry) PrometheusString() string {
	var b strings.Builder
	_ = reg.WritePrometheus(&b)
	return b.String()
}
