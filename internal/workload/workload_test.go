package workload

import (
	"fmt"
	"testing"

	"cudele/internal/client"
	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/namespace"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

type harness struct {
	eng runtime.Runtime
	srv *mds.Server
	obj *rados.Cluster
}

func newHarness() *harness {
	eng := sim.NewEngine(31)
	cfg := model.Default()
	obj := rados.New(eng, cfg)
	return &harness{eng: eng, srv: mds.New(eng, cfg, obj), obj: obj}
}

func (h *harness) client(name string) *client.Client {
	c := client.New(h.eng, model.Default(), name, h.srv, h.obj)
	c.Mount()
	return c
}

func (h *harness) run(t *testing.T, fn func(p runtime.Task)) {
	t.Helper()
	h.eng.Spawn("test", fn)
	h.eng.RunAll()
}

func TestCreateMany(t *testing.T) {
	h := newHarness()
	c := h.client("c0")
	h.run(t, func(p runtime.Task) {
		dir, _ := c.Mkdir(p, namespace.RootIno, "d", 0755)
		created, busy, err := CreateMany(p, c, dir, 50, "f")
		if err != nil || created != 50 || busy != 0 {
			t.Errorf("create many = %d,%d,%v", created, busy, err)
		}
		names, _ := c.ReadDir(p, dir)
		if len(names) != 50 {
			t.Errorf("dir has %d names", len(names))
		}
	})
}

func TestCreateManyBusySkipped(t *testing.T) {
	h := newHarness()
	owner := h.client("owner")
	intruder := h.client("intruder")
	h.run(t, func(p runtime.Task) {
		owner.MkdirAll(p, "/mine", 0755)
		pol := &policy.Policy{
			Consistency: policy.ConsInvisible, Durability: policy.DurLocal,
			AllocatedInodes: 100, Interfere: policy.InterfereBlock,
		}
		owner.Decouple(p, "/mine", pol)
		dir, _ := intruder.Resolve(p, "/mine")
		created, busy, err := CreateMany(p, intruder, dir, 10, "x")
		if err != nil || created != 0 || busy != 10 {
			t.Errorf("blocked create many = %d,%d,%v", created, busy, err)
		}
	})
}

func TestCreateManyLocal(t *testing.T) {
	h := newHarness()
	c := h.client("c0")
	h.run(t, func(p runtime.Task) {
		c.MkdirAll(p, "/job", 0755)
		c.Decouple(p, "/job", &policy.Policy{
			Consistency: policy.ConsInvisible, Durability: policy.DurNone,
			AllocatedInodes: 100,
		})
		root, _ := c.DecoupledRoot()
		n, err := CreateManyLocal(p, c, root, 100, "f")
		if err != nil || n != 100 {
			t.Errorf("local create many = %d, %v", n, err)
		}
		// Grant exhausted on the next one.
		if _, err := CreateManyLocal(p, c, root, 1, "g"); err == nil {
			t.Error("grant exhaustion not reported")
		}
	})
}

func TestInterfereRevokesCaps(t *testing.T) {
	h := newHarness()
	a := h.client("a")
	intr := h.client("intr")
	h.run(t, func(p runtime.Task) {
		dirs := make([]namespace.Ino, 3)
		for i := range dirs {
			d, _ := a.Mkdir(p, namespace.RootIno, fmt.Sprintf("d%d", i), 0755)
			a.Create(p, d, "seed", 0644)
			dirs[i] = d
		}
		created, busy := Interfere(p, intr, dirs, 2)
		if created != 6 || busy != 0 {
			t.Errorf("interfere = %d,%d", created, busy)
		}
		for _, d := range dirs {
			if !h.srv.DirShared(d) {
				t.Errorf("dir %d not shared after interference", d)
			}
		}
	})
	if h.srv.Metrics().CapRevokes != 3 {
		t.Fatalf("revokes = %d, want 3", h.srv.Metrics().CapRevokes)
	}
}

func TestCompilePhases(t *testing.T) {
	phases := CompilePhases()
	if len(phases) != 5 {
		t.Fatalf("phases = %d", len(phases))
	}
	// untar must be the create-heaviest phase (the point of Fig 2).
	var untarCreates, maxOther int
	for _, ph := range phases {
		total := (ph.Creates + ph.Mkdirs) * ph.Units
		if ph.Name == "untar" {
			untarCreates = total
		} else if total > maxOther {
			maxOther = total
		}
	}
	if untarCreates <= maxOther {
		t.Fatalf("untar creates %d not dominant (max other %d)", untarCreates, maxOther)
	}
}

func TestRunPhase(t *testing.T) {
	h := newHarness()
	c := h.client("c0")
	h.run(t, func(p runtime.Task) {
		root, _ := c.Mkdir(p, namespace.RootIno, "build", 0755)
		ph := Phase{Name: "mini", Creates: 3, Mkdirs: 1, Lookups: 2, ReadDirs: 1, Renames: 1, Units: 4}
		phaseDir, _ := c.Mkdir(p, root, ph.Name, 0755)
		ops, err := RunPhase(p, c, phaseDir, ph)
		if err != nil {
			t.Errorf("run phase: %v", err)
			return
		}
		if ops < 4*(3+1+2+1) {
			t.Errorf("ops = %d", ops)
		}
		// The phase directory exists with content.
		dir, err := c.Resolve(p, "/build/mini")
		if err != nil {
			t.Errorf("phase dir: %v", err)
			return
		}
		names, _ := c.ReadDir(p, dir)
		if len(names) == 0 {
			t.Error("phase dir empty")
		}
	})
}

func TestRunAllCompilePhases(t *testing.T) {
	h := newHarness()
	c := h.client("c0")
	h.run(t, func(p runtime.Task) {
		root, _ := c.Mkdir(p, namespace.RootIno, "linux", 0755)
		for _, ph := range CompilePhases() {
			dir, err := c.Mkdir(p, root, ph.Name, 0755)
			if err != nil {
				t.Errorf("phase dir %s: %v", ph.Name, err)
				return
			}
			if _, err := RunPhase(p, c, dir, ph); err != nil {
				t.Errorf("phase %s: %v", ph.Name, err)
				return
			}
		}
	})
	if h.srv.Metrics().Requests == 0 {
		t.Fatal("no requests issued")
	}
}
