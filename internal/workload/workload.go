// Package workload generates the metadata workloads of the paper's
// evaluation: create-heavy private-directory jobs (checkpoint-restart,
// untar), interfering clients, the Linux-compile phase mix of Figure 2,
// and the namespace-sync writer of Figure 6c.
package workload

import (
	"errors"
	"fmt"

	"cudele/internal/client"
	"cudele/internal/namespace"
	"cudele/internal/runtime"
)

// CreateMany issues n file creates named <prefix>NNNNNN in dir via the
// RPCs mechanism, the create-heavy pattern of §V-B1. It stops at the
// first error other than EBUSY; EBUSY replies (blocked subtrees) are
// counted and skipped, modeling an interferer that keeps trying.
func CreateMany(p runtime.Task, c *client.Client, dir namespace.Ino, n int, prefix string) (created, busy int, err error) {
	for i := 0; i < n; i++ {
		_, cerr := c.Create(p, dir, fmt.Sprintf("%s%06d", prefix, i), 0644)
		switch {
		case cerr == nil:
			created++
		case errors.Is(cerr, namespace.ErrBusy):
			busy++
		default:
			return created, busy, cerr
		}
	}
	return created, busy, nil
}

// CreateManyLocal issues n decoupled creates (Append Client Journal).
func CreateManyLocal(p runtime.Task, c *client.Client, dir namespace.Ino, n int, prefix string) (int, error) {
	for i := 0; i < n; i++ {
		if _, err := c.LocalCreate(p, dir, fmt.Sprintf("%s%06d", prefix, i), 0644); err != nil {
			return i, err
		}
	}
	return n, nil
}

// Interfere creates perDir files in every listed directory — the
// interfering client of Figures 3b, 3c, and 6b, which triggers capability
// revocations and false sharing.
func Interfere(p runtime.Task, c *client.Client, dirs []namespace.Ino, perDir int) (created, busy int) {
	for round := 0; round < perDir; round++ {
		for di, dir := range dirs {
			_, err := c.Create(p, dir, fmt.Sprintf("intruder-%d-%06d", di, round), 0644)
			switch {
			case err == nil:
				created++
			case errors.Is(err, namespace.ErrBusy):
				busy++
			}
		}
	}
	return created, busy
}

// Phase is one stage of the compile-trace workload (Figure 2), defined by
// its metadata op mix per unit of work.
type Phase struct {
	Name string
	// Ops per work unit.
	Creates  int
	Mkdirs   int
	Lookups  int
	ReadDirs int
	Renames  int
	Units    int
}

// CompilePhases models compiling the Linux kernel in a CephFS mount
// (paper Fig 2): download (data-heavy, little metadata), untar (a flash
// crowd of creates — the highest metadata load), configure (stat/lookup
// heavy), make (mixed lookups and creates), install (creates + renames).
func CompilePhases() []Phase {
	return []Phase{
		{Name: "download", Lookups: 3, Creates: 1, Units: 30},
		{Name: "untar", Mkdirs: 1, Creates: 40, Lookups: 4, Units: 120},
		{Name: "configure", Lookups: 30, ReadDirs: 4, Creates: 1, Units: 60},
		{Name: "make", Lookups: 20, Creates: 5, Units: 150},
		{Name: "install", Creates: 5, Renames: 2, Lookups: 14, Units: 40},
	}
}

// RunPhase executes one phase inside dir (the phase's working directory,
// created by the caller so setup stays outside any measurement window).
// It returns the number of metadata ops issued.
func RunPhase(p runtime.Task, c *client.Client, dir namespace.Ino, ph Phase) (int, error) {
	ops := 0
	for u := 0; u < ph.Units; u++ {
		sub := dir
		for i := 0; i < ph.Mkdirs; i++ {
			d, err := c.Mkdir(p, sub, fmt.Sprintf("d%04d-%d", u, i), 0755)
			if err != nil {
				return ops, err
			}
			sub = d
			ops++
		}
		for i := 0; i < ph.Creates; i++ {
			if _, err := c.Create(p, sub, fmt.Sprintf("f%04d-%d", u, i), 0644); err != nil {
				return ops, err
			}
			ops++
		}
		for i := 0; i < ph.Lookups; i++ {
			// Existence checks over the phase directory; misses are
			// part of the workload.
			c.Lookup(p, sub, fmt.Sprintf("f%04d-%d", u, i%(ph.Creates+1)))
			ops++
		}
		for i := 0; i < ph.ReadDirs; i++ {
			if _, err := c.ReadDir(p, dir); err != nil {
				return ops, err
			}
			ops++
		}
		for i := 0; i < ph.Renames; i++ {
			src := fmt.Sprintf("f%04d-%d", u, i)
			if err := c.Rename(p, sub, src, sub, src+".done"); err == nil {
				ops++
			}
		}
	}
	return ops, nil
}
