package rados

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cudele/internal/model"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

func newTestCluster(t *testing.T) (runtime.Runtime, *Cluster) {
	t.Helper()
	e := sim.NewEngine(7)
	return e, New(e, model.Default())
}

// run executes fn as a sim process and drives the engine to completion.
func run(t *testing.T, e runtime.Runtime, fn func(p runtime.Task)) {
	t.Helper()
	e.Spawn("test", fn)
	e.RunAll()
	if err := e.LeakCheck(); err != nil {
		t.Fatalf("leaked procs: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "obj1"}
	run(t, e, func(p runtime.Task) {
		c.Write(p, oid, []byte("hello"))
		got, err := c.Read(p, oid)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if string(got) != "hello" {
			t.Errorf("read = %q, want hello", got)
		}
	})
}

func TestWriteOverwrites(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "obj1"}
	run(t, e, func(p runtime.Task) {
		c.Write(p, oid, []byte("aaaa"))
		c.Write(p, oid, []byte("bb"))
		got, _ := c.Read(p, oid)
		if string(got) != "bb" {
			t.Errorf("after overwrite = %q, want bb", got)
		}
	})
}

func TestAppend(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "log"}
	run(t, e, func(p runtime.Task) {
		c.Append(p, oid, []byte("ab"))
		c.Append(p, oid, []byte("cd"))
		got, _ := c.Read(p, oid)
		if string(got) != "abcd" {
			t.Errorf("appended = %q, want abcd", got)
		}
	})
}

func TestReadMissing(t *testing.T) {
	e, c := newTestCluster(t)
	run(t, e, func(p runtime.Task) {
		_, err := c.Read(p, ObjectID{Pool: "meta", Name: "nope"})
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
	})
}

func TestReadReturnsCopy(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "obj"}
	run(t, e, func(p runtime.Task) {
		c.Write(p, oid, []byte("orig"))
		got, _ := c.Read(p, oid)
		got[0] = 'X'
		again, _ := c.Read(p, oid)
		if string(again) != "orig" {
			t.Errorf("mutating a read corrupted the store: %q", again)
		}
	})
}

func TestRemoveAndExists(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "obj"}
	run(t, e, func(p runtime.Task) {
		c.Write(p, oid, []byte("x"))
		if !c.Exists(p, oid) {
			t.Error("object missing after write")
		}
		if err := c.Remove(p, oid); err != nil {
			t.Errorf("remove: %v", err)
		}
		if c.Exists(p, oid) {
			t.Error("object exists after remove")
		}
		if err := c.Remove(p, oid); !errors.Is(err, ErrNotFound) {
			t.Errorf("second remove err = %v, want ErrNotFound", err)
		}
	})
}

func TestStat(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "obj"}
	run(t, e, func(p runtime.Task) {
		c.Write(p, oid, make([]byte, 123))
		n, err := c.Stat(p, oid)
		if err != nil || n != 123 {
			t.Errorf("stat = %d,%v, want 123,nil", n, err)
		}
		_, err = c.Stat(p, ObjectID{Pool: "meta", Name: "gone"})
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("stat missing err = %v", err)
		}
	})
}

func TestOmap(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "meta", Name: "dir.1"}
	run(t, e, func(p runtime.Task) {
		c.OmapSet(p, oid, map[string][]byte{"b": []byte("2"), "a": []byte("1")})
		v, err := c.OmapGet(p, oid, "a")
		if err != nil || string(v) != "1" {
			t.Errorf("omap get a = %q,%v", v, err)
		}
		keys, err := c.OmapList(p, oid)
		if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
			t.Errorf("omap list = %v,%v", keys, err)
		}
		if err := c.OmapRemove(p, oid, "a"); err != nil {
			t.Errorf("omap remove: %v", err)
		}
		if _, err := c.OmapGet(p, oid, "a"); !errors.Is(err, ErrNotFound) {
			t.Errorf("removed key err = %v", err)
		}
		if err := c.OmapRemove(p, oid, "zz"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing key remove err = %v", err)
		}
	})
}

func TestList(t *testing.T) {
	e, c := newTestCluster(t)
	run(t, e, func(p runtime.Task) {
		c.Write(p, ObjectID{Pool: "a", Name: "x"}, nil)
		c.Write(p, ObjectID{Pool: "a", Name: "y"}, nil)
		c.Write(p, ObjectID{Pool: "b", Name: "z"}, nil)
		got := c.List(p, "a")
		if len(got) != 2 || got[0] != "x" || got[1] != "y" {
			t.Errorf("list a = %v", got)
		}
	})
}

func TestPlacementDeterministic(t *testing.T) {
	e, c := newTestCluster(t)
	_ = e
	oid := ObjectID{Pool: "meta", Name: "obj"}
	a := c.primary(oid)
	b := c.primary(oid)
	if a != b {
		t.Fatal("placement not deterministic")
	}
}

func TestPlacementSpreads(t *testing.T) {
	e, c := newTestCluster(t)
	_ = e
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		oid := ObjectID{Pool: "meta", Name: stripeName("j", i)}
		seen[c.primary(oid).ID] = true
	}
	if len(seen) != len(c.osds) {
		t.Fatalf("200 objects hit only %d/%d OSDs", len(seen), len(c.osds))
	}
}

func TestWriteChargesTime(t *testing.T) {
	e, c := newTestCluster(t)
	var took runtime.Time
	run(t, e, func(p runtime.Task) {
		start := p.Now()
		c.Write(p, ObjectID{Pool: "meta", Name: "big"}, make([]byte, 12<<20))
		took = p.Now() - start
	})
	// 12 MB at 120 MB/s disk is at least 100 ms.
	if took.Seconds() < 0.1 {
		t.Fatalf("12MB write took %.3fs, want >= 0.1s", took.Seconds())
	}
}

func TestStriperRoundTrip(t *testing.T) {
	e, c := newTestCluster(t)
	s := NewStriper(c)
	data := make([]byte, 10<<20) // 2.5 stripes at 4 MB
	for i := range data {
		data[i] = byte(i * 31)
	}
	run(t, e, func(p runtime.Task) {
		s.Write(p, "journal", "client0", data)
		got, err := s.Read(p, "journal", "client0")
		if err != nil {
			t.Errorf("striper read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("striper round trip mismatch")
		}
	})
	// 10 MB / 4 MB = 3 stripe objects.
	if n := c.Stats().Objects; n != 3 {
		t.Fatalf("stripe objects = %d, want 3", n)
	}
}

func TestStriperParallelBeatsSerial(t *testing.T) {
	// Striping across independent OSD disks should be faster than one
	// serial append of the same bytes to a single object.
	cfg := model.Default()
	data := make([]byte, 24<<20)

	e1 := sim.NewEngine(1)
	c1 := New(e1, cfg)
	var striped runtime.Time
	e1.Spawn("w", func(p runtime.Task) {
		start := p.Now()
		NewStriper(c1).Write(p, "j", "x", data)
		striped = p.Now() - start
	})
	e1.RunAll()

	e2 := sim.NewEngine(1)
	c2 := New(e2, cfg)
	var serial runtime.Time
	e2.Spawn("w", func(p runtime.Task) {
		start := p.Now()
		c2.Write(p, ObjectID{Pool: "j", Name: "x"}, data)
		serial = p.Now() - start
	})
	e2.RunAll()

	if float64(striped) > 0.8*float64(serial) {
		t.Fatalf("striped %v not faster than serial %v", striped, serial)
	}
}

func TestStriperRemove(t *testing.T) {
	e, c := newTestCluster(t)
	s := NewStriper(c)
	run(t, e, func(p runtime.Task) {
		s.Write(p, "j", "x", make([]byte, 9<<20))
		if err := s.Remove(p, "j", "x"); err != nil {
			t.Errorf("remove: %v", err)
		}
		if _, err := s.Read(p, "j", "x"); !errors.Is(err, ErrNotFound) {
			t.Errorf("read after remove err = %v", err)
		}
		if err := s.Remove(p, "j", "x"); !errors.Is(err, ErrNotFound) {
			t.Errorf("double remove err = %v", err)
		}
	})
}

func TestStriperEmptyWrite(t *testing.T) {
	e, c := newTestCluster(t)
	s := NewStriper(c)
	run(t, e, func(p runtime.Task) {
		s.Write(p, "j", "empty", nil)
		got, err := s.Read(p, "j", "empty")
		if err != nil || len(got) != 0 {
			t.Errorf("empty round trip = %v,%v", got, err)
		}
	})
}

func TestStats(t *testing.T) {
	e, c := newTestCluster(t)
	run(t, e, func(p runtime.Task) {
		c.Write(p, ObjectID{Pool: "a", Name: "x"}, make([]byte, 10))
		c.Read(p, ObjectID{Pool: "a", Name: "x"})
		c.Remove(p, ObjectID{Pool: "a", Name: "x"})
	})
	st := c.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 10 || st.BytesRead != 10 {
		t.Fatalf("byte stats = %+v", st)
	}
}

// Property: any sequence of write/append/read through the striper
// reassembles exactly.
func TestStriperQuick(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var want []byte
		for _, ch := range chunks {
			want = append(want, ch...)
		}
		cfg := model.Default()
		cfg.StripeUnit = 64 // tiny stripes to force many objects
		e := sim.NewEngine(3)
		c := New(e, cfg)
		s := NewStriper(c)
		ok := true
		e.Spawn("w", func(p runtime.Task) {
			s.Write(p, "j", "q", want)
			got, err := s.Read(p, "j", "q")
			if err != nil || !bytes.Equal(got, want) {
				ok = false
			}
		})
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
