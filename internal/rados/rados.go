// Package rados simulates a Ceph-like replicated object store (RADOS).
//
// Objects live in named pools and are placed onto OSDs (object storage
// daemons) by hashing, like Ceph placement groups. Object contents are
// stored for real — reads return exactly what was written — while the cost
// of each operation (fixed per-op latency, disk transfer on the target OSD,
// network transfer) is charged in virtual time against the owning OSD's
// simulated devices, so concurrent clients contend realistically.
//
// Alongside byte payloads, objects carry an omap (ordered key/value pairs),
// which the metadata store uses to hold dentries inside directory objects,
// mirroring CephFS.
package rados

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"cudele/internal/model"
	"cudele/internal/runtime"
	"cudele/internal/trace"
)

// ErrNotFound is returned when an object (or omap key) does not exist.
var ErrNotFound = errors.New("rados: object not found")

// ObjectID names an object within a pool.
type ObjectID struct {
	Pool string
	Name string
}

func (o ObjectID) String() string { return o.Pool + "/" + o.Name }

type object struct {
	data []byte
	omap map[string][]byte
}

// OSD is one simulated object storage daemon with its own disk channel.
type OSD struct {
	ID   int
	Disk runtime.Pipe
}

// Cluster is the simulated object store.
type Cluster struct {
	eng  runtime.Runtime
	cfg  model.Config
	osds []*OSD
	net  runtime.Pipe
	pgs  uint32

	objects map[ObjectID]*object

	// faults, when non-nil, may fail or tear writes (see fault.go).
	faults *FaultInjector

	// store, when non-nil, write-through persists every object to real
	// files (see filestore.go). Reads stay in memory; simulated device
	// charges are skipped because the fsync is the real cost.
	store *FileStore

	// statistics
	reads, writes, deletes uint64
	bytesRead, bytesWrit   uint64
	writeFaults            uint64
}

// New creates an object store with cfg.NumOSDs daemons on engine e.
func New(e runtime.Runtime, cfg model.Config) *Cluster {
	c := &Cluster{
		eng:     e,
		cfg:     cfg,
		net:     e.NewPipe("rados.net", cfg.NetBandwidth),
		pgs:     128,
		objects: make(map[ObjectID]*object),
	}
	for i := 0; i < cfg.NumOSDs; i++ {
		c.osds = append(c.osds, &OSD{
			ID:   i,
			Disk: e.NewPipe(fmt.Sprintf("osd.%d.disk", i), cfg.OSDDiskBandwidth),
		})
	}
	return c
}

// OSDs returns the cluster's OSDs (for utilization reporting).
func (c *Cluster) OSDs() []*OSD { return c.osds }

// Net returns the shared fabric pipe.
func (c *Cluster) Net() runtime.Pipe { return c.net }

// SetFaults installs (or, with nil, removes) a write-fault injector.
func (c *Cluster) SetFaults(f *FaultInjector) { c.faults = f }

// pg maps an object to a placement group, then to its primary OSD, like
// Ceph's CRUSH-by-hash placement.
func (c *Cluster) primary(oid ObjectID) *OSD {
	h := fnv.New32a()
	h.Write([]byte(oid.Pool))
	h.Write([]byte{0})
	h.Write([]byte(oid.Name))
	pg := h.Sum32() % c.pgs
	return c.osds[int(pg)%len(c.osds)]
}

// replicas returns the OSDs that hold oid, primary first.
func (c *Cluster) replicas(oid ObjectID) []*OSD {
	prim := c.primary(oid)
	n := c.cfg.Replicas
	if n > len(c.osds) {
		n = len(c.osds)
	}
	out := make([]*OSD, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.osds[(prim.ID+i)%len(c.osds)])
	}
	return out
}

// chargeWrite blocks p for the cost of writing n bytes to oid: one fixed
// round trip plus a disk transfer on every replica. Replica transfers are
// charged sequentially on their respective disks but those disks are
// independent pipes, so different objects still proceed in parallel.
func (c *Cluster) chargeWrite(p runtime.Task, oid ObjectID, n int64) {
	if c.store != nil {
		return // the durable write itself is the cost
	}
	rec := p.Runtime().Tracer()
	span := trace.SpanID(-1)
	if rec != nil { // guard so oid.String() never runs when disabled
		span = rec.Begin(int64(p.Now()), "rados", "rados", "rados.write",
			trace.KV{Key: "object", Val: oid.String()})
	}
	c.opLatency(p)
	c.net.Transfer(p, n)
	for _, osd := range c.replicas(oid) {
		osd.Disk.Transfer(p, n)
	}
	rec.End(span, int64(p.Now()))
}

// chargeRead blocks p for the cost of reading n bytes from oid's primary.
func (c *Cluster) chargeRead(p runtime.Task, oid ObjectID, n int64) {
	if c.store != nil {
		return // reads are served from memory on the real backend
	}
	rec := p.Runtime().Tracer()
	span := trace.SpanID(-1)
	if rec != nil {
		span = rec.Begin(int64(p.Now()), "rados", "rados", "rados.read",
			trace.KV{Key: "object", Val: oid.String()})
	}
	c.opLatency(p)
	c.primary(oid).Disk.Transfer(p, n)
	c.net.Transfer(p, n)
	rec.End(span, int64(p.Now()))
}

// opLatency charges one fixed round trip, skipped when a durable store
// is attached (real operations carry their own cost).
func (c *Cluster) opLatency(p runtime.Task) {
	if c.store != nil {
		return
	}
	p.Sleep(c.cfg.OSDOpLatency)
}

// persist write-through persists oid's current in-memory image. The
// copies are taken under the runtime's single-task discipline; the
// fsync runs outside it (Blocking) so other tasks overlap the I/O.
func (c *Cluster) persist(p runtime.Task, oid ObjectID) error {
	if c.store == nil {
		return nil
	}
	o := c.get(oid)
	if o == nil {
		return nil
	}
	data := append([]byte(nil), o.data...)
	var omap map[string][]byte
	if o.omap != nil {
		omap = make(map[string][]byte, len(o.omap))
		for k, v := range o.omap {
			omap[k] = append([]byte(nil), v...)
		}
	}
	var err error
	p.Runtime().Blocking(func() { err = c.store.Put(oid, data, omap) })
	return err
}

// persistRemove durably removes oid's on-disk image.
func (c *Cluster) persistRemove(p runtime.Task, oid ObjectID) error {
	if c.store == nil {
		return nil
	}
	var err error
	p.Runtime().Blocking(func() { err = c.store.Remove(oid) })
	return err
}

func (c *Cluster) get(oid ObjectID) *object {
	return c.objects[oid]
}

func (c *Cluster) getOrCreate(oid ObjectID) *object {
	o := c.objects[oid]
	if o == nil {
		o = &object{}
		c.objects[oid] = o
	}
	return o
}

// Write stores data as the full contents of oid, creating it if needed.
// An armed fault injector may fail the write cleanly (nothing persisted)
// or tear it (a prefix persisted, then an error).
func (c *Cluster) Write(p runtime.Task, oid ObjectID, data []byte) error {
	c.writes++
	c.bytesWrit += uint64(len(data))
	c.chargeWrite(p, oid, int64(len(data)))
	outcome, torn := c.faults.writeOutcome(oid, len(data))
	switch outcome {
	case faultError:
		c.writeFaults++
		c.recordFault(p, "write", oid)
		return faultErrf("write", oid)
	case faultTorn:
		c.writeFaults++
		c.recordFault(p, "torn-write", oid)
		o := c.getOrCreate(oid)
		o.data = append(o.data[:0], data[:torn]...)
		return faultErrf("torn write", oid)
	}
	o := c.getOrCreate(oid)
	o.data = append(o.data[:0], data...)
	return c.persist(p, oid)
}

// WriteBilled stores data as oid's contents but charges the devices as if
// billed bytes were transferred. The metadata journal's 2.5 KB/event
// footprint (paper §V-A) dwarfs its information content; billing lets the
// simulation carry the paper's transfer costs without materializing
// padding.
func (c *Cluster) WriteBilled(p runtime.Task, oid ObjectID, data []byte, billed int64) error {
	if billed < int64(len(data)) {
		billed = int64(len(data))
	}
	c.writes++
	c.bytesWrit += uint64(billed)
	c.chargeWrite(p, oid, billed)
	outcome, torn := c.faults.writeOutcome(oid, len(data))
	switch outcome {
	case faultError:
		c.writeFaults++
		c.recordFault(p, "write", oid)
		return faultErrf("write", oid)
	case faultTorn:
		c.writeFaults++
		c.recordFault(p, "torn-write", oid)
		o := c.getOrCreate(oid)
		o.data = append(o.data[:0], data[:torn]...)
		return faultErrf("torn write", oid)
	}
	o := c.getOrCreate(oid)
	o.data = append(o.data[:0], data...)
	return c.persist(p, oid)
}

// Append appends data to oid, creating it if needed.
func (c *Cluster) Append(p runtime.Task, oid ObjectID, data []byte) error {
	c.writes++
	c.bytesWrit += uint64(len(data))
	c.chargeWrite(p, oid, int64(len(data)))
	outcome, torn := c.faults.writeOutcome(oid, len(data))
	switch outcome {
	case faultError:
		c.writeFaults++
		c.recordFault(p, "append", oid)
		return faultErrf("append", oid)
	case faultTorn:
		c.writeFaults++
		c.recordFault(p, "torn-append", oid)
		o := c.getOrCreate(oid)
		o.data = append(o.data, data[:torn]...)
		return faultErrf("torn append", oid)
	}
	o := c.getOrCreate(oid)
	o.data = append(o.data, data...)
	return c.persist(p, oid)
}

// Read returns a copy of oid's contents.
func (c *Cluster) Read(p runtime.Task, oid ObjectID) ([]byte, error) {
	o := c.get(oid)
	if o == nil {
		c.opLatency(p) // a miss still costs a round trip
		return nil, fmt.Errorf("read %v: %w", oid, ErrNotFound)
	}
	c.reads++
	c.bytesRead += uint64(len(o.data))
	c.chargeRead(p, oid, int64(len(o.data)))
	out := make([]byte, len(o.data))
	copy(out, o.data)
	return out, nil
}

// Stat returns the byte size of oid.
func (c *Cluster) Stat(p runtime.Task, oid ObjectID) (int, error) {
	c.opLatency(p)
	o := c.get(oid)
	if o == nil {
		return 0, fmt.Errorf("stat %v: %w", oid, ErrNotFound)
	}
	return len(o.data), nil
}

// Remove deletes oid. Removing a missing object returns ErrNotFound.
func (c *Cluster) Remove(p runtime.Task, oid ObjectID) error {
	c.opLatency(p)
	if c.get(oid) == nil {
		return fmt.Errorf("remove %v: %w", oid, ErrNotFound)
	}
	c.deletes++
	delete(c.objects, oid)
	return c.persistRemove(p, oid)
}

// Exists reports whether oid exists, charging one round trip.
func (c *Cluster) Exists(p runtime.Task, oid ObjectID) bool {
	c.opLatency(p)
	return c.get(oid) != nil
}

// OmapSet stores key/value pairs in oid's omap, creating the object if
// needed. The cost is one write round trip plus the payload transfer.
// Omap updates are atomic: an injected fault fails the whole batch
// cleanly, never a torn subset.
func (c *Cluster) OmapSet(p runtime.Task, oid ObjectID, kv map[string][]byte) error {
	var n int64
	for k, v := range kv {
		n += int64(len(k) + len(v))
	}
	c.writes++
	c.bytesWrit += uint64(n)
	c.chargeWrite(p, oid, n)
	if outcome, _ := c.faults.writeOutcome(oid, 0); outcome != faultNone {
		c.writeFaults++
		c.recordFault(p, "omap-set", oid)
		return faultErrf("omap-set", oid)
	}
	o := c.getOrCreate(oid)
	if o.omap == nil {
		o.omap = make(map[string][]byte, len(kv))
	}
	for k, v := range kv {
		val := make([]byte, len(v))
		copy(val, v)
		o.omap[k] = val
	}
	return c.persist(p, oid)
}

// OmapGet returns the value stored under key in oid's omap.
func (c *Cluster) OmapGet(p runtime.Task, oid ObjectID, key string) ([]byte, error) {
	o := c.get(oid)
	if o == nil || o.omap == nil {
		c.opLatency(p)
		return nil, fmt.Errorf("omap-get %v[%q]: %w", oid, key, ErrNotFound)
	}
	v, ok := o.omap[key]
	if !ok {
		c.opLatency(p)
		return nil, fmt.Errorf("omap-get %v[%q]: %w", oid, key, ErrNotFound)
	}
	c.reads++
	c.bytesRead += uint64(len(v))
	c.chargeRead(p, oid, int64(len(key)+len(v)))
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// OmapRemove deletes key from oid's omap.
func (c *Cluster) OmapRemove(p runtime.Task, oid ObjectID, key string) error {
	c.opLatency(p)
	o := c.get(oid)
	if o == nil || o.omap == nil {
		return fmt.Errorf("omap-remove %v[%q]: %w", oid, key, ErrNotFound)
	}
	if _, ok := o.omap[key]; !ok {
		return fmt.Errorf("omap-remove %v[%q]: %w", oid, key, ErrNotFound)
	}
	delete(o.omap, key)
	return c.persist(p, oid)
}

// OmapList returns oid's omap keys in sorted order, charging a scan.
func (c *Cluster) OmapList(p runtime.Task, oid ObjectID) ([]string, error) {
	o := c.get(oid)
	if o == nil {
		c.opLatency(p)
		return nil, fmt.Errorf("omap-list %v: %w", oid, ErrNotFound)
	}
	var n int64
	keys := make([]string, 0, len(o.omap))
	for k := range o.omap {
		keys = append(keys, k)
		n += int64(len(k))
	}
	sort.Strings(keys)
	c.chargeRead(p, oid, n)
	return keys, nil
}

// List returns the names of all objects in pool, sorted. It charges one
// round trip per placement-group scan, approximating a pool listing.
func (c *Cluster) List(p runtime.Task, pool string) []string {
	if c.store == nil {
		p.Sleep(c.cfg.OSDOpLatency * runtime.Duration(len(c.osds)))
	}
	var names []string
	for oid := range c.objects {
		if oid.Pool == pool {
			names = append(names, oid.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Stats reports cumulative operation counters.
type Stats struct {
	Reads, Writes, Deletes  uint64
	BytesRead, BytesWritten uint64
	Objects                 int
	WriteFaults             uint64
}

// Stats returns a snapshot of cumulative counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Reads:        c.reads,
		Writes:       c.writes,
		Deletes:      c.deletes,
		BytesRead:    c.bytesRead,
		BytesWritten: c.bytesWrit,
		Objects:      len(c.objects),
		WriteFaults:  c.writeFaults,
	}
}
