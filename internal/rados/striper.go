package rados

import (
	"fmt"

	"cudele/internal/runtime"
)

// Striper splits large logical writes across fixed-size objects
// ("name.0000000000", "name.0000000001", ...) and pushes the stripes in
// parallel, which is how Global Persist leverages the collective bandwidth
// of the cluster's disks (paper §V-A).
type Striper struct {
	c    *Cluster
	unit int
}

// NewStriper returns a striper over c using the configured stripe unit.
func NewStriper(c *Cluster) *Striper {
	return &Striper{c: c, unit: c.cfg.StripeUnit}
}

// Unit returns the stripe object size in bytes.
func (s *Striper) Unit() int { return s.unit }

func stripeName(name string, idx int) string {
	return fmt.Sprintf("%s.%010d", name, idx)
}

// Write stores data under the logical name, striped into unit-sized
// objects written in parallel. It blocks p until every stripe is durable
// and reports the first stripe failure, if any — later stripes may have
// landed regardless, exactly like a real parallel push.
func (s *Striper) Write(p runtime.Task, pool, name string, data []byte) error {
	eng := p.Runtime()
	g := eng.NewGroup()
	var firstErr error
	for idx, off := 0, 0; off < len(data); idx, off = idx+1, off+s.unit {
		end := off + s.unit
		if end > len(data) {
			end = len(data)
		}
		oid := ObjectID{Pool: pool, Name: stripeName(name, idx)}
		chunk := data[off:end]
		g.Go("stripe-write", func(sp runtime.Task) {
			if err := s.c.Write(sp, oid, chunk); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	if len(data) == 0 {
		// Still record an empty head object so the name exists.
		return s.c.Write(p, ObjectID{Pool: pool, Name: stripeName(name, 0)}, nil)
	}
	g.Wait(p)
	return firstErr
}

// WriteBilled stores data under the logical name while charging the
// devices for billed bytes, striped and pushed in parallel exactly as
// Write would stripe billed bytes. The real payload lands in the first
// stripe; the remaining stripes exist only to carry their share of the
// transfer cost, so Read reassembles the payload unchanged.
func (s *Striper) WriteBilled(p runtime.Task, pool, name string, data []byte, billed int64) error {
	if billed < int64(len(data)) {
		billed = int64(len(data))
	}
	stripes := int((billed + int64(s.unit) - 1) / int64(s.unit))
	if stripes < 1 {
		stripes = 1
	}
	per := billed / int64(stripes)
	eng := p.Runtime()
	g := eng.NewGroup()
	var firstErr error
	for idx := 0; idx < stripes; idx++ {
		idx := idx
		oid := ObjectID{Pool: pool, Name: stripeName(name, idx)}
		g.Go("stripe-write", func(sp runtime.Task) {
			var err error
			if idx == 0 {
				err = s.c.WriteBilled(sp, oid, data, per)
			} else {
				err = s.c.WriteBilled(sp, oid, nil, per)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	g.Wait(p)
	return firstErr
}

// Read reassembles the logical object written by Write. Stripes are read
// in parallel.
func (s *Striper) Read(p runtime.Task, pool, name string) ([]byte, error) {
	eng := p.Runtime()

	// Discover the stripe count first (cheap stats until a miss).
	var n int
	for {
		oid := ObjectID{Pool: pool, Name: stripeName(name, n)}
		if s.c.get(oid) == nil {
			break
		}
		n++
	}
	if n == 0 {
		p.Sleep(s.c.cfg.OSDOpLatency)
		return nil, fmt.Errorf("striper read %s/%s: %w", pool, name, ErrNotFound)
	}
	chunks := make([][]byte, n)
	g := eng.NewGroup()
	var firstErr error
	for i := 0; i < n; i++ {
		i := i
		oid := ObjectID{Pool: pool, Name: stripeName(name, i)}
		g.Go("stripe-read", func(sp runtime.Task) {
			b, err := s.c.Read(sp, oid)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			chunks[i] = b
		})
	}
	g.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	var out []byte
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	return out, nil
}

// Remove deletes every stripe of the logical object.
func (s *Striper) Remove(p runtime.Task, pool, name string) error {
	removed := 0
	for i := 0; ; i++ {
		oid := ObjectID{Pool: pool, Name: stripeName(name, i)}
		if s.c.get(oid) == nil {
			break
		}
		if err := s.c.Remove(p, oid); err != nil {
			return err
		}
		removed++
	}
	if removed == 0 {
		return fmt.Errorf("striper remove %s/%s: %w", pool, name, ErrNotFound)
	}
	return nil
}
