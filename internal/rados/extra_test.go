package rados

import (
	"testing"

	"cudele/internal/model"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

func TestAccessors(t *testing.T) {
	e, c := newTestCluster(t)
	_ = e
	if len(c.OSDs()) != model.Default().NumOSDs {
		t.Fatalf("osds = %d", len(c.OSDs()))
	}
	if c.Net() == nil {
		t.Fatal("no fabric pipe")
	}
	s := NewStriper(c)
	if s.Unit() != model.Default().StripeUnit {
		t.Fatalf("unit = %d", s.Unit())
	}
}

func TestReplicasClampedToOSDCount(t *testing.T) {
	cfg := model.Default()
	cfg.Replicas = 10 // more than NumOSDs
	e := sim.NewEngine(1)
	c := New(e, cfg)
	oid := ObjectID{Pool: "p", Name: "o"}
	if got := len(c.replicas(oid)); got != cfg.NumOSDs {
		t.Fatalf("replicas = %d, want clamped to %d", got, cfg.NumOSDs)
	}
	// Replicas are distinct OSDs, primary first.
	seen := map[int]bool{}
	for _, osd := range c.replicas(oid) {
		if seen[osd.ID] {
			t.Fatalf("duplicate replica OSD %d", osd.ID)
		}
		seen[osd.ID] = true
	}
}

func TestWriteBilledChargesNominal(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "j", Name: "seg"}
	var took runtime.Time
	run(t, e, func(p runtime.Task) {
		start := p.Now()
		c.WriteBilled(p, oid, []byte("tiny"), 8<<20) // bill 8 MB
		took = p.Now() - start
		got, err := c.Read(p, oid)
		if err != nil || string(got) != "tiny" {
			t.Errorf("read back = %q, %v", got, err)
		}
	})
	// 8 MB x 3 replicas at 80 MB/s is at least 0.3 s.
	if took.Seconds() < 0.2 {
		t.Fatalf("billed write took %.3fs, want >= 0.2s", took.Seconds())
	}
	if c.Stats().BytesWritten < 8<<20 {
		t.Fatalf("billed bytes = %d", c.Stats().BytesWritten)
	}
}

func TestWriteBilledFloorsAtActualSize(t *testing.T) {
	e, c := newTestCluster(t)
	oid := ObjectID{Pool: "j", Name: "seg"}
	run(t, e, func(p runtime.Task) {
		c.WriteBilled(p, oid, make([]byte, 1000), 1) // billed < len(data)
	})
	if c.Stats().BytesWritten != 1000 {
		t.Fatalf("billed bytes = %d, want 1000", c.Stats().BytesWritten)
	}
}

func TestStriperWriteBilledRoundTrip(t *testing.T) {
	e, c := newTestCluster(t)
	s := NewStriper(c)
	payload := []byte("real journal bytes")
	run(t, e, func(p runtime.Task) {
		s.WriteBilled(p, "j", "client0", payload, 10<<20) // 3 stripes of cost
		got, err := s.Read(p, "j", "client0")
		if err != nil || string(got) != string(payload) {
			t.Errorf("read back = %q, %v", got, err)
		}
	})
	// 10 MB at 4 MB stripes = 3 stripe objects.
	if n := c.Stats().Objects; n != 3 {
		t.Fatalf("stripe objects = %d, want 3", n)
	}
}

func TestStriperWriteBilledZero(t *testing.T) {
	e, c := newTestCluster(t)
	s := NewStriper(c)
	run(t, e, func(p runtime.Task) {
		s.WriteBilled(p, "j", "empty", nil, 0)
		got, err := s.Read(p, "j", "empty")
		if err != nil || len(got) != 0 {
			t.Errorf("empty billed round trip = %v, %v", got, err)
		}
	})
}
