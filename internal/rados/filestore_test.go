package rados

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cudele/internal/model"
	"cudele/internal/realrt"
	"cudele/internal/runtime"
)

func TestFileStorePutLoadRoundTrip(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oid := ObjectID{Pool: "meta", Name: "dir/0x1"}
	omap := map[string][]byte{"k": []byte("v")}
	if err := fs.Put(oid, []byte("payload"), omap); err != nil {
		t.Fatal(err)
	}
	loaded, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	so, ok := loaded[oid]
	if !ok {
		t.Fatalf("object %v missing after reload (got %d objects)", oid, len(loaded))
	}
	if string(so.Data) != "payload" || string(so.Omap["k"]) != "v" {
		t.Fatalf("reloaded object corrupted: %+v", so)
	}
}

func TestFileStoreNameEscaping(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Names with separators, commas, and escapes must round-trip.
	oids := []ObjectID{
		{Pool: "a/b", Name: "x,y"},
		{Pool: "p", Name: "weird %2F name"},
		{Pool: "p,q", Name: "../escape"},
	}
	for i, oid := range oids {
		if err := fs.Put(oid, []byte{byte(i)}, nil); err != nil {
			t.Fatalf("put %v: %v", oid, err)
		}
	}
	loaded, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(oids) {
		t.Fatalf("loaded %d objects, want %d", len(loaded), len(oids))
	}
	for i, oid := range oids {
		so := loaded[oid]
		if so == nil || len(so.Data) != 1 || so.Data[0] != byte(i) {
			t.Fatalf("object %v did not round-trip: %+v", oid, so)
		}
	}
}

// TestFileStoreCrashBeforeRename is the torn-write test at the store
// layer: a Put that dies after writing its tmp file but before the
// rename must leave the previous committed image untouched, and the tmp
// litter must be swept on recovery.
func TestFileStoreCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	oid := ObjectID{Pool: "meta", Name: "obj"}
	if err := fs.Put(oid, []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	fs.CrashAfterTmpWrite = true
	if err := fs.Put(oid, []byte("v2"), nil); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("crashing Put returned %v, want ErrSimulatedCrash", err)
	}
	// The tmp file exists (the crash happened mid-protocol)...
	entries, _ := os.ReadDir(dir)
	var tmps int
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			tmps++
		}
	}
	if tmps == 0 {
		t.Fatal("no tmp file left by the simulated crash")
	}
	// ...and recovery sees only the old complete image.
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(loaded[oid].Data); got != "v1" {
		t.Fatalf("recovered %q, want the pre-crash image \"v1\"", got)
	}
	// The sweep removed the litter.
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("tmp file %s survived recovery", e.Name())
		}
	}
}

// TestKillDuringGlobalPersist is the end-to-end acceptance test: a
// client GlobalPersist is killed mid-object-write (after tmp, before
// rename); a fresh cluster recovering from the same directory must see
// no torn object — every recovered image is a complete previous version.
func TestKillDuringGlobalPersist(t *testing.T) {
	dir := t.TempDir()

	// First run: persist a complete journal image ("the old version").
	eng := realrt.New(1)
	c := New(eng, model.Default())
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachStore(fs); err != nil {
		t.Fatal(err)
	}
	oid := ObjectID{Pool: "journals", Name: "client.0"}
	eng.Spawn("writer", func(p runtime.Task) {
		if err := c.Write(p, oid, []byte("complete-v1")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	eng.RunAll()
	eng.Shutdown()

	// Second run over the same directory: the overwrite is killed after
	// the tmp write, the moment a real SIGKILL would be most damaging.
	eng2 := realrt.New(2)
	c2 := New(eng2, model.Default())
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.AttachStore(fs2); err != nil {
		t.Fatal(err)
	}
	fs2.CrashAfterTmpWrite = true
	eng2.Spawn("doomed", func(p runtime.Task) {
		if err := c2.Write(p, oid, []byte("torn-v2")); !errors.Is(err, ErrSimulatedCrash) {
			t.Errorf("doomed write returned %v, want ErrSimulatedCrash", err)
		}
	})
	eng2.RunAll()
	eng2.Shutdown()

	// Recovery: a fresh cluster over the same files. The object must be
	// exactly the old complete image — not torn, not half-new.
	eng3 := realrt.New(3)
	c3 := New(eng3, model.Default())
	fs3, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.AttachStore(fs3); err != nil {
		t.Fatal(err)
	}
	eng3.Spawn("reader", func(p runtime.Task) {
		data, err := c3.Read(p, oid)
		if err != nil {
			t.Errorf("read after recovery: %v", err)
			return
		}
		if string(data) != "complete-v1" {
			t.Errorf("recovered %q, want \"complete-v1\"", data)
		}
	})
	eng3.RunAll()
	eng3.Shutdown()
}

// TestFileStoreConcurrentPuts hammers the store from many goroutines;
// with -race it proves Put's unique-tmp protocol needs no file-level
// locking, and afterwards every object decodes to a complete image.
func TestFileStoreConcurrentPuts(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const versions = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			oid := ObjectID{Pool: "p", Name: fmt.Sprintf("obj%d", w%4)} // contended names
			for v := 0; v < versions; v++ {
				if err := fs.Put(oid, []byte(strings.Repeat("x", 100+v)), nil); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	loaded, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 {
		t.Fatalf("loaded %d objects, want 4", len(loaded))
	}
	for oid, so := range loaded {
		if len(so.Data) < 100 || len(so.Data) > 100+versions {
			t.Fatalf("object %v has torn size %d", oid, len(so.Data))
		}
	}
}

// TestFileStoreRemove checks deletion is durable and tolerant of
// missing files.
func TestFileStoreRemove(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	oid := ObjectID{Pool: "p", Name: "gone"}
	if err := fs.Put(oid, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(oid); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(oid); err != nil { // second remove: no-op
		t.Fatalf("removing a missing object: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, fileName(oid))); !os.IsNotExist(err) {
		t.Fatalf("file still present after Remove: %v", err)
	}
}
