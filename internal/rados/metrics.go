package rados

import (
	"strconv"

	"cudele/internal/trace"
)

// FillMetrics copies the object store's cumulative counters and the
// utilization accounting of every simulated device (per-OSD disks and
// the shared fabric) into a metric registry. Collection is pull-time:
// counters already maintained on the op path are read once, so the
// export cannot perturb a running simulation.
func (c *Cluster) FillMetrics(reg *trace.Registry) {
	reg.Counter("cudele_rados_reads_total", "Object read operations.", float64(c.reads))
	reg.Counter("cudele_rados_writes_total", "Object write operations.", float64(c.writes))
	reg.Counter("cudele_rados_deletes_total", "Object delete operations.", float64(c.deletes))
	reg.Counter("cudele_rados_bytes_read_total", "Bytes read from objects.", float64(c.bytesRead))
	reg.Counter("cudele_rados_bytes_written_total", "Bytes written to objects (billed).", float64(c.bytesWrit))
	reg.Gauge("cudele_rados_objects", "Objects currently stored.", float64(len(c.objects)))

	net := c.net.Snapshot()
	reg.Gauge("cudele_rados_net_utilization", "Mean busy fraction of the shared fabric.", net.Utilization)

	for _, osd := range c.osds {
		disk := osd.Disk.Snapshot()
		reg.Gauge("cudele_rados_osd_disk_utilization", "Mean busy fraction of one OSD's disk channel.",
			disk.Utilization, trace.KV{Key: "osd", Val: strconv.Itoa(osd.ID)})
	}
}
