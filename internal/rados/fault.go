package rados

import (
	"errors"
	"fmt"
	"math/rand"

	"cudele/internal/runtime"
)

// ErrIO is the error injected write faults surface. Callers that want to
// distinguish an injected fault from a genuine miss can errors.Is against
// it.
var ErrIO = errors.New("rados: injected I/O error")

// FaultInjector decides, per write, whether the operation fails — and if
// so, whether a torn prefix of the payload is persisted anyway. It is
// default-off: a nil injector (the Cluster default) never fires, so every
// calibrated table and committed baseline is untouched.
//
// The injector draws from its own rand.Source, never from the engine's,
// so arming it cannot perturb the jitter stream the calibrated model
// consumes: with probabilities at zero, a run with an armed injector is
// byte-identical to one without.
type FaultInjector struct {
	rng *rand.Rand

	// WriteErrorProb is the chance a write fails cleanly: nothing is
	// persisted and the caller gets ErrIO.
	WriteErrorProb float64

	// TornWriteProb is the chance a write fails torn: a strict prefix of
	// the payload is persisted and the caller still gets ErrIO. Drawn
	// only when the clean-error draw missed.
	TornWriteProb float64

	// MaxFaults bounds how many faults fire in total (0 = unlimited), so
	// adversarial schedules still terminate: retry loops eventually see a
	// fault-free store.
	MaxFaults int

	// Match restricts injection to matching objects (nil = all objects).
	Match func(oid ObjectID) bool

	fired int
}

// NewFaultInjector returns an injector seeded with its own source.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// Fired reports how many faults the injector has injected so far.
func (f *FaultInjector) Fired() int { return f.fired }

type faultOutcome int

const (
	faultNone  faultOutcome = iota
	faultError              // nothing persisted
	faultTorn               // a strict prefix persisted
)

// writeOutcome draws the fate of one write of n payload bytes. For a torn
// outcome it also returns how many bytes land (in [0, n)).
func (f *FaultInjector) writeOutcome(oid ObjectID, n int) (faultOutcome, int) {
	if f == nil {
		return faultNone, 0
	}
	if f.MaxFaults > 0 && f.fired >= f.MaxFaults {
		return faultNone, 0
	}
	if f.Match != nil && !f.Match(oid) {
		return faultNone, 0
	}
	if f.WriteErrorProb > 0 && f.rng.Float64() < f.WriteErrorProb {
		f.fired++
		return faultError, 0
	}
	if f.TornWriteProb > 0 && f.rng.Float64() < f.TornWriteProb {
		f.fired++
		if n <= 0 {
			return faultError, 0
		}
		return faultTorn, f.rng.Intn(n)
	}
	return faultNone, 0
}

func faultErrf(kind string, oid ObjectID) error {
	return fmt.Errorf("%s %v: %w", kind, oid, ErrIO)
}

// recordFault notes one injected write fault in the flight recorder (all
// injected store faults share the "rados" ring), so a chaos dump shows
// which object writes failed just before a violation. One nil check when
// the recorder is off.
func (c *Cluster) recordFault(p runtime.Task, kind string, oid ObjectID) {
	if fl := c.eng.Flight(); fl != nil {
		fl.Record(int64(p.Now()), "rados", "rados", "fault."+kind, oid.String())
	}
}
