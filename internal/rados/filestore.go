package rados

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// FileStore persists objects as files under a data directory — the real
// backend's durability layer. Every update follows the same protocol:
//
//	write <object>.tmpN  →  fsync(tmp)  →  rename(tmp, <object>)  →  fsync(dir)
//
// The rename is the commit point. A crash before it leaves the previous
// complete image (or nothing, for a new object) plus an ignorable tmp
// file; a crash after it leaves the new complete image. There is no
// state in which a reader observes a torn object, which is what lets
// DurGlobal keep its meaning on a real disk: persistence is a protocol,
// not a single write call.
//
// Put and Remove are safe to call concurrently (the object store calls
// them outside the runtime's run lock, via Runtime.Blocking). Two
// concurrent Puts of the same object each build a complete image under
// a unique tmp name and the later rename wins, so the file is always
// some complete version.
type FileStore struct {
	dir string
	seq atomic.Uint64

	// mu serializes directory fsyncs; file contents need no locking
	// (unique tmp names + atomic rename).
	mu sync.Mutex

	// CrashAfterTmpWrite, when true, makes Put stop after the tmp file
	// is written and fsynced — before the rename — and return
	// ErrSimulatedCrash. It models a kill at the most dangerous moment
	// of a GlobalPersist; the kill-during-persist test uses it.
	CrashAfterTmpWrite bool
}

// ErrSimulatedCrash is returned by Put when CrashAfterTmpWrite is set.
var ErrSimulatedCrash = errors.New("rados: simulated crash before rename")

// storedObject is the on-disk encoding of one object.
type storedObject struct {
	Data []byte
	Omap map[string][]byte
}

// OpenFileStore creates (or reopens) a file store rooted at dir.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (fs *FileStore) Dir() string { return fs.dir }

// fileName maps an object id to a flat, filesystem-safe file name.
func fileName(oid ObjectID) string {
	return url.QueryEscape(oid.Pool) + "," + url.QueryEscape(oid.Name)
}

func parseFileName(name string) (ObjectID, bool) {
	pool, obj, ok := strings.Cut(name, ",")
	if !ok {
		return ObjectID{}, false
	}
	p, err1 := url.QueryUnescape(pool)
	n, err2 := url.QueryUnescape(obj)
	if err1 != nil || err2 != nil {
		return ObjectID{}, false
	}
	return ObjectID{Pool: p, Name: n}, true
}

// Put durably replaces oid's on-disk image with data+omap.
func (fs *FileStore) Put(oid ObjectID, data []byte, omap map[string][]byte) error {
	final := filepath.Join(fs.dir, fileName(oid))
	tmp := fmt.Sprintf("%s.tmp%d", final, fs.seq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&storedObject{Data: data, Omap: omap}); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if fs.CrashAfterTmpWrite {
		return ErrSimulatedCrash
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return fs.syncDir()
}

// Remove durably deletes oid's on-disk image. Removing a missing object
// is a no-op (memory is authoritative for existence errors).
func (fs *FileStore) Remove(oid ObjectID) error {
	err := os.Remove(filepath.Join(fs.dir, fileName(oid)))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return fs.syncDir()
}

// syncDir fsyncs the store directory so renames and unlinks are durable.
func (fs *FileStore) syncDir() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads every committed object image under the store directory,
// removing leftover tmp files from interrupted Puts (they are
// uncommitted by definition). It is the recovery path: AttachStore uses
// it to rebuild the in-memory object map after a restart or crash.
func (fs *FileStore) Load() (map[ObjectID]*storedObject, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	out := make(map[ObjectID]*storedObject)
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(fs.dir, name))
			continue
		}
		oid, ok := parseFileName(name)
		if !ok {
			continue
		}
		f, err := os.Open(filepath.Join(fs.dir, name))
		if err != nil {
			return nil, err
		}
		var so storedObject
		err = gob.NewDecoder(f).Decode(&so)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("rados: decode %s: %w", name, err)
		}
		out[oid] = &so
	}
	return out, nil
}

// AttachStore makes the cluster durable: existing on-disk objects are
// loaded into the in-memory map (recovery), and from then on every
// mutation is written through to disk with the write→fsync→rename
// protocol. With a store attached the simulated device charges are
// skipped — the fsync is the cost — so attach only on the real backend.
func (c *Cluster) AttachStore(fs *FileStore) error {
	loaded, err := fs.Load()
	if err != nil {
		return err
	}
	for oid, so := range loaded {
		c.objects[oid] = &object{data: so.Data, omap: so.Omap}
	}
	c.store = fs
	return nil
}

// Store returns the attached file store, nil when the cluster is purely
// simulated.
func (c *Cluster) Store() *FileStore { return c.store }
