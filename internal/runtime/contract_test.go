// Contract tests: every execution backend must present the same
// semantics through the runtime interfaces — spawn, sleep ordering,
// signal fire/wait, group join, resource FIFO queueing, pipe transfer,
// leak accounting, shutdown reaping. The simulated backend additionally
// guarantees exact virtual timestamps; these tests assert only what
// both backends promise (ordering and completion), which is exactly the
// contract the protocol stack is allowed to rely on.
package runtime_test

import (
	"sync/atomic"
	"testing"
	"time"

	"cudele/internal/realrt"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

// backends lists every runtime implementation under contract.
func backends() map[string]func() runtime.Runtime {
	return map[string]func() runtime.Runtime{
		"sim":  func() runtime.Runtime { return sim.NewEngine(7) },
		"real": func() runtime.Runtime { return realrt.New(7) },
	}
}

func forEachBackend(t *testing.T, fn func(t *testing.T, rt runtime.Runtime)) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			fn(t, mk())
		})
	}
}

func TestContractKind(t *testing.T) {
	if k := sim.NewEngine(1).Kind(); k != runtime.SimKind {
		t.Fatalf("sim engine Kind = %v", k)
	}
	if k := realrt.New(1).Kind(); k != runtime.RealKind {
		t.Fatalf("real engine Kind = %v", k)
	}
}

func TestContractSpawnRuns(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		var ran atomic.Int64
		for i := 0; i < 10; i++ {
			rt.Spawn("w", func(p runtime.Task) { ran.Add(1) })
		}
		rt.RunAll()
		if err := rt.LeakCheck(); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 10 {
			t.Fatalf("ran %d tasks, want 10", ran.Load())
		}
		rt.Shutdown()
	})
}

func TestContractSleepOrdering(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		var order []string
		rt.Spawn("slow", func(p runtime.Task) {
			p.Sleep(30 * time.Millisecond)
			order = append(order, "slow")
		})
		rt.Spawn("fast", func(p runtime.Task) {
			p.Sleep(5 * time.Millisecond)
			order = append(order, "fast")
		})
		rt.RunAll()
		rt.Shutdown()
		if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
			t.Fatalf("completion order = %v, want [fast slow]", order)
		}
	})
}

func TestContractClockAdvances(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		var before, after runtime.Time
		rt.Spawn("timer", func(p runtime.Task) {
			before = p.Now()
			p.Sleep(10 * time.Millisecond)
			after = p.Now()
		})
		rt.RunAll()
		rt.Shutdown()
		if elapsed := after - before; elapsed < runtime.Time(10*time.Millisecond) {
			t.Fatalf("sleep advanced the clock by %v, want >= 10ms", time.Duration(elapsed))
		}
	})
}

func TestContractSignal(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		sig := rt.NewSignal()
		var got any
		rt.Spawn("waiter", func(p runtime.Task) {
			got = sig.Wait(p)
		})
		rt.Spawn("firer", func(p runtime.Task) {
			p.Sleep(5 * time.Millisecond)
			sig.Fire("payload")
		})
		rt.RunAll()
		rt.Shutdown()
		if got != "payload" {
			t.Fatalf("waiter got %v, want payload", got)
		}
		if !sig.Fired() {
			t.Fatal("signal not marked fired")
		}
	})
}

func TestContractSignalWaitAfterFire(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		sig := rt.NewSignal()
		var got any
		rt.Spawn("late", func(p runtime.Task) {
			sig.Fire(42)
			got = sig.Wait(p) // already fired: returns immediately
		})
		rt.RunAll()
		rt.Shutdown()
		if got != 42 {
			t.Fatalf("late waiter got %v, want 42", got)
		}
	})
}

func TestContractGroup(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		g := rt.NewGroup()
		var done atomic.Int64
		for i := 0; i < 5; i++ {
			d := time.Duration(i+1) * time.Millisecond
			g.Go("worker", func(p runtime.Task) {
				p.Sleep(d)
				done.Add(1)
			})
		}
		var sawAll bool
		rt.Spawn("waiter", func(p runtime.Task) {
			g.Wait(p)
			sawAll = done.Load() == 5
		})
		rt.RunAll()
		rt.Shutdown()
		if !sawAll {
			t.Fatalf("group Wait returned with %d/5 workers done", done.Load())
		}
	})
}

func TestContractResourceSerializes(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		res := rt.NewResource("cpu", 1)
		var inside, maxInside atomic.Int64
		for i := 0; i < 4; i++ {
			rt.Spawn("w", func(p runtime.Task) {
				res.Acquire(p)
				if cur := inside.Add(1); cur > maxInside.Load() {
					maxInside.Store(cur)
				}
				p.Sleep(2 * time.Millisecond)
				inside.Add(-1)
				res.Release()
			})
		}
		rt.RunAll()
		rt.Shutdown()
		if maxInside.Load() != 1 {
			t.Fatalf("capacity-1 resource admitted %d holders at once", maxInside.Load())
		}
		if res.Acquires() != 4 {
			t.Fatalf("acquires = %d, want 4", res.Acquires())
		}
	})
}

func TestContractResourceFIFO(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		res := rt.NewResource("disk", 1)
		var order []int
		// Holder takes the unit first; contenders then queue in spawn
		// order (they arrive separated by sleeps so arrival is ordered
		// on both backends).
		rt.Spawn("holder", func(p runtime.Task) {
			res.Acquire(p)
			p.Sleep(30 * time.Millisecond)
			res.Release()
		})
		for i := 0; i < 3; i++ {
			i := i
			delay := time.Duration(i+1) * 5 * time.Millisecond
			rt.Spawn("contender", func(p runtime.Task) {
				p.Sleep(delay)
				res.Acquire(p)
				order = append(order, i)
				res.Release()
			})
		}
		rt.RunAll()
		rt.Shutdown()
		if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
			t.Fatalf("grant order = %v, want [0 1 2]", order)
		}
	})
}

func TestContractPipeTransfers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		pipe := rt.NewPipe("net", 1<<20) // 1 MiB/s
		var start, end runtime.Time
		rt.Spawn("sender", func(p runtime.Task) {
			start = p.Now()
			pipe.Transfer(p, 1<<15) // 32 KiB -> ~31ms
			end = p.Now()
		})
		rt.RunAll()
		rt.Shutdown()
		if pipe.Bytes() != 1<<15 {
			t.Fatalf("pipe moved %d bytes, want %d", pipe.Bytes(), 1<<15)
		}
		if elapsed := time.Duration(end - start); elapsed < 25*time.Millisecond {
			t.Fatalf("transfer took %v, want >= ~31ms of charged time", elapsed)
		}
	})
}

func TestContractBlocking(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		var ran bool
		rt.Spawn("io", func(p runtime.Task) {
			p.Runtime().Blocking(func() { ran = true })
		})
		rt.RunAll()
		rt.Shutdown()
		if !ran {
			t.Fatal("Blocking body did not run")
		}
	})
}

func TestContractLeakCheckReportsParked(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		sig := rt.NewSignal() // never fired
		rt.Spawn("stuck", func(p runtime.Task) {
			sig.Wait(p)
		})
		rt.RunAll() // quiesces with one parked task
		if err := rt.LeakCheck(); err == nil {
			t.Fatal("LeakCheck = nil with a parked task, want error")
		}
		if n := rt.Shutdown(); n != 1 {
			t.Fatalf("Shutdown reaped %d tasks, want 1", n)
		}
		if err := rt.LeakCheck(); err != nil {
			t.Fatalf("LeakCheck after Shutdown: %v", err)
		}
	})
}

func TestContractShutdownReapsSleepers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		sig := rt.NewSignal()
		rt.Spawn("parked", func(p runtime.Task) { sig.Wait(p) })
		rt.Spawn("deepsleep", func(p runtime.Task) {
			sig.Wait(p)
			p.Sleep(time.Hour)
		})
		rt.RunAll()
		if n := rt.Shutdown(); n != 2 {
			t.Fatalf("Shutdown reaped %d tasks, want 2", n)
		}
	})
}

func TestContractRandDeterministicPerSeed(t *testing.T) {
	forEachBackend(t, func(t *testing.T, rt runtime.Runtime) {
		a := rt.Rand().Intn(1 << 30)
		rt.Shutdown()

		var again runtime.Runtime
		switch rt.Kind() {
		case runtime.SimKind:
			again = sim.NewEngine(7)
		default:
			again = realrt.New(7)
		}
		b := again.Rand().Intn(1 << 30)
		again.Shutdown()
		if a != b {
			t.Fatalf("same seed drew %d then %d", a, b)
		}
	})
}
