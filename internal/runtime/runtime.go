// Package runtime is the execution seam between the Cudele protocol
// stack and whatever actually runs it. The client, metadata service,
// monitor, object store, and transport program against these interfaces
// — spawn, sleep, now, block/wake, rand, tracer — and never against a
// concrete engine, so the same protocol code runs on two backends:
//
//   - the deterministic discrete-event simulator (internal/sim), where
//     tasks are coroutine-style processes on a virtual clock and device
//     costs are charged by a calibrated model; and
//   - the real backend (internal/realrt), where tasks are goroutines,
//     the clock is wall time, and durability means fsynced files.
//
// The contract both backends honor (and that contract_test.go checks):
// at most one task executes protocol code at a time. The simulator gets
// this for free (the engine resumes one process at a time); the real
// backend serializes tasks with a run lock that is released whenever a
// task sleeps, blocks, or enters Blocking. Protocol state therefore
// needs no fine-grained locking in either mode, and the simulated
// schedule stays byte-identical to what it was before the seam existed.
package runtime

import (
	"math/rand"
	"time"

	"cudele/internal/obs"
	"cudele/internal/trace"
)

// Time is a point in time in nanoseconds since the runtime started:
// virtual nanoseconds on the simulator, wall-clock nanoseconds on the
// real backend.
type Time int64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration is a span of time in nanoseconds. It is time.Duration, so
// literals and formatting work unchanged on both backends.
type Duration = time.Duration

// Kind discriminates the backends for the rare call sites that must
// branch — e.g. transport.Wire substitutes a real message round trip
// for the simulated latency charge — without import cycles or
// type assertions on concrete engines.
type Kind int

const (
	// SimKind is the deterministic discrete-event simulator.
	SimKind Kind = iota
	// RealKind runs tasks as goroutines on wall time.
	RealKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == RealKind {
		return "real"
	}
	return "sim"
}

// Clock is the read-only time source shared by every layer.
type Clock interface {
	// Now returns the current time (virtual or wall).
	Now() Time
}

// Task is one logical thread of protocol execution: a simulation
// process or a goroutine. All Task methods must be called from the
// task's own execution context.
type Task interface {
	Clock
	// Name returns the name given at spawn.
	Name() string
	// Sleep suspends the task for d (virtual or wall nanoseconds).
	Sleep(d Duration)
	// Yield gives other runnable tasks a chance to run.
	Yield()
	// Runtime returns the runtime that owns this task.
	Runtime() Runtime
}

// Runtime is what a backend provides: task spawning, synchronization
// primitives, device models, randomness, and observability.
type Runtime interface {
	Clock
	// Kind reports which backend this is.
	Kind() Kind
	// Rand returns the runtime's deterministic random source. Both
	// backends serialize task execution, so tasks may use it without
	// extra locking; never use it from outside a task.
	Rand() *rand.Rand
	// Tracer returns the span recorder; nil means tracing is disabled.
	Tracer() *trace.Recorder
	// SetTracer installs a span recorder (nil disables tracing).
	SetTracer(r *trace.Recorder)
	// Flight returns the chaos flight recorder; nil means recording is
	// disabled (a nil *obs.Flight drops every Record call).
	Flight() *obs.Flight
	// SetFlight installs a flight recorder (nil disables recording).
	// Like SetTracer, install it before spawning tasks.
	SetFlight(f *obs.Flight)

	// Spawn starts a new task executing fn.
	Spawn(name string, fn func(t Task))
	// NewSignal creates a one-shot condition.
	NewSignal() Signal
	// NewGroup creates a task completion group.
	NewGroup() Group
	// NewResource creates a FIFO server with the given capacity.
	NewResource(name string, capacity int) Resource
	// NewPipe creates a bandwidth pipe (rate in bytes per second).
	NewPipe(name string, rate float64) Pipe

	// Blocking runs fn outside the runtime's single-task discipline:
	// the real backend releases its run lock around fn so true I/O
	// (fsync, socket round trips) does not stall every other task; the
	// simulator calls fn inline. fn must not touch protocol state.
	Blocking(fn func())

	// Exclusive runs fn from OUTSIDE task context with the same
	// exclusion guarantee tasks enjoy: no task executes protocol code
	// while fn runs. The real backend takes the run lock around fn; the
	// simulator calls fn inline (and panics if the event loop is
	// running, since external callers cannot interleave with it safely).
	// The admin endpoint uses this to scrape live cluster state from an
	// HTTP handler goroutine.
	Exclusive(fn func())

	// RunAll drives the runtime until no task can make further
	// progress and returns the final time. On the simulator that means
	// the event queue drained; on the real backend it means every task
	// finished or is blocked with nothing left to wake it.
	RunAll() Time
	// LeakCheck returns an error naming any still-live tasks; call it
	// after RunAll to assert the workload drained cleanly.
	LeakCheck() error
	// Shutdown reaps every live task (unwinding blocked ones) so no
	// goroutine outlives the runtime, and returns the number reaped.
	Shutdown() int
}

// Signal is a one-shot condition: tasks Wait on it and are all released
// when Fire is called, receiving the fired value. Firing twice panics.
type Signal interface {
	Fire(val any)
	Fired() bool
	Wait(t Task) any
}

// Group waits for a set of tasks to finish, like a WaitGroup.
type Group interface {
	Add(delta int)
	Done()
	// Go spawns fn as a task tracked by the group.
	Go(name string, fn func(t Task))
	// Wait blocks t until the group count reaches zero.
	Wait(t Task)
}

// Resource is a server with integer capacity and a FIFO queue; it
// tracks busy time so utilization can be reported.
type Resource interface {
	Name() string
	Capacity() int
	InUse() int
	QueueLen() int
	// Acquire takes one unit, blocking t in FIFO order until one frees.
	Acquire(t Task)
	// TryAcquire takes a unit if immediately available.
	TryAcquire() bool
	// Release returns one unit, handing it to the head waiter if any.
	Release()
	// Use acquires, holds for service duration d, then releases.
	Use(t Task, d Duration)
	Utilization() float64
	UtilizationMark() ResourceMark
	UtilizationSince(mark ResourceMark) float64
	Snapshot() ResourceSnapshot
	Acquires() uint64
	MeanWait() Duration
}

// Pipe models a store-and-forward link or device with fixed bandwidth
// in bytes per second; transfers serialize FIFO through it.
type Pipe interface {
	// Transfer moves n bytes through the pipe, blocking t for queueing
	// plus n/rate seconds of service time.
	Transfer(t Task, n int64)
	Rate() float64
	Bytes() uint64
	Utilization() float64
	UtilizationMark() ResourceMark
	UtilizationSince(mark ResourceMark) float64
	Snapshot() ResourceSnapshot
}

// ResourceMark is a snapshot of resource accounting, for windowed
// utilization measurements.
type ResourceMark struct {
	At       Time
	BusyArea float64
}

// ResourceSnapshot is a copy of a resource's utilization accounting at
// a point in time.
type ResourceSnapshot struct {
	Name     string
	Capacity int
	InUse    int
	QueueLen int

	Acquires    uint64
	BusyArea    float64 // integral of in-use units over time, unit·seconds
	WaitTotal   Duration
	Utilization float64 // mean busy fraction since runtime start
	At          Time    // when the snapshot was taken
}
