// Package obs is the live observability plane: per-subtree heat
// accounting (the load signal a dynamic balancer consumes), a fixed-size
// flight recorder for chaos post-mortems, and the real-backend HTTP
// admin endpoint that serves both alongside the metric registry.
//
// Everything here follows the codebase's observation contract: disabled
// observers are nil and cost one pointer check on the hot path, enabled
// observers read the runtime clock but never charge time, never consume
// engine randomness, and never change control flow — so a simulated run
// with heat accounting or the flight recorder on stays byte-identical
// to one without (see bench.TestHeatDoesNotPerturb).
package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultHalfLife is the heat decay half-life used when NewHeat is given
// a non-positive one: long enough to smooth create bursts, short enough
// that a migrated-away subtree cools within a minute.
const DefaultHalfLife = 10 * time.Second

// HeatKey identifies one heat cell: a placed subtree on a rank.
type HeatKey struct {
	Subtree string
	Rank    int
}

// heatCell is one (subtree, rank) cell's exponentially-decaying
// accumulators. Values are decayed event sums: adding x at time t and
// reading at t+halfLife yields x/2.
type heatCell struct {
	last    int64 // runtime nanoseconds of the last decay
	reads   float64
	writes  float64
	merges  float64
	bytes   float64
	waitSec float64 // queue-wait seconds, decayed like the counters
}

// decay folds the time since the cell's last update into its
// accumulators: v *= 2^(-(now-last)/halfLife).
func (c *heatCell) decay(now int64, halfLifeNS float64) {
	dt := now - c.last
	c.last = now
	if dt <= 0 {
		return
	}
	f := math.Exp2(-float64(dt) / halfLifeNS)
	c.reads *= f
	c.writes *= f
	c.merges *= f
	c.bytes *= f
	c.waitSec *= f
}

// Heat is the per-subtree, per-rank load accountant. A nil *Heat is the
// disabled accountant: every method no-ops, so record sites guard with
// one nil check and pay nothing when heat accounting is off.
//
// Timestamps are runtime nanoseconds (virtual on the simulator, wall on
// the real backend), passed as plain int64 so this package stays below
// internal/runtime in the import graph. The mutex exists for the real
// backend, where an admin scrape reads Snapshot concurrently with
// recording tasks; on the simulator it is uncontended.
type Heat struct {
	mu         sync.Mutex
	halfLifeNS float64
	cells      map[HeatKey]*heatCell
}

// NewHeat returns a heat accountant with the given decay half-life
// (non-positive means DefaultHalfLife).
func NewHeat(halfLife time.Duration) *Heat {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &Heat{
		halfLifeNS: float64(halfLife),
		cells:      make(map[HeatKey]*heatCell),
	}
}

// HalfLife returns the accountant's decay half-life.
func (h *Heat) HalfLife() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.halfLifeNS)
}

// cell returns the (subtree, rank) cell, decayed to now, creating it on
// first touch. Caller holds h.mu.
func (h *Heat) cell(now int64, subtree string, rank int) *heatCell {
	k := HeatKey{Subtree: subtree, Rank: rank}
	c := h.cells[k]
	if c == nil {
		c = &heatCell{last: now}
		h.cells[k] = c
	}
	c.decay(now, h.halfLifeNS)
	return c
}

// RecordOp accounts one metadata RPC served by rank for the given
// subtree: a read or a write, plus the time the request waited for the
// rank's CPU. Steady-state calls are allocation-free.
func (h *Heat) RecordOp(now int64, subtree string, rank int, write bool, wait time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	c := h.cell(now, subtree, rank)
	if write {
		c.writes++
	} else {
		c.reads++
	}
	if wait > 0 {
		c.waitSec += wait.Seconds()
	}
	h.mu.Unlock()
}

// RecordMerge accounts a batch of Volatile Apply events (one-shot job or
// streamed chunk) applied by rank for the given subtree, with its
// nominal transfer bytes.
func (h *Heat) RecordMerge(now int64, subtree string, rank int, events int, bytes int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	c := h.cell(now, subtree, rank)
	c.merges += float64(events)
	if bytes > 0 {
		c.bytes += float64(bytes)
	}
	h.mu.Unlock()
}

// HeatCell is one cell of a heat snapshot, decayed to the snapshot time.
type HeatCell struct {
	Subtree     string  `json:"subtree"`
	Rank        int     `json:"rank"`
	Reads       float64 `json:"reads"`
	Writes      float64 `json:"writes"`
	Merges      float64 `json:"merges"`
	Bytes       float64 `json:"bytes"`
	WaitSeconds float64 `json:"wait_seconds"`
	Load        float64 `json:"load"` // reads + writes + merges
}

// Snapshot returns every cell decayed to now, sorted by subtree then
// rank. A nil or empty accountant returns nil.
func (h *Heat) Snapshot(now int64) []HeatCell {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := make([]HeatCell, 0, len(h.cells))
	for k, c := range h.cells {
		c.decay(now, h.halfLifeNS)
		out = append(out, HeatCell{
			Subtree: k.Subtree, Rank: k.Rank,
			Reads: c.reads, Writes: c.writes, Merges: c.merges,
			Bytes: c.bytes, WaitSeconds: c.waitSec,
			Load: c.reads + c.writes + c.merges,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subtree != out[j].Subtree {
			return out[i].Subtree < out[j].Subtree
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// RankLoad is one rank's aggregate decayed load and its share of the
// cluster total.
type RankLoad struct {
	Rank  int     `json:"rank"`
	Load  float64 `json:"load"`
	Share float64 `json:"share"`
}

// HeatReport is the /heat endpoint's document: the full cell map, the
// per-rank aggregation, and the imbalance factor (max rank load over
// mean rank load — 1.0 is perfectly balanced) that a balancer would act
// on.
type HeatReport struct {
	Cells     []HeatCell `json:"cells"`
	Ranks     []RankLoad `json:"ranks"`
	Imbalance float64    `json:"imbalance"`
}

// NewReport aggregates a snapshot into per-rank loads and the imbalance
// factor.
func NewReport(cells []HeatCell) HeatReport {
	byRank := map[int]float64{}
	for _, c := range cells {
		byRank[c.Rank] += c.Load
	}
	ranks := make([]RankLoad, 0, len(byRank))
	total := 0.0
	for r, l := range byRank {
		ranks = append(ranks, RankLoad{Rank: r, Load: l})
		total += l
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].Rank < ranks[j].Rank })
	maxLoad := 0.0
	for i := range ranks {
		if total > 0 {
			ranks[i].Share = ranks[i].Load / total
		}
		if ranks[i].Load > maxLoad {
			maxLoad = ranks[i].Load
		}
	}
	rep := HeatReport{Cells: cells, Ranks: ranks}
	if n := len(ranks); n > 0 && total > 0 {
		rep.Imbalance = maxLoad / (total / float64(n))
	}
	return rep
}
