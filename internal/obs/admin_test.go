package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cudele/internal/trace"
)

// fakeSource is a test Source with canned registry and heat data.
type fakeSource struct {
	heatErr error
	scrapes int
}

func (s *fakeSource) Metrics() (*trace.Registry, error) {
	s.scrapes++
	reg := trace.NewRegistry()
	reg.Counter("cudele_test_scrapes_total", "Scrapes served.", float64(s.scrapes))
	return reg, nil
}

func (s *fakeSource) Heat() ([]HeatCell, error) {
	if s.heatErr != nil {
		return nil, s.heatErr
	}
	return []HeatCell{{Subtree: "/job0", Rank: 0, Writes: 10, Load: 10}}, nil
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoints drives a real listener through its lifecycle:
// healthz always up, data endpoints 503 before a source is installed and
// live afterwards, metrics freshly collected per scrape.
func TestAdminEndpoints(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics without source = %d, want 503", code)
	}
	if code, _ := get(t, base+"/heat"); code != http.StatusServiceUnavailable {
		t.Errorf("/heat without source = %d, want 503", code)
	}

	src := &fakeSource{}
	a.SetSource(src)
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "cudele_test_scrapes_total 1") {
		t.Errorf("/metrics = %d %q, want scrape 1", code, body)
	}
	// Refreshable mid-run: the second scrape re-collects.
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, "cudele_test_scrapes_total 2") {
		t.Errorf("/metrics second scrape = %q, want scrape 2", body)
	}

	code, body := get(t, base+"/heat")
	if code != 200 {
		t.Fatalf("/heat = %d, want 200", code)
	}
	var rep HeatReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/heat does not parse: %v\n%s", err, body)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Subtree != "/job0" || rep.Imbalance != 1 {
		t.Errorf("/heat report = %+v, want one /job0 cell, imbalance 1", rep)
	}

	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d, want 200 with content", code)
	}
}

// TestAdminSourceErrors asserts scrape errors surface as 500s rather
// than empty 200s.
func TestAdminSourceErrors(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetSource(&fakeSource{heatErr: errors.New("engine busy")})
	if code, body := get(t, "http://"+a.Addr()+"/heat"); code != 500 || !strings.Contains(body, "engine busy") {
		t.Errorf("/heat with failing source = %d %q, want 500 engine busy", code, body)
	}
}

// TestAdminSwappableSource asserts SetSource replaces the scrape target
// while the listener keeps serving — the bench process runs many
// clusters back to back through one endpoint.
func TestAdminSwappableSource(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	first, second := &fakeSource{}, &fakeSource{}
	a.SetSource(first)
	get(t, "http://"+a.Addr()+"/metrics")
	a.SetSource(second)
	get(t, "http://"+a.Addr()+"/metrics")
	if first.scrapes != 1 || second.scrapes != 1 {
		t.Errorf("scrapes = %d/%d, want 1/1", first.scrapes, second.scrapes)
	}
}

// TestAdminCloseStopsServing asserts Close tears the listener down.
func TestAdminCloseStopsServing(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	client := http.Client{Timeout: 2 * time.Second}
	if resp, err := client.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		resp.Body.Close()
		t.Error("listener still serving after Close")
	}
}
