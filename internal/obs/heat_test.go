package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

const sec = int64(time.Second)

// TestHeatHalfLife pins the decay math: mass added at t reads back
// halved at t+halfLife, quartered at t+2*halfLife.
func TestHeatHalfLife(t *testing.T) {
	h := NewHeat(10 * time.Second)
	for i := 0; i < 100; i++ {
		h.RecordOp(0, "/a", 0, true, 0)
	}
	at := func(now int64) float64 {
		cells := h.Snapshot(now)
		if len(cells) != 1 {
			t.Fatalf("snapshot has %d cells, want 1", len(cells))
		}
		return cells[0].Writes
	}
	for _, tc := range []struct {
		now  int64
		want float64
	}{
		{0, 100},
		{10 * sec, 50},
		{20 * sec, 25},
	} {
		if got := at(tc.now); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("writes at t=%ds: got %g, want %g", tc.now/sec, got, tc.want)
		}
	}
}

// TestHeatDecayIsLazy asserts decay folds in per touch, not per read:
// two adds a half-life apart combine as x/2 + x.
func TestHeatDecayIsLazy(t *testing.T) {
	h := NewHeat(10 * time.Second)
	h.RecordMerge(0, "/a", 1, 8, 1024)
	h.RecordMerge(10*sec, "/a", 1, 8, 1024)
	cells := h.Snapshot(10 * sec)
	if len(cells) != 1 {
		t.Fatalf("snapshot has %d cells, want 1", len(cells))
	}
	if got, want := cells[0].Merges, 12.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("merges: got %g, want %g", got, want)
	}
	if got, want := cells[0].Bytes, 1536.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("bytes: got %g, want %g", got, want)
	}
}

// TestHeatSnapshotOrderAndLoad asserts snapshots sort by subtree then
// rank and Load sums reads+writes+merges.
func TestHeatSnapshotOrderAndLoad(t *testing.T) {
	h := NewHeat(0)
	h.RecordOp(0, "/b", 1, false, 0)
	h.RecordOp(0, "/a", 2, true, time.Millisecond)
	h.RecordOp(0, "/a", 0, false, 0)
	h.RecordMerge(0, "/a", 0, 3, 0)
	cells := h.Snapshot(0)
	want := []HeatKey{{"/a", 0}, {"/a", 2}, {"/b", 1}}
	if len(cells) != len(want) {
		t.Fatalf("snapshot has %d cells, want %d", len(cells), len(want))
	}
	for i, k := range want {
		if cells[i].Subtree != k.Subtree || cells[i].Rank != k.Rank {
			t.Errorf("cell %d is (%s,%d), want (%s,%d)",
				i, cells[i].Subtree, cells[i].Rank, k.Subtree, k.Rank)
		}
	}
	if got := cells[0].Load; got != 4 { // 1 read + 3 merged events
		t.Errorf("(/a,0) load = %g, want 4", got)
	}
	if got := cells[1].WaitSeconds; math.Abs(got-0.001) > 1e-12 {
		t.Errorf("(/a,2) wait = %g, want 0.001", got)
	}
}

// TestHeatNilDisabled asserts the disabled accountant is a nil pointer
// whose methods all no-op — the hot-path contract.
func TestHeatNilDisabled(t *testing.T) {
	var h *Heat
	h.RecordOp(0, "/a", 0, true, time.Second)
	h.RecordMerge(0, "/a", 0, 1, 1)
	if got := h.Snapshot(0); got != nil {
		t.Errorf("nil heat snapshot = %v, want nil", got)
	}
	if got := h.HalfLife(); got != 0 {
		t.Errorf("nil heat half-life = %v, want 0", got)
	}
}

// TestHeatRecordSteadyStateAllocs asserts the record path is
// allocation-free once a cell exists — heat accounting must not put
// pressure on the GC of a real-backend run.
func TestHeatRecordSteadyStateAllocs(t *testing.T) {
	h := NewHeat(0)
	h.RecordOp(0, "/a", 0, true, time.Millisecond)
	now := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += int64(time.Millisecond)
		h.RecordOp(now, "/a", 0, true, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("RecordOp steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHeatReportImbalance pins the report aggregation: per-rank loads,
// shares, and the max/mean imbalance factor.
func TestHeatReportImbalance(t *testing.T) {
	cells := []HeatCell{
		{Subtree: "/a", Rank: 0, Load: 300},
		{Subtree: "/b", Rank: 0, Load: 100},
		{Subtree: "/c", Rank: 1, Load: 100},
		{Subtree: "/d", Rank: 2, Load: 100},
	}
	rep := NewReport(cells)
	if len(rep.Ranks) != 3 {
		t.Fatalf("report has %d ranks, want 3", len(rep.Ranks))
	}
	if got := rep.Ranks[0].Load; got != 400 {
		t.Errorf("rank 0 load = %g, want 400", got)
	}
	if got := rep.Ranks[0].Share; math.Abs(got-400.0/600.0) > 1e-12 {
		t.Errorf("rank 0 share = %g, want %g", got, 400.0/600.0)
	}
	// max 400 over mean 200 = 2.0
	if got := rep.Imbalance; math.Abs(got-2.0) > 1e-12 {
		t.Errorf("imbalance = %g, want 2.0", got)
	}
	if rep := NewReport(nil); rep.Imbalance != 0 || len(rep.Ranks) != 0 {
		t.Errorf("empty report = %+v, want zero", rep)
	}
}

// TestHeatConcurrentRecordSnapshot hammers the accountant from recorder
// and scraper goroutines — run under -race, this is the real-backend
// admin-scrape safety test.
func TestHeatConcurrentRecordSnapshot(t *testing.T) {
	h := NewHeat(time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				now := int64(i) * int64(time.Microsecond)
				h.RecordOp(now, "/sub", g%2, i%2 == 0, time.Microsecond)
				h.RecordMerge(now, "/sub", g%2, 1, 64)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = h.Snapshot(int64(i) * int64(time.Microsecond))
		}
	}()
	wg.Wait()
	if cells := h.Snapshot(int64(2000) * int64(time.Microsecond)); len(cells) != 2 {
		t.Errorf("snapshot has %d cells, want 2", len(cells))
	}
}
