package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestFlightRingEviction asserts the ring keeps exactly the last N
// events per daemon, oldest-first.
func TestFlightRingEviction(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(int64(i), "mds.0", "mds", fmt.Sprintf("op%d", i), "")
	}
	evs := f.Events("mds.0")
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("op%d", 6+i); ev.Name != want {
			t.Errorf("event %d is %q, want %q", i, ev.Name, want)
		}
	}
}

// TestFlightPartialRing asserts a ring that never filled returns only
// what was recorded, in order.
func TestFlightPartialRing(t *testing.T) {
	f := NewFlight(8)
	f.Record(1, "client", "client", "crash", "")
	f.Record(2, "client", "client", "restart", "")
	evs := f.Events("client")
	if len(evs) != 2 || evs[0].Name != "crash" || evs[1].Name != "restart" {
		t.Fatalf("events = %+v, want [crash restart]", evs)
	}
}

// TestFlightNilDisabled asserts the disabled recorder is a nil pointer
// whose methods all no-op.
func TestFlightNilDisabled(t *testing.T) {
	var f *Flight
	f.Record(0, "mds.0", "mds", "op", "")
	if f.Events("mds.0") != nil || f.Procs() != nil || f.Dump() != "" {
		t.Error("nil recorder returned data")
	}
}

// TestFlightDump pins the dump rendering: daemons sorted, one header
// per daemon, timestamped event lines with optional detail.
func TestFlightDump(t *testing.T) {
	f := NewFlight(0) // DefaultFlightEvents
	f.Record(2_000_000, "mds.0", "mds", "create", "client chaos-main")
	f.Record(3_000_000, "mds.0", "mds", "crash", "")
	f.Record(1_000_000, "chaos", "fault", "client-crash", "client:main")
	dump := f.Dump()
	wantOrder := []string{
		"[chaos]",
		"t=1ms", "fault client-crash client:main",
		"[mds.0]",
		"t=2ms", "mds create client chaos-main",
		"t=3ms", "mds crash",
	}
	pos := 0
	for _, want := range wantOrder {
		i := strings.Index(dump[pos:], want)
		if i < 0 {
			t.Fatalf("dump missing %q after offset %d:\n%s", want, pos, dump)
		}
		pos += i
	}
}
