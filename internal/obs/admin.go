package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"cudele/internal/trace"
)

// Source is what the admin endpoint scrapes: a live cluster (or the
// most recently finished one). Metrics must return a freshly collected
// registry each call — the endpoint is refreshable mid-run — and Heat
// the current decayed heat snapshot (nil when heat accounting is off).
type Source interface {
	Metrics() (*trace.Registry, error)
	Heat() ([]HeatCell, error)
}

// Admin is the real-backend HTTP admin listener. It serves:
//
//	/healthz       liveness ("ok" once the listener is up)
//	/metrics       the Prometheus text registry, collected per scrape
//	/heat          the JSON heat map per subtree x rank (HeatReport)
//	/debug/pprof/  net/http/pprof for CPU and heap profiles
//
// The source is swappable so one listener can outlive the clusters it
// observes (a bench process runs many back to back); with no source
// installed the data endpoints answer 503 while /healthz stays 200.
type Admin struct {
	ln  net.Listener
	srv *http.Server
	src atomic.Value // of adminSource
}

// adminSource wraps a Source so atomic.Value always stores one concrete
// type (it rejects differing dynamic types).
type adminSource struct{ s Source }

// NewAdmin binds addr (":0" picks a free port) and starts serving. The
// returned Admin reports the bound address via Addr; install a Source
// with SetSource and shut the listener down with Close.
func NewAdmin(addr string) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a := &Admin{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/heat", a.handleHeat)
	// pprof on the private mux, not http.DefaultServeMux, so embedding
	// processes never leak profiling handlers onto other listeners.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address (host:port).
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// SetSource installs (or replaces) the scrape source. Safe to call
// while requests are in flight.
func (a *Admin) SetSource(s Source) { a.src.Store(adminSource{s: s}) }

// source returns the current source, nil when none is installed.
func (a *Admin) source() Source {
	v := a.src.Load()
	if v == nil {
		return nil
	}
	return v.(adminSource).s
}

// Close shuts the listener down.
func (a *Admin) Close() error { return a.srv.Close() }

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	src := a.source()
	if src == nil {
		http.Error(w, "no active run", http.StatusServiceUnavailable)
		return
	}
	reg, err := src.Metrics()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

func (a *Admin) handleHeat(w http.ResponseWriter, _ *http.Request) {
	src := a.source()
	if src == nil {
		http.Error(w, "no active run", http.StatusServiceUnavailable)
		return
	}
	cells, err := src.Heat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if cells == nil {
		cells = []HeatCell{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(NewReport(cells))
}
