package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// FlightEvent is one entry in a daemon's flight-recorder ring.
type FlightEvent struct {
	At     int64 // runtime nanoseconds
	Proc   string
	Cat    string
	Name   string
	Detail string
}

// flightRing is a fixed-size overwrite ring of events for one daemon.
type flightRing struct {
	buf  []FlightEvent
	next int
	full bool
}

func (r *flightRing) record(ev FlightEvent) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// events returns the ring's contents oldest-first.
func (r *flightRing) events() []FlightEvent {
	if !r.full {
		return append([]FlightEvent(nil), r.buf[:r.next]...)
	}
	out := make([]FlightEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Flight is the chaos flight recorder: per-daemon fixed-size rings of
// the most recent protocol events, kept so that when a chaos oracle
// flags a violation, the last-N events before it can be dumped next to
// the failing fault plan. A nil *Flight is the disabled recorder —
// Record no-ops — so the hot paths pay one nil check when it is off.
//
// Recording only overwrites ring slots (no growth after the first lap),
// reads only the caller-supplied clock, and never touches engine
// randomness, so enabling it cannot change a deterministic schedule.
type Flight struct {
	mu      sync.Mutex
	perProc int
	rings   map[string]*flightRing
}

// DefaultFlightEvents is the per-daemon ring size used when NewFlight is
// given a non-positive one.
const DefaultFlightEvents = 32

// NewFlight returns a recorder keeping the last perProc events per
// daemon (non-positive means DefaultFlightEvents).
func NewFlight(perProc int) *Flight {
	if perProc <= 0 {
		perProc = DefaultFlightEvents
	}
	return &Flight{perProc: perProc, rings: make(map[string]*flightRing)}
}

// Record appends one event to proc's ring, evicting the oldest once the
// ring is full. Nil-safe.
func (f *Flight) Record(at int64, proc, cat, name, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	r := f.rings[proc]
	if r == nil {
		r = &flightRing{buf: make([]FlightEvent, f.perProc)}
		f.rings[proc] = r
	}
	r.record(FlightEvent{At: at, Proc: proc, Cat: cat, Name: name, Detail: detail})
	f.mu.Unlock()
}

// Events returns proc's recorded events oldest-first; nil for an
// unknown daemon or a nil recorder.
func (f *Flight) Events(proc string) []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.rings[proc]
	if r == nil {
		return nil
	}
	return r.events()
}

// Procs returns the daemons with recorded events, sorted.
func (f *Flight) Procs() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.rings))
	for p := range f.rings {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Dump renders every daemon's ring, daemons sorted by name and events
// oldest-first, as the text block a chaos failure report embeds.
func (f *Flight) Dump() string {
	if f == nil {
		return ""
	}
	var b strings.Builder
	for _, proc := range f.Procs() {
		fmt.Fprintf(&b, "[%s]\n", proc)
		for _, ev := range f.Events(proc) {
			line := fmt.Sprintf("  t=%-12s %s %s", time.Duration(ev.At), ev.Cat, ev.Name)
			if ev.Detail != "" {
				line += " " + ev.Detail
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
