package sim

import (
	"fmt"

	"cudele/internal/runtime"
)

// task asserts a runtime.Task down to this engine's concrete process
// type. Every blocking primitive goes through it, so handing a real
// backend's task to a simulated resource fails loudly.
func task(t runtime.Task) *Proc {
	p, ok := t.(*Proc)
	if !ok {
		panic(fmt.Sprintf("sim: task %T is not a simulation process", t))
	}
	return p
}

// Signal is a one-shot condition: processes Wait on it and are all released
// when Fire is called. Fire may be called before any Wait, in which case
// Wait returns immediately. Signals carry an optional value.
type Signal struct {
	eng     *Engine
	fired   bool
	val     interface{}
	waiters []*Proc
}

// NewSignal creates a signal bound to engine e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Fire releases all current and future waiters, handing them val.
// Firing twice panics: a signal is one-shot by design.
func (s *Signal) Fire(val interface{}) {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	s.val = val
	for _, w := range s.waiters {
		w := w
		s.eng.Schedule(0, w.wake)
	}
	s.waiters = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks t until the signal fires and returns the fired value.
func (s *Signal) Wait(t runtime.Task) interface{} {
	if !s.fired {
		p := task(t)
		s.waiters = append(s.waiters, p)
		p.block()
	}
	return s.val
}

// Resource is a server with integer capacity and a FIFO queue. It tracks
// busy time so utilization can be reported. A Resource with capacity 1
// models an exclusive device (one CPU core, one disk head); higher
// capacities model pools.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Proc

	// accounting
	busyArea   float64 // integral of inUse over time, in unit·seconds
	lastChange Time
	acquires   uint64
	waitTotal  Duration
	waitStart  map[*Proc]Time
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	r := &Resource{
		eng:       e,
		name:      name,
		capacity:  capacity,
		waitStart: make(map[*Proc]Time),
	}
	e.resources = append(e.resources, r)
	return r
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.eng.now
	r.busyArea += float64(r.inUse) * (now - r.lastChange).Seconds()
	r.lastChange = now
}

// Acquire takes one unit, blocking t in FIFO order until one is free.
func (r *Resource) Acquire(t runtime.Task) {
	p := task(t)
	r.acquires++
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	r.waitStart[p] = r.eng.now
	p.block()
	// Woken by Release with the unit already transferred to us.
	r.waitTotal += Duration(r.eng.now - r.waitStart[p])
	delete(r.waitStart, p)
}

// TryAcquire takes one unit if immediately available and reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit and hands it to the head waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: resource %q released below zero", r.name))
	}
	if len(r.queue) > 0 {
		// Transfer the unit directly: inUse stays constant, so no
		// accounting edge.
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.eng.Schedule(0, next.wake)
		return
	}
	r.account()
	r.inUse--
}

// Use acquires one unit, holds it for service duration d, then releases.
// This is the common "serve one request" pattern.
func (r *Resource) Use(t runtime.Task, d Duration) {
	r.Acquire(t)
	t.Sleep(d)
	r.Release()
}

// Utilization returns mean busy fraction (busy unit·time / capacity·time)
// over the window from simulation start to now.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.eng.now.Seconds()
	if elapsed <= 0 {
		return 0
	}
	return r.busyArea / (elapsed * float64(r.capacity))
}

// UtilizationSince returns the mean busy fraction between mark and now,
// where mark was obtained from UtilizationMark.
func (r *Resource) UtilizationSince(mark ResourceMark) float64 {
	r.account()
	dt := (r.eng.now - mark.At).Seconds()
	if dt <= 0 {
		return 0
	}
	return (r.busyArea - mark.BusyArea) / (dt * float64(r.capacity))
}

// ResourceMark is a snapshot of resource accounting, for windowed
// utilization measurements.
type ResourceMark = runtime.ResourceMark

// UtilizationMark snapshots the accounting state at the current time.
func (r *Resource) UtilizationMark() ResourceMark {
	r.account()
	return ResourceMark{At: r.eng.now, BusyArea: r.busyArea}
}

// Acquires returns the total number of Acquire/TryAcquire grants requested.
func (r *Resource) Acquires() uint64 { return r.acquires }

// ResourceSnapshot is a copy of a resource's utilization accounting at a
// point in virtual time, the public export surface for the busy-time
// integral the resource has always tracked internally.
type ResourceSnapshot = runtime.ResourceSnapshot

// Snapshot finalizes the busy-time integral through the current virtual
// time and returns a copy of the accounting state. Calling it at
// end-of-run is always accurate: the integral is brought up to date here
// (and again by the engine whenever its event loop stops), so the final
// interval between the last state change and the end of the run is never
// undercounted.
func (r *Resource) Snapshot() ResourceSnapshot {
	r.account()
	return ResourceSnapshot{
		Name:        r.name,
		Capacity:    r.capacity,
		InUse:       r.inUse,
		QueueLen:    len(r.queue),
		Acquires:    r.acquires,
		BusyArea:    r.busyArea,
		WaitTotal:   r.waitTotal,
		Utilization: r.Utilization(),
		At:          r.eng.now,
	}
}

// MeanWait returns the mean queueing delay of completed Acquire calls that
// had to wait.
func (r *Resource) MeanWait() Duration {
	if r.acquires == 0 {
		return 0
	}
	return r.waitTotal / Duration(r.acquires)
}

// Pipe models a store-and-forward link or device with a fixed bandwidth in
// bytes per second. Transfers are serialized FIFO through the pipe, so
// concurrent transfers queue, which matches a single NIC or disk channel.
type Pipe struct {
	res  *Resource
	rate float64 // bytes per second
	sent uint64
}

// NewPipe creates a bandwidth pipe. rate must be positive (bytes/second).
func NewPipe(e *Engine, name string, rate float64) *Pipe {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: pipe %q rate %v <= 0", name, rate))
	}
	return &Pipe{res: NewResource(e, name, 1), rate: rate}
}

// Transfer moves n bytes through the pipe, blocking t for queueing plus
// n/rate seconds of service time.
func (pp *Pipe) Transfer(t runtime.Task, n int64) {
	if n < 0 {
		panic("sim: negative transfer size")
	}
	pp.sent += uint64(n)
	d := Duration(float64(n) / pp.rate * 1e9)
	pp.res.Use(t, d)
}

// Rate returns the configured bandwidth in bytes per second.
func (pp *Pipe) Rate() float64 { return pp.rate }

// Bytes returns the total bytes pushed through the pipe.
func (pp *Pipe) Bytes() uint64 { return pp.sent }

// Utilization returns the pipe's busy fraction since simulation start.
func (pp *Pipe) Utilization() float64 { return pp.res.Utilization() }

// UtilizationMark snapshots pipe accounting for windowed measurement.
func (pp *Pipe) UtilizationMark() ResourceMark { return pp.res.UtilizationMark() }

// Snapshot returns the pipe's finalized utilization accounting.
func (pp *Pipe) Snapshot() ResourceSnapshot { return pp.res.Snapshot() }

// UtilizationSince returns busy fraction since mark.
func (pp *Pipe) UtilizationSince(m ResourceMark) float64 { return pp.res.UtilizationSince(m) }
