package sim

import (
	"cudele/internal/runtime"

	"strings"
	"testing"
	"time"
)

func TestStopHaltsLoop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Millisecond, func() {
		ran++
		e.Stop()
	})
	e.Schedule(2*time.Millisecond, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
}

func TestNegativeScheduleClamped(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-time.Hour, func() { at = e.Now() })
	})
	e.RunAll()
	if at != Time(5*time.Millisecond) {
		t.Fatalf("negative-delay event at %v", at)
	}
}

func TestProcAccessors(t *testing.T) {
	e := NewEngine(1)
	e.Go("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("engine accessor broken")
		}
		if !strings.Contains(p.String(), "worker") {
			t.Errorf("string = %q", p.String())
		}
		p.Yield()
	})
	e.RunAll()
}

func TestResourceAccessors(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 2)
	if r.Name() != "disk" || r.Capacity() != 2 {
		t.Fatalf("accessors: %q %d", r.Name(), r.Capacity())
	}
	e.Go("a", func(p *Proc) {
		r.Acquire(p)
		if r.InUse() != 1 {
			t.Errorf("in use = %d", r.InUse())
		}
		p.Sleep(time.Millisecond)
		r.Release()
	})
	e.RunAll()
	if r.Acquires() != 1 {
		t.Fatalf("acquires = %d", r.Acquires())
	}
	if r.MeanWait() != 0 {
		t.Fatalf("mean wait = %v for uncontended use", r.MeanWait())
	}
}

func TestResourceQueueLenAndMeanWait(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	e.Go("holder", func(p *Proc) { r.Use(p, 10*time.Millisecond) })
	e.Go("waiter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p)
		r.Release()
	})
	probed := false
	e.Schedule(5*time.Millisecond, func() {
		if r.QueueLen() != 1 {
			t.Errorf("queue len = %d, want 1", r.QueueLen())
		}
		probed = true
	})
	e.RunAll()
	if !probed {
		t.Fatal("probe never ran")
	}
	if r.MeanWait() <= 0 {
		t.Fatalf("mean wait = %v, want > 0", r.MeanWait())
	}
}

func TestNewResourceBadCapacityPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewResource(e, "x", 0)
}

func TestNewPipeBadRatePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 did not panic")
		}
	}()
	NewPipe(e, "x", 0)
}

func TestPipeAccessorsAndNegativeTransfer(t *testing.T) {
	e := NewEngine(1)
	pp := NewPipe(e, "nic", 1e6)
	if pp.Rate() != 1e6 {
		t.Fatalf("rate = %v", pp.Rate())
	}
	mark := pp.UtilizationMark()
	e.Go("w", func(p *Proc) {
		pp.Transfer(p, 1e6)
		if u := pp.UtilizationSince(mark); u < 0.99 {
			t.Errorf("windowed pipe utilization = %v", u)
		}
	})
	e.RunAll()
	if pp.Utilization() < 0.99 {
		t.Fatalf("pipe utilization = %v", pp.Utilization())
	}
	e.Go("neg", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative transfer did not panic")
			}
		}()
		pp.Transfer(p, -1)
	})
	e.RunAll()
}

func TestGroupNegativeCounterPanics(t *testing.T) {
	e := NewEngine(1)
	g := NewGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("negative group counter did not panic")
		}
	}()
	g.Add(-1)
}

func TestGroupWaitAfterDone(t *testing.T) {
	e := NewEngine(1)
	g := NewGroup(e)
	g.Go("w", func(p runtime.Task) { p.Sleep(time.Millisecond) })
	waited := 0
	e.Go("late", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		g.Wait(p) // already done: returns immediately
		waited++
	})
	e.Go("never-registered", func(p *Proc) {
		fresh := NewGroup(e)
		fresh.Wait(p) // empty group: returns immediately
		waited++
	})
	e.RunAll()
	if waited != 2 {
		t.Fatalf("waited = %d", waited)
	}
}

func TestRunReentrancePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("re-entrant Run did not panic")
		}
	}()
	e.Schedule(0, func() { e.Run(0) })
	e.RunAll()
}
