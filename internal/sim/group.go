package sim

import "cudele/internal/runtime"

// Group waits for a set of simulation processes to finish, like a
// sync.WaitGroup for virtual time. Add/Done/Wait must all be called from
// simulation context (inside events or processes), never concurrently.
type Group struct {
	eng  *Engine
	n    int
	done *Signal
}

// NewGroup creates an empty group bound to engine e.
func NewGroup(e *Engine) *Group {
	return &Group{eng: e, done: NewSignal(e)}
}

// Add registers delta more processes the group will wait for.
func (g *Group) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("sim: Group counter below zero")
	}
}

// Done marks one process finished, firing the completion signal when the
// count reaches zero.
func (g *Group) Done() {
	g.Add(-1)
	if g.n == 0 && !g.done.Fired() {
		g.done.Fire(nil)
	}
}

// Go spawns fn as a process tracked by the group.
func (g *Group) Go(name string, fn func(t runtime.Task)) {
	g.Add(1)
	g.eng.Go(name, func(p *Proc) {
		defer g.Done()
		fn(p)
	})
}

// Wait blocks t until the group count reaches zero. A group that never had
// members fires immediately on the first Done... so Wait on an empty group
// that was never used blocks forever; always pair Wait with prior Go/Add.
func (g *Group) Wait(t runtime.Task) {
	if g.n == 0 && g.done.Fired() {
		return
	}
	if g.n == 0 && !g.done.Fired() {
		// Nothing pending and nothing ever registered: treat as done.
		return
	}
	g.done.Wait(t)
}
