package sim

import (
	"strings"
	"testing"
	"time"
)

// TestShutdownReapsBlockedProcs is the leak regression for Engine.Stop:
// processes abandoned mid-block must be unwound by Shutdown so their
// goroutines exit instead of parking forever.
func TestShutdownReapsBlockedProcs(t *testing.T) {
	e := NewEngine(1)
	unwound := 0
	for i := 0; i < 5; i++ {
		e.Go("sleeper", func(p *Proc) {
			defer func() { unwound++ }()
			p.Sleep(time.Hour)
		})
	}
	e.Go("stopper", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Stop()
	})
	e.RunAll()
	if e.LiveProcs() != 5 {
		t.Fatalf("live procs after Stop = %d, want 5", e.LiveProcs())
	}
	if err := e.LeakCheck(); err == nil || !strings.Contains(err.Error(), "sleeper") {
		t.Fatalf("LeakCheck = %v, want error naming sleeper", err)
	}
	if got := e.Shutdown(); got != 5 {
		t.Fatalf("Shutdown reaped %d, want 5", got)
	}
	if unwound != 5 {
		t.Fatalf("unwound %d sleeper stacks, want 5", unwound)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after Shutdown = %d", e.LiveProcs())
	}
	if err := e.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck after Shutdown: %v", err)
	}
}

// TestShutdownNeverStartedProc covers processes spawned after the loop
// stopped: their goroutines were never created, so Shutdown only has to
// unregister them.
func TestShutdownNeverStartedProc(t *testing.T) {
	e := NewEngine(1)
	e.Go("stopper", func(p *Proc) { e.Stop() })
	e.RunAll()
	e.Go("never-started", func(p *Proc) { t.Error("ran after Stop") })
	if got := e.Shutdown(); got != 1 {
		t.Fatalf("Shutdown reaped %d, want 1", got)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", e.LiveProcs())
	}
}

// TestShutdownKillsReblockingDefer: a deferred function that blocks again
// during the unwind is killed again rather than deadlocking Shutdown.
func TestShutdownKillsReblockingDefer(t *testing.T) {
	e := NewEngine(1)
	e.Go("stubborn", func(p *Proc) {
		defer p.Sleep(time.Hour) // re-blocks during the unwind
		p.Sleep(time.Hour)
	})
	e.Go("stopper", func(p *Proc) { e.Stop() })
	e.RunAll()
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", e.LiveProcs())
	}
}

func TestShutdownCleanSimulationIsNoop(t *testing.T) {
	e := NewEngine(1)
	e.Go("worker", func(p *Proc) { p.Sleep(time.Millisecond) })
	e.RunAll()
	if got := e.Shutdown(); got != 0 {
		t.Fatalf("Shutdown reaped %d on a drained simulation", got)
	}
}

// TestShutdownResourceWaiter kills a process blocked deep in a resource
// queue, the common shape of a real leak.
func TestShutdownResourceWaiter(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Hour) // never releases before the stop
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p)
	})
	e.Go("stopper", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		e.Stop()
	})
	e.RunAll()
	if got := e.Shutdown(); got != 2 {
		t.Fatalf("Shutdown reaped %d, want 2", got)
	}
}

// BenchmarkEngineSchedule measures the per-event cost of the hot
// Schedule/Run path. The value-based event queue should keep this at zero
// allocations per scheduled event (the seed implementation paid one heap
// allocation per Schedule through container/heap).
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fn := func() {}
	const batch = 1024
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			e.Schedule(Duration(j), fn)
		}
		e.RunAll()
	}
}

// TestScheduleAllocs pins the allocation regression directly: steady-state
// scheduling must not allocate per event.
func TestScheduleAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm up the queue's backing array.
	for i := 0; i < 256; i++ {
		e.Schedule(Duration(i), fn)
	}
	e.RunAll()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(Duration(i), fn)
		}
		e.RunAll()
	})
	if avg > 1 {
		t.Fatalf("Schedule+Run of 64 events allocates %.1f times, want <=1", avg)
	}
}
