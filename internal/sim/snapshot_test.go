package sim

import (
	"testing"
	"time"
)

// TestSnapshotFinalizesBusyArea pins the satellite fix: the busy-time
// integral used to be updated only on state changes, so a resource held
// (or idle) across the end of a run undercounted its final interval when
// the raw accounting was read. Snapshot must include time up to "now"
// even with no state change since the last acquire/release.
func TestSnapshotFinalizesBusyArea(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		// Hold the unit forever past the last event: the engine clock
		// advances via an unrelated timer event.
	})
	e.Schedule(2*time.Second, func() {})
	e.RunAll()

	snap := r.Snapshot()
	if snap.At != Time(2*time.Second) {
		t.Fatalf("snapshot at %v, want 2s", snap.At)
	}
	// Held from t=0 to t=2s with capacity 1: busyArea = 2 unit·s.
	if snap.BusyArea < 1.999 || snap.BusyArea > 2.001 {
		t.Fatalf("busyArea = %v, want ~2 (final interval not finalized)", snap.BusyArea)
	}
	if snap.Utilization < 0.999 || snap.Utilization > 1.001 {
		t.Fatalf("utilization = %v, want ~1", snap.Utilization)
	}
	if snap.InUse != 1 || snap.Capacity != 1 || snap.Name != "cpu" {
		t.Fatalf("snapshot identity fields wrong: %+v", snap)
	}
	e.Shutdown()
}

// TestRunFinalizesAccounting checks the engine itself finalizes the
// integral when the event loop stops, so even raw field readers (not
// going through Snapshot) see a complete integral at end-of-run.
func TestRunFinalizesAccounting(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 2)
	e.Go("u", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Second)
		// Keep holding; never release.
	})
	e.Schedule(4*time.Second, func() {})
	e.RunAll()

	// Bypass Snapshot: the engine's end-of-run finalization must have
	// integrated through t=4s already. 1 unit x 4s / (2 cap x 4s) = 0.5.
	if got := r.busyArea; got < 3.999 || got > 4.001 {
		t.Fatalf("raw busyArea = %v, want ~4 after Run finalization", got)
	}
	if u := r.Utilization(); u < 0.499 || u > 0.501 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	e.Shutdown()
}

// TestSnapshotQueueAndWaits checks queue depth and wait accounting
// surface through the snapshot.
func TestSnapshotQueueAndWaits(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			r.Use(p, time.Second)
		})
	}
	e.RunAll()
	snap := r.Snapshot()
	if snap.Acquires != 3 {
		t.Fatalf("acquires = %d, want 3", snap.Acquires)
	}
	// Second waiter waits 1s, third waits 2s.
	if snap.WaitTotal != 3*time.Second {
		t.Fatalf("waitTotal = %v, want 3s", snap.WaitTotal)
	}
	if snap.QueueLen != 0 || snap.InUse != 0 {
		t.Fatalf("drained resource snapshot: %+v", snap)
	}
	if snap.BusyArea < 2.999 || snap.BusyArea > 3.001 {
		t.Fatalf("busyArea = %v, want ~3", snap.BusyArea)
	}
	e.Shutdown()
}

// TestPipeSnapshot checks pipes re-export their inner resource snapshot.
func TestPipeSnapshot(t *testing.T) {
	e := NewEngine(1)
	pp := NewPipe(e, "net", 1e6) // 1 MB/s
	e.Go("xfer", func(p *Proc) {
		pp.Transfer(p, 500_000) // 0.5 s of service
	})
	e.Schedule(time.Second, func() {})
	e.RunAll()
	snap := pp.Snapshot()
	if snap.Name != "net" {
		t.Fatalf("name = %q", snap.Name)
	}
	if snap.Utilization < 0.499 || snap.Utilization > 0.501 {
		t.Fatalf("pipe utilization = %v, want 0.5", snap.Utilization)
	}
	e.Shutdown()
}
