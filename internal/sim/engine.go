// Package sim is a deterministic discrete-event simulation kernel.
//
// It provides a virtual clock, coroutine-style processes, FIFO resource
// servers with utilization accounting, bandwidth pipes, and condition
// signals. The Cudele cluster (clients, metadata servers, object storage
// daemons, monitor) is modeled as sim processes that execute the real
// metadata code paths while charging virtual time to simulated devices.
//
// Only one process runs at a time; the engine and the running process hand
// control back and forth over unbuffered channels, so simulations are fully
// deterministic for a given seed and schedule.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is convertible to
// and from time.Duration.
type Duration = time.Duration

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the event queue.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	running bool

	// yielded is signaled by a process when it blocks or finishes,
	// returning control to the engine loop.
	yielded chan struct{}

	procs   int // live process count, for leak detection
	stopped bool
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// source is seeded deterministically with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:     rand.New(rand.NewSource(seed)),
		yielded: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation processes (never concurrently).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule arranges for fn to run at time e.Now()+d. Scheduling with d <= 0
// runs fn as soon as the current process yields.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + Time(d), seq: e.seq, fn: fn})
}

// Go spawns a new process executing fn. The process starts when the engine
// next reaches the current virtual time in its event loop.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs++
	e.Schedule(0, func() {
		go func() {
			defer func() {
				p.done = true
				e.procs--
				e.yielded <- struct{}{}
			}()
			fn(p)
		}()
		// Wait for the new goroutine to block or finish.
		<-e.yielded
	})
	return p
}

// Run drives the event loop until the queue is empty or the clock passes
// until (use a huge value to run to completion). It returns the final
// virtual time.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Engine.Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at > until {
			// Push back so a later Run can continue.
			heap.Push(&e.queue, ev)
			break
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
	return e.now
}

// RunAll drives the event loop until no events remain.
func (e *Engine) RunAll() Time { return e.Run(Time(1<<62 - 1)) }

// Stop halts the event loop after the current event completes. Blocked
// processes are abandoned (their goroutines are parked forever), so Stop is
// intended for ending a simulation for good, typically from within a
// process right before the caller discards the engine.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// LiveProcs reports the number of processes that have been spawned and not
// yet finished. After RunAll on a well-formed simulation this is the number
// of processes blocked forever (normally zero).
func (e *Engine) LiveProcs() int { return e.procs }

// Proc is a simulation process: a goroutine that alternates control with
// the engine. All Proc methods must be called from the process's own
// goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the process name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// block yields control to the engine and waits until some event calls
// p.wake.
func (p *Proc) block() {
	p.eng.yielded <- struct{}{}
	<-p.resume
}

// wake resumes a blocked process from engine context (inside an event) and
// waits for it to block again or finish.
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.eng.yielded
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Still yield so equal-time events interleave fairly.
		d = 0
	}
	p.eng.Schedule(d, p.wake)
	p.block()
}

// Yield gives other ready events a chance to run at the current time.
func (p *Proc) Yield() { p.Sleep(0) }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
